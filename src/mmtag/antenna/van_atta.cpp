#include "mmtag/antenna/van_atta.hpp"

#include <random>
#include <stdexcept>

namespace mmtag::antenna {

van_atta_array::van_atta_array(const config& cfg, std::shared_ptr<const element> radiator)
    : cfg_(cfg), radiator_(std::move(radiator))
{
    if (cfg.element_count < 2 || cfg.element_count % 2 != 0) {
        throw std::invalid_argument("van_atta_array: element count must be even and >= 2");
    }
    if (cfg.spacing_wavelengths <= 0.0) {
        throw std::invalid_argument("van_atta_array: spacing must be > 0");
    }
    if (cfg.line_loss_db < 0.0) throw std::invalid_argument("van_atta_array: negative line loss");
    if (!radiator_) throw std::invalid_argument("van_atta_array: null element");
    line_amplitude_ = std::pow(10.0, -cfg.line_loss_db / 20.0);
    pair_phase_errors_.assign(cfg.element_count / 2, 0.0);
    if (cfg.pair_phase_error_rms_rad > 0.0) {
        // Deterministic seed: fabrication error is a fixed property of one
        // physical array, not a per-call random draw.
        std::mt19937_64 rng(0xA77A5EED);
        std::normal_distribution<double> gaussian(0.0, cfg.pair_phase_error_rms_rad);
        for (auto& error : pair_phase_errors_) error = gaussian(rng);
    }
}

cf64 van_atta_array::bistatic_coupling(double theta_in, double theta_out, cf64 gamma) const
{
    const std::size_t n = cfg_.element_count;
    const double kd = two_pi * cfg_.spacing_wavelengths;
    const double sin_in = std::sin(theta_in);
    const double sin_out = std::sin(theta_out);
    cf64 acc{};
    for (std::size_t m = 0; m < n; ++m) {
        const std::size_t source = n - 1 - m; // mirror pairing
        const std::size_t pair = std::min(m, source);
        const double phase = kd * (static_cast<double>(source) * sin_in +
                                   static_cast<double>(m) * sin_out) +
                             pair_phase_errors_[pair];
        acc += std::polar(1.0, phase);
    }
    const double element_fields =
        std::sqrt(radiator_->gain(theta_in) * radiator_->gain(theta_out));
    return acc * element_fields * line_amplitude_ * gamma;
}

double van_atta_array::monostatic_gain(double theta_rad, cf64 gamma) const
{
    return std::norm(bistatic_coupling(theta_rad, theta_rad, gamma));
}

rvec van_atta_array::monostatic_pattern(std::size_t points, cf64 gamma) const
{
    if (points < 2) throw std::invalid_argument("van_atta_array: pattern needs >= 2 points");
    rvec out(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double theta =
            -pi / 2.0 + pi * static_cast<double>(i) / static_cast<double>(points - 1);
        out[i] = monostatic_gain(theta, gamma);
    }
    return out;
}

double van_atta_array::field_of_view(double droop_db) const
{
    if (droop_db <= 0.0) throw std::invalid_argument("van_atta_array: droop must be > 0 dB");
    constexpr std::size_t points = 1801;
    const rvec pattern = monostatic_pattern(points);
    double peak = 0.0;
    std::size_t peak_index = 0;
    for (std::size_t i = 0; i < points; ++i) {
        if (pattern[i] > peak) {
            peak = pattern[i];
            peak_index = i;
        }
    }
    if (peak <= 0.0) return 0.0;
    const double floor = peak * from_db(-droop_db);
    std::size_t low = peak_index;
    while (low > 0 && pattern[low - 1] >= floor) --low;
    std::size_t high = peak_index;
    while (high + 1 < points && pattern[high + 1] >= floor) ++high;
    const double step = pi / static_cast<double>(points - 1);
    return static_cast<double>(high - low) * step;
}

flat_plate_reflector::flat_plate_reflector(std::size_t element_count, double spacing_wavelengths,
                                           std::shared_ptr<const element> radiator)
    : element_count_(element_count), spacing_(spacing_wavelengths), radiator_(std::move(radiator))
{
    if (element_count == 0) throw std::invalid_argument("flat_plate: element count must be >= 1");
    if (spacing_wavelengths <= 0.0) throw std::invalid_argument("flat_plate: spacing must be > 0");
    if (!radiator_) throw std::invalid_argument("flat_plate: null element");
}

cf64 flat_plate_reflector::bistatic_coupling(double theta_in, double theta_out, cf64 gamma) const
{
    // No pairing: element m re-radiates its own signal, so phases add rather
    // than conjugate — specular reflection (peak at theta_out == -theta_in).
    const double kd = two_pi * spacing_;
    const double total_sin = std::sin(theta_in) + std::sin(theta_out);
    cf64 acc{};
    for (std::size_t m = 0; m < element_count_; ++m) {
        acc += std::polar(1.0, kd * static_cast<double>(m) * total_sin);
    }
    const double element_fields =
        std::sqrt(radiator_->gain(theta_in) * radiator_->gain(theta_out));
    return acc * element_fields * gamma;
}

double flat_plate_reflector::monostatic_gain(double theta_rad, cf64 gamma) const
{
    return std::norm(bistatic_coupling(theta_rad, theta_rad, gamma));
}

rvec flat_plate_reflector::monostatic_pattern(std::size_t points, cf64 gamma) const
{
    if (points < 2) throw std::invalid_argument("flat_plate: pattern needs >= 2 points");
    rvec out(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double theta =
            -pi / 2.0 + pi * static_cast<double>(i) / static_cast<double>(points - 1);
        out[i] = monostatic_gain(theta, gamma);
    }
    return out;
}

} // namespace mmtag::antenna
