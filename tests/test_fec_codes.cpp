#include <gtest/gtest.h>

#include <random>

#include "mmtag/fec/convolutional.hpp"
#include "mmtag/fec/hamming.hpp"
#include "mmtag/fec/interleaver.hpp"
#include "mmtag/fec/repetition.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::fec {
namespace {

using mmtag::phy::random_bits;

TEST(hamming, round_trip)
{
    const auto bits = random_bits(64, 1);
    const auto coded = hamming74_encode(bits);
    EXPECT_EQ(coded.size(), 64u / 4 * 7);
    const auto decoded = hamming74_decode(coded);
    EXPECT_EQ(decoded, bits);
}

class hamming_single_error : public ::testing::TestWithParam<std::size_t> {};

TEST_P(hamming_single_error, corrected)
{
    const std::size_t error_position = GetParam();
    const auto bits = random_bits(4, 7);
    auto coded = hamming74_encode(bits);
    coded[error_position] ^= 1;
    std::size_t corrections = 0;
    const auto decoded = hamming74_decode(coded, &corrections);
    EXPECT_EQ(decoded, bits) << "error at " << error_position;
    EXPECT_EQ(corrections, 1u);
}

INSTANTIATE_TEST_SUITE_P(positions, hamming_single_error,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u));

TEST(hamming, pads_partial_block)
{
    const std::vector<std::uint8_t> bits{1, 0, 1}; // not a multiple of 4
    const auto coded = hamming74_encode(bits);
    EXPECT_EQ(coded.size(), 7u);
    const auto decoded = hamming74_decode(coded);
    EXPECT_EQ(decoded[0], 1);
    EXPECT_EQ(decoded[1], 0);
    EXPECT_EQ(decoded[2], 1);
    EXPECT_EQ(decoded[3], 0); // padding
}

TEST(hamming, rejects_bad_length)
{
    EXPECT_THROW((void)hamming74_decode(std::vector<std::uint8_t>(8, 0)), std::invalid_argument);
}

class conv_round_trip : public ::testing::TestWithParam<code_rate> {};

TEST_P(conv_round_trip, clean_channel)
{
    const auto bits = random_bits(200, 11);
    const auto coded = convolutional_encode(bits, GetParam());
    EXPECT_EQ(coded.size(), coded_length(bits.size(), GetParam()));
    const auto decoded = viterbi_decode(coded, GetParam());
    EXPECT_EQ(decoded, bits);
}

TEST_P(conv_round_trip, soft_decisions_clean)
{
    const auto bits = random_bits(120, 13);
    const auto coded = convolutional_encode(bits, GetParam());
    std::vector<double> soft;
    for (auto b : coded) soft.push_back(b ? -2.5 : 2.5);
    EXPECT_EQ(viterbi_decode_soft(soft, GetParam()), bits);
}

INSTANTIATE_TEST_SUITE_P(rates, conv_round_trip,
                         ::testing::Values(code_rate::half, code_rate::two_thirds,
                                           code_rate::three_quarters));

TEST(conv, rate_fractions)
{
    EXPECT_DOUBLE_EQ(rate_fraction(code_rate::half), 0.5);
    EXPECT_NEAR(rate_fraction(code_rate::two_thirds), 2.0 / 3.0, 1e-15);
    EXPECT_DOUBLE_EQ(rate_fraction(code_rate::three_quarters), 0.75);
}

TEST(conv, coded_length_reflects_puncturing)
{
    const std::size_t info = 100;
    const std::size_t full = coded_length(info, code_rate::half);
    EXPECT_EQ(full, 2 * (info + 6));
    // 2/3 keeps 3 of every 4 bits; 3/4 keeps 4 of every 6.
    EXPECT_NEAR(static_cast<double>(coded_length(info, code_rate::two_thirds)),
                full * 0.75, 2.0);
    EXPECT_NEAR(static_cast<double>(coded_length(info, code_rate::three_quarters)),
                full * 2.0 / 3.0, 2.0);
}

TEST(conv, corrects_scattered_hard_errors)
{
    const auto bits = random_bits(300, 17);
    auto coded = convolutional_encode(bits, code_rate::half);
    // Flip ~3% of coded bits, spread out.
    std::mt19937_64 rng(23);
    std::uniform_int_distribution<std::size_t> pos(0, coded.size() - 1);
    for (std::size_t e = 0; e < coded.size() / 33; ++e) coded[pos(rng)] ^= 1;
    EXPECT_EQ(viterbi_decode(coded, code_rate::half), bits);
}

TEST(conv, soft_outperforms_hard_at_same_noise)
{
    // At moderate noise, soft decoding should produce no more errors than
    // hard decoding over the same noisy observations.
    std::mt19937_64 rng(29);
    std::normal_distribution<double> noise(0.0, 0.6);
    std::size_t soft_errors = 0;
    std::size_t hard_errors = 0;
    for (int trial = 0; trial < 20; ++trial) {
        const auto bits = random_bits(150, 100 + trial);
        const auto coded = convolutional_encode(bits, code_rate::half);
        std::vector<double> soft;
        std::vector<std::uint8_t> hard;
        for (auto b : coded) {
            const double value = (b ? -1.0 : 1.0) + noise(rng);
            soft.push_back(value);
            hard.push_back(value < 0.0 ? 1 : 0);
        }
        const auto soft_out = viterbi_decode_soft(soft, code_rate::half);
        const auto hard_out = viterbi_decode(hard, code_rate::half);
        soft_errors += mmtag::phy::hamming_distance(soft_out, bits);
        hard_errors += mmtag::phy::hamming_distance(hard_out, bits);
    }
    EXPECT_LE(soft_errors, hard_errors);
}

TEST(conv, empty_input_encodes_tail_only)
{
    const auto coded = convolutional_encode({}, code_rate::half);
    EXPECT_EQ(coded.size(), 12u); // 6 tail bits * 2
    const auto decoded = viterbi_decode(coded, code_rate::half);
    EXPECT_TRUE(decoded.empty());
}

TEST(interleaver, round_trip)
{
    const block_interleaver interleaver(4, 8);
    const auto bits = random_bits(32 * 3, 31);
    const auto shuffled = interleaver.interleave(bits);
    EXPECT_EQ(interleaver.deinterleave(shuffled), bits);
}

TEST(interleaver, spreads_bursts)
{
    const block_interleaver interleaver(8, 16);
    std::vector<std::uint8_t> bits(128, 0);
    auto shuffled = interleaver.interleave(bits);
    // Burst of 8 consecutive errors on the channel...
    for (std::size_t i = 40; i < 48; ++i) shuffled[i] ^= 1;
    const auto restored = interleaver.deinterleave(shuffled);
    // ...must land at least `rows` apart after deinterleaving.
    std::vector<std::size_t> error_positions;
    for (std::size_t i = 0; i < restored.size(); ++i) {
        if (restored[i] != 0) error_positions.push_back(i);
    }
    ASSERT_EQ(error_positions.size(), 8u);
    for (std::size_t i = 1; i < error_positions.size(); ++i) {
        EXPECT_GE(error_positions[i] - error_positions[i - 1], 8u);
    }
}

TEST(interleaver, soft_matches_hard_permutation)
{
    const block_interleaver interleaver(4, 4);
    const auto bits = random_bits(16, 37);
    const auto shuffled = interleaver.interleave(bits);
    std::vector<double> soft;
    for (auto b : shuffled) soft.push_back(b ? -1.0 : 1.0);
    const auto soft_restored = interleaver.deinterleave_soft(soft);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        EXPECT_EQ(soft_restored[i] < 0.0 ? 1 : 0, bits[i]);
    }
}

TEST(interleaver, pads_to_block)
{
    const block_interleaver interleaver(3, 5);
    const auto out = interleaver.interleave(random_bits(7, 41));
    EXPECT_EQ(out.size(), 15u);
}

TEST(repetition, round_trip_with_majority)
{
    const auto bits = random_bits(50, 43);
    auto coded = repetition_encode(bits, 5);
    EXPECT_EQ(coded.size(), 250u);
    // One flip per group cannot beat the majority.
    for (std::size_t g = 0; g < 50; ++g) coded[g * 5 + 2] ^= 1;
    EXPECT_EQ(repetition_decode(coded, 5), bits);
}

TEST(repetition, soft_combining)
{
    const std::vector<std::uint8_t> bits{1, 0};
    const auto coded = repetition_encode(bits, 3);
    // Soft values: one strong wrong observation vs two weak right ones.
    const std::vector<double> soft{-0.4, -0.4, +0.5, /*bit0*/ +0.3, +0.3, -0.5 /*bit1*/};
    const auto decoded = repetition_decode_soft(soft, 3);
    EXPECT_EQ(decoded[0], 1);
    EXPECT_EQ(decoded[1], 0);
}

TEST(repetition, validation)
{
    EXPECT_THROW((void)repetition_decode(std::vector<std::uint8_t>(4, 0), 2),
                 std::invalid_argument); // even factor
    EXPECT_THROW((void)repetition_decode(std::vector<std::uint8_t>(4, 0), 3),
                 std::invalid_argument); // bad length
}

} // namespace
} // namespace mmtag::fec
