#include "mmtag/channel/blockage.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::channel {

blockage_process::blockage_process(const config& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("blockage: fs <= 0");
    if (cfg.mean_clear_s <= 0.0 || cfg.mean_blocked_s <= 0.0) {
        throw std::invalid_argument("blockage: dwell times must be > 0");
    }
    if (cfg.blockage_loss_db < 0.0) throw std::invalid_argument("blockage: negative loss");
    if (cfg.transition_s <= 0.0) throw std::invalid_argument("blockage: transition <= 0");
    blocked_amplitude_ = std::pow(10.0, -cfg.blockage_loss_db / 20.0);
    slew_per_sample_ =
        (1.0 - blocked_amplitude_) / (cfg.transition_s * cfg.sample_rate_hz);
    schedule_next();
}

void blockage_process::schedule_next()
{
    const double mean = blocked_ ? cfg_.mean_blocked_s : cfg_.mean_clear_s;
    std::exponential_distribution<double> dwell(1.0 / mean);
    next_toggle_s_ = time_s_ + dwell(rng_);
}

double blockage_process::step()
{
    if (time_s_ >= next_toggle_s_) {
        blocked_ = !blocked_;
        schedule_next();
    }
    const double target = blocked_ ? blocked_amplitude_ : 1.0;
    if (level_ < target) level_ = std::min(target, level_ + slew_per_sample_);
    else if (level_ > target) level_ = std::max(target, level_ - slew_per_sample_);
    time_s_ += 1.0 / cfg_.sample_rate_hz;
    return level_;
}

rvec blockage_process::generate(std::size_t count)
{
    rvec out(count);
    for (auto& v : out) v = step();
    return out;
}

double blockage_process::duty_cycle() const
{
    return cfg_.mean_blocked_s / (cfg_.mean_blocked_s + cfg_.mean_clear_s);
}

} // namespace mmtag::channel
