#include "mmtag/fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/obs/trace.hpp"

namespace mmtag::fault {

namespace {

double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

} // namespace

bool impairment::any() const
{
    return tag_amplitude < 1.0 || carrier_amplitude < 1.0 || lo_offset_hz != 0.0 ||
           interferer_active() || !tag_powered;
}

fault_injector::fault_injector(fault_schedule schedule)
    : schedule_(std::move(schedule))
{
}

impairment fault_injector::at(double start_s, double duration_s) const
{
    impairment out;
    double blockage_db = 0.0;
    double dropout_db = 0.0;
    for (const auto& event : schedule_.active(start_s, start_s + duration_s)) {
        switch (event.kind) {
        case fault_kind::blockage:
            blockage_db = std::max(blockage_db, event.magnitude);
            break;
        case fault_kind::carrier_dropout:
            dropout_db = std::max(dropout_db, event.magnitude);
            break;
        case fault_kind::interferer:
            out.interferer_rel_db = std::max(out.interferer_rel_db, event.magnitude);
            break;
        case fault_kind::brownout:
            out.tag_powered = false;
            break;
        case fault_kind::lo_step:
            break; // persistent: handled below from the full history
        }
        if (metrics_ != nullptr) {
            metrics_
                ->get_counter(std::string("fault/") + fault_kind_name(event.kind))
                .add();
        }
    }
    if (blockage_db > 0.0) out.tag_amplitude = db_to_amplitude(-blockage_db);
    if (dropout_db > 0.0) out.carrier_amplitude = db_to_amplitude(-dropout_db);
    out.lo_offset_hz = lo_offset_hz(start_s + duration_s);

    if (out.any()) {
        if (metrics_ != nullptr) metrics_->get_counter("fault/impaired_windows").add();
        if (obs::tracer::active()) {
            char args[96];
            std::snprintf(args, sizeof args,
                          "{\"start_s\": %.6f, \"duration_s\": %.6f}", start_s,
                          duration_s);
            obs::trace_instant("fault.window", "fault", args);
        }
    }
    return out;
}

double fault_injector::lo_offset_hz(double time_s) const
{
    // Latest step that has fired and has not been cleared by a re-lock. The
    // synthesizer holds the detuned frequency, so duration is irrelevant.
    double offset = 0.0;
    for (const auto& event : schedule_.events()) {
        if (event.kind != fault_kind::lo_step) continue;
        if (event.start_s > time_s) break;
        if (event.start_s <= lo_cleared_until_s_) continue;
        offset = event.magnitude;
    }
    return offset;
}

void fault_injector::clear_lo_steps(double time_s)
{
    lo_cleared_until_s_ = std::max(lo_cleared_until_s_, time_s);
    if (metrics_ != nullptr) metrics_->get_counter("fault/lo_relocks").add();
    if (obs::tracer::active()) {
        char args[48];
        std::snprintf(args, sizeof args, "{\"time_s\": %.6f}", time_s);
        obs::trace_instant("fault.lo_relock", "fault", args);
    }
}

} // namespace mmtag::fault
