#include "mmtag/mac/tdma.hpp"

#include <stdexcept>

namespace mmtag::mac {

tdma_scheduler::tdma_scheduler(const tdma_config& cfg) : cfg_(cfg)
{
    if (cfg.phy_rate_bps <= 0.0) throw std::invalid_argument("tdma: phy rate must be > 0");
    if (cfg.frame_payload_bytes == 0) throw std::invalid_argument("tdma: empty payload");
    if (cfg.query_time_s < 0.0 || cfg.turnaround_s < 0.0 || cfg.guard_time_s < 0.0) {
        throw std::invalid_argument("tdma: negative timing parameter");
    }
}

double tdma_scheduler::slot_duration_s() const
{
    const double payload_bits = static_cast<double>(cfg_.frame_payload_bytes) * 8.0;
    const double burst_s =
        (payload_bits + static_cast<double>(cfg_.overhead_bits)) / cfg_.phy_rate_bps;
    return cfg_.query_time_s + cfg_.turnaround_s + burst_s + cfg_.guard_time_s;
}

std::vector<tdma_slot> tdma_scheduler::build_cycle(
    const std::vector<std::uint32_t>& tag_ids) const
{
    std::vector<tdma_slot> cycle;
    cycle.reserve(tag_ids.size());
    const double slot = slot_duration_s();
    double t = 0.0;
    for (std::uint32_t id : tag_ids) {
        cycle.push_back({id, t, slot});
        t += slot;
    }
    return cycle;
}

std::vector<std::uint32_t> tdma_scheduler::interleave_shares(
    const std::vector<slot_share>& shares)
{
    std::size_t remaining = 0;
    for (const auto& share : shares) remaining += share.slots;
    std::vector<std::uint32_t> order;
    order.reserve(remaining);
    std::vector<std::size_t> left(shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i) left[i] = shares[i].slots;
    while (remaining > 0) {
        for (std::size_t i = 0; i < shares.size(); ++i) {
            if (left[i] == 0) continue;
            order.push_back(shares[i].tag_id);
            --left[i];
            --remaining;
        }
    }
    return order;
}

std::vector<tdma_slot> tdma_scheduler::build_cycle(
    const std::vector<slot_share>& shares) const
{
    return build_cycle(interleave_shares(shares));
}

tdma_metrics tdma_scheduler::metrics(std::size_t tag_count) const
{
    if (tag_count == 0) throw std::invalid_argument("tdma: tag_count must be >= 1");
    tdma_metrics m;
    const double slot = slot_duration_s();
    m.cycle_time_s = slot * static_cast<double>(tag_count);
    const double payload_bits = static_cast<double>(cfg_.frame_payload_bytes) * 8.0;
    m.per_tag_goodput_bps = payload_bits / m.cycle_time_s;
    m.aggregate_goodput_bps = payload_bits / slot;
    const double payload_airtime = payload_bits / cfg_.phy_rate_bps;
    m.channel_utilization = payload_airtime / slot;
    return m;
}

} // namespace mmtag::mac
