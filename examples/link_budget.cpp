// Link-budget explorer: the analytic side of the library, no simulation.
//
// Prints the backscatter budget across distance for the default system and
// answers the deployment questions (max range per rate option, sensitivity
// to AP power and tag aperture) in closed form.
//
//   $ ./link_budget [tx_power_dbm] [elements]
#include <cstdio>
#include <cstdlib>

#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/core/link_budget.hpp"

int main(int argc, char** argv)
{
    using namespace mmtag;

    auto cfg = core::default_scenario();
    if (argc > 1) cfg.transmitter.tx_power_dbm = std::atof(argv[1]);
    if (argc > 2) {
        const int elements = std::atoi(argv[2]);
        if (elements < 2 || elements % 2 != 0 || elements > 64) {
            std::fprintf(stderr, "usage: %s [tx_power_dbm] [even elements in 2..64]\n",
                         argv[0]);
            return 1;
        }
        cfg.van_atta.element_count = static_cast<std::size_t>(elements);
    }

    const core::link_budget budget(cfg);
    std::printf("mmtag analytic link budget: %.0f dBm AP, %zu-element Van Atta tag, "
                "%.1f Msym/s, %.0f dB implementation loss\n\n",
                cfg.transmitter.tx_power_dbm, cfg.van_atta.element_count,
                cfg.symbol_rate_hz / 1e6, cfg.implementation_loss_db);

    std::printf("%-10s %-16s %-16s %-12s %s\n", "range_m", "at_tag_dBm", "at_AP_dBm",
                "SNR_dB", "interference_dBm");
    for (double d : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        const auto entry = budget.at(d);
        std::printf("%-10.1f %-16.1f %-16.1f %-12.1f %.1f\n", d, entry.incident_at_tag_dbm,
                    entry.received_at_ap_dbm, entry.snr_db, entry.static_interference_dbm);
    }

    std::printf("\nmaximum range per rate option (2 dB margin):\n");
    for (const auto& option : ap::rate_table()) {
        const double range = budget.max_range_m(option.required_snr_db + 2.0);
        std::printf("  %-7s %-9s %4.1f b/sym  ->  %.1f m\n",
                    phy::modulation_name(option.scheme).c_str(),
                    phy::fec_mode_name(option.fec), option.efficiency(), range);
    }

    std::printf("\nscaling laws (from the radar equation):\n");
    const double base_range = budget.max_range_m(4.1 + 2.0);
    std::printf("  +6 dB AP power  -> range x %.2f (expect 1.41)\n", [&] {
        auto boosted = cfg;
        boosted.transmitter.tx_power_dbm += 6.0;
        boosted.transmitter.pa.output_saturation_dbm += 6.0;
        return core::link_budget(boosted).max_range_m(4.1 + 2.0) / base_range;
    }());
    std::printf("  2x tag elements -> range x %.2f (expect 1.41, +6 dB backscatter gain)\n",
                [&] {
                    auto bigger = cfg;
                    bigger.van_atta.element_count *= 2;
                    return core::link_budget(bigger).max_range_m(4.1 + 2.0) / base_range;
                }());
    return 0;
}
