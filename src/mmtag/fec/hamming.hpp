// Hamming(7,4) block code — single-error-correcting, used for the frame
// header where Viterbi latency is not worth paying.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mmtag::fec {

/// Encodes a bit vector (0/1 values, length multiple of 4 — padded with zeros
/// otherwise) into Hamming(7,4) codewords.
[[nodiscard]] std::vector<std::uint8_t> hamming74_encode(std::span<const std::uint8_t> bits);

/// Decodes Hamming(7,4) codewords, correcting up to one bit error per
/// 7-bit block. `corrected_errors`, when non-null, receives the number of
/// corrections applied. Input length must be a multiple of 7.
[[nodiscard]] std::vector<std::uint8_t> hamming74_decode(std::span<const std::uint8_t> bits,
                                                         std::size_t* corrected_errors = nullptr);

} // namespace mmtag::fec
