#include "mmtag/antenna/element.hpp"

#include <stdexcept>

namespace mmtag::antenna {

patch_element::patch_element(double peak_gain_dbi, double exponent)
    : peak_linear_(from_db(peak_gain_dbi)), exponent_(exponent)
{
    if (exponent <= 0.0) throw std::invalid_argument("patch_element: exponent must be > 0");
}

double patch_element::gain(double theta_rad) const
{
    const double c = std::cos(theta_rad);
    if (c <= 0.0) return 0.0; // no radiation behind the ground plane
    return peak_linear_ * std::pow(c, 2.0 * exponent_);
}

double patch_element::half_power_beamwidth() const
{
    // cos^(2q)(theta) = 1/2  =>  theta = acos(2^(-1/(2q))).
    const double half_angle = std::acos(std::pow(2.0, -1.0 / (2.0 * exponent_)));
    return 2.0 * half_angle;
}

horn_element::horn_element(double gain_dbi) : peak_linear_(from_db(gain_dbi))
{
    if (gain_dbi <= 0.0) throw std::invalid_argument("horn_element: gain must be > 0 dBi");
    // Symmetric-beam approximation: G = 4 pi / theta^2  =>  theta = sqrt(4 pi / G).
    beamwidth_rad_ = std::sqrt(4.0 * pi / peak_linear_);
}

double horn_element::gain(double theta_rad) const
{
    // Gaussian beam: -3 dB at theta = beamwidth/2.
    const double x = theta_rad / (beamwidth_rad_ / 2.0);
    return peak_linear_ * std::exp2(-x * x);
}

} // namespace mmtag::antenna
