#include <gtest/gtest.h>

#include "mmtag/dsp/estimators.hpp"
#include "mmtag/dsp/iir.hpp"
#include "mmtag/dsp/nco.hpp"

namespace mmtag::dsp {
namespace {

double cascade_tone_gain(biquad_cascade& filter, double frequency_norm)
{
    filter.reset();
    nco osc(frequency_norm);
    const cvec tone = osc.generate(8192);
    const cvec out = filter.process(tone);
    const std::span<const cf64> tail{out.data() + 4096, 4096};
    return rms(tail);
}

TEST(iir, biquad_lowpass_attenuates_high_frequency)
{
    biquad_cascade filter{{design_biquad_lowpass(0.05)}};
    EXPECT_NEAR(cascade_tone_gain(filter, 0.005), 1.0, 0.02);
    EXPECT_LT(cascade_tone_gain(filter, 0.4), 0.02);
}

TEST(iir, biquad_highpass_attenuates_dc)
{
    biquad_cascade filter{{design_biquad_highpass(0.05)}};
    EXPECT_LT(cascade_tone_gain(filter, 0.001), 0.01);
    EXPECT_NEAR(cascade_tone_gain(filter, 0.4), 1.0, 0.02);
}

TEST(iir, notch_removes_center_keeps_neighbors)
{
    biquad_cascade filter{{design_biquad_notch(0.1, 10.0)}};
    EXPECT_LT(cascade_tone_gain(filter, 0.1), 0.02);
    EXPECT_NEAR(cascade_tone_gain(filter, 0.25), 1.0, 0.05);
    EXPECT_NEAR(cascade_tone_gain(filter, 0.01), 1.0, 0.05);
}

TEST(iir, butterworth_order_increases_rolloff)
{
    auto second = design_butterworth_lowpass(0.1, 2);
    auto sixth = design_butterworth_lowpass(0.1, 6);
    const double g2 = cascade_tone_gain(second, 0.2);
    const double g6 = cascade_tone_gain(sixth, 0.2);
    EXPECT_LT(g6, g2 / 10.0); // much steeper skirt
    EXPECT_EQ(second.section_count(), 1u);
    EXPECT_EQ(sixth.section_count(), 3u);
}

TEST(iir, butterworth_passband_flat)
{
    auto filter = design_butterworth_lowpass(0.1, 4);
    EXPECT_NEAR(cascade_tone_gain(filter, 0.01), 1.0, 0.02);
    // -3 dB at the corner.
    EXPECT_NEAR(cascade_tone_gain(filter, 0.1), std::sqrt(0.5), 0.03);
}

TEST(iir, design_validation)
{
    EXPECT_THROW((void)design_biquad_lowpass(0.0), std::invalid_argument);
    EXPECT_THROW((void)design_biquad_lowpass(0.1, -1.0), std::invalid_argument);
    EXPECT_THROW((void)design_butterworth_lowpass(0.1, 3), std::invalid_argument);
    EXPECT_THROW((void)design_butterworth_lowpass(0.1, 0), std::invalid_argument);
    EXPECT_THROW(biquad_cascade{std::vector<biquad_coefficients>{}}, std::invalid_argument);
}

TEST(iir, reset_restores_zero_state)
{
    biquad filter{design_biquad_lowpass(0.1)};
    (void)filter.process(cf64{10.0, 0.0});
    filter.reset();
    EXPECT_EQ(filter.process(cf64{}), cf64{});
}

} // namespace
} // namespace mmtag::dsp
