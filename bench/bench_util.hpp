// Shared plumbing for the experiment harnesses: the common flag parser
// (--csv/--json/--jobs/--seed), aligned-table/CSV printing, and the standard
// bench scenario (a faster-sampling variant of the default system so sweeps
// finish in seconds).
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "mmtag/core/config.hpp"

namespace mmtag::bench {

/// The flags every experiment binary accepts. Bench-specific extras
/// (`--fault-seed`, ...) are collected in `extra` for the bench to consume.
struct bench_options {
    bool csv = false;        ///< machine-readable table on stdout
    std::string json_path;   ///< --json PATH; empty = bench/out/BENCH_<id>.json
    std::size_t jobs = 0;    ///< --jobs N parallel executors; 0 = auto
    std::uint64_t seed = 1;  ///< --seed S: base of the per-trial seeding scheme
    std::map<std::string, std::string> extra;

    /// Strict non-negative integer: strtoull would wrap "--jobs -1" to
    /// 2^64-1 and truncate "1e3" to 1, silently running the wrong bench —
    /// reject anything that is not purely digits, plus overflow.
    [[nodiscard]] static std::uint64_t parse_u64_or_die(const std::string& text,
                                                        const char* key)
    {
        if (!text.empty() && text.find_first_not_of("0123456789") == std::string::npos) {
            errno = 0;
            char* end = nullptr;
            const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
            if (errno == 0 && end != nullptr && *end == '\0') return value;
        }
        std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
                     key, text.c_str());
        std::exit(2);
    }

    /// Strict double: the whole token must parse ("3.x" and "" are errors).
    [[nodiscard]] static double parse_double_or_die(const std::string& text,
                                                    const char* key)
    {
        if (!text.empty()) {
            char* end = nullptr;
            const double value = std::strtod(text.c_str(), &end);
            if (end != nullptr && *end == '\0') return value;
        }
        std::fprintf(stderr, "error: %s expects a number, got '%s'\n", key,
                     text.c_str());
        std::exit(2);
    }

    /// Parses argv; prints a message and exits(2) on malformed input so
    /// bench mains stay one-liners.
    static bench_options parse(int argc, char** argv)
    {
        bench_options opts;
        auto value_of = [&](int& i, const char* key) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", key);
                std::exit(2);
            }
            return argv[++i];
        };
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--csv") {
                opts.csv = true;
            } else if (arg == "--json") {
                opts.json_path = value_of(i, "--json");
            } else if (arg == "--jobs") {
                opts.jobs = static_cast<std::size_t>(
                    parse_u64_or_die(value_of(i, "--jobs"), "--jobs"));
            } else if (arg == "--seed") {
                opts.seed = parse_u64_or_die(value_of(i, "--seed"), "--seed");
            } else if (arg.rfind("--", 0) == 0 && arg.size() > 2) {
                // Bench-specific: `--key value` (value may be omitted for flags).
                const bool has_value = i + 1 < argc &&
                                       std::string(argv[i + 1]).rfind("--", 0) != 0;
                opts.extra[arg.substr(2)] = has_value ? argv[++i] : "";
            } else {
                std::fprintf(stderr, "error: unexpected argument '%s'\n", arg.c_str());
                std::exit(2);
            }
        }
        return opts;
    }

    [[nodiscard]] std::uint64_t extra_u64(const std::string& key,
                                          std::uint64_t fallback) const
    {
        const auto it = extra.find(key);
        if (it == extra.end()) return fallback;
        return parse_u64_or_die(it->second, ("--" + key).c_str());
    }

    [[nodiscard]] double extra_double(const std::string& key, double fallback) const
    {
        const auto it = extra.find(key);
        if (it == extra.end()) return fallback;
        return parse_double_or_die(it->second, ("--" + key).c_str());
    }
};

/// Simple column-aligned table with an optional CSV mode.
class table {
public:
    table(std::vector<std::string> headers, bool csv)
        : headers_(std::move(headers)), csv_(csv)
    {
    }

    void add_row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

    void print() const
    {
        if (csv_) {
            print_delimited(",");
            return;
        }
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
        for (const auto& row : rows_) {
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
                widths[c] = std::max(widths[c], row[c].size());
            }
        }
        print_row(headers_, widths);
        std::string rule;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            rule += std::string(widths[c], '-');
            if (c + 1 < widths.size()) rule += "--";
        }
        std::printf("%s\n", rule.c_str());
        for (const auto& row : rows_) print_row(row, widths);
    }

private:
    void print_delimited(const char* sep) const
    {
        auto emit = [&](const std::vector<std::string>& row) {
            for (std::size_t c = 0; c < row.size(); ++c) {
                std::printf("%s%s", row[c].c_str(), c + 1 < row.size() ? sep : "");
            }
            std::printf("\n");
        };
        emit(headers_);
        for (const auto& row : rows_) emit(row);
    }

    void print_row(const std::vector<std::string>& row,
                   const std::vector<std::size_t>& widths) const
    {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                        c + 1 < row.size() ? "  " : "");
        }
        std::printf("\n");
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    bool csv_;
};

inline std::string fmt(const char* format, double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, format, value);
    return buffer;
}

/// The bench scenario: the library's fast (50 MS/s) preset.
inline core::system_config bench_scenario()
{
    return core::fast_scenario();
}

inline void banner(const char* id, const char* title, bool csv)
{
    if (csv) return;
    std::printf("\n=== %s: %s ===\n\n", id, title);
}

} // namespace mmtag::bench
