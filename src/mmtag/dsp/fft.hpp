// Radix-2 iterative FFT with cached twiddle plans, plus spectrum helpers.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Returns true when n is a power of two (n >= 1).
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_power_of_two(std::size_t n);

/// Pre-planned radix-2 FFT of a fixed power-of-two size.
///
/// The plan caches the bit-reversal permutation and twiddle factors so that
/// repeated transforms of the same size (the common case in streaming DSP)
/// cost no setup work.
class fft_plan {
public:
    /// Creates a plan for transforms of length `size` (power of two, >= 1).
    explicit fft_plan(std::size_t size);

    [[nodiscard]] std::size_t size() const { return size_; }

    /// In-place forward DFT: X[k] = sum_n x[n] exp(-j 2 pi n k / N).
    void forward(std::span<cf64> data) const;

    /// In-place inverse DFT including the 1/N normalization.
    void inverse(std::span<cf64> data) const;

private:
    void transform(std::span<cf64> data, bool invert) const;

    std::size_t size_;
    std::vector<std::size_t> bit_reverse_;
    cvec twiddles_; // exp(-j 2 pi k / N) for k in [0, N/2)
};

/// One-shot forward FFT; input length must be a power of two.
[[nodiscard]] cvec fft(std::span<const cf64> input);

/// One-shot inverse FFT (normalized); input length must be a power of two.
[[nodiscard]] cvec ifft(std::span<const cf64> input);

/// Linear convolution of two sequences via zero-padded FFT.
[[nodiscard]] cvec fft_convolve(std::span<const cf64> a, std::span<const cf64> b);

/// Power spectrum |X[k]|^2 / N of `input` (zero-padded to a power of two).
[[nodiscard]] rvec power_spectrum(std::span<const cf64> input);

/// Rotates a spectrum so that DC sits in the middle (MATLAB fftshift).
[[nodiscard]] rvec fft_shift(std::span<const double> spectrum);

} // namespace mmtag::dsp
