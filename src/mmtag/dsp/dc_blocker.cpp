#include "mmtag/dsp/dc_blocker.hpp"

#include <stdexcept>

namespace mmtag::dsp {

dc_blocker::dc_blocker(double pole) : pole_(pole)
{
    if (!(pole > 0.0 && pole < 1.0)) {
        throw std::invalid_argument("dc_blocker: pole must be in (0, 1)");
    }
}

cf64 dc_blocker::process(cf64 input)
{
    const cf64 output = input - previous_input_ + pole_ * previous_output_;
    previous_input_ = input;
    previous_output_ = output;
    return output;
}

cvec dc_blocker::process(std::span<const cf64> input)
{
    cvec out;
    out.reserve(input.size());
    for (cf64 x : input) out.push_back(process(x));
    return out;
}

void dc_blocker::reset()
{
    previous_input_ = cf64{};
    previous_output_ = cf64{};
}

double dc_blocker::magnitude_response(double frequency_norm) const
{
    const cf64 z = std::polar(1.0, two_pi * frequency_norm);
    const cf64 response = (1.0 - 1.0 / z) / (1.0 - pole_ / z);
    return std::abs(response);
}

cvec remove_mean(std::span<const cf64> input)
{
    if (input.empty()) return {};
    cf64 mean{};
    for (cf64 x : input) mean += x;
    mean /= static_cast<double>(input.size());
    cvec out;
    out.reserve(input.size());
    for (cf64 x : input) out.push_back(x - mean);
    return out;
}

} // namespace mmtag::dsp
