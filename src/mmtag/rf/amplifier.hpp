// Amplifier models: linear gain + additive noise referred to the input (LNA)
// and Rapp soft-saturation nonlinearity (PA).
#pragma once

#include <random>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::rf {

/// Low-noise amplifier: applies voltage gain and adds noise equivalent to its
/// noise figure over the simulation bandwidth.
class lna {
public:
    struct config {
        double gain_db = 20.0;
        double noise_figure_db = 3.0;
        double bandwidth_hz = 1e9; ///< noise bandwidth of the simulation
        double temperature_kelvin = t0_kelvin;
    };

    lna(const config& cfg, std::uint64_t seed);

    [[nodiscard]] double gain_db() const { return cfg_.gain_db; }
    [[nodiscard]] double noise_figure_db() const { return cfg_.noise_figure_db; }

    /// Added-noise power at the *input* reference plane [W].
    [[nodiscard]] double input_referred_noise_power() const;

    [[nodiscard]] cf64 process(cf64 input);
    [[nodiscard]] cvec process(std::span<const cf64> input);

private:
    config cfg_;
    double voltage_gain_;
    double noise_sigma_;
    std::mt19937_64 rng_;
    std::normal_distribution<double> gaussian_{0.0, 1.0};
};

/// Power amplifier with the Rapp AM/AM model:
///   g(a) = G a / (1 + (G a / A_sat)^(2p))^(1/2p)
/// AM/PM is assumed negligible (solid-state PA).
class power_amplifier {
public:
    struct config {
        double gain_db = 30.0;
        double output_saturation_dbm = 30.0; ///< saturated output power
        double smoothness = 2.0;             ///< Rapp p factor
    };

    explicit power_amplifier(const config& cfg);

    [[nodiscard]] cf64 process(cf64 input) const;
    [[nodiscard]] cvec process(std::span<const cf64> input) const;

    /// Output power [dBm] for a CW input of `input_dbm` — for compression
    /// curve characterization.
    [[nodiscard]] double output_power_dbm(double input_dbm) const;

    /// Input power at which gain drops 1 dB below small-signal gain.
    [[nodiscard]] double input_p1db_dbm() const;

private:
    config cfg_;
    double voltage_gain_;
    double saturation_amplitude_; // volts across 1 ohm reference
};

} // namespace mmtag::rf
