// Shared JSON I/O utilities: the parser round-trips every document shape the
// result writers emit (byte-stable through parse -> dump), rejects malformed
// input loudly, and the text-file helpers survive a disk round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "mmtag/runtime/json_io.hpp"
#include "mmtag/runtime/result_writer.hpp"

namespace {

using namespace mmtag;
using runtime::json_value;
using runtime::parse_json;

std::string temp_path(const char* name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(JsonIo, ParsesScalars)
{
    EXPECT_TRUE(parse_json("null")->is_null());
    EXPECT_EQ(parse_json("true")->as_boolean(), true);
    EXPECT_EQ(parse_json("false")->as_boolean(), false);
    EXPECT_EQ(parse_json("42")->as_uint(), 42u);
    EXPECT_DOUBLE_EQ(parse_json("-17")->as_number(), -17.0);
    EXPECT_DOUBLE_EQ(parse_json("2.5e-3")->as_number(), 2.5e-3);
    EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(JsonIo, ParsesEscapesAndUnicode)
{
    const auto doc = parse_json(R"("a\"b\\c\n\té")");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->as_string(), "a\"b\\c\n\t\xc3\xa9");
}

TEST(JsonIo, ParsesNestedDocument)
{
    const auto doc = parse_json(
        R"({"schema":"x/1","list":[1,2.5,{"k":null}],"flag":true})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("schema")->as_string(), "x/1");
    const json_value* list = doc->find("list");
    ASSERT_NE(list, nullptr);
    EXPECT_EQ(list->size(), 3u);
    EXPECT_EQ(list->at(0).as_uint(), 1u);
    EXPECT_DOUBLE_EQ(list->at(1).as_number(), 2.5);
    EXPECT_TRUE(list->at(2).find("k")->is_null());
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonIo, DumpParseDumpIsByteStable)
{
    auto doc = json_value::object();
    doc.set("name", json_value::string("scale"));
    doc.set("pi", json_value::number(3.141592653589793));
    doc.set("tiny", json_value::number(2.5e-3));
    doc.set("count", json_value::unsigned_integer(10000));
    doc.set("delta", json_value::integer(-3));
    auto arr = json_value::array();
    arr.push(json_value::boolean(true));
    arr.push(json_value::null());
    doc.set("arr", std::move(arr));

    const std::string first = doc.dump();
    const auto parsed = parse_json(first);
    ASSERT_TRUE(parsed.has_value());
    // Byte-stability through a full round trip is what lets cached
    // documents be compared with string equality.
    EXPECT_EQ(parsed->dump(), first);
}

TEST(JsonIo, RejectsMalformedInput)
{
    EXPECT_FALSE(parse_json("").has_value());
    EXPECT_FALSE(parse_json("{").has_value());
    EXPECT_FALSE(parse_json("[1,]").has_value());
    EXPECT_FALSE(parse_json("{\"a\":1,}").has_value());
    EXPECT_FALSE(parse_json("\"unterminated").has_value());
    EXPECT_FALSE(parse_json("nul").has_value());
    EXPECT_FALSE(parse_json("1 2").has_value()); // trailing garbage
    EXPECT_FALSE(parse_json("{\"a\" 1}").has_value());
}

TEST(JsonIo, RejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 200; ++i) deep += "[";
    EXPECT_FALSE(parse_json(deep).has_value());
}

TEST(JsonIo, TextFileRoundTrip)
{
    const std::string path = temp_path("mmtag_json_io_roundtrip.json");
    const std::string text = "{\"k\": 1}\n";
    ASSERT_TRUE(runtime::write_text_file(path, text));
    const auto back = runtime::read_text_file(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, text);
    std::remove(path.c_str());
    EXPECT_FALSE(runtime::read_text_file(path).has_value());
}

TEST(JsonIo, SchemaObjectAndRatioHelpers)
{
    const auto doc = runtime::schema_object("mmtag.test/1");
    EXPECT_EQ(doc.find("schema")->as_string(), "mmtag.test/1");
    EXPECT_TRUE(runtime::ratio_or_null(0.5, 0).is_null());
    EXPECT_DOUBLE_EQ(runtime::ratio_or_null(0.5, 10).as_number(), 0.5);
}

} // namespace
