// Stop-and-wait ARQ over the backscatter uplink: the AP re-queries a tag
// until a frame passes CRC. Simple, and the right fit for a half-duplex
// query/response link where the AP controls every transmission anyway.
//
// Retries optionally space out with capped exponential backoff (the policy
// the ap::link_supervisor reuses during outages), and the implicit ACK — the
// AP's next query — can itself be lost, in which case the tag retransmits a
// frame the AP already holds and the AP discards the duplicate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>

namespace mmtag::mac {

struct arq_config {
    std::size_t max_retries = 8; ///< attempts per frame before giving up
    double frame_time_s = 300e-6;
    double ack_time_s = 20e-6;   ///< re-query / implicit ACK airtime
    /// Idle wait before retry k (k >= 1): min(initial * factor^(k-1), cap).
    /// The default 0 keeps the classic immediate-retransmit behavior.
    double initial_backoff_s = 0.0;
    double backoff_factor = 2.0;
    double max_backoff_s = 5e-3;
    /// Probability the implicit ACK is lost after a successful delivery,
    /// forcing a redundant retransmission the receiver must deduplicate.
    double ack_loss = 0.0;
};

struct arq_stats {
    std::size_t frames_offered = 0;
    std::size_t frames_delivered = 0;
    std::size_t transmissions = 0;
    /// Successful deliveries repeated because the ACK was lost; the receiver
    /// discards these by sequence number.
    std::size_t duplicates_discarded = 0;
    double airtime_s = 0.0;
    double backoff_wait_s = 0.0; ///< idle time spent backing off (in airtime_s)

    [[nodiscard]] double delivery_ratio() const;
    /// Delivered frames per transmission (1.0 = never retransmits).
    [[nodiscard]] double transmission_efficiency() const;
    /// Goodput for `payload_bits` per frame.
    [[nodiscard]] double goodput_bps(double payload_bits) const;
};

class stop_and_wait_arq {
public:
    explicit stop_and_wait_arq(const arq_config& cfg = {});

    [[nodiscard]] const arq_config& parameters() const { return cfg_; }

    /// Simulates `frame_count` frames over a link whose per-attempt frame
    /// success probability is `frame_success`.
    [[nodiscard]] arq_stats run(std::size_t frame_count, double frame_success,
                                std::uint64_t seed) const;

    /// Idle wait preceding attempt `attempt` (0-based; attempt 0 never
    /// waits): min(initial * factor^(attempt-1), cap).
    [[nodiscard]] double backoff_delay_s(std::size_t attempt) const;

    /// Expected transmissions per delivered frame: 1/p (capped by retries).
    [[nodiscard]] double expected_transmissions(double frame_success) const;

private:
    arq_config cfg_;
};

} // namespace mmtag::mac
