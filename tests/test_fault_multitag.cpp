// fault_schedule event normalization (the documented merge rule) and the
// multi-tag chaos plan: correlated storms, rolling brownouts, healthy-tag
// isolation, and same-seed determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "mmtag/fault/fault_schedule.hpp"
#include "mmtag/fault/multi_tag_faults.hpp"

namespace {

using mmtag::fault::fault_event;
using mmtag::fault::fault_kind;
using mmtag::fault::fault_schedule;
using mmtag::fault::multi_tag_config;
using mmtag::fault::multi_tag_plan;

fault_event event(fault_kind kind, double start_s, double duration_s,
                  double magnitude = 1.0)
{
    fault_event out;
    out.kind = kind;
    out.start_s = start_s;
    out.duration_s = duration_s;
    out.magnitude = magnitude;
    return out;
}

TEST(fault_schedule_normalize, drops_zero_duration_except_lo_step)
{
    const auto out = fault_schedule::normalize({
        event(fault_kind::blockage, 1e-3, 0.0, 12.0),
        event(fault_kind::brownout, 2e-3, 0.0),
        event(fault_kind::lo_step, 3e-3, 0.0, 100e3),
    });
    // A zero-length window can never overlap a frame, but an lo_step persists
    // until re-lock, so only it survives.
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.front().kind, fault_kind::lo_step);
    EXPECT_DOUBLE_EQ(out.front().start_s, 3e-3);
}

TEST(fault_schedule_normalize, merges_overlapping_same_kind_to_union_and_deepest)
{
    const auto out = fault_schedule::normalize({
        event(fault_kind::blockage, 1e-3, 2e-3, 10.0),
        event(fault_kind::blockage, 2e-3, 3e-3, 18.0), // overlaps the first
        event(fault_kind::blockage, 5e-3, 1e-3, 4.0),  // touches the merged end
    });
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out.front().start_s, 1e-3);
    EXPECT_DOUBLE_EQ(out.front().end_s(), 6e-3);
    EXPECT_DOUBLE_EQ(out.front().magnitude, 18.0)
        << "deepest magnitude wins, matching the injector's aggregation";
}

TEST(fault_schedule_normalize, never_merges_across_kinds_or_lo_steps)
{
    const auto across = fault_schedule::normalize({
        event(fault_kind::blockage, 1e-3, 2e-3, 10.0),
        event(fault_kind::brownout, 1e-3, 2e-3),
    });
    EXPECT_EQ(across.size(), 2u) << "different kinds never merge";

    const auto steps = fault_schedule::normalize({
        event(fault_kind::lo_step, 1e-3, 2e-3, 100e3),
        event(fault_kind::lo_step, 2e-3, 2e-3, 200e3),
    });
    EXPECT_EQ(steps.size(), 2u)
        << "which lo_step is latest is semantic; they must not merge";
}

TEST(fault_schedule_normalize, disjoint_events_stay_separate_and_sorted)
{
    auto out = fault_schedule::normalize({
        event(fault_kind::blockage, 6e-3, 1e-3, 9.0),
        event(fault_kind::blockage, 1e-3, 2e-3, 10.0), // gap in (3, 6) ms
    });
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0].start_s, 1e-3);
    EXPECT_DOUBLE_EQ(out[1].start_s, 6e-3);

    // Normalizing a normalized list is a no-op.
    const auto again = fault_schedule::normalize(out);
    ASSERT_EQ(again.size(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_DOUBLE_EQ(again[i].start_s, out[i].start_s);
        EXPECT_DOUBLE_EQ(again[i].duration_s, out[i].duration_s);
        EXPECT_DOUBLE_EQ(again[i].magnitude, out[i].magnitude);
    }
}

TEST(fault_schedule_normalize, rejects_non_finite_and_negative_fields)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW((void)fault_schedule::normalize({event(fault_kind::blockage, nan, 1e-3)}),
                 std::invalid_argument);
    EXPECT_THROW((void)fault_schedule::normalize({event(fault_kind::blockage, 0.0, inf)}),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)fault_schedule::normalize({event(fault_kind::blockage, -1e-3, 1e-3)}),
        std::invalid_argument);
    EXPECT_THROW(
        (void)fault_schedule::normalize({event(fault_kind::blockage, 0.0, -1e-3)}),
        std::invalid_argument);
    EXPECT_THROW(
        (void)fault_schedule::normalize({event(fault_kind::blockage, 0.0, 1e-3, nan)}),
        std::invalid_argument);
    // Negative magnitudes are legal: an lo_step can detune downward.
    EXPECT_EQ(
        fault_schedule::normalize({event(fault_kind::lo_step, 0.0, 0.0, -100e3)}).size(),
        1u);
}

TEST(fault_schedule_explicit_ctor, bounds_events_to_the_horizon)
{
    const fault_schedule ok(10e-3, {event(fault_kind::blockage, 9e-3, 5e-3, 12.0)});
    EXPECT_EQ(ok.count(fault_kind::blockage), 1u)
        << "events may end past the horizon, just not start there";

    EXPECT_THROW(fault_schedule(10e-3, {event(fault_kind::blockage, 10e-3, 1e-3)}),
                 std::invalid_argument);
    EXPECT_THROW(fault_schedule(10e-3, {event(fault_kind::blockage, 11e-3, 1e-3)}),
                 std::invalid_argument);
}

multi_tag_config plan_config()
{
    multi_tag_config cfg;
    cfg.horizon_s = 50e-3;
    cfg.storm_rate_hz = 80.0;
    cfg.storm_span = 3;
    return cfg;
}

TEST(multi_tag_plan, same_seed_reproduces_the_exact_timelines)
{
    const multi_tag_plan a(plan_config(), 6, 3, 77);
    const multi_tag_plan b(plan_config(), 6, 3, 77);
    ASSERT_EQ(a.per_tag().size(), b.per_tag().size());
    for (std::size_t tag = 0; tag < a.per_tag().size(); ++tag) {
        const auto& ea = a.per_tag()[tag].events();
        const auto& eb = b.per_tag()[tag].events();
        ASSERT_EQ(ea.size(), eb.size()) << "tag " << tag;
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].kind, eb[i].kind);
            EXPECT_DOUBLE_EQ(ea[i].start_s, eb[i].start_s);
            EXPECT_DOUBLE_EQ(ea[i].duration_s, eb[i].duration_s);
            EXPECT_DOUBLE_EQ(ea[i].magnitude, eb[i].magnitude);
        }
    }
    EXPECT_DOUBLE_EQ(a.last_fault_end_s(), b.last_fault_end_s());

    const multi_tag_plan c(plan_config(), 6, 3, 78);
    bool any_difference = false;
    for (std::size_t tag = 0; tag < 3 && !any_difference; ++tag) {
        const auto& ea = a.per_tag()[tag].events();
        const auto& ec = c.per_tag()[tag].events();
        if (ea.size() != ec.size()) {
            any_difference = true;
            break;
        }
        for (std::size_t i = 0; i < ea.size(); ++i) {
            any_difference = any_difference || ea[i].start_s != ec[i].start_s ||
                             ea[i].magnitude != ec[i].magnitude;
        }
    }
    EXPECT_TRUE(any_difference) << "a different seed draws a different plan";
}

TEST(multi_tag_plan, healthy_tags_have_empty_schedules)
{
    const multi_tag_plan plan(plan_config(), 6, 2, 11);
    for (std::size_t tag = 0; tag < 6; ++tag) {
        if (tag < 2) continue;
        EXPECT_TRUE(plan.per_tag()[tag].events().empty()) << "tag " << tag;
    }
    // The faulted ones actually draw something at these rates.
    EXPECT_FALSE(plan.per_tag()[0].events().empty());
}

TEST(multi_tag_plan, storms_shadow_a_contiguous_span_with_one_event)
{
    // Storms only: disable everything else so per-tag blockage events are
    // exactly the storm pattern.
    multi_tag_config cfg = plan_config();
    cfg.brownout_period_s = 0.0;
    cfg.interferer_duration_s = 0.0;
    cfg.background_rate_hz = 0.0;
    const multi_tag_plan plan(cfg, 6, 4, 21);

    // Every storm shadows a contiguous span with the *same* event: an onset
    // appearing on several tags must carry the same duration and depth on
    // all of them (one body, one shadow). Span groups start at a uniformly
    // drawn origin, so scan every faulted-tag pair for shared onsets.
    std::size_t total_events = 0;
    std::size_t shared_events = 0;
    for (std::size_t tag = 0; tag < 4; ++tag) {
        const auto& events = plan.per_tag()[tag].events();
        total_events += events.size();
        for (const auto& ev : events) {
            EXPECT_EQ(ev.kind, fault_kind::blockage);
            EXPECT_LT(ev.start_s, cfg.horizon_s * cfg.active_fraction)
                << "faults must leave the recovery tail quiet";
            EXPECT_GE(ev.magnitude, cfg.storm_depth_db_min);
            EXPECT_LE(ev.magnitude, cfg.storm_depth_db_max);
            for (std::size_t other_tag = tag + 1; other_tag < 4; ++other_tag) {
                for (const auto& other : plan.per_tag()[other_tag].events()) {
                    if (other.start_s == ev.start_s) {
                        ++shared_events;
                        EXPECT_DOUBLE_EQ(other.duration_s, ev.duration_s);
                        EXPECT_DOUBLE_EQ(other.magnitude, ev.magnitude);
                    }
                }
            }
        }
    }
    EXPECT_GT(total_events, 0u);
    EXPECT_GT(shared_events, 0u)
        << "no two tags ever shared a storm — the events are not correlated";
}

TEST(multi_tag_plan, brownouts_roll_with_the_configured_stagger)
{
    multi_tag_config cfg = plan_config();
    cfg.storm_rate_hz = 0.0;
    cfg.interferer_duration_s = 0.0;
    cfg.background_rate_hz = 0.0;
    cfg.brownout_period_s = 20e-3;
    cfg.brownout_stagger_s = 3e-3;
    const multi_tag_plan plan(cfg, 4, 3, 5);

    for (std::size_t tag = 0; tag < 3; ++tag) {
        const auto& events = plan.per_tag()[tag].events();
        ASSERT_FALSE(events.empty()) << "tag " << tag;
        for (std::size_t k = 0; k < events.size(); ++k) {
            EXPECT_EQ(events[k].kind, fault_kind::brownout);
            EXPECT_DOUBLE_EQ(events[k].start_s,
                             static_cast<double>(tag) * cfg.brownout_stagger_s +
                                 static_cast<double>(k) * cfg.brownout_period_s);
            EXPECT_DOUBLE_EQ(events[k].duration_s, cfg.brownout_duration_s);
        }
    }
}

TEST(multi_tag_plan, shared_channel_carries_the_persistent_interferer)
{
    multi_tag_config cfg = plan_config();
    cfg.storm_rate_hz = 0.0;
    cfg.brownout_period_s = 0.0;
    cfg.background_rate_hz = 0.0;
    const multi_tag_plan plan(cfg, 3, 1, 9);

    ASSERT_EQ(plan.shared().events().size(), 1u);
    const auto& cw = plan.shared().events().front();
    EXPECT_EQ(cw.kind, fault_kind::interferer);
    EXPECT_DOUBLE_EQ(cw.start_s, cfg.interferer_start_s);
    EXPECT_DOUBLE_EQ(cw.duration_s, cfg.interferer_duration_s);
    EXPECT_DOUBLE_EQ(cw.magnitude, cfg.interferer_rel_db);
    EXPECT_DOUBLE_EQ(plan.last_fault_end_s(), cw.end_s());
}

TEST(multi_tag_plan, rejects_degenerate_configurations)
{
    EXPECT_THROW(multi_tag_plan(plan_config(), 4, 5, 1), std::invalid_argument)
        << "faulted_count > tag_count";
    multi_tag_config cfg = plan_config();
    cfg.horizon_s = 0.0;
    EXPECT_THROW(multi_tag_plan(cfg, 4, 2, 1), std::invalid_argument);
    cfg = plan_config();
    cfg.active_fraction = 1.5;
    EXPECT_THROW(multi_tag_plan(cfg, 4, 2, 1), std::invalid_argument);
    cfg = plan_config();
    cfg.storm_span = 0;
    EXPECT_THROW(multi_tag_plan(cfg, 4, 2, 1), std::invalid_argument);
}

} // namespace
