#include "mmtag/tag/addressable_tag.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::tag {

addressable_tag::addressable_tag(const config& cfg)
    : cfg_(cfg), modulator_(cfg.modulator), detector_(cfg.detector, cfg.seed),
      decoder_(cfg.decoder)
{
    if (cfg.turnaround_s < 0.0) throw std::invalid_argument("addressable_tag: turnaround < 0");
    if (cfg.detector.sample_rate_hz != cfg.modulator.sample_rate_hz) {
        throw std::invalid_argument("addressable_tag: detector/modulator sample rates differ");
    }
}

bool addressable_tag::addressed_by(const ap::tag_command& cmd) const
{
    return cmd.tag_id == cfg_.tag_id;
}

void addressable_tag::apply_command(const ap::tag_command& cmd)
{
    switch (cmd.command) {
    case ap::tag_command::kind::query_all:
        // New round: everyone wakes and deselects.
        selected_ = false;
        muted_ = false;
        break;
    case ap::tag_command::kind::select:
        selected_ = addressed_by(cmd);
        break;
    case ap::tag_command::kind::sleep:
        if (addressed_by(cmd)) {
            muted_ = true;
            selected_ = false;
        }
        break;
    case ap::tag_command::kind::read:
        break; // handled by the caller (needs timing)
    }
}

addressable_tag::reaction addressable_tag::process(std::span<const cf64> incident,
                                                   std::span<const std::uint8_t> payload)
{
    reaction result;
    const cf64 absorb = modulator_.bank().gammas()[modulator_.bank().absorb_state()];
    result.gamma.assign(incident.size(), absorb);

    const rvec envelope = detector_.detect(incident);
    const auto decoded = decoder_.decode(envelope);
    if (!decoded) return result;

    result.command_heard = true;
    result.command = decoded->command;
    apply_command(decoded->command);

    const bool is_read = decoded->command.command == ap::tag_command::kind::read;
    const bool for_us = addressed_by(decoded->command) || selected_;
    if (!is_read || !for_us || muted_) return result;

    const auto turnaround = static_cast<std::size_t>(
        std::round(cfg_.turnaround_s * cfg_.modulator.sample_rate_hz));
    result.respond_sample = decoded->end_sample + turnaround;
    if (result.respond_sample >= incident.size()) return result;

    const modulated_frame frame = modulator_.modulate(payload);
    const std::size_t copy_count =
        std::min(frame.gamma.size(), incident.size() - result.respond_sample);
    std::copy_n(frame.gamma.begin(), copy_count,
                result.gamma.begin() + static_cast<std::ptrdiff_t>(result.respond_sample));
    result.responded = true;
    return result;
}

} // namespace mmtag::tag
