#include <gtest/gtest.h>

#include <random>

#include "mmtag/phy/bitio.hpp"
#include "mmtag/phy/modulation.hpp"

namespace mmtag::phy {
namespace {

const modulation all_schemes[] = {modulation::bpsk, modulation::qpsk, modulation::psk8,
                                  modulation::psk16};

class scheme_properties : public ::testing::TestWithParam<modulation> {};

TEST_P(scheme_properties, constellation_unit_energy)
{
    for (const auto& point : constellation(GetParam())) {
        EXPECT_NEAR(std::abs(point), 1.0, 1e-12);
    }
}

TEST_P(scheme_properties, constellation_points_distinct)
{
    const cvec points = constellation(GetParam());
    for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = i + 1; j < points.size(); ++j) {
            EXPECT_GT(std::abs(points[i] - points[j]), 1e-6);
        }
    }
}

TEST_P(scheme_properties, gray_mapping_adjacent_points_differ_by_one_bit)
{
    const modulation scheme = GetParam();
    const cvec points = constellation(scheme);
    const std::size_t m = points.size();
    if (m < 4) GTEST_SKIP() << "trivial for BPSK";
    // Walk the circle by phase; adjacent phases must differ in exactly 1 bit.
    std::vector<std::size_t> by_phase(m);
    for (std::size_t bits = 0; bits < m; ++bits) {
        const double angle = std::arg(points[bits]);
        const double positive = angle < -1e-9 ? angle + two_pi : angle;
        const auto position = static_cast<std::size_t>(
            std::llround(positive * static_cast<double>(m) / two_pi)) % m;
        by_phase[position] = bits;
    }
    for (std::size_t p = 0; p < m; ++p) {
        const std::size_t a = by_phase[p];
        const std::size_t b = by_phase[(p + 1) % m];
        EXPECT_EQ(__builtin_popcountll(a ^ b), 1) << "positions " << p;
    }
}

TEST_P(scheme_properties, map_demap_round_trip)
{
    const modulation scheme = GetParam();
    const std::size_t k = bits_per_symbol(scheme);
    const auto bits = random_bits(120 * k, 7);
    const cvec symbols = map_bits(bits, scheme);
    EXPECT_EQ(symbols.size(), 120u);
    const auto recovered = demap_hard(symbols, scheme);
    ASSERT_EQ(recovered.size(), bits.size());
    EXPECT_EQ(recovered, bits);
}

TEST_P(scheme_properties, soft_demap_signs_match_hard_decisions)
{
    const modulation scheme = GetParam();
    const std::size_t k = bits_per_symbol(scheme);
    const auto bits = random_bits(64 * k, 9);
    const cvec symbols = map_bits(bits, scheme);
    const auto soft = demap_soft(symbols, scheme, 0.1);
    ASSERT_EQ(soft.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) EXPECT_LT(soft[i], 0.0) << i;
        else EXPECT_GT(soft[i], 0.0) << i;
    }
}

TEST_P(scheme_properties, theoretical_ber_decreases_with_snr)
{
    const modulation scheme = GetParam();
    double previous = 1.0;
    for (double ebn0 = 0.0; ebn0 <= 16.0; ebn0 += 2.0) {
        const double ber = theoretical_ber(scheme, ebn0);
        EXPECT_LT(ber, previous);
        EXPECT_GE(ber, 0.0);
        previous = ber;
    }
}

INSTANTIATE_TEST_SUITE_P(schemes, scheme_properties, ::testing::ValuesIn(all_schemes));

TEST(modulation, bits_per_symbol_values)
{
    EXPECT_EQ(bits_per_symbol(modulation::bpsk), 1u);
    EXPECT_EQ(bits_per_symbol(modulation::qpsk), 2u);
    EXPECT_EQ(bits_per_symbol(modulation::psk8), 3u);
    EXPECT_EQ(bits_per_symbol(modulation::psk16), 4u);
}

TEST(modulation, bpsk_points_are_plus_minus_one)
{
    const cvec points = constellation(modulation::bpsk);
    EXPECT_NEAR(std::abs(points[0] - cf64{1.0, 0.0}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(points[1] - cf64{-1.0, 0.0}), 0.0, 1e-12);
}

TEST(modulation, bpsk_subset_of_qpsk_and_psk8)
{
    // The tag realizes every scheme with one stub bank, so {+1,-1} must be
    // constellation points of every even-order scheme.
    for (auto scheme : {modulation::qpsk, modulation::psk8, modulation::psk16}) {
        const cvec points = constellation(scheme);
        bool has_plus = false;
        bool has_minus = false;
        for (const auto& p : points) {
            if (std::abs(p - cf64{1.0, 0.0}) < 1e-9) has_plus = true;
            if (std::abs(p - cf64{-1.0, 0.0}) < 1e-9) has_minus = true;
        }
        EXPECT_TRUE(has_plus && has_minus) << modulation_name(scheme);
    }
}

TEST(modulation, bpsk_theory_known_points)
{
    // Eb/N0 = 9.6 dB -> BER ~ 1e-5 for BPSK.
    EXPECT_NEAR(std::log10(theoretical_ber(modulation::bpsk, 9.6)), -5.0, 0.15);
    // Q(0) = 0.5 at very low SNR -> BER ~ 0.5 as Eb/N0 -> -inf.
    EXPECT_NEAR(theoretical_ber(modulation::bpsk, -40.0), 0.5, 0.02);
}

TEST(modulation, higher_order_needs_more_snr)
{
    const double ebn0 = 10.0;
    EXPECT_LT(theoretical_ber(modulation::bpsk, ebn0), theoretical_ber(modulation::psk8, ebn0));
    EXPECT_LT(theoretical_ber(modulation::psk8, ebn0), theoretical_ber(modulation::psk16, ebn0));
}

TEST(modulation, demap_hard_nearest_neighbor_under_noise)
{
    std::mt19937_64 rng(21);
    std::normal_distribution<double> g(0.0, 0.05);
    const auto bits = random_bits(400, 23);
    const cvec clean = map_bits(bits, modulation::qpsk);
    cvec noisy(clean.size());
    for (std::size_t i = 0; i < clean.size(); ++i) noisy[i] = clean[i] + cf64{g(rng), g(rng)};
    EXPECT_EQ(demap_hard(noisy, modulation::qpsk), bits);
}

TEST(modulation, soft_demap_validation)
{
    EXPECT_THROW((void)demap_soft(cvec{{1.0, 0.0}}, modulation::qpsk, 0.0),
                 std::invalid_argument);
}

TEST(modulation, q_function_values)
{
    EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
    EXPECT_NEAR(q_function(1.0), 0.1587, 1e-4);
    EXPECT_NEAR(q_function(3.0), 1.35e-3, 1e-5);
}

TEST(bitio, bytes_bits_round_trip)
{
    const auto bytes = random_bytes(33, 3);
    const auto bits = bytes_to_bits(bytes);
    EXPECT_EQ(bits.size(), 33u * 8);
    EXPECT_EQ(bits_to_bytes(bits), bytes);
}

TEST(bitio, msb_first_convention)
{
    const std::vector<std::uint8_t> bytes{0x80, 0x01};
    const auto bits = bytes_to_bits(bytes);
    EXPECT_EQ(bits[0], 1);
    EXPECT_EQ(bits[7], 0);
    EXPECT_EQ(bits[15], 1);
}

TEST(bitio, string_round_trip)
{
    const std::string text = "mmtag backscatter";
    EXPECT_EQ(bytes_to_string(string_to_bytes(text)), text);
}

TEST(bitio, hamming_distance_basic)
{
    const std::vector<std::uint8_t> a{0, 1, 1, 0};
    const std::vector<std::uint8_t> b{1, 1, 0, 0};
    EXPECT_EQ(hamming_distance(a, b), 2u);
    EXPECT_THROW((void)hamming_distance(a, std::vector<std::uint8_t>{0}),
                 std::invalid_argument);
}

TEST(bitio, random_deterministic_by_seed)
{
    EXPECT_EQ(random_bytes(16, 5), random_bytes(16, 5));
    EXPECT_NE(random_bytes(16, 5), random_bytes(16, 6));
}

} // namespace
} // namespace mmtag::phy
