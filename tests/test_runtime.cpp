// The parallel Monte-Carlo runtime: shard pool semantics, the frozen
// counter-based seeding scheme, the jobs-invariance determinism contract,
// replay under injected faults on the parallel path, and the stability of
// the JSON result schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/metrics.hpp"
#include "mmtag/core/multitag_simulator.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/core/supervised_link.hpp"
#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/runtime/sweep_runner.hpp"
#include "mmtag/runtime/thread_pool.hpp"
#include "mmtag/runtime/trial_rng.hpp"

#include "json_checker.hpp"

namespace mmtag::runtime {
namespace {

// ---------------------------------------------------------------- thread_pool

TEST(thread_pool, runs_every_index_exactly_once)
{
    constexpr std::size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    thread_pool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    pool.parallel_for(count, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(thread_pool, single_job_runs_inline_in_order)
{
    thread_pool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::vector<std::size_t> order;
    pool.parallel_for(16, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), std::this_thread::get_id());
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(thread_pool, empty_range_and_reuse)
{
    thread_pool pool(3);
    pool.parallel_for(0, [&](std::size_t) { FAIL() << "body ran for count 0"; });
    std::atomic<std::size_t> total{0};
    pool.parallel_for(7, [&](std::size_t) { total.fetch_add(1); });
    pool.parallel_for(5, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 12u);
}

TEST(thread_pool, propagates_first_exception)
{
    thread_pool pool(4);
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                       if (i == 13) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
    // Pool must survive a failed batch.
    std::atomic<std::size_t> total{0};
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 8u);
}

TEST(thread_pool, nested_parallel_for_throws_instead_of_deadlocking)
{
    thread_pool pool(4);
    std::atomic<std::size_t> nested_throws{0};
    pool.parallel_for(16, [&](std::size_t) {
        try {
            pool.parallel_for(2, [](std::size_t) {});
        } catch (const std::logic_error&) {
            nested_throws.fetch_add(1);
        }
    });
    // Every body observed the guard; none deadlocked waiting on itself.
    EXPECT_EQ(nested_throws.load(), 16u);
    // The pool stays usable after the rejected nested calls.
    std::atomic<std::size_t> total{0};
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 8u);
}

TEST(thread_pool, nested_call_throws_on_inline_pool_too)
{
    // jobs == 1 has no worker threads, but the contract is identical.
    thread_pool pool(1);
    bool threw = false;
    pool.parallel_for(4, [&](std::size_t) {
        try {
            pool.parallel_for(1, [](std::size_t) {});
        } catch (const std::logic_error&) {
            threw = true;
        }
    });
    EXPECT_TRUE(threw);
    std::size_t ran = 0;
    pool.parallel_for(3, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 3u);
}

TEST(thread_pool, guard_clears_after_exceptional_batch)
{
    // An exception escaping a body must not leave the busy flag stuck.
    thread_pool pool(2);
    EXPECT_THROW(pool.parallel_for(
                     4, [&](std::size_t) { throw std::runtime_error("boom"); }),
                 std::runtime_error);
    std::atomic<std::size_t> total{0};
    pool.parallel_for(4, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 4u);
}

TEST(thread_pool, resolve_jobs_auto_is_positive)
{
    EXPECT_GE(resolve_jobs(0), 1u);
    EXPECT_EQ(resolve_jobs(1), 1u);
    EXPECT_EQ(resolve_jobs(6), 6u);
    thread_pool pool(0);
    EXPECT_GE(pool.jobs(), 1u);
}

// ------------------------------------------------------------------ trial_rng

TEST(trial_rng, constants_are_frozen)
{
    // mix64 is the SplitMix64 output function; mix64(0) is the well-known
    // first output of a seed-0 splitmix stream. Recorded BENCH_*.json
    // baselines depend on these values never changing.
    EXPECT_EQ(mix64(0), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(trial_seed(1, 0, 0), mix64(mix64(mix64(1))));
    EXPECT_EQ(substream(7, 0), mix64(7 ^ 0xa0761d6478bd642fULL));
}

TEST(trial_rng, seeds_are_deterministic_and_distinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t point = 0; point < 16; ++point) {
        for (std::uint64_t trial = 0; trial < 16; ++trial) {
            const auto seed = trial_seed(42, point, trial);
            EXPECT_EQ(seed, trial_seed(42, point, trial));
            EXPECT_TRUE(seen.insert(seed).second)
                << "collision at point " << point << " trial " << trial;
        }
    }
    // Different base seeds give unrelated streams.
    EXPECT_NE(trial_seed(1, 0, 0), trial_seed(2, 0, 0));
    // Substreams of one trial differ from the trial seed and each other.
    const auto seed = trial_seed(1, 3, 5);
    EXPECT_NE(substream(seed, 0), seed);
    EXPECT_NE(substream(seed, 0), substream(seed, 1));
}

// ----------------------------------------------------------------- run_sweep

/// Cheap deterministic stand-in workload: counts pseudo-random "errors".
core::error_counter synthetic_trial(std::size_t point, std::uint64_t seed)
{
    core::error_counter counter;
    std::uint64_t x = seed;
    for (std::size_t block = 0; block < 8; ++block) {
        x = mix64(x);
        counter.add_bits(64 + point, static_cast<std::size_t>(x % 5));
    }
    return counter;
}

TEST(sweep_runner, shapes_and_counts)
{
    sweep_options options;
    options.jobs = 2;
    options.base_seed = 9;
    options.trials_per_point = 3;
    std::atomic<std::size_t> progress_calls{0};
    options.progress = [&](std::size_t done, std::size_t total) {
        EXPECT_LE(done, total);
        progress_calls.fetch_add(1);
    };
    const auto out = run_sweep<core::error_counter>(
        options, 4,
        [](std::size_t point, std::size_t, std::uint64_t seed) {
            return synthetic_trial(point, seed);
        });
    EXPECT_EQ(out.points.size(), 4u);
    EXPECT_EQ(out.trials, 12u);
    EXPECT_EQ(out.jobs, 2u);
    EXPECT_EQ(progress_calls.load(), 12u);
    EXPECT_GE(out.wall_s, 0.0);
    for (const auto& point : out.points) {
        EXPECT_EQ(point.aggregate.bits() % 8, 0u); // 3 trials x 8 blocks
        EXPECT_GE(point.busy_s, 0.0);
    }
}

TEST(sweep_runner, rejects_zero_trials)
{
    sweep_options options;
    options.trials_per_point = 0;
    EXPECT_THROW(run_sweep<core::error_counter>(
                     options, 1,
                     [](std::size_t, std::size_t, std::uint64_t) {
                         return core::error_counter{};
                     }),
                 std::invalid_argument);
}

TEST(sweep_runner, jobs_invariant_error_counts)
{
    const auto run_with = [](std::size_t jobs) {
        sweep_options options;
        options.jobs = jobs;
        options.base_seed = 77;
        options.trials_per_point = 6;
        return run_sweep<core::error_counter>(
            options, 5,
            [](std::size_t point, std::size_t, std::uint64_t seed) {
                return synthetic_trial(point, seed);
            });
    };
    const auto serial = run_with(1);
    const auto parallel = run_with(8);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t p = 0; p < serial.points.size(); ++p) {
        EXPECT_EQ(serial.points[p].aggregate.bits(), parallel.points[p].aggregate.bits());
        EXPECT_EQ(serial.points[p].aggregate.bit_errors(),
                  parallel.points[p].aggregate.bit_errors());
    }
}

// ----------------------------------------------------------- progress printer

/// Drives a progress callback and returns everything it wrote to a tmpfile.
std::string capture_progress(bool tty, std::size_t total)
{
    std::FILE* stream = std::tmpfile();
    EXPECT_NE(stream, nullptr);
    auto progress = progress_printer(stream, tty);
    for (std::size_t done = 1; done <= total; ++done) progress(done, total);
    std::fflush(stream);
    std::rewind(stream);
    std::string captured;
    char buffer[256];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, stream)) > 0) {
        captured.append(buffer, n);
    }
    std::fclose(stream);
    return captured;
}

TEST(progress_printer, tty_mode_rewrites_and_terminates_with_newline)
{
    const std::string captured = capture_progress(/*tty=*/true, 3);
    // Carriage-return frames while running...
    EXPECT_NE(captured.find("\rsweep: 1/3 trials"), std::string::npos);
    EXPECT_NE(captured.find("\rsweep: 3/3 trials"), std::string::npos);
    // ...and the completion line is newline-terminated so the shell prompt
    // (or the next printf) starts on a fresh line.
    ASSERT_FALSE(captured.empty());
    EXPECT_EQ(captured.back(), '\n');
}

TEST(progress_printer, non_tty_mode_prints_plain_decile_lines)
{
    const std::string captured = capture_progress(/*tty=*/false, 20);
    // No '\r' frames anywhere: piped logs stay line-oriented.
    EXPECT_EQ(captured.find('\r'), std::string::npos);
    // One line per completed decile, each newline-terminated.
    EXPECT_NE(captured.find("sweep: 2/20 trials (10%)\n"), std::string::npos);
    EXPECT_NE(captured.find("sweep: 20/20 trials (100%)\n"), std::string::npos);
    std::size_t lines = 0;
    for (const char c : captured) lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 10u);
    EXPECT_EQ(captured.back(), '\n');
}

TEST(progress_printer, non_tty_mode_skips_repeat_deciles)
{
    // Repeated callbacks within the same decile stay silent.
    std::FILE* stream = std::tmpfile();
    ASSERT_NE(stream, nullptr);
    auto progress = progress_printer(stream, /*tty=*/false);
    progress(1, 100);
    progress(5, 100);
    progress(10, 100);
    progress(10, 100);
    std::fflush(stream);
    std::rewind(stream);
    std::string captured;
    char buffer[256];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, stream)) > 0) {
        captured.append(buffer, n);
    }
    std::fclose(stream);
    EXPECT_EQ(captured, "sweep: 10/100 trials (10%)\n");
}

// --------------------------------------------- determinism regression (R5ish)

/// A miniature R5-style sweep over real link simulations, rendered through
/// the result_writer; the aggregates JSON must be byte-identical no matter
/// how many jobs executed it.
std::string link_sweep_aggregates(std::size_t jobs)
{
    constexpr double kDistances[] = {2.0, 4.0};
    sweep_options options;
    options.jobs = jobs;
    options.base_seed = 5;
    options.trials_per_point = 3;
    const auto out = run_sweep<core::link_report>(
        options, std::size(kDistances),
        [&](std::size_t point, std::size_t, std::uint64_t seed) {
            auto cfg = core::fast_scenario();
            cfg.distance_m = kDistances[point];
            cfg.seed = seed;
            core::link_simulator sim(cfg);
            return sim.run_trials(2, 16);
        });
    result_writer results("TEST", "determinism regression", {"distance_m"}, 5);
    for (std::size_t point = 0; point < std::size(kDistances); ++point) {
        auto axis = json_value::object();
        axis.set("distance_m", json_value::number(kDistances[point]));
        results.add_point(std::move(axis), options.trials_per_point,
                          result_writer::metrics(out.points[point].aggregate));
    }
    return results.aggregates_json();
}

TEST(determinism, link_sweep_json_is_byte_identical_across_jobs)
{
    const auto serial = link_sweep_aggregates(1);
    EXPECT_EQ(serial, link_sweep_aggregates(8));
    EXPECT_EQ(serial, link_sweep_aggregates(3));
    // And stable across repeat runs of the same configuration.
    EXPECT_EQ(serial, link_sweep_aggregates(1));
}

TEST(determinism, faulted_trials_replay_on_parallel_path)
{
    // The faults CLI path: (trial x arm) tasks over the pool, each with its
    // own simulator and counter-derived fault schedule. Running the grid
    // under 1 and 4 jobs must produce identical reports slot for slot.
    const auto run_grid = [](std::size_t jobs) {
        constexpr std::size_t trials = 3;
        fault::fault_schedule::config sched_cfg;
        sched_cfg.horizon_s = 0.03;
        sched_cfg.event_rate_hz = 200.0;
        sched_cfg.mean_duration_s = 1e-3;
        std::vector<ap::supervised_report> reports(trials);
        thread_pool pool(jobs);
        pool.parallel_for(trials, [&](std::size_t t) {
            auto cfg = core::fast_scenario();
            cfg.distance_m = 4.0;
            cfg.seed = 11;
            core::link_simulator link(cfg);
            fault::fault_injector faults{
                fault::fault_schedule(sched_cfg, 42 + t)};
            reports[t] = core::run_supervised_link(link, &faults, {}, 30, 16);
        });
        return reports;
    };
    const auto serial = run_grid(1);
    const auto parallel = run_grid(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t t = 0; t < serial.size(); ++t) {
        EXPECT_EQ(serial[t].frames_offered, parallel[t].frames_offered);
        EXPECT_EQ(serial[t].frames_delivered, parallel[t].frames_delivered);
        EXPECT_EQ(serial[t].recovery.outages, parallel[t].recovery.outages);
        EXPECT_EQ(serial[t].recovery.reacquisitions,
                  parallel[t].recovery.reacquisitions);
        EXPECT_DOUBLE_EQ(serial[t].elapsed_s, parallel[t].elapsed_s);
        EXPECT_DOUBLE_EQ(serial[t].goodput_bps, parallel[t].goodput_bps);
    }
}

TEST(determinism, multitag_reseed_replays_exactly)
{
    auto cfg = core::fast_scenario();
    cfg.seed = 21;
    std::vector<core::tag_descriptor> tags{{0, 2.0, 0.0}, {1, 3.5, 0.2}};
    core::multitag_simulator sim(cfg, tags);

    const double slot_s = sim.burst_duration_s(16) + 20e-6;
    std::vector<core::tag_burst> bursts;
    for (std::size_t t = 0; t < tags.size(); ++t) {
        bursts.push_back({t, phy::random_bytes(16, substream(21, 2 + t)),
                          static_cast<double>(t) * slot_s});
    }
    const auto first = sim.run(bursts);
    sim.reseed(21);
    const auto replay = sim.run(bursts);
    ASSERT_EQ(first.size(), replay.size());
    for (std::size_t t = 0; t < first.size(); ++t) {
        EXPECT_EQ(first[t].delivered, replay[t].delivered);
        EXPECT_DOUBLE_EQ(first[t].snr_db, replay[t].snr_db);
    }
}

// ----------------------------------------------------------------- JSON model

using testutil::json_checker;

TEST(json_model, serialization_is_ordered_and_escaped)
{
    auto doc = json_value::object();
    doc.set("zeta", json_value::integer(-3));
    doc.set("alpha", json_value::string("line\n\"quoted\"\\"));
    doc.set("flag", json_value::boolean(true));
    auto arr = json_value::array();
    arr.push(json_value::number(0.5));
    arr.push(json_value::null());
    doc.set("items", std::move(arr));
    // Insertion order, not alphabetical; escapes applied.
    EXPECT_EQ(doc.dump(),
              "{\"zeta\":-3,\"alpha\":\"line\\n\\\"quoted\\\"\\\\\","
              "\"flag\":true,\"items\":[0.5,null]}");
    EXPECT_TRUE(json_checker(doc.dump()).valid());
    EXPECT_TRUE(json_checker(doc.dump(2)).valid());
    // Duplicate keys overwrite in place (stable position).
    doc.set("zeta", json_value::integer(9));
    EXPECT_EQ(doc.dump().find("\"zeta\":9"), 1u);
}

TEST(json_model, numbers_round_trip)
{
    for (const double v : {0.0, 1.0, -1.5, 1.0 / 3.0, 3.333e-5, 1e20, 123456.789}) {
        auto value = json_value::number(v);
        const auto text = value.dump();
        EXPECT_DOUBLE_EQ(std::stod(text), v) << text;
    }
    EXPECT_EQ(json_value::unsigned_integer(18446744073709551615ULL).dump(),
              "18446744073709551615");
}

TEST(result_writer, documents_are_schema_valid)
{
    result_writer results("R99", "schema test", {"x"}, 4);
    core::error_counter counter;
    counter.add_bits(1000, 3);
    auto axis = json_value::object();
    axis.set("x", json_value::number(1.0));
    results.add_point(std::move(axis), 2, result_writer::metrics(counter));

    const auto aggregates = results.aggregates_json();
    EXPECT_TRUE(json_checker(aggregates).valid()) << aggregates;
    EXPECT_NE(aggregates.find("\"schema\": \"mmtag.bench.result/1\""),
              std::string::npos);
    EXPECT_NE(aggregates.find("\"id\": \"R99\""), std::string::npos);
    EXPECT_NE(aggregates.find("\"axes\""), std::string::npos);
    EXPECT_NE(aggregates.find("\"trials\": 2"), std::string::npos);
    // The run section only appears in the full document.
    EXPECT_EQ(aggregates.find("\"run\""), std::string::npos);

    const auto document = results.document(1.5, 4, 8.0);
    EXPECT_TRUE(json_checker(document).valid()) << document;
    EXPECT_NE(document.find("\"run\""), std::string::npos);
    EXPECT_NE(document.find("\"jobs\": 4"), std::string::npos);
    EXPECT_NE(document.find("\"git\":"), std::string::npos);

    EXPECT_EQ(default_output_path("R99"), "bench/out/BENCH_R99.json");
}

TEST(result_writer, zero_observation_ratios_serialize_as_null)
{
    // A point with no observed bits/frames must not claim BER 0.0 (or emit
    // bare nan): the ratio metrics are null, the count metrics stay 0, and
    // the document still parses.
    result_writer results("R98", "zero observations", {"x"}, 1);
    auto axis = json_value::object();
    axis.set("x", json_value::number(0.0));
    results.add_point(std::move(axis), 1,
                      result_writer::metrics(core::error_counter{}));
    auto axis2 = json_value::object();
    axis2.set("x", json_value::number(1.0));
    results.add_point(std::move(axis2), 1, result_writer::metrics(core::link_report{}));

    const auto document = results.document(0.1, 1, 10.0);
    EXPECT_TRUE(json_checker(document).valid()) << document;
    EXPECT_NE(document.find("\"ber\": null"), std::string::npos) << document;
    EXPECT_NE(document.find("\"per\": null"), std::string::npos) << document;
    EXPECT_NE(document.find("\"mean_snr_db\": null"), std::string::npos) << document;
    EXPECT_NE(document.find("\"bits\": 0"), std::string::npos) << document;
    EXPECT_EQ(document.find("nan"), std::string::npos) << document;
    EXPECT_EQ(document.find("inf"), std::string::npos) << document;

    // Populated counters keep numeric ratios.
    core::error_counter counter;
    counter.add_bits(100, 1);
    const auto populated = result_writer::metrics(counter).dump();
    EXPECT_EQ(populated.find("\"ber\":null"), std::string::npos) << populated;
    EXPECT_NE(populated.find("\"ber\":0.01"), std::string::npos) << populated;
}

TEST(result_writer, metrics_snapshot_switches_schema_to_v2)
{
    result_writer results("R97", "schema v2", {"x"}, 2);
    auto axis = json_value::object();
    axis.set("x", json_value::number(1.0));
    core::error_counter counter;
    counter.add_bits(8, 0);
    results.add_point(std::move(axis), 1, result_writer::metrics(counter));

    // Without a metrics snapshot the document stays on schema /1, with no
    // sweep-wide "metrics" or "profile" members — byte-compatible with old
    // consumers. (Per-point "metrics" objects exist in both schemas, so the
    // registry snapshot is detected by its "counters" section.)
    const auto v1 = results.document(0.1, 1, 10.0);
    EXPECT_NE(v1.find("\"schema\": \"mmtag.bench.result/1\""), std::string::npos);
    EXPECT_EQ(v1.find("\"counters\""), std::string::npos);
    EXPECT_EQ(v1.find("\"profile\""), std::string::npos);

    auto snapshot = json_value::object();
    auto counters = json_value::object();
    counters.set("link/frames", json_value::unsigned_integer(8));
    snapshot.set("counters", std::move(counters));
    results.set_metrics(std::move(snapshot));
    auto profile = json_value::object();
    profile.set("histograms", json_value::object());
    results.set_run_profile(std::move(profile));

    const auto v2 = results.document(0.1, 1, 10.0);
    EXPECT_TRUE(json_checker(v2).valid()) << v2;
    EXPECT_NE(v2.find("\"schema\": \"mmtag.bench.result/2\""), std::string::npos);
    EXPECT_NE(v2.find("\"link/frames\": 8"), std::string::npos);
    EXPECT_NE(v2.find("\"profile\""), std::string::npos);
    // The sweep-wide snapshot is part of the deterministic half; the
    // profile (wall-clock) is not.
    const auto aggregates = results.aggregates_json();
    EXPECT_NE(aggregates.find("\"schema\": \"mmtag.bench.result/2\""),
              std::string::npos);
    EXPECT_NE(aggregates.find("\"link/frames\": 8"), std::string::npos);
    EXPECT_EQ(aggregates.find("\"profile\""), std::string::npos);

    EXPECT_THROW(results.set_metrics(json_value::array()), std::invalid_argument);
}

} // namespace
} // namespace mmtag::runtime
