// Network-scale chaos plans: one fault timeline per tag plus a shared
// channel timeline, generated deterministically from (config, seed). Where
// the single-link schedule draws independent Poisson events, the multi-tag
// plan produces the correlated patterns that actually stress a network
// supervisor:
//   * blockage storms — one body shadow covers a contiguous group of tags
//     with the *same* event (same onset, duration, depth), so several
//     sessions degrade at once;
//   * rolling brownouts — periodic harvester undervoltage staggered tag by
//     tag, the pattern a shared power beacon sweeping the room produces;
//   * a persistent interferer — one long in-band CW burst on the shared
//     channel that every capture sees;
//   * independent background events per tag, from the ordinary
//     fault_schedule generator.
// Only the first `faulted_count` tags receive per-tag faults; the rest stay
// physically healthy, which is what lets the soak invariants separate
// "degrades the faulted tag" from "stalls the network".
#pragma once

#include <cstdint>
#include <vector>

#include "mmtag/fault/fault_schedule.hpp"

namespace mmtag::fault {

struct multi_tag_config {
    double horizon_s = 0.1;
    /// Faults only start inside [0, horizon_s * active_fraction): the quiet
    /// tail is what lets quarantined tags recover and the re-admission-bound
    /// invariant observe the recovery.
    double active_fraction = 0.6;

    /// Correlated blockage storms (Poisson onsets; 0 disables).
    double storm_rate_hz = 60.0;
    /// Contiguous tags shadowed by one storm.
    std::size_t storm_span = 3;
    double storm_duration_s = 4e-3;
    double storm_depth_db_min = 12.0;
    double storm_depth_db_max = 25.0;

    /// Rolling brownouts (0 period disables).
    double brownout_period_s = 30e-3;
    double brownout_duration_s = 4e-3;
    /// Onset offset between consecutive faulted tags.
    double brownout_stagger_s = 6e-3;

    /// Persistent shared interferer (0 duration disables).
    double interferer_start_s = 10e-3;
    double interferer_duration_s = 30e-3;
    double interferer_rel_db = 14.0;

    /// Independent per-tag background events (0 disables). Restricted to
    /// blockage + brownout: the duration-bounded per-tag kinds.
    double background_rate_hz = 30.0;
    double background_mean_duration_s = 2e-3;
};

class multi_tag_plan {
public:
    /// Faulted tags are indices [0, faulted_count); throws when
    /// faulted_count > tag_count or the config is degenerate.
    multi_tag_plan(const multi_tag_config& cfg, std::size_t tag_count,
                   std::size_t faulted_count, std::uint64_t seed);

    [[nodiscard]] const multi_tag_config& parameters() const { return cfg_; }
    [[nodiscard]] std::size_t tag_count() const { return per_tag_.size(); }
    [[nodiscard]] std::size_t faulted_count() const { return faulted_count_; }

    /// Shared-channel timeline (the persistent interferer).
    [[nodiscard]] const fault_schedule& shared() const { return shared_; }
    /// Per-tag timelines; healthy tags hold empty schedules.
    [[nodiscard]] const std::vector<fault_schedule>& per_tag() const { return per_tag_; }

    /// Latest end over every scheduled event (shared and per-tag) — the
    /// instant after which the whole network is physically healthy again.
    [[nodiscard]] double last_fault_end_s() const { return last_end_s_; }

private:
    multi_tag_config cfg_;
    std::size_t faulted_count_;
    fault_schedule shared_;
    std::vector<fault_schedule> per_tag_;
    double last_end_s_ = 0.0;
};

} // namespace mmtag::fault
