# Empty dependencies file for bench_r02_constellation.
# This may be replaced when dependencies are built.
