// AP-side link supervision: outage detection from CRC-failure streaks,
// retransmission with capped exponential backoff (the mac::arq policy),
// graceful MCS fallback through rate adaptation down to the most robust
// mode, and a session watchdog that re-runs acquisition when an outage
// persists — plus the recovery metrics (time-to-detect, time-to-recover,
// goodput retained) the R21 experiment reports.
//
// The state machine is pure (no RF dependencies); run_supervised() marries
// it to any link through a small callback bundle, so the same logic drives
// the sample-accurate core::link_simulator, the CLI, and synthetic links in
// unit tests.
#pragma once

#include <cstddef>
#include <functional>

#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/mac/arq.hpp"

namespace mmtag::obs {
class metrics_registry;
}

namespace mmtag::ap {

enum class supervisor_state {
    nominal, ///< delivering at the adapted rate
    alert,   ///< failures accumulating, outage not yet declared
    outage,  ///< declared outage: robust-mode probes with backoff
};

struct supervisor_config {
    /// Consecutive delivery failures before an outage is declared.
    std::size_t outage_streak = 3;
    /// Retry cap, attempt timing, and the capped-exponential backoff policy
    /// (initial_backoff_s > 0 enables backoff between failed attempts).
    mac::arq_config arq{.max_retries = 12,
                        .frame_time_s = 300e-6,
                        .ack_time_s = 20e-6,
                        .initial_backoff_s = 80e-6,
                        .backoff_factor = 2.0,
                        .max_backoff_s = 0.5e-3,
                        .ack_loss = 0.0};
    /// Failed outage probes between acquisition re-runs (session watchdog).
    std::size_t watchdog_probes = 5;
    /// Airtime cost of one acquisition re-run (re-lock + canceller retrain).
    double reacquisition_time_s = 0.6e-3;
    /// Rate-adapter threshold margin [dB].
    double margin_db = 2.0;
    /// Fall back through the rate ladder during outages and ramp back via
    /// smoothed SNR; the adapted rate never exceeds the nominal rate.
    bool rate_fallback = true;
    /// Optional observability registry: attempt/outage/recovery counters and
    /// state-transition trace events. Not owned; nullptr disables.
    obs::metrics_registry* metrics = nullptr;
};

struct recovery_metrics {
    std::size_t outages = 0;        ///< outages declared
    std::size_t recoveries = 0;     ///< outages that ended in a delivery
    std::size_t reacquisitions = 0; ///< watchdog acquisition re-runs
    std::size_t transmissions = 0;  ///< data-frame attempts
    std::size_t probes = 0;         ///< short robust-mode probes during outages
    double detect_total_s = 0.0;    ///< first-failure -> declaration
    double detect_max_s = 0.0;
    double recover_total_s = 0.0;   ///< declaration -> next delivery
    double recover_max_s = 0.0;

    [[nodiscard]] double mean_detect_s() const;
    [[nodiscard]] double mean_recover_s() const;

    /// Trial-ordered fold: counters and totals add, maxima take the max.
    void merge(const recovery_metrics& other);
};

class link_supervisor {
public:
    link_supervisor(const supervisor_config& cfg, rate_option nominal_rate);

    /// What to do for the next transmission attempt.
    struct plan {
        double wait_s = 0.0;    ///< idle backoff before transmitting
        bool reacquire = false; ///< re-run acquisition first
        /// Send a short robust-mode probe instead of the data frame: during
        /// an outage, blind full-frame retransmissions only burn airtime,
        /// so the supervisor tests the link cheaply and retransmits the
        /// data once a probe comes back.
        bool probe = false;
        rate_option rate{};     ///< MCS for the attempt
    };
    [[nodiscard]] plan next_attempt() const;

    /// Reports the outcome of the attempt that just finished at `now_s`.
    /// `snr_db` is only consulted on delivery (rate ramp-up). `was_probe`
    /// distinguishes short link probes from data-frame attempts in the
    /// metrics; the state machine treats both outcomes identically.
    void record(bool delivered, double snr_db, double now_s, bool was_probe = false);

    /// The driver performed the reacquisition the plan asked for.
    void note_reacquisition();

    [[nodiscard]] supervisor_state state() const { return state_; }
    [[nodiscard]] const rate_option& current_rate() const { return rate_; }
    [[nodiscard]] const recovery_metrics& metrics() const { return metrics_; }

private:
    supervisor_config cfg_;
    mac::stop_and_wait_arq arq_;
    rate_adapter adapter_;
    rate_option nominal_rate_;
    rate_option rate_;
    supervisor_state state_ = supervisor_state::nominal;
    recovery_metrics metrics_;
    std::size_t fail_streak_ = 0;
    std::size_t probes_since_reacquire_ = 0;
    double first_fail_s_ = 0.0;
    double declared_s_ = 0.0;
};

/// Outcome of one transmission attempt on the underlying link.
struct attempt_result {
    bool delivered = false;
    double snr_db = -100.0;
    double elapsed_s = 0.0; ///< airtime the attempt consumed
};

/// Callback bundle the supervised loop drives a link through.
struct link_driver {
    /// Called once per offered frame, before its first attempt (e.g. to
    /// draw the payload that all retransmissions of the frame share).
    std::function<void(std::size_t frame_index)> next_frame;
    /// Transmit one frame attempt at `rate`; returns the outcome.
    std::function<attempt_result(const rate_option& rate)> transmit;
    /// Send a short link probe at `rate`; delivered == the link is back.
    /// Optional: when absent, probes fall back to full transmit attempts.
    std::function<attempt_result(const rate_option& rate)> probe;
    /// Idle the link for `wait_s` (backoff).
    std::function<void(double wait_s)> wait;
    /// Re-run acquisition (re-lock the LO, retrain the canceller).
    std::function<void()> reacquire;
    /// Current link time [s].
    std::function<double()> now;
};

struct supervised_report {
    recovery_metrics recovery;
    std::size_t frames_offered = 0;
    std::size_t frames_delivered = 0;
    double elapsed_s = 0.0;
    double goodput_bps = 0.0;

    [[nodiscard]] double delivery_ratio() const;
    /// Fraction of a fault-free reference goodput retained.
    [[nodiscard]] double goodput_retained(double fault_free_goodput_bps) const;

    /// Trial-ordered fold: counters add, goodput recombines from the sums of
    /// delivered bits and elapsed airtime (an elapsed-weighted mean).
    void merge(const supervised_report& other);
};

/// Offers `frames` payloads of `payload_bits` each through the supervisor:
/// every frame is attempted up to cfg.arq.max_retries times following the
/// supervisor's backoff/fallback/watchdog plan, then dropped.
[[nodiscard]] supervised_report run_supervised(const supervisor_config& cfg,
                                               const rate_option& nominal_rate,
                                               const link_driver& driver,
                                               std::size_t frames,
                                               double payload_bits);

} // namespace mmtag::ap
