// Robustness suite: hostile/garbage inputs must never crash, and the
// integrity layers (CRCs, sync quality gates) must keep false accepts out.
// Also pins down determinism: identical seeds => identical results.
#include <gtest/gtest.h>

#include <random>

#include "mmtag/ap/query_encoder.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/supervised_link.hpp"
#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/fec/convolutional.hpp"
#include "mmtag/fec/hamming.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/phy/frame.hpp"
#include "mmtag/phy/line_code.hpp"
#include "mmtag/phy/preamble.hpp"
#include "mmtag/tag/command_decoder.hpp"

namespace mmtag {
namespace {

cvec random_symbols(std::size_t count, std::uint64_t seed, double sigma = 1.0)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> g(0.0, sigma);
    cvec out(count);
    for (auto& s : out) s = {g(rng), g(rng)};
    return out;
}

TEST(robustness, frame_decoder_survives_noise_without_false_accepts)
{
    const phy::frame_config cfg{};
    std::size_t false_accepts = 0;
    for (std::uint64_t trial = 0; trial < 300; ++trial) {
        const cvec noise = random_symbols(600, 1000 + trial);
        const auto result = phy::decode_frame(noise, cfg, 1.0);
        if (result && result->crc_ok) ++false_accepts;
    }
    // Header CRC-8 + length plausibility + payload CRC-32 make a false
    // accept essentially impossible.
    EXPECT_EQ(false_accepts, 0u);
}

TEST(robustness, preamble_detector_gates_noise)
{
    std::size_t detections = 0;
    for (std::uint64_t trial = 0; trial < 200; ++trial) {
        const cvec noise = random_symbols(400, 5000 + trial);
        if (phy::detect_preamble(noise, {}, 3.0)) ++detections;
    }
    // At quality >= 3 the m-sequence's sidelobe structure keeps noise out.
    EXPECT_LT(detections, 5u);
}

TEST(robustness, command_parser_rejects_random_bits)
{
    std::size_t accepts = 0;
    for (std::uint64_t trial = 0; trial < 3000; ++trial) {
        const auto bits = phy::random_bits(40, 9000 + trial);
        if (ap::parse_command_bits(bits)) ++accepts;
    }
    // CRC-8 (1/256) x valid-kind (4/256): expect ~0.05 accepts in 3000.
    EXPECT_LT(accepts, 3u);
}

TEST(robustness, command_decoder_survives_garbage_envelopes)
{
    tag::command_decoder::config cfg;
    cfg.sample_rate_hz = 50e6;
    cfg.unit_s = 2e-6;
    const tag::command_decoder decoder(cfg);
    std::mt19937_64 rng(77);
    std::uniform_real_distribution<double> level(0.0, 1.0);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> envelope(20000);
        for (auto& v : envelope) v = level(rng);
        EXPECT_NO_THROW((void)decoder.decode(envelope));
    }
    // Degenerate inputs.
    EXPECT_FALSE(decoder.decode(std::vector<double>{}).has_value());
    EXPECT_FALSE(decoder.decode(std::vector<double>(10, 0.5)).has_value());
}

TEST(robustness, viterbi_handles_random_streams_of_valid_length)
{
    for (std::uint64_t trial = 0; trial < 30; ++trial) {
        const std::size_t info = 50 + trial * 13;
        const auto garbage =
            phy::random_bits(fec::coded_length(info, fec::code_rate::half), trial);
        const auto decoded = fec::viterbi_decode(garbage, fec::code_rate::half);
        EXPECT_EQ(decoded.size(), info); // wrong data, right shape, no crash
    }
}

TEST(robustness, hamming_decoder_any_input)
{
    for (std::uint64_t trial = 0; trial < 50; ++trial) {
        const auto garbage = phy::random_bits(70, 300 + trial);
        EXPECT_NO_THROW((void)fec::hamming74_decode(garbage));
    }
}

TEST(robustness, line_code_decoder_any_input)
{
    std::mt19937_64 rng(31);
    std::normal_distribution<double> g(0.0, 2.0);
    for (auto code : {phy::line_code::fm0, phy::line_code::miller2,
                      phy::line_code::miller4}) {
        std::vector<double> soft(40 * phy::chips_per_bit(code));
        for (auto& v : soft) v = g(rng);
        const auto bits = phy::decode_line_code(soft, code);
        EXPECT_EQ(bits.size(), 40u);
    }
}

TEST(robustness, receiver_on_pure_noise_reports_no_frame)
{
    auto cfg = core::default_scenario();
    cfg.sample_rate_hz = 50e6;
    cfg.symbol_rate_hz = 5e6;
    cfg.transmitter.sample_rate_hz = cfg.sample_rate_hz;
    cfg.receiver.sample_rate_hz = cfg.sample_rate_hz;
    cfg.receiver.samples_per_symbol = 10;
    cfg.receiver.lna.bandwidth_hz = cfg.sample_rate_hz;
    cfg.modulator.sample_rate_hz = cfg.sample_rate_hz;
    ap::ap_receiver receiver(cfg.receiver, 3);

    std::mt19937_64 rng(41);
    std::normal_distribution<double> g(0.0, 1e-6);
    cvec antenna(20000);
    cvec lo(20000, cf64{1.0, 0.0});
    for (auto& s : antenna) s = {g(rng), g(rng)};
    const auto rx = receiver.receive(antenna, lo);
    EXPECT_FALSE(rx.crc_ok);
}

TEST(robustness, zero_length_payload_round_trips)
{
    const phy::frame_config cfg{};
    const cvec symbols = phy::build_frame({}, cfg);
    const std::span<const cf64> frame_span{symbols.data() + cfg.preamble.total_symbols(),
                                           symbols.size() - cfg.preamble.total_symbols()};
    const auto result = phy::decode_frame(frame_span, cfg, 0.05);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->crc_ok);
    EXPECT_TRUE(result->payload.empty());
}

TEST(determinism, identical_seeds_identical_reports)
{
    auto cfg = core::default_scenario();
    cfg.sample_rate_hz = 50e6;
    cfg.symbol_rate_hz = 5e6;
    cfg.transmitter.sample_rate_hz = cfg.sample_rate_hz;
    cfg.receiver.sample_rate_hz = cfg.sample_rate_hz;
    cfg.receiver.samples_per_symbol = 10;
    cfg.receiver.lna.bandwidth_hz = cfg.sample_rate_hz;
    cfg.modulator.sample_rate_hz = cfg.sample_rate_hz;
    cfg.distance_m = 7.0; // noisy regime so determinism is non-trivial

    core::link_simulator a(cfg);
    core::link_simulator b(cfg);
    const auto ra = a.run_trials(6, 32);
    const auto rb = b.run_trials(6, 32);
    EXPECT_DOUBLE_EQ(ra.ber, rb.ber);
    EXPECT_DOUBLE_EQ(ra.mean_snr_db, rb.mean_snr_db);
    EXPECT_DOUBLE_EQ(ra.goodput_bps, rb.goodput_bps);
}

TEST(determinism, fault_replay_reproduces_supervisor_recovery_metrics)
{
    // Identical fault seed + config => the supervised run is bit-reproducible:
    // every recovery metric, the goodput, and the elapsed link clock match
    // across two independent replays.
    const auto run_once = [] {
        auto cfg = core::fast_scenario();
        cfg.distance_m = 4.0;
        cfg.seed = 11;
        core::link_simulator link(cfg);
        fault::fault_schedule::config sched;
        sched.horizon_s = 20e-3;
        sched.event_rate_hz = 300.0;
        sched.mean_duration_s = 1e-3;
        fault::fault_injector faults{fault::fault_schedule(sched, 424242)};
        return core::run_supervised_link(link, &faults, {}, 40, 24);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.frames_offered, b.frames_offered);
    EXPECT_EQ(a.frames_delivered, b.frames_delivered);
    EXPECT_EQ(a.recovery.outages, b.recovery.outages);
    EXPECT_EQ(a.recovery.recoveries, b.recovery.recoveries);
    EXPECT_EQ(a.recovery.reacquisitions, b.recovery.reacquisitions);
    EXPECT_EQ(a.recovery.transmissions, b.recovery.transmissions);
    EXPECT_EQ(a.recovery.probes, b.recovery.probes);
    EXPECT_DOUBLE_EQ(a.recovery.detect_total_s, b.recovery.detect_total_s);
    EXPECT_DOUBLE_EQ(a.recovery.recover_total_s, b.recovery.recover_total_s);
    EXPECT_DOUBLE_EQ(a.elapsed_s, b.elapsed_s);
    EXPECT_DOUBLE_EQ(a.goodput_bps, b.goodput_bps);
}

TEST(determinism, different_seeds_differ)
{
    auto cfg = core::default_scenario();
    cfg.sample_rate_hz = 50e6;
    cfg.symbol_rate_hz = 5e6;
    cfg.transmitter.sample_rate_hz = cfg.sample_rate_hz;
    cfg.receiver.sample_rate_hz = cfg.sample_rate_hz;
    cfg.receiver.samples_per_symbol = 10;
    cfg.receiver.lna.bandwidth_hz = cfg.sample_rate_hz;
    cfg.modulator.sample_rate_hz = cfg.sample_rate_hz;

    core::link_simulator a(cfg);
    cfg.seed = 999;
    core::link_simulator b(cfg);
    const auto payload = phy::random_bytes(32, 5);
    const auto ra = a.run_frame(payload);
    const auto rb = b.run_frame(payload);
    EXPECT_NE(ra.rx.snr_db, rb.rx.snr_db); // different noise draws
}

} // namespace
} // namespace mmtag
