// Machine-readable bench output: a minimal ordered JSON document model and
// the BENCH_<id>.json emitter the perf trajectory reads.
//
// Schema "mmtag.bench.result/1":
//   {
//     "schema": "mmtag.bench.result/1",
//     "id": "R4", "title": "...",
//     "base_seed": S,
//     "axes": ["distance_m", "rate"],
//     "points": [
//       {"axis": {...}, "trials": N, "metrics": {...}},
//       ...
//     ],
//     "run": {"jobs": J, "wall_s": W, "trials_per_s": R,
//             "git": "<git describe>"}
//   }
// Everything outside "run" is a pure function of (bench, base_seed) — the
// deterministic half the jobs-invariance regression test compares
// byte-for-byte (aggregates_json()). "run" carries the timing/provenance
// that legitimately varies between machines and runs.
//
// Schema "mmtag.bench.result/2" is /1 plus observability, and is emitted
// only when set_metrics() was called (v1 output is byte-unchanged when
// metrics are off):
//   * a top-level "metrics" section after "points" — the sweep-wide merged
//     obs::metrics_registry snapshot (deterministic view, --jobs-invariant);
//   * optionally "run.profile" — wall-time histograms from scoped timers
//     (set_run_profile), which live in "run" because they legitimately vary.
// Ratio metrics with zero observations (BER with no bits, PER with no
// frames, mean SNR with no found frames, ...) serialize as null, never as
// bare nan/inf.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mmtag::core {
class error_counter;
struct link_report;
} // namespace mmtag::core

namespace mmtag::runtime {

/// A small owned JSON value. Object keys keep insertion order and number
/// formatting is locale-independent, so serialization is byte-stable —
/// which is what lets "same sweep, different --jobs" be compared verbatim.
class json_value {
public:
    json_value() : kind_(kind::null) {}

    static json_value null() { return json_value(); }
    static json_value boolean(bool b);
    static json_value number(double value);
    static json_value integer(std::int64_t value);
    static json_value unsigned_integer(std::uint64_t value);
    static json_value string(std::string value);
    static json_value array();
    static json_value object();

    /// Object member (insertion-ordered; duplicate keys overwrite in place).
    json_value& set(const std::string& key, json_value value);
    /// Array append.
    json_value& push(json_value value);

    [[nodiscard]] bool is_object() const { return kind_ == kind::object; }
    [[nodiscard]] bool is_array() const { return kind_ == kind::array; }
    [[nodiscard]] bool is_null() const { return kind_ == kind::null; }
    [[nodiscard]] bool is_string() const { return kind_ == kind::string; }
    [[nodiscard]] bool is_boolean() const { return kind_ == kind::boolean; }
    /// Any numeric kind (double, signed, or unsigned integer).
    [[nodiscard]] bool is_number() const
    {
        return kind_ == kind::number || kind_ == kind::integer ||
               kind_ == kind::unsigned_integer;
    }

    // Read accessors for parsed documents (runtime::parse_json) — the
    // loading half of the disk-cache round trip. Typed getters throw
    // std::logic_error on kind mismatch rather than coercing silently.
    /// Array item count / object member count; 0 for scalar kinds.
    [[nodiscard]] std::size_t size() const;
    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const json_value* find(const std::string& key) const;
    /// Array element; throws std::out_of_range / std::logic_error.
    [[nodiscard]] const json_value& at(std::size_t index) const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] std::uint64_t as_uint() const;
    [[nodiscard]] bool as_boolean() const;
    [[nodiscard]] const std::string& as_string() const;

    /// Serializes; indent > 0 pretty-prints with that many spaces per level.
    [[nodiscard]] std::string dump(int indent = 0) const;

private:
    enum class kind { null, boolean, number, integer, unsigned_integer, string, array, object };

    void dump_to(std::string& out, int indent, int depth) const;

    kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::int64_t integer_ = 0;
    std::uint64_t unsigned_ = 0;
    std::string string_;
    std::vector<json_value> items_;
    std::vector<std::pair<std::string, json_value>> members_;
};

/// Collects one bench's sweep results and writes BENCH_<id>.json.
class result_writer {
public:
    result_writer(std::string id, std::string title, std::vector<std::string> axes,
                  std::uint64_t base_seed);

    /// Appends one sweep point. `axis` must be an object whose keys match
    /// the declared axes; `metrics` is an object of aggregate values.
    void add_point(json_value axis, std::size_t trials, json_value metrics);

    /// Ready-made metrics objects for the standard aggregates. Ratios whose
    /// denominator has zero observations are emitted as JSON null.
    [[nodiscard]] static json_value metrics(const core::error_counter& errors);
    [[nodiscard]] static json_value metrics(const core::link_report& report);

    /// Attaches a sweep-wide observability snapshot (an
    /// obs::metrics_registry::to_json(deterministic) object). Switches the
    /// document to schema mmtag.bench.result/2; the snapshot is part of the
    /// deterministic half (aggregates_json()).
    void set_metrics(json_value metrics);

    /// Attaches wall-time profiling data to the "run" section (schema /2
    /// only; ignored by aggregates_json()).
    void set_run_profile(json_value profile);

    /// The deterministic half of the document (schema/id/title/axes/points).
    [[nodiscard]] std::string aggregates_json() const;

    /// The full document including the "run" section.
    [[nodiscard]] std::string document(double wall_s, std::size_t jobs,
                                       double trials_per_s) const;

    /// Writes document() to `path` (empty = default_output_path(id)),
    /// creating parent directories. Returns the path written, or an empty
    /// string if the filesystem refused (benches warn but keep going).
    std::string write(const std::string& path, double wall_s, std::size_t jobs,
                      double trials_per_s) const;

private:
    std::string id_;
    std::string title_;
    std::vector<std::string> axes_;
    std::uint64_t base_seed_;
    std::vector<json_value> points_;
    bool has_metrics_ = false;
    json_value metrics_;
    bool has_profile_ = false;
    json_value profile_;
};

/// bench/out/BENCH_<id>.json relative to the current working directory.
[[nodiscard]] std::string default_output_path(const std::string& id);

/// `git describe --always --dirty --tags` of the working tree, cached after
/// the first call; "unknown" when git or the repository is unavailable.
[[nodiscard]] const std::string& git_describe();

} // namespace mmtag::runtime
