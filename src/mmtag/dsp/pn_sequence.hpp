// Pseudo-noise sequences: maximal-length LFSR (m-sequences), Barker codes,
// and correlation utilities used for preamble synchronization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Fibonacci LFSR over GF(2) defined by a tap polynomial.
///
/// `polynomial` uses the convention that bit k set means x^(k+1) feeds back;
/// e.g. x^7 + x^6 + 1 is 0b1100000 (0x60) with degree 7.
class lfsr {
public:
    lfsr(std::uint32_t polynomial, std::uint32_t degree, std::uint32_t seed = 1);

    /// Produces the next output bit (0/1) and advances the register.
    [[nodiscard]] int step();

    /// Generates `count` bits.
    [[nodiscard]] std::vector<std::uint8_t> generate(std::size_t count);

    [[nodiscard]] std::uint32_t state() const { return state_; }
    [[nodiscard]] std::size_t period() const { return (std::size_t{1} << degree_) - 1; }

private:
    std::uint32_t polynomial_;
    std::uint32_t degree_;
    std::uint32_t state_;
};

/// Full-period m-sequence for a standard primitive polynomial of the given
/// degree (supported degrees: 3..16).
[[nodiscard]] std::vector<std::uint8_t> m_sequence(std::uint32_t degree, std::uint32_t seed = 1);

/// Barker code of the given length (supported: 2, 3, 4, 5, 7, 11, 13) as
/// +1/-1 chips.
[[nodiscard]] std::vector<int> barker_code(std::size_t length);

/// Maps bits {0,1} to BPSK chips {+1,-1} as complex samples.
[[nodiscard]] cvec bits_to_bpsk(std::span<const std::uint8_t> bits);

/// Sliding (non-normalized) cross-correlation magnitude of `haystack` against
/// `needle`; output index i corresponds to needle aligned at haystack[i].
[[nodiscard]] rvec correlate_magnitude(std::span<const cf64> haystack,
                                       std::span<const cf64> needle);

/// Index of the correlation peak, with the peak-to-sidelobe ratio returned in
/// `peak_to_sidelobe` when non-null.
[[nodiscard]] std::size_t correlation_peak(std::span<const double> correlation,
                                           double* peak_to_sidelobe = nullptr);

} // namespace mmtag::dsp
