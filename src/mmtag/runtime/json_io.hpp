// Shared JSON document I/O for every schema emitter (bench results, soak
// reports, scale results, phy tables): file writing with parent-directory
// creation, whole-file reads, a strict parser into the ordered json_value
// model, and the common document helpers (schema header, ratio-or-null)
// that used to be copy-pasted per emitter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mmtag/runtime/result_writer.hpp"

namespace mmtag::runtime {

/// Writes `text` plus a trailing newline to `path`, creating parent
/// directories first. Warns on stderr and returns false when the filesystem
/// refuses; emitters keep going (results are printed too).
bool write_text_file(const std::string& path, const std::string& text);

/// Whole-file read; nullopt when the file is missing or unreadable.
[[nodiscard]] std::optional<std::string> read_text_file(const std::string& path);

/// Strict JSON parser into the ordered document model (objects keep member
/// order, numbers parse as integer/unsigned/double by shape). Returns
/// nullopt on any syntax error or trailing garbage. Round-trips everything
/// json_value::dump emits — the contract the phy-table disk cache relies on.
[[nodiscard]] std::optional<json_value> parse_json(const std::string& text);

/// A ratio metric is meaningless without observations: "BER over zero bits"
/// is not 0.0 (that would claim an error-free link), it is absent. Emits
/// JSON null so downstream tooling can tell "measured clean" from "never
/// measured" — and so non-finite doubles never leak into a file as bare
/// nan/inf.
[[nodiscard]] json_value ratio_or_null(double value, std::uint64_t observations);

/// Object pre-seeded with {"schema": <name>} — the first member of every
/// mmtag result document (mmtag.bench.result/*, mmtag.soak.result/1,
/// mmtag.scale.result/1, mmtag.phy_table/1).
[[nodiscard]] json_value schema_object(const std::string& schema);

} // namespace mmtag::runtime
