#include <gtest/gtest.h>

#include <random>

#include "mmtag/phy/bitio.hpp"
#include "mmtag/phy/line_code.hpp"

namespace mmtag::phy {
namespace {

const line_code all_codes[] = {line_code::nrz, line_code::fm0, line_code::miller2,
                               line_code::miller4};

class line_code_properties : public ::testing::TestWithParam<line_code> {};

TEST_P(line_code_properties, round_trip)
{
    const auto bits = random_bits(500, 3);
    const auto chips = encode_line_code(bits, GetParam());
    EXPECT_EQ(chips.size(), bits.size() * chips_per_bit(GetParam()));
    std::vector<double> soft;
    soft.reserve(chips.size());
    for (int c : chips) soft.push_back(static_cast<double>(c));
    EXPECT_EQ(decode_line_code(soft, GetParam()), bits);
}

TEST_P(line_code_properties, chips_are_antipodal)
{
    const auto chips = encode_line_code(random_bits(100, 5), GetParam());
    for (int c : chips) EXPECT_TRUE(c == 1 || c == -1);
}

TEST_P(line_code_properties, survives_scattered_chip_errors)
{
    // Isolated chip flips must not avalanche: decode correlates each bit
    // window against both hypotheses with the running state.
    const line_code code = GetParam();
    if (code == line_code::nrz) GTEST_SKIP() << "NRZ has 1 chip/bit: no redundancy";
    const auto bits = random_bits(400, 7);
    const auto chips = encode_line_code(bits, code);
    std::vector<double> soft;
    for (int c : chips) soft.push_back(static_cast<double>(c));
    // Flip ~1% of chips, spread out so no bit loses its majority.
    const std::size_t n = chips_per_bit(code);
    for (std::size_t i = 0; i + n <= soft.size(); i += 97 * n) soft[i] = -soft[i];
    const auto decoded = decode_line_code(soft, code);
    const std::size_t errors = hamming_distance(decoded, bits);
    EXPECT_LT(errors, bits.size() / 50);
}

TEST_P(line_code_properties, decodes_soft_amplitudes)
{
    std::mt19937_64 rng(11);
    std::normal_distribution<double> noise(0.0, 0.4);
    const line_code code = GetParam();
    const auto bits = random_bits(300, 13);
    const auto chips = encode_line_code(bits, code);
    std::vector<double> soft;
    for (int c : chips) soft.push_back(static_cast<double>(c) + noise(rng));
    const auto decoded = decode_line_code(soft, code);
    const std::size_t errors = hamming_distance(decoded, bits);
    // NRZ and FM0 share the same per-bit decision distance (FM0 is a
    // spectral code, not a coding-gain code); Miller correlates over half
    // its chips and tolerates this noise easily.
    const bool has_gain = code == line_code::miller2 || code == line_code::miller4;
    EXPECT_LT(static_cast<double>(errors) / 300.0, has_gain ? 0.004 : 0.03);
}

INSTANTIATE_TEST_SUITE_P(codes, line_code_properties, ::testing::ValuesIn(all_codes));

TEST(line_code, fm0_inverts_at_every_bit_boundary)
{
    const std::vector<std::uint8_t> bits{1, 1, 1, 1};
    const auto chips = encode_line_code(bits, line_code::fm0);
    // Data-1 has no mid-bit inversion; boundaries always invert.
    for (std::size_t b = 0; b + 1 < bits.size(); ++b) {
        EXPECT_EQ(chips[2 * b], chips[2 * b + 1]);           // flat inside a 1
        EXPECT_EQ(chips[2 * b + 1], -chips[2 * (b + 1)]);    // boundary inversion
    }
}

TEST(line_code, fm0_zero_has_midbit_transition)
{
    const std::vector<std::uint8_t> bits{0, 0};
    const auto chips = encode_line_code(bits, line_code::fm0);
    EXPECT_EQ(chips[0], -chips[1]);
    EXPECT_EQ(chips[2], -chips[3]);
}

TEST(line_code, dc_suppression_ordering)
{
    // The design motivation: FM0 and Miller move energy away from DC.
    const double nrz = dc_power_fraction(line_code::nrz, 0.01);
    const double fm0 = dc_power_fraction(line_code::fm0, 0.01);
    const double miller4 = dc_power_fraction(line_code::miller4, 0.01);
    EXPECT_LT(fm0, nrz / 5.0);
    EXPECT_LT(miller4, fm0);
}

TEST(line_code, transition_cost_ordering)
{
    // The price: more subcarrier cycles toggle the switch more often.
    const double nrz = transitions_per_bit(line_code::nrz);
    const double fm0 = transitions_per_bit(line_code::fm0);
    const double miller2 = transitions_per_bit(line_code::miller2);
    const double miller4 = transitions_per_bit(line_code::miller4);
    EXPECT_NEAR(nrz, 0.5, 0.05); // random data
    EXPECT_GT(fm0, 1.0);
    EXPECT_GT(miller2, fm0);
    EXPECT_GT(miller4, miller2 * 1.5);
}

TEST(line_code, validation)
{
    EXPECT_THROW((void)decode_line_code(std::vector<double>{1.0}, line_code::fm0),
                 std::invalid_argument); // not a whole bit
    EXPECT_THROW((void)dc_power_fraction(line_code::fm0, 0.0), std::invalid_argument);
}

TEST(line_code, names)
{
    EXPECT_STREQ(line_code_name(line_code::fm0), "FM0");
    EXPECT_STREQ(line_code_name(line_code::miller4), "Miller-4");
}

} // namespace
} // namespace mmtag::phy
