#include "mmtag/tag/controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::tag {

tag_controller::tag_controller(const config& cfg)
    : cfg_(cfg), modulator_(cfg.modulator), detector_(cfg.detector, cfg.seed)
{
    if (cfg.wake_threshold_v <= 0.0) {
        throw std::invalid_argument("tag_controller: wake threshold must be > 0");
    }
    if (cfg.detect_hold_s < 0.0 || cfg.turnaround_s < 0.0) {
        throw std::invalid_argument("tag_controller: negative timing parameter");
    }
}

tag_controller::response tag_controller::respond_to_query(std::span<const cf64> incident,
                                                          std::span<const std::uint8_t> payload)
{
    response result;
    const double fs = cfg_.modulator.sample_rate_hz;
    const auto hold_samples = static_cast<std::size_t>(std::round(cfg_.detect_hold_s * fs));
    const auto turnaround_samples = static_cast<std::size_t>(std::round(cfg_.turnaround_s * fs));

    state_ = tag_state::listening;
    const rvec envelope = detector_.detect(incident);
    const std::vector<bool> carrier =
        detector_.threshold(envelope, cfg_.wake_threshold_v, cfg_.wake_threshold_v / 2.0);

    // Find the first run of `hold_samples` consecutive carrier-present samples.
    std::size_t run = 0;
    std::optional<std::size_t> detect_at;
    for (std::size_t i = 0; i < carrier.size(); ++i) {
        run = carrier[i] ? run + 1 : 0;
        if (run >= std::max<std::size_t>(hold_samples, 1)) {
            detect_at = i;
            break;
        }
    }

    // Default: stay absorptive for the whole window.
    const cf64 absorb = modulator_.bank().gammas()[modulator_.bank().absorb_state()];
    result.gamma.assign(incident.size(), absorb);
    if (!detect_at) {
        state_ = tag_state::sleeping;
        return result;
    }

    result.detect_sample = *detect_at;
    result.respond_sample = *detect_at + turnaround_samples;
    if (result.respond_sample >= incident.size()) {
        state_ = tag_state::sleeping;
        return result; // window too short to respond in
    }

    state_ = tag_state::responding;
    result.frame = modulator_.modulate(payload);
    result.responded = true;
    const std::size_t copy_count =
        std::min(result.frame.gamma.size(), incident.size() - result.respond_sample);
    std::copy_n(result.frame.gamma.begin(), copy_count,
                result.gamma.begin() + static_cast<std::ptrdiff_t>(result.respond_sample));
    state_ = tag_state::listening;
    return result;
}

} // namespace mmtag::tag
