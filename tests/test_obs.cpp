// Observability layer: metric merge exactness (the additive-sufficient-
// statistics contract), view filtering, scoped timers, the event tracer's
// Chrome JSON output, and the --jobs invariance of metric snapshots and
// trace event counts when folded through the sweep runner.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/obs/scoped_timer.hpp"
#include "mmtag/obs/trace.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/runtime/sweep_runner.hpp"
#include "mmtag/runtime/thread_pool.hpp"

#include "json_checker.hpp"

namespace mmtag::obs {
namespace {

using testutil::json_checker;

// ------------------------------------------------------------------- metrics

TEST(metrics_registry, counter_gauge_histogram_basics)
{
    metrics_registry registry;
    EXPECT_TRUE(registry.empty());

    registry.get_counter("a/events").add();
    registry.get_counter("a/events").add(4);
    EXPECT_EQ(registry.find_counter("a/events")->value(), 5u);

    auto& g = registry.get_gauge("a/level");
    g.set(2.0);
    g.set(-1.0);
    g.set(4.0);
    EXPECT_EQ(g.count(), 3u);
    EXPECT_DOUBLE_EQ(g.last(), 4.0);
    EXPECT_DOUBLE_EQ(g.min(), -1.0);
    EXPECT_DOUBLE_EQ(g.max(), 4.0);
    EXPECT_DOUBLE_EQ(g.sum(), 5.0);
    EXPECT_DOUBLE_EQ(g.mean(), 5.0 / 3.0);

    const double bounds[] = {1.0, 2.0, 4.0};
    auto& h = registry.get_histogram("a/latency", bounds);
    h.observe(0.5);  // bucket 0
    h.observe(2.0);  // bucket 1 (inclusive upper bound)
    h.observe(3.0);  // bucket 2
    h.observe(99.0); // overflow
    ASSERT_EQ(h.counts().size(), 4u);
    EXPECT_EQ(h.counts()[0], 1u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 1u);
    EXPECT_EQ(h.counts()[3], 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 104.5);

    EXPECT_EQ(registry.size(), 3u);
    EXPECT_EQ(registry.find_counter("missing"), nullptr);
    registry.clear();
    EXPECT_TRUE(registry.empty());
}

TEST(metrics_registry, merge_equals_sequential_accumulation)
{
    // The merge() contract: folding two partial registries must be
    // bit-identical to observing everything into one registry — with
    // exactly-representable values even the double sums match bytewise,
    // which is what the --jobs invariance of `--metrics` output rests on.
    const double bounds[] = {1.0, 10.0};
    metrics_registry sequential;
    metrics_registry part_a;
    metrics_registry part_b;
    const double values_a[] = {0.5, 2.0, 64.0};
    const double values_b[] = {1.0, 0.25, 512.0};
    for (const double v : values_a) {
        sequential.get_counter("n").add();
        sequential.get_gauge("g").set(v);
        sequential.get_histogram("h", bounds).observe(v);
        part_a.get_counter("n").add();
        part_a.get_gauge("g").set(v);
        part_a.get_histogram("h", bounds).observe(v);
    }
    for (const double v : values_b) {
        sequential.get_counter("n").add();
        sequential.get_gauge("g").set(v);
        sequential.get_histogram("h", bounds).observe(v);
        part_b.get_counter("n").add();
        part_b.get_gauge("g").set(v);
        part_b.get_histogram("h", bounds).observe(v);
    }
    metrics_registry merged;
    merged.merge(part_a);
    merged.merge(part_b);
    EXPECT_EQ(merged.to_json_string(), sequential.to_json_string());
    // `last` follows merge order: part_b's final value wins.
    EXPECT_DOUBLE_EQ(merged.find_gauge("g")->last(), 512.0);
}

TEST(metrics_registry, histogram_bound_mismatch_throws)
{
    const double bounds_a[] = {1.0, 2.0};
    const double bounds_b[] = {1.0, 3.0};
    metrics_registry registry;
    registry.get_histogram("h", bounds_a);
    EXPECT_THROW(registry.get_histogram("h", bounds_b), std::invalid_argument);

    metrics_registry other;
    other.get_histogram("h", bounds_b);
    EXPECT_THROW(registry.merge(other), std::invalid_argument);
}

TEST(metrics_registry, views_split_timing_from_deterministic)
{
    metrics_registry registry;
    registry.get_counter("link/frames").add(3);
    registry.get_histogram("time/link_frame", time_bounds_s()).observe(1e-3);

    EXPECT_TRUE(metrics_registry::is_timing_name("time/link_frame"));
    EXPECT_FALSE(metrics_registry::is_timing_name("link/frames"));

    const auto deterministic =
        registry.to_json_string(metric_view::deterministic);
    EXPECT_NE(deterministic.find("link/frames"), std::string::npos);
    EXPECT_EQ(deterministic.find("time/link_frame"), std::string::npos);

    const auto timing = registry.to_json_string(metric_view::timing);
    EXPECT_EQ(timing.find("link/frames"), std::string::npos);
    EXPECT_NE(timing.find("time/link_frame"), std::string::npos);

    const auto all = registry.to_json_string(metric_view::all);
    EXPECT_NE(all.find("link/frames"), std::string::npos);
    EXPECT_NE(all.find("time/link_frame"), std::string::npos);
    EXPECT_TRUE(json_checker(all).valid()) << all;
}

TEST(metrics_registry, non_finite_values_serialize_as_null)
{
    metrics_registry registry;
    registry.get_gauge("g").set(std::numeric_limits<double>::infinity());
    const auto text = registry.to_json_string();
    EXPECT_TRUE(json_checker(text).valid()) << text;
    EXPECT_NE(text.find("null"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos) << text;
    EXPECT_EQ(text.find("nan"), std::string::npos) << text;
}

// -------------------------------------------------------------- scoped timer

TEST(scoped_timer, records_into_time_histogram)
{
    metrics_registry registry;
    {
        MMTAG_SCOPED_TIMER(&registry, "time/block");
    }
    const auto* h = registry.find_histogram("time/block");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);
    EXPECT_GE(h->sum(), 0.0);
}

TEST(scoped_timer, null_registry_is_a_no_op)
{
    {
        MMTAG_SCOPED_TIMER(static_cast<metrics_registry*>(nullptr), "time/none");
        MMTAG_SCOPED_TIMER(static_cast<metrics_registry*>(nullptr), "time/none");
    }
    SUCCEED();
}

// -------------------------------------------------------------------- tracer

TEST(tracer, session_collects_and_emits_chrome_json)
{
    tracer::start();
    EXPECT_TRUE(tracer::active());
    trace_instant("test.instant", "test", "{\"k\": 1}");
    {
        const trace_span span("test.span", "test");
    }
    tracer::stop();
    EXPECT_FALSE(tracer::active());

    const auto events = tracer::events();
    ASSERT_EQ(events.size(), 2u);
    const auto counts = tracer::event_counts();
    EXPECT_EQ(counts.at("test.instant"), 1u);
    EXPECT_EQ(counts.at("test.span"), 1u);

    const auto json = tracer::to_json();
    EXPECT_TRUE(json_checker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"test.instant\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"k\": 1"), std::string::npos);
}

TEST(tracer, inactive_emissions_are_dropped_silently)
{
    ASSERT_FALSE(tracer::active());
    trace_instant("test.orphan", "test");
    tracer::start();
    tracer::stop();
    EXPECT_EQ(tracer::event_counts().count("test.orphan"), 0u);
}

TEST(tracer, ring_overflow_counts_drops)
{
    tracer::start(/*events_per_thread=*/8);
    for (int i = 0; i < 32; ++i) trace_instant("test.burst", "test");
    tracer::stop();
    EXPECT_EQ(tracer::events().size(), 8u);
    EXPECT_EQ(tracer::dropped(), 24u);
}

TEST(tracer, write_creates_parseable_file)
{
    tracer::start();
    trace_instant("test.file", "test");
    tracer::stop();
    const auto path =
        std::filesystem::temp_directory_path() / "mmtag_obs_test_trace.json";
    ASSERT_TRUE(tracer::write(path.string()));
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    EXPECT_TRUE(json_checker(text).valid()) << text;
    std::filesystem::remove(path);
}

// ---------------------------------------------------- jobs invariance (sweep)

/// Sweep aggregate carrying a registry, mirroring the CLI's observed_report.
struct metered_trial {
    metrics_registry metrics;
    void merge(const metered_trial& other) { metrics.merge(other.metrics); }
};

metered_trial synthetic_metered_trial(std::size_t point, std::uint64_t seed)
{
    metered_trial out;
    out.metrics.get_counter("trial/runs").add();
    out.metrics.get_counter("trial/seed_bits").add(seed % 97);
    out.metrics.get_gauge("trial/level").set(static_cast<double>(seed % 17));
    const double bounds[] = {8.0, 32.0, 64.0};
    out.metrics.get_histogram("trial/mod", bounds)
        .observe(static_cast<double>((seed >> 8) % 100));
    out.metrics.get_counter("trial/point").add(point);
    // Wall-clock component: must never reach the deterministic view.
    out.metrics.get_histogram("time/trial", time_bounds_s()).observe(1e-4);
    return out;
}

std::string metered_sweep_snapshot(std::size_t jobs)
{
    runtime::sweep_options options;
    options.jobs = jobs;
    options.base_seed = 99;
    options.trials_per_point = 5;
    const auto out = runtime::run_sweep<metered_trial>(
        options, 4, [](std::size_t point, std::size_t, std::uint64_t seed) {
            return synthetic_metered_trial(point, seed);
        });
    metrics_registry merged;
    for (const auto& point : out.points) merged.merge(point.aggregate.metrics);
    return merged.to_json_string(metric_view::deterministic, 2);
}

TEST(obs_determinism, metric_snapshots_are_byte_identical_across_jobs)
{
    const auto serial = metered_sweep_snapshot(1);
    EXPECT_TRUE(json_checker(serial).valid()) << serial;
    EXPECT_EQ(serial, metered_sweep_snapshot(8));
    EXPECT_EQ(serial, metered_sweep_snapshot(3));
    // Timer data exists but stays out of the deterministic view.
    EXPECT_EQ(serial.find("time/trial"), std::string::npos);
    EXPECT_NE(serial.find("trial/runs"), std::string::npos);
}

std::map<std::string, std::uint64_t> traced_sweep_counts(std::size_t jobs)
{
    tracer::start();
    runtime::sweep_options options;
    options.jobs = jobs;
    options.base_seed = 7;
    options.trials_per_point = 4;
    (void)runtime::run_sweep<metered_trial>(
        options, 3, [](std::size_t point, std::size_t, std::uint64_t seed) {
            trace_instant("test.trial_body", "test");
            return synthetic_metered_trial(point, seed);
        });
    tracer::stop();
    return tracer::event_counts();
}

TEST(obs_determinism, trace_event_counts_are_jobs_invariant)
{
    // Timestamps and thread ids legitimately differ; the event *counts* per
    // name must not. Worker-thread rings are drained by the pool at batch
    // end, so nothing is lost on the parallel path.
    const auto serial = traced_sweep_counts(1);
    const auto parallel = traced_sweep_counts(8);
    EXPECT_EQ(serial.at("test.trial_body"), 12u);
    EXPECT_EQ(serial.at("sweep.trial"), 12u);
    EXPECT_EQ(serial.at("sweep.point"), 3u);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(tracer::dropped(), 0u);
}

} // namespace
} // namespace mmtag::obs
