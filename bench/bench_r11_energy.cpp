// R11 — Tag power and energy-per-bit table.
// The headline claim of mmWave backscatter: communication at nJ/bit while an
// active mmWave radio burns 10-100x more. Reports per-mode tag power, nJ/bit
// across data rates (anchor: the 2.4 nJ/bit figure cited for mmTag), and the
// comparison against the component-budget active radio and a phased-array
// tag.
#include "bench_util.hpp"
#include "mmtag/core/baselines.hpp"
#include "mmtag/tag/energy_model.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R11", "tag power, energy per bit, and baselines", csv);

    const tag::energy_model model;

    if (!csv) std::printf("Tag power by mode:\n");
    bench::table modes({"mode", "power_mW"}, csv);
    modes.add_row({"sleep", bench::fmt("%.4f", model.sleep_power_w() * 1e3)});
    modes.add_row({"listen", bench::fmt("%.3f", model.listen_power_w() * 1e3)});
    modes.add_row({"uplink @ 2.5 Msym/s",
                   bench::fmt("%.1f", model.transmit_power_w(2.5e6, 0.75) * 1e3)});
    modes.add_row({"uplink @ 5 Msym/s",
                   bench::fmt("%.1f", model.transmit_power_w(5e6, 0.75) * 1e3)});
    modes.add_row({"uplink @ 25 Msym/s",
                   bench::fmt("%.1f", model.transmit_power_w(25e6, 0.75) * 1e3)});
    modes.print();

    if (!csv) std::printf("\nEnergy per bit vs data rate (QPSK uncoded):\n");
    bench::table energy({"data_rate_Mbps", "tag_power_mW", "energy_nJ_per_bit"}, csv);
    phy::frame_config frame;
    frame.scheme = phy::modulation::qpsk;
    frame.fec = phy::fec_mode::uncoded;
    for (double rate_mbps : {1.0, 5.0, 10.0, 20.0, 40.0, 100.0}) {
        const double symbol_rate = rate_mbps * 1e6 / 2.0; // 2 bits/symbol
        energy.add_row({bench::fmt("%.0f", rate_mbps),
                        bench::fmt("%.1f", model.transmit_power_w(symbol_rate, 0.75) * 1e3),
                        bench::fmt("%.2f", model.energy_per_bit(frame, symbol_rate) * 1e9)});
    }
    energy.print();

    if (!csv) std::printf("\nComparison points:\n");
    bench::table cmp({"system", "power_mW", "nJ_per_bit", "notes"}, csv);
    cmp.add_row({"this work @ 10 Mbps",
                 bench::fmt("%.1f", model.transmit_power_w(5e6, 0.75) * 1e3),
                 bench::fmt("%.2f", model.energy_per_bit(frame, 5e6) * 1e9),
                 "QPSK load modulation"});
    const core::active_radio_model radio{};
    cmp.add_row({"active mmWave radio", bench::fmt("%.0f", radio.total_power_w() * 1e3),
                 bench::fmt("%.2f", radio.energy_per_bit(100e6) * 1e9),
                 "component budget, 100 Mbps"});
    const core::phased_array_tag_model array{};
    cmp.add_row({"phased-array tag (hypothetical)",
                 bench::fmt("%.0f", array.total_power_w() * 1e3), "-",
                 "steering power alone"});
    for (const auto& ref : core::literature_energy_points()) {
        cmp.add_row({ref.name, "-", bench::fmt("%.2f", ref.energy_per_bit_j * 1e9),
                     ref.notes});
    }
    cmp.print();
    return 0;
}
