#include "mmtag/mac/arq.hpp"

#include <cmath>
#include <stdexcept>

namespace mmtag::mac {

double arq_stats::delivery_ratio() const
{
    if (frames_offered == 0) return 0.0;
    return static_cast<double>(frames_delivered) / static_cast<double>(frames_offered);
}

double arq_stats::transmission_efficiency() const
{
    if (transmissions == 0) return 0.0;
    return static_cast<double>(frames_delivered) / static_cast<double>(transmissions);
}

double arq_stats::goodput_bps(double payload_bits) const
{
    if (airtime_s <= 0.0) return 0.0;
    return static_cast<double>(frames_delivered) * payload_bits / airtime_s;
}

stop_and_wait_arq::stop_and_wait_arq(const arq_config& cfg) : cfg_(cfg)
{
    if (cfg.max_retries == 0) throw std::invalid_argument("arq: max_retries must be >= 1");
    if (cfg.frame_time_s <= 0.0 || cfg.ack_time_s < 0.0) {
        throw std::invalid_argument("arq: invalid timing");
    }
}

arq_stats stop_and_wait_arq::run(std::size_t frame_count, double frame_success,
                                 std::uint64_t seed) const
{
    if (!(frame_success >= 0.0 && frame_success <= 1.0)) {
        throw std::invalid_argument("arq: frame_success must be in [0, 1]");
    }
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    arq_stats stats;
    stats.frames_offered = frame_count;
    for (std::size_t f = 0; f < frame_count; ++f) {
        for (std::size_t attempt = 0; attempt < cfg_.max_retries; ++attempt) {
            ++stats.transmissions;
            stats.airtime_s += cfg_.frame_time_s + cfg_.ack_time_s;
            if (uniform(rng) < frame_success) {
                ++stats.frames_delivered;
                break;
            }
        }
    }
    return stats;
}

double stop_and_wait_arq::expected_transmissions(double frame_success) const
{
    if (!(frame_success > 0.0 && frame_success <= 1.0)) {
        throw std::invalid_argument("arq: frame_success must be in (0, 1]");
    }
    // Truncated-geometric mean: sum_{k=1..R} k p (1-p)^(k-1) + R (1-p)^R.
    const double p = frame_success;
    const double r = static_cast<double>(cfg_.max_retries);
    double expectation = 0.0;
    for (std::size_t k = 1; k <= cfg_.max_retries; ++k) {
        expectation += static_cast<double>(k) * p * std::pow(1.0 - p, static_cast<double>(k - 1));
    }
    expectation += r * std::pow(1.0 - p, r);
    return expectation;
}

} // namespace mmtag::mac
