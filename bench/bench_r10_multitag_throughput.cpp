// R10 — Network throughput vs population.
// Tags scattered over range and orientation share the channel via TDMA after
// inventory. Expected shape: aggregate goodput stays near the single-link
// ceiling (slotting overhead only) while per-tag goodput divides by N;
// far/rotated tags run lower rates and drag the aggregate slightly.
#include "bench_util.hpp"
#include "mmtag/core/network.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const bool csv = bench::csv_mode(argc, argv);
    bench::banner("R10", "TDMA network goodput vs number of tags", csv);

    bench::table out({"tags", "inventory_slots", "cycle_ms", "per_tag_Mbps",
                      "aggregate_Mbps", "min_snr_dB", "max_snr_dB"},
                     csv);
    for (std::size_t count : {1u, 2u, 4u, 8u, 12u, 16u, 20u}) {
        std::vector<core::tag_descriptor> tags;
        for (std::uint32_t i = 0; i < count; ++i) {
            // Spread tags from 1.5 m to 6 m and -25 to +25 degrees.
            const double frac = count == 1 ? 0.0
                                           : static_cast<double>(i) /
                                                 static_cast<double>(count - 1);
            tags.push_back({i, 1.5 + 4.5 * frac, deg_to_rad(-25.0 + 50.0 * frac)});
        }
        const core::network net(bench::bench_scenario(), tags);
        const auto report = net.run(4242);
        out.add_row({std::to_string(count), std::to_string(report.inventory.slots_used),
                     bench::fmt("%.3f", report.tdma.cycle_time_s * 1e3),
                     bench::fmt("%.3f", report.tdma.per_tag_goodput_bps / 1e6),
                     bench::fmt("%.2f", report.aggregate_goodput_bps / 1e6),
                     bench::fmt("%.1f", report.min_snr_db),
                     bench::fmt("%.1f", report.max_snr_db)});
    }
    out.print();
    return 0;
}
