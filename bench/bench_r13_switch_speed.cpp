// R13 — Switch-speed rate ceiling.
// The tag's uplink symbol rate is capped by the RF switch's rise/fall time;
// pushing symbols faster smears transitions across the symbol. Expected
// shape: EVM degrades as the symbol period approaches the transition time,
// and the modulator refuses rates beyond the device ceiling — the paper's
// "rate limited by switching speed" observation.
#include "bench_util.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/rf/rf_switch.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R13", "link quality vs switch rise/fall time at 5 Msym/s", csv);

    bench::table out({"rise_fall_ns", "max_sym_rate_Msps", "snr_dB", "evm_dB", "per"}, csv);
    for (double rise_ns : {0.0, 2.0, 10.0, 25.0, 50.0, 80.0}) {
        auto cfg = bench::bench_scenario();
        cfg.modulator.rf_switch.rise_fall_time_s = rise_ns * 1e-9;
        const rf::rf_switch device(
            [&] {
                auto sw = cfg.modulator.rf_switch;
                sw.throw_count = 5;
                return sw;
            }());
        core::link_simulator sim(cfg);
        const auto report = sim.run_trials(5, 32);
        const double ceiling = device.max_symbol_rate_hz();
        out.add_row({bench::fmt("%.0f", rise_ns),
                     ceiling > 1e15 ? "inf" : bench::fmt("%.0f", ceiling / 1e6),
                     bench::fmt("%.1f", report.mean_snr_db),
                     bench::fmt("%.1f", report.mean_evm_db),
                     bench::fmt("%.2f", report.per)});
    }
    out.print();

    if (!csv) {
        std::printf("\nDevice ceiling check: a 1 us switch cannot run 5 Msym/s — ");
        auto cfg = bench::bench_scenario();
        cfg.modulator.rf_switch.rise_fall_time_s = 1e-6;
        try {
            core::link_simulator sim(cfg);
            std::printf("UNEXPECTEDLY ACCEPTED\n");
        } catch (const simulation_error&) {
            std::printf("rejected as expected.\n");
        }
    }
    return 0;
}
