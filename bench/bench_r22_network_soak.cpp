// R22 — Network-scale chaos soak: graceful degradation under multi-tag
// faults (extension). A 6-tag network runs the network supervisor's session
// state machines through correlated blockage storms, rolling brownouts, and
// a persistent interferer while the number of faulted tags sweeps 0..3.
// Expected shape: the faulted tags lose delivery roughly in proportion to
// the injected outage time, while the never-faulted tags keep their
// fault-free share (the graceful-degradation invariant bounds the loss at
// 10%) and every quarantined session re-admits within the documented probe
// bound. Each soak cell also re-checks the full invariant set — transition
// legality, no starvation, frame conservation, bounded recovery — so the
// bench doubles as a resilience regression gate.
//
// Each cell's (trial x arm) grid fans out across the runtime thread pool
// inside net::run_soak; results fold in trial order and are bit-identical
// for any --jobs value.
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mmtag/net/soak_harness.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/runtime/sweep_runner.hpp"
#include "mmtag/runtime/thread_pool.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    bench::banner("R22", "network chaos soak: degradation and re-admission vs faulted tags",
                  opts.csv);

    constexpr std::size_t tag_count = 6;
    constexpr std::size_t max_faulted = 3;
    const std::size_t rounds = opts.extra_u64("rounds", 36);
    const std::size_t trials = opts.extra_u64("trials", 1);
    const std::uint64_t fault_seed = opts.extra_u64("fault-seed", 42);

    std::vector<net::soak_report> reports;
    const auto start = std::chrono::steady_clock::now();
    runtime::thread_pool pool(opts.jobs);
    for (std::size_t faulted = 0; faulted <= max_faulted; ++faulted) {
        net::soak_config cfg;
        cfg.tag_count = tag_count;
        cfg.faulted_count = faulted;
        cfg.rounds = rounds;
        cfg.trials = trials;
        cfg.seed = opts.seed;
        cfg.fault_seed = fault_seed;
        reports.push_back(net::run_soak(cfg, pool));
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    runtime::result_writer results(
        "R22", "network chaos soak: degradation and re-admission vs faulted tags",
        {"faulted_tags"}, opts.seed);
    bench::table out({"faulted", "faulted_delivery", "healthy_share", "transitions",
                      "readmissions", "max_readmit", "invariants"},
                     opts.csv);
    bool all_passed = true;
    for (std::size_t faulted = 0; faulted <= max_faulted; ++faulted) {
        const auto& report = reports[faulted];
        all_passed = all_passed && report.all_passed();

        // Delivery ratio over the faulted tags (1.0 when none are faulted).
        std::uint64_t faulted_delivered = 0;
        std::uint64_t faulted_reference = 0;
        for (std::size_t tag = 0; tag < faulted; ++tag) {
            faulted_delivered += report.delivered_per_tag[tag];
            faulted_reference += report.reference_per_tag[tag];
        }
        const double faulted_delivery =
            faulted_reference > 0 ? static_cast<double>(faulted_delivered) /
                                        static_cast<double>(faulted_reference)
                                  : 1.0;
        std::size_t invariants_passed = 0;
        for (const auto& inv : report.invariants) {
            if (inv.passed) ++invariants_passed;
        }
        out.add_row(
            {bench::fmt("%.0f", static_cast<double>(faulted)),
             bench::fmt("%.3f", faulted_delivery),
             report.healthy_share_min_observed >= 0.0
                 ? bench::fmt("%.3f", report.healthy_share_min_observed)
                 : std::string("n/a"),
             bench::fmt("%.0f", static_cast<double>(report.transitions)),
             bench::fmt("%.0f", static_cast<double>(report.readmissions)),
             bench::fmt("%.0f", static_cast<double>(report.max_readmit_rounds)),
             std::to_string(invariants_passed) + "/" +
                 std::to_string(report.invariants.size())});

        auto axis = runtime::json_value::object();
        axis.set("faulted_tags", runtime::json_value::unsigned_integer(faulted));
        auto metrics = runtime::json_value::object();
        metrics.set("faulted_delivery", runtime::json_value::number(faulted_delivery));
        metrics.set("healthy_share_min",
                    runtime::json_value::number(report.healthy_share_min_observed));
        metrics.set("transitions",
                    runtime::json_value::unsigned_integer(report.transitions));
        metrics.set("readmissions",
                    runtime::json_value::unsigned_integer(report.readmissions));
        metrics.set("max_readmit_rounds",
                    runtime::json_value::unsigned_integer(report.max_readmit_rounds));
        for (const auto& inv : report.invariants) {
            metrics.set("invariant_" + inv.name,
                        runtime::json_value::boolean(inv.passed));
        }
        results.add_point(std::move(axis), trials, std::move(metrics));
    }
    out.print();

    const std::size_t tasks = 2 * trials * (max_faulted + 1);
    const auto written =
        results.write(opts.json_path, wall_s, pool.jobs(),
                      wall_s > 0.0 ? static_cast<double>(tasks) / wall_s : 0.0);
    if (!opts.csv) {
        std::printf("\n%s\n",
                    runtime::summary_line(max_faulted + 1, tasks, wall_s, pool.jobs())
                        .c_str());
        if (!written.empty()) std::printf("wrote %s\n", written.c_str());
    }
    // The soak is a resilience gate, not just a report: a tripped invariant
    // is a bench failure.
    return all_passed ? 0 : 1;
}
