file(REMOVE_RECURSE
  "CMakeFiles/bench_r02_constellation.dir/bench_r02_constellation.cpp.o"
  "CMakeFiles/bench_r02_constellation.dir/bench_r02_constellation.cpp.o.d"
  "bench_r02_constellation"
  "bench_r02_constellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r02_constellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
