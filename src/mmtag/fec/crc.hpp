// Table-driven cyclic redundancy checks used by the mmtag frame format:
// CRC-8 (header), CRC-16-CCITT (short payloads), CRC-32 (payload).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mmtag::fec {

/// CRC-8/ATM (polynomial 0x07, init 0x00, no reflection).
[[nodiscard]] std::uint8_t crc8(std::span<const std::uint8_t> data);

/// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF, no reflection).
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

/// CRC-32/ISO-HDLC (polynomial 0x04C11DB7 reflected, init/xorout 0xFFFFFFFF)
/// — the Ethernet/zlib CRC.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Appends a big-endian CRC-32 to `data`.
[[nodiscard]] std::vector<std::uint8_t> append_crc32(std::span<const std::uint8_t> data);

/// Verifies and strips a trailing big-endian CRC-32. Returns false if the
/// frame is shorter than the CRC or the check fails; `payload` is untouched
/// on failure.
[[nodiscard]] bool check_and_strip_crc32(std::span<const std::uint8_t> frame,
                                         std::vector<std::uint8_t>& payload);

} // namespace mmtag::fec
