# Empty dependencies file for two_way_protocol.
# This may be replaced when dependencies are built.
