// R20 — Waveform-level inventory vs the slot-level model (extension).
// Runs the framed-slotted-ALOHA discovery both ways: the mac-layer model
// (collision oracle) and the sample-accurate simulation where collisions are
// just superposed RF. Expected shape: rounds-to-complete and collision
// fractions agree — validating that the MAC abstraction used for the large
// population sweeps (R9/R10) is faithful to the physical layer.
#include "bench_util.hpp"
#include "mmtag/core/inventory_round.hpp"
#include "mmtag/mac/slotted_aloha.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R20", "sample-accurate inventory vs the MAC model", csv);

    bench::table out({"tags", "slots", "sampled_rounds", "sampled_identified",
                      "sampled_collision_frac", "model_collision_frac"},
                     csv);
    for (std::size_t count : {2u, 4u, 6u, 8u}) {
        std::vector<core::tag_descriptor> tags;
        for (std::uint32_t i = 0; i < count; ++i) {
            tags.push_back({100 + i, 2.0 + 0.25 * static_cast<double>(i),
                            deg_to_rad(-8.0 + 3.0 * static_cast<double>(i))});
        }
        core::sampled_inventory_config cfg;
        cfg.slot_exponent = 2; // 4 slots per round
        cfg.max_rounds = 10;

        double sampled_rounds = 0.0;
        double sampled_identified = 0.0;
        double sampled_collisions = 0.0;
        double sampled_slots = 0.0;
        constexpr int trials = 4;
        for (int t = 0; t < trials; ++t) {
            const auto result = core::run_sampled_inventory(
                bench::bench_scenario(), tags, cfg, 50 + static_cast<std::uint64_t>(t));
            sampled_rounds += static_cast<double>(result.rounds);
            sampled_identified += static_cast<double>(result.identified_ids.size());
            sampled_collisions += static_cast<double>(result.collision_slots);
            sampled_slots += static_cast<double>(result.slots_used);
        }

        // The slot-level model at the same fixed frame size.
        mac::aloha_config model_cfg;
        model_cfg.initial_q = 2;
        model_cfg.min_q = 2;
        model_cfg.max_q = 2;
        const mac::aloha_inventory model(model_cfg);
        double model_collisions = 0.0;
        double model_slots = 0.0;
        for (int t = 0; t < 50; ++t) {
            const auto stats = model.run(count, 900 + static_cast<std::uint64_t>(t));
            model_collisions += static_cast<double>(stats.collision_slots);
            model_slots += static_cast<double>(stats.slots_used);
        }

        out.add_row({std::to_string(count), "4/round",
                     bench::fmt("%.1f", sampled_rounds / trials),
                     bench::fmt("%.1f", sampled_identified / trials),
                     bench::fmt("%.3f", sampled_collisions / sampled_slots),
                     bench::fmt("%.3f", model_collisions / model_slots)});
    }
    out.print();
    return 0;
}
