// System-level configuration: one struct that describes a whole mmtag
// deployment (AP, tag hardware, channel, PHY), plus named presets used by
// examples, tests, and benches.
#pragma once

#include <cstdint>

#include "mmtag/common.hpp"
#include "mmtag/antenna/van_atta.hpp"
#include "mmtag/ap/canceller.hpp"
#include "mmtag/ap/receiver.hpp"
#include "mmtag/ap/transmitter.hpp"
#include "mmtag/channel/backscatter_channel.hpp"
#include "mmtag/tag/controller.hpp"
#include "mmtag/tag/energy_model.hpp"

namespace mmtag::core {

/// Tag reflector construction (the R1/R7 ablation axis).
enum class reflector_kind {
    van_atta,   ///< retro-directive (the mmtag design)
    flat_plate, ///< same aperture, no pairing (baseline)
};

struct system_config {
    // Geometry.
    double distance_m = 2.0;
    double tag_incidence_rad = 0.0;

    // Waveform.
    double sample_rate_hz = 250e6;
    double symbol_rate_hz = 5e6;

    // AP.
    ap::ap_transmitter::config transmitter{};
    ap::ap_receiver::config receiver{};
    double ap_tx_gain_dbi = 20.0;
    double ap_rx_gain_dbi = 20.0;

    // Tag.
    reflector_kind reflector = reflector_kind::van_atta;
    antenna::van_atta_array::config van_atta{};
    tag::backscatter_modulator::config modulator{};
    tag::energy_model::config energy{};

    // Environment.
    double tx_leakage_db = -35.0;
    std::vector<channel::scatterer> clutter{};
    double rain_rate_mm_per_hr = 0.0;
    /// Unmodeled tag-path losses (pointing, polarization, processing).
    /// 25 dB calibrates the idealized budget to bench-like maximum ranges.
    double implementation_loss_db = 25.0;
    /// Rician K of tag-path block fading [dB]; >= 80 means pure LOS.
    double rician_k_db = 100.0;

    std::uint64_t seed = 1;
};

/// Baseline single-link scenario: 24 GHz ISM, 27 dBm AP, 8-element Van Atta
/// tag, QPSK R=1/2 at 5 Msym/s, a typical indoor clutter set. All rates and
/// sample rates are internally consistent.
[[nodiscard]] system_config default_scenario();

/// default_scenario on a 50 MS/s grid (10 samples/symbol): identical RF
/// parameters, ~25x faster to simulate. The configuration used by the
/// benches, the CLI tool, and the integration tests.
[[nodiscard]] system_config fast_scenario();

/// Dense-clutter aisle with a bigger (16-element) tag and the robust rate —
/// the warehouse-inventory preset.
[[nodiscard]] system_config warehouse_scenario();

/// High-rate preset for body-worn streaming: 12.5 Msym/s (4 samples/symbol
/// on the fast grid), 8-PSK R=2/3, light clutter.
[[nodiscard]] system_config wearable_scenario();

/// Derives the channel configuration implied by a system_config (evaluating
/// the tag's reflector model at the configured orientation).
[[nodiscard]] channel::backscatter_channel::config make_channel_config(const system_config& cfg);

/// Validates cross-field consistency (sample rates, symbol rates, bandwidth);
/// throws std::invalid_argument with a precise message on violation.
void validate(const system_config& cfg);

} // namespace mmtag::core
