# Empty compiler generated dependencies file for bench_r16_lo_architecture.
# This may be replaced when dependencies are built.
