#include "mmtag/fec/convolutional.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

namespace mmtag::fec {

namespace {

// K=7 (133, 171) octal generators; 64 trellis states.
constexpr unsigned constraint = 7;
constexpr unsigned state_bits = constraint - 1;
constexpr unsigned state_count = 1u << state_bits;
constexpr unsigned g0 = 0133; // 0b1'011'011
constexpr unsigned g1 = 0171; // 0b1'111'001

/// Output pair for (input bit, state). State holds the previous `state_bits`
/// inputs with the most recent in the MSB.
std::array<std::uint8_t, 2> encoder_output(unsigned input, unsigned state)
{
    const unsigned window = (input << state_bits) | state;
    const auto c0 = static_cast<std::uint8_t>(std::popcount(window & g0) & 1);
    const auto c1 = static_cast<std::uint8_t>(std::popcount(window & g1) & 1);
    return {c0, c1};
}

unsigned next_state(unsigned input, unsigned state)
{
    return ((input << state_bits) | state) >> 1;
}

/// Kept positions within a puncturing period of the flattened c0/c1 stream.
bool is_kept(code_rate rate, std::size_t flat_index)
{
    switch (rate) {
    case code_rate::half:
        return true;
    case code_rate::two_thirds:
        return flat_index % 4 != 3;
    case code_rate::three_quarters: {
        const std::size_t m = flat_index % 6;
        return m == 0 || m == 1 || m == 2 || m == 5;
    }
    }
    throw std::invalid_argument("convolutional: unknown code rate");
}

std::size_t punctured_length(code_rate rate, std::size_t flat_length)
{
    std::size_t kept = 0;
    for (std::size_t i = 0; i < flat_length; ++i) {
        if (is_kept(rate, i)) ++kept;
    }
    return kept;
}

/// Core Viterbi over depunctured soft pairs. Sign convention: soft > 0 means
/// bit 0, soft < 0 means bit 1, soft == 0 means erasure.
std::vector<std::uint8_t> viterbi_core(std::span<const double> soft_pairs)
{
    if (soft_pairs.size() % 2 != 0) {
        throw std::invalid_argument("viterbi: coded stream must contain bit pairs");
    }
    const std::size_t steps = soft_pairs.size() / 2;
    if (steps < state_bits) {
        throw std::invalid_argument("viterbi: stream shorter than the trellis tail");
    }

    constexpr double negative_infinity = -std::numeric_limits<double>::infinity();
    std::vector<double> metric(state_count, negative_infinity);
    metric[0] = 0.0;
    std::vector<double> next_metric(state_count);
    // survivors[t][state] = input bit that led into `state` at step t plus the
    // predecessor encoded in one byte (bit0 = input, bits 1..6 = predecessor).
    std::vector<std::vector<std::uint8_t>> survivors(steps,
                                                     std::vector<std::uint8_t>(state_count, 0));

    for (std::size_t t = 0; t < steps; ++t) {
        std::fill(next_metric.begin(), next_metric.end(), negative_infinity);
        const double soft0 = soft_pairs[2 * t];
        const double soft1 = soft_pairs[2 * t + 1];
        for (unsigned state = 0; state < state_count; ++state) {
            if (metric[state] == negative_infinity) continue;
            for (unsigned input = 0; input <= 1; ++input) {
                const auto expected = encoder_output(input, state);
                // Correlation metric: +|soft| when the hypothesis matches the
                // observed sign, -|soft| otherwise, 0 for erasures.
                const double branch = (expected[0] ? -soft0 : soft0) +
                                      (expected[1] ? -soft1 : soft1);
                const unsigned to = next_state(input, state);
                const double candidate = metric[state] + branch;
                if (candidate > next_metric[to]) {
                    next_metric[to] = candidate;
                    survivors[t][to] =
                        static_cast<std::uint8_t>((state << 1) | input);
                }
            }
        }
        metric.swap(next_metric);
    }

    // The encoder appends zeros, so the terminated trellis ends in state 0.
    unsigned state = 0;
    std::vector<std::uint8_t> decoded(steps);
    for (std::size_t t = steps; t-- > 0;) {
        const std::uint8_t record = survivors[t][state];
        decoded[t] = record & 1u;
        state = record >> 1;
    }
    decoded.resize(steps - state_bits); // strip the termination tail
    return decoded;
}

std::vector<double> depuncture(std::span<const double> soft_bits, code_rate rate,
                               std::size_t flat_length)
{
    std::vector<double> full(flat_length, 0.0);
    std::size_t consumed = 0;
    for (std::size_t i = 0; i < flat_length; ++i) {
        if (!is_kept(rate, i)) continue;
        if (consumed >= soft_bits.size()) {
            throw std::invalid_argument("viterbi: punctured stream shorter than expected");
        }
        full[i] = soft_bits[consumed++];
    }
    if (consumed != soft_bits.size()) {
        throw std::invalid_argument("viterbi: punctured stream length does not match rate");
    }
    return full;
}

/// Finds the flat (unpunctured) length whose punctured size equals the input.
std::size_t infer_flat_length(code_rate rate, std::size_t punctured)
{
    // Flat length is always even (bit pairs); scan candidate lengths.
    for (std::size_t flat = 0; flat <= punctured * 2 + 8; flat += 2) {
        if (punctured_length(rate, flat) == punctured) return flat;
    }
    throw std::invalid_argument("viterbi: input length inconsistent with code rate");
}

} // namespace

double rate_fraction(code_rate rate)
{
    switch (rate) {
    case code_rate::half: return 0.5;
    case code_rate::two_thirds: return 2.0 / 3.0;
    case code_rate::three_quarters: return 0.75;
    }
    throw std::invalid_argument("rate_fraction: unknown code rate");
}

std::vector<std::uint8_t> convolutional_encode(std::span<const std::uint8_t> bits, code_rate rate)
{
    std::vector<std::uint8_t> flat;
    flat.reserve(2 * (bits.size() + state_bits));
    unsigned state = 0;
    auto push = [&](unsigned input) {
        const auto out = encoder_output(input, state);
        flat.push_back(out[0]);
        flat.push_back(out[1]);
        state = next_state(input, state);
    };
    for (std::uint8_t bit : bits) push(bit & 1u);
    for (unsigned i = 0; i < state_bits; ++i) push(0); // terminate the trellis
    std::vector<std::uint8_t> out;
    out.reserve(punctured_length(rate, flat.size()));
    for (std::size_t i = 0; i < flat.size(); ++i) {
        if (is_kept(rate, i)) out.push_back(flat[i]);
    }
    return out;
}

std::vector<std::uint8_t> viterbi_decode(std::span<const std::uint8_t> coded_bits, code_rate rate)
{
    std::vector<double> soft;
    soft.reserve(coded_bits.size());
    for (std::uint8_t bit : coded_bits) soft.push_back((bit & 1u) ? -1.0 : 1.0);
    return viterbi_decode_soft(soft, rate);
}

std::vector<std::uint8_t> viterbi_decode_soft(std::span<const double> soft_bits, code_rate rate)
{
    const std::size_t flat_length = infer_flat_length(rate, soft_bits.size());
    const std::vector<double> full = depuncture(soft_bits, rate, flat_length);
    return viterbi_core(full);
}

std::size_t coded_length(std::size_t info_bits, code_rate rate)
{
    return punctured_length(rate, 2 * (info_bits + state_bits));
}

} // namespace mmtag::fec
