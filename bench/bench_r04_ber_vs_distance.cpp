// R4 — BER vs distance per data rate.
// Three operating points spanning the paper's rate range: 2.5 Mb/s robust
// (QPSK R=1/2 at 2.5 Msym/s), 10 Mb/s (QPSK uncoded), and 20 Mb/s (16-PSK
// uncoded at the same symbol rate). Expected shape: higher rates hit the BER
// wall at shorter distances; the robust rate survives to paper-class ranges.
#include "bench_util.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/metrics.hpp"

using namespace mmtag;

namespace {

struct rate_point {
    const char* label;
    phy::modulation scheme;
    phy::fec_mode fec;
};

} // namespace

int main(int argc, char** argv)
{
    const bool csv = bench::csv_mode(argc, argv);
    bench::banner("R4", "BER vs distance for three uplink data rates", csv);

    const rate_point rates[] = {
        {"2.5Mbps QPSK-1/2", phy::modulation::qpsk, phy::fec_mode::conv_half},
        {"10Mbps QPSK", phy::modulation::qpsk, phy::fec_mode::uncoded},
        {"20Mbps 16PSK", phy::modulation::psk16, phy::fec_mode::uncoded},
    };

    bench::table out({"distance_m", "rate", "snr_dB", "ber", "per"}, csv);
    for (double distance : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
        for (const auto& rate : rates) {
            auto cfg = bench::bench_scenario();
            cfg.distance_m = distance;
            cfg.modulator.frame.scheme = rate.scheme;
            cfg.modulator.frame.fec = rate.fec;
            cfg.receiver.frame = cfg.modulator.frame;
            core::link_simulator sim(cfg);
            const auto report = sim.run_trials(10, 48);
            out.add_row({bench::fmt("%.0f", distance), rate.label,
                         bench::fmt("%.1f", report.mean_snr_db),
                         core::format_ber(report.ber, 10 * 48 * 8),
                         bench::fmt("%.2f", report.per)});
        }
    }
    out.print();
    return 0;
}
