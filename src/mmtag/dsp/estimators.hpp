// Signal-quality estimators: power, SNR, EVM, and related statistics.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Mean power (second moment) of a complex buffer.
[[nodiscard]] double mean_power(std::span<const cf64> samples);

/// RMS amplitude.
[[nodiscard]] double rms(std::span<const cf64> samples);

/// Peak-to-average power ratio in dB.
[[nodiscard]] double papr_db(std::span<const cf64> samples);

/// Error vector magnitude (RMS, as a fraction of reference RMS) between
/// received symbols and their references.
[[nodiscard]] double evm_rms(std::span<const cf64> received, std::span<const cf64> reference);

/// EVM expressed in dB: 20 log10(evm_rms).
[[nodiscard]] double evm_db(std::span<const cf64> received, std::span<const cf64> reference);

/// Data-aided SNR estimate from matched received/reference symbol pairs:
/// projects out the complex gain, then compares signal to residual power.
[[nodiscard]] double snr_estimate_db(std::span<const cf64> received,
                                     std::span<const cf64> reference);

/// Blind M2M4 moments-based SNR estimator for constant-modulus signals.
[[nodiscard]] double snr_m2m4_db(std::span<const cf64> samples);

/// Running mean/variance accumulator (Welford).
class running_stats {
public:
    void add(double value);
    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;
    [[nodiscard]] double standard_deviation() const;
    [[nodiscard]] double minimum() const;
    [[nodiscard]] double maximum() const;
    void reset();

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation, p in [0, 100]).
[[nodiscard]] double percentile(std::span<const double> values, double p);

} // namespace mmtag::dsp
