#include "mmtag/fec/scrambler.hpp"

#include <stdexcept>

namespace mmtag::fec {

scrambler::scrambler(std::uint8_t seed) : seed_(seed), state_(seed)
{
    if ((seed & 0x7F) == 0) throw std::invalid_argument("scrambler: seed must be nonzero mod 2^7");
    state_ &= 0x7F;
    seed_ &= 0x7F;
}

std::vector<std::uint8_t> scrambler::process(std::span<const std::uint8_t> bits)
{
    std::vector<std::uint8_t> out;
    out.reserve(bits.size());
    for (std::uint8_t bit : bits) {
        // Feedback taps x^7 and x^4 of the 7-bit register.
        const std::uint8_t feedback =
            static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
        state_ = static_cast<std::uint8_t>(((state_ << 1) | feedback) & 0x7F);
        out.push_back(static_cast<std::uint8_t>((bit ^ feedback) & 1u));
    }
    return out;
}

void scrambler::reset()
{
    state_ = seed_;
}

std::vector<std::uint8_t> scramble_bytes(std::span<const std::uint8_t> bytes, std::uint8_t seed)
{
    scrambler whitener(seed);
    std::vector<std::uint8_t> bits;
    bits.reserve(bytes.size() * 8);
    for (std::uint8_t byte : bytes) {
        for (int bit = 7; bit >= 0; --bit) {
            bits.push_back(static_cast<std::uint8_t>((byte >> bit) & 1u));
        }
    }
    const std::vector<std::uint8_t> whitened = whitener.process(bits);
    std::vector<std::uint8_t> out(bytes.size(), 0);
    for (std::size_t i = 0; i < whitened.size(); ++i) {
        out[i / 8] = static_cast<std::uint8_t>((out[i / 8] << 1) | whitened[i]);
    }
    return out;
}

} // namespace mmtag::fec
