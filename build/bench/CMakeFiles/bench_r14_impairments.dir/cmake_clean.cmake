file(REMOVE_RECURSE
  "CMakeFiles/bench_r14_impairments.dir/bench_r14_impairments.cpp.o"
  "CMakeFiles/bench_r14_impairments.dir/bench_r14_impairments.cpp.o.d"
  "bench_r14_impairments"
  "bench_r14_impairments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r14_impairments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
