// Antenna element radiation patterns. All gains are linear power gains; all
// angles are azimuth radians measured from broadside (the array normal).
#pragma once

#include <functional>
#include <memory>

#include "mmtag/common.hpp"

namespace mmtag::antenna {

/// Abstract radiating element.
class element {
public:
    virtual ~element() = default;

    /// Power gain toward `theta_rad` off broadside.
    [[nodiscard]] virtual double gain(double theta_rad) const = 0;

    /// Peak (boresight) power gain.
    [[nodiscard]] virtual double peak_gain() const = 0;
};

/// Ideal isotropic radiator (0 dBi).
class isotropic_element final : public element {
public:
    [[nodiscard]] double gain(double) const override { return 1.0; }
    [[nodiscard]] double peak_gain() const override { return 1.0; }
};

/// Microstrip patch approximated by the cos^q model. q ~= 1.3 and peak
/// 6.5 dBi match a typical mmWave patch on thin substrate.
class patch_element final : public element {
public:
    explicit patch_element(double peak_gain_dbi = 6.5, double exponent = 1.3);

    [[nodiscard]] double gain(double theta_rad) const override;
    [[nodiscard]] double peak_gain() const override { return peak_linear_; }

    /// Half-power beamwidth implied by the cos^q model [rad].
    [[nodiscard]] double half_power_beamwidth() const;

private:
    double peak_linear_;
    double exponent_;
};

/// Pyramidal horn approximated by a Gaussian main lobe of the given gain;
/// beamwidth follows from the gain via G ~= 4 pi / (theta_az * theta_el).
class horn_element final : public element {
public:
    explicit horn_element(double gain_dbi = 20.0);

    [[nodiscard]] double gain(double theta_rad) const override;
    [[nodiscard]] double peak_gain() const override { return peak_linear_; }
    [[nodiscard]] double half_power_beamwidth() const { return beamwidth_rad_; }

private:
    double peak_linear_;
    double beamwidth_rad_;
};

} // namespace mmtag::antenna
