// Warehouse inventory: an AP discovers and reads a population of tags.
//
// Fifty battery-free tags are scattered across a 1.5-8 m aisle at random
// orientations. The AP inventories them with framed slotted ALOHA, then
// polls each one for a 64-byte sensor record over TDMA. Demonstrates the
// MAC stack and per-tag rate adaptation over a heterogeneous population.
//
//   $ ./warehouse_inventory [tag_count]
#include <cstdio>
#include <cstdlib>
#include <random>

#include "mmtag/core/network.hpp"

int main(int argc, char** argv)
{
    using namespace mmtag;

    std::size_t tag_count = 50;
    if (argc > 1) tag_count = static_cast<std::size_t>(std::atoi(argv[1]));
    if (tag_count == 0 || tag_count > 5000) {
        std::fprintf(stderr, "usage: %s [tag_count in 1..5000]\n", argv[0]);
        return 1;
    }

    // Scatter tags through the aisle (deterministic so runs are comparable).
    std::mt19937_64 rng(2024);
    std::uniform_real_distribution<double> range_dist(1.5, 8.0);
    std::uniform_real_distribution<double> angle_dist(-35.0, 35.0);
    std::vector<core::tag_descriptor> tags;
    tags.reserve(tag_count);
    for (std::uint32_t i = 0; i < tag_count; ++i) {
        tags.push_back({i, range_dist(rng), deg_to_rad(angle_dist(rng))});
    }

    // The warehouse preset: 16-element tags against dense racking clutter.
    const core::network net(core::warehouse_scenario(), tags);
    const auto report = net.run(7, 64);

    std::printf("warehouse inventory, %zu tags:\n", tag_count);
    std::printf("  discovery: %zu/%zu identified in %zu slots over %zu rounds "
                "(%.0f%% slot efficiency)\n",
                report.inventory.tags_identified, report.inventory.tags_total,
                report.inventory.slots_used, report.inventory.rounds,
                100.0 * report.inventory.efficiency());
    std::printf("  SNR across the population: %.1f .. %.1f dB\n", report.min_snr_db,
                report.max_snr_db);
    std::printf("  TDMA cycle: %.2f ms, aggregate goodput %.2f Mb/s\n",
                report.tdma.cycle_time_s * 1e3, report.aggregate_goodput_bps / 1e6);

    // Show the five best and five worst links.
    auto links = report.links;
    std::sort(links.begin(), links.end(),
              [](const auto& a, const auto& b) { return a.snr_db > b.snr_db; });
    std::printf("\n  %-6s %-10s %-9s %-16s %-10s %s\n", "tag", "range_m", "angle_deg",
                "rate", "snr_dB", "delivery");
    auto show = [](const core::tag_link_state& link) {
        std::printf("  %-6u %-10.2f %-9.1f %-7s/%-8s %-10.1f %.3f\n", link.tag.id,
                    link.tag.distance_m, rad_to_deg(link.tag.incidence_rad),
                    phy::modulation_name(link.rate.scheme).c_str(),
                    phy::fec_mode_name(link.rate.fec), link.snr_db, link.frame_success);
    };
    const std::size_t show_count = std::min<std::size_t>(5, links.size());
    for (std::size_t i = 0; i < show_count; ++i) show(links[i]);
    if (links.size() > 2 * show_count) std::printf("  ...\n");
    for (std::size_t i = links.size() - std::min(show_count, links.size());
         i < links.size(); ++i) {
        show(links[i]);
    }
    return report.inventory.complete() ? 0 : 2;
}
