#include "mmtag/dsp/fir.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::dsp {

namespace {

void check_design_args(double cutoff_norm, std::size_t taps)
{
    if (!(cutoff_norm > 0.0 && cutoff_norm < 0.5)) {
        throw std::invalid_argument("fir design: cutoff must be in (0, 0.5)");
    }
    if (taps < 3 || taps % 2 == 0) {
        throw std::invalid_argument("fir design: taps must be odd and >= 3");
    }
}

double sinc(double x)
{
    if (std::abs(x) < 1e-12) return 1.0;
    return std::sin(pi * x) / (pi * x);
}

} // namespace

rvec design_lowpass(double cutoff_norm, std::size_t taps, window_kind window)
{
    check_design_args(cutoff_norm, taps);
    const rvec w = make_window(window, taps);
    rvec h(taps);
    const double middle = static_cast<double>(taps - 1) / 2.0;
    double sum = 0.0;
    for (std::size_t n = 0; n < taps; ++n) {
        const double t = static_cast<double>(n) - middle;
        h[n] = 2.0 * cutoff_norm * sinc(2.0 * cutoff_norm * t) * w[n];
        sum += h[n];
    }
    // Normalize to unity gain at DC.
    for (auto& tap : h) tap /= sum;
    return h;
}

rvec design_highpass(double cutoff_norm, std::size_t taps, window_kind window)
{
    rvec h = design_lowpass(cutoff_norm, taps, window);
    // Spectral inversion: delta at the center minus the low-pass response.
    for (auto& tap : h) tap = -tap;
    h[(taps - 1) / 2] += 1.0;
    return h;
}

rvec design_bandpass(double low_norm, double high_norm, std::size_t taps, window_kind window)
{
    if (!(low_norm < high_norm)) {
        throw std::invalid_argument("design_bandpass: low cutoff must be below high cutoff");
    }
    check_design_args(low_norm, taps);
    check_design_args(high_norm, taps);
    const rvec lp_high = design_lowpass(high_norm, taps, window);
    const rvec lp_low = design_lowpass(low_norm, taps, window);
    rvec h(taps);
    for (std::size_t n = 0; n < taps; ++n) h[n] = lp_high[n] - lp_low[n];
    return h;
}

fir_filter::fir_filter(rvec taps) : taps_(std::move(taps))
{
    if (taps_.empty()) throw std::invalid_argument("fir_filter: empty taps");
    delay_line_.assign(taps_.size(), cf64{});
}

cf64 fir_filter::process(cf64 input)
{
    delay_line_[head_] = input;
    cf64 acc{};
    std::size_t index = head_;
    for (double tap : taps_) {
        acc += tap * delay_line_[index];
        index = (index == 0) ? delay_line_.size() - 1 : index - 1;
    }
    head_ = (head_ + 1) % delay_line_.size();
    return acc;
}

cvec fir_filter::process(std::span<const cf64> input)
{
    cvec out;
    out.reserve(input.size());
    for (cf64 x : input) out.push_back(process(x));
    return out;
}

void fir_filter::reset()
{
    std::fill(delay_line_.begin(), delay_line_.end(), cf64{});
    head_ = 0;
}

double fir_filter::group_delay() const
{
    return static_cast<double>(taps_.size() - 1) / 2.0;
}

cvec fir_apply(std::span<const double> taps, std::span<const cf64> input)
{
    fir_filter filter{rvec(taps.begin(), taps.end())};
    return filter.process(input);
}

} // namespace mmtag::dsp
