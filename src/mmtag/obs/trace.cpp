#include "mmtag/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>

namespace mmtag::obs {

namespace {

struct thread_buffer {
    std::vector<trace_event> ring;
    std::size_t capacity = 0;
    std::size_t head = 0; ///< overwrite cursor once the ring is full
    std::uint64_t session = 0;
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;
};

struct tracer_state {
    std::mutex mutex;
    bool running = false;
    std::uint64_t session = 0;
    std::size_t capacity = 1 << 16;
    std::chrono::steady_clock::time_point epoch{};
    std::vector<trace_event> drained;
    std::uint64_t dropped = 0;
    std::uint32_t next_tid = 0;
};

tracer_state& state()
{
    static tracer_state s;
    return s;
}

std::atomic<bool> g_active{false};

thread_local thread_buffer t_buffer;

/// Appends to the calling thread's ring, binding it to the session first.
void append(trace_event event)
{
    auto& s = state();
    if (t_buffer.session != s.session || t_buffer.capacity == 0) {
        const std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.running) return; // raced with stop()
        t_buffer.session = s.session;
        t_buffer.tid = s.next_tid++;
        t_buffer.capacity = s.capacity;
        t_buffer.ring.clear();
        t_buffer.head = 0;
        t_buffer.dropped = 0;
    }
    event.tid = t_buffer.tid;
    if (t_buffer.ring.size() < t_buffer.capacity) {
        t_buffer.ring.push_back(std::move(event));
    } else {
        t_buffer.ring[t_buffer.head] = std::move(event);
        t_buffer.head = (t_buffer.head + 1) % t_buffer.capacity;
        ++t_buffer.dropped;
    }
}

void escape_into(std::string& out, const std::string& text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void tracer::start(std::size_t events_per_thread)
{
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    ++s.session;
    s.running = true;
    s.capacity = events_per_thread == 0 ? 1 : events_per_thread;
    s.epoch = std::chrono::steady_clock::now();
    s.drained.clear();
    s.dropped = 0;
    s.next_tid = 0;
    g_active.store(true, std::memory_order_release);
}

void tracer::stop()
{
    flush_current_thread();
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.running = false;
    g_active.store(false, std::memory_order_release);
}

bool tracer::active()
{
    return g_active.load(std::memory_order_acquire);
}

void tracer::flush_current_thread()
{
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    if (t_buffer.session != s.session || t_buffer.ring.empty()) return;
    // Ring order: once full, the oldest surviving event sits at `head`.
    const bool wrapped = t_buffer.ring.size() == t_buffer.capacity && t_buffer.head != 0;
    if (wrapped) {
        for (std::size_t i = t_buffer.head; i < t_buffer.ring.size(); ++i) {
            s.drained.push_back(std::move(t_buffer.ring[i]));
        }
        for (std::size_t i = 0; i < t_buffer.head; ++i) {
            s.drained.push_back(std::move(t_buffer.ring[i]));
        }
    } else {
        for (auto& event : t_buffer.ring) s.drained.push_back(std::move(event));
    }
    s.dropped += t_buffer.dropped;
    t_buffer.ring.clear();
    t_buffer.head = 0;
    t_buffer.dropped = 0;
}

double tracer::now_us()
{
    if (!active()) return 0.0;
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     state().epoch)
        .count();
}

std::vector<trace_event> tracer::events()
{
    auto& s = state();
    std::vector<trace_event> out;
    {
        const std::lock_guard<std::mutex> lock(s.mutex);
        out = s.drained;
    }
    std::sort(out.begin(), out.end(), [](const trace_event& a, const trace_event& b) {
        if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
        if (a.tid != b.tid) return a.tid < b.tid;
        return a.name < b.name;
    });
    return out;
}

std::map<std::string, std::uint64_t> tracer::event_counts()
{
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    std::map<std::string, std::uint64_t> counts;
    for (const auto& event : s.drained) ++counts[event.name];
    return counts;
}

std::uint64_t tracer::dropped()
{
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    return s.dropped;
}

std::string tracer::to_json()
{
    const auto sorted = events();
    std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
    bool first = true;
    char buffer[64];
    for (const auto& event : sorted) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "{\"name\": ";
        escape_into(out, event.name);
        out += ", \"cat\": ";
        escape_into(out, event.category);
        out += ", \"ph\": \"";
        out += event.phase;
        out += "\", \"ts\": ";
        std::snprintf(buffer, sizeof buffer, "%.3f", event.ts_us);
        out += buffer;
        if (event.phase == 'X') {
            std::snprintf(buffer, sizeof buffer, ", \"dur\": %.3f", event.dur_us);
            out += buffer;
        }
        std::snprintf(buffer, sizeof buffer, ", \"pid\": 1, \"tid\": %u", event.tid);
        out += buffer;
        if (!event.args.empty()) {
            out += ", \"args\": ";
            out += event.args; // pre-rendered JSON object
        }
        out += '}';
    }
    out += "\n]}\n";
    return out;
}

bool tracer::write(const std::string& path)
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return false;
    }
    out << to_json();
    return static_cast<bool>(out);
}

void trace_emit(const char* name, const char* category, char phase, double ts_us,
                double dur_us, std::string args)
{
    if (!tracer::active()) return;
    trace_event event;
    event.name = name;
    event.category = category;
    event.phase = phase;
    event.ts_us = ts_us >= 0.0 ? ts_us : tracer::now_us();
    event.dur_us = dur_us;
    event.args = std::move(args);
    append(std::move(event));
}

void trace_instant(const char* name, const char* category, std::string args)
{
    trace_emit(name, category, 'i', -1.0, 0.0, std::move(args));
}

trace_span::trace_span(const char* name, const char* category, std::string args)
    : name_(name), category_(category), args_(std::move(args))
{
    if (tracer::active()) start_us_ = tracer::now_us();
}

trace_span::~trace_span()
{
    if (start_us_ < 0.0 || !tracer::active()) return;
    trace_emit(name_, category_, 'X', start_us_, tracer::now_us() - start_us_,
               std::move(args_));
}

} // namespace mmtag::obs
