#include <gtest/gtest.h>

#include <random>

#include "mmtag/ap/query_encoder.hpp"
#include "mmtag/fec/crc.hpp"
#include "mmtag/rf/envelope_detector.hpp"
#include "mmtag/tag/command_decoder.hpp"

namespace mmtag {
namespace {

ap::query_encoder::config encoder_config()
{
    ap::query_encoder::config cfg;
    cfg.sample_rate_hz = 50e6;
    cfg.unit_s = 2e-6;
    cfg.low_level = 0.1;
    return cfg;
}

tag::command_decoder::config decoder_config()
{
    tag::command_decoder::config cfg;
    cfg.sample_rate_hz = 50e6;
    cfg.unit_s = 2e-6;
    return cfg;
}

TEST(command_bits, round_trip_all_kinds)
{
    for (auto kind : {ap::tag_command::kind::query_all, ap::tag_command::kind::select,
                      ap::tag_command::kind::read, ap::tag_command::kind::sleep}) {
        ap::tag_command cmd;
        cmd.command = kind;
        cmd.tag_id = 0xBEEF;
        cmd.parameter = 0x2A;
        const auto bits = ap::command_bits(cmd);
        ASSERT_EQ(bits.size(), 40u);
        const auto parsed = ap::parse_command_bits(bits);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->command, kind);
        EXPECT_EQ(parsed->tag_id, 0xBEEF);
        EXPECT_EQ(parsed->parameter, 0x2A);
    }
}

TEST(command_bits, crc_rejects_corruption)
{
    ap::tag_command cmd;
    cmd.tag_id = 77;
    auto bits = ap::command_bits(cmd);
    for (std::size_t i = 0; i < bits.size(); i += 7) {
        auto corrupted = bits;
        corrupted[i] ^= 1;
        EXPECT_FALSE(ap::parse_command_bits(corrupted).has_value()) << "bit " << i;
    }
}

TEST(command_bits, unknown_kind_rejected)
{
    // Craft bytes with a bogus command id but a valid CRC.
    std::vector<std::uint8_t> bytes{0xFF, 0, 1, 0};
    bytes.push_back(fec::crc8(bytes));
    std::vector<std::uint8_t> raw;
    for (auto b : bytes) {
        for (int k = 7; k >= 0; --k) raw.push_back(static_cast<std::uint8_t>((b >> k) & 1));
    }
    EXPECT_FALSE(ap::parse_command_bits(raw).has_value());
}

TEST(command_channel, clean_envelope_decodes)
{
    const ap::query_encoder encoder(encoder_config());
    const tag::command_decoder decoder(decoder_config());
    ap::tag_command cmd;
    cmd.command = ap::tag_command::kind::select;
    cmd.tag_id = 1234;
    cmd.parameter = 5;

    const rvec envelope = encoder.encode(cmd);
    const std::vector<double> as_voltage(envelope.begin(), envelope.end());
    const auto decoded = decoder.decode(as_voltage);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->command.command, ap::tag_command::kind::select);
    EXPECT_EQ(decoded->command.tag_id, 1234);
    EXPECT_EQ(decoded->command.parameter, 5);
}

TEST(command_channel, decodes_through_envelope_detector)
{
    // Full tag-side path: RF amplitude modulation -> square-law detector ->
    // PIE decoder, with detector noise.
    const ap::query_encoder encoder(encoder_config());
    ap::tag_command cmd;
    cmd.command = ap::tag_command::kind::read;
    cmd.tag_id = 42;
    cmd.parameter = 9;
    const rvec envelope = encoder.encode(cmd);

    // Incident RF at the tag: -20 dBm carrier scaled by the envelope.
    const double amplitude = std::sqrt(1e-5);
    cvec rf(envelope.size());
    for (std::size_t i = 0; i < rf.size(); ++i) rf[i] = {amplitude * envelope[i], 0.0};

    rf::envelope_detector::config det_cfg;
    det_cfg.sample_rate_hz = 50e6;
    det_cfg.video_bandwidth_hz = 5e6;
    det_cfg.responsivity_v_per_w = 2000.0;
    det_cfg.noise_equivalent_power_w = 5e-9;
    rf::envelope_detector detector(det_cfg, 3);
    const rvec voltage = detector.detect(rf);

    const tag::command_decoder decoder(decoder_config());
    const auto decoded = decoder.decode(voltage);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->command.command, ap::tag_command::kind::read);
    EXPECT_EQ(decoded->command.tag_id, 42);
    EXPECT_EQ(decoded->command.parameter, 9);
}

TEST(command_channel, silence_and_noise_decode_nothing)
{
    const tag::command_decoder decoder(decoder_config());
    EXPECT_FALSE(decoder.decode(std::vector<double>(5000, 0.7)).has_value());

    std::mt19937_64 rng(9);
    std::normal_distribution<double> g(0.5, 0.1);
    std::vector<double> noise(20000);
    for (auto& v : noise) v = g(rng);
    EXPECT_FALSE(decoder.decode(noise).has_value());
}

TEST(command_channel, finds_command_after_idle_carrier)
{
    const ap::query_encoder encoder(encoder_config());
    ap::tag_command cmd;
    cmd.tag_id = 7;
    const rvec envelope = encoder.encode(cmd);
    std::vector<double> stream(30000, 1.0); // long idle carrier first
    stream.insert(stream.end(), envelope.begin(), envelope.end());
    const tag::command_decoder decoder(decoder_config());
    const auto decoded = decoder.decode(stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->command.tag_id, 7);
}

TEST(command_channel, slicer_reports_runs)
{
    const tag::command_decoder decoder(decoder_config());
    std::vector<double> envelope(100, 1.0);
    envelope.insert(envelope.end(), 200, 0.1);
    envelope.insert(envelope.end(), 50, 1.0);
    const auto runs = decoder.slice(envelope);
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_TRUE(runs[0].high);
    EXPECT_EQ(runs[1].samples, 200u);
    EXPECT_FALSE(runs[1].high);
}

TEST(command_channel, duration_scales_with_ones)
{
    const ap::query_encoder encoder(encoder_config());
    ap::tag_command zeros;
    zeros.command = ap::tag_command::kind::query_all; // 0x01: one set bit
    zeros.tag_id = 0;
    zeros.parameter = 0;
    ap::tag_command ones = zeros;
    ones.tag_id = 0xFFFF;
    // PIE data-1 is one unit longer than data-0.
    EXPECT_GT(encoder.command_duration_s(ones), encoder.command_duration_s(zeros));
}

TEST(command_channel, validation)
{
    auto bad = encoder_config();
    bad.low_level = 0.9;
    EXPECT_THROW(ap::query_encoder{bad}, std::invalid_argument);

    auto decoder_bad = decoder_config();
    decoder_bad.threshold_fraction = 0.0;
    EXPECT_THROW(tag::command_decoder{decoder_bad}, std::invalid_argument);
}

} // namespace
} // namespace mmtag
