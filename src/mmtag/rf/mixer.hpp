// Quadrature mixer model: ideal complex multiply plus the practical
// impairments that matter at mmWave — conversion loss, LO leakage (the DC
// offset the canceller must handle), and I/Q gain & phase imbalance.
#pragma once

#include <span>

#include "mmtag/common.hpp"

namespace mmtag::rf {

class quadrature_mixer {
public:
    struct config {
        double conversion_loss_db = 7.0;  ///< typical passive mmWave mixer
        double lo_leakage_dbc = -60.0;    ///< LO-to-IF leakage vs LO drive
        double iq_gain_imbalance_db = 0.0;
        double iq_phase_imbalance_deg = 0.0;
    };

    explicit quadrature_mixer(const config& cfg);

    /// Downconverts: output = rf * conj(lo) with impairments applied.
    [[nodiscard]] cf64 downconvert(cf64 rf, cf64 lo) const;

    /// Upconverts: output = baseband * lo with impairments applied.
    [[nodiscard]] cf64 upconvert(cf64 baseband, cf64 lo) const;

    [[nodiscard]] cvec downconvert(std::span<const cf64> rf, std::span<const cf64> lo) const;
    [[nodiscard]] cvec upconvert(std::span<const cf64> baseband, std::span<const cf64> lo) const;

    /// Image-rejection ratio implied by the configured I/Q imbalance [dB];
    /// infinite (1e9) for a perfectly balanced mixer.
    [[nodiscard]] double image_rejection_ratio_db() const;

private:
    [[nodiscard]] cf64 apply_iq_imbalance(cf64 x) const;

    config cfg_;
    double loss_gain_;
    double leakage_amplitude_;
    double gain_alpha_; // I/Q imbalance parameters
    double phase_beta_;
};

} // namespace mmtag::rf
