// Event tracing in Chrome trace_event JSON format (chrome://tracing,
// https://ui.perfetto.dev). One session at a time, process-wide:
//
//   tracer::start();
//   ... simulation emits trace_instant()/trace_span()/trace_emit() ...
//   tracer::stop();              // drains, session data stays readable
//   tracer::write("trace.json");
//
// Emission is lock-free on the hot path: each thread appends to its own
// thread-local ring buffer (oldest events overwritten past capacity), and
// the runtime thread pool drains the buffer of every worker at batch end
// (flush_current_thread). When no session is active an emit is one relaxed
// atomic load.
//
// Trace JSON carries wall-clock timestamps and is therefore not
// --jobs-invariant, but event *counts* per name are — the determinism
// regression compares event_counts() across job counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mmtag::obs {

struct trace_event {
    std::string name;
    std::string category;
    char phase = 'i';   ///< 'X' complete, 'i' instant, 'C' counter
    double ts_us = 0.0; ///< microseconds since session start
    double dur_us = 0.0;
    std::uint32_t tid = 0; ///< session-scoped thread id (assigned on first emit)
    std::string args;      ///< pre-rendered JSON object, or empty
};

class tracer {
public:
    /// Starts a session; clears data from the previous one. Per-thread ring
    /// capacity bounds memory (oldest events are dropped past it).
    static void start(std::size_t events_per_thread = 1 << 16);

    /// Drains the calling thread and seals the session. Buffers of threads
    /// that never flushed after their last emission are lost — the runtime
    /// pool flushes every worker at batch end, so in practice stop() after a
    /// sweep sees everything.
    static void stop();

    [[nodiscard]] static bool active();

    /// Moves the calling thread's buffered events into the session sink.
    /// No-op when the buffer is empty or belongs to an older session.
    static void flush_current_thread();

    /// Microseconds since the session epoch (0 when inactive).
    [[nodiscard]] static double now_us();

    /// Drained events of the current/last session, sorted by timestamp.
    [[nodiscard]] static std::vector<trace_event> events();

    /// Event count per name — the scheduling-independent trace digest.
    [[nodiscard]] static std::map<std::string, std::uint64_t> event_counts();

    /// Events dropped to ring overflow in the current/last session.
    [[nodiscard]] static std::uint64_t dropped();

    /// {"traceEvents": [...], ...} document.
    [[nodiscard]] static std::string to_json();

    /// Writes to_json() to `path`; false when the filesystem refused.
    static bool write(const std::string& path);
};

/// Appends one event (ts/tid filled by the tracer unless phase is 'X' with
/// an explicit ts_us). No-op when no session is active.
void trace_emit(const char* name, const char* category, char phase, double ts_us,
                double dur_us, std::string args = {});

/// Zero-duration marker at the current time.
void trace_instant(const char* name, const char* category, std::string args = {});

/// RAII duration event: records a complete ('X') event covering the scope.
class trace_span {
public:
    trace_span(const char* name, const char* category, std::string args = {});
    ~trace_span();

    trace_span(const trace_span&) = delete;
    trace_span& operator=(const trace_span&) = delete;

private:
    const char* name_;
    const char* category_;
    std::string args_;
    double start_us_ = -1.0; ///< < 0 when the tracer was inactive at entry
};

} // namespace mmtag::obs
