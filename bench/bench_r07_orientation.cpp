// R7 — Orientation robustness: Van Atta vs single-aperture baseline.
// The tag rotates relative to the AP; the retro-reflective array keeps the
// link alive across the element pattern's field of view while the un-paired
// aperture (specular plate) dies within a few degrees of broadside. This is
// the design-justifying ablation for the passive retro-reflector.
#include "bench_util.hpp"
#include "mmtag/core/link_simulator.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R7", "link vs tag rotation: Van Atta vs flat plate", csv);

    bench::table out({"rotation_deg", "van_atta_snr_dB", "van_atta_per", "plate_snr_dB",
                      "plate_per"},
                     csv);
    for (double deg : {0.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0}) {
        auto cfg = bench::bench_scenario();
        cfg.tag_incidence_rad = deg_to_rad(deg);

        cfg.reflector = core::reflector_kind::van_atta;
        core::link_simulator retro(cfg);
        const auto retro_report = retro.run_trials(5, 32);

        cfg.reflector = core::reflector_kind::flat_plate;
        core::link_simulator plate(cfg);
        const auto plate_report = plate.run_trials(5, 32);

        out.add_row({bench::fmt("%.0f", deg), bench::fmt("%.1f", retro_report.mean_snr_db),
                     bench::fmt("%.2f", retro_report.per),
                     bench::fmt("%.1f", plate_report.mean_snr_db),
                     bench::fmt("%.2f", plate_report.per)});
    }
    out.print();
    return 0;
}
