// Deployment generators for the scale-out layer: seeded placement is
// reproducible bit for bit, every layout keeps tags on the floor, cells
// partition the population by nearest AP, and the static SINR model reduces
// to the plain link budget when a single AP removes all interference.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "mmtag/core/config.hpp"
#include "mmtag/core/link_budget.hpp"
#include "mmtag/scale/topology.hpp"

namespace {

using namespace mmtag;
using scale::deployment;
using scale::layout_kind;
using scale::make_deployment;
using scale::topology_config;

topology_config base_config(layout_kind layout, std::size_t tags, std::size_t aps)
{
    topology_config cfg;
    cfg.layout = layout;
    cfg.tag_count = tags;
    cfg.ap_count = aps;
    return cfg;
}

TEST(ScaleTopology, ParsesLayoutNames)
{
    EXPECT_EQ(scale::parse_layout("grid"), layout_kind::warehouse_grid);
    EXPECT_EQ(scale::parse_layout("poisson"), layout_kind::poisson_disc);
    EXPECT_EQ(scale::parse_layout("clustered"), layout_kind::clustered);
    EXPECT_THROW((void)scale::parse_layout("ring"), std::invalid_argument);
    EXPECT_STREQ(scale::layout_name(layout_kind::poisson_disc), "poisson");
}

TEST(ScaleTopology, PlacementIsDeterministic)
{
    const auto scenario = core::fast_scenario();
    for (const auto layout : {layout_kind::warehouse_grid, layout_kind::poisson_disc,
                              layout_kind::clustered}) {
        const auto cfg = base_config(layout, 60, 3);
        const deployment a = make_deployment(cfg, scenario);
        const deployment b = make_deployment(cfg, scenario);
        ASSERT_EQ(a.tags.size(), b.tags.size());
        for (std::size_t i = 0; i < a.tags.size(); ++i) {
            EXPECT_EQ(a.tags[i].x_m, b.tags[i].x_m);
            EXPECT_EQ(a.tags[i].y_m, b.tags[i].y_m);
            EXPECT_EQ(a.tags[i].sinr_db, b.tags[i].sinr_db);
        }
    }
}

TEST(ScaleTopology, SeedChangesPlacement)
{
    const auto scenario = core::fast_scenario();
    auto cfg = base_config(layout_kind::poisson_disc, 20, 1);
    const deployment a = make_deployment(cfg, scenario);
    cfg.seed ^= 1;
    const deployment b = make_deployment(cfg, scenario);
    bool any_moved = false;
    for (std::size_t i = 0; i < a.tags.size(); ++i) {
        any_moved = any_moved || a.tags[i].x_m != b.tags[i].x_m;
    }
    EXPECT_TRUE(any_moved);
}

TEST(ScaleTopology, EveryLayoutStaysOnTheFloor)
{
    const auto scenario = core::fast_scenario();
    for (const auto layout : {layout_kind::warehouse_grid, layout_kind::poisson_disc,
                              layout_kind::clustered}) {
        const auto cfg = base_config(layout, 200, 4);
        const deployment topo = make_deployment(cfg, scenario);
        for (const auto& tag : topo.tags) {
            EXPECT_GE(tag.x_m, 0.0);
            EXPECT_LE(tag.x_m, cfg.floor_m);
            EXPECT_GE(tag.y_m, 0.0);
            EXPECT_LE(tag.y_m, cfg.floor_m);
        }
    }
}

TEST(ScaleTopology, CellsPartitionTagsByNearestAp)
{
    const auto scenario = core::fast_scenario();
    const auto cfg = base_config(layout_kind::warehouse_grid, 120, 4);
    const deployment topo = make_deployment(cfg, scenario);
    ASSERT_EQ(topo.cells.size(), 4u);
    std::size_t total = 0;
    for (std::size_t a = 0; a < topo.cells.size(); ++a) {
        total += topo.cells[a].size();
        for (const std::size_t t : topo.cells[a]) {
            EXPECT_EQ(topo.tags[t].ap, a);
            // The serving AP really is the nearest one.
            for (std::size_t other = 0; other < topo.aps.size(); ++other) {
                const double dx = topo.aps[other].x_m - topo.tags[t].x_m;
                const double dy = topo.aps[other].y_m - topo.tags[t].y_m;
                const double dz = topo.aps[other].z_m;
                const double d = std::sqrt(dx * dx + dy * dy + dz * dz);
                EXPECT_LE(topo.tags[t].distance_m, d + 1e-12);
            }
        }
    }
    EXPECT_EQ(total, cfg.tag_count);
}

TEST(ScaleTopology, SingleApSinrMatchesLinkBudget)
{
    const auto scenario = core::fast_scenario();
    const auto cfg = base_config(layout_kind::warehouse_grid, 16, 1);
    const deployment topo = make_deployment(cfg, scenario);
    const core::link_budget budget(scenario);
    for (const auto& tag : topo.tags) {
        const auto point = budget.at(tag.distance_m);
        const double snr_db = point.received_at_ap_dbm - point.noise_floor_dbm;
        EXPECT_NEAR(tag.sinr_db, snr_db, 1e-9);
    }
}

TEST(ScaleTopology, InterferenceOnlyLowersSinr)
{
    const auto scenario = core::fast_scenario();
    auto quiet = base_config(layout_kind::warehouse_grid, 80, 4);
    auto loud = quiet;
    loud.ap_suppression_db = 30.0; // much weaker carrier cancellation
    const deployment a = make_deployment(quiet, scenario);
    const deployment b = make_deployment(loud, scenario);
    for (std::size_t i = 0; i < a.tags.size(); ++i) {
        EXPECT_LT(b.tags[i].sinr_db, a.tags[i].sinr_db);
    }
}

TEST(ScaleTopology, SinrDecreasesWithDistanceWithinCell)
{
    const auto scenario = core::fast_scenario();
    const auto cfg = base_config(layout_kind::poisson_disc, 100, 2);
    const deployment topo = make_deployment(cfg, scenario);
    // Interference is per AP, so within a cell SINR must track distance.
    for (const auto& cell : topo.cells) {
        for (std::size_t i = 0; i < cell.size(); ++i) {
            for (std::size_t j = i + 1; j < cell.size(); ++j) {
                const auto& u = topo.tags[cell[i]];
                const auto& v = topo.tags[cell[j]];
                if (u.distance_m + 1e-9 < v.distance_m) {
                    EXPECT_GT(u.sinr_db, v.sinr_db);
                } else if (v.distance_m + 1e-9 < u.distance_m) {
                    EXPECT_GT(v.sinr_db, u.sinr_db);
                }
            }
        }
    }
}

TEST(ScaleTopology, RejectsDegenerateConfigs)
{
    const auto scenario = core::fast_scenario();
    auto cfg = base_config(layout_kind::warehouse_grid, 0, 1);
    EXPECT_THROW((void)make_deployment(cfg, scenario), std::invalid_argument);
    cfg.tag_count = 10;
    cfg.ap_count = 0;
    EXPECT_THROW((void)make_deployment(cfg, scenario), std::invalid_argument);
    cfg.ap_count = 1;
    cfg.floor_m = 0.0;
    EXPECT_THROW((void)make_deployment(cfg, scenario), std::invalid_argument);
}

} // namespace
