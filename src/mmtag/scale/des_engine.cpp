#include "mmtag/scale/des_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/mac/tdma.hpp"
#include "mmtag/net/network_supervisor.hpp"
#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/phy/frame.hpp"
#include "mmtag/runtime/json_io.hpp"
#include "mmtag/runtime/thread_pool.hpp"
#include "mmtag/runtime/trial_rng.hpp"

namespace mmtag::scale {

const char* event_kind_name(event_kind kind)
{
    switch (kind) {
    case event_kind::round_begin: return "round";
    case event_kind::data_slot: return "data";
    case event_kind::probe_slot: return "probe";
    }
    return "?";
}

namespace {

/// Min-heap order on (time, seq): `a` sorts after `b` when it happens later
/// or — at the exact same time — was pushed later.
bool event_after(const des_event& a, const des_event& b)
{
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
}

} // namespace

std::uint64_t event_queue::push(des_event event)
{
    event.seq = next_seq_++;
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), event_after);
    return event.seq;
}

des_event event_queue::pop()
{
    if (heap_.empty()) throw std::logic_error("event_queue: pop on empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), event_after);
    const des_event event = heap_.back();
    heap_.pop_back();
    return event;
}

namespace {

constexpr std::size_t probe_payload_bytes = 4;
constexpr double interferer_floor_db = -300.0;

std::uint64_t fnv1a64_line(std::uint64_t hash, const char* text, std::size_t length)
{
    for (std::size_t i = 0; i < length; ++i) {
        hash ^= static_cast<unsigned char>(text[i]);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/// Airtime of one TDMA slot at a given rate: query + turnaround + the full
/// frame (preamble, BPSK header, payload at the slot's MCS) + guard.
double slot_airtime_s(const ap::rate_option& option, std::size_t payload_bytes,
                      double symbol_rate_hz, const mac::tdma_config& mac)
{
    phy::frame_config frame;
    frame.scheme = option.scheme;
    frame.fec = option.fec;
    const std::size_t symbols = frame.preamble.total_symbols() +
                                phy::header_symbol_count +
                                phy::payload_symbol_count(payload_bytes, frame);
    return mac.query_time_s + mac.turnaround_s +
           static_cast<double>(symbols) / symbol_rate_hz + mac.guard_time_s;
}

/// Densest ladder index decodable at `sinr_db` with `margin_db` to spare;
/// the robust bottom of the ladder when nothing clears.
std::uint16_t pick_mcs(double sinr_db, double margin_db)
{
    const auto& ladder = ap::rate_table();
    std::uint16_t best = 0;
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        if (sinr_db >= ladder[i].required_snr_db + margin_db) {
            best = static_cast<std::uint16_t>(i);
        }
    }
    return best;
}

/// Uniform [0, 1) draw keyed by the event's global sequence number.
double event_uniform(std::uint64_t draw_seed, std::uint64_t seq)
{
    return static_cast<double>(runtime::substream(draw_seed, seq) >> 11) * 0x1.0p-53;
}

} // namespace

scale_trial_result run_scale_trial(const scale_config& cfg, const deployment& topo,
                                   const phy_table& table, std::size_t trial,
                                   obs::metrics_registry* metrics)
{
    const std::size_t n = topo.tags.size();
    const std::uint64_t tseed = runtime::trial_seed(cfg.seed, 0, trial);
    const std::uint64_t draw_seed = runtime::substream(tseed, 0);
    const std::uint64_t fault_seed = runtime::trial_seed(cfg.fault_seed, 0, trial);

    // Per-tag static decisions and per-MCS slot airtimes, fixed for the run.
    const auto& ladder = ap::rate_table();
    const mac::tdma_config mac{};
    std::vector<double> mcs_slot_s(ladder.size());
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        mcs_slot_s[i] =
            slot_airtime_s(ladder[i], cfg.payload_bytes, cfg.scenario.symbol_rate_hz, mac);
    }
    const double probe_slot_s =
        slot_airtime_s(ladder.front(), probe_payload_bytes, cfg.scenario.symbol_rate_hz,
                       mac);
    std::vector<std::uint16_t> tag_mcs(n);
    for (std::size_t t = 0; t < n; ++t) {
        tag_mcs[t] = pick_mcs(topo.tags[t].sinr_db, cfg.margin_db);
    }

    // The simulated duration spans three orders of magnitude as the tag
    // count sweeps 100 -> 10k, so absolute fault windows from the config
    // defaults (tuned for a 100 ms soak) would cover either the whole run or
    // none of it. Rescale the horizon and the shared-interferer window to
    // the nominal schedule length (all tags active at their static MCS),
    // preserving the defaults' fractions: interferer on over [10%, 40%] of
    // the run, fault onsets within the first `active_fraction`, and a quiet
    // tail where quarantined tags re-admit. Storm/brownout/background
    // fields are per-second rates or short transients and stay absolute.
    double nominal_round_s = 0.0;
    for (std::size_t a = 0; a < topo.aps.size(); ++a) {
        double round_s = 0.0;
        for (const std::size_t t : topo.cells[a]) round_s += mcs_slot_s[tag_mcs[t]];
        nominal_round_s = std::max(nominal_round_s, round_s);
    }
    const double nominal_duration_s =
        std::max(1e-6, nominal_round_s * static_cast<double>(cfg.frames));
    fault::multi_tag_config faults = cfg.faults;
    faults.horizon_s = nominal_duration_s;
    faults.interferer_start_s = 0.1 * nominal_duration_s;
    faults.interferer_duration_s = 0.3 * nominal_duration_s;

    const std::size_t faulted = std::min(cfg.faulted, n);
    const fault::multi_tag_plan plan(faults, n, faulted, fault_seed);
    fault::fault_injector shared_injector(plan.shared());
    std::vector<fault::fault_injector> tag_injectors;
    tag_injectors.reserve(n);
    for (const auto& schedule : plan.per_tag()) tag_injectors.emplace_back(schedule);

    // One unmodified network_supervisor per non-empty cell.
    std::vector<std::unique_ptr<net::network_supervisor>> supervisors(topo.aps.size());
    for (std::size_t a = 0; a < topo.aps.size(); ++a) {
        if (topo.cells[a].empty()) continue;
        net::supervisor_config sup_cfg;
        sup_cfg.session = cfg.session;
        sup_cfg.slot_budget = cfg.slot_budget;
        sup_cfg.metrics = metrics;
        std::vector<std::uint32_t> ids;
        ids.reserve(topo.cells[a].size());
        for (const std::size_t t : topo.cells[a]) {
            ids.push_back(topo.tags[t].id);
        }
        supervisors[a] = std::make_unique<net::network_supervisor>(sup_cfg, ids);
    }

    scale_trial_result result;
    result.attempts_per_tag.assign(n, 0);
    result.delivered_per_tag.assign(n, 0);
    result.event_log_hash = 0xcbf29ce484222325ULL;

    obs::histogram* sinr_hist =
        metrics != nullptr
            ? &metrics->get_histogram("scale/slot_sinr_db", obs::snr_bounds_db())
            : nullptr;

    // A robust-flag scratch table stamped per (ap, round) so membership in
    // the current plan's robust list is O(1) per slot.
    std::vector<std::uint64_t> robust_stamp(n, 0);
    std::uint64_t stamp = 0;
    std::vector<std::size_t> rounds_done(topo.aps.size(), 0);
    std::vector<double> cell_end_s(topo.aps.size(), 0.0);

    event_queue queue;
    for (std::size_t a = 0; a < topo.aps.size(); ++a) {
        if (supervisors[a] == nullptr) continue;
        des_event begin;
        begin.kind = event_kind::round_begin;
        begin.ap = static_cast<std::uint32_t>(a);
        begin.time_s = 0.0;
        queue.push(begin);
    }

    char line[160];
    while (!queue.empty()) {
        const des_event ev = queue.pop();
        int outcome = -1;

        if (ev.kind == event_kind::round_begin) {
            auto& sup = *supervisors[ev.ap];
            const net::round_plan round = sup.plan_round();
            ++stamp;
            for (const std::uint32_t id : round.robust) robust_stamp[id] = stamp;

            double cursor = ev.time_s;
            for (const std::uint32_t id : round.probes) {
                des_event slot;
                slot.kind = event_kind::probe_slot;
                slot.ap = ev.ap;
                slot.tag = id;
                slot.mcs = 0;
                slot.time_s = cursor;
                slot.duration_s = probe_slot_s;
                queue.push(slot);
                cursor += probe_slot_s;
            }
            for (const std::uint32_t id : mac::tdma_scheduler::interleave_shares(
                     round.shares)) {
                des_event slot;
                slot.kind = event_kind::data_slot;
                slot.ap = ev.ap;
                slot.tag = id;
                slot.mcs = robust_stamp[id] == stamp ? 0 : tag_mcs[id];
                slot.time_s = cursor;
                slot.duration_s = mcs_slot_s[slot.mcs];
                queue.push(slot);
                cursor += slot.duration_s;
            }
            // A fully quarantined, probe-less round still advances time by
            // one robust slot so the backoff clock keeps ticking.
            if (cursor == ev.time_s) cursor += mcs_slot_s[0];
            cell_end_s[ev.ap] = cursor;
            ++result.rounds;
            if (++rounds_done[ev.ap] < cfg.frames) {
                des_event next;
                next.kind = event_kind::round_begin;
                next.ap = ev.ap;
                next.time_s = cursor;
                queue.push(next);
            }
        } else {
            const auto shared_imp = shared_injector.at(ev.time_s, ev.duration_s);
            const auto tag_imp = tag_injectors[ev.tag].at(ev.time_s, ev.duration_s);
            const bool powered = shared_imp.tag_powered && tag_imp.tag_powered;
            // Mirror the sample-accurate impairment application: blockage
            // shadows the tag path both ways (power x a^4), a dropout scales
            // the illuminating carrier once (power x c^2), the interferer is
            // referenced to the tag's nominal return.
            const double a = shared_imp.tag_amplitude * tag_imp.tag_amplitude;
            const double c = shared_imp.carrier_amplitude * tag_imp.carrier_amplitude;
            const double rel_db =
                std::max(shared_imp.interferer_rel_db, tag_imp.interferer_rel_db);
            const double s_lin = from_db(topo.tags[ev.tag].sinr_db);
            const double signal_factor = a * a * a * a * c * c;
            const double denom =
                1.0 + (rel_db > interferer_floor_db ? s_lin * from_db(rel_db) : 0.0);
            const double sinr_eff_db = to_db(s_lin * signal_factor / denom);
            if (sinr_hist != nullptr) sinr_hist->observe(sinr_eff_db);

            bool delivered = false;
            if (powered) {
                const double per = table.per(ev.mcs, sinr_eff_db);
                delivered = event_uniform(draw_seed, ev.seq) >= per;
            } else {
                ++result.brownout_losses;
            }
            outcome = delivered ? 1 : 0;

            auto& sup = *supervisors[ev.ap];
            if (ev.kind == event_kind::probe_slot) {
                ++result.probe_slots;
                sup.record_probe(ev.tag, delivered);
            } else {
                ++result.data_slots;
                if (sup.record_data(ev.tag, delivered)) {
                    ++result.attempts_per_tag[ev.tag];
                    if (delivered) {
                        ++result.delivered_per_tag[ev.tag];
                        ++result.delivered;
                    }
                }
            }
        }

        const int length = std::snprintf(
            line, sizeof line, "%llu %.9f %u %s %u %u %d\n",
            static_cast<unsigned long long>(ev.seq), ev.time_s, ev.ap,
            event_kind_name(ev.kind), ev.tag, ev.mcs, outcome);
        result.event_log_hash =
            fnv1a64_line(result.event_log_hash, line, static_cast<std::size_t>(length));
        if (cfg.record_event_log) result.event_log.append(line);
    }

    result.events = queue.pushed();
    result.sim_time_s = *std::max_element(cell_end_s.begin(), cell_end_s.end());
    for (std::size_t t = 0; t < n; ++t) {
        const auto& sup = supervisors[topo.tags[t].ap];
        const net::tag_session& session = sup->session(topo.tags[t].id);
        result.transitions += session.transitions().size();
        for (const auto& transition : session.transitions()) {
            if (transition.from == net::session_state::probing &&
                transition.to == net::session_state::active) {
                ++result.readmissions;
            }
        }
        for (const std::size_t latency : session.readmit_latencies_rounds()) {
            result.readmit_latencies_rounds.push_back(latency);
        }
    }

    if (metrics != nullptr) {
        metrics->get_counter("scale/rounds").add(result.rounds);
        metrics->get_counter("scale/data_slots").add(result.data_slots);
        metrics->get_counter("scale/probe_slots").add(result.probe_slots);
        metrics->get_counter("scale/delivered").add(result.delivered);
        metrics->get_counter("scale/brownout_losses").add(result.brownout_losses);
        metrics->get_counter("scale/goodput_bits")
            .add(result.delivered * cfg.payload_bytes * 8);
        metrics->get_gauge("scale/sim_time_s").set(result.sim_time_s);
    }
    return result;
}

double scale_result::goodput_bps() const
{
    if (!(sim_time_s > 0.0)) return 0.0;
    return static_cast<double>(delivered * config.payload_bytes * 8) / sim_time_s;
}

double scale_result::fairness_index() const
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const std::uint64_t d : delivered_per_tag) {
        const auto x = static_cast<double>(d);
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq <= 0.0) return 0.0;
    return sum * sum / (static_cast<double>(delivered_per_tag.size()) * sum_sq);
}

runtime::json_value scale_result::to_json() const
{
    using runtime::json_value;
    auto doc = runtime::schema_object("mmtag.scale.result/1");
    doc.set("tags", json_value::unsigned_integer(config.topology.tag_count));
    doc.set("aps", json_value::unsigned_integer(config.topology.ap_count));
    doc.set("layout", json_value::string(layout_name(config.topology.layout)));
    doc.set("frames", json_value::unsigned_integer(config.frames));
    doc.set("payload_bytes", json_value::unsigned_integer(config.payload_bytes));
    doc.set("trials", json_value::unsigned_integer(config.trials));
    doc.set("seed", json_value::unsigned_integer(config.seed));
    doc.set("fault_seed", json_value::unsigned_integer(config.fault_seed));
    doc.set("faulted", json_value::unsigned_integer(config.faulted));
    doc.set("rounds", json_value::unsigned_integer(rounds));
    doc.set("events", json_value::unsigned_integer(events));
    doc.set("data_slots", json_value::unsigned_integer(data_slots));
    doc.set("probe_slots", json_value::unsigned_integer(probe_slots));
    doc.set("delivered", json_value::unsigned_integer(delivered));
    doc.set("brownout_losses", json_value::unsigned_integer(brownout_losses));
    doc.set("sim_time_s", json_value::number(sim_time_s));
    doc.set("goodput_bps", runtime::ratio_or_null(goodput_bps(), delivered));
    doc.set("fairness_index",
            runtime::ratio_or_null(fairness_index(), delivered));
    doc.set("transitions", json_value::unsigned_integer(transitions));
    doc.set("readmissions", json_value::unsigned_integer(readmissions));
    doc.set("readmit_latency_count",
            json_value::unsigned_integer(readmit_latency_count));
    doc.set("readmit_latency_mean_rounds",
            runtime::ratio_or_null(readmit_latency_mean_rounds, readmit_latency_count));
    doc.set("readmit_latency_max_rounds",
            json_value::unsigned_integer(readmit_latency_max_rounds));
    char hash_hex[20];
    std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                  static_cast<unsigned long long>(event_log_hash));
    doc.set("event_log_hash", json_value::string(hash_hex));
    auto delivered_list = json_value::array();
    for (const std::uint64_t d : delivered_per_tag) {
        delivered_list.push(json_value::unsigned_integer(d));
    }
    doc.set("delivered_per_tag", std::move(delivered_list));
    return doc;
}

scale_result run_scale(const scale_config& cfg, std::size_t jobs,
                       obs::metrics_registry* metrics, const std::string& cache_dir)
{
    if (cfg.trials == 0) throw std::invalid_argument("run_scale: trials must be >= 1");
    const deployment topo = make_deployment(cfg.topology, cfg.scenario);

    phy_table_config table_cfg = cfg.phy;
    table_cfg.scenario = cfg.scenario;
    table_cfg.payload_bytes = cfg.payload_bytes;
    auto cache = phy_table::load_or_generate(table_cfg, jobs, cache_dir);

    runtime::thread_pool pool(jobs);
    std::vector<obs::metrics_registry> registries(metrics != nullptr ? cfg.trials : 0);
    const auto trials = runtime::ordered_parallel_results(
        pool, cfg.trials, [&](std::size_t trial) {
            obs::metrics_registry* registry =
                metrics != nullptr ? &registries[trial] : nullptr;
            return run_scale_trial(cfg, topo, cache.table, trial, registry);
        });

    scale_result result;
    result.config = cfg;
    result.jobs = pool.jobs();
    result.cache_hit = cache.cache_hit;
    result.phy_table_path = cache.path;
    result.attempts_per_tag.assign(topo.tags.size(), 0);
    result.delivered_per_tag.assign(topo.tags.size(), 0);
    result.event_log_hash = 0xcbf29ce484222325ULL;
    std::uint64_t latency_sum = 0;
    for (const auto& trial : trials) {
        for (std::size_t t = 0; t < topo.tags.size(); ++t) {
            result.attempts_per_tag[t] += trial.attempts_per_tag[t];
            result.delivered_per_tag[t] += trial.delivered_per_tag[t];
        }
        result.data_slots += trial.data_slots;
        result.probe_slots += trial.probe_slots;
        result.delivered += trial.delivered;
        result.brownout_losses += trial.brownout_losses;
        result.rounds += trial.rounds;
        result.events += trial.events;
        result.sim_time_s += trial.sim_time_s;
        result.transitions += trial.transitions;
        result.readmissions += trial.readmissions;
        for (const std::size_t latency : trial.readmit_latencies_rounds) {
            ++result.readmit_latency_count;
            latency_sum += latency;
            result.readmit_latency_max_rounds =
                std::max(result.readmit_latency_max_rounds,
                         static_cast<std::uint64_t>(latency));
        }
        result.event_log_hash = runtime::mix64(result.event_log_hash ^
                                               trial.event_log_hash);
        if (cfg.record_event_log) result.event_logs.push_back(trial.event_log);
    }
    result.readmit_latency_mean_rounds =
        result.readmit_latency_count > 0
            ? static_cast<double>(latency_sum) /
                  static_cast<double>(result.readmit_latency_count)
            : 0.0;
    if (metrics != nullptr) {
        for (const auto& registry : registries) metrics->merge(registry);
    }
    return result;
}

} // namespace mmtag::scale
