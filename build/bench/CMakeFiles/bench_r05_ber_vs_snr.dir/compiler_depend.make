# Empty compiler generated dependencies file for bench_r05_ber_vs_snr.
# This may be replaced when dependencies are built.
