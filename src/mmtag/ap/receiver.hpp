// AP receiver: antenna -> LNA -> self-coherent IQ downconversion -> ADC ->
// self-interference cancellation -> symbol timing -> preamble sync ->
// demodulation -> FEC decode. Produces link metrics alongside the payload.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/ap/canceller.hpp"
#include "mmtag/phy/frame.hpp"
#include "mmtag/rf/adc.hpp"
#include "mmtag/rf/amplifier.hpp"
#include "mmtag/rf/mixer.hpp"
#include "mmtag/rf/noise.hpp"

namespace mmtag::ap {

/// Everything the receiver learned from one capture window.
struct reception {
    bool frame_found = false;
    bool crc_ok = false;
    std::vector<std::uint8_t> payload;
    phy::decoded_header header{};

    double snr_db = -100.0;        ///< data-aided estimate over the sync word
    double evm_db = 0.0;           ///< EVM over the sync word
    double sync_quality = 0.0;     ///< correlation peak-to-sidelobe ratio
    double suppression_db = 0.0;   ///< canceller residual/input power
    double noise_variance = 0.0;   ///< per-symbol noise power after gain norm
    cf64 channel_gain{};           ///< complex end-to-end gain estimate

    cvec symbols;                  ///< normalized symbol stream (diagnostics)
};

/// How the receiver obtains its downconversion LO.
enum class lo_mode {
    /// Mix with the transmitter's own LO stream: unmodulated interference
    /// lands exactly at DC and common phase noise cancels (the mmtag design).
    self_coherent,
    /// Conventional separate synthesizer with its own CFO and phase noise —
    /// the ablation showing why backscatter receivers are built self-coherent.
    independent,
};

class ap_receiver {
public:
    struct config {
        double sample_rate_hz = 2e9;
        std::size_t samples_per_symbol = 400;
        rf::lna::config lna{};
        rf::quadrature_mixer::config mixer{};
        rf::adc::config adc{};
        self_interference_canceller::config canceller{};
        phy::frame_config frame{};
        double min_sync_quality = 2.0;
        /// Fraction of ADC full scale the analog gain targets for the input
        /// RMS (headroom for the modulated signal on top of residual DC).
        double adc_loading = 0.25;

        lo_mode lo = lo_mode::self_coherent;
        /// Independent-LO impairments (ignored in self-coherent mode).
        /// Residual rotation is recovered data-aided from the sync word.
        double independent_cfo_hz = 1e3;
        double independent_linewidth_hz = 100.0;
    };

    ap_receiver(const config& cfg, std::uint64_t seed);

    [[nodiscard]] const config& parameters() const { return cfg_; }

    /// Full receive pipeline over one capture of antenna-plane samples and
    /// the transmitter's LO stream (self-coherent operation).
    [[nodiscard]] reception receive(std::span<const cf64> antenna, std::span<const cf64> lo);

    /// Analog front end + cancellation only: returns the cleaned baseband.
    /// Exposed for microbenchmarks (R8) and spectrum inspection.
    [[nodiscard]] cvec front_end(std::span<const cf64> antenna, std::span<const cf64> lo,
                                 double* suppression_db = nullptr);

private:
    config cfg_;
    rf::awgn_source antenna_noise_;
    rf::lna lna_;
    rf::quadrature_mixer mixer_;
    rf::adc adc_;
    self_interference_canceller canceller_;
    std::uint64_t lo_seed_ = 0;
    std::uint64_t captures_ = 0;
};

} // namespace mmtag::ap
