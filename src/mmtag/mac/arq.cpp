#include "mmtag/mac/arq.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmtag::mac {

double arq_stats::delivery_ratio() const
{
    if (frames_offered == 0) return 0.0;
    return static_cast<double>(frames_delivered) / static_cast<double>(frames_offered);
}

double arq_stats::transmission_efficiency() const
{
    if (transmissions == 0) return 0.0;
    return static_cast<double>(frames_delivered) / static_cast<double>(transmissions);
}

double arq_stats::goodput_bps(double payload_bits) const
{
    if (airtime_s <= 0.0) return 0.0;
    return static_cast<double>(frames_delivered) * payload_bits / airtime_s;
}

stop_and_wait_arq::stop_and_wait_arq(const arq_config& cfg) : cfg_(cfg)
{
    if (cfg.max_retries == 0) throw std::invalid_argument("arq: max_retries must be >= 1");
    if (cfg.frame_time_s <= 0.0 || cfg.ack_time_s < 0.0 ||
        !std::isfinite(cfg.frame_time_s) || !std::isfinite(cfg.ack_time_s)) {
        throw std::invalid_argument("arq: invalid timing");
    }
    if (cfg.initial_backoff_s < 0.0 || cfg.max_backoff_s < 0.0 ||
        !std::isfinite(cfg.initial_backoff_s) || !std::isfinite(cfg.max_backoff_s)) {
        throw std::invalid_argument("arq: backoff times must be finite and >= 0");
    }
    if (!(cfg.backoff_factor >= 1.0) || !std::isfinite(cfg.backoff_factor)) {
        throw std::invalid_argument("arq: backoff_factor must be >= 1");
    }
    if (!(cfg.ack_loss >= 0.0 && cfg.ack_loss <= 1.0)) {
        throw std::invalid_argument("arq: ack_loss must be in [0, 1]");
    }
}

double stop_and_wait_arq::backoff_delay_s(std::size_t attempt) const
{
    if (attempt == 0 || cfg_.initial_backoff_s <= 0.0) return 0.0;
    // pow overflows to inf once the ladder outgrows double range (attempt
    // counters saturate far later than the cap engages); the explicit
    // non-finite check keeps the returned wait finite for *any* attempt
    // index, including SIZE_MAX.
    const double grown =
        cfg_.initial_backoff_s *
        std::pow(cfg_.backoff_factor, static_cast<double>(attempt - 1));
    if (!std::isfinite(grown) || grown > cfg_.max_backoff_s) return cfg_.max_backoff_s;
    return grown;
}

arq_stats stop_and_wait_arq::run(std::size_t frame_count, double frame_success,
                                 std::uint64_t seed) const
{
    if (!(frame_success >= 0.0 && frame_success <= 1.0)) {
        throw std::invalid_argument("arq: frame_success must be in [0, 1]");
    }
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    arq_stats stats;
    stats.frames_offered = frame_count;
    for (std::size_t f = 0; f < frame_count; ++f) {
        bool receiver_has_frame = false;
        for (std::size_t attempt = 0; attempt < cfg_.max_retries; ++attempt) {
            const double wait = backoff_delay_s(attempt);
            stats.backoff_wait_s += wait;
            stats.airtime_s += wait + cfg_.frame_time_s + cfg_.ack_time_s;
            ++stats.transmissions;
            if (uniform(rng) >= frame_success) continue; // frame corrupted
            if (receiver_has_frame) ++stats.duplicates_discarded;
            else {
                receiver_has_frame = true;
                ++stats.frames_delivered;
            }
            // The sender only stops once it sees the implicit ACK.
            if (cfg_.ack_loss <= 0.0 || uniform(rng) >= cfg_.ack_loss) break;
        }
    }
    return stats;
}

double stop_and_wait_arq::expected_transmissions(double frame_success) const
{
    if (!(frame_success > 0.0 && frame_success <= 1.0)) {
        throw std::invalid_argument("arq: frame_success must be in (0, 1]");
    }
    // Truncated-geometric mean, E[min(Geom(p), R)]. The series
    // sum_{k=1..R} k p q^(k-1) + R q^R telescopes to (1 - q^R)/p — exact for
    // any retry cap, where the old term-by-term loop never finished once the
    // cap got "supervision off" huge (SIZE_MAX).
    const double p = frame_success;
    const double q = 1.0 - p;
    const double r = static_cast<double>(cfg_.max_retries);
    return (1.0 - std::pow(q, r)) / p;
}

} // namespace mmtag::mac
