#include "mmtag/rf/amplifier.hpp"

#include <stdexcept>

#include "mmtag/rf/noise.hpp"

namespace mmtag::rf {

// Signals are complex baseband voltages across a 1-ohm reference, so
// instantaneous power is |x|^2 watts.

lna::lna(const config& cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed)
{
    if (cfg.bandwidth_hz <= 0.0) throw std::invalid_argument("lna: bandwidth <= 0");
    if (cfg.noise_figure_db < 0.0) throw std::invalid_argument("lna: noise figure < 0");
    voltage_gain_ = std::pow(10.0, cfg.gain_db / 20.0);
    noise_sigma_ = std::sqrt(input_referred_noise_power() / 2.0);
}

double lna::input_referred_noise_power() const
{
    const double noise_factor = from_db(cfg_.noise_figure_db);
    return (noise_factor - 1.0) *
           thermal_noise_power(cfg_.bandwidth_hz, cfg_.temperature_kelvin);
}

cf64 lna::process(cf64 input)
{
    const cf64 noise{noise_sigma_ * gaussian_(rng_), noise_sigma_ * gaussian_(rng_)};
    return voltage_gain_ * (input + noise);
}

cvec lna::process(std::span<const cf64> input)
{
    cvec out;
    out.reserve(input.size());
    for (cf64 x : input) out.push_back(process(x));
    return out;
}

power_amplifier::power_amplifier(const config& cfg) : cfg_(cfg)
{
    if (cfg.smoothness <= 0.0) throw std::invalid_argument("power_amplifier: smoothness <= 0");
    voltage_gain_ = std::pow(10.0, cfg.gain_db / 20.0);
    saturation_amplitude_ = std::sqrt(dbm_to_watt(cfg.output_saturation_dbm));
}

cf64 power_amplifier::process(cf64 input) const
{
    const double amplitude = std::abs(input);
    if (amplitude < 1e-30) return cf64{};
    const double driven = voltage_gain_ * amplitude;
    const double ratio = driven / saturation_amplitude_;
    const double p2 = 2.0 * cfg_.smoothness;
    const double compressed = driven / std::pow(1.0 + std::pow(ratio, p2), 1.0 / p2);
    return input * (compressed / amplitude);
}

cvec power_amplifier::process(std::span<const cf64> input) const
{
    cvec out;
    out.reserve(input.size());
    for (cf64 x : input) out.push_back(process(x));
    return out;
}

double power_amplifier::output_power_dbm(double input_dbm) const
{
    const double amplitude = std::sqrt(dbm_to_watt(input_dbm));
    const cf64 out = process(cf64{amplitude, 0.0});
    return watt_to_dbm(std::norm(out));
}

double power_amplifier::input_p1db_dbm() const
{
    // Solve Rapp compression == 1 dB: (1 + r^2p)^(1/2p) = 10^(1/20).
    const double p2 = 2.0 * cfg_.smoothness;
    const double target = std::pow(10.0, p2 / 20.0) - 1.0;
    const double ratio = std::pow(target, 1.0 / p2);
    const double input_amplitude = ratio * saturation_amplitude_ / voltage_gain_;
    return watt_to_dbm(input_amplitude * input_amplitude);
}

} // namespace mmtag::rf
