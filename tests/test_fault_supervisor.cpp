// Fault schedule / injector semantics and the AP link supervisor state
// machine, exercised through synthetic drivers (no RF) so they run fast.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "mmtag/ap/link_supervisor.hpp"
#include "mmtag/core/multitag_simulator.hpp"
#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/phy/bitio.hpp"

using namespace mmtag;

namespace {

fault::fault_schedule::config busy_schedule()
{
    fault::fault_schedule::config cfg;
    cfg.horizon_s = 50e-3;
    cfg.event_rate_hz = 400.0;
    return cfg;
}

ap::supervisor_config fast_supervisor()
{
    ap::supervisor_config cfg;
    cfg.outage_streak = 3;
    cfg.arq.max_retries = 10;
    cfg.arq.initial_backoff_s = 50e-6;
    cfg.arq.backoff_factor = 2.0;
    cfg.arq.max_backoff_s = 400e-6;
    cfg.watchdog_probes = 4;
    cfg.reacquisition_time_s = 0.5e-3;
    return cfg;
}

/// Synthetic link: every attempt costs fixed airtime and fails while the
/// clock is inside [outage_start, outage_end). A persistent lock loss at
/// `lock_lost_at_s` (the scripted analogue of an LO step) keeps the link
/// down until someone re-runs acquisition.
struct scripted_link {
    double now_s = 0.0;
    double outage_start_s = 0.0;
    double outage_end_s = 0.0;
    double lock_lost_at_s = std::numeric_limits<double>::infinity();
    double data_airtime_s = 120e-6;
    double probe_airtime_s = 40e-6;
    std::size_t reacquisitions = 0;

    [[nodiscard]] bool up() const
    {
        if (now_s >= lock_lost_at_s) return false;
        return now_s < outage_start_s || now_s >= outage_end_s;
    }

    ap::link_driver driver(const ap::supervisor_config& cfg)
    {
        ap::link_driver d;
        d.transmit = [this](const ap::rate_option&) {
            const bool ok = up();
            now_s += data_airtime_s;
            return ap::attempt_result{ok, ok ? 20.0 : -100.0, data_airtime_s};
        };
        d.probe = [this](const ap::rate_option&) {
            const bool ok = up();
            now_s += probe_airtime_s;
            return ap::attempt_result{ok, ok ? 20.0 : -100.0, probe_airtime_s};
        };
        d.wait = [this](double wait_s) { now_s += wait_s; };
        d.reacquire = [this, &cfg] {
            ++reacquisitions;
            now_s += cfg.reacquisition_time_s;
            lock_lost_at_s = std::numeric_limits<double>::infinity();
        };
        d.now = [this] { return now_s; };
        return d;
    }
};

} // namespace

TEST(fault_schedule, same_seed_bit_identical_events)
{
    const auto cfg = busy_schedule();
    const fault::fault_schedule a(cfg, 77);
    const fault::fault_schedule b(cfg, 77);
    ASSERT_EQ(a.events().size(), b.events().size());
    ASSERT_FALSE(a.events().empty());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_DOUBLE_EQ(a.events()[i].start_s, b.events()[i].start_s);
        EXPECT_DOUBLE_EQ(a.events()[i].duration_s, b.events()[i].duration_s);
        EXPECT_DOUBLE_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
    }
}

TEST(fault_schedule, different_seeds_differ)
{
    const auto cfg = busy_schedule();
    const fault::fault_schedule a(cfg, 77);
    const fault::fault_schedule b(cfg, 78);
    bool any_difference = a.events().size() != b.events().size();
    for (std::size_t i = 0; !any_difference && i < a.events().size(); ++i) {
        any_difference = a.events()[i].start_s != b.events()[i].start_s;
    }
    EXPECT_TRUE(any_difference);
}

TEST(fault_schedule, events_sorted_clamped_and_inside_horizon)
{
    const auto cfg = busy_schedule();
    const fault::fault_schedule schedule(cfg, 5);
    double previous = -1.0;
    for (const auto& event : schedule.events()) {
        EXPECT_GE(event.start_s, previous);
        previous = event.start_s;
        EXPECT_LT(event.start_s, cfg.horizon_s);
        EXPECT_GE(event.duration_s, cfg.min_duration_s);
        EXPECT_LE(event.duration_s, cfg.max_duration_s);
        if (event.kind == fault::fault_kind::blockage) {
            EXPECT_GE(event.magnitude, cfg.blockage_depth_db_min);
            EXPECT_LE(event.magnitude, cfg.blockage_depth_db_max);
        }
        if (event.kind == fault::fault_kind::lo_step) {
            EXPECT_GE(event.magnitude, cfg.lo_step_hz_min);
            EXPECT_LE(event.magnitude, cfg.lo_step_hz_max);
        }
    }
}

TEST(fault_schedule, kind_counts_sum_to_total_and_active_filters)
{
    const fault::fault_schedule schedule(busy_schedule(), 9);
    std::size_t total = 0;
    for (const auto kind :
         {fault::fault_kind::blockage, fault::fault_kind::carrier_dropout,
          fault::fault_kind::lo_step, fault::fault_kind::interferer,
          fault::fault_kind::brownout}) {
        total += schedule.count(kind);
    }
    EXPECT_EQ(total, schedule.events().size());

    ASSERT_FALSE(schedule.events().empty());
    const auto& first = schedule.events().front();
    const auto hits = schedule.active(first.start_s, first.end_s());
    ASSERT_FALSE(hits.empty());
    for (const auto& event : hits) {
        EXPECT_TRUE(event.overlaps(first.start_s, first.end_s()));
    }
    EXPECT_TRUE(schedule.active(1e6, 1e6 + 1.0).empty());
}

TEST(fault_injector, clean_window_reports_no_impairment)
{
    fault::fault_schedule::config cfg = busy_schedule();
    cfg.event_rate_hz = 0.0;
    const fault::fault_injector injector{fault::fault_schedule(cfg, 1)};
    const auto impairment = injector.at(10e-3, 1e-3);
    EXPECT_FALSE(impairment.any());
    EXPECT_DOUBLE_EQ(impairment.tag_amplitude, 1.0);
    EXPECT_DOUBLE_EQ(impairment.carrier_amplitude, 1.0);
    EXPECT_TRUE(impairment.tag_powered);
    EXPECT_FALSE(impairment.interferer_active());
}

TEST(fault_injector, overlapping_events_impair_the_window)
{
    const fault::fault_schedule schedule(busy_schedule(), 9);
    const fault::fault_injector injector{schedule};
    for (const auto& event : schedule.events()) {
        const auto impairment = injector.at(event.start_s, event.duration_s);
        EXPECT_TRUE(impairment.any());
        switch (event.kind) {
        case fault::fault_kind::blockage:
            EXPECT_LT(impairment.tag_amplitude, 1.0);
            break;
        case fault::fault_kind::carrier_dropout:
            EXPECT_LT(impairment.carrier_amplitude, 1.0);
            break;
        case fault::fault_kind::lo_step:
            EXPECT_NE(impairment.lo_offset_hz, 0.0);
            break;
        case fault::fault_kind::interferer:
            EXPECT_TRUE(impairment.interferer_active());
            break;
        case fault::fault_kind::brownout:
            EXPECT_FALSE(impairment.tag_powered);
            break;
        }
    }
}

TEST(fault_injector, lo_step_persists_until_cleared)
{
    fault::fault_schedule::config cfg = busy_schedule();
    cfg.blockage_weight = 0.0;
    cfg.dropout_weight = 0.0;
    cfg.interferer_weight = 0.0;
    cfg.brownout_weight = 0.0; // LO steps only
    fault::fault_injector injector{fault::fault_schedule(cfg, 31)};
    const auto& events = injector.schedule().events();
    ASSERT_FALSE(events.empty());
    const auto& first = events.front();
    const auto& last = events.back();

    EXPECT_DOUBLE_EQ(injector.lo_offset_hz(first.start_s - 1e-6), 0.0);
    EXPECT_NE(injector.lo_offset_hz(first.start_s), 0.0);

    // The offset holds far beyond the last event's nominal duration: nothing
    // un-detunes a synthesizer except re-running acquisition. (The latest
    // step with start <= t governs, so probe past the end of the schedule.)
    const double probe_at = last.end_s() + 20e-3;
    EXPECT_EQ(injector.lo_offset_hz(probe_at), injector.lo_offset_hz(last.start_s));
    EXPECT_NE(injector.lo_offset_hz(probe_at), 0.0);

    // Reacquisition mid-schedule clears every step so far, and a later step
    // re-detunes after the clear.
    const double cleared_at = first.end_s();
    injector.clear_lo_steps(cleared_at);
    EXPECT_DOUBLE_EQ(injector.lo_offset_hz(cleared_at), 0.0);
    for (const auto& event : events) {
        if (event.start_s > cleared_at) {
            EXPECT_NE(injector.lo_offset_hz(event.start_s), 0.0);
            break;
        }
    }

    // Clearing at the very end silences the whole schedule.
    injector.clear_lo_steps(probe_at);
    EXPECT_DOUBLE_EQ(injector.lo_offset_hz(probe_at), 0.0);
}

TEST(link_supervisor, declares_outage_after_streak_and_recovers)
{
    const auto cfg = fast_supervisor();
    ap::link_supervisor supervisor(cfg, ap::rate_table().back());
    EXPECT_EQ(supervisor.state(), ap::supervisor_state::nominal);

    supervisor.record(false, -100.0, 1e-3);
    EXPECT_EQ(supervisor.state(), ap::supervisor_state::alert);
    supervisor.record(false, -100.0, 2e-3);
    EXPECT_EQ(supervisor.state(), ap::supervisor_state::alert);
    // Pre-outage attempts go out immediately at the current rate.
    EXPECT_DOUBLE_EQ(supervisor.next_attempt().wait_s, 0.0);
    EXPECT_FALSE(supervisor.next_attempt().probe);

    supervisor.record(false, -100.0, 3e-3);
    EXPECT_EQ(supervisor.state(), ap::supervisor_state::outage);
    EXPECT_EQ(supervisor.metrics().outages, 1u);
    EXPECT_DOUBLE_EQ(supervisor.metrics().detect_total_s, 2e-3);

    // Outage plan: robust-rate probe with backoff.
    const auto plan = supervisor.next_attempt();
    EXPECT_TRUE(plan.probe);
    EXPECT_EQ(plan.rate.scheme, ap::rate_table().front().scheme);
    EXPECT_DOUBLE_EQ(plan.wait_s, cfg.arq.initial_backoff_s);

    supervisor.record(true, 25.0, 4e-3, /*was_probe=*/true);
    EXPECT_EQ(supervisor.state(), ap::supervisor_state::nominal);
    EXPECT_EQ(supervisor.metrics().recoveries, 1u);
    EXPECT_DOUBLE_EQ(supervisor.metrics().recover_total_s, 1e-3);
    EXPECT_EQ(supervisor.metrics().probes, 1u);
    EXPECT_EQ(supervisor.metrics().transmissions, 3u);
}

TEST(link_supervisor, backoff_ladder_counts_from_declaration)
{
    const auto cfg = fast_supervisor();
    ap::link_supervisor supervisor(cfg, ap::rate_table().back());
    double t = 0.0;
    for (std::size_t i = 0; i < cfg.outage_streak; ++i) {
        supervisor.record(false, -100.0, t += 1e-4);
    }
    // First outage probe waits the initial backoff, then doubles up to the cap.
    EXPECT_DOUBLE_EQ(supervisor.next_attempt().wait_s, 50e-6);
    supervisor.record(false, -100.0, t += 1e-4);
    EXPECT_DOUBLE_EQ(supervisor.next_attempt().wait_s, 100e-6);
    supervisor.record(false, -100.0, t += 1e-4);
    EXPECT_DOUBLE_EQ(supervisor.next_attempt().wait_s, 200e-6);
    supervisor.record(false, -100.0, t += 1e-4);
    EXPECT_DOUBLE_EQ(supervisor.next_attempt().wait_s, 400e-6);
    supervisor.record(false, -100.0, t += 1e-4);
    EXPECT_DOUBLE_EQ(supervisor.next_attempt().wait_s, 400e-6); // capped
}

TEST(link_supervisor, watchdog_requests_reacquisition_after_probe_budget)
{
    const auto cfg = fast_supervisor();
    ap::link_supervisor supervisor(cfg, ap::rate_table().back());
    double t = 0.0;
    for (std::size_t i = 0; i < cfg.outage_streak; ++i) {
        supervisor.record(false, -100.0, t += 1e-4);
    }
    for (std::size_t probe = 0; probe < cfg.watchdog_probes; ++probe) {
        EXPECT_FALSE(supervisor.next_attempt().reacquire);
        supervisor.record(false, -100.0, t += 1e-4);
    }
    EXPECT_TRUE(supervisor.next_attempt().reacquire);
    supervisor.note_reacquisition();
    EXPECT_FALSE(supervisor.next_attempt().reacquire); // budget reset
    EXPECT_EQ(supervisor.metrics().reacquisitions, 1u);
}

TEST(link_supervisor, invalid_configs_throw)
{
    auto cfg = fast_supervisor();
    cfg.outage_streak = 0;
    EXPECT_THROW((ap::link_supervisor{cfg, ap::rate_table().back()}),
                 std::invalid_argument);
    cfg = fast_supervisor();
    cfg.watchdog_probes = 0;
    EXPECT_THROW((ap::link_supervisor{cfg, ap::rate_table().back()}),
                 std::invalid_argument);
    cfg = fast_supervisor();
    cfg.reacquisition_time_s = -1e-3;
    EXPECT_THROW((ap::link_supervisor{cfg, ap::rate_table().back()}),
                 std::invalid_argument);
}

TEST(run_supervised, delivers_everything_on_a_clean_link)
{
    const auto cfg = fast_supervisor();
    scripted_link link; // no outage window
    const auto result =
        ap::run_supervised(cfg, ap::rate_table().back(), link.driver(cfg), 40, 192.0);
    EXPECT_EQ(result.frames_delivered, 40u);
    EXPECT_DOUBLE_EQ(result.delivery_ratio(), 1.0);
    EXPECT_EQ(result.recovery.outages, 0u);
    EXPECT_EQ(result.recovery.probes, 0u);
    EXPECT_GT(result.goodput_bps, 0.0);
}

TEST(run_supervised, rides_through_an_outage_and_reports_recovery_metrics)
{
    auto cfg = fast_supervisor();
    cfg.arq.max_retries = 30; // generous cap: nothing may be dropped here
    scripted_link link;
    link.outage_start_s = 1e-3;
    link.outage_end_s = 4e-3;
    const auto result =
        ap::run_supervised(cfg, ap::rate_table().back(), link.driver(cfg), 60, 192.0);
    EXPECT_EQ(result.recovery.outages, 1u);
    EXPECT_EQ(result.recovery.recoveries, 1u);
    EXPECT_GT(result.recovery.probes, 0u);
    EXPECT_GT(result.recovery.mean_detect_s(), 0.0);
    EXPECT_GT(result.recovery.mean_recover_s(), 0.0);
    EXPECT_EQ(result.frames_delivered, 60u); // nothing dropped: probes saved it
}

TEST(run_supervised, beats_plain_arq_on_an_outage_prone_link)
{
    // Synthetic acceptance check mirroring the R21 cliff: the link loses
    // lock at 1 ms (the scripted LO step) and stays down until someone
    // re-runs acquisition. The supervisor's watchdog does; plain ARQ never
    // does, so it retries blind forever and its goodput collapses.
    const auto cfg = fast_supervisor();
    scripted_link supervised;
    supervised.lock_lost_at_s = 1e-3;
    const auto sup = ap::run_supervised(cfg, ap::rate_table().back(),
                                        supervised.driver(cfg), 80, 192.0);
    EXPECT_GT(supervised.reacquisitions, 0u);

    ap::supervisor_config off = cfg;
    off.outage_streak = static_cast<std::size_t>(-1);
    off.arq.max_retries = 8;
    off.arq.initial_backoff_s = 0.0;
    off.rate_fallback = false;
    scripted_link plain;
    plain.lock_lost_at_s = 1e-3;
    const auto base =
        ap::run_supervised(off, ap::rate_table().back(), plain.driver(off), 80, 192.0);
    EXPECT_EQ(plain.reacquisitions, 0u);

    EXPECT_GT(sup.goodput_bps, base.goodput_bps);
    EXPECT_GT(sup.frames_delivered, base.frames_delivered);
    EXPECT_EQ(base.recovery.outages, 0u); // supervision really was off
}

TEST(multitag_faults, carrier_dropout_blanks_the_capture_and_replays_identically)
{
    const std::vector<core::tag_descriptor> tags{{0, 2.0, 0.0}, {1, 2.5, 0.0}};
    const auto bursts_for = [](const core::multitag_simulator& sim) {
        const double slot = sim.burst_duration_s(24) + 20e-6;
        return std::vector<core::tag_burst>{{0, phy::random_bytes(24, 1), 0.0},
                                            {1, phy::random_bytes(24, 2), slot}};
    };

    core::multitag_simulator clean(core::fast_scenario(), tags);
    const auto reference = clean.run(bursts_for(clean));
    ASSERT_EQ(reference.size(), 2u);
    EXPECT_TRUE(reference[0].delivered);
    EXPECT_TRUE(reference[1].delivered);

    // Dropout-only schedule, dense and long enough that the first event is
    // all but guaranteed inside the capture — asserted below, not assumed.
    fault::fault_schedule::config sched;
    sched.horizon_s = 20e-3;
    sched.event_rate_hz = 20000.0;
    sched.blockage_weight = 0.0;
    sched.lo_step_weight = 0.0;
    sched.interferer_weight = 0.0;
    sched.brownout_weight = 0.0;
    sched.mean_duration_s = 10e-3;
    sched.min_duration_s = 10e-3;
    const fault::fault_schedule schedule(sched, 3);
    {
        core::multitag_simulator probe(core::fast_scenario(), tags);
        ASSERT_FALSE(schedule.active(0.0, probe.burst_duration_s(24)).empty());
    }

    const auto run_faulted = [&] {
        core::multitag_simulator sim(core::fast_scenario(), tags);
        fault::fault_injector injector{schedule};
        sim.attach_fault_injector(&injector);
        return sim.run(bursts_for(sim));
    };
    const auto a = run_faulted();
    ASSERT_EQ(a.size(), 2u);
    // A 60 dB carrier collapse takes the whole capture down with it.
    EXPECT_FALSE(a[0].delivered);
    EXPECT_FALSE(a[1].delivered);

    const auto b = run_faulted();
    ASSERT_EQ(b.size(), 2u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].frame_found, b[i].frame_found);
        EXPECT_EQ(a[i].delivered, b[i].delivered);
        EXPECT_DOUBLE_EQ(a[i].snr_db, b[i].snr_db);
    }
}

TEST(run_supervised, missing_callbacks_throw)
{
    ap::link_driver driver;
    EXPECT_THROW((void)ap::run_supervised(fast_supervisor(), ap::rate_table().back(),
                                          driver, 1, 192.0),
                 std::invalid_argument);
}
