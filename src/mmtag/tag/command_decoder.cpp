#include "mmtag/tag/command_decoder.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::tag {

command_decoder::command_decoder(const config& cfg) : cfg_(cfg)
{
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("command_decoder: fs <= 0");
    if (cfg.unit_s <= 0.0) throw std::invalid_argument("command_decoder: unit <= 0");
    if (!(cfg.threshold_fraction > 0.0 && cfg.threshold_fraction < 1.0)) {
        throw std::invalid_argument("command_decoder: threshold fraction in (0, 1)");
    }
    unit_samples_ = static_cast<std::size_t>(std::round(cfg.unit_s * cfg.sample_rate_hz));
    if (unit_samples_ < 4) throw std::invalid_argument("command_decoder: unit too short");
}

std::vector<command_decoder::run> command_decoder::slice(
    std::span<const double> envelope) const
{
    std::vector<run> runs;
    if (envelope.empty()) return runs;
    // Adaptive slicer: threshold between the observed extremes.
    const auto [lo_it, hi_it] = std::minmax_element(envelope.begin(), envelope.end());
    const double lo = *lo_it;
    const double hi = *hi_it;
    if (hi - lo < 1e-12) return runs; // no modulation present
    const double threshold = lo + cfg_.threshold_fraction * (hi - lo);

    bool current = envelope[0] >= threshold;
    std::size_t length = 0;
    for (double v : envelope) {
        const bool high = v >= threshold;
        if (high == current) {
            ++length;
        } else {
            runs.push_back({current, length});
            current = high;
            length = 1;
        }
    }
    runs.push_back({current, length});
    return runs;
}

double command_decoder::units(std::size_t samples) const
{
    return static_cast<double>(samples) / static_cast<double>(unit_samples_);
}

std::optional<command_decoder::decoded> command_decoder::decode(
    std::span<const double> envelope) const
{
    const std::vector<run> runs = slice(envelope);

    // Find the delimiter: a low run of ~3 units followed by high ~1, low ~1.
    for (std::size_t i = 0; i + 2 < runs.size(); ++i) {
        if (runs[i].high || std::abs(units(runs[i].samples) - 3.0) > 0.6) continue;
        if (!runs[i + 1].high || std::abs(units(runs[i + 1].samples) - 1.0) > 0.4) continue;
        if (runs[i + 2].high || std::abs(units(runs[i + 2].samples) - 1.0) > 0.4) continue;

        // Bits follow: high of ~1 (=0) or ~2 (=1) units, each with a 1-unit gap.
        std::vector<std::uint8_t> bits;
        std::size_t cursor = i + 3;
        std::size_t consumed_samples = 0;
        for (std::size_t r = 0; r <= i + 2; ++r) consumed_samples += runs[r].samples;
        while (bits.size() < 40 && cursor + 1 < runs.size() + 1) {
            if (cursor >= runs.size() || !runs[cursor].high) break;
            const double high_units = units(runs[cursor].samples);
            if (std::abs(high_units - 1.0) < 0.4) bits.push_back(0);
            else if (std::abs(high_units - 2.0) < 0.4) bits.push_back(1);
            else break;
            consumed_samples += runs[cursor].samples;
            ++cursor;
            if (bits.size() < 40) {
                if (cursor >= runs.size() || runs[cursor].high ||
                    std::abs(units(runs[cursor].samples) - 1.0) > 0.4) {
                    break;
                }
                consumed_samples += runs[cursor].samples;
                ++cursor;
            }
        }
        if (bits.size() != 40) continue; // try the next delimiter candidate

        const auto command = ap::parse_command_bits(bits);
        if (!command) continue;
        decoded result;
        result.command = *command;
        result.end_sample = consumed_samples;
        return result;
    }
    return std::nullopt;
}

} // namespace mmtag::tag
