#include <gtest/gtest.h>

#include <random>

#include "mmtag/channel/atmosphere.hpp"
#include "mmtag/channel/backscatter_channel.hpp"
#include "mmtag/channel/fading.hpp"
#include "mmtag/channel/path_loss.hpp"
#include "mmtag/dsp/estimators.hpp"

namespace mmtag::channel {
namespace {

TEST(path_loss, friis_known_value)
{
    // FSPL(1 m, 24 GHz) = 20 log10(4 pi / lambda) ~= 60.05 dB.
    EXPECT_NEAR(free_space_path_loss_db(1.0, 24e9), 60.05, 0.05);
    // +20 dB per decade of distance.
    EXPECT_NEAR(free_space_path_loss_db(10.0, 24e9) - free_space_path_loss_db(1.0, 24e9),
                20.0, 1e-9);
}

TEST(path_loss, log_distance_exponent)
{
    const double d1 = log_distance_path_loss_db(2.0, 24e9, 3.0);
    const double d2 = log_distance_path_loss_db(20.0, 24e9, 3.0);
    EXPECT_NEAR(d2 - d1, 30.0, 1e-9);
}

TEST(path_loss, backscatter_follows_fourth_power)
{
    const double p2 = backscatter_received_power(1.0, 100.0, 100.0, 60.0, 2.0, 24e9);
    const double p4 = backscatter_received_power(1.0, 100.0, 100.0, 60.0, 4.0, 24e9);
    EXPECT_NEAR(p2 / p4, 16.0, 1e-9);
}

TEST(path_loss, one_way_round_trip_consistency)
{
    // Backscatter power = one-way power * one-way loss * Gb / Grx_tag.
    const double tx_gain = from_db(20.0);
    const double rx_gain = from_db(20.0);
    const double backscatter_gain = from_db(18.0);
    const double d = 3.0;
    const double f = 24e9;
    const double one_way = one_way_received_power(1.0, tx_gain, 1.0, d, f);
    const double two_way = backscatter_received_power(1.0, tx_gain, rx_gain,
                                                      backscatter_gain, d, f);
    EXPECT_NEAR(two_way,
                one_way * backscatter_gain * rx_gain / free_space_path_loss(d, f), 1e-20);
}

TEST(path_loss, max_range_inverts_power)
{
    const double range = backscatter_max_range(1.0, 100.0, 100.0, 60.0, 24e9, 1e-12);
    const double power = backscatter_received_power(1.0, 100.0, 100.0, 60.0, range, 24e9);
    EXPECT_NEAR(power, 1e-12, 1e-16);
}

TEST(atmosphere, oxygen_peak_at_60_ghz)
{
    EXPECT_GT(gaseous_attenuation_db_per_km(60e9), 10.0);
    EXPECT_LT(gaseous_attenuation_db_per_km(24e9), 0.3);
    EXPECT_LT(gaseous_attenuation_db_per_km(24e9), gaseous_attenuation_db_per_km(60e9) / 30.0);
}

TEST(atmosphere, rain_monotone_in_rate)
{
    const double light = rain_attenuation_db_per_km(28e9, 5.0);
    const double heavy = rain_attenuation_db_per_km(28e9, 50.0);
    EXPECT_GT(heavy, light * 2.0);
    EXPECT_DOUBLE_EQ(rain_attenuation_db_per_km(28e9, 0.0), 0.0);
}

TEST(atmosphere, negligible_indoors_at_24_ghz)
{
    // 10 m at 24 GHz: well under 0.01 dB.
    EXPECT_LT(atmospheric_loss_db(10.0, 24.125e9), 0.01);
}

TEST(fading, rician_high_k_is_nearly_los)
{
    std::mt19937_64 rng(3);
    dsp::running_stats magnitude;
    for (int i = 0; i < 2000; ++i) magnitude.add(std::abs(rician_coefficient(30.0, rng)));
    EXPECT_NEAR(magnitude.mean(), 1.0, 0.02);
    EXPECT_LT(magnitude.standard_deviation(), 0.05);
}

TEST(fading, rician_mean_power_is_unity)
{
    std::mt19937_64 rng(4);
    double power = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) power += std::norm(rician_coefficient(3.0, rng));
    EXPECT_NEAR(power / n, 1.0, 0.03);
}

TEST(fading, multipath_applies_delays)
{
    multipath_channel::config cfg;
    cfg.sample_rate_hz = 1e9;
    cfg.k_factor_db = 100.0; // deterministic LOS tap
    cfg.taps = {{0, 1.0, 0.0}, {5, 0.25, 0.0}};
    multipath_channel chan(cfg, 5);
    cvec impulse(1, cf64{1.0, 0.0});
    const cvec response = chan.apply(impulse);
    ASSERT_EQ(response.size(), 6u);
    EXPECT_GT(std::abs(response[0]), 0.5);
    EXPECT_GT(std::abs(response[5]), 0.1);
    for (std::size_t i = 1; i < 5; ++i) EXPECT_NEAR(std::abs(response[i]), 0.0, 1e-12);
}

TEST(fading, delay_spread_of_known_profile)
{
    multipath_channel::config cfg;
    cfg.sample_rate_hz = 1e9;
    cfg.taps = {{0, 1.0, 0.0}, {10, 1.0, 0.0}};
    multipath_channel chan(cfg, 6);
    // Two equal taps 10 ns apart: rms spread = 5 ns.
    EXPECT_NEAR(chan.rms_delay_spread_s(), 5e-9, 1e-12);
}

TEST(fading, indoor_profile_sane)
{
    const auto cfg = indoor_los_profile(1e9);
    EXPECT_EQ(cfg.taps.size(), 3u);
    EXPECT_GT(cfg.taps[0].power, cfg.taps[1].power);
    EXPECT_GT(cfg.taps[1].power, cfg.taps[2].power);
}

class backscatter_channel_fixture : public ::testing::Test {
protected:
    static backscatter_channel::config base_config()
    {
        backscatter_channel::config cfg;
        cfg.sample_rate_hz = 250e6;
        cfg.distance_m = 2.0;
        cfg.tag_backscatter_gain_db = 18.0;
        cfg.tag_aperture_gain_db = 9.0;
        cfg.tx_leakage_db = -40.0;
        return cfg;
    }
};

TEST_F(backscatter_channel_fixture, delays_match_geometry)
{
    backscatter_channel chan(base_config());
    // 2 m -> 6.67 ns one way -> 1.67 samples at 250 MS/s -> rounds to 2.
    EXPECT_EQ(chan.one_way_delay_samples(), 2u);
}

TEST_F(backscatter_channel_fixture, tag_path_power_matches_radar_equation)
{
    const auto cfg = base_config();
    backscatter_channel chan(cfg);
    const double expected = backscatter_received_power(
        1.0, from_db(cfg.ap_tx_gain_dbi), from_db(cfg.ap_rx_gain_dbi),
        from_db(cfg.tag_backscatter_gain_db), cfg.distance_m, cfg.frequency_hz);
    EXPECT_NEAR(chan.tag_path_power(1.0) / expected, 1.0, 0.001);
}

TEST_F(backscatter_channel_fixture, incident_power_matches_friis)
{
    const auto cfg = base_config();
    backscatter_channel chan(cfg);
    const double expected = one_way_received_power(
        1.0, from_db(cfg.ap_tx_gain_dbi), from_db(cfg.tag_aperture_gain_db),
        cfg.distance_m, cfg.frequency_hz);
    EXPECT_NEAR(chan.tag_incident_power(1.0) / expected, 1.0, 0.001);
}

TEST_F(backscatter_channel_fixture, unmodulated_tag_gives_pure_dc_baseband)
{
    backscatter_channel chan(base_config());
    const cvec tx(1000, cf64{1.0, 0.0});
    const cvec gamma(1000, cf64{-1.0, 0.0}); // static reflective
    const cvec rx = chan.ap_received(tx, gamma);
    // After the transient, output is constant (leakage + static tag return).
    for (std::size_t i = 10; i < rx.size(); ++i) {
        EXPECT_NEAR(std::abs(rx[i] - rx[9]), 0.0, 1e-12);
    }
}

TEST_F(backscatter_channel_fixture, modulated_tag_reaches_receiver)
{
    backscatter_channel chan(base_config());
    const std::size_t n = 1000;
    const cvec tx(n, cf64{1.0, 0.0});
    cvec gamma(n);
    for (std::size_t i = 0; i < n; ++i) gamma[i] = (i / 50) % 2 == 0 ? cf64{-1.0, 0.0}
                                                                     : cf64{1.0, 0.0};
    const cvec rx = chan.ap_received(tx, gamma);
    // The modulation must appear: rx is not constant.
    double max_dev = 0.0;
    for (std::size_t i = 10; i < n; ++i) max_dev = std::max(max_dev, std::abs(rx[i] - rx[9]));
    const double tag_amplitude = std::sqrt(chan.tag_path_power(1.0));
    EXPECT_NEAR(max_dev, 2.0 * tag_amplitude, 0.2 * tag_amplitude);
}

TEST_F(backscatter_channel_fixture, clutter_adds_static_interference)
{
    auto cfg = base_config();
    const backscatter_channel clean(cfg);
    cfg.clutter = {{3.0, 1.0}};
    const backscatter_channel cluttered(cfg);
    EXPECT_GT(cluttered.static_interference_power(1.0), clean.static_interference_power(1.0));
}

TEST_F(backscatter_channel_fixture, validation)
{
    auto cfg = base_config();
    cfg.distance_m = 0.0;
    EXPECT_THROW(backscatter_channel{cfg}, std::invalid_argument);
    cfg = base_config();
    cfg.clutter = {{-1.0, 1.0}};
    EXPECT_THROW(backscatter_channel{cfg}, std::invalid_argument);
}

} // namespace
} // namespace mmtag::channel
