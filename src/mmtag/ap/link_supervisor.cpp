#include "mmtag/ap/link_supervisor.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/obs/trace.hpp"

namespace mmtag::ap {

namespace {

// State-transition trace marker with the link-time context an outage
// post-mortem needs.
void trace_transition(const char* name, double now_s)
{
    if (!obs::tracer::active()) return;
    char args[48];
    std::snprintf(args, sizeof args, "{\"link_s\": %.6f}", now_s);
    obs::trace_instant(name, "supervisor", args);
}

} // namespace

double recovery_metrics::mean_detect_s() const
{
    if (outages == 0) return 0.0;
    return detect_total_s / static_cast<double>(outages);
}

double recovery_metrics::mean_recover_s() const
{
    if (recoveries == 0) return 0.0;
    return recover_total_s / static_cast<double>(recoveries);
}

void recovery_metrics::merge(const recovery_metrics& other)
{
    outages += other.outages;
    recoveries += other.recoveries;
    reacquisitions += other.reacquisitions;
    transmissions += other.transmissions;
    probes += other.probes;
    detect_total_s += other.detect_total_s;
    detect_max_s = std::max(detect_max_s, other.detect_max_s);
    recover_total_s += other.recover_total_s;
    recover_max_s = std::max(recover_max_s, other.recover_max_s);
}

link_supervisor::link_supervisor(const supervisor_config& cfg, rate_option nominal_rate)
    : cfg_(cfg),
      arq_(cfg.arq),
      adapter_(cfg.margin_db),
      nominal_rate_(nominal_rate),
      rate_(nominal_rate)
{
    if (cfg.outage_streak == 0) {
        throw std::invalid_argument("link_supervisor: outage_streak must be >= 1");
    }
    if (cfg.watchdog_probes == 0) {
        throw std::invalid_argument("link_supervisor: watchdog_probes must be >= 1");
    }
    if (cfg.reacquisition_time_s < 0.0) {
        throw std::invalid_argument("link_supervisor: reacquisition time must be >= 0");
    }
}

link_supervisor::plan link_supervisor::next_attempt() const
{
    plan p;
    p.rate = rate_;
    if (state_ == supervisor_state::outage) {
        if (cfg_.rate_fallback) p.rate = rate_table().front();
        // Probe instead of retransmitting: a full data frame sent into an
        // outage is airtime lost, so test the link with a short frame first.
        p.probe = true;
        // Backoff counts from the outage declaration: pre-outage retries go
        // out immediately (plain ARQ), so a short fade costs nothing extra.
        p.wait_s = arq_.backoff_delay_s(
            std::min<std::size_t>(fail_streak_ + 1 - cfg_.outage_streak, 32));
        p.reacquire = probes_since_reacquire_ >= cfg_.watchdog_probes;
    }
    return p;
}

void link_supervisor::record(bool delivered, double snr_db, double now_s, bool was_probe)
{
    if (was_probe) {
        ++metrics_.probes;
        if (cfg_.metrics != nullptr) cfg_.metrics->get_counter("supervisor/probes").add();
    } else {
        ++metrics_.transmissions;
        if (cfg_.metrics != nullptr) {
            cfg_.metrics->get_counter("supervisor/transmissions").add();
        }
    }
    if (delivered) {
        if (state_ == supervisor_state::outage) {
            ++metrics_.recoveries;
            const double recover = std::max(0.0, now_s - declared_s_);
            metrics_.recover_total_s += recover;
            metrics_.recover_max_s = std::max(metrics_.recover_max_s, recover);
            if (cfg_.metrics != nullptr) {
                cfg_.metrics->get_counter("supervisor/recoveries").add();
                cfg_.metrics->get_gauge("supervisor/recover_s").set(recover);
            }
            trace_transition("supervisor.recovered", now_s);
        }
        state_ = supervisor_state::nominal;
        fail_streak_ = 0;
        probes_since_reacquire_ = 0;
        if (cfg_.rate_fallback) {
            rate_option adapted = adapter_.select_smoothed(snr_db);
            // Ramp back up, but never above the configured nominal rate.
            if (adapted.efficiency() > nominal_rate_.efficiency()) {
                adapted = nominal_rate_;
            }
            rate_ = adapted;
        }
        return;
    }

    if (fail_streak_ == 0) first_fail_s_ = now_s;
    // Saturate instead of wrapping: a wrap would reset the streak to zero
    // and silently re-arm outage detection mid-outage.
    if (fail_streak_ != std::numeric_limits<std::size_t>::max()) ++fail_streak_;
    if (state_ == supervisor_state::outage) {
        ++probes_since_reacquire_;
    } else if (fail_streak_ >= cfg_.outage_streak) {
        state_ = supervisor_state::outage;
        ++metrics_.outages;
        declared_s_ = now_s;
        const double detect = std::max(0.0, now_s - first_fail_s_);
        metrics_.detect_total_s += detect;
        metrics_.detect_max_s = std::max(metrics_.detect_max_s, detect);
        probes_since_reacquire_ = 0;
        if (cfg_.metrics != nullptr) {
            cfg_.metrics->get_counter("supervisor/outages").add();
            cfg_.metrics->get_gauge("supervisor/detect_s").set(detect);
        }
        trace_transition("supervisor.outage", now_s);
    } else {
        if (state_ != supervisor_state::alert) {
            if (cfg_.metrics != nullptr) {
                cfg_.metrics->get_counter("supervisor/alerts").add();
            }
            trace_transition("supervisor.alert", now_s);
        }
        state_ = supervisor_state::alert;
    }
}

void link_supervisor::note_reacquisition()
{
    ++metrics_.reacquisitions;
    probes_since_reacquire_ = 0;
    if (cfg_.metrics != nullptr) {
        cfg_.metrics->get_counter("supervisor/reacquisitions").add();
    }
    trace_transition("supervisor.reacquire", 0.0);
}

double supervised_report::delivery_ratio() const
{
    if (frames_offered == 0) return 0.0;
    return static_cast<double>(frames_delivered) / static_cast<double>(frames_offered);
}

double supervised_report::goodput_retained(double fault_free_goodput_bps) const
{
    if (fault_free_goodput_bps <= 0.0) return 0.0;
    return goodput_bps / fault_free_goodput_bps;
}

void supervised_report::merge(const supervised_report& other)
{
    recovery.merge(other.recovery);
    const double delivered_bits =
        goodput_bps * elapsed_s + other.goodput_bps * other.elapsed_s;
    frames_offered += other.frames_offered;
    frames_delivered += other.frames_delivered;
    elapsed_s += other.elapsed_s;
    goodput_bps = elapsed_s > 0.0 ? delivered_bits / elapsed_s : 0.0;
}

supervised_report run_supervised(const supervisor_config& cfg,
                                 const rate_option& nominal_rate,
                                 const link_driver& driver, std::size_t frames,
                                 double payload_bits)
{
    if (!driver.transmit || !driver.now) {
        throw std::invalid_argument("run_supervised: transmit and now are required");
    }
    link_supervisor supervisor(cfg, nominal_rate);
    supervised_report report;
    const double start_s = driver.now();

    for (std::size_t f = 0; f < frames; ++f) {
        ++report.frames_offered;
        if (driver.next_frame) driver.next_frame(f);
        for (std::size_t attempt = 0; attempt < cfg.arq.max_retries; ++attempt) {
            const auto plan = supervisor.next_attempt();
            if (plan.reacquire && driver.reacquire) {
                driver.reacquire();
                supervisor.note_reacquisition();
            }
            if (plan.wait_s > 0.0 && driver.wait) driver.wait(plan.wait_s);
            const bool probing = plan.probe && static_cast<bool>(driver.probe);
            const attempt_result result =
                probing ? driver.probe(plan.rate) : driver.transmit(plan.rate);
            supervisor.record(result.delivered, result.snr_db, driver.now(), probing);
            // A successful probe proves the link is back but carries no
            // payload; the data frame goes out on the next attempt at the
            // freshly adapted rate.
            if (!probing && result.delivered) {
                ++report.frames_delivered;
                break;
            }
        }
    }

    report.recovery = supervisor.metrics();
    report.elapsed_s = driver.now() - start_s;
    report.goodput_bps =
        report.elapsed_s > 0.0
            ? static_cast<double>(report.frames_delivered) * payload_bits / report.elapsed_s
            : 0.0;
    return report;
}

} // namespace mmtag::ap
