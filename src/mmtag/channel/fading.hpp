// Small-scale fading: Rician/Rayleigh block fading and a tapped-delay-line
// multipath channel with optional Doppler-driven tap rotation.
#pragma once

#include <cstddef>
#include <random>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::channel {

/// Draws one Rician block-fading field coefficient with mean power 1.
/// `k_factor_db` is the LOS-to-scatter power ratio; k -> -inf gives Rayleigh,
/// k -> +inf gives a pure LOS (unit) coefficient.
[[nodiscard]] cf64 rician_coefficient(double k_factor_db, std::mt19937_64& rng);

/// Multipath tap description: delay in samples, mean power (linear), and a
/// Doppler frequency that rotates the tap phase over time.
struct multipath_tap {
    std::size_t delay_samples = 0;
    double power = 1.0;
    double doppler_hz = 0.0;
};

/// Tapped-delay-line channel. Tap coefficients are drawn once (Rician on the
/// first tap, Rayleigh on echoes) and rotate at their Doppler rates.
class multipath_channel {
public:
    struct config {
        std::vector<multipath_tap> taps{{0, 1.0, 0.0}};
        double k_factor_db = 15.0; ///< Rician K of the first (LOS) tap
        double sample_rate_hz = 1e9;
    };

    multipath_channel(const config& cfg, std::uint64_t seed);

    /// Convolves input with the (time-varying) channel impulse response.
    [[nodiscard]] cvec apply(std::span<const cf64> input);

    /// Current tap coefficients, for inspection/equalizer benchmarks.
    [[nodiscard]] const cvec& tap_coefficients() const { return coefficients_; }

    /// RMS delay spread of the configured power-delay profile [s].
    [[nodiscard]] double rms_delay_spread_s() const;

private:
    config cfg_;
    cvec coefficients_;
    double time_s_ = 0.0;
};

/// Typical indoor-lab profile at mmWave: strong LOS plus two weak echoes
/// (floor/wall bounce) a few ns out.
[[nodiscard]] multipath_channel::config indoor_los_profile(double sample_rate_hz,
                                                           double k_factor_db = 15.0);

} // namespace mmtag::channel
