#include "mmtag/dsp/nco.hpp"

namespace mmtag::dsp {

nco::nco(double frequency_norm, double initial_phase)
    : frequency_(frequency_norm), phase_(wrap_phase(initial_phase))
{
}

void nco::set_frequency(double frequency_norm)
{
    frequency_ = frequency_norm;
}

void nco::adjust_phase(double delta)
{
    phase_ = wrap_phase(phase_ + delta);
}

cf64 nco::step()
{
    const cf64 sample = std::polar(1.0, phase_);
    phase_ = wrap_phase(phase_ + two_pi * frequency_);
    return sample;
}

cvec nco::generate(std::size_t count)
{
    cvec out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(step());
    return out;
}

cvec nco::mix(std::span<const cf64> input)
{
    cvec out;
    out.reserve(input.size());
    for (cf64 x : input) out.push_back(x * step());
    return out;
}

cvec frequency_shift(std::span<const cf64> input, double frequency_norm, double initial_phase)
{
    nco oscillator(frequency_norm, initial_phase);
    return oscillator.mix(input);
}

} // namespace mmtag::dsp
