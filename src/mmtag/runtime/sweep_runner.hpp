// The Monte-Carlo sweep runner: fans (sweep point x trial) work out across
// the shard-based thread pool and folds the per-trial aggregates back
// together with a deterministic ordered reduction.
//
// Determinism contract:
//   * every trial runs from a counter-based seed (trial_rng), so its result
//     is independent of scheduling;
//   * per-trial results land in pre-allocated slots (no shared accumulator);
//   * the reduction folds trials strictly in (point, trial) order on the
//     calling thread.
// Together these make the aggregates bit-identical for any --jobs value —
// the regression test asserts byte-identical JSON between jobs=1 and jobs=8.
//
// The Aggregate type must be default-constructible and provide
// merge(const Aggregate&) — core::error_counter and core::link_report do —
// or a custom merge functor can be supplied.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mmtag/obs/trace.hpp"
#include "mmtag/runtime/thread_pool.hpp"
#include "mmtag/runtime/trial_rng.hpp"

namespace mmtag::runtime {

struct sweep_options {
    std::size_t jobs = 1;            ///< executors; 0 = hardware_concurrency
    std::uint64_t base_seed = 1;     ///< root of every trial's RNG stream
    std::size_t trials_per_point = 1;
    /// Called after every completed trial with (trials_done, trials_total).
    /// Runs on worker threads — must be thread-safe. Optional.
    std::function<void(std::size_t, std::size_t)> progress;
};

template <typename Aggregate>
struct sweep_point_outcome {
    Aggregate aggregate{};   ///< ordered fold of the point's trials
    double busy_s = 0.0;     ///< summed per-trial execution time (not wall)
};

template <typename Aggregate>
struct sweep_outcome {
    std::vector<sweep_point_outcome<Aggregate>> points;
    double wall_s = 0.0;     ///< end-to-end sweep wall-clock
    std::size_t jobs = 1;    ///< executors actually used
    std::size_t trials = 0;  ///< points x trials_per_point

    [[nodiscard]] double trials_per_s() const
    {
        return wall_s > 0.0 ? static_cast<double>(trials) / wall_s : 0.0;
    }
};

/// One-line human summary of a finished sweep: wall time, jobs, trial rate.
[[nodiscard]] std::string summary_line(std::size_t points, std::size_t trials,
                                       double wall_s, std::size_t jobs);

/// A ready-made thread-safe progress callback writing to `stream`. In tty
/// mode it rewrites one line ("sweep: 42/96 trials") and terminates it with
/// a newline on completion; otherwise it prints one plain newline-terminated
/// line per completed decile, so CI logs and trace files never see '\r'
/// frames.
[[nodiscard]] std::function<void(std::size_t, std::size_t)>
progress_printer(std::FILE* stream, bool tty);

/// progress_printer on stderr, tty-detected via isatty.
[[nodiscard]] std::function<void(std::size_t, std::size_t)> stderr_progress();

/// Runs trial(point, trial_index, seed) for every point in [0, point_count)
/// and every trial in [0, trials_per_point), reduced per point with
/// merge(into, from) in (point, trial) order.
template <typename Aggregate, typename TrialFn, typename MergeFn>
sweep_outcome<Aggregate> run_sweep(const sweep_options& options, std::size_t point_count,
                                   TrialFn&& trial, MergeFn&& merge)
{
    if (options.trials_per_point == 0) {
        throw std::invalid_argument("run_sweep: trials_per_point must be >= 1");
    }
    const auto sweep_start = std::chrono::steady_clock::now();

    thread_pool pool(options.jobs);
    const std::size_t trials = options.trials_per_point;
    const std::size_t total = point_count * trials;
    std::vector<Aggregate> slots(total);
    std::vector<double> slot_s(total, 0.0);
    std::atomic<std::size_t> completed{0};

    pool.parallel_for(total, [&](std::size_t index) {
        const std::size_t point = index / trials;
        const std::size_t t = index % trials;
        const double trace_start_us = obs::tracer::active() ? obs::tracer::now_us() : -1.0;
        const auto trial_start = std::chrono::steady_clock::now();
        slots[index] = trial(point, t, trial_seed(options.base_seed, point, t));
        slot_s[index] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - trial_start)
                .count();
        if (trace_start_us >= 0.0) {
            char args[64];
            std::snprintf(args, sizeof args, "{\"point\": %zu, \"trial\": %zu}", point, t);
            obs::trace_emit("sweep.trial", "sweep", 'X', trace_start_us,
                            slot_s[index] * 1e6, args);
        }
        if (options.progress) {
            const std::size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
            options.progress(done, total);
        }
    });

    sweep_outcome<Aggregate> outcome;
    outcome.jobs = pool.jobs();
    outcome.trials = total;
    outcome.points.resize(point_count);
    for (std::size_t point = 0; point < point_count; ++point) {
        if (obs::tracer::active()) {
            char args[48];
            std::snprintf(args, sizeof args, "{\"point\": %zu, \"trials\": %zu}", point,
                          trials);
            obs::trace_instant("sweep.point", "sweep", args);
        }
        auto& slot = outcome.points[point];
        slot.aggregate = std::move(slots[point * trials]);
        slot.busy_s = slot_s[point * trials];
        for (std::size_t t = 1; t < trials; ++t) {
            merge(slot.aggregate, slots[point * trials + t]);
            slot.busy_s += slot_s[point * trials + t];
        }
    }
    outcome.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
            .count();
    return outcome;
}

/// Convenience overload: Aggregate provides merge(const Aggregate&).
template <typename Aggregate, typename TrialFn>
sweep_outcome<Aggregate> run_sweep(const sweep_options& options, std::size_t point_count,
                                   TrialFn&& trial)
{
    return run_sweep<Aggregate>(options, point_count, std::forward<TrialFn>(trial),
                                [](Aggregate& into, const Aggregate& from) {
                                    into.merge(from);
                                });
}

} // namespace mmtag::runtime
