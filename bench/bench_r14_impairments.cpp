// R14 — Impairment sensitivity microbenchmark.
// Sweeps the receiver/front-end non-idealities one at a time at the default
// 2 m operating point: ADC resolution (dynamic range vs the static self-
// interference), LO phase-noise linewidth, and LNA noise figure. Expected
// shape: the link is ADC-limited below ~12 bits, phase-noise-limited only
// for very poor synthesizers (self-coherent operation cancels common phase
// noise), and degrades dB-for-dB with noise figure at long range.
#include "bench_util.hpp"
#include "mmtag/core/link_simulator.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R14", "sensitivity to ADC bits, LO linewidth, and noise figure", csv);

    if (!csv) std::printf("ADC resolution (static interference / tag ~ 30 dB):\n");
    bench::table adc({"adc_bits", "snr_dB", "per"}, csv);
    for (unsigned bits : {6u, 8u, 10u, 12u, 14u, 16u}) {
        auto cfg = bench::bench_scenario();
        cfg.receiver.adc.bits = bits;
        core::link_simulator sim(cfg);
        const auto report = sim.run_trials(4, 32);
        adc.add_row({std::to_string(bits), bench::fmt("%.1f", report.mean_snr_db),
                     bench::fmt("%.2f", report.per)});
    }
    adc.print();

    if (!csv) std::printf("\nLO phase-noise linewidth (self-coherent RX):\n");
    bench::table pn({"linewidth_Hz", "snr_dB", "per"}, csv);
    for (double linewidth : {0.0, 100.0, 1e3, 10e3, 100e3, 1e6}) {
        auto cfg = bench::bench_scenario();
        cfg.transmitter.lo_linewidth_hz = linewidth;
        core::link_simulator sim(cfg);
        const auto report = sim.run_trials(4, 32);
        pn.add_row({bench::fmt("%.0f", linewidth), bench::fmt("%.1f", report.mean_snr_db),
                    bench::fmt("%.2f", report.per)});
    }
    pn.print();

    if (!csv) std::printf("\nLNA noise figure at 6 m (thermal-limited range):\n");
    bench::table nf({"nf_dB", "snr_dB", "per"}, csv);
    for (double noise_figure : {1.0, 3.5, 6.0, 9.0, 12.0}) {
        auto cfg = bench::bench_scenario();
        cfg.distance_m = 6.0;
        cfg.receiver.lna.noise_figure_db = noise_figure;
        core::link_simulator sim(cfg);
        const auto report = sim.run_trials(4, 32);
        nf.add_row({bench::fmt("%.1f", noise_figure), bench::fmt("%.1f", report.mean_snr_db),
                    bench::fmt("%.2f", report.per)});
    }
    nf.print();
    return 0;
}
