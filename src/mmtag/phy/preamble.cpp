#include "mmtag/phy/preamble.hpp"

#include "mmtag/dsp/pn_sequence.hpp"

namespace mmtag::phy {

cvec make_preamble(const preamble_layout& layout)
{
    cvec symbols;
    symbols.reserve(layout.total_symbols());
    for (std::size_t i = 0; i < layout.agc_symbols; ++i) {
        symbols.emplace_back(i % 2 == 0 ? 1.0 : -1.0, 0.0);
    }
    const cvec sync = sync_word(layout);
    symbols.insert(symbols.end(), sync.begin(), sync.end());
    return symbols;
}

cvec sync_word(const preamble_layout& layout)
{
    const auto bits = dsp::m_sequence(static_cast<std::uint32_t>(layout.sync_degree));
    return dsp::bits_to_bpsk(bits);
}

std::optional<sync_result> detect_preamble(std::span<const cf64> symbols,
                                           const preamble_layout& layout,
                                           double min_peak_to_sidelobe)
{
    const cvec reference = sync_word(layout);
    if (symbols.size() < reference.size()) return std::nullopt;
    const rvec correlation = dsp::correlate_magnitude(symbols, reference);
    double quality = 0.0;
    const std::size_t sync_start = dsp::correlation_peak(correlation, &quality);
    if (quality < min_peak_to_sidelobe) return std::nullopt;

    // Complex gain over the sync word: least squares against the reference.
    cf64 cross{};
    double reference_power = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        cross += symbols[sync_start + i] * std::conj(reference[i]);
        reference_power += std::norm(reference[i]);
    }
    sync_result result;
    result.frame_start = sync_start + reference.size();
    result.peak_to_sidelobe = quality;
    result.channel_gain = cross / reference_power;
    return result;
}

} // namespace mmtag::phy
