#include "mmtag/ap/receiver.hpp"

#include <algorithm>
#include <stdexcept>

#include "mmtag/dsp/carrier_recovery.hpp"
#include "mmtag/dsp/estimators.hpp"
#include "mmtag/dsp/pulse_shape.hpp"
#include "mmtag/dsp/timing_recovery.hpp"
#include "mmtag/phy/preamble.hpp"
#include "mmtag/rf/oscillator.hpp"

namespace mmtag::ap {

ap_receiver::ap_receiver(const config& cfg, std::uint64_t seed)
    : cfg_(cfg),
      antenna_noise_(rf::thermal_noise_power(cfg.lna.bandwidth_hz), seed),
      lna_(cfg.lna, seed + 1),
      mixer_(cfg.mixer),
      adc_(cfg.adc),
      canceller_(cfg.canceller),
      lo_seed_(seed + 2)
{
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("ap_receiver: fs <= 0");
    if (cfg.samples_per_symbol < 2) {
        throw std::invalid_argument("ap_receiver: samples_per_symbol must be >= 2");
    }
    if (!(cfg.adc_loading > 0.0 && cfg.adc_loading <= 1.0)) {
        throw std::invalid_argument("ap_receiver: adc_loading must be in (0, 1]");
    }
}

cvec ap_receiver::front_end(std::span<const cf64> antenna, std::span<const cf64> lo,
                            double* suppression_db)
{
    if (antenna.size() != lo.size()) {
        throw std::invalid_argument("ap_receiver: antenna/lo length mismatch");
    }
    // Antenna-plane thermal noise, then the LNA (gain + excess noise).
    cvec rf = antenna_noise_.apply(antenna);
    rf = lna_.process(rf);

    // Downconversion: the transmitter's LO (self-coherent) or a separate
    // synthesizer with its own CFO/phase noise (ablation mode).
    cvec baseband;
    if (cfg_.lo == lo_mode::self_coherent) {
        baseband = mixer_.downconvert(rf, lo);
    } else {
        rf::oscillator::config lo_cfg;
        lo_cfg.sample_rate_hz = cfg_.sample_rate_hz;
        lo_cfg.frequency_offset_hz = cfg_.independent_cfo_hz;
        lo_cfg.linewidth_hz = cfg_.independent_linewidth_hz;
        rf::oscillator local(lo_cfg, lo_seed_ + ++captures_);
        const cvec local_lo = local.generate(rf.size());
        baseband = mixer_.downconvert(rf, local_lo);
    }

    // Analog gain scales the composite signal into the ADC, then is divided
    // back out so downstream levels stay physical while quantization is
    // referred to the (interference-dominated) input.
    const double rms = dsp::rms(baseband);
    if (rms > 0.0) {
        const double scale = cfg_.adc_loading * adc_.full_scale() / rms;
        for (auto& x : baseband) x *= scale;
        baseband = adc_.sample(baseband);
        for (auto& x : baseband) x /= scale;
    }

    cvec cleaned = canceller_.process(baseband);
    if (suppression_db != nullptr) *suppression_db = canceller_.last_suppression_db();
    return cleaned;
}

reception ap_receiver::receive(std::span<const cf64> antenna, std::span<const cf64> lo)
{
    reception result;
    cvec cleaned = front_end(antenna, lo, &result.suppression_db);

    // Symbol timing: integrate-and-dump at the best-energy offset.
    const std::size_t offset = dsp::best_symbol_offset(cleaned, cfg_.samples_per_symbol);
    cvec symbols = dsp::integrate_and_dump(cleaned, cfg_.samples_per_symbol, offset);

    // Independent-LO mode leaves a rotating carrier on the symbols. Recover
    // it data-aided: find the sync word (its correlation tolerates modest
    // rotation across 63 symbols), estimate the frequency offset over the
    // known pilots, derotate the whole stream, and fall through to the
    // standard processing. Constant phase is absorbed by the gain estimate.
    if (cfg_.lo == lo_mode::independent) {
        const auto coarse =
            phy::detect_preamble(symbols, cfg_.frame.preamble, cfg_.min_sync_quality);
        if (!coarse) return result;
        const cvec pilots = phy::sync_word(cfg_.frame.preamble);
        const std::size_t pilot_start = coarse->frame_start - pilots.size();
        const std::span<const cf64> observed{symbols.data() + pilot_start, pilots.size()};
        const double cfo_per_symbol = dsp::estimate_frequency_offset(observed, pilots);
        for (std::size_t i = 0; i < symbols.size(); ++i) {
            symbols[i] *= std::polar(1.0, -two_pi * cfo_per_symbol *
                                              static_cast<double>(i));
        }
    }
    if (symbols.size() < phy::header_symbol_count + cfg_.frame.preamble.total_symbols()) {
        return result;
    }

    // Burst sync on the preamble's m-sequence.
    const auto sync =
        phy::detect_preamble(symbols, cfg_.frame.preamble, cfg_.min_sync_quality);
    if (!sync) return result;
    result.sync_quality = sync->peak_to_sidelobe;
    result.channel_gain = sync->channel_gain;
    if (std::abs(sync->channel_gain) < 1e-15) return result;

    // Normalize by the estimated complex gain.
    for (auto& s : symbols) s /= sync->channel_gain;

    // Link metrics over the sync word.
    const cvec reference = phy::sync_word(cfg_.frame.preamble);
    const std::size_t sync_start = sync->frame_start - reference.size();
    const std::span<const cf64> sync_span{symbols.data() + sync_start, reference.size()};
    result.snr_db = dsp::snr_estimate_db(sync_span, reference);
    result.evm_db = dsp::evm_db(sync_span, reference);

    // Noise variance per normalized symbol (feeds the soft demapper).
    double residual = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        residual += std::norm(sync_span[i] - reference[i]);
    }
    result.noise_variance = std::max(residual / static_cast<double>(reference.size()), 1e-12);

    // Frame decode from the header onward.
    const std::span<const cf64> frame_span{symbols.data() + sync->frame_start,
                                           symbols.size() - sync->frame_start};
    const auto decoded = phy::decode_frame(frame_span, cfg_.frame, result.noise_variance);
    if (!decoded) {
        result.symbols = std::move(symbols);
        return result;
    }
    result.frame_found = true;
    result.crc_ok = decoded->crc_ok;
    result.payload = decoded->payload;
    result.header = decoded->header;
    result.symbols = std::move(symbols);
    return result;
}

} // namespace mmtag::ap
