// Reflection-coefficient arithmetic for antenna/switch terminations: the
// microwave theory that turns "connect the port to a different stub" into a
// complex multiplier on the reflected wave.
#pragma once

#include "mmtag/common.hpp"

namespace mmtag::antenna {

/// Reflection coefficient of a load `z_load` against reference impedance
/// `z0` (default 50 ohm): Gamma = (Z - Z0) / (Z + Z0).
[[nodiscard]] cf64 reflection_coefficient(cf64 z_load, double z0 = 50.0);

/// Canonical terminations.
[[nodiscard]] cf64 gamma_short();   ///< Gamma = -1
[[nodiscard]] cf64 gamma_open();    ///< Gamma = +1
[[nodiscard]] cf64 gamma_matched(); ///< Gamma =  0

/// Input reflection coefficient looking into a lossless line of electrical
/// length `beta_length_rad` terminated in `gamma_load`:
/// Gamma_in = Gamma_L * exp(-j 2 beta l).
[[nodiscard]] cf64 line_transform(cf64 gamma_load, double beta_length_rad);

/// Same with line loss `alpha_db` (one-way) applied over the round trip.
[[nodiscard]] cf64 line_transform_lossy(cf64 gamma_load, double beta_length_rad, double alpha_db);

/// Electrical length (beta*l, radians) of a physical stub at `frequency_hz`
/// with effective relative permittivity `epsilon_eff` (microstrip ~ 5.5 on
/// high-k, ~ 2.9 on Rogers).
[[nodiscard]] double electrical_length(double physical_length_m, double frequency_hz,
                                       double epsilon_eff);

/// Fraction of incident power absorbed by a termination: 1 - |Gamma|^2.
[[nodiscard]] double absorbed_fraction(cf64 gamma);

} // namespace mmtag::antenna
