file(REMOVE_RECURSE
  "CMakeFiles/bench_r20_sampled_inventory.dir/bench_r20_sampled_inventory.cpp.o"
  "CMakeFiles/bench_r20_sampled_inventory.dir/bench_r20_sampled_inventory.cpp.o.d"
  "bench_r20_sampled_inventory"
  "bench_r20_sampled_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r20_sampled_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
