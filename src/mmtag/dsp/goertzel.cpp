#include "mmtag/dsp/goertzel.hpp"

#include <limits>
#include <stdexcept>

namespace mmtag::dsp {

goertzel::goertzel(double frequency_norm)
{
    if (!(frequency_norm >= 0.0 && frequency_norm < 1.0)) {
        throw std::invalid_argument("goertzel: frequency must be in [0, 1)");
    }
    const double omega = two_pi * frequency_norm;
    coefficient_ = 2.0 * std::cos(omega);
    phasor_ = std::polar(1.0, omega);
}

void goertzel::process(cf64 sample)
{
    const cf64 s0 = sample + coefficient_ * s1_ - s2_;
    s2_ = s1_;
    s1_ = s0;
    ++count_;
}

void goertzel::process(std::span<const cf64> samples)
{
    for (cf64 x : samples) process(x);
}

cf64 goertzel::bin() const
{
    // Standard completion step: X(f) = s1 - exp(-j w) s2, up to a phase
    // reference at the final sample.
    return s1_ - std::conj(phasor_) * s2_;
}

double goertzel::power() const
{
    if (count_ == 0) throw std::logic_error("goertzel: no samples consumed");
    const double n = static_cast<double>(count_);
    return std::norm(bin()) / (n * n);
}

void goertzel::reset()
{
    s1_ = cf64{};
    s2_ = cf64{};
    count_ = 0;
}

double goertzel_power(std::span<const cf64> samples, double frequency_norm)
{
    goertzel detector(frequency_norm);
    detector.process(samples);
    return detector.power();
}

std::size_t detect_tone(std::span<const cf64> samples,
                        std::span<const double> candidate_frequencies,
                        double threshold_power)
{
    std::size_t best = std::numeric_limits<std::size_t>::max();
    double best_power = threshold_power;
    for (std::size_t i = 0; i < candidate_frequencies.size(); ++i) {
        const double power = goertzel_power(samples, candidate_frequencies[i]);
        if (power >= best_power) {
            best_power = power;
            best = i;
        }
    }
    return best;
}

} // namespace mmtag::dsp
