// Performance microbenchmarks (google-benchmark): throughput of the hot
// kernels — FFT, Viterbi, frame build/decode, and one full end-to-end frame
// exchange. Not a paper figure; used to keep the simulator fast enough for
// the R3-R8 sweeps.
#include <benchmark/benchmark.h>

#include "mmtag/core/link_simulator.hpp"
#include "mmtag/dsp/fft.hpp"
#include "mmtag/fec/convolutional.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/phy/frame.hpp"

#include "bench_util.hpp"

using namespace mmtag;

namespace {

void bm_fft(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const dsp::fft_plan plan(n);
    cvec data(n, cf64{1.0, -0.5});
    for (auto _ : state) {
        plan.forward(data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(bm_fft)->Arg(1024)->Arg(4096)->Arg(16384);

void bm_viterbi(benchmark::State& state)
{
    const auto bits = phy::random_bits(static_cast<std::size_t>(state.range(0)), 5);
    const auto coded = fec::convolutional_encode(bits, fec::code_rate::half);
    for (auto _ : state) {
        auto decoded = fec::viterbi_decode(coded, fec::code_rate::half);
        benchmark::DoNotOptimize(decoded.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(bm_viterbi)->Arg(512)->Arg(4096);

void bm_frame_build(benchmark::State& state)
{
    const auto payload = phy::random_bytes(256, 7);
    const phy::frame_config cfg{};
    for (auto _ : state) {
        auto symbols = phy::build_frame(payload, cfg);
        benchmark::DoNotOptimize(symbols.data());
    }
}
BENCHMARK(bm_frame_build);

void bm_frame_decode(benchmark::State& state)
{
    const auto payload = phy::random_bytes(256, 9);
    const phy::frame_config cfg{};
    const cvec symbols = phy::build_frame(payload, cfg);
    const std::span<const cf64> frame_span{symbols.data() + cfg.preamble.total_symbols(),
                                           symbols.size() - cfg.preamble.total_symbols()};
    for (auto _ : state) {
        auto result = phy::decode_frame(frame_span, cfg, 0.05);
        benchmark::DoNotOptimize(&result);
    }
}
BENCHMARK(bm_frame_decode);

void bm_full_link_frame(benchmark::State& state)
{
    core::link_simulator sim(bench::bench_scenario());
    const auto payload = phy::random_bytes(32, 11);
    for (auto _ : state) {
        auto result = sim.run_frame(payload);
        benchmark::DoNotOptimize(&result);
    }
}
BENCHMARK(bm_full_link_frame)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
