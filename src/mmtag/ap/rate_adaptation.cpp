#include "mmtag/ap/rate_adaptation.hpp"

namespace mmtag::ap {

double rate_option::efficiency() const
{
    return static_cast<double>(phy::bits_per_symbol(scheme)) * phy::fec_mode_rate(fec);
}

const std::vector<rate_option>& rate_table()
{
    // Per-symbol SNR thresholds for ~1e-5 decoded BER: uncoded M-PSK theory
    // plus soft-decision convolutional coding gain (5.5 dB at R=1/2, 4.2 dB
    // at R=3/4), converted from Eb/N0 by 10 log10(bits * rate). Monotone in
    // both efficiency and threshold by construction.
    static const std::vector<rate_option> table = {
        {phy::modulation::bpsk, phy::fec_mode::conv_half, 1.1},
        {phy::modulation::qpsk, phy::fec_mode::conv_half, 4.1},
        {phy::modulation::qpsk, phy::fec_mode::conv_three_quarters, 7.5},
        {phy::modulation::psk8, phy::fec_mode::conv_three_quarters, 12.5},
        {phy::modulation::psk8, phy::fec_mode::uncoded, 17.8},
        {phy::modulation::psk16, phy::fec_mode::uncoded, 23.5},
    };
    return table;
}

rate_adapter::rate_adapter(double margin_db) : margin_db_(margin_db) {}

rate_option rate_adapter::select(double snr_db) const
{
    const auto& table = rate_table();
    rate_option chosen = table.front();
    for (const auto& option : table) {
        if (snr_db >= option.required_snr_db + margin_db_) chosen = option;
    }
    return chosen;
}

rate_option rate_adapter::select_smoothed(double snr_db)
{
    constexpr double alpha = 0.25;
    if (!primed_) {
        smoothed_snr_db_ = snr_db;
        primed_ = true;
    } else {
        smoothed_snr_db_ += alpha * (snr_db - smoothed_snr_db_);
    }
    return select(smoothed_snr_db_);
}

} // namespace mmtag::ap
