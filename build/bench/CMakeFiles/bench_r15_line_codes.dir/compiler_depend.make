# Empty compiler generated dependencies file for bench_r15_line_codes.
# This may be replaced when dependencies are built.
