#include "mmtag/runtime/sweep_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace mmtag::runtime {

std::string summary_line(std::size_t points, std::size_t trials, double wall_s,
                         std::size_t jobs)
{
    const double rate = wall_s > 0.0 ? static_cast<double>(trials) / wall_s : 0.0;
    char buffer[160];
    std::snprintf(buffer, sizeof buffer,
                  "sweep: %zu points, %zu trials in %.2f s wall (%zu jobs, %.0f trials/s)",
                  points, trials, wall_s, jobs, rate);
    return buffer;
}

std::function<void(std::size_t, std::size_t)> progress_printer(std::FILE* stream,
                                                               bool tty)
{
    // Shared state so the returned callback is copyable and thread-safe.
    struct printer_state {
        std::mutex gate;
        std::size_t last_decile = 0;
    };
    auto shared = std::make_shared<printer_state>();
    if (tty) {
        return [stream, shared](std::size_t done, std::size_t total) {
            const std::lock_guard<std::mutex> lock(shared->gate);
            std::fprintf(stream, "\rsweep: %zu/%zu trials", done, total);
            // Terminate the rewritten line so whatever prints next starts
            // on a fresh one.
            if (done == total) std::fprintf(stream, "\n");
            std::fflush(stream);
        };
    }
    // Piped/redirected stderr: '\r' frames would corrupt logs, so print one
    // plain line per completed decile instead.
    return [stream, shared](std::size_t done, std::size_t total) {
        const std::lock_guard<std::mutex> lock(shared->gate);
        const std::size_t decile =
            total == 0 ? 10 : done * 10 / std::max<std::size_t>(total, 1);
        if (decile <= shared->last_decile) return;
        shared->last_decile = decile;
        std::fprintf(stream, "sweep: %zu/%zu trials (%zu%%)\n", done, total,
                     decile * 10);
        std::fflush(stream);
    };
}

std::function<void(std::size_t, std::size_t)> stderr_progress()
{
#ifdef _WIN32
    const bool tty = _isatty(_fileno(stderr)) != 0;
#else
    const bool tty = isatty(fileno(stderr)) != 0;
#endif
    return progress_printer(stderr, tty);
}

} // namespace mmtag::runtime
