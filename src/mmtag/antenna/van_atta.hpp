// Van Atta retro-reflective array — the structure that lets a zero-power tag
// reflect a narrow beam straight back at the AP regardless of its own
// orientation.
//
// Physics: elements are connected in mirror pairs (n <-> N-1-n) by equal
// electrical-length lines. A plane wave from angle theta arrives at element n
// with phase k*d*n*sin(theta); the pairing re-radiates that phase from the
// mirrored position, producing a conjugated aperture phase, i.e. a beam back
// toward theta. The re-radiated wave additionally passes through the common
// termination, whose reflection coefficient Gamma scales/rotates it — which
// is exactly the handle load modulation uses.
#pragma once

#include <cstddef>
#include <memory>

#include "mmtag/common.hpp"
#include "mmtag/antenna/element.hpp"

namespace mmtag::antenna {

class van_atta_array {
public:
    struct config {
        std::size_t element_count = 8;       ///< must be even (mirror pairs)
        double spacing_wavelengths = 0.5;
        double line_loss_db = 1.0;           ///< one-way loss of pair lines
        double pair_phase_error_rms_rad = 0.0; ///< fabrication tolerance
    };

    van_atta_array(const config& cfg, std::shared_ptr<const element> radiator);

    [[nodiscard]] std::size_t element_count() const { return cfg_.element_count; }

    /// Complex bistatic re-radiation coefficient: relative field coupling
    /// from a wave incident at `theta_in` to the far field at `theta_out`,
    /// through a termination of reflection coefficient `gamma`.
    [[nodiscard]] cf64 bistatic_coupling(double theta_in, double theta_out, cf64 gamma) const;

    /// Monostatic backscatter gain: the product of effective receive and
    /// re-transmit power gains toward `theta` with termination `gamma`
    /// (|Gamma|=1 short). This is the G_tag^2-equivalent term of the radar
    /// link budget.
    [[nodiscard]] double monostatic_gain(double theta_rad, cf64 gamma = cf64{-1.0, 0.0}) const;

    /// Monostatic gain pattern over [-pi/2, pi/2].
    [[nodiscard]] rvec monostatic_pattern(std::size_t points,
                                          cf64 gamma = cf64{-1.0, 0.0}) const;

    /// Angular field of view over which monostatic gain stays within
    /// `droop_db` of its peak [rad].
    [[nodiscard]] double field_of_view(double droop_db) const;

private:
    config cfg_;
    std::shared_ptr<const element> radiator_;
    rvec pair_phase_errors_; // per-pair static phase error [rad]
    double line_amplitude_;  // one-way line loss as field ratio
};

/// Baseline reflector: the same aperture *without* Van Atta pairing (each
/// element re-radiates its own received signal, like a flat conducting
/// plate). Specular, not retro-directive — used as the R1/R7 comparison.
class flat_plate_reflector {
public:
    flat_plate_reflector(std::size_t element_count, double spacing_wavelengths,
                         std::shared_ptr<const element> radiator);

    [[nodiscard]] cf64 bistatic_coupling(double theta_in, double theta_out, cf64 gamma) const;
    [[nodiscard]] double monostatic_gain(double theta_rad, cf64 gamma = cf64{-1.0, 0.0}) const;
    [[nodiscard]] rvec monostatic_pattern(std::size_t points,
                                          cf64 gamma = cf64{-1.0, 0.0}) const;

private:
    std::size_t element_count_;
    double spacing_;
    std::shared_ptr<const element> radiator_;
};

} // namespace mmtag::antenna
