#include "mmtag/antenna/termination.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::antenna {

cf64 reflection_coefficient(cf64 z_load, double z0)
{
    if (z0 <= 0.0) throw std::invalid_argument("reflection_coefficient: Z0 must be > 0");
    return (z_load - z0) / (z_load + z0);
}

cf64 gamma_short()
{
    return cf64{-1.0, 0.0};
}

cf64 gamma_open()
{
    return cf64{1.0, 0.0};
}

cf64 gamma_matched()
{
    return cf64{0.0, 0.0};
}

cf64 line_transform(cf64 gamma_load, double beta_length_rad)
{
    return gamma_load * std::polar(1.0, -2.0 * beta_length_rad);
}

cf64 line_transform_lossy(cf64 gamma_load, double beta_length_rad, double alpha_db)
{
    if (alpha_db < 0.0) throw std::invalid_argument("line_transform_lossy: loss must be >= 0 dB");
    const double round_trip_loss = std::pow(10.0, -2.0 * alpha_db / 20.0);
    return round_trip_loss * line_transform(gamma_load, beta_length_rad);
}

double electrical_length(double physical_length_m, double frequency_hz, double epsilon_eff)
{
    if (physical_length_m < 0.0) throw std::invalid_argument("electrical_length: negative length");
    if (epsilon_eff < 1.0) throw std::invalid_argument("electrical_length: epsilon_eff < 1");
    const double guided_wavelength = wavelength(frequency_hz) / std::sqrt(epsilon_eff);
    return two_pi * physical_length_m / guided_wavelength;
}

double absorbed_fraction(cf64 gamma)
{
    const double reflected = std::norm(gamma);
    if (reflected > 1.0 + 1e-9) {
        throw std::invalid_argument("absorbed_fraction: |Gamma| > 1 (active load?)");
    }
    return std::max(0.0, 1.0 - reflected);
}

} // namespace mmtag::antenna
