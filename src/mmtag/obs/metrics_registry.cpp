#include "mmtag/obs/metrics_registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "mmtag/runtime/result_writer.hpp"

namespace mmtag::obs {

void gauge::set(double value)
{
    last_ = value;
    min_ = count_ == 0 ? value : std::min(min_, value);
    max_ = count_ == 0 ? value : std::max(max_, value);
    sum_ += value;
    ++count_;
}

double gauge::mean() const
{
    if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
    return sum_ / static_cast<double>(count_);
}

void gauge::merge(const gauge& other)
{
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    last_ = other.last_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
}

histogram::histogram(std::span<const double> upper_bounds)
    : upper_bounds_(upper_bounds.begin(), upper_bounds.end()),
      counts_(upper_bounds.size() + 1, 0)
{
    if (!std::is_sorted(upper_bounds_.begin(), upper_bounds_.end())) {
        throw std::invalid_argument("histogram: bucket bounds must be ascending");
    }
}

void histogram::observe(double value)
{
    if (counts_.empty()) counts_.assign(1, 0); // default-constructed: one bucket
    // lower_bound keeps the documented inclusive tops: a value equal to a
    // bucket's upper bound lands in that bucket, not the next one.
    const auto bucket = static_cast<std::size_t>(
        std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
        upper_bounds_.begin());
    ++counts_[bucket];
    ++count_;
    sum_ += value;
}

double histogram::mean() const
{
    if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
    return sum_ / static_cast<double>(count_);
}

void histogram::merge(const histogram& other)
{
    if (other.count_ == 0 && other.upper_bounds_.empty()) return;
    if (count_ == 0 && upper_bounds_.empty()) {
        *this = other;
        return;
    }
    if (upper_bounds_ != other.upper_bounds_) {
        throw std::invalid_argument("histogram::merge: bucket bounds differ");
    }
    for (std::size_t b = 0; b < counts_.size() && b < other.counts_.size(); ++b) {
        counts_[b] += other.counts_[b];
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

counter& metrics_registry::get_counter(const std::string& name)
{
    return counters_[name];
}

gauge& metrics_registry::get_gauge(const std::string& name)
{
    return gauges_[name];
}

histogram& metrics_registry::get_histogram(const std::string& name,
                                           std::span<const double> upper_bounds)
{
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        return histograms_.emplace(name, histogram(upper_bounds)).first->second;
    }
    const auto& existing = it->second.upper_bounds();
    if (existing.size() != upper_bounds.size() ||
        !std::equal(existing.begin(), existing.end(), upper_bounds.begin())) {
        throw std::invalid_argument("metrics_registry: histogram '" + name +
                                    "' already exists with different bounds");
    }
    return it->second;
}

const counter* metrics_registry::find_counter(const std::string& name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const gauge* metrics_registry::find_gauge(const std::string& name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

const histogram* metrics_registry::find_histogram(const std::string& name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

bool metrics_registry::empty() const
{
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::size_t metrics_registry::size() const
{
    return counters_.size() + gauges_.size() + histograms_.size();
}

void metrics_registry::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

void metrics_registry::merge(const metrics_registry& other)
{
    for (const auto& [name, value] : other.counters_) counters_[name].merge(value);
    for (const auto& [name, value] : other.gauges_) gauges_[name].merge(value);
    for (const auto& [name, value] : other.histograms_) {
        const auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, value);
        } else {
            it->second.merge(value);
        }
    }
}

bool metrics_registry::is_timing_name(const std::string& name)
{
    return name.rfind("time/", 0) == 0;
}

namespace {

bool view_includes(metric_view view, const std::string& name)
{
    switch (view) {
    case metric_view::all: return true;
    case metric_view::deterministic: return !metrics_registry::is_timing_name(name);
    case metric_view::timing: return metrics_registry::is_timing_name(name);
    }
    return true;
}

runtime::json_value number_or_null(double value)
{
    if (!std::isfinite(value)) return runtime::json_value::null();
    return runtime::json_value::number(value);
}

} // namespace

runtime::json_value metrics_registry::to_json(metric_view view) const
{
    auto doc = runtime::json_value::object();

    auto counters = runtime::json_value::object();
    for (const auto& [name, value] : counters_) {
        if (!view_includes(view, name)) continue;
        counters.set(name, runtime::json_value::unsigned_integer(value.value()));
    }
    auto gauges = runtime::json_value::object();
    for (const auto& [name, value] : gauges_) {
        if (!view_includes(view, name)) continue;
        auto g = runtime::json_value::object();
        g.set("count", runtime::json_value::unsigned_integer(value.count()));
        g.set("last", number_or_null(value.last()));
        g.set("min", number_or_null(value.min()));
        g.set("max", number_or_null(value.max()));
        g.set("sum", number_or_null(value.sum()));
        g.set("mean", number_or_null(value.mean()));
        gauges.set(name, std::move(g));
    }
    auto histograms = runtime::json_value::object();
    for (const auto& [name, value] : histograms_) {
        if (!view_includes(view, name)) continue;
        auto h = runtime::json_value::object();
        auto bounds = runtime::json_value::array();
        for (const double b : value.upper_bounds()) bounds.push(number_or_null(b));
        h.set("upper_bounds", std::move(bounds));
        auto counts = runtime::json_value::array();
        for (const std::uint64_t c : value.counts()) {
            counts.push(runtime::json_value::unsigned_integer(c));
        }
        h.set("counts", std::move(counts));
        h.set("count", runtime::json_value::unsigned_integer(value.count()));
        h.set("sum", number_or_null(value.sum()));
        h.set("mean", number_or_null(value.mean()));
        histograms.set(name, std::move(h));
    }

    doc.set("counters", std::move(counters));
    doc.set("gauges", std::move(gauges));
    doc.set("histograms", std::move(histograms));
    return doc;
}

std::string metrics_registry::to_json_string(metric_view view, int indent) const
{
    return to_json(view).dump(indent);
}

namespace {

constexpr double kTimeBoundsS[] = {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3,
                                   3e-3, 1e-2, 3e-2, 0.1,  0.3,  1.0,  3.0, 10.0};
constexpr double kSnrBoundsDb[] = {-10.0, -5.0, 0.0,  5.0,  10.0, 15.0,
                                   20.0,  25.0, 30.0, 35.0, 40.0};
constexpr double kSuppressionBoundsDb[] = {-80.0, -70.0, -60.0, -50.0, -40.0,
                                           -30.0, -20.0, -10.0, 0.0};
constexpr double kRoundsBounds[] = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};

} // namespace

std::span<const double> time_bounds_s() { return kTimeBoundsS; }
std::span<const double> snr_bounds_db() { return kSnrBoundsDb; }
std::span<const double> suppression_bounds_db() { return kSuppressionBoundsDb; }
std::span<const double> rounds_bounds() { return kRoundsBounds; }

} // namespace mmtag::obs
