// Automatic gain control driving signal amplitude toward a reference level.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Feedback AGC: gain is updated per sample from the envelope error so the
/// output RMS converges to `reference`. Loop rate is set by `step` (typical
/// 1e-3 .. 1e-1); gain is clamped to [min_gain, max_gain].
class agc {
public:
    struct config {
        double reference = 1.0;
        double step = 1e-2;
        double min_gain = 1e-6;
        double max_gain = 1e6;
        double initial_gain = 1.0;
    };

    agc();
    explicit agc(const config& cfg);

    [[nodiscard]] double gain() const { return gain_; }

    [[nodiscard]] cf64 process(cf64 input);
    [[nodiscard]] cvec process(std::span<const cf64> input);
    void reset();

private:
    config cfg_;
    double gain_;
};

} // namespace mmtag::dsp
