# Empty dependencies file for bench_r07_orientation.
# This may be replaced when dependencies are built.
