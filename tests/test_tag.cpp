#include <gtest/gtest.h>

#include "mmtag/phy/bitio.hpp"
#include "mmtag/tag/controller.hpp"
#include "mmtag/tag/energy_model.hpp"
#include "mmtag/tag/modulator.hpp"
#include "mmtag/tag/termination_bank.hpp"

namespace mmtag::tag {
namespace {

class bank_schemes : public ::testing::TestWithParam<phy::modulation> {};

TEST_P(bank_schemes, realizes_constellation_phases)
{
    termination_bank::config cfg;
    cfg.scheme = GetParam();
    cfg.stub_loss_db = 0.0;
    termination_bank bank(cfg);
    const std::size_t m = phy::constellation_size(GetParam());
    ASSERT_EQ(bank.state_count(), m);
    for (std::size_t p = 0; p < m; ++p) {
        const double target = two_pi * static_cast<double>(p) / static_cast<double>(m);
        const cf64 gamma = bank.gammas()[p];
        EXPECT_NEAR(std::abs(gamma), 1.0, 1e-9);
        EXPECT_NEAR(wrap_phase(std::arg(gamma) - target), 0.0, 1e-9) << "state " << p;
    }
}

TEST_P(bank_schemes, passivity)
{
    termination_bank::config cfg;
    cfg.scheme = GetParam();
    cfg.stub_loss_db = 0.5;
    cfg.phase_error_rms_rad = 0.05;
    termination_bank bank(cfg);
    for (const auto& gamma : bank.gammas()) {
        EXPECT_LE(std::abs(gamma), 1.0 + 1e-9); // a passive tag cannot amplify
    }
}

TEST_P(bank_schemes, state_for_symbol_round_trip)
{
    termination_bank::config cfg;
    cfg.scheme = GetParam();
    termination_bank bank(cfg);
    const cvec points = phy::constellation(GetParam());
    for (const auto& point : points) {
        const std::size_t state = bank.state_for_symbol(point);
        // The chosen state's Gamma must point along the requested symbol.
        const cf64 gamma = bank.gammas()[state];
        EXPECT_NEAR(wrap_phase(std::arg(gamma) - std::arg(point)), 0.0, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(schemes, bank_schemes,
                         ::testing::Values(phy::modulation::bpsk, phy::modulation::qpsk,
                                           phy::modulation::psk8, phy::modulation::psk16));

TEST(termination_bank, absorb_state_is_matched)
{
    termination_bank bank{termination_bank::config{}};
    EXPECT_NEAR(std::abs(bank.gammas()[bank.absorb_state()]), 0.0, 1e-12);
    EXPECT_EQ(bank.throw_count(), bank.state_count() + 1);
    EXPECT_EQ(bank.state_for_symbol(cf64{}), bank.absorb_state());
}

TEST(termination_bank, loss_appears_in_evm)
{
    termination_bank::config lossless;
    lossless.stub_loss_db = 0.0;
    termination_bank a(lossless);
    termination_bank::config lossy;
    lossy.stub_loss_db = 1.0;
    termination_bank b(lossy);
    EXPECT_LT(a.constellation_evm(), 1e-9);
    EXPECT_GT(b.constellation_evm(), 0.05);
}

backscatter_modulator::config modulator_config()
{
    backscatter_modulator::config cfg;
    cfg.sample_rate_hz = 250e6;
    cfg.symbol_rate_hz = 5e6;
    cfg.frame.scheme = phy::modulation::qpsk;
    cfg.frame.fec = phy::fec_mode::conv_half;
    cfg.guard_symbols = 4;
    return cfg;
}

TEST(modulator, waveform_length_and_guards)
{
    backscatter_modulator mod(modulator_config());
    const auto frame = mod.modulate(phy::random_bytes(32, 1));
    const std::size_t sps = mod.samples_per_symbol();
    EXPECT_EQ(sps, 50u);
    EXPECT_EQ(frame.gamma.size(), frame.states.size() * sps);
    EXPECT_EQ(frame.states.size(), frame.symbol_count + 8); // 2 * 4 guards
    // Guards are absorptive.
    EXPECT_NEAR(std::abs(frame.gamma.front()), 0.0, 0.05);
    EXPECT_NEAR(std::abs(frame.gamma.back()), 0.0, 0.05);
}

TEST(modulator, passivity_of_entire_waveform)
{
    backscatter_modulator mod(modulator_config());
    const auto frame = mod.modulate(phy::random_bytes(64, 2));
    for (const auto& g : frame.gamma) {
        EXPECT_LE(std::abs(g), 1.0 + 1e-9);
    }
}

TEST(modulator, transition_count_bounded_by_symbols)
{
    backscatter_modulator mod(modulator_config());
    const auto frame = mod.modulate(phy::random_bytes(64, 3));
    EXPECT_GT(frame.transitions, frame.symbol_count / 4); // random data toggles
    EXPECT_LT(frame.transitions, frame.states.size());
}

TEST(modulator, information_rate)
{
    backscatter_modulator mod(modulator_config());
    // QPSK (2 b/sym) * R=1/2 * 5 Msym/s = 5 Mb/s.
    EXPECT_NEAR(mod.information_rate_bps(), 5e6, 1.0);
}

TEST(modulator, rejects_symbol_rate_beyond_switch)
{
    auto cfg = modulator_config();
    cfg.rf_switch.rise_fall_time_s = 1e-6; // max 500 kHz
    EXPECT_THROW(backscatter_modulator{cfg}, simulation_error);
}

TEST(modulator, rejects_non_integer_sps)
{
    auto cfg = modulator_config();
    cfg.symbol_rate_hz = 3e6; // 250/3 not integer
    EXPECT_THROW(backscatter_modulator{cfg}, std::invalid_argument);
}

tag_controller::config controller_config()
{
    tag_controller::config cfg;
    cfg.modulator = modulator_config();
    cfg.detector.sample_rate_hz = 250e6;
    cfg.detector.video_bandwidth_hz = 10e6;
    cfg.detector.responsivity_v_per_w = 2000.0;
    cfg.detector.noise_equivalent_power_w = 1e-12;
    cfg.wake_threshold_v = 1e-5;
    cfg.detect_hold_s = 0.4e-6;
    cfg.turnaround_s = 1e-6;
    return cfg;
}

TEST(controller, responds_to_strong_query)
{
    tag_controller controller(controller_config());
    // -30 dBm incident carrier starting at sample 1000.
    cvec incident(60000, cf64{});
    const double amplitude = std::sqrt(1e-6);
    for (std::size_t i = 1000; i < incident.size(); ++i) incident[i] = {amplitude, 0.0};
    const auto response = controller.respond_to_query(incident, phy::random_bytes(8, 4));
    EXPECT_TRUE(response.responded);
    EXPECT_GT(response.detect_sample, 1000u);
    EXPECT_LT(response.detect_sample, 2000u);
    EXPECT_EQ(response.respond_sample, response.detect_sample + 250); // 1 us at 250 MS/s
    EXPECT_EQ(response.gamma.size(), incident.size());
}

TEST(controller, stays_quiet_without_carrier)
{
    tag_controller controller(controller_config());
    const cvec incident(20000, cf64{});
    const auto response = controller.respond_to_query(incident, phy::random_bytes(8, 5));
    EXPECT_FALSE(response.responded);
    for (const auto& g : response.gamma) {
        EXPECT_NEAR(std::abs(g), 0.0, 1e-9); // absorptive throughout
    }
}

TEST(controller, too_short_window_no_response)
{
    auto cfg = controller_config();
    cfg.turnaround_s = 1e-3; // longer than the window
    tag_controller controller(cfg);
    cvec incident(5000, cf64{1e-3, 0.0});
    const auto response = controller.respond_to_query(incident, phy::random_bytes(8, 6));
    EXPECT_FALSE(response.responded);
}

TEST(energy, per_mode_ordering)
{
    energy_model model;
    EXPECT_LT(model.sleep_power_w(), model.listen_power_w());
    EXPECT_LT(model.listen_power_w(), model.transmit_power_w(5e6, 0.75));
}

TEST(energy, transmit_power_scales_with_rate)
{
    energy_model model;
    const double slow = model.transmit_power_w(1e6, 0.75);
    const double fast = model.transmit_power_w(50e6, 0.75);
    EXPECT_GT(fast, slow);
    // Dynamic part is linear in rate.
    const auto& cfg = model.parameters();
    EXPECT_NEAR(fast - slow, 49e6 * 0.75 * cfg.energy_per_transition_j, 1e-6);
}

TEST(energy, frame_energy_consistency)
{
    backscatter_modulator mod(modulator_config());
    const auto frame = mod.modulate(phy::random_bytes(32, 7));
    energy_model model;
    const double energy = model.frame_energy_j(frame);
    const auto& cfg = model.parameters();
    const double static_part =
        (cfg.mcu_active_w + cfg.switch_static_w + cfg.detector_bias_w) * frame.duration_s;
    EXPECT_NEAR(energy - static_part,
                static_cast<double>(frame.transitions) * cfg.energy_per_transition_j, 1e-12);
}

TEST(energy, per_bit_anchor_order_of_magnitude)
{
    // The reconstructed anchor: a few nJ/bit at ~10 Mbps-class rates.
    energy_model model;
    phy::frame_config frame;
    frame.scheme = phy::modulation::qpsk;
    frame.fec = phy::fec_mode::uncoded;
    const double epb = model.energy_per_bit(frame, 5e6); // 10 Mb/s
    EXPECT_GT(epb, 0.5e-9);
    EXPECT_LT(epb, 10e-9);
}

TEST(energy, efficiency_improves_with_rate)
{
    // Static power amortizes across more bits at higher rates.
    energy_model model;
    phy::frame_config frame;
    frame.scheme = phy::modulation::qpsk;
    frame.fec = phy::fec_mode::uncoded;
    EXPECT_GT(model.energy_per_bit(frame, 1e6), model.energy_per_bit(frame, 50e6));
}

} // namespace
} // namespace mmtag::tag
