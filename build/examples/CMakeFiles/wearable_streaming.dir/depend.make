# Empty dependencies file for wearable_streaming.
# This may be replaced when dependencies are built.
