// Analytic link budget for the backscatter uplink — the closed-form
// prediction every simulated result is cross-checked against.
#pragma once

#include "mmtag/common.hpp"
#include "mmtag/core/config.hpp"

namespace mmtag::core {

struct link_budget_entry {
    double distance_m = 0.0;
    double incident_at_tag_dbm = 0.0;  ///< power collected by the tag aperture
    double received_at_ap_dbm = 0.0;   ///< tag-path power back at the AP
    double noise_floor_dbm = 0.0;      ///< kTB * NF in the symbol bandwidth
    double snr_db = 0.0;               ///< per-symbol SNR prediction
    double static_interference_dbm = 0.0;
};

class link_budget {
public:
    explicit link_budget(const system_config& cfg);

    /// Budget at one distance (other parameters from the system config).
    [[nodiscard]] link_budget_entry at(double distance_m) const;

    /// Sweep over [start, stop] with `points` samples.
    [[nodiscard]] std::vector<link_budget_entry> sweep(double start_m, double stop_m,
                                                       std::size_t points) const;

    /// Maximum range at which predicted SNR clears `required_snr_db`.
    [[nodiscard]] double max_range_m(double required_snr_db) const;

private:
    system_config cfg_;
};

} // namespace mmtag::core
