file(REMOVE_RECURSE
  "CMakeFiles/bench_r09_inventory.dir/bench_r09_inventory.cpp.o"
  "CMakeFiles/bench_r09_inventory.dir/bench_r09_inventory.cpp.o.d"
  "bench_r09_inventory"
  "bench_r09_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r09_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
