// Convolutional coding: K=7 rate-1/2 encoder (the 802.11/CCSDS generator
// pair 133/171 octal) with optional puncturing to rates 2/3 and 3/4, and a
// Viterbi decoder supporting hard and soft decisions.
//
// The asymmetry of this code fits backscatter perfectly: encoding is a couple
// of XORs per bit (cheap enough for a tag MCU), while the Viterbi trellis
// search runs at the mains-powered AP.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mmtag::fec {

enum class code_rate {
    half,          // R = 1/2, no puncturing
    two_thirds,    // R = 2/3
    three_quarters // R = 3/4
};

/// Fraction of information bits per coded bit for a rate.
[[nodiscard]] double rate_fraction(code_rate rate);

/// Encodes `bits` (0/1 values) with the K=7 (133,171) code, appending K-1
/// zero tail bits to terminate the trellis, then punctures to `rate`.
[[nodiscard]] std::vector<std::uint8_t> convolutional_encode(std::span<const std::uint8_t> bits,
                                                             code_rate rate = code_rate::half);

/// Viterbi decoder over hard bits (0/1). Input must be the output of
/// convolutional_encode with the same rate. Returns the information bits
/// (tail removed).
[[nodiscard]] std::vector<std::uint8_t> viterbi_decode(std::span<const std::uint8_t> coded_bits,
                                                       code_rate rate = code_rate::half);

/// Soft-decision Viterbi: inputs are LLR-like values where sign encodes the
/// bit (negative => 1) and magnitude the confidence.
[[nodiscard]] std::vector<std::uint8_t> viterbi_decode_soft(std::span<const double> soft_bits,
                                                            code_rate rate = code_rate::half);

/// Number of coded bits produced for `info_bits` information bits at `rate`
/// (including the trellis termination tail).
[[nodiscard]] std::size_t coded_length(std::size_t info_bits, code_rate rate);

} // namespace mmtag::fec
