# Empty dependencies file for bench_r20_sampled_inventory.
# This may be replaced when dependencies are built.
