
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmtag/antenna/array.cpp" "src/CMakeFiles/mmtag.dir/mmtag/antenna/array.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/antenna/array.cpp.o.d"
  "/root/repo/src/mmtag/antenna/element.cpp" "src/CMakeFiles/mmtag.dir/mmtag/antenna/element.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/antenna/element.cpp.o.d"
  "/root/repo/src/mmtag/antenna/termination.cpp" "src/CMakeFiles/mmtag.dir/mmtag/antenna/termination.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/antenna/termination.cpp.o.d"
  "/root/repo/src/mmtag/antenna/van_atta.cpp" "src/CMakeFiles/mmtag.dir/mmtag/antenna/van_atta.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/antenna/van_atta.cpp.o.d"
  "/root/repo/src/mmtag/ap/canceller.cpp" "src/CMakeFiles/mmtag.dir/mmtag/ap/canceller.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/ap/canceller.cpp.o.d"
  "/root/repo/src/mmtag/ap/query_encoder.cpp" "src/CMakeFiles/mmtag.dir/mmtag/ap/query_encoder.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/ap/query_encoder.cpp.o.d"
  "/root/repo/src/mmtag/ap/rate_adaptation.cpp" "src/CMakeFiles/mmtag.dir/mmtag/ap/rate_adaptation.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/ap/rate_adaptation.cpp.o.d"
  "/root/repo/src/mmtag/ap/receiver.cpp" "src/CMakeFiles/mmtag.dir/mmtag/ap/receiver.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/ap/receiver.cpp.o.d"
  "/root/repo/src/mmtag/ap/transmitter.cpp" "src/CMakeFiles/mmtag.dir/mmtag/ap/transmitter.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/ap/transmitter.cpp.o.d"
  "/root/repo/src/mmtag/channel/atmosphere.cpp" "src/CMakeFiles/mmtag.dir/mmtag/channel/atmosphere.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/channel/atmosphere.cpp.o.d"
  "/root/repo/src/mmtag/channel/backscatter_channel.cpp" "src/CMakeFiles/mmtag.dir/mmtag/channel/backscatter_channel.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/channel/backscatter_channel.cpp.o.d"
  "/root/repo/src/mmtag/channel/blockage.cpp" "src/CMakeFiles/mmtag.dir/mmtag/channel/blockage.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/channel/blockage.cpp.o.d"
  "/root/repo/src/mmtag/channel/fading.cpp" "src/CMakeFiles/mmtag.dir/mmtag/channel/fading.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/channel/fading.cpp.o.d"
  "/root/repo/src/mmtag/channel/path_loss.cpp" "src/CMakeFiles/mmtag.dir/mmtag/channel/path_loss.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/channel/path_loss.cpp.o.d"
  "/root/repo/src/mmtag/cli/commands.cpp" "src/CMakeFiles/mmtag.dir/mmtag/cli/commands.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/cli/commands.cpp.o.d"
  "/root/repo/src/mmtag/cli/options.cpp" "src/CMakeFiles/mmtag.dir/mmtag/cli/options.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/cli/options.cpp.o.d"
  "/root/repo/src/mmtag/core/baselines.cpp" "src/CMakeFiles/mmtag.dir/mmtag/core/baselines.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/core/baselines.cpp.o.d"
  "/root/repo/src/mmtag/core/config.cpp" "src/CMakeFiles/mmtag.dir/mmtag/core/config.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/core/config.cpp.o.d"
  "/root/repo/src/mmtag/core/inventory_round.cpp" "src/CMakeFiles/mmtag.dir/mmtag/core/inventory_round.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/core/inventory_round.cpp.o.d"
  "/root/repo/src/mmtag/core/link_budget.cpp" "src/CMakeFiles/mmtag.dir/mmtag/core/link_budget.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/core/link_budget.cpp.o.d"
  "/root/repo/src/mmtag/core/link_simulator.cpp" "src/CMakeFiles/mmtag.dir/mmtag/core/link_simulator.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/core/link_simulator.cpp.o.d"
  "/root/repo/src/mmtag/core/metrics.cpp" "src/CMakeFiles/mmtag.dir/mmtag/core/metrics.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/core/metrics.cpp.o.d"
  "/root/repo/src/mmtag/core/multitag_simulator.cpp" "src/CMakeFiles/mmtag.dir/mmtag/core/multitag_simulator.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/core/multitag_simulator.cpp.o.d"
  "/root/repo/src/mmtag/core/network.cpp" "src/CMakeFiles/mmtag.dir/mmtag/core/network.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/core/network.cpp.o.d"
  "/root/repo/src/mmtag/dsp/agc.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/agc.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/agc.cpp.o.d"
  "/root/repo/src/mmtag/dsp/carrier_recovery.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/carrier_recovery.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/carrier_recovery.cpp.o.d"
  "/root/repo/src/mmtag/dsp/dc_blocker.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/dc_blocker.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/dc_blocker.cpp.o.d"
  "/root/repo/src/mmtag/dsp/equalizer.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/equalizer.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/equalizer.cpp.o.d"
  "/root/repo/src/mmtag/dsp/estimators.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/estimators.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/estimators.cpp.o.d"
  "/root/repo/src/mmtag/dsp/fft.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/fft.cpp.o.d"
  "/root/repo/src/mmtag/dsp/fir.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/fir.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/fir.cpp.o.d"
  "/root/repo/src/mmtag/dsp/goertzel.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/goertzel.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/goertzel.cpp.o.d"
  "/root/repo/src/mmtag/dsp/iir.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/iir.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/iir.cpp.o.d"
  "/root/repo/src/mmtag/dsp/nco.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/nco.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/nco.cpp.o.d"
  "/root/repo/src/mmtag/dsp/pn_sequence.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/pn_sequence.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/pn_sequence.cpp.o.d"
  "/root/repo/src/mmtag/dsp/psd.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/psd.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/psd.cpp.o.d"
  "/root/repo/src/mmtag/dsp/pulse_shape.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/pulse_shape.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/pulse_shape.cpp.o.d"
  "/root/repo/src/mmtag/dsp/resampler.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/resampler.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/resampler.cpp.o.d"
  "/root/repo/src/mmtag/dsp/timing_recovery.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/timing_recovery.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/timing_recovery.cpp.o.d"
  "/root/repo/src/mmtag/dsp/window.cpp" "src/CMakeFiles/mmtag.dir/mmtag/dsp/window.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/dsp/window.cpp.o.d"
  "/root/repo/src/mmtag/fec/convolutional.cpp" "src/CMakeFiles/mmtag.dir/mmtag/fec/convolutional.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/fec/convolutional.cpp.o.d"
  "/root/repo/src/mmtag/fec/crc.cpp" "src/CMakeFiles/mmtag.dir/mmtag/fec/crc.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/fec/crc.cpp.o.d"
  "/root/repo/src/mmtag/fec/hamming.cpp" "src/CMakeFiles/mmtag.dir/mmtag/fec/hamming.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/fec/hamming.cpp.o.d"
  "/root/repo/src/mmtag/fec/interleaver.cpp" "src/CMakeFiles/mmtag.dir/mmtag/fec/interleaver.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/fec/interleaver.cpp.o.d"
  "/root/repo/src/mmtag/fec/repetition.cpp" "src/CMakeFiles/mmtag.dir/mmtag/fec/repetition.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/fec/repetition.cpp.o.d"
  "/root/repo/src/mmtag/fec/scrambler.cpp" "src/CMakeFiles/mmtag.dir/mmtag/fec/scrambler.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/fec/scrambler.cpp.o.d"
  "/root/repo/src/mmtag/mac/arq.cpp" "src/CMakeFiles/mmtag.dir/mmtag/mac/arq.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/mac/arq.cpp.o.d"
  "/root/repo/src/mmtag/mac/slotted_aloha.cpp" "src/CMakeFiles/mmtag.dir/mmtag/mac/slotted_aloha.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/mac/slotted_aloha.cpp.o.d"
  "/root/repo/src/mmtag/mac/tdma.cpp" "src/CMakeFiles/mmtag.dir/mmtag/mac/tdma.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/mac/tdma.cpp.o.d"
  "/root/repo/src/mmtag/phy/bitio.cpp" "src/CMakeFiles/mmtag.dir/mmtag/phy/bitio.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/phy/bitio.cpp.o.d"
  "/root/repo/src/mmtag/phy/frame.cpp" "src/CMakeFiles/mmtag.dir/mmtag/phy/frame.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/phy/frame.cpp.o.d"
  "/root/repo/src/mmtag/phy/line_code.cpp" "src/CMakeFiles/mmtag.dir/mmtag/phy/line_code.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/phy/line_code.cpp.o.d"
  "/root/repo/src/mmtag/phy/modulation.cpp" "src/CMakeFiles/mmtag.dir/mmtag/phy/modulation.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/phy/modulation.cpp.o.d"
  "/root/repo/src/mmtag/phy/preamble.cpp" "src/CMakeFiles/mmtag.dir/mmtag/phy/preamble.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/phy/preamble.cpp.o.d"
  "/root/repo/src/mmtag/rf/adc.cpp" "src/CMakeFiles/mmtag.dir/mmtag/rf/adc.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/rf/adc.cpp.o.d"
  "/root/repo/src/mmtag/rf/amplifier.cpp" "src/CMakeFiles/mmtag.dir/mmtag/rf/amplifier.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/rf/amplifier.cpp.o.d"
  "/root/repo/src/mmtag/rf/envelope_detector.cpp" "src/CMakeFiles/mmtag.dir/mmtag/rf/envelope_detector.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/rf/envelope_detector.cpp.o.d"
  "/root/repo/src/mmtag/rf/mixer.cpp" "src/CMakeFiles/mmtag.dir/mmtag/rf/mixer.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/rf/mixer.cpp.o.d"
  "/root/repo/src/mmtag/rf/noise.cpp" "src/CMakeFiles/mmtag.dir/mmtag/rf/noise.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/rf/noise.cpp.o.d"
  "/root/repo/src/mmtag/rf/oscillator.cpp" "src/CMakeFiles/mmtag.dir/mmtag/rf/oscillator.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/rf/oscillator.cpp.o.d"
  "/root/repo/src/mmtag/rf/rf_switch.cpp" "src/CMakeFiles/mmtag.dir/mmtag/rf/rf_switch.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/rf/rf_switch.cpp.o.d"
  "/root/repo/src/mmtag/tag/addressable_tag.cpp" "src/CMakeFiles/mmtag.dir/mmtag/tag/addressable_tag.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/tag/addressable_tag.cpp.o.d"
  "/root/repo/src/mmtag/tag/command_decoder.cpp" "src/CMakeFiles/mmtag.dir/mmtag/tag/command_decoder.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/tag/command_decoder.cpp.o.d"
  "/root/repo/src/mmtag/tag/controller.cpp" "src/CMakeFiles/mmtag.dir/mmtag/tag/controller.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/tag/controller.cpp.o.d"
  "/root/repo/src/mmtag/tag/energy_model.cpp" "src/CMakeFiles/mmtag.dir/mmtag/tag/energy_model.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/tag/energy_model.cpp.o.d"
  "/root/repo/src/mmtag/tag/modulator.cpp" "src/CMakeFiles/mmtag.dir/mmtag/tag/modulator.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/tag/modulator.cpp.o.d"
  "/root/repo/src/mmtag/tag/termination_bank.cpp" "src/CMakeFiles/mmtag.dir/mmtag/tag/termination_bank.cpp.o" "gcc" "src/CMakeFiles/mmtag.dir/mmtag/tag/termination_bank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
