// Integer decimation/interpolation and rational-rate polyphase resampling.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/dsp/fir.hpp"

namespace mmtag::dsp {

/// Anti-aliased decimator: low-pass at 0.5/factor then keep every factor-th
/// sample.
class decimator {
public:
    /// `factor` >= 1; `taps_per_phase` controls the anti-alias filter length.
    explicit decimator(std::size_t factor, std::size_t taps_per_phase = 24);

    [[nodiscard]] std::size_t factor() const { return factor_; }
    [[nodiscard]] cvec process(std::span<const cf64> input);
    void reset();

private:
    std::size_t factor_;
    fir_filter filter_;
    std::size_t phase_ = 0;
};

/// Zero-stuffing interpolator with anti-image low-pass.
class interpolator {
public:
    explicit interpolator(std::size_t factor, std::size_t taps_per_phase = 24);

    [[nodiscard]] std::size_t factor() const { return factor_; }
    [[nodiscard]] cvec process(std::span<const cf64> input);
    void reset();

private:
    std::size_t factor_;
    fir_filter filter_;
};

/// Rational resampler: up by `interpolation`, down by `decimation`.
class rational_resampler {
public:
    rational_resampler(std::size_t interpolation, std::size_t decimation,
                       std::size_t taps_per_phase = 24);

    [[nodiscard]] double rate() const;
    [[nodiscard]] cvec process(std::span<const cf64> input);
    void reset();

private:
    interpolator up_;
    decimator down_;
};

} // namespace mmtag::dsp
