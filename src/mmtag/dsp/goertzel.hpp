// Goertzel single-bin DFT — the canonical low-power tone detector. A tag
// MCU can run one Goertzel accumulator per candidate wake-up tone at a tiny
// fraction of an FFT's cost; the AP uses it to monitor specific offsets.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Streaming Goertzel accumulator for one normalized frequency
/// (cycles/sample). Feed samples, then read the bin power; reset to reuse.
class goertzel {
public:
    /// `frequency_norm` in [0, 1) as a fraction of the sample rate.
    explicit goertzel(double frequency_norm);

    void process(cf64 sample);
    void process(std::span<const cf64> samples);

    [[nodiscard]] std::size_t samples_consumed() const { return count_; }

    /// Complex DFT bin value at the configured frequency for the samples
    /// consumed since the last reset.
    [[nodiscard]] cf64 bin() const;

    /// |bin|^2 normalized by N^2 — mean power of a matching tone.
    [[nodiscard]] double power() const;

    void reset();

private:
    double coefficient_;
    cf64 phasor_;
    cf64 s1_{};
    cf64 s2_{};
    std::size_t count_ = 0;
};

/// One-shot: power of `samples` at `frequency_norm`.
[[nodiscard]] double goertzel_power(std::span<const cf64> samples, double frequency_norm);

/// Detects which (if any) of `candidate_frequencies` carries at least
/// `threshold_power`; returns the index of the strongest qualifying tone or
/// SIZE_MAX when none qualifies.
[[nodiscard]] std::size_t detect_tone(std::span<const cf64> samples,
                                      std::span<const double> candidate_frequencies,
                                      double threshold_power);

} // namespace mmtag::dsp
