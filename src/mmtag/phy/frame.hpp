// mmtag frame format and symbol-level assembly/parsing.
//
//   [ preamble | header (BPSK, Hamming-coded) | payload (scheme, FEC) ]
//
// Header (4 bytes before coding):
//   byte 0: version (2 bits) | modulation (3 bits) | fec rate (3 bits)
//   bytes 1-2: payload length in bytes, big endian
//   byte 3: CRC-8 over bytes 0-2
// Header bits are Hamming(7,4) coded and sent as BPSK so the header decodes
// at lower SNR than any payload configuration.
//
// Payload: bytes + CRC-32, scrambled, optionally convolutionally coded and
// block-interleaved, then mapped to the negotiated constellation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mmtag/common.hpp"
#include "mmtag/fec/convolutional.hpp"
#include "mmtag/phy/modulation.hpp"
#include "mmtag/phy/preamble.hpp"

namespace mmtag::phy {

/// Payload FEC selection (3-bit field in the header).
enum class fec_mode : std::uint8_t {
    uncoded = 0,
    conv_half = 1,
    conv_two_thirds = 2,
    conv_three_quarters = 3,
};

[[nodiscard]] double fec_mode_rate(fec_mode mode);
[[nodiscard]] const char* fec_mode_name(fec_mode mode);

struct frame_config {
    modulation scheme = modulation::qpsk;
    fec_mode fec = fec_mode::conv_half;
    preamble_layout preamble{};
    std::uint8_t scrambler_seed = 0x5D;
    std::size_t interleaver_rows = 8;
    std::size_t interleaver_columns = 12;
};

/// Effective information bits per symbol (modulation x code rate).
[[nodiscard]] double spectral_efficiency(const frame_config& cfg);

inline constexpr std::size_t max_payload_bytes = 2047;
inline constexpr std::size_t header_symbol_count = 56; // 4 bytes -> Hamming(7,4) -> BPSK

/// Builds the complete symbol stream (preamble + header + payload) for a
/// payload of at most max_payload_bytes.
[[nodiscard]] cvec build_frame(std::span<const std::uint8_t> payload, const frame_config& cfg);

/// Number of payload symbols a frame of `payload_bytes` occupies under `cfg`
/// (the receiver uses this to know where the frame ends).
[[nodiscard]] std::size_t payload_symbol_count(std::size_t payload_bytes,
                                               const frame_config& cfg);

struct decoded_header {
    std::uint8_t version = 0;
    modulation scheme = modulation::qpsk;
    fec_mode fec = fec_mode::conv_half;
    std::size_t payload_bytes = 0;
};

/// Decodes the header from its 56 BPSK symbols; nullopt on CRC failure.
[[nodiscard]] std::optional<decoded_header> decode_header(std::span<const cf64> symbols);

struct decode_result {
    bool crc_ok = false;
    decoded_header header;
    std::vector<std::uint8_t> payload;
    std::size_t symbols_consumed = 0; ///< header + payload symbols
};

/// Parses a frame from a symbol stream beginning at the header (i.e. at
/// sync_result::frame_start). `noise_variance` feeds the soft demapper.
/// Returns nullopt when the header is undecodable or the stream is too
/// short; returns a result with crc_ok=false when only the payload CRC
/// fails (so callers can count packet errors).
[[nodiscard]] std::optional<decode_result> decode_frame(std::span<const cf64> symbols,
                                                        const frame_config& cfg,
                                                        double noise_variance = 0.1);

} // namespace mmtag::phy
