#include "mmtag/dsp/agc.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::dsp {

agc::agc() : agc(config{}) {}

agc::agc(const config& cfg) : cfg_(cfg), gain_(cfg.initial_gain)
{
    if (cfg_.reference <= 0.0) throw std::invalid_argument("agc: reference must be > 0");
    if (cfg_.step <= 0.0 || cfg_.step >= 1.0) {
        throw std::invalid_argument("agc: step must be in (0, 1)");
    }
    if (!(cfg_.min_gain > 0.0 && cfg_.min_gain <= cfg_.max_gain)) {
        throw std::invalid_argument("agc: invalid gain bounds");
    }
}

cf64 agc::process(cf64 input)
{
    const cf64 output = input * gain_;
    const double envelope = std::abs(output);
    // Log-domain update keeps the loop stable across decades of input power.
    if (envelope > 0.0) {
        gain_ *= std::exp(cfg_.step * std::log(cfg_.reference / envelope));
    }
    gain_ = std::clamp(gain_, cfg_.min_gain, cfg_.max_gain);
    return output;
}

cvec agc::process(std::span<const cf64> input)
{
    cvec out;
    out.reserve(input.size());
    for (cf64 x : input) out.push_back(process(x));
    return out;
}

void agc::reset()
{
    gain_ = cfg_.initial_gain;
}

} // namespace mmtag::dsp
