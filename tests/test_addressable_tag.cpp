// Addressable-tag protocol: state machine units plus the full two-way
// exchange — AP transmits a PIE command over the air, the addressed tag
// decodes it with its envelope detector and backscatters its payload, and
// the AP receives it. The complete mmtag protocol loop at the sample level.
#include <gtest/gtest.h>

#include "mmtag/ap/receiver.hpp"
#include "mmtag/ap/transmitter.hpp"
#include "mmtag/channel/backscatter_channel.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/tag/addressable_tag.hpp"

namespace mmtag {
namespace {

constexpr double fs = 50e6;

core::system_config scenario()
{
    auto cfg = core::default_scenario();
    cfg.sample_rate_hz = fs;
    cfg.symbol_rate_hz = 5e6;
    cfg.transmitter.sample_rate_hz = fs;
    cfg.receiver.sample_rate_hz = fs;
    cfg.receiver.samples_per_symbol = 10;
    cfg.receiver.lna.bandwidth_hz = fs;
    cfg.modulator.sample_rate_hz = fs;
    return cfg;
}

tag::addressable_tag::config tag_config(std::uint16_t id)
{
    tag::addressable_tag::config cfg;
    cfg.tag_id = id;
    cfg.modulator = scenario().modulator;
    cfg.detector.sample_rate_hz = fs;
    cfg.detector.video_bandwidth_hz = 5e6;
    cfg.detector.responsivity_v_per_w = 2000.0;
    cfg.detector.noise_equivalent_power_w = 1e-10;
    cfg.decoder.sample_rate_hz = fs;
    cfg.decoder.unit_s = 2e-6;
    cfg.turnaround_s = 20e-6;
    return cfg;
}

ap::tag_command make_command(ap::tag_command::kind kind, std::uint16_t id)
{
    ap::tag_command cmd;
    cmd.command = kind;
    cmd.tag_id = id;
    return cmd;
}

TEST(addressable_tag, state_machine_transitions)
{
    tag::addressable_tag tag(tag_config(7));
    EXPECT_FALSE(tag.selected());

    tag.apply_command(make_command(ap::tag_command::kind::select, 7));
    EXPECT_TRUE(tag.selected());

    tag.apply_command(make_command(ap::tag_command::kind::select, 9));
    EXPECT_FALSE(tag.selected()); // someone else got selected

    tag.apply_command(make_command(ap::tag_command::kind::sleep, 7));
    EXPECT_TRUE(tag.muted());

    tag.apply_command(make_command(ap::tag_command::kind::query_all, 0));
    EXPECT_FALSE(tag.muted()); // new round wakes everyone
}

TEST(addressable_tag, sleep_other_tag_does_not_mute)
{
    tag::addressable_tag tag(tag_config(7));
    tag.apply_command(make_command(ap::tag_command::kind::sleep, 8));
    EXPECT_FALSE(tag.muted());
}

class two_way_exchange : public ::testing::Test {
protected:
    /// Runs one full exchange: AM command -> tag -> backscatter -> AP.
    struct outcome {
        tag::addressable_tag::reaction reaction;
        ap::reception rx;
    };

    outcome run(std::uint16_t tag_id, std::uint16_t addressed_id,
                ap::tag_command::kind kind = ap::tag_command::kind::read)
    {
        const auto sys = scenario();
        channel::backscatter_channel chan(core::make_channel_config(sys));
        ap::ap_transmitter tx(sys.transmitter, 11);
        ap::ap_receiver rx(sys.receiver, 13);
        tag::addressable_tag tag(tag_config(tag_id));

        // Envelope: the PIE command followed by CW for the response window.
        ap::query_encoder::config enc_cfg;
        enc_cfg.sample_rate_hz = fs;
        enc_cfg.unit_s = 2e-6;
        const ap::query_encoder encoder(enc_cfg);
        rvec envelope = encoder.encode(make_command(kind, addressed_id));
        const auto cw_samples = static_cast<std::size_t>(400e-6 * fs);
        envelope.insert(envelope.end(), cw_samples, 1.0);

        const auto query = tx.generate_modulated(envelope);
        const cvec at_tag = chan.incident_at_tag(query.rf);

        outcome result{tag.process(at_tag, phy::string_to_bytes("sensor data 42")), {}};

        const cvec antenna = chan.ap_received(query.rf, result.reaction.gamma);
        // The AP decodes the response from the post-command CW region.
        const std::size_t slice_start = envelope.size() - cw_samples;
        const std::span<const cf64> window{antenna.data() + slice_start, cw_samples};
        const std::span<const cf64> lo{query.lo.data() + slice_start, cw_samples};
        result.rx = rx.receive(window, lo);
        return result;
    }
};

TEST_F(two_way_exchange, addressed_tag_responds_and_ap_decodes)
{
    const auto result = run(42, 42);
    ASSERT_TRUE(result.reaction.command_heard);
    EXPECT_EQ(result.reaction.command.tag_id, 42);
    ASSERT_TRUE(result.reaction.responded);
    ASSERT_TRUE(result.rx.frame_found);
    EXPECT_TRUE(result.rx.crc_ok);
    EXPECT_EQ(phy::bytes_to_string(result.rx.payload), "sensor data 42");
    EXPECT_GT(result.rx.snr_db, 20.0);
}

TEST_F(two_way_exchange, wrong_address_stays_silent)
{
    const auto result = run(42, 43);
    EXPECT_TRUE(result.reaction.command_heard); // hears the command...
    EXPECT_FALSE(result.reaction.responded);    // ...but it isn't for us
    EXPECT_FALSE(result.rx.frame_found);        // AP hears nothing
}

TEST_F(two_way_exchange, muted_tag_ignores_read)
{
    const auto sys = scenario();
    channel::backscatter_channel chan(core::make_channel_config(sys));
    ap::ap_transmitter tx(sys.transmitter, 17);
    tag::addressable_tag tag(tag_config(5));
    tag.apply_command(make_command(ap::tag_command::kind::sleep, 5));
    ASSERT_TRUE(tag.muted());

    ap::query_encoder::config enc_cfg;
    enc_cfg.sample_rate_hz = fs;
    enc_cfg.unit_s = 2e-6;
    const ap::query_encoder encoder(enc_cfg);
    rvec envelope = encoder.encode(make_command(ap::tag_command::kind::read, 5));
    envelope.insert(envelope.end(), static_cast<std::size_t>(200e-6 * fs), 1.0);
    const auto query = tx.generate_modulated(envelope);
    const cvec at_tag = chan.incident_at_tag(query.rf);
    const auto reaction = tag.process(at_tag, phy::random_bytes(8, 1));
    EXPECT_TRUE(reaction.command_heard);
    EXPECT_FALSE(reaction.responded);
}

TEST_F(two_way_exchange, select_then_broadcast_read)
{
    // SELECT the tag first; a subsequent READ addressed to the broadcast id
    // (0) still elicits a response because the tag is selected.
    const auto sys = scenario();
    channel::backscatter_channel chan(core::make_channel_config(sys));
    ap::ap_transmitter tx(sys.transmitter, 19);
    tag::addressable_tag tag(tag_config(9));
    tag.apply_command(make_command(ap::tag_command::kind::select, 9));
    ASSERT_TRUE(tag.selected());

    ap::query_encoder::config enc_cfg;
    enc_cfg.sample_rate_hz = fs;
    enc_cfg.unit_s = 2e-6;
    const ap::query_encoder encoder(enc_cfg);
    rvec envelope = encoder.encode(make_command(ap::tag_command::kind::read, 0));
    envelope.insert(envelope.end(), static_cast<std::size_t>(400e-6 * fs), 1.0);
    const auto query = tx.generate_modulated(envelope);
    const cvec at_tag = chan.incident_at_tag(query.rf);
    const auto reaction = tag.process(at_tag, phy::random_bytes(8, 2));
    EXPECT_TRUE(reaction.responded);
}

TEST(addressable_tag, validation)
{
    auto cfg = tag_config(1);
    cfg.detector.sample_rate_hz = 1e6; // mismatched rates
    EXPECT_THROW(tag::addressable_tag{cfg}, std::invalid_argument);
}

} // namespace
} // namespace mmtag
