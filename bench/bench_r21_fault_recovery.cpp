// R21 — Fault injection and supervised outage recovery (extension).
// A seeded fault schedule (blockage bursts, carrier dropouts, LO steps,
// interferer bursts, tag brownouts) perturbs the sample-accurate link while
// framed traffic is offered two ways: through the AP link supervisor
// (CRC-streak outage detection, capped-exponential-backoff retransmission,
// MCS fallback, watchdog reacquisition) and through plain fixed-rate
// stop-and-wait ARQ. Expected shape: the supervisor degrades gracefully as
// the fault rate grows, while the unsupervised link falls off a cliff the
// moment a persistent fault (LO step) lands — it can retransmit forever but
// never re-locks. Both arms see bit-identical faults per seed.
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "mmtag/core/supervised_link.hpp"
#include "mmtag/fault/fault_injector.hpp"

using namespace mmtag;

namespace {

fault::fault_schedule::config schedule_config(double rate_hz, double mean_duration_s)
{
    fault::fault_schedule::config cfg;
    cfg.horizon_s = 80e-3; // covers the whole offered-traffic window
    cfg.event_rate_hz = rate_hz;
    cfg.mean_duration_s = mean_duration_s;
    return cfg;
}

core::system_config link_config(std::uint64_t seed)
{
    auto cfg = bench::bench_scenario();
    cfg.distance_m = 4.0; // ~21 dB margin over QPSK-1/2: healthy but finite
    cfg.seed = seed;
    return cfg;
}

} // namespace

int main(int argc, char** argv)
{
    const bool csv = bench::csv_mode(argc, argv);
    bench::banner("R21", "goodput and recovery under injected faults, supervisor on/off",
                  csv);

    constexpr std::size_t frames = 500;
    constexpr std::size_t payload_bytes = 24;
    std::uint64_t fault_seed = 42;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--fault-seed") {
            fault_seed = std::strtoull(argv[i + 1], nullptr, 10);
        }
    }

    const ap::supervisor_config sup_cfg{};
    constexpr std::size_t baseline_retries = 8;

    // Fault-free reference goodput for the "retained" column.
    double reference_bps = 0.0;
    {
        core::link_simulator link(link_config(11));
        reference_bps =
            core::run_supervised_link(link, nullptr, sup_cfg, frames, payload_bytes)
                .goodput_bps;
    }

    bench::table out({"fault_rate_hz", "mean_dur_ms", "sup_goodput_mbps",
                      "base_goodput_mbps", "sup_delivery", "base_delivery",
                      "outages", "detect_ms", "recover_ms", "reacq", "retained"},
                     csv);

    const struct {
        double rate_hz;
        double duration_s;
    } cells[] = {{0.0, 2e-3}, {150.0, 1e-3}, {150.0, 3e-3},
                 {400.0, 1e-3}, {400.0, 3e-3}};

    std::uint64_t cell_index = 0;
    for (const auto& cell : cells) {
        const auto sched_cfg = schedule_config(cell.rate_hz, cell.duration_s);
        const std::uint64_t cell_seed = fault_seed * 1'000'003 + cell_index++;

        core::link_simulator sup_link(link_config(11));
        fault::fault_injector sup_faults{fault::fault_schedule(sched_cfg, cell_seed)};
        const auto sup = core::run_supervised_link(
            sup_link, cell.rate_hz > 0.0 ? &sup_faults : nullptr, sup_cfg, frames,
            payload_bytes);

        core::link_simulator base_link(link_config(11));
        fault::fault_injector base_faults{fault::fault_schedule(sched_cfg, cell_seed)};
        const auto base = core::run_baseline_link(
            base_link, cell.rate_hz > 0.0 ? &base_faults : nullptr, baseline_retries,
            frames, payload_bytes);

        out.add_row({bench::fmt("%.0f", cell.rate_hz),
                     bench::fmt("%.0f", cell.duration_s * 1e3),
                     bench::fmt("%.3f", sup.goodput_bps / 1e6),
                     bench::fmt("%.3f", base.goodput_bps / 1e6),
                     bench::fmt("%.3f", sup.delivery_ratio()),
                     bench::fmt("%.3f", base.delivery_ratio()),
                     bench::fmt("%.0f", static_cast<double>(sup.recovery.outages)),
                     bench::fmt("%.2f", sup.recovery.mean_detect_s() * 1e3),
                     bench::fmt("%.2f", sup.recovery.mean_recover_s() * 1e3),
                     bench::fmt("%.0f", static_cast<double>(sup.recovery.reacquisitions)),
                     bench::fmt("%.3f", sup.goodput_retained(reference_bps))});
    }
    out.print();
    return 0;
}
