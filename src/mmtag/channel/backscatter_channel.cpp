#include "mmtag/channel/backscatter_channel.hpp"

#include <algorithm>
#include <stdexcept>

#include "mmtag/channel/atmosphere.hpp"
#include "mmtag/channel/fading.hpp"
#include "mmtag/channel/path_loss.hpp"

namespace mmtag::channel {

backscatter_channel::backscatter_channel(const config& cfg) : cfg_(cfg)
{
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("backscatter_channel: fs <= 0");
    if (cfg.distance_m <= 0.0) throw std::invalid_argument("backscatter_channel: distance <= 0");

    const double one_way_seconds = cfg.distance_m / speed_of_light;
    one_way_delay_ = static_cast<std::size_t>(std::round(one_way_seconds * cfg.sample_rate_hz));
    round_trip_delay_ = 2 * one_way_delay_;

    const double tx_gain = from_db(cfg.ap_tx_gain_dbi);
    const double rx_gain = from_db(cfg.ap_rx_gain_dbi);
    const double backscatter_gain = from_db(cfg.tag_backscatter_gain_db);
    const double aperture_gain = from_db(cfg.tag_aperture_gain_db);
    const double atmospheric = from_db(
        -atmospheric_loss_db(cfg.distance_m, cfg.frequency_hz, cfg.rain_rate_mm_per_hr));

    if (cfg.implementation_loss_db < 0.0) {
        throw std::invalid_argument("backscatter_channel: negative implementation loss");
    }
    const double implementation = std::pow(10.0, -cfg.implementation_loss_db / 20.0);

    const double round_trip_power = backscatter_received_power(
        1.0, tx_gain, rx_gain, backscatter_gain, cfg.distance_m, cfg.frequency_hz);
    // Two-way gaseous loss; implementation loss budgeted once on the tag path.
    round_trip_amplitude_ = std::sqrt(round_trip_power) * atmospheric * implementation;

    const double one_way_power = one_way_received_power(1.0, tx_gain, aperture_gain,
                                                        cfg.distance_m, cfg.frequency_hz);
    one_way_amplitude_ = std::sqrt(one_way_power * atmospheric) * std::sqrt(implementation);

    leakage_amplitude_ = std::pow(10.0, cfg.tx_leakage_db / 20.0);

    redraw_fading(cfg.fading_seed);

    for (const auto& reflector : cfg.clutter) {
        if (reflector.distance_m <= 0.0 || reflector.rcs_m2 <= 0.0) {
            throw std::invalid_argument("backscatter_channel: invalid clutter entry");
        }
        const double lambda = wavelength(cfg.frequency_hz);
        // Radar equation for a point scatterer of RCS sigma, knocked down by
        // the AP's sidelobe discrimination toward it.
        const double power = tx_gain * rx_gain * lambda * lambda * reflector.rcs_m2 *
                             from_db(-reflector.antenna_discrimination_db) /
                             (std::pow(4.0 * pi, 3.0) * std::pow(reflector.distance_m, 4.0));
        clutter_amplitudes_.push_back(std::sqrt(power));
        const double delay_seconds = 2.0 * reflector.distance_m / speed_of_light;
        clutter_delays_.push_back(
            static_cast<std::size_t>(std::round(delay_seconds * cfg.sample_rate_hz)));
    }
}

void backscatter_channel::redraw_fading(std::uint64_t seed)
{
    if (cfg_.rician_k_db >= 80.0) {
        fading_ = cf64{1.0, 0.0}; // effectively pure LOS
        return;
    }
    std::mt19937_64 rng(seed);
    fading_ = rician_coefficient(cfg_.rician_k_db, rng);
}

cvec backscatter_channel::incident_at_tag(std::span<const cf64> tx) const
{
    cvec out(tx.size(), cf64{});
    for (std::size_t k = one_way_delay_; k < tx.size(); ++k) {
        out[k] = one_way_amplitude_ * tx[k - one_way_delay_];
    }
    return out;
}

cvec backscatter_channel::ap_received(std::span<const cf64> tx,
                                      std::span<const cf64> tag_gamma) const
{
    if (tag_gamma.empty()) {
        throw std::invalid_argument("backscatter_channel: empty tag reflection waveform");
    }
    cvec out(tx.size(), cf64{});

    // Direct TX -> RX leakage (zero delay at these scales).
    for (std::size_t k = 0; k < tx.size(); ++k) out[k] = leakage_amplitude_ * tx[k];

    // Static clutter returns.
    for (std::size_t c = 0; c < clutter_delays_.size(); ++c) {
        const std::size_t delay = clutter_delays_[c];
        const double amplitude = clutter_amplitudes_[c];
        for (std::size_t k = delay; k < tx.size(); ++k) {
            out[k] += amplitude * tx[k - delay];
        }
    }

    // The tag path: TX sample (k - d_rt) bounced off reflection state at tag
    // time (k - d1); indices outside the provided waveform clamp.
    const auto gamma_at = [&](std::size_t index) {
        if (index >= tag_gamma.size()) return tag_gamma.back();
        return tag_gamma[index];
    };
    const cf64 tag_gain = round_trip_amplitude_ * fading_;
    for (std::size_t k = round_trip_delay_; k < tx.size(); ++k) {
        const cf64 gamma = gamma_at(k - one_way_delay_);
        out[k] += tag_gain * gamma * tx[k - round_trip_delay_];
    }
    return out;
}

cvec backscatter_channel::tag_contribution(std::span<const cf64> tx,
                                           std::span<const cf64> tag_gamma) const
{
    if (tag_gamma.empty()) {
        throw std::invalid_argument("backscatter_channel: empty tag reflection waveform");
    }
    cvec out(tx.size(), cf64{});
    const auto gamma_at = [&](std::size_t index) {
        if (index >= tag_gamma.size()) return tag_gamma.back();
        return tag_gamma[index];
    };
    const cf64 tag_gain = round_trip_amplitude_ * fading_;
    for (std::size_t k = round_trip_delay_; k < tx.size(); ++k) {
        out[k] = tag_gain * gamma_at(k - one_way_delay_) * tx[k - round_trip_delay_];
    }
    return out;
}

double backscatter_channel::tag_path_power(double tx_power_w) const
{
    if (tx_power_w <= 0.0) throw std::invalid_argument("backscatter_channel: tx power <= 0");
    return tx_power_w * round_trip_amplitude_ * round_trip_amplitude_ * std::norm(fading_);
}

double backscatter_channel::tag_incident_power(double tx_power_w) const
{
    if (tx_power_w <= 0.0) throw std::invalid_argument("backscatter_channel: tx power <= 0");
    return tx_power_w * one_way_amplitude_ * one_way_amplitude_;
}

double backscatter_channel::static_interference_power(double tx_power_w) const
{
    if (tx_power_w <= 0.0) throw std::invalid_argument("backscatter_channel: tx power <= 0");
    double power = leakage_amplitude_ * leakage_amplitude_;
    for (double a : clutter_amplitudes_) power += a * a;
    return tx_power_w * power;
}

} // namespace mmtag::channel
