// Network supervisor: one tag_session per tag driving degraded-mode TDMA
// scheduling. Each round it
//   * reallocates the fixed data-slot budget over schedulable sessions
//     (slots freed by quarantined tags flow to the healthy ones, interleaved
//     via mac::tdma_scheduler::interleave_shares and rotated for fairness),
//   * marks DEGRADED sessions for the robust MCS, and
//   * grants probe slots to quarantined sessions whose capped backoff has
//     expired.
// The plan/record split keeps the supervisor pure: any driver (the soak
// harness's sample-accurate multitag simulator, a unit test's scripted
// outcomes) executes the plan and reports per-frame results back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mmtag/mac/tdma.hpp"
#include "mmtag/net/tag_session.hpp"

namespace mmtag::obs {
class metrics_registry;
}

namespace mmtag::net {

struct supervisor_config {
    session_config session{};
    /// Data slots per round; 0 means one per tag. The budget is conserved:
    /// quarantined tags' slots are re-dealt, not dropped, so the cycle time
    /// (and the healthy tags' aggregate share) stays constant under faults.
    std::size_t slot_budget = 0;
    /// Optional observability registry (net/... counters, gauges, and the
    /// re-admission latency histogram). Not owned; nullptr disables.
    obs::metrics_registry* metrics = nullptr;
};

/// One round's schedule.
struct round_plan {
    std::size_t round = 0;
    /// Data-slot allocation for schedulable tags (feed to
    /// mac::tdma_scheduler::build_cycle or interleave_shares).
    std::vector<mac::slot_share> shares;
    /// Tags that must transmit at the robust MCS (DEGRADED sessions).
    std::vector<std::uint32_t> robust;
    /// Quarantined tags granted a probe slot this round.
    std::vector<std::uint32_t> probes;
};

class network_supervisor {
public:
    network_supervisor(const supervisor_config& cfg, std::vector<std::uint32_t> tag_ids);

    [[nodiscard]] std::size_t tag_count() const { return sessions_.size(); }
    [[nodiscard]] const tag_session& session(std::uint32_t tag_id) const;
    /// Rounds planned so far (the next plan_round() returns this index).
    [[nodiscard]] std::size_t rounds_planned() const { return round_; }
    /// Sessions currently schedulable (ACTIVE or DEGRADED).
    [[nodiscard]] std::size_t healthy_count() const;

    /// Plans the next round and advances the round counter. Quarantined
    /// sessions whose probe is due transition to PROBING here.
    [[nodiscard]] round_plan plan_round();

    /// Reports one data-frame outcome for the round just planned. Returns
    /// false (outcome discarded) when the session stopped being schedulable
    /// mid-round — a tag with several slots can quarantine on an earlier
    /// outcome, after which the AP ignores its remaining slots.
    bool record_data(std::uint32_t tag_id, bool delivered);
    /// Reports the probe outcome for a tag granted a probe slot.
    void record_probe(std::uint32_t tag_id, bool delivered);

private:
    [[nodiscard]] tag_session& session_mut(std::uint32_t tag_id);
    [[nodiscard]] std::size_t session_index(std::uint32_t tag_id) const;
    [[nodiscard]] std::size_t current_round() const;
    void note_transitions(const tag_session& session, std::size_t before) const;

    supervisor_config cfg_;
    std::vector<std::uint32_t> tag_ids_;
    std::vector<tag_session> sessions_;
    /// Sorted (tag id, sessions_ index) for O(log n) session lookup.
    std::vector<std::pair<std::uint32_t, std::size_t>> index_;
    std::size_t round_ = 0;
    std::size_t rotation_ = 0;
};

} // namespace mmtag::net
