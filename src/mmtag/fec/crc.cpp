#include "mmtag/fec/crc.hpp"

namespace mmtag::fec {

namespace {

std::array<std::uint8_t, 256> make_crc8_table()
{
    std::array<std::uint8_t, 256> table{};
    for (unsigned i = 0; i < 256; ++i) {
        std::uint8_t value = static_cast<std::uint8_t>(i);
        for (int bit = 0; bit < 8; ++bit) {
            value = static_cast<std::uint8_t>((value & 0x80u) ? (value << 1) ^ 0x07u
                                                              : (value << 1));
        }
        table[i] = value;
    }
    return table;
}

std::array<std::uint16_t, 256> make_crc16_table()
{
    std::array<std::uint16_t, 256> table{};
    for (unsigned i = 0; i < 256; ++i) {
        std::uint16_t value = static_cast<std::uint16_t>(i << 8);
        for (int bit = 0; bit < 8; ++bit) {
            value = static_cast<std::uint16_t>((value & 0x8000u) ? (value << 1) ^ 0x1021u
                                                                 : (value << 1));
        }
        table[i] = value;
    }
    return table;
}

std::array<std::uint32_t, 256> make_crc32_table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t value = i;
        for (int bit = 0; bit < 8; ++bit) {
            value = (value & 1u) ? (value >> 1) ^ 0xEDB88320u : (value >> 1);
        }
        table[i] = value;
    }
    return table;
}

} // namespace

std::uint8_t crc8(std::span<const std::uint8_t> data)
{
    static const auto table = make_crc8_table();
    std::uint8_t crc = 0;
    for (std::uint8_t byte : data) crc = table[crc ^ byte];
    return crc;
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data)
{
    static const auto table = make_crc16_table();
    std::uint16_t crc = 0xFFFF;
    for (std::uint8_t byte : data) {
        crc = static_cast<std::uint16_t>((crc << 8) ^ table[((crc >> 8) ^ byte) & 0xFFu]);
    }
    return crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data)
{
    static const auto table = make_crc32_table();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::uint8_t byte : data) crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> append_crc32(std::span<const std::uint8_t> data)
{
    std::vector<std::uint8_t> out(data.begin(), data.end());
    const std::uint32_t crc = crc32(data);
    out.push_back(static_cast<std::uint8_t>(crc >> 24));
    out.push_back(static_cast<std::uint8_t>(crc >> 16));
    out.push_back(static_cast<std::uint8_t>(crc >> 8));
    out.push_back(static_cast<std::uint8_t>(crc));
    return out;
}

bool check_and_strip_crc32(std::span<const std::uint8_t> frame, std::vector<std::uint8_t>& payload)
{
    if (frame.size() < 4) return false;
    const std::span<const std::uint8_t> body = frame.subspan(0, frame.size() - 4);
    const std::uint32_t expected = (static_cast<std::uint32_t>(frame[frame.size() - 4]) << 24) |
                                   (static_cast<std::uint32_t>(frame[frame.size() - 3]) << 16) |
                                   (static_cast<std::uint32_t>(frame[frame.size() - 2]) << 8) |
                                   static_cast<std::uint32_t>(frame[frame.size() - 1]);
    if (crc32(body) != expected) return false;
    payload.assign(body.begin(), body.end());
    return true;
}

} // namespace mmtag::fec
