#include "mmtag/scale/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmtag/channel/path_loss.hpp"
#include "mmtag/core/link_budget.hpp"
#include "mmtag/runtime/trial_rng.hpp"

namespace mmtag::scale {

layout_kind parse_layout(const std::string& text)
{
    if (text == "grid") return layout_kind::warehouse_grid;
    if (text == "poisson") return layout_kind::poisson_disc;
    if (text == "clustered") return layout_kind::clustered;
    throw std::invalid_argument("unknown layout '" + text +
                                "' (expected grid|poisson|clustered)");
}

const char* layout_name(layout_kind kind)
{
    switch (kind) {
    case layout_kind::warehouse_grid: return "grid";
    case layout_kind::poisson_disc: return "poisson";
    case layout_kind::clustered: return "clustered";
    }
    return "?";
}

namespace {

/// Uniform double in [0, 1) from a counter-based draw: position k's
/// coordinates never depend on how many tags were placed before it.
double uniform01(std::uint64_t seed, std::uint64_t stream)
{
    return static_cast<double>(runtime::substream(seed, stream) >> 11) * 0x1.0p-53;
}

/// Standard normal via Box-Muller over two counter draws.
double normal01(std::uint64_t seed, std::uint64_t stream)
{
    const double u1 = uniform01(seed, 2 * stream);
    const double u2 = uniform01(seed, 2 * stream + 1);
    const double r = std::sqrt(-2.0 * std::log(1.0 - u1));
    return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double clamp01_floor(double v, double floor_m)
{
    if (v < 0.0) return 0.0;
    if (v > floor_m) return floor_m;
    return v;
}

void place_tags(const topology_config& cfg, deployment& out)
{
    const std::uint64_t base = runtime::mix64(cfg.seed ^ 0x70b01097ULL);
    out.tags.resize(cfg.tag_count);
    switch (cfg.layout) {
    case layout_kind::warehouse_grid: {
        // Shelving rows: tags on a ceil(sqrt(n)) grid with +-10 cm jitter,
        // matching racked-inventory deployments.
        const auto cols = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(cfg.tag_count))));
        const double pitch = cfg.floor_m / static_cast<double>(cols + 1);
        for (std::size_t k = 0; k < cfg.tag_count; ++k) {
            const double jx = (uniform01(base, 4 * k) - 0.5) * 0.2;
            const double jy = (uniform01(base, 4 * k + 1) - 0.5) * 0.2;
            out.tags[k].x_m =
                clamp01_floor(pitch * static_cast<double>(k % cols + 1) + jx, cfg.floor_m);
            out.tags[k].y_m =
                clamp01_floor(pitch * static_cast<double>(k / cols + 1) + jy, cfg.floor_m);
        }
        break;
    }
    case layout_kind::poisson_disc: {
        for (std::size_t k = 0; k < cfg.tag_count; ++k) {
            out.tags[k].x_m = uniform01(base, 4 * k) * cfg.floor_m;
            out.tags[k].y_m = uniform01(base, 4 * k + 1) * cfg.floor_m;
        }
        break;
    }
    case layout_kind::clustered: {
        const std::size_t clusters = cfg.clusters == 0 ? 1 : cfg.clusters;
        // Hotspot centres drawn inside the middle 80% of the floor so the
        // Gaussian spread rarely clips at the walls.
        std::vector<std::pair<double, double>> centres(clusters);
        for (std::size_t c = 0; c < clusters; ++c) {
            centres[c].first =
                (0.1 + 0.8 * uniform01(base, 1000000 + 2 * c)) * cfg.floor_m;
            centres[c].second =
                (0.1 + 0.8 * uniform01(base, 1000001 + 2 * c)) * cfg.floor_m;
        }
        for (std::size_t k = 0; k < cfg.tag_count; ++k) {
            const auto c = static_cast<std::size_t>(
                uniform01(base, 4 * k + 2) * static_cast<double>(clusters));
            const std::size_t cc = c >= clusters ? clusters - 1 : c;
            out.tags[k].x_m = clamp01_floor(
                centres[cc].first + cfg.cluster_sigma_m * normal01(base, 4 * k),
                cfg.floor_m);
            out.tags[k].y_m = clamp01_floor(
                centres[cc].second + cfg.cluster_sigma_m * normal01(base, 4 * k + 1),
                cfg.floor_m);
        }
        break;
    }
    }
    for (std::size_t k = 0; k < cfg.tag_count; ++k) {
        out.tags[k].id = static_cast<std::uint32_t>(k);
    }
}

double distance_3d(const placed_ap& ap, const placed_tag& tag)
{
    const double dx = ap.x_m - tag.x_m;
    const double dy = ap.y_m - tag.y_m;
    return std::sqrt(dx * dx + dy * dy + ap.z_m * ap.z_m);
}

} // namespace

deployment make_deployment(const topology_config& cfg,
                           const core::system_config& scenario)
{
    if (cfg.tag_count == 0) throw std::invalid_argument("topology: no tags");
    if (cfg.ap_count == 0) throw std::invalid_argument("topology: no APs");
    if (!(cfg.floor_m > 0.0)) throw std::invalid_argument("topology: floor <= 0");

    deployment out;
    out.config = cfg;

    // APs on a ceil(sqrt(m)) grid at mount height, centred per grid cell.
    const auto ap_cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(cfg.ap_count))));
    const auto ap_rows = (cfg.ap_count + ap_cols - 1) / ap_cols;
    out.aps.resize(cfg.ap_count);
    for (std::size_t a = 0; a < cfg.ap_count; ++a) {
        const std::size_t col = a % ap_cols;
        const std::size_t row = a / ap_cols;
        out.aps[a].x_m = cfg.floor_m * (static_cast<double>(col) + 0.5) /
                         static_cast<double>(ap_cols);
        out.aps[a].y_m = cfg.floor_m * (static_cast<double>(row) + 0.5) /
                         static_cast<double>(ap_rows);
        out.aps[a].z_m = cfg.ap_height_m;
    }

    place_tags(cfg, out);

    // Nearest-AP cell assignment.
    out.cells.assign(cfg.ap_count, {});
    for (auto& tag : out.tags) {
        std::size_t best = 0;
        double best_d = distance_3d(out.aps[0], tag);
        for (std::size_t a = 1; a < cfg.ap_count; ++a) {
            const double d = distance_3d(out.aps[a], tag);
            if (d < best_d) {
                best_d = d;
                best = a;
            }
        }
        tag.ap = best;
        tag.distance_m = best_d;
        out.cells[best].push_back(tag.id);
    }

    // Static SINR. Signal and noise come straight from the calibrated
    // monostatic budget; interference sums, per serving AP,
    //   (a) other APs' carrier leak after canceller suppression, and
    //   (b) the mean cross-cell backscatter over each other cell's tags
    //       (one co-channel tag per cell transmits in any slot; the mean is
    //       the static stand-in for the per-slot draw),
    // with (b) reusing the monostatic budget at the geometric-mean distance
    // d_eq = sqrt(d1*d2), exact for the bistatic d1^2*d2^2 spreading law.
    const core::link_budget budget(scenario);
    const double noise_w =
        dbm_to_watt(budget.at(scenario.distance_m).noise_floor_dbm);
    const double tx_power_w = dbm_to_watt(scenario.transmitter.tx_power_dbm);
    const double frequency_hz = make_channel_config(scenario).frequency_hz;
    const double ap_suppression = from_db(-cfg.ap_suppression_db);
    const double tag_suppression = from_db(-cfg.tag_suppression_db);

    // interference_w[i] = total co-channel power into AP i's receiver.
    std::vector<double> interference_w(cfg.ap_count, 0.0);
    for (std::size_t i = 0; i < cfg.ap_count; ++i) {
        for (std::size_t j = 0; j < cfg.ap_count; ++j) {
            if (j == i) continue;
            const double dx = out.aps[i].x_m - out.aps[j].x_m;
            const double dy = out.aps[i].y_m - out.aps[j].y_m;
            const double d_ap = std::max(0.1, std::sqrt(dx * dx + dy * dy));
            interference_w[i] += channel::one_way_received_power(
                                     tx_power_w, from_db(scenario.ap_tx_gain_dbi),
                                     from_db(scenario.ap_rx_gain_dbi), d_ap,
                                     frequency_hz) *
                                 ap_suppression;
            if (out.cells[j].empty()) continue;
            double cell_sum_w = 0.0;
            for (const std::size_t t : out.cells[j]) {
                const auto& u = out.tags[t];
                const double d1 = u.distance_m; // illuminated by its own AP
                const double d2 = distance_3d(out.aps[i], u);
                cell_sum_w +=
                    dbm_to_watt(budget.at(std::sqrt(d1 * d2)).received_at_ap_dbm);
            }
            interference_w[i] += tag_suppression * cell_sum_w /
                                 static_cast<double>(out.cells[j].size());
        }
    }

    for (auto& tag : out.tags) {
        const double signal_w =
            dbm_to_watt(budget.at(tag.distance_m).received_at_ap_dbm);
        tag.sinr_db = to_db(signal_w / (noise_w + interference_w[tag.ap]));
    }
    return out;
}

} // namespace mmtag::scale
