// Observability metrics: named counters, gauges, and fixed-bucket
// histograms collected per trial and folded through the sweep runner's
// ordered reduction.
//
// Every metric carries additive sufficient statistics and an exact merge()
// (the same contract as core::error_counter), so a merged registry is
// bit-identical to sequential accumulation over the same observations —
// which is what keeps `--metrics` output byte-identical across --jobs.
//
// Wall-clock metrics (scoped timers) record under "time/..." names; the
// `deterministic` view excludes them, so timing data never leaks into the
// jobs-invariant half of a result document.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace mmtag::runtime {
class json_value;
}

namespace mmtag::obs {

/// Monotonic event count. Merge is integer addition, hence exact.
class counter {
public:
    void add(std::uint64_t n = 1) { value_ += n; }
    [[nodiscard]] std::uint64_t value() const { return value_; }
    void merge(const counter& other) { value_ += other.value_; }

private:
    std::uint64_t value_ = 0;
};

/// Point-in-time sample with additive summary statistics. `last` follows
/// the merge order, which the sweep runner keeps deterministic by folding
/// trials strictly in (point, trial) order.
class gauge {
public:
    void set(double value);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double last() const { return last_; }
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }
    [[nodiscard]] double sum() const { return sum_; }
    /// NaN when no value was ever set.
    [[nodiscard]] double mean() const;

    void merge(const gauge& other);

private:
    std::uint64_t count_ = 0;
    double last_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive bucket tops in
/// ascending order, plus one implicit overflow bucket. Bounds are frozen at
/// creation so counts from different trials merge bucket-for-bucket.
class histogram {
public:
    histogram() = default;
    explicit histogram(std::span<const double> upper_bounds);

    void observe(double value);

    [[nodiscard]] const std::vector<double>& upper_bounds() const { return upper_bounds_; }
    /// Per-bucket counts; size() == upper_bounds().size() + 1 (overflow last).
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    /// NaN when empty.
    [[nodiscard]] double mean() const;

    /// Throws std::invalid_argument when the bucket bounds differ.
    void merge(const histogram& other);

private:
    std::vector<double> upper_bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/// Which metrics a snapshot includes. Scoped-timer histograms ("time/...")
/// are wall-clock dependent, so the `deterministic` view the result writer
/// embeds per sweep excludes them; they surface separately under the run
/// section through the `timing` view.
enum class metric_view { all, deterministic, timing };

/// Name-addressed collection of metrics. Not thread-safe: each trial owns
/// its registry and the reduction merges them on one thread, mirroring how
/// core::error_counter aggregates flow through runtime::run_sweep.
class metrics_registry {
public:
    /// Get-or-create. Names are free-form; "subsystem/metric" by convention.
    counter& get_counter(const std::string& name);
    gauge& get_gauge(const std::string& name);
    /// Creates with `upper_bounds` on first use; throws std::invalid_argument
    /// when the name exists with different bounds.
    histogram& get_histogram(const std::string& name, std::span<const double> upper_bounds);

    [[nodiscard]] const counter* find_counter(const std::string& name) const;
    [[nodiscard]] const gauge* find_gauge(const std::string& name) const;
    [[nodiscard]] const histogram* find_histogram(const std::string& name) const;

    [[nodiscard]] bool empty() const;
    [[nodiscard]] std::size_t size() const;
    void clear();

    /// Exact union-by-name fold of `other` into this registry.
    void merge(const metrics_registry& other);

    /// Name-sorted JSON object {"counters": {...}, "gauges": {...},
    /// "histograms": {...}} — byte-stable for a given set of observations.
    /// Non-finite doubles serialize as null.
    [[nodiscard]] runtime::json_value to_json(metric_view view = metric_view::all) const;
    [[nodiscard]] std::string to_json_string(metric_view view = metric_view::all,
                                             int indent = 0) const;

    /// True for wall-clock metric names (the "time/" prefix).
    [[nodiscard]] static bool is_timing_name(const std::string& name);

private:
    std::map<std::string, counter> counters_;
    std::map<std::string, gauge> gauges_;
    std::map<std::string, histogram> histograms_;
};

/// Shared bucket edges so the same quantity lands in the same buckets no
/// matter which subsystem observed it.
[[nodiscard]] std::span<const double> time_bounds_s();        ///< 1 us .. 10 s, log-spaced
[[nodiscard]] std::span<const double> snr_bounds_db();        ///< -10 .. 40 dB
[[nodiscard]] std::span<const double> suppression_bounds_db();///< -80 .. 0 dB
[[nodiscard]] std::span<const double> rounds_bounds();        ///< 1 .. 128, power-of-two

} // namespace mmtag::obs
