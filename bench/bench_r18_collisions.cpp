// R18 — Sample-level collisions and capture (extension).
// Two tags share one capture window with increasing slot overlap; then a
// fixed full collision with growing power disparity. Expected shape: clean
// separation decodes both; any substantial overlap between equal-power tags
// destroys both (what the slotted-ALOHA model assumes); a strong/weak pair
// exhibits capture — the near tag survives the collision.
#include "bench_util.hpp"
#include "mmtag/core/multitag_simulator.hpp"
#include "mmtag/phy/bitio.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R18", "two-tag overlap and capture at the sample level", csv);

    const auto base = bench::bench_scenario();

    if (!csv) std::printf("Equal-power tags (both at 2 m), varying slot overlap:\n");
    bench::table overlap_table({"overlap_pct", "tag0_ok", "tag1_ok"}, csv);
    for (double overlap : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        std::vector<core::tag_descriptor> tags{{0, 2.0, 0.0}, {1, 2.0, 0.0}};
        core::multitag_simulator sim(base, tags);
        const double duration = sim.burst_duration_s(24);
        const double start1 = duration * (1.0 - overlap) + (overlap >= 1.0 ? 0.0 : 20e-6);
        const auto outcomes = sim.run({{0, phy::random_bytes(24, 1), 0.0},
                                       {1, phy::random_bytes(24, 2), start1}});
        overlap_table.add_row({bench::fmt("%.0f", overlap * 100.0),
                               outcomes[0].delivered ? "yes" : "no",
                               outcomes[1].delivered ? "yes" : "no"});
    }
    overlap_table.print();

    if (!csv) std::printf("\nFull collision, tag 0 fixed at 1.5 m, tag 1 moving away:\n");
    bench::table capture_table({"tag1_distance_m", "power_gap_dB", "near_ok", "far_ok"},
                               csv);
    for (double far : {1.5, 2.0, 3.0, 4.0, 6.0}) {
        std::vector<core::tag_descriptor> tags{{0, 1.5, 0.0}, {1, far, 0.0}};
        core::multitag_simulator sim(base, tags);
        const auto outcomes = sim.run({{0, phy::random_bytes(24, 3), 0.0},
                                       {1, phy::random_bytes(24, 4), 0.0}});
        const double gap_db = 40.0 * std::log10(far / 1.5);
        capture_table.add_row({bench::fmt("%.1f", far), bench::fmt("%.1f", gap_db),
                               outcomes[0].delivered ? "yes" : "no",
                               outcomes[1].delivered ? "yes" : "no"});
    }
    capture_table.print();
    return 0;
}
