# Empty dependencies file for bench_r09_inventory.
# This may be replaced when dependencies are built.
