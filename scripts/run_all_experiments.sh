#!/usr/bin/env bash
# Regenerates every reconstructed experiment (R1..R20) into results/.
# Usage: scripts/run_all_experiments.sh [build-dir] [--csv]
set -euo pipefail

build_dir="${1:-build}"
format_flag="${2:-}"
out_dir="results"
mkdir -p "$out_dir"

for bench in "$build_dir"/bench/bench_r*; do
  name="$(basename "$bench")"
  echo "== $name"
  if [[ "$format_flag" == "--csv" ]]; then
    "$bench" --csv > "$out_dir/$name.csv"
  else
    "$bench" > "$out_dir/$name.txt"
  fi
done
echo "wrote $(ls "$out_dir" | wc -l) result files to $out_dir/"
