#include <gtest/gtest.h>

#include <random>

#include "mmtag/dsp/fft.hpp"

namespace mmtag::dsp {
namespace {

cvec random_signal(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> g(0.0, 1.0);
    cvec x(n);
    for (auto& v : x) v = {g(rng), g(rng)};
    return x;
}

TEST(fft, power_of_two_helpers)
{
    EXPECT_TRUE(is_power_of_two(1));
    EXPECT_TRUE(is_power_of_two(1024));
    EXPECT_FALSE(is_power_of_two(0));
    EXPECT_FALSE(is_power_of_two(12));
    EXPECT_EQ(next_power_of_two(1), 1u);
    EXPECT_EQ(next_power_of_two(17), 32u);
    EXPECT_EQ(next_power_of_two(64), 64u);
}

TEST(fft, rejects_non_power_of_two)
{
    EXPECT_THROW(fft_plan(12), std::invalid_argument);
}

TEST(fft, impulse_transforms_to_flat_spectrum)
{
    cvec x(16, cf64{});
    x[0] = {1.0, 0.0};
    const cvec spectrum = fft(x);
    for (const auto& bin : spectrum) {
        EXPECT_NEAR(bin.real(), 1.0, 1e-12);
        EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
    }
}

TEST(fft, single_tone_lands_in_one_bin)
{
    constexpr std::size_t n = 64;
    constexpr std::size_t bin = 5;
    cvec x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = std::polar(1.0, two_pi * static_cast<double>(bin * i) / n);
    }
    const cvec spectrum = fft(x);
    for (std::size_t k = 0; k < n; ++k) {
        if (k == bin) EXPECT_NEAR(std::abs(spectrum[k]), static_cast<double>(n), 1e-9);
        else EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
    }
}

class fft_roundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(fft_roundtrip, inverse_recovers_input)
{
    const std::size_t n = GetParam();
    const cvec x = random_signal(n, 42 + n);
    const cvec back = ifft(fft(x));
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-9) << "index " << i;
    }
}

TEST_P(fft_roundtrip, parseval_energy_preserved)
{
    const std::size_t n = GetParam();
    const cvec x = random_signal(n, 7 + n);
    const cvec spectrum = fft(x);
    double time_energy = 0.0;
    for (const auto& v : x) time_energy += std::norm(v);
    double freq_energy = 0.0;
    for (const auto& v : spectrum) freq_energy += std::norm(v);
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6 * time_energy + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(sizes, fft_roundtrip,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 1024, 4096));

TEST(fft, convolution_matches_direct)
{
    const cvec a = random_signal(20, 1);
    const cvec b = random_signal(7, 2);
    const cvec fast = fft_convolve(a, b);
    ASSERT_EQ(fast.size(), a.size() + b.size() - 1);
    for (std::size_t n = 0; n < fast.size(); ++n) {
        cf64 direct{};
        for (std::size_t k = 0; k < b.size(); ++k) {
            if (n >= k && n - k < a.size()) direct += a[n - k] * b[k];
        }
        EXPECT_NEAR(std::abs(fast[n] - direct), 0.0, 1e-9);
    }
}

TEST(fft, power_spectrum_total_equals_signal_power)
{
    const cvec x = random_signal(128, 3);
    const rvec spectrum = power_spectrum(x);
    double total = 0.0;
    for (double p : spectrum) total += p;
    double signal = 0.0;
    for (const auto& v : x) signal += std::norm(v);
    EXPECT_NEAR(total, signal, 1e-6 * signal);
}

TEST(fft, fft_shift_moves_dc_to_center)
{
    const rvec spectrum = {10.0, 1.0, 2.0, 3.0};
    const rvec shifted = fft_shift(spectrum);
    EXPECT_DOUBLE_EQ(shifted[2], 10.0);
}

} // namespace
} // namespace mmtag::dsp
