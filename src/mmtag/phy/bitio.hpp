// Byte <-> bit packing helpers (MSB-first throughout the PHY).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mmtag::phy {

/// Unpacks bytes into bits, MSB first.
[[nodiscard]] std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Packs bits (0/1) into bytes, MSB first; length must be a multiple of 8.
[[nodiscard]] std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits);

/// String <-> byte conveniences for examples and tests.
[[nodiscard]] std::vector<std::uint8_t> string_to_bytes(const std::string& text);
[[nodiscard]] std::string bytes_to_string(std::span<const std::uint8_t> bytes);

/// Hamming distance between two equal-length bit vectors.
[[nodiscard]] std::size_t hamming_distance(std::span<const std::uint8_t> a,
                                           std::span<const std::uint8_t> b);

/// Random payload generator for BER runs (seeded, deterministic).
[[nodiscard]] std::vector<std::uint8_t> random_bytes(std::size_t count, std::uint64_t seed);
[[nodiscard]] std::vector<std::uint8_t> random_bits(std::size_t count, std::uint64_t seed);

} // namespace mmtag::phy
