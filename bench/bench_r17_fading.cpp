// R17 — Fading robustness (extension).
// Block Rician fading on the tag path at a mid-range operating point.
// Expected shape: strong-LOS (high K) channels behave like the static link;
// as K drops toward Rayleigh, per-frame SNR spreads over many dB and PER
// rises even though the *mean* budget is unchanged — the argument for link
// margin and ARQ in deployments.
#include "bench_util.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/dsp/estimators.hpp"
#include "mmtag/mac/arq.hpp"
#include "mmtag/phy/bitio.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R17", "link vs Rician K-factor at 6 m (+ ARQ recovery)", csv);

    constexpr std::size_t frames = 40;
    bench::table out({"k_factor_dB", "mean_snr_dB", "snr_std_dB", "per",
                      "arq_delivery", "arq_tx_per_frame"},
                     csv);
    for (double k_db : {100.0, 10.0, 6.0, 3.0, 0.0, -10.0}) {
        auto cfg = bench::bench_scenario();
        cfg.distance_m = 6.0;
        cfg.rician_k_db = k_db;
        core::link_simulator sim(cfg);

        dsp::running_stats snr;
        std::size_t delivered = 0;
        for (std::size_t f = 0; f < frames; ++f) {
            const auto result = sim.run_frame(phy::random_bytes(24, 100 + f));
            if (result.rx.frame_found) snr.add(result.rx.snr_db);
            if (result.delivered) ++delivered;
        }
        const double per = 1.0 - static_cast<double>(delivered) / frames;

        // What stop-and-wait ARQ recovers at this frame success rate.
        const mac::stop_and_wait_arq arq{mac::arq_config{}};
        const auto arq_stats = arq.run(500, std::max(1.0 - per, 0.01), 17);

        out.add_row({k_db >= 80.0 ? "LOS" : bench::fmt("%.0f", k_db),
                     bench::fmt("%.1f", snr.count() ? snr.mean() : -100.0),
                     bench::fmt("%.1f", snr.count() > 1 ? snr.standard_deviation() : 0.0),
                     bench::fmt("%.2f", per),
                     bench::fmt("%.3f", arq_stats.delivery_ratio()),
                     bench::fmt("%.2f", static_cast<double>(arq_stats.transmissions) /
                                            static_cast<double>(arq_stats.frames_offered))});
    }
    out.print();
    return 0;
}
