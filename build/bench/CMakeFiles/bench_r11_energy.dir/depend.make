# Empty dependencies file for bench_r11_energy.
# This may be replaced when dependencies are built.
