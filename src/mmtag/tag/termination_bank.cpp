#include "mmtag/tag/termination_bank.hpp"

#include <random>
#include <stdexcept>

#include "mmtag/antenna/termination.hpp"
#include "mmtag/dsp/estimators.hpp"

namespace mmtag::tag {

termination_bank::termination_bank(const config& cfg) : cfg_(cfg)
{
    if (cfg.stub_loss_db < 0.0) throw std::invalid_argument("termination_bank: negative loss");
    const std::size_t m = phy::constellation_size(cfg.scheme);
    std::mt19937_64 rng(cfg.phase_error_seed);
    std::normal_distribution<double> gaussian(0.0, cfg.phase_error_rms_rad);

    gammas_.reserve(m + 1);
    for (std::size_t p = 0; p < m; ++p) {
        // Phase position p needs reflected phase 2 pi p / M. A shorted stub
        // reflects with Gamma = -exp(-2j beta l); solve for beta l and fold
        // the short's pi into the target.
        const double target_phase = two_pi * static_cast<double>(p) / static_cast<double>(m);
        const double beta_length = wrap_phase(pi - target_phase) / 2.0;
        cf64 gamma = antenna::line_transform_lossy(antenna::gamma_short(), beta_length,
                                                   cfg.stub_loss_db);
        if (cfg.phase_error_rms_rad > 0.0) gamma *= std::polar(1.0, gaussian(rng));
        gammas_.push_back(gamma);
    }
    gammas_.push_back(antenna::gamma_matched()); // absorptive state
}

std::size_t termination_bank::state_for_symbol(cf64 symbol) const
{
    if (std::abs(symbol) < 1e-12) return absorb_state();
    const std::size_t m = state_count();
    const double sector = two_pi / static_cast<double>(m);
    const auto position = static_cast<long long>(std::llround(std::arg(symbol) / sector));
    const long long wrapped = ((position % static_cast<long long>(m)) +
                               static_cast<long long>(m)) % static_cast<long long>(m);
    return static_cast<std::size_t>(wrapped);
}

double termination_bank::constellation_evm() const
{
    const std::size_t m = state_count();
    cvec realized(m);
    cvec ideal(m);
    for (std::size_t p = 0; p < m; ++p) {
        realized[p] = gammas_[p];
        ideal[p] = std::polar(1.0, two_pi * static_cast<double>(p) / static_cast<double>(m));
    }
    return dsp::evm_rms(realized, ideal);
}

} // namespace mmtag::tag
