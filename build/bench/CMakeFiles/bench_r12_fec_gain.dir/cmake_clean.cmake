file(REMOVE_RECURSE
  "CMakeFiles/bench_r12_fec_gain.dir/bench_r12_fec_gain.cpp.o"
  "CMakeFiles/bench_r12_fec_gain.dir/bench_r12_fec_gain.cpp.o.d"
  "bench_r12_fec_gain"
  "bench_r12_fec_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r12_fec_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
