file(REMOVE_RECURSE
  "CMakeFiles/wearable_streaming.dir/wearable_streaming.cpp.o"
  "CMakeFiles/wearable_streaming.dir/wearable_streaming.cpp.o.d"
  "wearable_streaming"
  "wearable_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearable_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
