#include "mmtag/dsp/pn_sequence.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace mmtag::dsp {

lfsr::lfsr(std::uint32_t polynomial, std::uint32_t degree, std::uint32_t seed)
    : polynomial_(polynomial), degree_(degree), state_(seed)
{
    if (degree == 0 || degree > 31) throw std::invalid_argument("lfsr: degree must be in [1, 31]");
    const std::uint32_t mask = (std::uint32_t{1} << degree) - 1;
    state_ &= mask;
    if (state_ == 0) throw std::invalid_argument("lfsr: seed must be nonzero modulo 2^degree");
    if ((polynomial & ~mask) != 0) {
        throw std::invalid_argument("lfsr: polynomial has taps above the register degree");
    }
}

int lfsr::step()
{
    const int output = static_cast<int>(state_ & 1u);
    const std::uint32_t feedback =
        static_cast<std::uint32_t>(std::popcount(state_ & polynomial_) & 1);
    state_ >>= 1;
    state_ |= feedback << (degree_ - 1);
    return output;
}

std::vector<std::uint8_t> lfsr::generate(std::size_t count)
{
    std::vector<std::uint8_t> bits(count);
    for (auto& bit : bits) bit = static_cast<std::uint8_t>(step());
    return bits;
}

std::vector<std::uint8_t> m_sequence(std::uint32_t degree, std::uint32_t seed)
{
    // Primitive polynomials p(x) = x^n + sum x^e + 1 as Fibonacci feedback
    // masks: bit e set for every term below x^n (bit 0 is the constant term).
    // With state bit k holding y[t+k], the feedback y[t+n] = XOR of the
    // masked bits realizes the recurrence exactly.
    static const std::uint32_t primitive_taps[] = {
        0,      // degree 0 (unused)
        0,      // 1 (unused)
        0,      // 2 (unused)
        0x5,    // 3: x^3 + x^2 + 1
        0x9,    // 4: x^4 + x^3 + 1
        0x9,    // 5: x^5 + x^3 + 1
        0x21,   // 6: x^6 + x^5 + 1
        0x41,   // 7: x^7 + x^6 + 1
        0x71,   // 8: x^8 + x^6 + x^5 + x^4 + 1
        0x21,   // 9: x^9 + x^5 + 1
        0x81,   // 10: x^10 + x^7 + 1
        0x201,  // 11: x^11 + x^9 + 1
        0xC11,  // 12: x^12 + x^11 + x^10 + x^4 + 1
        0x1901, // 13: x^13 + x^12 + x^11 + x^8 + 1
        0x3005, // 14: x^14 + x^13 + x^12 + x^2 + 1
        0x4001, // 15: x^15 + x^14 + 1
        0xA011, // 16: x^16 + x^15 + x^13 + x^4 + 1
    };
    if (degree < 3 || degree > 16) {
        throw std::invalid_argument("m_sequence: supported degrees are 3..16");
    }
    lfsr generator(primitive_taps[degree], degree, seed);
    return generator.generate(generator.period());
}

std::vector<int> barker_code(std::size_t length)
{
    switch (length) {
    case 2: return {+1, -1};
    case 3: return {+1, +1, -1};
    case 4: return {+1, +1, -1, +1};
    case 5: return {+1, +1, +1, -1, +1};
    case 7: return {+1, +1, +1, -1, -1, +1, -1};
    case 11: return {+1, +1, +1, -1, -1, -1, +1, -1, -1, +1, -1};
    case 13: return {+1, +1, +1, +1, +1, -1, -1, +1, +1, -1, +1, -1, +1};
    default:
        throw std::invalid_argument("barker_code: no Barker code of that length");
    }
}

cvec bits_to_bpsk(std::span<const std::uint8_t> bits)
{
    cvec chips;
    chips.reserve(bits.size());
    for (auto bit : bits) chips.emplace_back(bit ? -1.0 : 1.0, 0.0);
    return chips;
}

rvec correlate_magnitude(std::span<const cf64> haystack, std::span<const cf64> needle)
{
    if (needle.empty() || haystack.size() < needle.size()) return {};
    rvec out(haystack.size() - needle.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i) {
        cf64 acc{};
        for (std::size_t k = 0; k < needle.size(); ++k) {
            acc += haystack[i + k] * std::conj(needle[k]);
        }
        out[i] = std::abs(acc);
    }
    return out;
}

std::size_t correlation_peak(std::span<const double> correlation, double* peak_to_sidelobe)
{
    if (correlation.empty()) throw std::invalid_argument("correlation_peak: empty input");
    const auto peak_it = std::max_element(correlation.begin(), correlation.end());
    const auto peak_index = static_cast<std::size_t>(peak_it - correlation.begin());
    if (peak_to_sidelobe != nullptr) {
        double sidelobe = 0.0;
        for (std::size_t i = 0; i < correlation.size(); ++i) {
            // Exclude the immediate neighborhood of the main peak.
            if (i + 2 >= peak_index && i <= peak_index + 2) continue;
            sidelobe = std::max(sidelobe, correlation[i]);
        }
        *peak_to_sidelobe = sidelobe > 0.0 ? *peak_it / sidelobe
                                           : std::numeric_limits<double>::infinity();
    }
    return peak_index;
}

} // namespace mmtag::dsp
