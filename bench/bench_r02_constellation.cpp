// R2 — Constellation / EVM microbenchmark.
// One frame per modulation through the full chain at 2 m; reports the EVM of
// the normalized received constellation and a coarse ASCII scatter of the
// payload symbols. Expected shape: all schemes produce tight clusters at
// short range; EVM grows slightly with constellation order (load-modulation
// stub loss + switch leakage), matching the paper's clean "symbols separate
// cleanly" microbenchmark.
#include "bench_util.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/phy/bitio.hpp"

using namespace mmtag;

namespace {

void ascii_scatter(const cvec& symbols)
{
    constexpr int size = 21;
    char grid[size][size];
    for (auto& row : grid) std::fill(std::begin(row), std::end(row), ' ');
    for (const auto& s : symbols) {
        const int x = static_cast<int>(std::lround((s.real() + 1.5) / 3.0 * (size - 1)));
        const int y = static_cast<int>(std::lround((1.5 - s.imag()) / 3.0 * (size - 1)));
        if (x >= 0 && x < size && y >= 0 && y < size) grid[y][x] = '*';
    }
    grid[size / 2][size / 2] = grid[size / 2][size / 2] == '*' ? '*' : '+';
    for (const auto& row : grid) std::printf("    %.*s\n", size, row);
}

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R2", "received constellations and EVM through the full chain", csv);

    bench::table out({"modulation", "snr_dB", "evm_dB", "evm_pct", "crc"}, csv);
    for (auto scheme : {phy::modulation::bpsk, phy::modulation::qpsk, phy::modulation::psk8,
                        phy::modulation::psk16}) {
        auto cfg = bench::bench_scenario();
        cfg.modulator.frame.scheme = scheme;
        cfg.modulator.frame.fec = phy::fec_mode::uncoded;
        cfg.receiver.frame = cfg.modulator.frame;
        core::link_simulator sim(cfg);
        const auto result = sim.run_frame(phy::random_bytes(64, 2));
        const double evm_pct = 100.0 * std::pow(10.0, result.rx.evm_db / 20.0);
        out.add_row({phy::modulation_name(scheme), bench::fmt("%.1f", result.rx.snr_db),
                     bench::fmt("%.1f", result.rx.evm_db), bench::fmt("%.2f", evm_pct),
                     result.rx.crc_ok ? "ok" : "FAIL"});
        if (!csv && scheme == phy::modulation::psk8 && !result.rx.symbols.empty()) {
            std::printf("  8-PSK received constellation (normalized symbols):\n");
            // Payload region only: skip preamble/header worth of symbols.
            const std::size_t start =
                std::min<std::size_t>(160, result.rx.symbols.size());
            cvec payload(result.rx.symbols.begin() + static_cast<std::ptrdiff_t>(start),
                         result.rx.symbols.end());
            ascii_scatter(payload);
        }
    }
    out.print();
    return 0;
}
