#include "mmtag/core/link_budget.hpp"

#include <stdexcept>

#include "mmtag/channel/backscatter_channel.hpp"
#include "mmtag/rf/noise.hpp"

namespace mmtag::core {

link_budget::link_budget(const system_config& cfg) : cfg_(cfg)
{
    validate(cfg);
}

link_budget_entry link_budget::at(double distance_m) const
{
    if (distance_m <= 0.0) throw std::invalid_argument("link_budget: distance <= 0");
    system_config cfg = cfg_;
    cfg.distance_m = distance_m;
    const channel::backscatter_channel chan(make_channel_config(cfg));

    const double tx_power_w = dbm_to_watt(cfg.transmitter.tx_power_dbm);

    link_budget_entry entry;
    entry.distance_m = distance_m;

    entry.incident_at_tag_dbm = watt_to_dbm(chan.tag_incident_power(tx_power_w));
    // The reflected field is scaled by Gamma_eff = switch insertion loss x
    // stub loss; both appear once in the reflected power.
    const double gamma_loss_db = cfg.modulator.rf_switch.insertion_loss_db +
                                 cfg.modulator.bank.stub_loss_db;
    entry.received_at_ap_dbm =
        watt_to_dbm(chan.tag_path_power(tx_power_w)) - gamma_loss_db;
    entry.static_interference_dbm = watt_to_dbm(chan.static_interference_power(tx_power_w));

    // Per-symbol noise: kT * NF over the symbol-rate bandwidth.
    const double noise_w = rf::thermal_noise_power(cfg.symbol_rate_hz) *
                           from_db(cfg.receiver.lna.noise_figure_db);
    entry.noise_floor_dbm = watt_to_dbm(noise_w);
    entry.snr_db = entry.received_at_ap_dbm - entry.noise_floor_dbm;
    return entry;
}

std::vector<link_budget_entry> link_budget::sweep(double start_m, double stop_m,
                                                  std::size_t points) const
{
    if (points < 2 || !(start_m > 0.0 && stop_m > start_m)) {
        throw std::invalid_argument("link_budget: bad sweep parameters");
    }
    std::vector<link_budget_entry> entries;
    entries.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double d = start_m + (stop_m - start_m) * static_cast<double>(i) /
                                       static_cast<double>(points - 1);
        entries.push_back(at(d));
    }
    return entries;
}

double link_budget::max_range_m(double required_snr_db) const
{
    // SNR falls 40 dB/decade in distance (d^-4); bisect on log distance.
    double low = 0.05;
    double high = 1000.0;
    if (at(low).snr_db < required_snr_db) return 0.0;
    for (int i = 0; i < 100; ++i) {
        const double mid = std::sqrt(low * high);
        if (at(mid).snr_db >= required_snr_db) low = mid;
        else high = mid;
    }
    return low;
}

} // namespace mmtag::core
