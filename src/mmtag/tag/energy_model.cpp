#include "mmtag/tag/energy_model.hpp"

#include <stdexcept>

namespace mmtag::tag {

energy_model::energy_model() : energy_model(config{}) {}

energy_model::energy_model(const config& cfg) : cfg_(cfg)
{
    if (cfg.energy_per_transition_j < 0.0 || cfg.switch_static_w < 0.0 ||
        cfg.detector_bias_w < 0.0 || cfg.mcu_active_w < 0.0 || cfg.mcu_sleep_w < 0.0) {
        throw std::invalid_argument("energy_model: negative component budget");
    }
}

double energy_model::sleep_power_w() const
{
    return cfg_.mcu_sleep_w;
}

double energy_model::listen_power_w() const
{
    return cfg_.mcu_sleep_w + cfg_.detector_bias_w;
}

double energy_model::transmit_power_w(double symbol_rate_hz,
                                      double transitions_per_symbol) const
{
    if (symbol_rate_hz <= 0.0) throw std::invalid_argument("energy_model: symbol rate <= 0");
    if (transitions_per_symbol < 0.0) {
        throw std::invalid_argument("energy_model: negative transition density");
    }
    const double dynamic =
        symbol_rate_hz * transitions_per_symbol * cfg_.energy_per_transition_j;
    return cfg_.mcu_active_w + cfg_.switch_static_w + cfg_.detector_bias_w + dynamic;
}

double energy_model::frame_energy_j(const modulated_frame& frame) const
{
    if (frame.duration_s <= 0.0) throw std::invalid_argument("energy_model: empty frame");
    const double static_power = cfg_.mcu_active_w + cfg_.switch_static_w + cfg_.detector_bias_w;
    return static_power * frame.duration_s +
           static_cast<double>(frame.transitions) * cfg_.energy_per_transition_j;
}

double energy_model::energy_per_bit(const phy::frame_config& frame, double symbol_rate_hz) const
{
    const double m = static_cast<double>(phy::constellation_size(frame.scheme));
    const double transitions_per_symbol = (m - 1.0) / m;
    const double power = transmit_power_w(symbol_rate_hz, transitions_per_symbol);
    const double bit_rate = symbol_rate_hz * phy::spectral_efficiency(frame);
    return power / bit_rate;
}

} // namespace mmtag::tag
