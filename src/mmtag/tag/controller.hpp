// Tag controller: the MCU firmware state machine. Sleeps, watches the
// envelope detector for the AP's query carrier, and after a fixed turnaround
// backscatters its queued payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/rf/envelope_detector.hpp"
#include "mmtag/tag/modulator.hpp"

namespace mmtag::tag {

enum class tag_state {
    sleeping,
    listening,
    responding,
};

class tag_controller {
public:
    struct config {
        backscatter_modulator::config modulator{};
        rf::envelope_detector::config detector{};
        /// Detector output level that counts as "carrier present" [V].
        double wake_threshold_v = 1e-4;
        /// Carrier must persist this long before the tag trusts it [s].
        double detect_hold_s = 1e-6;
        /// Decode-to-respond turnaround after detection [s].
        double turnaround_s = 2e-6;
        std::uint64_t seed = 1;
    };

    explicit tag_controller(const config& cfg);

    [[nodiscard]] tag_state state() const { return state_; }
    [[nodiscard]] const backscatter_modulator& modulator() const { return modulator_; }

    struct response {
        bool responded = false;
        std::size_t detect_sample = 0;   ///< where the carrier was confirmed
        std::size_t respond_sample = 0;  ///< where modulation begins
        cvec gamma;                      ///< full-timeline reflection waveform
        modulated_frame frame;           ///< the modulated frame (if any)
    };

    /// Runs the firmware over one incident-sample window: detect the query,
    /// wait the turnaround, backscatter `payload`. The returned gamma
    /// waveform covers the whole window (absorptive outside the frame).
    [[nodiscard]] response respond_to_query(std::span<const cf64> incident,
                                            std::span<const std::uint8_t> payload);

private:
    config cfg_;
    backscatter_modulator modulator_;
    rf::envelope_detector detector_;
    tag_state state_ = tag_state::sleeping;
};

} // namespace mmtag::tag
