// Common scalar/vector types, physical constants, and unit helpers shared by
// every mmtag subsystem.
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <string>
#include <vector>

namespace mmtag {

using cf64 = std::complex<double>;
using cvec = std::vector<cf64>;
using rvec = std::vector<double>;

inline constexpr double pi = std::numbers::pi;
inline constexpr double two_pi = 2.0 * std::numbers::pi;

/// Speed of light in vacuum [m/s].
inline constexpr double speed_of_light = 299'792'458.0;

/// Boltzmann constant [J/K].
inline constexpr double boltzmann = 1.380'649e-23;

/// Standard noise reference temperature [K].
inline constexpr double t0_kelvin = 290.0;

/// Thrown when a simulation is configured or driven outside its contract.
class simulation_error : public std::runtime_error {
public:
    explicit simulation_error(const std::string& what) : std::runtime_error(what) {}
};

/// Power ratio -> decibels. Requires ratio > 0.
[[nodiscard]] inline double to_db(double power_ratio)
{
    if (power_ratio <= 0.0) throw std::invalid_argument("to_db: ratio must be > 0");
    return 10.0 * std::log10(power_ratio);
}

/// Decibels -> power ratio.
[[nodiscard]] inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Absolute power [W] -> dBm.
[[nodiscard]] inline double watt_to_dbm(double watt) { return to_db(watt) + 30.0; }

/// dBm -> absolute power [W].
[[nodiscard]] inline double dbm_to_watt(double dbm) { return from_db(dbm - 30.0); }

/// Degrees -> radians.
[[nodiscard]] constexpr double deg_to_rad(double deg) { return deg * pi / 180.0; }

/// Radians -> degrees.
[[nodiscard]] constexpr double rad_to_deg(double rad) { return rad * 180.0 / pi; }

/// Wavelength [m] of a carrier at `frequency_hz`.
[[nodiscard]] inline double wavelength(double frequency_hz)
{
    if (frequency_hz <= 0.0) throw std::invalid_argument("wavelength: frequency must be > 0");
    return speed_of_light / frequency_hz;
}

/// Wrap an angle to (-pi, pi].
[[nodiscard]] inline double wrap_phase(double radians)
{
    double wrapped = std::remainder(radians, two_pi);
    if (wrapped <= -pi) wrapped += two_pi;
    return wrapped;
}

} // namespace mmtag
