// Spectral analysis / filter design window functions.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

enum class window_kind {
    rectangular,
    hann,
    hamming,
    blackman,
    blackman_harris,
};

/// Generates a symmetric window of `length` samples (length >= 1).
[[nodiscard]] rvec make_window(window_kind kind, std::size_t length);

/// Sum of window coefficients; used to normalize windowed spectra.
[[nodiscard]] double coherent_gain(std::span<const double> window);

/// Equivalent noise bandwidth of a window in bins.
[[nodiscard]] double noise_bandwidth_bins(std::span<const double> window);

} // namespace mmtag::dsp
