// The parallel Monte-Carlo runtime: shard pool semantics, the frozen
// counter-based seeding scheme, the jobs-invariance determinism contract,
// replay under injected faults on the parallel path, and the stability of
// the JSON result schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/metrics.hpp"
#include "mmtag/core/multitag_simulator.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/core/supervised_link.hpp"
#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/runtime/sweep_runner.hpp"
#include "mmtag/runtime/thread_pool.hpp"
#include "mmtag/runtime/trial_rng.hpp"

namespace mmtag::runtime {
namespace {

// ---------------------------------------------------------------- thread_pool

TEST(thread_pool, runs_every_index_exactly_once)
{
    constexpr std::size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    thread_pool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    pool.parallel_for(count, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(thread_pool, single_job_runs_inline_in_order)
{
    thread_pool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::vector<std::size_t> order;
    pool.parallel_for(16, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), std::this_thread::get_id());
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(thread_pool, empty_range_and_reuse)
{
    thread_pool pool(3);
    pool.parallel_for(0, [&](std::size_t) { FAIL() << "body ran for count 0"; });
    std::atomic<std::size_t> total{0};
    pool.parallel_for(7, [&](std::size_t) { total.fetch_add(1); });
    pool.parallel_for(5, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 12u);
}

TEST(thread_pool, propagates_first_exception)
{
    thread_pool pool(4);
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                       if (i == 13) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
    // Pool must survive a failed batch.
    std::atomic<std::size_t> total{0};
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 8u);
}

TEST(thread_pool, resolve_jobs_auto_is_positive)
{
    EXPECT_GE(resolve_jobs(0), 1u);
    EXPECT_EQ(resolve_jobs(1), 1u);
    EXPECT_EQ(resolve_jobs(6), 6u);
    thread_pool pool(0);
    EXPECT_GE(pool.jobs(), 1u);
}

// ------------------------------------------------------------------ trial_rng

TEST(trial_rng, constants_are_frozen)
{
    // mix64 is the SplitMix64 output function; mix64(0) is the well-known
    // first output of a seed-0 splitmix stream. Recorded BENCH_*.json
    // baselines depend on these values never changing.
    EXPECT_EQ(mix64(0), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(trial_seed(1, 0, 0), mix64(mix64(mix64(1))));
    EXPECT_EQ(substream(7, 0), mix64(7 ^ 0xa0761d6478bd642fULL));
}

TEST(trial_rng, seeds_are_deterministic_and_distinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t point = 0; point < 16; ++point) {
        for (std::uint64_t trial = 0; trial < 16; ++trial) {
            const auto seed = trial_seed(42, point, trial);
            EXPECT_EQ(seed, trial_seed(42, point, trial));
            EXPECT_TRUE(seen.insert(seed).second)
                << "collision at point " << point << " trial " << trial;
        }
    }
    // Different base seeds give unrelated streams.
    EXPECT_NE(trial_seed(1, 0, 0), trial_seed(2, 0, 0));
    // Substreams of one trial differ from the trial seed and each other.
    const auto seed = trial_seed(1, 3, 5);
    EXPECT_NE(substream(seed, 0), seed);
    EXPECT_NE(substream(seed, 0), substream(seed, 1));
}

// ----------------------------------------------------------------- run_sweep

/// Cheap deterministic stand-in workload: counts pseudo-random "errors".
core::error_counter synthetic_trial(std::size_t point, std::uint64_t seed)
{
    core::error_counter counter;
    std::uint64_t x = seed;
    for (std::size_t block = 0; block < 8; ++block) {
        x = mix64(x);
        counter.add_bits(64 + point, static_cast<std::size_t>(x % 5));
    }
    return counter;
}

TEST(sweep_runner, shapes_and_counts)
{
    sweep_options options;
    options.jobs = 2;
    options.base_seed = 9;
    options.trials_per_point = 3;
    std::atomic<std::size_t> progress_calls{0};
    options.progress = [&](std::size_t done, std::size_t total) {
        EXPECT_LE(done, total);
        progress_calls.fetch_add(1);
    };
    const auto out = run_sweep<core::error_counter>(
        options, 4,
        [](std::size_t point, std::size_t, std::uint64_t seed) {
            return synthetic_trial(point, seed);
        });
    EXPECT_EQ(out.points.size(), 4u);
    EXPECT_EQ(out.trials, 12u);
    EXPECT_EQ(out.jobs, 2u);
    EXPECT_EQ(progress_calls.load(), 12u);
    EXPECT_GE(out.wall_s, 0.0);
    for (const auto& point : out.points) {
        EXPECT_EQ(point.aggregate.bits() % 8, 0u); // 3 trials x 8 blocks
        EXPECT_GE(point.busy_s, 0.0);
    }
}

TEST(sweep_runner, rejects_zero_trials)
{
    sweep_options options;
    options.trials_per_point = 0;
    EXPECT_THROW(run_sweep<core::error_counter>(
                     options, 1,
                     [](std::size_t, std::size_t, std::uint64_t) {
                         return core::error_counter{};
                     }),
                 std::invalid_argument);
}

TEST(sweep_runner, jobs_invariant_error_counts)
{
    const auto run_with = [](std::size_t jobs) {
        sweep_options options;
        options.jobs = jobs;
        options.base_seed = 77;
        options.trials_per_point = 6;
        return run_sweep<core::error_counter>(
            options, 5,
            [](std::size_t point, std::size_t, std::uint64_t seed) {
                return synthetic_trial(point, seed);
            });
    };
    const auto serial = run_with(1);
    const auto parallel = run_with(8);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t p = 0; p < serial.points.size(); ++p) {
        EXPECT_EQ(serial.points[p].aggregate.bits(), parallel.points[p].aggregate.bits());
        EXPECT_EQ(serial.points[p].aggregate.bit_errors(),
                  parallel.points[p].aggregate.bit_errors());
    }
}

// --------------------------------------------- determinism regression (R5ish)

/// A miniature R5-style sweep over real link simulations, rendered through
/// the result_writer; the aggregates JSON must be byte-identical no matter
/// how many jobs executed it.
std::string link_sweep_aggregates(std::size_t jobs)
{
    constexpr double kDistances[] = {2.0, 4.0};
    sweep_options options;
    options.jobs = jobs;
    options.base_seed = 5;
    options.trials_per_point = 3;
    const auto out = run_sweep<core::link_report>(
        options, std::size(kDistances),
        [&](std::size_t point, std::size_t, std::uint64_t seed) {
            auto cfg = core::fast_scenario();
            cfg.distance_m = kDistances[point];
            cfg.seed = seed;
            core::link_simulator sim(cfg);
            return sim.run_trials(2, 16);
        });
    result_writer results("TEST", "determinism regression", {"distance_m"}, 5);
    for (std::size_t point = 0; point < std::size(kDistances); ++point) {
        auto axis = json_value::object();
        axis.set("distance_m", json_value::number(kDistances[point]));
        results.add_point(std::move(axis), options.trials_per_point,
                          result_writer::metrics(out.points[point].aggregate));
    }
    return results.aggregates_json();
}

TEST(determinism, link_sweep_json_is_byte_identical_across_jobs)
{
    const auto serial = link_sweep_aggregates(1);
    EXPECT_EQ(serial, link_sweep_aggregates(8));
    EXPECT_EQ(serial, link_sweep_aggregates(3));
    // And stable across repeat runs of the same configuration.
    EXPECT_EQ(serial, link_sweep_aggregates(1));
}

TEST(determinism, faulted_trials_replay_on_parallel_path)
{
    // The faults CLI path: (trial x arm) tasks over the pool, each with its
    // own simulator and counter-derived fault schedule. Running the grid
    // under 1 and 4 jobs must produce identical reports slot for slot.
    const auto run_grid = [](std::size_t jobs) {
        constexpr std::size_t trials = 3;
        fault::fault_schedule::config sched_cfg;
        sched_cfg.horizon_s = 0.03;
        sched_cfg.event_rate_hz = 200.0;
        sched_cfg.mean_duration_s = 1e-3;
        std::vector<ap::supervised_report> reports(trials);
        thread_pool pool(jobs);
        pool.parallel_for(trials, [&](std::size_t t) {
            auto cfg = core::fast_scenario();
            cfg.distance_m = 4.0;
            cfg.seed = 11;
            core::link_simulator link(cfg);
            fault::fault_injector faults{
                fault::fault_schedule(sched_cfg, 42 + t)};
            reports[t] = core::run_supervised_link(link, &faults, {}, 30, 16);
        });
        return reports;
    };
    const auto serial = run_grid(1);
    const auto parallel = run_grid(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t t = 0; t < serial.size(); ++t) {
        EXPECT_EQ(serial[t].frames_offered, parallel[t].frames_offered);
        EXPECT_EQ(serial[t].frames_delivered, parallel[t].frames_delivered);
        EXPECT_EQ(serial[t].recovery.outages, parallel[t].recovery.outages);
        EXPECT_EQ(serial[t].recovery.reacquisitions,
                  parallel[t].recovery.reacquisitions);
        EXPECT_DOUBLE_EQ(serial[t].elapsed_s, parallel[t].elapsed_s);
        EXPECT_DOUBLE_EQ(serial[t].goodput_bps, parallel[t].goodput_bps);
    }
}

TEST(determinism, multitag_reseed_replays_exactly)
{
    auto cfg = core::fast_scenario();
    cfg.seed = 21;
    std::vector<core::tag_descriptor> tags{{0, 2.0, 0.0}, {1, 3.5, 0.2}};
    core::multitag_simulator sim(cfg, tags);

    const double slot_s = sim.burst_duration_s(16) + 20e-6;
    std::vector<core::tag_burst> bursts;
    for (std::size_t t = 0; t < tags.size(); ++t) {
        bursts.push_back({t, phy::random_bytes(16, substream(21, 2 + t)),
                          static_cast<double>(t) * slot_s});
    }
    const auto first = sim.run(bursts);
    sim.reseed(21);
    const auto replay = sim.run(bursts);
    ASSERT_EQ(first.size(), replay.size());
    for (std::size_t t = 0; t < first.size(); ++t) {
        EXPECT_EQ(first[t].delivered, replay[t].delivered);
        EXPECT_DOUBLE_EQ(first[t].snr_db, replay[t].snr_db);
    }
}

// ----------------------------------------------------------------- JSON model

/// Minimal strict JSON syntax checker (objects/arrays/strings/numbers/
/// booleans/null) — enough to prove the emitted documents parse.
class json_checker {
public:
    explicit json_checker(const std::string& text) : text_(text) {}

    bool valid()
    {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == text_.size();
    }

private:
    bool value()
    {
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool object()
    {
        ++pos_; // {
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // [
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size()) return false;
        ++pos_; // closing quote
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char* word)
    {
        const std::string w(word);
        if (text_.compare(pos_, w.size(), w) != 0) return false;
        pos_ += w.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

TEST(json_model, serialization_is_ordered_and_escaped)
{
    auto doc = json_value::object();
    doc.set("zeta", json_value::integer(-3));
    doc.set("alpha", json_value::string("line\n\"quoted\"\\"));
    doc.set("flag", json_value::boolean(true));
    auto arr = json_value::array();
    arr.push(json_value::number(0.5));
    arr.push(json_value::null());
    doc.set("items", std::move(arr));
    // Insertion order, not alphabetical; escapes applied.
    EXPECT_EQ(doc.dump(),
              "{\"zeta\":-3,\"alpha\":\"line\\n\\\"quoted\\\"\\\\\","
              "\"flag\":true,\"items\":[0.5,null]}");
    EXPECT_TRUE(json_checker(doc.dump()).valid());
    EXPECT_TRUE(json_checker(doc.dump(2)).valid());
    // Duplicate keys overwrite in place (stable position).
    doc.set("zeta", json_value::integer(9));
    EXPECT_EQ(doc.dump().find("\"zeta\":9"), 1u);
}

TEST(json_model, numbers_round_trip)
{
    for (const double v : {0.0, 1.0, -1.5, 1.0 / 3.0, 3.333e-5, 1e20, 123456.789}) {
        auto value = json_value::number(v);
        const auto text = value.dump();
        EXPECT_DOUBLE_EQ(std::stod(text), v) << text;
    }
    EXPECT_EQ(json_value::unsigned_integer(18446744073709551615ULL).dump(),
              "18446744073709551615");
}

TEST(result_writer, documents_are_schema_valid)
{
    result_writer results("R99", "schema test", {"x"}, 4);
    core::error_counter counter;
    counter.add_bits(1000, 3);
    auto axis = json_value::object();
    axis.set("x", json_value::number(1.0));
    results.add_point(std::move(axis), 2, result_writer::metrics(counter));

    const auto aggregates = results.aggregates_json();
    EXPECT_TRUE(json_checker(aggregates).valid()) << aggregates;
    EXPECT_NE(aggregates.find("\"schema\": \"mmtag.bench.result/1\""),
              std::string::npos);
    EXPECT_NE(aggregates.find("\"id\": \"R99\""), std::string::npos);
    EXPECT_NE(aggregates.find("\"axes\""), std::string::npos);
    EXPECT_NE(aggregates.find("\"trials\": 2"), std::string::npos);
    // The run section only appears in the full document.
    EXPECT_EQ(aggregates.find("\"run\""), std::string::npos);

    const auto document = results.document(1.5, 4, 8.0);
    EXPECT_TRUE(json_checker(document).valid()) << document;
    EXPECT_NE(document.find("\"run\""), std::string::npos);
    EXPECT_NE(document.find("\"jobs\": 4"), std::string::npos);
    EXPECT_NE(document.find("\"git\":"), std::string::npos);

    EXPECT_EQ(default_output_path("R99"), "bench/out/BENCH_R99.json");
}

} // namespace
} // namespace mmtag::runtime
