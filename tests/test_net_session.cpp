// Per-tag session state machine: exhaustive legal-transition table, the
// degrade/quarantine/probe/readmit flow, the capped probe backoff ladder,
// and the strictness contract (illegal calls throw instead of corrupting
// the machine).
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "mmtag/net/tag_session.hpp"

namespace {

using mmtag::net::legal_transition;
using mmtag::net::session_config;
using mmtag::net::session_state;
using mmtag::net::tag_session;

session_config tight_config()
{
    session_config cfg;
    cfg.degraded_streak = 2;
    cfg.quarantine_streak = 5;
    cfg.readmit_streak = 2;
    cfg.probe_backoff_initial_rounds = 1;
    cfg.probe_backoff_factor = 2.0;
    cfg.probe_backoff_cap_rounds = 4;
    return cfg;
}

/// Drives a fresh ACTIVE session to QUARANTINED; returns the round after.
std::size_t quarantine(tag_session& session, std::size_t round = 0)
{
    while (session.state() != session_state::quarantined) {
        session.record_data(false, round++);
    }
    return round;
}

TEST(tag_session, legal_transition_table_is_exhaustive)
{
    const session_state states[] = {session_state::active, session_state::degraded,
                                    session_state::quarantined,
                                    session_state::probing};
    // The six legal edges of the machine; everything else (including
    // self-edges) is illegal.
    const bool expected[4][4] = {
        /* from active      */ {false, true, false, false},
        /* from degraded    */ {true, false, true, false},
        /* from quarantined */ {false, false, false, true},
        /* from probing     */ {true, false, true, false},
    };
    for (std::size_t from = 0; from < 4; ++from) {
        for (std::size_t to = 0; to < 4; ++to) {
            EXPECT_EQ(legal_transition(states[from], states[to]), expected[from][to])
                << mmtag::net::session_state_name(states[from]) << " -> "
                << mmtag::net::session_state_name(states[to]);
        }
    }
}

TEST(tag_session, degrades_after_streak_and_heals_on_delivery)
{
    tag_session session(7, tight_config());
    EXPECT_EQ(session.state(), session_state::active);
    EXPECT_TRUE(session.schedulable());

    session.record_data(false, 0);
    EXPECT_EQ(session.state(), session_state::active) << "one failure is noise";
    session.record_data(false, 1);
    EXPECT_EQ(session.state(), session_state::degraded);
    EXPECT_TRUE(session.schedulable()) << "degraded sessions keep their slots";

    session.record_data(true, 2);
    EXPECT_EQ(session.state(), session_state::active);
    EXPECT_EQ(session.fail_streak(), 0u);

    ASSERT_EQ(session.transitions().size(), 2u);
    EXPECT_EQ(session.transitions()[0].to, session_state::degraded);
    EXPECT_EQ(session.transitions()[1].to, session_state::active);
}

TEST(tag_session, quarantines_after_streak_through_degraded)
{
    tag_session session(0, tight_config());
    const std::size_t round = quarantine(session);
    EXPECT_EQ(round, 5u) << "quarantine_streak consecutive failures";
    EXPECT_FALSE(session.schedulable());

    // The log must show ACTIVE -> DEGRADED -> QUARANTINED, never a direct
    // ACTIVE -> QUARANTINED edge.
    ASSERT_EQ(session.transitions().size(), 2u);
    EXPECT_EQ(session.transitions()[0].from, session_state::active);
    EXPECT_EQ(session.transitions()[0].to, session_state::degraded);
    EXPECT_EQ(session.transitions()[1].from, session_state::degraded);
    EXPECT_EQ(session.transitions()[1].to, session_state::quarantined);
}

TEST(tag_session, probe_backoff_ladder_grows_to_the_cap)
{
    tag_session session(0, tight_config());
    std::size_t round = quarantine(session); // quarantined at round - 1
    // Ladder with initial 1, factor 2, cap 4: gaps of 1, 2, 4, 4, ...
    const std::size_t gaps[] = {1, 2, 4, 4, 4};
    std::size_t due = round - 1;
    for (const std::size_t gap : gaps) {
        due += gap;
        EXPECT_FALSE(session.probe_due(due - 1)) << "before the backoff expires";
        EXPECT_TRUE(session.probe_due(due));
        session.begin_probe(due);
        EXPECT_EQ(session.state(), session_state::probing);
        session.record_probe(false, due);
        EXPECT_EQ(session.state(), session_state::quarantined);
    }
}

TEST(tag_session, readmits_after_consecutive_probe_successes)
{
    tag_session session(3, tight_config());
    const std::size_t round = quarantine(session);

    const std::size_t probe_round = round; // backoff 1 after quarantine at round-1
    ASSERT_TRUE(session.probe_due(probe_round));
    session.begin_probe(probe_round);
    session.record_probe(true, probe_round);
    EXPECT_EQ(session.state(), session_state::probing)
        << "one success below readmit_streak keeps probing";
    EXPECT_TRUE(session.probe_due(probe_round + 1))
        << "mid-streak probes run back-to-back, no backoff";

    session.begin_probe(probe_round + 1); // no-op transition-wise
    session.record_probe(true, probe_round + 1);
    EXPECT_EQ(session.state(), session_state::active);
    EXPECT_TRUE(session.schedulable());

    ASSERT_EQ(session.readmit_latencies_rounds().size(), 1u);
    // Quarantined at round 4, readmitted at round 6.
    EXPECT_EQ(session.readmit_latencies_rounds().front(), 2u);
}

TEST(tag_session, failed_probe_resets_the_readmit_streak)
{
    tag_session session(0, tight_config());
    const std::size_t round = quarantine(session);

    session.begin_probe(round);
    session.record_probe(true, round);
    session.begin_probe(round + 1);
    session.record_probe(false, round + 1); // streak broken
    EXPECT_EQ(session.state(), session_state::quarantined);

    // The next success must start a fresh streak: one success is not enough.
    const std::size_t next = round + 1 + 2; // backoff grew 1 -> 2
    ASSERT_TRUE(session.probe_due(next));
    session.begin_probe(next);
    session.record_probe(true, next);
    EXPECT_EQ(session.state(), session_state::probing);
}

TEST(tag_session, illegal_calls_throw_without_corrupting_state)
{
    tag_session session(0, tight_config());

    EXPECT_THROW(session.record_probe(true, 0), std::logic_error)
        << "probe outcome outside PROBING";
    EXPECT_THROW(session.begin_probe(0), std::logic_error)
        << "probe of an ACTIVE session";

    quarantine(session);
    EXPECT_THROW(session.record_data(true, 9), std::logic_error)
        << "data frame for an unscheduled session";
    EXPECT_EQ(session.state(), session_state::quarantined)
        << "failed calls leave the machine where it was";
    EXPECT_THROW(session.begin_probe(0), std::logic_error)
        << "probe before the backoff expired";
}

TEST(tag_session, config_validation_rejects_degenerate_machines)
{
    const auto with = [](auto mutate) {
        session_config cfg = tight_config();
        mutate(cfg);
        return cfg;
    };
    EXPECT_THROW(tag_session(0, with([](session_config& c) { c.degraded_streak = 0; })),
                 std::invalid_argument);
    EXPECT_THROW(tag_session(0, with([](session_config& c) { c.readmit_streak = 0; })),
                 std::invalid_argument);
    EXPECT_THROW(
        tag_session(0, with([](session_config& c) { c.quarantine_streak = 2; })),
        std::invalid_argument)
        << "quarantine_streak must exceed degraded_streak";
    EXPECT_THROW(
        tag_session(0,
                    with([](session_config& c) { c.probe_backoff_initial_rounds = 0; })),
        std::invalid_argument);
    EXPECT_THROW(
        tag_session(0, with([](session_config& c) { c.probe_backoff_cap_rounds = 0; })),
        std::invalid_argument)
        << "cap below the initial backoff";
    EXPECT_THROW(
        tag_session(0, with([](session_config& c) { c.probe_backoff_factor = 0.5; })),
        std::invalid_argument);
    EXPECT_THROW(
        tag_session(0, with([](session_config& c) {
                        c.probe_backoff_factor = std::numeric_limits<double>::infinity();
                    })),
        std::invalid_argument);
}

TEST(tag_session, max_readmit_rounds_documents_the_probe_bound)
{
    const session_config cfg = tight_config();
    EXPECT_EQ(cfg.max_readmit_rounds(),
              cfg.probe_backoff_cap_rounds + cfg.readmit_streak);
}

} // namespace
