file(REMOVE_RECURSE
  "CMakeFiles/bench_r10_multitag_throughput.dir/bench_r10_multitag_throughput.cpp.o"
  "CMakeFiles/bench_r10_multitag_throughput.dir/bench_r10_multitag_throughput.cpp.o.d"
  "bench_r10_multitag_throughput"
  "bench_r10_multitag_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r10_multitag_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
