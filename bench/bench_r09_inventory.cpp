// R9 — Multi-tag inventory cost.
// Framed slotted ALOHA with Q adaptation discovering 1-200 tags. Expected
// shape: slots scale ~linearly in population (constant efficiency near the
// 1/e framed-ALOHA optimum); a lossy PHY inflates the slot count by ~1/p.
#include "bench_util.hpp"
#include "mmtag/mac/slotted_aloha.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R9", "slotted-ALOHA inventory cost vs population", csv);

    bench::table out({"tags", "slots", "rounds", "singles", "collisions", "idle",
                      "efficiency", "theory_peak"},
                     csv);
    // Average a few seeds so the table is stable.
    for (std::size_t tags : {1u, 2u, 5u, 10u, 20u, 50u, 100u, 200u}) {
        double slots = 0.0;
        double rounds = 0.0;
        double singles = 0.0;
        double collisions = 0.0;
        double idle = 0.0;
        double efficiency = 0.0;
        constexpr int seeds = 10;
        for (int s = 0; s < seeds; ++s) {
            const mac::aloha_inventory inventory{mac::aloha_config{}};
            const auto stats = inventory.run(tags, 1000 + static_cast<std::uint64_t>(s));
            slots += static_cast<double>(stats.slots_used);
            rounds += static_cast<double>(stats.rounds);
            singles += static_cast<double>(stats.singleton_slots);
            collisions += static_cast<double>(stats.collision_slots);
            idle += static_cast<double>(stats.idle_slots);
            efficiency += stats.efficiency();
        }
        out.add_row({std::to_string(tags), bench::fmt("%.0f", slots / seeds),
                     bench::fmt("%.1f", rounds / seeds), bench::fmt("%.0f", singles / seeds),
                     bench::fmt("%.0f", collisions / seeds), bench::fmt("%.0f", idle / seeds),
                     bench::fmt("%.3f", efficiency / seeds),
                     bench::fmt("%.3f", mac::aloha_inventory::theoretical_peak_efficiency(tags))});
    }
    out.print();
    return 0;
}
