#include <gtest/gtest.h>

#include <random>

#include "mmtag/dsp/estimators.hpp"

namespace mmtag::dsp {
namespace {

TEST(estimators, mean_power_and_rms)
{
    const cvec x{{3.0, 4.0}, {0.0, 0.0}}; // |3+4j|^2 = 25
    EXPECT_DOUBLE_EQ(mean_power(x), 12.5);
    EXPECT_DOUBLE_EQ(rms(x), std::sqrt(12.5));
    EXPECT_THROW((void)mean_power(cvec{}), std::invalid_argument);
}

TEST(estimators, papr_of_constant_envelope_is_zero_db)
{
    cvec x(64);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::polar(2.0, 0.1 * i);
    EXPECT_NEAR(papr_db(x), 0.0, 1e-9);
}

TEST(estimators, evm_known_value)
{
    const cvec reference{{1.0, 0.0}, {-1.0, 0.0}};
    const cvec received{{1.1, 0.0}, {-0.9, 0.0}};
    // error power = 0.01 + 0.01, ref power = 2 -> EVM = sqrt(0.02/2) = 0.1
    EXPECT_NEAR(evm_rms(received, reference), 0.1, 1e-12);
    EXPECT_NEAR(evm_db(received, reference), -20.0, 1e-9);
}

TEST(estimators, snr_estimate_matches_injected_noise)
{
    std::mt19937_64 rng(11);
    std::normal_distribution<double> g(0.0, 1.0);
    const double snr_db_true = 15.0;
    const double noise_sigma = std::sqrt(0.5 * std::pow(10.0, -snr_db_true / 10.0));
    cvec reference(20000);
    cvec received(reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        reference[i] = std::polar(1.0, two_pi * 0.01 * static_cast<double>(i));
        received[i] = reference[i] * std::polar(1.3, 0.4) + // arbitrary complex gain
                      cf64{noise_sigma * g(rng), noise_sigma * g(rng)} * 1.3;
    }
    EXPECT_NEAR(snr_estimate_db(received, reference), snr_db_true, 0.3);
}

TEST(estimators, snr_m2m4_blind_estimate)
{
    std::mt19937_64 rng(13);
    std::normal_distribution<double> g(0.0, 1.0);
    const double snr_db_true = 10.0;
    const double noise_sigma = std::sqrt(0.5 * std::pow(10.0, -snr_db_true / 10.0));
    std::uniform_int_distribution<int> q(0, 3);
    cvec x(50000);
    for (auto& v : x) {
        v = std::polar(1.0, pi / 2.0 * q(rng)) + cf64{noise_sigma * g(rng), noise_sigma * g(rng)};
    }
    EXPECT_NEAR(snr_m2m4_db(x), snr_db_true, 0.5);
}

TEST(estimators, running_stats_welford)
{
    running_stats stats;
    const rvec values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double v : values) stats.add(v);
    EXPECT_EQ(stats.count(), values.size());
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(stats.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(stats.maximum(), 9.0);
    stats.reset();
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_THROW((void)stats.mean(), std::logic_error);
}

TEST(estimators, percentile_interpolation)
{
    const rvec values{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(values, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(values, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(values, 25.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile(values, 90.0), 4.6);
    EXPECT_THROW((void)percentile(values, 101.0), std::invalid_argument);
}

} // namespace
} // namespace mmtag::dsp
