#include "mmtag/phy/frame.hpp"

#include <stdexcept>

#include "mmtag/fec/crc.hpp"
#include "mmtag/fec/hamming.hpp"
#include "mmtag/fec/interleaver.hpp"
#include "mmtag/fec/scrambler.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::phy {

namespace {

constexpr std::uint8_t protocol_version = 1;

fec::code_rate to_code_rate(fec_mode mode)
{
    switch (mode) {
    case fec_mode::conv_half: return fec::code_rate::half;
    case fec_mode::conv_two_thirds: return fec::code_rate::two_thirds;
    case fec_mode::conv_three_quarters: return fec::code_rate::three_quarters;
    case fec_mode::uncoded: break;
    }
    throw std::invalid_argument("to_code_rate: uncoded mode has no code rate");
}

std::size_t coded_bit_count(std::size_t payload_bytes, fec_mode mode)
{
    const std::size_t info_bits = (payload_bytes + 4) * 8; // payload + CRC-32
    if (mode == fec_mode::uncoded) return info_bits;
    return fec::coded_length(info_bits, to_code_rate(mode));
}

std::size_t interleaved_bit_count(std::size_t payload_bytes, const frame_config& cfg)
{
    const std::size_t coded = coded_bit_count(payload_bytes, cfg.fec);
    const std::size_t block = cfg.interleaver_rows * cfg.interleaver_columns;
    return (coded + block - 1) / block * block;
}

std::vector<std::uint8_t> build_header_bytes(std::size_t payload_bytes,
                                             const frame_config& cfg)
{
    std::vector<std::uint8_t> header(4, 0);
    header[0] = static_cast<std::uint8_t>((protocol_version & 0x3u) << 6 |
                                          (static_cast<unsigned>(cfg.scheme) & 0x7u) << 3 |
                                          (static_cast<unsigned>(cfg.fec) & 0x7u));
    header[1] = static_cast<std::uint8_t>((payload_bytes >> 8) & 0xFFu);
    header[2] = static_cast<std::uint8_t>(payload_bytes & 0xFFu);
    header[3] = fec::crc8(std::span<const std::uint8_t>{header.data(), 3});
    return header;
}

} // namespace

double fec_mode_rate(fec_mode mode)
{
    switch (mode) {
    case fec_mode::uncoded: return 1.0;
    case fec_mode::conv_half: return 0.5;
    case fec_mode::conv_two_thirds: return 2.0 / 3.0;
    case fec_mode::conv_three_quarters: return 0.75;
    }
    throw std::invalid_argument("fec_mode_rate: unknown mode");
}

const char* fec_mode_name(fec_mode mode)
{
    switch (mode) {
    case fec_mode::uncoded: return "uncoded";
    case fec_mode::conv_half: return "conv-1/2";
    case fec_mode::conv_two_thirds: return "conv-2/3";
    case fec_mode::conv_three_quarters: return "conv-3/4";
    }
    throw std::invalid_argument("fec_mode_name: unknown mode");
}

double spectral_efficiency(const frame_config& cfg)
{
    return static_cast<double>(bits_per_symbol(cfg.scheme)) * fec_mode_rate(cfg.fec);
}

cvec build_frame(std::span<const std::uint8_t> payload, const frame_config& cfg)
{
    if (payload.size() > max_payload_bytes) {
        throw std::invalid_argument("build_frame: payload exceeds max_payload_bytes");
    }

    // Header: 4 bytes -> Hamming(7,4) -> BPSK.
    const std::vector<std::uint8_t> header_bytes = build_header_bytes(payload.size(), cfg);
    const std::vector<std::uint8_t> header_coded =
        fec::hamming74_encode(bytes_to_bits(header_bytes));
    const cvec header_symbols = map_bits(header_coded, modulation::bpsk);

    // Payload: CRC-32, whiten, FEC, interleave, map.
    const std::vector<std::uint8_t> with_crc = fec::append_crc32(payload);
    const std::vector<std::uint8_t> whitened = fec::scramble_bytes(with_crc, cfg.scrambler_seed);
    std::vector<std::uint8_t> bits = bytes_to_bits(whitened);
    if (cfg.fec != fec_mode::uncoded) {
        bits = fec::convolutional_encode(bits, to_code_rate(cfg.fec));
    }
    const fec::block_interleaver interleaver(cfg.interleaver_rows, cfg.interleaver_columns);
    const std::vector<std::uint8_t> interleaved = interleaver.interleave(bits);
    const cvec payload_symbols = map_bits(interleaved, cfg.scheme);

    cvec frame = make_preamble(cfg.preamble);
    frame.insert(frame.end(), header_symbols.begin(), header_symbols.end());
    frame.insert(frame.end(), payload_symbols.begin(), payload_symbols.end());
    return frame;
}

std::size_t payload_symbol_count(std::size_t payload_bytes, const frame_config& cfg)
{
    const std::size_t bits = interleaved_bit_count(payload_bytes, cfg);
    const std::size_t k = bits_per_symbol(cfg.scheme);
    return (bits + k - 1) / k;
}

std::optional<decoded_header> decode_header(std::span<const cf64> symbols)
{
    if (symbols.size() < header_symbol_count) return std::nullopt;
    const std::vector<std::uint8_t> coded_bits =
        demap_hard(symbols.subspan(0, header_symbol_count), modulation::bpsk);
    const std::vector<std::uint8_t> bits = fec::hamming74_decode(coded_bits);
    const std::vector<std::uint8_t> bytes = bits_to_bytes(bits);
    if (bytes.size() != 4) return std::nullopt;
    if (fec::crc8(std::span<const std::uint8_t>{bytes.data(), 3}) != bytes[3]) {
        return std::nullopt;
    }
    decoded_header header;
    header.version = static_cast<std::uint8_t>(bytes[0] >> 6);
    const unsigned scheme_bits = (bytes[0] >> 3) & 0x7u;
    const unsigned fec_bits = bytes[0] & 0x7u;
    if (scheme_bits > 3 || fec_bits > 3) return std::nullopt;
    header.scheme = static_cast<modulation>(scheme_bits);
    header.fec = static_cast<fec_mode>(fec_bits);
    header.payload_bytes = (static_cast<std::size_t>(bytes[1]) << 8) | bytes[2];
    if (header.payload_bytes > max_payload_bytes) return std::nullopt;
    return header;
}

std::optional<decode_result> decode_frame(std::span<const cf64> symbols,
                                          const frame_config& cfg, double noise_variance)
{
    const auto header = decode_header(symbols);
    if (!header) return std::nullopt;

    frame_config rx_cfg = cfg;
    rx_cfg.scheme = header->scheme;
    rx_cfg.fec = header->fec;

    const std::size_t payload_symbols = payload_symbol_count(header->payload_bytes, rx_cfg);
    if (symbols.size() < header_symbol_count + payload_symbols) return std::nullopt;

    const auto payload_span = symbols.subspan(header_symbol_count, payload_symbols);
    const std::vector<double> llrs = demap_soft(payload_span, rx_cfg.scheme, noise_variance);

    const std::size_t interleaved_bits = interleaved_bit_count(header->payload_bytes, rx_cfg);
    std::vector<double> soft(llrs.begin(),
                             llrs.begin() + static_cast<std::ptrdiff_t>(interleaved_bits));
    const fec::block_interleaver interleaver(rx_cfg.interleaver_rows, rx_cfg.interleaver_columns);
    soft = interleaver.deinterleave_soft(soft);

    const std::size_t coded_bits = coded_bit_count(header->payload_bytes, rx_cfg.fec);
    soft.resize(coded_bits);

    std::vector<std::uint8_t> bits;
    if (rx_cfg.fec == fec_mode::uncoded) {
        bits.reserve(soft.size());
        for (double value : soft) bits.push_back(value < 0.0 ? 1 : 0);
    } else {
        bits = fec::viterbi_decode_soft(soft, to_code_rate(rx_cfg.fec));
    }
    bits.resize((header->payload_bytes + 4) * 8);

    const std::vector<std::uint8_t> whitened = bits_to_bytes(bits);
    const std::vector<std::uint8_t> dewhitened =
        fec::scramble_bytes(whitened, rx_cfg.scrambler_seed);

    decode_result result;
    result.header = *header;
    result.symbols_consumed = header_symbol_count + payload_symbols;
    result.crc_ok = fec::check_and_strip_crc32(dewhitened, result.payload);
    if (!result.crc_ok) {
        // Hand back the corrupted bytes anyway so BER can be measured.
        result.payload.assign(dewhitened.begin(), dewhitened.end() - 4);
    }
    return result;
}

} // namespace mmtag::phy
