// Additive (synchronous) LFSR scrambler for data whitening. Backscatter load
// modulation needs balanced bit streams: long runs of one symbol look like an
// unmodulated reflection and collapse into the AP's DC/clutter notch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mmtag::fec {

/// Synchronous scrambler with the x^7 + x^4 + 1 polynomial (802.11-style).
/// Scrambling and descrambling are the same XOR operation with a shared seed.
class scrambler {
public:
    explicit scrambler(std::uint8_t seed = 0x5D);

    /// XORs the whitening sequence onto a bit vector (values 0/1).
    [[nodiscard]] std::vector<std::uint8_t> process(std::span<const std::uint8_t> bits);

    /// Resets the register to the construction seed.
    void reset();

private:
    std::uint8_t seed_;
    std::uint8_t state_;
};

/// Byte-oriented convenience: whitens each byte MSB-first.
[[nodiscard]] std::vector<std::uint8_t> scramble_bytes(std::span<const std::uint8_t> bytes,
                                                       std::uint8_t seed = 0x5D);

} // namespace mmtag::fec
