#include "mmtag/channel/fading.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::channel {

cf64 rician_coefficient(double k_factor_db, std::mt19937_64& rng)
{
    const double k = from_db(k_factor_db);
    const double los_amplitude = std::sqrt(k / (k + 1.0));
    const double scatter_sigma = std::sqrt(1.0 / (2.0 * (k + 1.0)));
    std::normal_distribution<double> gaussian(0.0, scatter_sigma);
    return cf64{los_amplitude + gaussian(rng), gaussian(rng)};
}

multipath_channel::multipath_channel(const config& cfg, std::uint64_t seed) : cfg_(cfg)
{
    if (cfg.taps.empty()) throw std::invalid_argument("multipath_channel: no taps");
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("multipath_channel: fs <= 0");
    double total_power = 0.0;
    for (const auto& tap : cfg.taps) {
        if (tap.power < 0.0) throw std::invalid_argument("multipath_channel: negative tap power");
        total_power += tap.power;
    }
    if (total_power <= 0.0) throw std::invalid_argument("multipath_channel: zero total power");

    std::mt19937_64 rng(seed);
    coefficients_.reserve(cfg.taps.size());
    for (std::size_t i = 0; i < cfg.taps.size(); ++i) {
        const double amplitude = std::sqrt(cfg.taps[i].power / total_power);
        if (i == 0) {
            coefficients_.push_back(amplitude * rician_coefficient(cfg.k_factor_db, rng));
        } else {
            // Echoes are diffuse: Rayleigh (K -> -inf ~= -100 dB).
            coefficients_.push_back(amplitude * rician_coefficient(-100.0, rng));
        }
    }
}

cvec multipath_channel::apply(std::span<const cf64> input)
{
    std::size_t max_delay = 0;
    for (const auto& tap : cfg_.taps) max_delay = std::max(max_delay, tap.delay_samples);
    cvec out(input.size() + max_delay, cf64{});
    const double dt = 1.0 / cfg_.sample_rate_hz;
    for (std::size_t t = 0; t < cfg_.taps.size(); ++t) {
        const auto& tap = cfg_.taps[t];
        // Doppler rotation is applied per block start; tap phase also evolves
        // across the block when doppler is nonzero.
        for (std::size_t i = 0; i < input.size(); ++i) {
            const double phase = two_pi * tap.doppler_hz * (time_s_ + static_cast<double>(i) * dt);
            out[i + tap.delay_samples] += input[i] * coefficients_[t] * std::polar(1.0, phase);
        }
    }
    time_s_ += static_cast<double>(input.size()) * dt;
    return out;
}

double multipath_channel::rms_delay_spread_s() const
{
    double total = 0.0;
    double mean = 0.0;
    for (const auto& tap : cfg_.taps) {
        total += tap.power;
        mean += tap.power * static_cast<double>(tap.delay_samples);
    }
    mean /= total;
    double second = 0.0;
    for (const auto& tap : cfg_.taps) {
        const double d = static_cast<double>(tap.delay_samples) - mean;
        second += tap.power * d * d;
    }
    return std::sqrt(second / total) / cfg_.sample_rate_hz;
}

multipath_channel::config indoor_los_profile(double sample_rate_hz, double k_factor_db)
{
    multipath_channel::config cfg;
    cfg.sample_rate_hz = sample_rate_hz;
    cfg.k_factor_db = k_factor_db;
    // Echo delays of ~3 ns and ~7 ns, 15/20 dB down — a short indoor room.
    const auto delay = [&](double seconds) {
        return static_cast<std::size_t>(std::round(seconds * sample_rate_hz));
    };
    cfg.taps = {
        {0, 1.0, 0.0},
        {std::max<std::size_t>(1, delay(3e-9)), from_db(-15.0), 0.0},
        {std::max<std::size_t>(2, delay(7e-9)), from_db(-20.0), 0.0},
    };
    return cfg;
}

} // namespace mmtag::channel
