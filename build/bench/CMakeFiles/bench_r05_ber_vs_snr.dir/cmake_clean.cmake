file(REMOVE_RECURSE
  "CMakeFiles/bench_r05_ber_vs_snr.dir/bench_r05_ber_vs_snr.cpp.o"
  "CMakeFiles/bench_r05_ber_vs_snr.dir/bench_r05_ber_vs_snr.cpp.o.d"
  "bench_r05_ber_vs_snr"
  "bench_r05_ber_vs_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r05_ber_vs_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
