// Calibrated PHY table: the calibration cross-check re-runs the
// sample-accurate simulator at grid points and demands agreement with the
// interpolated curve, monotonicity is enforced and fail-loud on load, and
// the disk cache covers both the hit and the miss/stale path.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/common.hpp"
#include "mmtag/core/link_budget.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/runtime/json_io.hpp"
#include "mmtag/scale/phy_table.hpp"

namespace {

using namespace mmtag;
using scale::phy_table;
using scale::phy_table_config;

/// Coarse but statistically meaningful calibration grid shared by every
/// test in this file (generated once): 8 SINR points x 48 frames.
phy_table_config test_config()
{
    phy_table_config cfg;
    cfg.sinr_step_db = 4.0;
    cfg.frames_per_point = 48;
    return cfg;
}

const phy_table& shared_table()
{
    static const phy_table table = phy_table::generate(test_config(), 1);
    return table;
}

TEST(ScalePhyTable, PavaForcesNonIncreasing)
{
    std::vector<double> values{1.0, 0.8, 0.9, 0.2, 0.3, 0.0};
    scale::enforce_non_increasing(values);
    for (std::size_t i = 1; i < values.size(); ++i) {
        EXPECT_LE(values[i], values[i - 1] + 1e-12);
    }
    // PAVA is a least-squares fit: already-monotone stretches are untouched.
    std::vector<double> mono{1.0, 0.5, 0.5, 0.1};
    auto copy = mono;
    scale::enforce_non_increasing(copy);
    EXPECT_EQ(copy, mono);
}

TEST(ScalePhyTable, GeneratedCurvesAreMonotoneAndBounded)
{
    const auto& table = shared_table();
    ASSERT_EQ(table.curves().size(), ap::rate_table().size());
    for (const auto& curve : table.curves()) {
        ASSERT_EQ(curve.per.size(), curve.sinr_db.size());
        for (std::size_t i = 0; i < curve.per.size(); ++i) {
            EXPECT_GE(curve.per[i], 0.0);
            EXPECT_LE(curve.per[i], 1.0);
            if (i > 0) {
                EXPECT_LE(curve.per[i], curve.per[i - 1] + 1e-12);
            }
        }
        // A useful curve must actually fall: near-certain loss at the low
        // end, mostly-delivered at the high end (the densest MCS is still
        // marginal at the top of the grid, so only < 0.5 is guaranteed).
        EXPECT_GT(curve.per.front(), 0.9);
        EXPECT_LT(curve.per.back(), 0.5);
    }
}

TEST(ScalePhyTable, InterpolationClampsAndBlends)
{
    const auto& table = shared_table();
    const auto& curve = table.curves()[0];
    EXPECT_DOUBLE_EQ(table.per(0, curve.sinr_db.front() - 10.0), curve.per.front());
    EXPECT_DOUBLE_EQ(table.per(0, curve.sinr_db.back() + 10.0), curve.per.back());
    const double mid = 0.5 * (curve.sinr_db[0] + curve.sinr_db[1]);
    EXPECT_DOUBLE_EQ(table.per(0, mid), 0.5 * (curve.per[0] + curve.per[1]));
    EXPECT_THROW((void)table.per(table.curves().size(), 10.0), simulation_error);
}

// The calibration cross-check the issue asks for: at three (MCS, SINR)
// points, a fresh sample-accurate run (independent seed) must agree with
// the interpolated PER within 0.25 absolute — three binomial sigma at 48
// frames plus the isotonic-fit adjustment. A mis-mapped distance, swapped
// curve, or broken interpolation shows up as an error near 1.0.
TEST(ScalePhyTable, CalibrationCrossCheck)
{
    const auto cfg = test_config();
    const auto& table = shared_table();
    const core::link_budget budget(cfg.scenario);
    const auto& ladder = ap::rate_table();

    struct point {
        std::size_t mcs;
        double sinr_db;
    };
    // One robust MCS near its waterfall, one mid-ladder, one dense.
    const point points[] = {{0, 6.0}, {2, 10.0}, {4, 22.0}};
    for (const auto& p : points) {
        core::system_config scenario = cfg.scenario;
        scenario.distance_m = budget.max_range_m(p.sinr_db);
        ASSERT_GT(scenario.distance_m, 0.0);
        scenario.seed = 0xf2e5a; // independent of the calibration seed
        core::link_simulator sim(scenario);
        sim.set_rate(ladder[p.mcs].scheme, ladder[p.mcs].fec);
        const auto report = sim.run_trials(cfg.frames_per_point, cfg.payload_bytes);
        EXPECT_NEAR(table.per(p.mcs, p.sinr_db), report.per, 0.25)
            << "mcs " << p.mcs << " at " << p.sinr_db << " dB";
    }
}

TEST(ScalePhyTable, JsonRoundTripPreservesCurves)
{
    const auto& table = shared_table();
    const auto doc = table.to_json();
    const phy_table back = phy_table::from_json(doc, test_config());
    EXPECT_EQ(back.fingerprint(), table.fingerprint());
    ASSERT_EQ(back.curves().size(), table.curves().size());
    for (std::size_t m = 0; m < table.curves().size(); ++m) {
        EXPECT_EQ(back.curves()[m].per, table.curves()[m].per);
        EXPECT_EQ(back.curves()[m].sinr_db, table.curves()[m].sinr_db);
        EXPECT_EQ(back.curves()[m].frames, table.curves()[m].frames);
    }
    EXPECT_EQ(back.to_json().dump(), doc.dump());
}

TEST(ScalePhyTable, LoaderFailsLoudOnTamperedTables)
{
    using runtime::json_value;
    const auto& table = shared_table();
    const auto doc = table.to_json();
    const auto clone = [](const json_value& v) { return *runtime::parse_json(v.dump()); };

    const auto cfg = test_config();

    // Wrong schema.
    EXPECT_THROW(
        (void)phy_table::from_json(runtime::schema_object("mmtag.other/1"), cfg),
        simulation_error);

    // Fingerprint that no longer matches the requested build parameters.
    {
        std::string tampered = doc.dump();
        const auto pos = tampered.find(table.fingerprint());
        ASSERT_NE(pos, std::string::npos);
        tampered[pos] = tampered[pos] == '0' ? '1' : '0';
        EXPECT_THROW((void)phy_table::from_json(*runtime::parse_json(tampered), cfg),
                     simulation_error);
    }

    // Stale cache: the document is self-consistent but was built for a
    // different config (more frames per point).
    {
        auto stale_cfg = cfg;
        stale_cfg.frames_per_point += 1;
        EXPECT_THROW((void)phy_table::from_json(doc, stale_cfg), simulation_error);
    }

    // Non-monotone curve: rebuild the document with the first curve's last
    // PER raised back to 1.0 (its neighbours are near 0).
    {
        auto broken = runtime::schema_object("mmtag.phy_table/1");
        broken.set("fingerprint", clone(*doc.find("fingerprint")));
        broken.set("params", clone(*doc.find("params")));
        const json_value* curves_in = doc.find("curves");
        ASSERT_NE(curves_in, nullptr);
        auto curves_out = json_value::array();
        for (std::size_t m = 0; m < curves_in->size(); ++m) {
            const json_value& entry_in = curves_in->at(m);
            auto entry = json_value::object();
            entry.set("modulation", clone(*entry_in.find("modulation")));
            entry.set("fec", clone(*entry_in.find("fec")));
            entry.set("sinr_db", clone(*entry_in.find("sinr_db")));
            auto per = json_value::array();
            const json_value* per_in = entry_in.find("per");
            for (std::size_t i = 0; i < per_in->size(); ++i) {
                const bool tamper = m == 0 && i + 1 == per_in->size();
                per.push(json_value::number(tamper ? 1.0
                                                   : per_in->at(i).as_number()));
            }
            entry.set("per", std::move(per));
            entry.set("frames", clone(*entry_in.find("frames")));
            curves_out.push(std::move(entry));
        }
        broken.set("curves", std::move(curves_out));
        EXPECT_THROW((void)phy_table::from_json(broken, cfg), simulation_error);
    }
}

TEST(ScalePhyTable, CacheMissThenHit)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "mmtag_phy_cache_test";
    fs::remove_all(dir);

    // A deliberately cheap grid: the cache contract is what's under test
    // here, not the statistics.
    auto cfg = test_config();
    cfg.frames_per_point = 8;
    // The first load_or_generate must miss (empty dir), generate, persist...
    const auto miss = phy_table::load_or_generate(cfg, 1, dir.string());
    EXPECT_FALSE(miss.cache_hit);
    EXPECT_TRUE(fs::exists(miss.path));

    // ...and the second must hit and agree bit for bit.
    const auto hit = phy_table::load_or_generate(cfg, 1, dir.string());
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.path, miss.path);
    EXPECT_EQ(hit.table.to_json().dump(), miss.table.to_json().dump());

    // A stale/corrupt file at the expected path is regenerated, loudly.
    ASSERT_TRUE(runtime::write_text_file(miss.path, "{\"schema\": \"corrupt\"}"));
    const auto stale = phy_table::load_or_generate(cfg, 1, dir.string());
    EXPECT_FALSE(stale.cache_hit);
    EXPECT_EQ(stale.table.to_json().dump(), miss.table.to_json().dump());
    fs::remove_all(dir);
}

} // namespace
