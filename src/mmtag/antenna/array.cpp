#include "mmtag/antenna/array.hpp"

#include <stdexcept>

namespace mmtag::antenna {

uniform_linear_array::uniform_linear_array(std::size_t element_count, double spacing_wavelengths,
                                           std::shared_ptr<const element> radiator)
    : element_count_(element_count), spacing_(spacing_wavelengths), radiator_(std::move(radiator))
{
    if (element_count == 0) throw std::invalid_argument("ula: element count must be >= 1");
    if (spacing_wavelengths <= 0.0) throw std::invalid_argument("ula: spacing must be > 0");
    if (!radiator_) throw std::invalid_argument("ula: null element");
}

cf64 uniform_linear_array::array_factor(double theta_rad) const
{
    // Phase per element: k d (sin theta - sin theta_steer), normalized by 1/N
    // so |AF| <= 1 with equality on the steered main lobe.
    const double psi = two_pi * spacing_ * (std::sin(theta_rad) - std::sin(steering_angle_));
    cf64 acc{};
    for (std::size_t n = 0; n < element_count_; ++n) {
        acc += std::polar(1.0, psi * static_cast<double>(n));
    }
    return acc / static_cast<double>(element_count_);
}

double uniform_linear_array::gain(double theta_rad) const
{
    const double af = std::norm(array_factor(theta_rad));
    return af * static_cast<double>(element_count_) * radiator_->gain(theta_rad);
}

void uniform_linear_array::steer(double theta_rad)
{
    if (std::abs(theta_rad) >= pi / 2.0) {
        throw std::invalid_argument("ula: steering angle must be within (-90, 90) degrees");
    }
    steering_angle_ = theta_rad;
}

double uniform_linear_array::half_power_beamwidth() const
{
    // Classic broadside approximation: 0.886 lambda / (N d), widened by scan.
    const double broadside = 0.886 / (static_cast<double>(element_count_) * spacing_);
    const double scan_widening = std::cos(steering_angle_);
    if (scan_widening <= 1e-6) return pi;
    return std::min(pi, broadside / scan_widening);
}

rvec uniform_linear_array::pattern(std::size_t points) const
{
    if (points < 2) throw std::invalid_argument("ula: pattern needs >= 2 points");
    rvec out(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double theta =
            -pi / 2.0 + pi * static_cast<double>(i) / static_cast<double>(points - 1);
        out[i] = gain(theta);
    }
    return out;
}

} // namespace mmtag::antenna
