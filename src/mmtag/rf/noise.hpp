// Thermal noise generation and noise-figure arithmetic.
#pragma once

#include <random>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::rf {

/// Thermal noise power kTB [W] in `bandwidth_hz` at temperature `kelvin`.
[[nodiscard]] double thermal_noise_power(double bandwidth_hz, double kelvin = t0_kelvin);

/// Thermal noise power in dBm (the familiar -174 dBm/Hz + 10 log10 B form).
[[nodiscard]] double thermal_noise_dbm(double bandwidth_hz, double kelvin = t0_kelvin);

/// Cascade noise figure (Friis formula) from per-stage noise figures and
/// gains, both in dB. Vectors must be equal length and non-empty.
[[nodiscard]] double cascade_noise_figure_db(std::span<const double> stage_nf_db,
                                             std::span<const double> stage_gain_db);

/// Complex white Gaussian noise source of a given total power [W]
/// (variance split evenly between I and Q).
class awgn_source {
public:
    awgn_source(double power_watt, std::uint64_t seed);

    [[nodiscard]] double power() const { return power_; }
    void set_power(double power_watt);

    [[nodiscard]] cf64 sample();

    /// Adds noise in place to a buffer.
    void add_to(std::span<cf64> buffer);

    /// Returns a noisy copy.
    [[nodiscard]] cvec apply(std::span<const cf64> input);

private:
    double power_;
    std::mt19937_64 rng_;
    std::normal_distribution<double> gaussian_{0.0, 1.0};
};

} // namespace mmtag::rf
