// R21 — Fault injection and supervised outage recovery (extension).
// A seeded fault schedule (blockage bursts, carrier dropouts, LO steps,
// interferer bursts, tag brownouts) perturbs the sample-accurate link while
// framed traffic is offered two ways: through the AP link supervisor
// (CRC-streak outage detection, capped-exponential-backoff retransmission,
// MCS fallback, watchdog reacquisition) and through plain fixed-rate
// stop-and-wait ARQ. Expected shape: the supervisor degrades gracefully as
// the fault rate grows, while the unsupervised link falls off a cliff the
// moment a persistent fault (LO step) lands — it can retransmit forever but
// never re-locks. Both arms see bit-identical faults per seed.
//
// The (cell x arm) grid — the heaviest workload in the bench suite — fans
// out across the runtime's thread pool; every arm owns its simulator and
// injector, so results are bit-identical for any --jobs value.
#include <chrono>
#include <vector>

#include "bench_util.hpp"
#include "mmtag/core/supervised_link.hpp"
#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/runtime/sweep_runner.hpp"
#include "mmtag/runtime/thread_pool.hpp"

using namespace mmtag;

namespace {

fault::fault_schedule::config schedule_config(double rate_hz, double mean_duration_s)
{
    fault::fault_schedule::config cfg;
    cfg.horizon_s = 80e-3; // covers the whole offered-traffic window
    cfg.event_rate_hz = rate_hz;
    cfg.mean_duration_s = mean_duration_s;
    return cfg;
}

core::system_config link_config(std::uint64_t seed)
{
    auto cfg = bench::bench_scenario();
    cfg.distance_m = 4.0; // ~21 dB margin over QPSK-1/2: healthy but finite
    cfg.seed = seed;
    return cfg;
}

struct fault_cell {
    double rate_hz;
    double duration_s;
};

constexpr fault_cell kCells[] = {{0.0, 2e-3}, {150.0, 1e-3}, {150.0, 3e-3},
                                 {400.0, 1e-3}, {400.0, 3e-3}};

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    bench::banner("R21", "goodput and recovery under injected faults, supervisor on/off",
                  opts.csv);

    constexpr std::size_t frames = 500;
    constexpr std::size_t payload_bytes = 24;
    const std::uint64_t fault_seed = opts.extra_u64("fault-seed", 42);

    const ap::supervisor_config sup_cfg{};
    constexpr std::size_t baseline_retries = 8;
    const std::size_t cell_count = std::size(kCells);

    // Task grid: [0] fault-free reference, then (cell, arm) pairs. Each task
    // owns its link and injector; seeds match the historical serial bench.
    std::vector<ap::supervised_report> sup_reports(cell_count);
    std::vector<ap::supervised_report> base_reports(cell_count);
    ap::supervised_report reference;

    const auto start = std::chrono::steady_clock::now();
    runtime::thread_pool pool(opts.jobs);
    pool.parallel_for(1 + 2 * cell_count, [&](std::size_t task) {
        if (task == 0) {
            core::link_simulator link(link_config(11));
            reference = core::run_supervised_link(link, nullptr, sup_cfg, frames,
                                                  payload_bytes);
            return;
        }
        const std::size_t cell_index = (task - 1) / 2;
        const bool supervised = (task - 1) % 2 == 0;
        const auto& cell = kCells[cell_index];
        const auto sched_cfg = schedule_config(cell.rate_hz, cell.duration_s);
        const std::uint64_t cell_seed = fault_seed * 1'000'003 + cell_index;

        core::link_simulator link(link_config(11));
        fault::fault_injector faults{fault::fault_schedule(sched_cfg, cell_seed)};
        fault::fault_injector* injector = cell.rate_hz > 0.0 ? &faults : nullptr;
        if (supervised) {
            sup_reports[cell_index] = core::run_supervised_link(link, injector, sup_cfg,
                                                                frames, payload_bytes);
        } else {
            base_reports[cell_index] = core::run_baseline_link(
                link, injector, baseline_retries, frames, payload_bytes);
        }
    });
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    runtime::result_writer results(
        "R21", "goodput and recovery under injected faults, supervisor on/off",
        {"fault_rate_hz", "mean_duration_ms"}, fault_seed);
    bench::table out({"fault_rate_hz", "mean_dur_ms", "sup_goodput_mbps",
                      "base_goodput_mbps", "sup_delivery", "base_delivery",
                      "outages", "detect_ms", "recover_ms", "reacq", "retained"},
                     opts.csv);
    for (std::size_t cell_index = 0; cell_index < cell_count; ++cell_index) {
        const auto& cell = kCells[cell_index];
        const auto& sup = sup_reports[cell_index];
        const auto& base = base_reports[cell_index];
        out.add_row({bench::fmt("%.0f", cell.rate_hz),
                     bench::fmt("%.0f", cell.duration_s * 1e3),
                     bench::fmt("%.3f", sup.goodput_bps / 1e6),
                     bench::fmt("%.3f", base.goodput_bps / 1e6),
                     bench::fmt("%.3f", sup.delivery_ratio()),
                     bench::fmt("%.3f", base.delivery_ratio()),
                     bench::fmt("%.0f", static_cast<double>(sup.recovery.outages)),
                     bench::fmt("%.2f", sup.recovery.mean_detect_s() * 1e3),
                     bench::fmt("%.2f", sup.recovery.mean_recover_s() * 1e3),
                     bench::fmt("%.0f", static_cast<double>(sup.recovery.reacquisitions)),
                     bench::fmt("%.3f", sup.goodput_retained(reference.goodput_bps))});

        auto axis = runtime::json_value::object();
        axis.set("fault_rate_hz", runtime::json_value::number(cell.rate_hz));
        axis.set("mean_duration_ms", runtime::json_value::number(cell.duration_s * 1e3));
        auto metrics = runtime::json_value::object();
        metrics.set("supervised_goodput_bps",
                    runtime::json_value::number(sup.goodput_bps));
        metrics.set("baseline_goodput_bps", runtime::json_value::number(base.goodput_bps));
        metrics.set("supervised_delivery",
                    runtime::json_value::number(sup.delivery_ratio()));
        metrics.set("baseline_delivery", runtime::json_value::number(base.delivery_ratio()));
        metrics.set("outages", runtime::json_value::unsigned_integer(sup.recovery.outages));
        metrics.set("reacquisitions",
                    runtime::json_value::unsigned_integer(sup.recovery.reacquisitions));
        metrics.set("mean_detect_s",
                    runtime::json_value::number(sup.recovery.mean_detect_s()));
        metrics.set("mean_recover_s",
                    runtime::json_value::number(sup.recovery.mean_recover_s()));
        metrics.set("goodput_retained",
                    runtime::json_value::number(
                        sup.goodput_retained(reference.goodput_bps)));
        results.add_point(std::move(axis), 1, std::move(metrics));
    }
    out.print();

    const std::size_t tasks = 1 + 2 * cell_count;
    const auto written =
        results.write(opts.json_path, wall_s, pool.jobs(),
                      wall_s > 0.0 ? static_cast<double>(tasks) / wall_s : 0.0);
    if (!opts.csv) {
        std::printf("\n%s\n", runtime::summary_line(cell_count, tasks, wall_s, pool.jobs())
                                  .c_str());
        if (!written.empty()) std::printf("wrote %s\n", written.c_str());
    }
    return 0;
}
