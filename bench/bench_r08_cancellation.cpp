// R8 — Self-interference cancellation ablation.
// Compares the canceller modes under increasing TX-RX coupling. Expected
// shape: without cancellation the static DC buries the tag (sync fails or
// SNR collapses); background subtraction holds the link to within a few dB
// of the interference-free bound until coupling overwhelms the ADC's
// dynamic range.
#include "bench_util.hpp"
#include "mmtag/core/link_simulator.hpp"

using namespace mmtag;

namespace {

const char* mode_name(ap::cancellation_mode mode)
{
    switch (mode) {
    case ap::cancellation_mode::off: return "off";
    case ap::cancellation_mode::dc_notch: return "dc-notch";
    case ap::cancellation_mode::mean_subtract: return "mean-subtract";
    case ap::cancellation_mode::background_subtract: return "background";
    }
    return "?";
}

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R8", "canceller modes vs TX leakage level", csv);

    bench::table out({"leakage_dB", "mode", "snr_dB", "per", "suppression_dB"}, csv);
    for (double leakage : {-80.0, -60.0, -45.0, -30.0}) {
        for (auto mode : {ap::cancellation_mode::off, ap::cancellation_mode::dc_notch,
                          ap::cancellation_mode::mean_subtract,
                          ap::cancellation_mode::background_subtract}) {
            auto cfg = bench::bench_scenario();
            cfg.tx_leakage_db = leakage;
            cfg.receiver.canceller.mode = mode;
            core::link_simulator sim(cfg);
            const auto result = sim.run_frame(
                std::vector<std::uint8_t>(32, 0xA5));
            const auto report = sim.run_trials(4, 32);
            out.add_row({bench::fmt("%.0f", leakage), mode_name(mode),
                         bench::fmt("%.1f", report.mean_snr_db),
                         bench::fmt("%.2f", report.per),
                         bench::fmt("%.1f", result.rx.suppression_db)});
        }
    }
    out.print();
    return 0;
}
