#include "mmtag/fault/multi_tag_faults.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace mmtag::fault {

multi_tag_plan::multi_tag_plan(const multi_tag_config& cfg, std::size_t tag_count,
                               std::size_t faulted_count, std::uint64_t seed)
    : cfg_(cfg), faulted_count_(faulted_count), shared_(cfg.horizon_s, {})
{
    if (tag_count == 0) throw std::invalid_argument("multi_tag_plan: no tags");
    if (faulted_count > tag_count) {
        throw std::invalid_argument("multi_tag_plan: faulted_count > tag_count");
    }
    if (cfg.horizon_s <= 0.0) {
        throw std::invalid_argument("multi_tag_plan: horizon must be > 0");
    }
    if (!(cfg.active_fraction > 0.0 && cfg.active_fraction <= 1.0)) {
        throw std::invalid_argument("multi_tag_plan: active_fraction must be in (0, 1]");
    }
    if (cfg.storm_rate_hz < 0.0 || cfg.background_rate_hz < 0.0 ||
        cfg.brownout_period_s < 0.0) {
        throw std::invalid_argument("multi_tag_plan: negative rate or period");
    }
    if (cfg.storm_rate_hz > 0.0 && cfg.storm_span == 0) {
        throw std::invalid_argument("multi_tag_plan: storm_span must be >= 1");
    }

    const double active_end = cfg.horizon_s * cfg.active_fraction;
    std::vector<std::vector<fault_event>> events(tag_count);

    std::mt19937_64 rng(seed * 0xA24BAED4963EE407ULL + 0x9FB21C651E98DF25ULL);
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    // Correlated blockage storms: every tag in the covered span receives the
    // identical event, so their sessions see the same onset and depth.
    if (cfg.storm_rate_hz > 0.0 && faulted_count > 0) {
        std::exponential_distribution<double> gap(cfg.storm_rate_hz);
        std::uniform_int_distribution<std::size_t> origin(0, faulted_count - 1);
        double t = gap(rng);
        while (t < active_end) {
            fault_event storm;
            storm.kind = fault_kind::blockage;
            storm.start_s = t;
            storm.duration_s = cfg.storm_duration_s;
            storm.magnitude =
                cfg.storm_depth_db_min +
                unit(rng) * (cfg.storm_depth_db_max - cfg.storm_depth_db_min);
            const std::size_t first = origin(rng);
            const std::size_t last = std::min(first + cfg.storm_span, faulted_count);
            for (std::size_t tag = first; tag < last; ++tag) {
                events[tag].push_back(storm);
            }
            t += gap(rng);
        }
    }

    // Rolling brownouts: tag j's harvester dips at j*stagger + k*period.
    if (cfg.brownout_period_s > 0.0 && cfg.brownout_duration_s > 0.0) {
        for (std::size_t tag = 0; tag < faulted_count; ++tag) {
            double onset = static_cast<double>(tag) * cfg.brownout_stagger_s;
            for (; onset < active_end; onset += cfg.brownout_period_s) {
                fault_event dip;
                dip.kind = fault_kind::brownout;
                dip.start_s = onset;
                dip.duration_s = cfg.brownout_duration_s;
                events[tag].push_back(dip);
            }
        }
    }

    // Independent background noise per faulted tag: per-tag kinds only, so a
    // background draw never fabricates a shared-channel fault.
    if (cfg.background_rate_hz > 0.0) {
        for (std::size_t tag = 0; tag < faulted_count; ++tag) {
            fault_schedule::config background;
            background.horizon_s = active_end;
            background.event_rate_hz = cfg.background_rate_hz;
            background.mean_duration_s = cfg.background_mean_duration_s;
            background.dropout_weight = 0.0;
            background.lo_step_weight = 0.0;
            background.interferer_weight = 0.0;
            const fault_schedule drawn(background,
                                       seed * 0x2545F4914F6CDD1DULL + tag + 1);
            for (const auto& event : drawn.events()) events[tag].push_back(event);
        }
    }

    per_tag_.reserve(tag_count);
    for (std::size_t tag = 0; tag < tag_count; ++tag) {
        per_tag_.emplace_back(cfg.horizon_s, std::move(events[tag]));
        for (const auto& event : per_tag_.back().events()) {
            last_end_s_ = std::max(last_end_s_, event.end_s());
        }
    }

    std::vector<fault_event> shared_events;
    if (cfg.interferer_duration_s > 0.0) {
        fault_event cw;
        cw.kind = fault_kind::interferer;
        cw.start_s = cfg.interferer_start_s;
        cw.duration_s = cfg.interferer_duration_s;
        cw.magnitude = cfg.interferer_rel_db;
        shared_events.push_back(cw);
    }
    shared_ = fault_schedule(cfg.horizon_s, std::move(shared_events));
    for (const auto& event : shared_.events()) {
        last_end_s_ = std::max(last_end_s_, event.end_s());
    }
}

} // namespace mmtag::fault
