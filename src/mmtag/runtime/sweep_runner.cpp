#include "mmtag/runtime/sweep_runner.hpp"

#include <cstdio>
#include <memory>
#include <mutex>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace mmtag::runtime {

std::string summary_line(std::size_t points, std::size_t trials, double wall_s,
                         std::size_t jobs)
{
    const double rate = wall_s > 0.0 ? static_cast<double>(trials) / wall_s : 0.0;
    char buffer[160];
    std::snprintf(buffer, sizeof buffer,
                  "sweep: %zu points, %zu trials in %.2f s wall (%zu jobs, %.0f trials/s)",
                  points, trials, wall_s, jobs, rate);
    return buffer;
}

std::function<void(std::size_t, std::size_t)> stderr_progress()
{
#ifdef _WIN32
    const bool tty = _isatty(_fileno(stderr)) != 0;
#else
    const bool tty = isatty(fileno(stderr)) != 0;
#endif
    if (!tty) return {};
    // Shared state so the returned callback is copyable and thread-safe.
    auto gate = std::make_shared<std::mutex>();
    return [gate](std::size_t done, std::size_t total) {
        const std::lock_guard<std::mutex> lock(*gate);
        std::fprintf(stderr, "\rsweep: %zu/%zu trials", done, total);
        if (done == total) std::fprintf(stderr, "\r\033[K");
        std::fflush(stderr);
    };
}

} // namespace mmtag::runtime
