// Comparison baselines for the evaluation:
//  - an active mmWave radio power model (what the tag replaces),
//  - a phased-array tag power model (why tags cannot steer actively),
//  - a sub-6 GHz backscatter reference point.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mmtag::core {

/// Component-level power budget of a conventional active mmWave transmitter.
struct active_radio_model {
    double pll_vco_w = 40e-3;
    double mixer_w = 25e-3;
    double pa_output_dbm = 10.0;
    double pa_efficiency = 0.15;
    double baseband_w = 80e-3;
    std::size_t phased_array_elements = 16;
    double per_element_w = 20e-3; ///< phase shifter + driver per element

    [[nodiscard]] double pa_power_w() const;
    [[nodiscard]] double total_power_w() const;
    [[nodiscard]] double energy_per_bit(double data_rate_bps) const;
};

/// What a tag would burn if it steered its beam actively instead of using a
/// passive retro-reflector.
struct phased_array_tag_model {
    std::size_t elements = 8;
    double per_element_w = 20e-3;
    double control_w = 10e-3;

    [[nodiscard]] double total_power_w() const;
};

/// Named literature reference points for the energy table (R11).
struct energy_reference {
    std::string name;
    double energy_per_bit_j;
    double data_rate_bps;
    std::string notes;
};

/// Reference points: the documented mmTag anchor (2.4 nJ/bit, via the
/// MilBack citation), sub-6 GHz WiFi backscatter, and active mmWave radios.
[[nodiscard]] std::vector<energy_reference> literature_energy_points();

} // namespace mmtag::core
