#include <gtest/gtest.h>

#include <random>

#include "mmtag/channel/blockage.hpp"
#include "mmtag/dsp/nco.hpp"
#include "mmtag/dsp/psd.hpp"
#include "mmtag/phy/line_code.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag {
namespace {

TEST(welch_psd, locates_a_tone)
{
    dsp::nco osc(0.1); // 0.1 * fs
    const cvec tone = osc.generate(8192);
    dsp::welch_config cfg;
    cfg.segment_length = 512;
    cfg.sample_rate_hz = 1e6;
    const auto psd = dsp::welch_psd(tone, cfg);
    EXPECT_NEAR(psd.peak_frequency(), 0.1e6, 1e6 / 512.0);
}

TEST(welch_psd, white_noise_is_flat)
{
    std::mt19937_64 rng(3);
    std::normal_distribution<double> g(0.0, 1.0);
    cvec noise(65536);
    for (auto& s : noise) s = {g(rng), g(rng)};
    dsp::welch_config cfg;
    cfg.segment_length = 256;
    cfg.sample_rate_hz = 1.0;
    const auto psd = dsp::welch_psd(noise, cfg);
    // Max-to-min bin ratio of a well-averaged white spectrum stays small.
    const double peak = *std::max_element(psd.power.begin(), psd.power.end());
    const double floor = *std::min_element(psd.power.begin(), psd.power.end());
    EXPECT_LT(peak / floor, 2.5);
}

TEST(welch_psd, band_power_partitions_total)
{
    dsp::nco osc(0.2);
    const cvec tone = osc.generate(4096);
    dsp::welch_config cfg;
    cfg.segment_length = 256;
    cfg.sample_rate_hz = 1.0;
    const auto psd = dsp::welch_psd(tone, cfg);
    const double left = psd.band_power(-0.5, 0.0 - 1e-12);
    const double right = psd.band_power(0.0 - 1e-12, 0.5);
    EXPECT_NEAR(left + right, psd.total_power(), 1e-9 * psd.total_power());
    // Tone at +0.2: virtually all power on the positive side.
    EXPECT_GT(right, psd.total_power() * 0.99);
}

TEST(welch_psd, occupied_bandwidth_of_tone_is_narrow)
{
    dsp::nco osc(0.05);
    const cvec tone = osc.generate(16384);
    dsp::welch_config cfg;
    cfg.segment_length = 1024;
    cfg.sample_rate_hz = 1e6;
    const auto psd = dsp::welch_psd(tone, cfg);
    EXPECT_LT(psd.occupied_bandwidth(0.99, 0.05e6), 20e3);
}

TEST(welch_psd, line_code_spectra_match_dc_fractions)
{
    // The PSD view must agree with the time-domain dc_power_fraction.
    const auto bits = phy::random_bits(16384, 5);
    for (auto code : {phy::line_code::nrz, phy::line_code::miller4}) {
        const auto chips = phy::encode_line_code(bits, code);
        cvec wave(chips.size());
        for (std::size_t i = 0; i < chips.size(); ++i) {
            wave[i] = {static_cast<double>(chips[i]), 0.0};
        }
        dsp::welch_config cfg;
        cfg.segment_length = 1024;
        cfg.sample_rate_hz = 1.0;
        const auto psd = dsp::welch_psd(wave, cfg);
        const double near_dc = psd.band_power(-0.01, 0.01) / psd.total_power();
        if (code == phy::line_code::nrz) EXPECT_GT(near_dc, 0.01);
        else EXPECT_LT(near_dc, 1e-3);
    }
}

TEST(welch_psd, validation)
{
    dsp::welch_config cfg;
    cfg.segment_length = 100; // not a power of two
    EXPECT_THROW((void)dsp::welch_psd(cvec(256), cfg), std::invalid_argument);
    cfg.segment_length = 256;
    EXPECT_THROW((void)dsp::welch_psd(cvec(100), cfg), std::invalid_argument);
}

TEST(blockage, levels_bounded_and_reach_both_states)
{
    channel::blockage_process::config cfg;
    cfg.sample_rate_hz = 1e6;
    cfg.mean_clear_s = 2e-3;
    cfg.mean_blocked_s = 1e-3;
    cfg.blockage_loss_db = 20.0;
    cfg.transition_s = 50e-6;
    channel::blockage_process process(cfg, 7);
    const rvec trace = process.generate(2'000'000); // 2 s of process
    const double blocked_amp = std::pow(10.0, -1.0);
    double low = 1.0;
    double high = 0.0;
    for (double v : trace) {
        EXPECT_GE(v, blocked_amp - 1e-9);
        EXPECT_LE(v, 1.0 + 1e-9);
        low = std::min(low, v);
        high = std::max(high, v);
    }
    EXPECT_NEAR(low, blocked_amp, 1e-6);  // reached fully blocked
    EXPECT_NEAR(high, 1.0, 1e-6);         // reached fully clear
}

TEST(blockage, duty_cycle_matches_dwell_ratio)
{
    channel::blockage_process::config cfg;
    cfg.sample_rate_hz = 1e6;
    cfg.mean_clear_s = 3e-3;
    cfg.mean_blocked_s = 1e-3;
    cfg.transition_s = 10e-6;
    channel::blockage_process process(cfg, 11);
    EXPECT_NEAR(process.duty_cycle(), 0.25, 1e-12);
    // Empirical: fraction of samples below the midpoint amplitude.
    const rvec trace = process.generate(4'000'000);
    std::size_t blocked = 0;
    for (double v : trace) {
        if (v < 0.55) ++blocked;
    }
    EXPECT_NEAR(static_cast<double>(blocked) / trace.size(), 0.25, 0.08);
}

TEST(blockage, transitions_are_smooth)
{
    channel::blockage_process::config cfg;
    cfg.sample_rate_hz = 1e6;
    cfg.transition_s = 100e-6; // 100 samples
    channel::blockage_process process(cfg, 13);
    const rvec trace = process.generate(3'000'000);
    const double max_step = (1.0 - std::pow(10.0, -1.0)) / 100.0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        EXPECT_LE(std::abs(trace[i] - trace[i - 1]), max_step * 1.001);
    }
}

TEST(blockage, deterministic_by_seed)
{
    channel::blockage_process a({}, 5);
    channel::blockage_process b({}, 5);
    EXPECT_EQ(a.generate(10000), b.generate(10000));
}

TEST(blockage, validation)
{
    channel::blockage_process::config cfg;
    cfg.mean_clear_s = 0.0;
    EXPECT_THROW(channel::blockage_process(cfg, 1), std::invalid_argument);
}

} // namespace
} // namespace mmtag
