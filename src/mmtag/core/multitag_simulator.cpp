#include "mmtag/core/multitag_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/obs/scoped_timer.hpp"
#include "mmtag/obs/trace.hpp"

namespace mmtag::core {

multitag_simulator::multitag_simulator(const system_config& base,
                                       std::vector<tag_descriptor> tags)
    : base_([&] {
          validate(base);
          return base;
      }()),
      tags_(std::move(tags)),
      modulator_(base_.modulator),
      transmitter_(base_.transmitter, base_.seed * 2654435761ULL + 3)
{
    if (tags_.empty()) throw std::invalid_argument("multitag_simulator: no tags");
    rebuild_seeded_state();
}

void multitag_simulator::rebuild_seeded_state()
{
    channels_.clear();
    channels_.reserve(tags_.size());
    for (const auto& tag : tags_) {
        system_config cfg = base_;
        cfg.distance_m = tag.distance_m;
        cfg.tag_incidence_rad = tag.incidence_rad;
        channels_.emplace_back(make_channel_config(cfg));
    }
}

void multitag_simulator::reseed(std::uint64_t seed)
{
    base_.seed = seed;
    transmitter_ = ap::ap_transmitter(base_.transmitter, base_.seed * 2654435761ULL + 3);
    rebuild_seeded_state();
    clock_s_ = 0.0;
    runs_ = 0;
}

void multitag_simulator::attach_tag_fault_injectors(
    std::vector<fault::fault_injector*> injectors)
{
    if (!injectors.empty() && injectors.size() != channels_.size()) {
        throw std::invalid_argument(
            "multitag_simulator: tag injector count must match tag count");
    }
    tag_faults_ = std::move(injectors);
}

namespace {

// Robust-mode modulator sharing everything with the base configuration but
// the payload (modulation, FEC) pair — preamble, header coding, bank and
// switch stay identical, so the override only changes payload density.
tag::backscatter_modulator with_mcs(const tag::backscatter_modulator& base,
                                    const burst_mcs& mcs)
{
    tag::backscatter_modulator::config cfg = base.parameters();
    cfg.frame.scheme = mcs.scheme;
    cfg.frame.fec = mcs.fec;
    return tag::backscatter_modulator(cfg);
}

} // namespace

double multitag_simulator::burst_duration_s(std::size_t payload_bytes) const
{
    const auto frame = modulator_.modulate(std::vector<std::uint8_t>(payload_bytes, 0));
    return frame.duration_s;
}

double multitag_simulator::burst_duration_s(std::size_t payload_bytes,
                                            const burst_mcs& mcs) const
{
    const auto frame =
        with_mcs(modulator_, mcs).modulate(std::vector<std::uint8_t>(payload_bytes, 0));
    return frame.duration_s;
}

std::vector<burst_outcome> multitag_simulator::run(const std::vector<tag_burst>& bursts)
{
    MMTAG_SCOPED_TIMER(metrics_, "time/multitag_capture");
    const obs::trace_span span("multitag.capture", "multitag");
    ++runs_;
    for (const auto& burst : bursts) {
        if (burst.tag_index >= channels_.size()) {
            throw std::invalid_argument("multitag_simulator: tag index out of range");
        }
    }

    // Modulate every burst and find the capture extent.
    const double fs = base_.sample_rate_hz;
    const std::size_t sps = modulator_.samples_per_symbol();
    std::vector<tag::modulated_frame> frames;
    std::vector<std::size_t> starts;
    frames.reserve(bursts.size());
    std::size_t latest_end = 0;
    // Lead for the canceller's quiet background window.
    const double training = base_.receiver.canceller.training_fraction +
                            base_.receiver.canceller.training_skip;
    for (const auto& burst : bursts) {
        frames.push_back(burst.mcs ? with_mcs(modulator_, *burst.mcs).modulate(burst.payload)
                                   : modulator_.modulate(burst.payload));
        const auto start = static_cast<std::size_t>(std::round(burst.start_s * fs));
        starts.push_back(start);
        latest_end = std::max(latest_end, start + frames.back().gamma.size());
    }
    const std::size_t margin =
        8 * sps + static_cast<std::size_t>(
                      std::ceil(4.0 * base_.receiver.canceller.tail_fraction *
                                static_cast<double>(latest_end)));
    std::size_t capture = latest_end + margin;
    const auto lead = static_cast<std::size_t>(
        std::ceil(2.0 * training * static_cast<double>(capture))) + sps;
    capture += lead;

    auto query = transmitter_.generate(capture);

    const double window_s = static_cast<double>(capture) / fs;
    fault::impairment shared;
    if (faults_ != nullptr) shared = faults_->at(clock_s_, window_s);
    if (shared.carrier_amplitude != 1.0) {
        // Carrier dropout hits every tag at once; the receive LO keeps going.
        for (auto& s : query.rf) s *= shared.carrier_amplitude;
    }

    // Environment: leakage + clutter from the first channel (shared room).
    const cvec quiet(1, cf64{});
    cvec antenna = channels_.front().ap_received(query.rf, quiet);

    // Superpose each tag's reflection, placed at its slot.
    for (std::size_t b = 0; b < bursts.size(); ++b) {
        // Per-burst faults: blockage shadows this tag's path twice, a
        // brownout silences its modulation for the burst.
        double burst_scale = 1.0;
        if (faults_ != nullptr) {
            const auto imp = faults_->at(clock_s_ + bursts[b].start_s,
                                         frames[b].duration_s);
            burst_scale =
                imp.tag_powered ? imp.tag_amplitude * imp.tag_amplitude : 0.0;
        }
        // Per-tag faults compound with the shared channel's: both paths can
        // shadow the same burst (a blocked tag during a carrier brownout).
        if (!tag_faults_.empty() && tag_faults_[bursts[b].tag_index] != nullptr) {
            const auto imp = tag_faults_[bursts[b].tag_index]->at(
                clock_s_ + bursts[b].start_s, frames[b].duration_s);
            burst_scale *=
                imp.tag_powered ? imp.tag_amplitude * imp.tag_amplitude : 0.0;
        }
        cvec gamma(capture, cf64{});
        const std::size_t start = starts[b] + lead;
        const auto& wave = frames[b].gamma;
        for (std::size_t i = 0; i < wave.size() && start + i < capture; ++i) {
            gamma[start + i] = wave[i] * burst_scale;
        }
        const cvec contribution =
            channels_[bursts[b].tag_index].tag_contribution(query.rf, gamma);
        for (std::size_t i = 0; i < capture; ++i) antenna[i] += contribution[i];
    }

    if (shared.interferer_active()) {
        // CW burst referenced to the strongest tag's round-trip return.
        double reference = 0.0;
        for (const auto& chan : channels_) {
            reference = std::max(reference, chan.round_trip_amplitude());
        }
        const double amplitude = reference * std::sqrt(transmitter_.tx_power_w()) *
                                 std::pow(10.0, shared.interferer_rel_db / 20.0);
        const double step =
            two_pi * 0.35 * base_.symbol_rate_hz / base_.sample_rate_hz;
        for (std::size_t i = 0; i < antenna.size(); ++i) {
            const double phase = step * static_cast<double>(i);
            antenna[i] += amplitude * cf64{std::cos(phase), std::sin(phase)};
        }
    }
    if (shared.lo_offset_hz != 0.0) {
        const double step = two_pi * shared.lo_offset_hz / base_.sample_rate_hz;
        for (std::size_t i = 0; i < antenna.size(); ++i) {
            const double phase = step * static_cast<double>(i);
            antenna[i] *= cf64{std::cos(phase), std::sin(phase)};
        }
    }

    // Receive each burst in its own window (slot receiver). The canceller
    // trains its background estimate on the leading fraction of whatever it
    // is given, so every slot window is stitched as quiet head + slot: the
    // capture's genuinely tag-free lead (static leakage and clutter only)
    // followed by this burst's region. Using the region immediately before
    // the burst instead would hand slots after the first a "background"
    // polluted by the previous burst, costing ~20 dB of residual floor and
    // silently erasing the weakest tags.
    std::vector<burst_outcome> outcomes(bursts.size());
    for (std::size_t b = 0; b < bursts.size(); ++b) {
        const std::size_t start = starts[b] + lead;
        const std::size_t pre = std::min<std::size_t>(start, 4 * sps);
        const std::size_t begin = start - pre;
        const std::size_t window_tail =
            4 * sps + static_cast<std::size_t>(
                          std::ceil(2.5 * base_.receiver.canceller.tail_fraction *
                                    static_cast<double>(frames[b].gamma.size())));
        const std::size_t end =
            std::min(capture, start + frames[b].gamma.size() + window_tail);
        cvec window(lead + (end - begin));
        cvec lo(lead + (end - begin));
        std::copy(antenna.begin(), antenna.begin() + static_cast<std::ptrdiff_t>(lead),
                  window.begin());
        std::copy(query.lo.begin(), query.lo.begin() + static_cast<std::ptrdiff_t>(lead),
                  lo.begin());
        std::copy(antenna.begin() + static_cast<std::ptrdiff_t>(begin),
                  antenna.begin() + static_cast<std::ptrdiff_t>(end),
                  window.begin() + static_cast<std::ptrdiff_t>(lead));
        std::copy(query.lo.begin() + static_cast<std::ptrdiff_t>(begin),
                  query.lo.begin() + static_cast<std::ptrdiff_t>(end),
                  lo.begin() + static_cast<std::ptrdiff_t>(lead));

        ap::ap_receiver receiver(base_.receiver,
                                 base_.seed * 7177 + runs_ * 131 + b);
        const auto rx = receiver.receive(window, lo);
        outcomes[b].frame_found = rx.frame_found;
        outcomes[b].snr_db = rx.snr_db;
        outcomes[b].payload = rx.payload;
        outcomes[b].delivered =
            rx.frame_found && rx.crc_ok && rx.payload == bursts[b].payload;
    }
    clock_s_ += window_s;

    if (metrics_ != nullptr) {
        metrics_->get_counter("multitag/captures").add();
        metrics_->get_counter("multitag/bursts").add(bursts.size());
        for (const auto& outcome : outcomes) {
            if (outcome.delivered) {
                metrics_->get_counter("multitag/bursts_delivered").add();
            } else if (!outcome.frame_found) {
                metrics_->get_counter("multitag/bursts_lost").add();
            }
            if (outcome.frame_found) {
                metrics_->get_histogram("multitag/snr_db", obs::snr_bounds_db())
                    .observe(outcome.snr_db);
            }
        }
    }
    return outcomes;
}

} // namespace mmtag::core
