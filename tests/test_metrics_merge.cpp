// merge() on the aggregation types the parallel sweep runner reduces with:
// exactness against sequential accumulation, associativity, and the
// zero-observation edge cases.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "mmtag/core/config.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/metrics.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::core {
namespace {

struct frame_case {
    std::vector<std::uint8_t> sent;
    std::vector<std::uint8_t> received;
    bool delivered = false;
    bool lost = false;
};

std::vector<frame_case> sample_frames()
{
    std::vector<frame_case> frames;
    frames.push_back({{0x00, 0xff, 0x0f}, {0x00, 0xff, 0x0f}, true, false});
    frames.push_back({{0xaa, 0x55}, {0xab, 0x55}, false, false});       // 1 bit
    frames.push_back({{0xff, 0x00, 0x81}, {0x00, 0xff, 0x81}, false, false}); // 16
    frames.push_back({{0x12, 0x34}, {}, false, true});                  // lost
    frames.push_back({{0x01}, {0x01}, true, false});
    frames.push_back({{0xf0, 0xf0, 0xf0, 0xf0}, {0xf0, 0xf0, 0xf0, 0xf1}, false, false});
    frames.push_back({{0xde, 0xad}, {}, false, true});                  // lost
    return frames;
}

void feed(error_counter& counter, const frame_case& frame)
{
    if (frame.lost) {
        counter.add_lost_frame(frame.sent.size());
    } else {
        counter.add_frame(frame.sent, frame.received, frame.delivered);
    }
}

TEST(error_counter_merge, agrees_with_sequential_accumulation)
{
    const auto frames = sample_frames();

    error_counter sequential;
    for (const auto& frame : frames) feed(sequential, frame);

    // Split the same stream across three counters, then fold them in order.
    std::array<error_counter, 3> shards;
    for (std::size_t i = 0; i < frames.size(); ++i) feed(shards[i % 3], frames[i]);
    error_counter merged = shards[0];
    merged.merge(shards[1]);
    merged.merge(shards[2]);

    EXPECT_EQ(merged.frames(), sequential.frames());
    EXPECT_EQ(merged.frames_delivered(), sequential.frames_delivered());
    EXPECT_EQ(merged.bits(), sequential.bits());
    EXPECT_EQ(merged.bit_errors(), sequential.bit_errors());
    EXPECT_DOUBLE_EQ(merged.ber(), sequential.ber());
    EXPECT_DOUBLE_EQ(merged.per(), sequential.per());
    EXPECT_DOUBLE_EQ(merged.ber_confidence(), sequential.ber_confidence());
}

TEST(error_counter_merge, is_associative)
{
    error_counter a, b, c;
    a.add_bits(1000, 7);
    a.add_lost_frame(4);
    b.add_bits(500, 0);
    b.add_frame(std::array<std::uint8_t, 2>{0xff, 0x00},
                std::array<std::uint8_t, 2>{0xfe, 0x00}, false);
    c.add_bits(2500, 31);

    error_counter left = a;   // (a + b) + c
    left.merge(b);
    left.merge(c);
    error_counter bc = b;     // a + (b + c)
    bc.merge(c);
    error_counter right = a;
    right.merge(bc);

    EXPECT_EQ(left.frames(), right.frames());
    EXPECT_EQ(left.frames_delivered(), right.frames_delivered());
    EXPECT_EQ(left.bits(), right.bits());
    EXPECT_EQ(left.bit_errors(), right.bit_errors());
}

TEST(error_counter_merge, empty_and_zero_edges)
{
    error_counter empty;
    EXPECT_EQ(empty.bits(), 0u);
    EXPECT_DOUBLE_EQ(empty.ber(), 0.0);
    EXPECT_DOUBLE_EQ(empty.per(), 0.0);
    EXPECT_DOUBLE_EQ(empty.ber_confidence(), 0.0);

    // Merging an empty counter changes nothing; merging into empty copies.
    error_counter some;
    some.add_bits(64, 2);
    error_counter copy = some;
    copy.merge(empty);
    EXPECT_EQ(copy.bits(), some.bits());
    EXPECT_EQ(copy.bit_errors(), some.bit_errors());
    error_counter other;
    other.merge(some);
    EXPECT_EQ(other.bits(), some.bits());
    EXPECT_EQ(other.bit_errors(), some.bit_errors());

    // add_bits is symbol-level: frame statistics stay untouched.
    EXPECT_EQ(some.frames(), 0u);
    EXPECT_DOUBLE_EQ(some.per(), 0.0);

    // Zero errors over nonzero bits: ber 0 but a nonzero confidence width.
    error_counter clean;
    clean.add_bits(10000, 0);
    EXPECT_DOUBLE_EQ(clean.ber(), 0.0);
    EXPECT_GT(clean.ber_confidence(), 0.0);
}

TEST(link_report_merge, recomputes_derived_figures_from_sums)
{
    link_report a;
    a.frames = 10;
    a.frames_delivered = 8;
    a.bits = 1000;
    a.bit_errors = 5;
    a.snr_samples = 9;
    a.snr_sum_db = 180.0;
    a.evm_samples = 9;
    a.evm_sum_db = -90.0;
    a.airtime_s = 0.5;
    a.delivered_bits = 800;
    a.tag_energy_j = 2e-6;
    a.recompute();

    link_report b;
    b.frames = 30;
    b.frames_delivered = 15;
    b.bits = 3000;
    b.bit_errors = 55;
    b.snr_samples = 21;
    b.snr_sum_db = 315.0;
    b.evm_samples = 21;
    b.evm_sum_db = -420.0;
    b.airtime_s = 1.5;
    b.delivered_bits = 1500;
    b.tag_energy_j = 6e-6;
    b.recompute();

    link_report merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.frames, 40u);
    EXPECT_EQ(merged.frames_delivered, 23u);
    EXPECT_EQ(merged.bits, 4000u);
    EXPECT_EQ(merged.bit_errors, 60u);
    EXPECT_DOUBLE_EQ(merged.ber, 60.0 / 4000.0);
    EXPECT_DOUBLE_EQ(merged.per, 1.0 - 23.0 / 40.0);
    EXPECT_DOUBLE_EQ(merged.mean_snr_db, (180.0 + 315.0) / 30.0);
    EXPECT_DOUBLE_EQ(merged.mean_evm_db, (-90.0 - 420.0) / 30.0);
    EXPECT_DOUBLE_EQ(merged.goodput_bps, 2300.0 / 2.0);
    EXPECT_DOUBLE_EQ(merged.tag_energy_per_bit_j, 8e-6 / 4000.0);
}

TEST(link_report_merge, is_associative_on_counts_and_tight_on_sums)
{
    const auto make = [](std::uint64_t seed, double distance) {
        auto cfg = fast_scenario();
        cfg.seed = seed;
        cfg.distance_m = distance;
        link_simulator sim(cfg);
        return sim.run_trials(3, 16);
    };
    const auto a = make(1, 2.0);
    const auto b = make(2, 3.0);
    const auto c = make(3, 4.5);

    link_report left = a;
    left.merge(b);
    left.merge(c);
    link_report bc = b;
    bc.merge(c);
    link_report right = a;
    right.merge(bc);

    EXPECT_EQ(left.frames, right.frames);
    EXPECT_EQ(left.frames_delivered, right.frames_delivered);
    EXPECT_EQ(left.bits, right.bits);
    EXPECT_EQ(left.bit_errors, right.bit_errors);
    EXPECT_EQ(left.snr_samples, right.snr_samples);
    EXPECT_NEAR(left.snr_sum_db, right.snr_sum_db, 1e-9);
    EXPECT_NEAR(left.goodput_bps, right.goodput_bps, 1e-6);
    EXPECT_NEAR(left.mean_snr_db, right.mean_snr_db, 1e-9);
}

TEST(link_report_merge, agrees_with_simulator_accumulation)
{
    // Two independent simulator runs merged must equal the frame-level sums
    // of their parts — no hidden state outside the sufficient statistics.
    auto cfg = fast_scenario();
    cfg.seed = 7;
    cfg.distance_m = 3.0;
    link_simulator sim_a(cfg);
    const auto a = sim_a.run_trials(4, 16);
    cfg.seed = 8;
    link_simulator sim_b(cfg);
    const auto b = sim_b.run_trials(6, 16);

    link_report merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.frames, a.frames + b.frames);
    EXPECT_EQ(merged.bits, a.bits + b.bits);
    EXPECT_EQ(merged.bit_errors, a.bit_errors + b.bit_errors);
    EXPECT_EQ(merged.frames_delivered, a.frames_delivered + b.frames_delivered);
    EXPECT_DOUBLE_EQ(merged.airtime_s, a.airtime_s + b.airtime_s);
    const double total_bits = static_cast<double>(merged.bits);
    if (merged.bits > 0) {
        EXPECT_DOUBLE_EQ(merged.ber,
                         static_cast<double>(merged.bit_errors) / total_bits);
    }
}

TEST(link_report_merge, zero_observation_edges)
{
    link_report empty;
    empty.recompute();
    EXPECT_DOUBLE_EQ(empty.ber, 0.0);
    EXPECT_DOUBLE_EQ(empty.per, 0.0);
    EXPECT_DOUBLE_EQ(empty.mean_snr_db, -100.0); // no frame found: floor
    EXPECT_DOUBLE_EQ(empty.mean_evm_db, 0.0);
    EXPECT_DOUBLE_EQ(empty.goodput_bps, 0.0);
    EXPECT_DOUBLE_EQ(empty.ber_confidence(), 0.0);

    // Merging empty into a real report leaves the figures unchanged.
    auto cfg = fast_scenario();
    cfg.seed = 3;
    link_simulator sim(cfg);
    const auto real = sim.run_trials(2, 16);
    link_report merged = real;
    merged.merge(empty);
    EXPECT_EQ(merged.frames, real.frames);
    EXPECT_DOUBLE_EQ(merged.ber, real.ber);
    EXPECT_DOUBLE_EQ(merged.per, real.per);
    EXPECT_DOUBLE_EQ(merged.mean_snr_db, real.mean_snr_db);
    EXPECT_DOUBLE_EQ(merged.goodput_bps, real.goodput_bps);

    // All frames lost: per 1, snr floor.
    link_report lost;
    lost.frames = 5;
    lost.bits = 5 * 128;
    lost.bit_errors = 5 * 64;
    lost.recompute();
    EXPECT_DOUBLE_EQ(lost.per, 1.0);
    EXPECT_DOUBLE_EQ(lost.mean_snr_db, -100.0);
}

} // namespace
} // namespace mmtag::core
