// FIR filter design (windowed sinc) and streaming FIR filtering.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/dsp/window.hpp"

namespace mmtag::dsp {

/// Designs a linear-phase low-pass FIR via the windowed-sinc method.
///
/// `cutoff_norm` is the -6 dB cutoff as a fraction of the sample rate in
/// (0, 0.5); `taps` must be odd so the filter has integer group delay.
[[nodiscard]] rvec design_lowpass(double cutoff_norm, std::size_t taps,
                                  window_kind window = window_kind::hamming);

/// High-pass complement of design_lowpass (spectral inversion); `taps` odd.
[[nodiscard]] rvec design_highpass(double cutoff_norm, std::size_t taps,
                                   window_kind window = window_kind::hamming);

/// Band-pass between `low_norm` and `high_norm` (fractions of sample rate).
[[nodiscard]] rvec design_bandpass(double low_norm, double high_norm, std::size_t taps,
                                   window_kind window = window_kind::hamming);

/// Streaming FIR filter over complex samples with persistent state, so a
/// signal can be processed in arbitrary-size chunks.
class fir_filter {
public:
    explicit fir_filter(rvec taps);

    [[nodiscard]] std::size_t tap_count() const { return taps_.size(); }

    /// Filters one sample.
    [[nodiscard]] cf64 process(cf64 input);

    /// Filters a block, returning one output per input.
    [[nodiscard]] cvec process(std::span<const cf64> input);

    /// Clears the delay line.
    void reset();

    /// Group delay in samples for linear-phase (symmetric) taps.
    [[nodiscard]] double group_delay() const;

private:
    rvec taps_;
    cvec delay_line_;
    std::size_t head_ = 0;
};

/// Non-streaming convenience: filter a whole buffer with zero initial state.
[[nodiscard]] cvec fir_apply(std::span<const double> taps, std::span<const cf64> input);

} // namespace mmtag::dsp
