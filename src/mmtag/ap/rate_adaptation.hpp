// SNR-driven rate adaptation: choose the densest (modulation, FEC) pair whose
// decoding threshold clears the measured SNR with margin.
#pragma once

#include <span>
#include <vector>

#include "mmtag/common.hpp"
#include "mmtag/phy/frame.hpp"

namespace mmtag::ap {

struct rate_option {
    phy::modulation scheme = phy::modulation::bpsk;
    phy::fec_mode fec = phy::fec_mode::conv_half;
    /// Minimum per-symbol SNR [dB] for quasi-error-free operation
    /// (BER <~ 1e-5 after decoding).
    double required_snr_db = 0.0;
    [[nodiscard]] double efficiency() const;
};

/// The mmtag rate ladder, ordered by increasing spectral efficiency.
/// Thresholds derive from theoretical M-PSK BER at 1e-5 minus measured
/// convolutional coding gain.
[[nodiscard]] const std::vector<rate_option>& rate_table();

class rate_adapter {
public:
    /// `margin_db` backs every threshold off for channel estimation error.
    explicit rate_adapter(double margin_db = 2.0);

    /// Densest option decodable at `snr_db`; the most robust option when
    /// even the bottom of the ladder is out of reach (caller may still fail).
    [[nodiscard]] rate_option select(double snr_db) const;

    /// Smoothed selection: exponential SNR averaging across calls to avoid
    /// flapping on noisy estimates.
    [[nodiscard]] rate_option select_smoothed(double snr_db);

    [[nodiscard]] double smoothed_snr_db() const { return smoothed_snr_db_; }

private:
    double margin_db_;
    double smoothed_snr_db_ = 0.0;
    bool primed_ = false;
};

} // namespace mmtag::ap
