// R5 — BER vs Eb/N0 per modulation against theory.
// Symbol-level AWGN sweep of the exact mapper/demapper the tag and AP use.
// Expected shape: simulated points sit on the closed-form curves (exact for
// BPSK/QPSK, tight union bound for 8/16-PSK), validating the demodulator and
// calibrating every downstream BER claim.
#include <random>

#include "bench_util.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/phy/modulation.hpp"

using namespace mmtag;

namespace {

double simulate_ber(phy::modulation scheme, double ebn0_db, std::size_t bits_target,
                    std::uint64_t seed)
{
    const std::size_t k = phy::bits_per_symbol(scheme);
    const double es_n0 = from_db(ebn0_db) * static_cast<double>(k);
    const double noise_sigma = std::sqrt(0.5 / es_n0); // unit-energy symbols
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gaussian(0.0, noise_sigma);

    std::size_t errors = 0;
    std::size_t counted = 0;
    std::size_t block = 0;
    while (counted < bits_target) {
        const auto bits = phy::random_bits(3000 * k, seed * 977 + block++);
        cvec symbols = phy::map_bits(bits, scheme);
        for (auto& s : symbols) s += cf64{gaussian(rng), gaussian(rng)};
        const auto decided = phy::demap_hard(symbols, scheme);
        errors += phy::hamming_distance(decided, bits);
        counted += bits.size();
    }
    return static_cast<double>(errors) / static_cast<double>(counted);
}

} // namespace

int main(int argc, char** argv)
{
    const bool csv = bench::csv_mode(argc, argv);
    bench::banner("R5", "BER vs Eb/N0 per modulation, simulated vs theory", csv);

    bench::table out({"ebn0_dB", "modulation", "simulated", "theory"}, csv);
    for (auto scheme : {phy::modulation::bpsk, phy::modulation::qpsk, phy::modulation::psk8,
                        phy::modulation::psk16}) {
        for (double ebn0 = 0.0; ebn0 <= 14.0; ebn0 += 2.0) {
            const double theory = phy::theoretical_ber(scheme, ebn0);
            if (theory < 1e-7) continue; // beyond affordable sample counts
            const std::size_t bits = theory > 1e-3 ? 120'000 : 1'200'000;
            const double simulated =
                simulate_ber(scheme, ebn0, bits, 31 + static_cast<unsigned>(ebn0));
            out.add_row({bench::fmt("%.0f", ebn0), phy::modulation_name(scheme),
                         bench::fmt("%.2e", simulated), bench::fmt("%.2e", theory)});
        }
    }
    out.print();
    return 0;
}
