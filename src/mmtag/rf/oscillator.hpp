// Local-oscillator model: static frequency error (CFO) plus Wiener-process
// phase noise. In a self-coherent backscatter receiver the same LO feeds TX
// and RX, so the *common* phase noise cancels — the model exposes both a
// shared and an independent mode so that cancellation can be demonstrated.
#pragma once

#include <random>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::rf {

/// Complex-exponential LO sample stream.
class oscillator {
public:
    struct config {
        double sample_rate_hz = 1e9;
        double frequency_offset_hz = 0.0; ///< CFO relative to nominal carrier
        /// One-sided phase-noise linewidth [Hz] of the Wiener (random-walk)
        /// process; 0 disables phase noise. Typical cheap mmWave synthesizer:
        /// a few hundred Hz to a few kHz Lorentzian linewidth.
        double linewidth_hz = 0.0;
        double initial_phase_rad = 0.0;
    };

    oscillator(const config& cfg, std::uint64_t seed);

    /// Returns exp(j(2 pi f_off t + phi_n(t))) and advances one sample.
    [[nodiscard]] cf64 step();

    [[nodiscard]] cvec generate(std::size_t count);

    /// Current accumulated phase [rad].
    [[nodiscard]] double phase() const { return phase_; }

private:
    config cfg_;
    double phase_;
    double increment_;
    double phase_noise_sigma_;
    std::mt19937_64 rng_;
    std::normal_distribution<double> gaussian_{0.0, 1.0};
};

} // namespace mmtag::rf
