#include "mmtag/core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "mmtag/phy/bitio.hpp"

namespace mmtag::core {

void error_counter::add_frame(std::span<const std::uint8_t> sent,
                              std::span<const std::uint8_t> received, bool delivered)
{
    ++frames_;
    if (delivered) ++delivered_;
    bits_ += sent.size() * 8;
    const std::size_t compare = std::min(sent.size(), received.size());
    for (std::size_t i = 0; i < compare; ++i) {
        std::uint8_t diff = static_cast<std::uint8_t>(sent[i] ^ received[i]);
        while (diff != 0) {
            bit_errors_ += diff & 1u;
            diff >>= 1;
        }
    }
    // Missing bytes count as fully errored at rate 1/2 (random data).
    if (received.size() < sent.size()) {
        bit_errors_ += (sent.size() - received.size()) * 4;
    }
}

void error_counter::add_lost_frame(std::size_t payload_bytes)
{
    ++frames_;
    bits_ += payload_bytes * 8;
    bit_errors_ += payload_bytes * 4; // undetected output ~ coin-flip bits
}

void error_counter::add_bits(std::size_t bits, std::size_t bit_errors)
{
    bits_ += bits;
    bit_errors_ += bit_errors;
}

void error_counter::merge(const error_counter& other)
{
    frames_ += other.frames_;
    delivered_ += other.delivered_;
    bits_ += other.bits_;
    bit_errors_ += other.bit_errors_;
}

namespace {

/// Wilson-interval half width (95%) for `errors` successes in `n` draws.
double wilson_half_width(std::size_t errors, std::size_t n_draws)
{
    if (n_draws == 0) return 0.0;
    constexpr double z = 1.96;
    const double n = static_cast<double>(n_draws);
    const double p = static_cast<double>(errors) / n;
    return z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / (1.0 + z * z / n);
}

} // namespace

double error_counter::ber() const
{
    if (bits_ == 0) return 0.0;
    return static_cast<double>(bit_errors_) / static_cast<double>(bits_);
}

double error_counter::per() const
{
    if (frames_ == 0) return 0.0;
    return 1.0 - static_cast<double>(delivered_) / static_cast<double>(frames_);
}

double error_counter::ber_confidence() const
{
    return wilson_half_width(bit_errors_, bits_);
}

void error_counter::reset()
{
    frames_ = 0;
    delivered_ = 0;
    bits_ = 0;
    bit_errors_ = 0;
}

void link_report::merge(const link_report& other)
{
    frames += other.frames;
    frames_delivered += other.frames_delivered;
    bits += other.bits;
    bit_errors += other.bit_errors;
    snr_samples += other.snr_samples;
    snr_sum_db += other.snr_sum_db;
    evm_samples += other.evm_samples;
    evm_sum_db += other.evm_sum_db;
    airtime_s += other.airtime_s;
    delivered_bits += other.delivered_bits;
    tag_energy_j += other.tag_energy_j;
    recompute();
}

void link_report::recompute()
{
    ber = bits > 0 ? static_cast<double>(bit_errors) / static_cast<double>(bits) : 0.0;
    per = frames > 0 ? 1.0 - static_cast<double>(frames_delivered) /
                                 static_cast<double>(frames)
                     : 0.0;
    mean_snr_db = snr_samples > 0
                      ? snr_sum_db / static_cast<double>(snr_samples)
                      : -100.0;
    mean_evm_db = evm_samples > 0 ? evm_sum_db / static_cast<double>(evm_samples) : 0.0;
    goodput_bps = airtime_s > 0.0
                      ? static_cast<double>(delivered_bits) / airtime_s
                      : 0.0;
    tag_energy_per_bit_j =
        bits > 0 ? tag_energy_j / static_cast<double>(bits) : 0.0;
}

double link_report::ber_confidence() const
{
    return wilson_half_width(bit_errors, bits);
}

double per_from_ber(double ber, std::size_t frame_bits)
{
    if (!(ber >= 0.0 && ber <= 1.0)) throw std::invalid_argument("per_from_ber: ber outside [0,1]");
    return 1.0 - std::pow(1.0 - ber, static_cast<double>(frame_bits));
}

std::string format_ber(double ber, std::size_t bits_observed)
{
    char buffer[32];
    if (ber <= 0.0) {
        std::snprintf(buffer, sizeof buffer, "<%.1e", 1.0 / std::max<std::size_t>(bits_observed, 1));
    } else {
        std::snprintf(buffer, sizeof buffer, "%.1e", ber);
    }
    return buffer;
}

} // namespace mmtag::core
