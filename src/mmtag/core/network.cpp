#include "mmtag/core/network.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "mmtag/core/link_budget.hpp"
#include "mmtag/core/metrics.hpp"

namespace mmtag::core {

std::vector<tag_descriptor> uniform_population(std::size_t count, double min_range_m,
                                               double max_range_m, std::uint64_t seed)
{
    if (count == 0) throw std::invalid_argument("uniform_population: count must be >= 1");
    if (!(min_range_m > 0.0) || !(max_range_m >= min_range_m)) {
        throw std::invalid_argument("uniform_population: invalid range bounds");
    }
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> range_dist(min_range_m, max_range_m);
    std::uniform_real_distribution<double> angle_dist(-35.0, 35.0);
    std::vector<tag_descriptor> tags;
    tags.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        tags.push_back({static_cast<std::uint32_t>(i), range_dist(rng),
                        deg_to_rad(angle_dist(rng))});
    }
    return tags;
}

network::network(const system_config& base, std::vector<tag_descriptor> tags)
    : base_(base), tags_(std::move(tags))
{
    validate(base_);
    if (tags_.empty()) throw std::invalid_argument("network: no tags");
}

std::vector<tag_link_state> network::evaluate_links(std::size_t frame_payload_bytes) const
{
    std::vector<tag_link_state> links;
    links.reserve(tags_.size());
    const ap::rate_adapter adapter(2.0);

    for (const auto& tag : tags_) {
        system_config cfg = base_;
        cfg.distance_m = tag.distance_m;
        cfg.tag_incidence_rad = tag.incidence_rad;
        const link_budget budget(cfg);
        const link_budget_entry entry = budget.at(tag.distance_m);

        tag_link_state state;
        state.tag = tag;
        state.snr_db = entry.snr_db;
        state.rate = adapter.select(entry.snr_db);

        // Residual BER at the operating point: uncoded theory at the SNR
        // surplus over the option's threshold keeps the model conservative.
        const double eff = state.rate.efficiency();
        const double ebn0_db = entry.snr_db - to_db(std::max(eff, 1e-3));
        const double ber = phy::theoretical_ber(state.rate.scheme, ebn0_db);
        const std::size_t frame_bits = (frame_payload_bytes + 4) * 8;
        state.frame_success =
            entry.snr_db >= state.rate.required_snr_db
                ? 1.0 - per_from_ber(std::min(ber, 0.5), frame_bits)
                : 0.0;
        links.push_back(state);
    }
    return links;
}

network_report network::run(std::uint64_t seed, std::size_t frame_payload_bytes) const
{
    network_report report;
    report.links = evaluate_links(frame_payload_bytes);

    double success_sum = 0.0;
    report.min_snr_db = report.links.front().snr_db;
    report.max_snr_db = report.links.front().snr_db;
    for (const auto& link : report.links) {
        success_sum += link.frame_success;
        report.min_snr_db = std::min(report.min_snr_db, link.snr_db);
        report.max_snr_db = std::max(report.max_snr_db, link.snr_db);
    }
    const double mean_success = success_sum / static_cast<double>(report.links.size());

    // Inventory with the population's mean singleton success.
    mac::aloha_config aloha_cfg;
    aloha_cfg.singleton_success = std::clamp(mean_success, 0.01, 1.0);
    const mac::aloha_inventory inventory(aloha_cfg);
    report.inventory = inventory.run(tags_.size(), seed);

    // Steady-state TDMA at the population's median rate.
    std::vector<double> rates;
    rates.reserve(report.links.size());
    for (const auto& link : report.links) {
        rates.push_back(link.rate.efficiency() * base_.symbol_rate_hz);
    }
    std::nth_element(rates.begin(), rates.begin() + rates.size() / 2, rates.end());
    const double median_rate = rates[rates.size() / 2];

    mac::tdma_config tdma_cfg;
    tdma_cfg.frame_payload_bytes = frame_payload_bytes;
    tdma_cfg.phy_rate_bps = std::max(median_rate, 1.0);
    const mac::tdma_scheduler scheduler(tdma_cfg);
    report.tdma = scheduler.metrics(tags_.size());

    // Aggregate goodput: slot goodput weighted by each tag's delivery rate.
    double aggregate = 0.0;
    for (auto& link : report.links) {
        link.goodput_bps = report.tdma.per_tag_goodput_bps * link.frame_success;
        aggregate += link.goodput_bps;
    }
    report.aggregate_goodput_bps = aggregate;
    return report;
}

} // namespace mmtag::core
