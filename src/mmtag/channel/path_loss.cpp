#include "mmtag/channel/path_loss.hpp"

#include <stdexcept>

namespace mmtag::channel {

namespace {

void check_positive(double value, const char* what)
{
    if (value <= 0.0) throw std::invalid_argument(std::string("path_loss: ") + what);
}

} // namespace

double free_space_path_loss(double distance_m, double frequency_hz)
{
    check_positive(distance_m, "distance must be > 0");
    const double lambda = wavelength(frequency_hz);
    const double ratio = 4.0 * pi * distance_m / lambda;
    return ratio * ratio;
}

double free_space_path_loss_db(double distance_m, double frequency_hz)
{
    return to_db(free_space_path_loss(distance_m, frequency_hz));
}

double log_distance_path_loss_db(double distance_m, double frequency_hz, double exponent)
{
    check_positive(distance_m, "distance must be > 0");
    check_positive(exponent, "exponent must be > 0");
    const double reference_db = free_space_path_loss_db(1.0, frequency_hz);
    return reference_db + 10.0 * exponent * std::log10(distance_m);
}

double one_way_received_power(double tx_power_w, double tx_gain, double rx_gain,
                              double distance_m, double frequency_hz)
{
    check_positive(tx_power_w, "tx power must be > 0");
    check_positive(tx_gain, "tx gain must be > 0");
    check_positive(rx_gain, "rx gain must be > 0");
    return tx_power_w * tx_gain * rx_gain / free_space_path_loss(distance_m, frequency_hz);
}

double backscatter_received_power(double tx_power_w, double tx_gain, double rx_gain,
                                  double tag_backscatter_gain, double distance_m,
                                  double frequency_hz)
{
    check_positive(tag_backscatter_gain, "tag backscatter gain must be > 0");
    const double one_way = free_space_path_loss(distance_m, frequency_hz);
    return tx_power_w * tx_gain * rx_gain * tag_backscatter_gain / (one_way * one_way);
}

double backscatter_max_range(double tx_power_w, double tx_gain, double rx_gain,
                             double tag_backscatter_gain, double frequency_hz,
                             double sensitivity_w)
{
    check_positive(sensitivity_w, "sensitivity must be > 0");
    check_positive(tag_backscatter_gain, "tag backscatter gain must be > 0");
    const double lambda = wavelength(frequency_hz);
    const double numerator = tx_power_w * tx_gain * rx_gain * tag_backscatter_gain *
                             std::pow(lambda, 4.0);
    const double denominator = std::pow(4.0 * pi, 4.0) * sensitivity_w;
    return std::pow(numerator / denominator, 0.25);
}

} // namespace mmtag::channel
