#include <gtest/gtest.h>

#include "mmtag/dsp/window.hpp"

namespace mmtag::dsp {
namespace {

class window_properties : public ::testing::TestWithParam<window_kind> {};

TEST_P(window_properties, symmetric)
{
    const rvec w = make_window(GetParam(), 65);
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    }
}

TEST_P(window_properties, nonnegative_and_bounded)
{
    const rvec w = make_window(GetParam(), 128);
    for (double v : w) {
        EXPECT_GE(v, -1e-6);
        EXPECT_LE(v, 1.0 + 1e-12);
    }
}

TEST_P(window_properties, noise_bandwidth_at_least_one_bin)
{
    const rvec w = make_window(GetParam(), 256);
    EXPECT_GE(noise_bandwidth_bins(w), 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(kinds, window_properties,
                         ::testing::Values(window_kind::rectangular, window_kind::hann,
                                           window_kind::hamming, window_kind::blackman,
                                           window_kind::blackman_harris));

TEST(window, rectangular_is_all_ones)
{
    const rvec w = make_window(window_kind::rectangular, 8);
    for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
    EXPECT_DOUBLE_EQ(coherent_gain(w), 8.0);
    EXPECT_NEAR(noise_bandwidth_bins(w), 1.0, 1e-12);
}

TEST(window, hann_endpoints_are_zero)
{
    const rvec w = make_window(window_kind::hann, 33);
    EXPECT_NEAR(w.front(), 0.0, 1e-12);
    EXPECT_NEAR(w.back(), 0.0, 1e-12);
    EXPECT_NEAR(w[16], 1.0, 1e-12); // center
}

TEST(window, hann_noise_bandwidth_is_1_5_bins)
{
    // Asymptotic ENBW of Hann is 1.5 bins.
    const rvec w = make_window(window_kind::hann, 4096);
    EXPECT_NEAR(noise_bandwidth_bins(w), 1.5, 0.01);
}

TEST(window, length_one_is_unity)
{
    for (auto kind : {window_kind::hann, window_kind::blackman}) {
        const rvec w = make_window(kind, 1);
        ASSERT_EQ(w.size(), 1u);
        EXPECT_DOUBLE_EQ(w[0], 1.0);
    }
}

TEST(window, zero_length_rejected)
{
    EXPECT_THROW((void)make_window(window_kind::hann, 0), std::invalid_argument);
}

} // namespace
} // namespace mmtag::dsp
