#include <gtest/gtest.h>

#include <random>

#include "mmtag/dsp/carrier_recovery.hpp"
#include "mmtag/dsp/equalizer.hpp"
#include "mmtag/phy/modulation.hpp"

namespace mmtag::dsp {
namespace {

cvec random_psk(std::size_t count, std::size_t m, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> dist(0, m - 1);
    cvec symbols(count);
    for (auto& s : symbols) {
        s = std::polar(1.0, two_pi * static_cast<double>(dist(rng)) / static_cast<double>(m));
    }
    return symbols;
}

TEST(carrier, data_aided_phase_estimate)
{
    const cvec pilots = random_psk(64, 4, 1);
    cvec received(pilots.size());
    const double true_phase = 0.7;
    for (std::size_t i = 0; i < pilots.size(); ++i) {
        received[i] = pilots[i] * std::polar(1.0, true_phase);
    }
    EXPECT_NEAR(estimate_phase_offset(received, pilots), true_phase, 1e-9);
}

TEST(carrier, data_aided_frequency_estimate)
{
    const cvec pilots = random_psk(128, 4, 2);
    cvec received(pilots.size());
    const double cfo = 0.003; // cycles/sample
    for (std::size_t i = 0; i < pilots.size(); ++i) {
        received[i] = pilots[i] * std::polar(1.0, two_pi * cfo * static_cast<double>(i));
    }
    EXPECT_NEAR(estimate_frequency_offset(received, pilots), cfo, 1e-6);
}

TEST(carrier, psk_loop_removes_static_rotation)
{
    const cvec symbols = random_psk(2000, 4, 3);
    cvec rotated(symbols.size());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        rotated[i] = symbols[i] * std::polar(1.0, 0.3);
    }
    psk_carrier_recovery::config cfg;
    cfg.modulation_order = 4;
    psk_carrier_recovery loop(cfg);
    const cvec out = loop.process(rotated);
    // Tail symbols must sit on the constellation (phase multiple of pi/2).
    for (std::size_t i = out.size() - 200; i < out.size(); ++i) {
        const double angle = std::arg(out[i]);
        const double nearest = std::round(angle / (pi / 2.0)) * (pi / 2.0);
        EXPECT_LT(std::abs(wrap_phase(angle - nearest)), 0.05);
    }
}

TEST(carrier, psk_loop_tracks_small_cfo)
{
    const cvec symbols = random_psk(4000, 2, 4);
    const double cfo = 0.001;
    cvec rotated(symbols.size());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        rotated[i] = symbols[i] * std::polar(1.0, two_pi * cfo * static_cast<double>(i));
    }
    psk_carrier_recovery::config cfg;
    cfg.modulation_order = 2;
    cfg.loop_bandwidth = 0.03;
    psk_carrier_recovery loop(cfg);
    const cvec out = loop.process(rotated);
    std::size_t on_constellation = 0;
    for (std::size_t i = out.size() - 500; i < out.size(); ++i) {
        const double angle = std::arg(out[i]);
        const double nearest = std::round(angle / pi) * pi;
        if (std::abs(wrap_phase(angle - nearest)) < 0.15) ++on_constellation;
    }
    EXPECT_GT(on_constellation, 450u);
}

TEST(carrier, validation)
{
    psk_carrier_recovery::config cfg;
    cfg.modulation_order = 1;
    EXPECT_THROW(psk_carrier_recovery{cfg}, std::invalid_argument);
    EXPECT_THROW((void)estimate_phase_offset(cvec{}, cvec{}), std::invalid_argument);
}

TEST(equalizer, identity_channel_passthrough)
{
    // Training with the reference delayed by the equalizer's center tap:
    // the center-spike initialization is already the exact solution, so the
    // error must stay at zero throughout.
    lms_equalizer::config cfg;
    cfg.taps = 5;
    lms_equalizer eq(cfg);
    const cvec symbols = random_psk(100, 4, 5);
    const std::size_t delay = cfg.taps / 2;
    cvec reference(symbols.size());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        // For i < delay the zero-filled delay line makes 0 the exact output.
        reference[i] = i >= delay ? symbols[i - delay] : cf64{};
    }
    const cvec out = eq.train(symbols, reference);
    for (std::size_t i = delay + 1; i < out.size(); ++i) {
        EXPECT_NEAR(std::abs(out[i] - symbols[i - delay]), 0.0, 1e-6);
    }
}

TEST(equalizer, corrects_two_tap_channel)
{
    const cvec symbols = random_psk(3000, 4, 6);
    // Channel: h = [1, 0.4 e^{j0.5}].
    const cf64 h1 = 0.4 * std::polar(1.0, 0.5);
    cvec received(symbols.size());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        received[i] = symbols[i] + (i > 0 ? h1 * symbols[i - 1] : cf64{});
    }
    lms_equalizer::config cfg;
    cfg.taps = 9;
    cfg.step = 0.01;
    lms_equalizer eq(cfg);
    // Train toward the reference delayed by the center tap so the FIR has
    // acausal taps available for the inverse.
    const std::size_t delay = cfg.taps / 2;
    const std::size_t train_len = 1500;
    cvec reference(train_len);
    for (std::size_t i = 0; i < train_len; ++i) {
        reference[i] = i >= delay ? symbols[i - delay] : cf64{1.0, 0.0};
    }
    (void)eq.train(std::span<const cf64>{received.data(), train_len}, reference);
    const cvec out = eq.process(
        std::span<const cf64>{received.data() + train_len, symbols.size() - train_len});

    std::size_t errors = 0;
    std::size_t total = 0;
    for (std::size_t i = delay + 10; i < out.size(); ++i) {
        const cf64 wanted = symbols[train_len + i - delay];
        ++total;
        if (std::abs(out[i] - wanted) > 0.7) ++errors;
    }
    EXPECT_LT(static_cast<double>(errors) / static_cast<double>(total), 0.02);
}

TEST(equalizer, validation)
{
    lms_equalizer::config cfg;
    cfg.taps = 4; // even
    EXPECT_THROW(lms_equalizer{cfg}, std::invalid_argument);
    cfg.taps = 5;
    cfg.step = 2.0;
    EXPECT_THROW(lms_equalizer{cfg}, std::invalid_argument);
}

} // namespace
} // namespace mmtag::dsp
