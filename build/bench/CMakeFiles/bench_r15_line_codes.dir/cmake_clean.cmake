file(REMOVE_RECURSE
  "CMakeFiles/bench_r15_line_codes.dir/bench_r15_line_codes.cpp.o"
  "CMakeFiles/bench_r15_line_codes.dir/bench_r15_line_codes.cpp.o.d"
  "bench_r15_line_codes"
  "bench_r15_line_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r15_line_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
