#include "mmtag/core/link_simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "mmtag/dsp/estimators.hpp"
#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/obs/scoped_timer.hpp"
#include "mmtag/obs/trace.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::core {

link_simulator::link_simulator(const system_config& cfg)
    : cfg_([&] {
          validate(cfg);
          return cfg;
      }()),
      channel_(make_channel_config(cfg_)),
      modulator_(cfg_.modulator),
      energy_(cfg_.energy),
      transmitter_(cfg_.transmitter, cfg_.seed * 7919 + 1),
      receiver_(cfg_.receiver, cfg_.seed * 104729 + 2)
{
}

link_simulator::frame_result link_simulator::run_frame(std::span<const std::uint8_t> payload)
{
    MMTAG_SCOPED_TIMER(metrics_, "time/link_frame");
    const obs::trace_span span("link.frame", "link");
    ++trial_;
    frame_result result;
    if (cfg_.rician_k_db < 80.0) {
        channel_.redraw_fading(cfg_.seed * 6364136223846793005ULL + trial_);
    }

    const tag::modulated_frame frame = modulator_.modulate(payload);
    // Trailing quiet margin sized to cover the canceller's drift-tracking
    // tail window plus symbol-level slack.
    const std::size_t margin =
        4 * modulator_.samples_per_symbol() +
        static_cast<std::size_t>(std::ceil(
            2.5 * cfg_.receiver.canceller.tail_fraction *
            static_cast<double>(frame.gamma.size())));
    const std::size_t base =
        frame.gamma.size() + 2 * channel_.one_way_delay_samples() + margin;

    // Quiet lead-in: the AP keys its carrier before the tag's turnaround
    // expires, giving the canceller a tag-free window to estimate the static
    // environment from. Sized to safely cover the training fraction.
    const double training = cfg_.receiver.canceller.training_fraction +
                            cfg_.receiver.canceller.training_skip;
    const auto lead = static_cast<std::size_t>(
        std::ceil(2.0 * training * static_cast<double>(base))) +
        modulator_.samples_per_symbol();
    cvec gamma(lead, frame.gamma.front());
    gamma.insert(gamma.end(), frame.gamma.begin(), frame.gamma.end());
    const std::size_t capture = base + lead;

    const double window_s = static_cast<double>(capture) / cfg_.sample_rate_hz;
    result.start_s = clock_s_;
    result.elapsed_s = window_s;

    fault::impairment imp;
    if (faults_ != nullptr) imp = faults_->at(clock_s_, window_s);
    result.fault_active = imp.any();

    // Blockage shadows the tag path twice (AP->tag and tag->AP); a brownout
    // stops the modulation entirely, leaving the absorptive idle state.
    const double tag_scale =
        imp.tag_powered ? imp.tag_amplitude * imp.tag_amplitude : 0.0;
    if (tag_scale != 1.0) {
        for (auto& g : gamma) g *= tag_scale;
    }

    auto query = transmitter_.generate(capture);
    if (imp.carrier_amplitude != 1.0) {
        // The PA output collapses; the receive LO keeps running.
        for (auto& s : query.rf) s *= imp.carrier_amplitude;
    }
    cvec antenna = channel_.ap_received(query.rf, gamma);
    if (imp.interferer_active()) {
        // In-band CW burst, referenced to the tag's round-trip return at
        // unit |Gamma|, offset from the carrier by a fraction of the
        // symbol rate so it lands inside the receive bandwidth.
        const double amplitude = channel_.round_trip_amplitude() *
                                 std::sqrt(transmitter_.tx_power_w()) *
                                 std::pow(10.0, imp.interferer_rel_db / 20.0);
        const double step = two_pi * 0.35 * cfg_.symbol_rate_hz / cfg_.sample_rate_hz;
        for (std::size_t i = 0; i < antenna.size(); ++i) {
            const double phase = step * static_cast<double>(i);
            antenna[i] += amplitude * cf64{std::cos(phase), std::sin(phase)};
        }
    }
    if (imp.lo_offset_hz != 0.0) {
        // The synthesizer stepped but the transmit-side LO record the
        // receiver mixes against did not: the whole capture spins at the
        // offset, which self-coherent downconversion cannot remove.
        const double step = two_pi * imp.lo_offset_hz / cfg_.sample_rate_hz;
        for (std::size_t i = 0; i < antenna.size(); ++i) {
            const double phase = step * static_cast<double>(i);
            antenna[i] *= cf64{std::cos(phase), std::sin(phase)};
        }
    }
    result.rx = receiver_.receive(antenna, query.lo);
    clock_s_ += window_s;

    result.bits = payload.size() * 8;
    result.tag_energy_j = imp.tag_powered ? energy_.frame_energy_j(frame) : 0.0;
    result.airtime_s = frame.duration_s;
    result.delivered = result.rx.frame_found && result.rx.crc_ok;

    if (result.rx.frame_found && !result.rx.payload.empty()) {
        const std::size_t compare = std::min(payload.size(), result.rx.payload.size());
        for (std::size_t i = 0; i < compare; ++i) {
            std::uint8_t diff = static_cast<std::uint8_t>(payload[i] ^ result.rx.payload[i]);
            while (diff != 0) {
                result.bit_errors += diff & 1u;
                diff >>= 1;
            }
        }
        result.bit_errors += (payload.size() - compare) * 4;
    } else {
        result.bit_errors = payload.size() * 4; // lost frame: coin-flip bits
    }

    if (metrics_ != nullptr) {
        metrics_->get_counter("link/frames").add();
        if (result.delivered) metrics_->get_counter("link/frames_delivered").add();
        if (!result.rx.frame_found) metrics_->get_counter("link/frames_lost").add();
        if (result.fault_active) metrics_->get_counter("link/fault_windows").add();
        metrics_->get_counter("link/bits").add(result.bits);
        metrics_->get_counter("link/bit_errors").add(result.bit_errors);
        metrics_->get_histogram("link/suppression_db", obs::suppression_bounds_db())
            .observe(result.rx.suppression_db);
        if (result.rx.frame_found) {
            metrics_->get_histogram("link/snr_db", obs::snr_bounds_db())
                .observe(result.rx.snr_db);
        }
    }
    if (obs::tracer::active()) {
        // Canceller convergence milestone: the residual/input power the
        // self-interference canceller settled at for this capture window.
        char args[96];
        std::snprintf(args, sizeof args,
                      "{\"suppression_db\": %.2f, \"found\": %s}",
                      result.rx.suppression_db,
                      result.rx.frame_found ? "true" : "false");
        obs::trace_instant("canceller.converged", "link", args);
    }
    return result;
}

link_report link_simulator::run_trials(std::size_t frames, std::size_t payload_bytes)
{
    error_counter errors;
    link_report report;

    for (std::size_t f = 0; f < frames; ++f) {
        const auto payload =
            phy::random_bytes(payload_bytes, cfg_.seed * 1'000'003 + trial_ + f);
        const frame_result result = run_frame(payload);
        if (result.rx.frame_found) {
            errors.add_frame(payload, result.rx.payload, result.delivered);
            report.snr_samples += 1;
            report.snr_sum_db += result.rx.snr_db;
            report.evm_samples += 1;
            report.evm_sum_db += result.rx.evm_db;
        } else {
            errors.add_lost_frame(payload.size());
        }
        report.tag_energy_j += result.tag_energy_j;
        report.airtime_s += result.airtime_s;
        if (result.delivered) report.delivered_bits += result.bits;
    }

    report.frames = frames;
    report.frames_delivered = errors.frames_delivered();
    report.bits = errors.bits();
    report.bit_errors = errors.bit_errors();
    report.recompute();
    return report;
}

void link_simulator::advance_clock(double dt_s)
{
    if (dt_s < 0.0) throw std::invalid_argument("link_simulator: negative clock step");
    clock_s_ += dt_s;
}

void link_simulator::set_rate(phy::modulation scheme, phy::fec_mode fec)
{
    if (cfg_.modulator.frame.scheme == scheme && cfg_.modulator.frame.fec == fec) {
        return;
    }
    cfg_.modulator.frame.scheme = scheme;
    cfg_.modulator.frame.fec = fec;
    cfg_.receiver.frame = cfg_.modulator.frame;
    modulator_ = tag::backscatter_modulator(cfg_.modulator);
    receiver_ = ap::ap_receiver(cfg_.receiver, cfg_.seed * 104729 + 2);
}

cvec link_simulator::capture_symbols(std::span<const std::uint8_t> payload)
{
    const frame_result result = run_frame(payload);
    return result.rx.symbols;
}

} // namespace mmtag::core
