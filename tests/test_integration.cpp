// End-to-end integration tests: the full AP -> channel -> tag -> channel ->
// AP pipeline, exercised exactly the way the benches drive it.
#include <gtest/gtest.h>

#include "mmtag/core/link_budget.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/network.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::core {
namespace {

// Shared 50 MS/s preset from the library.
using core::fast_scenario;

TEST(integration, frame_delivered_at_two_meters)
{
    link_simulator sim(fast_scenario());
    const auto payload = phy::string_to_bytes("hello mmWave backscatter");
    const auto result = sim.run_frame(payload);
    ASSERT_TRUE(result.rx.frame_found);
    EXPECT_TRUE(result.rx.crc_ok);
    EXPECT_EQ(result.rx.payload, payload);
    EXPECT_EQ(result.bit_errors, 0u);
    EXPECT_GT(result.rx.snr_db, 15.0);
    EXPECT_GT(result.tag_energy_j, 0.0);
}

TEST(integration, error_free_over_many_frames_at_short_range)
{
    link_simulator sim(fast_scenario());
    const auto report = sim.run_trials(20, 32);
    EXPECT_DOUBLE_EQ(report.per, 0.0);
    EXPECT_DOUBLE_EQ(report.ber, 0.0);
    EXPECT_GT(report.goodput_bps, 1e6);
}

TEST(integration, link_dies_far_beyond_budget_range)
{
    auto cfg = fast_scenario();
    cfg.distance_m = 200.0;
    link_simulator sim(cfg);
    const auto report = sim.run_trials(5, 32);
    EXPECT_GT(report.per, 0.5);
}

TEST(integration, measured_snr_tracks_link_budget)
{
    // The analytic budget is an idealized upper bound; the full receiver
    // pays a small implementation gap (residual clutter wobble, estimator
    // losses). The gap must be bounded and consistent across distance —
    // i.e. the measured curve has the budget's shape.
    double min_gap = 1e9;
    double max_gap = -1e9;
    for (double distance : {2.0, 4.0, 8.0}) {
        auto cfg = fast_scenario();
        cfg.distance_m = distance;
        link_simulator sim(cfg);
        const link_budget budget(cfg);
        const auto report = sim.run_trials(5, 32);
        const double predicted = budget.at(distance).snr_db;
        const double gap = predicted - report.mean_snr_db;
        EXPECT_GT(gap, 0.0) << "measured SNR above the physical bound at " << distance;
        EXPECT_LT(gap, 8.0) << "implementation gap too large at " << distance << " m";
        min_gap = std::min(min_gap, gap);
        max_gap = std::max(max_gap, gap);
    }
    EXPECT_LT(max_gap - min_gap, 3.0); // same shape, constant offset
}

TEST(integration, snr_follows_inverse_fourth_power)
{
    auto near_cfg = fast_scenario();
    near_cfg.distance_m = 2.0;
    auto far_cfg = fast_scenario();
    far_cfg.distance_m = 8.0;
    link_simulator near_sim(near_cfg);
    link_simulator far_sim(far_cfg);
    const double near_snr = near_sim.run_trials(5, 32).mean_snr_db;
    const double far_snr = far_sim.run_trials(5, 32).mean_snr_db;
    // 4x distance -> 24 dB in a two-way channel.
    EXPECT_NEAR(near_snr - far_snr, 24.0, 3.0);
}

TEST(integration, van_atta_survives_rotation_flat_plate_does_not)
{
    auto retro = fast_scenario();
    retro.tag_incidence_rad = deg_to_rad(30.0);
    link_simulator retro_sim(retro);
    const auto retro_report = retro_sim.run_trials(5, 32);
    EXPECT_DOUBLE_EQ(retro_report.per, 0.0);

    auto plate = retro;
    plate.reflector = reflector_kind::flat_plate;
    link_simulator plate_sim(plate);
    const auto plate_report = plate_sim.run_trials(5, 32);
    EXPECT_GT(plate_report.per, 0.5); // specular reflector misses the AP
}

TEST(integration, cancellation_ablation)
{
    // With cancellation off, the DC residual wrecks demodulation even at
    // short range; with it on, the link is clean.
    auto cfg = fast_scenario();
    cfg.receiver.canceller.mode = ap::cancellation_mode::background_subtract;
    link_simulator on(cfg);
    EXPECT_DOUBLE_EQ(on.run_trials(5, 32).per, 0.0);

    cfg.receiver.canceller.mode = ap::cancellation_mode::off;
    cfg.seed += 1;
    link_simulator off(cfg);
    const auto off_report = off.run_trials(5, 32);
    EXPECT_GT(off_report.per, 0.5);
}

TEST(integration, higher_order_modulation_works_at_short_range)
{
    auto cfg = fast_scenario();
    cfg.modulator.frame.scheme = phy::modulation::psk8;
    cfg.modulator.frame.fec = phy::fec_mode::conv_two_thirds;
    cfg.receiver.frame = cfg.modulator.frame;
    link_simulator sim(cfg);
    const auto report = sim.run_trials(10, 48);
    EXPECT_DOUBLE_EQ(report.per, 0.0);
}

TEST(integration, uncoded_psk16_needs_more_snr_than_coded_qpsk)
{
    auto base = fast_scenario();
    base.distance_m = 7.0; // stress the link

    auto robust = base;
    robust.modulator.frame.scheme = phy::modulation::qpsk;
    robust.modulator.frame.fec = phy::fec_mode::conv_half;
    robust.receiver.frame = robust.modulator.frame;

    auto fragile = base;
    fragile.modulator.frame.scheme = phy::modulation::psk16;
    fragile.modulator.frame.fec = phy::fec_mode::uncoded;
    fragile.receiver.frame = fragile.modulator.frame;

    const auto robust_report = link_simulator(robust).run_trials(8, 32);
    const auto fragile_report = link_simulator(fragile).run_trials(8, 32);
    EXPECT_LE(robust_report.per, fragile_report.per);
    EXPECT_GT(fragile_report.ber, robust_report.ber);
}

TEST(integration, energy_accounting_plausible)
{
    link_simulator sim(fast_scenario());
    const auto report = sim.run_trials(5, 64);
    // nJ/bit scale (reconstruction anchor: ~2.4 nJ/bit at 10 Mb/s class).
    EXPECT_GT(report.tag_energy_per_bit_j, 0.1e-9);
    EXPECT_LT(report.tag_energy_per_bit_j, 50e-9);
}

TEST(network, report_structure_and_scaling)
{
    const auto cfg = fast_scenario();
    std::vector<tag_descriptor> tags;
    for (std::uint32_t i = 0; i < 12; ++i) {
        tags.push_back({i, 1.0 + 0.4 * static_cast<double>(i),
                        deg_to_rad(-20.0 + 4.0 * static_cast<double>(i))});
    }
    const network net(cfg, tags);
    const auto report = net.run(99);

    EXPECT_TRUE(report.inventory.complete());
    EXPECT_EQ(report.links.size(), 12u);
    EXPECT_GT(report.aggregate_goodput_bps, 0.0);
    EXPECT_LE(report.min_snr_db, report.max_snr_db);
    // Nearer tags see more SNR.
    EXPECT_GT(report.links.front().snr_db, report.links.back().snr_db);
    // Aggregate cannot exceed the TDMA ceiling.
    EXPECT_LE(report.aggregate_goodput_bps, report.tdma.aggregate_goodput_bps + 1.0);
}

TEST(network, close_population_all_usable)
{
    const auto cfg = fast_scenario();
    std::vector<tag_descriptor> tags;
    for (std::uint32_t i = 0; i < 5; ++i) tags.push_back({i, 2.0, 0.0});
    const auto links = network(cfg, tags).evaluate_links();
    for (const auto& link : links) {
        EXPECT_GT(link.frame_success, 0.99);
        EXPECT_GT(link.rate.efficiency(), 0.5);
    }
}

TEST(network, validation)
{
    EXPECT_THROW(network(fast_scenario(), {}), std::invalid_argument);
}

} // namespace
} // namespace mmtag::core
