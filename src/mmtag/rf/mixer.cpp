#include "mmtag/rf/mixer.hpp"

#include <stdexcept>

namespace mmtag::rf {

quadrature_mixer::quadrature_mixer(const config& cfg) : cfg_(cfg)
{
    if (cfg.conversion_loss_db < 0.0) {
        throw std::invalid_argument("quadrature_mixer: conversion loss must be >= 0 dB");
    }
    loss_gain_ = std::pow(10.0, -cfg.conversion_loss_db / 20.0);
    leakage_amplitude_ = std::pow(10.0, cfg.lo_leakage_dbc / 20.0);
    gain_alpha_ = std::pow(10.0, cfg.iq_gain_imbalance_db / 20.0);
    phase_beta_ = deg_to_rad(cfg.iq_phase_imbalance_deg);
}

cf64 quadrature_mixer::apply_iq_imbalance(cf64 x) const
{
    if (gain_alpha_ == 1.0 && phase_beta_ == 0.0) return x;
    // Standard imbalance model: y = mu x + nu conj(x).
    const cf64 mu = 0.5 * (1.0 + gain_alpha_ * std::polar(1.0, phase_beta_));
    const cf64 nu = 0.5 * (1.0 - gain_alpha_ * std::polar(1.0, phase_beta_));
    return mu * x + nu * std::conj(x);
}

cf64 quadrature_mixer::downconvert(cf64 rf, cf64 lo) const
{
    const cf64 mixed = loss_gain_ * rf * std::conj(lo);
    const cf64 leakage = leakage_amplitude_ * std::abs(lo) * cf64{1.0, 0.0};
    return apply_iq_imbalance(mixed + leakage);
}

cf64 quadrature_mixer::upconvert(cf64 baseband, cf64 lo) const
{
    const cf64 mixed = loss_gain_ * baseband * lo;
    const cf64 leakage = leakage_amplitude_ * lo;
    return apply_iq_imbalance(mixed + leakage);
}

cvec quadrature_mixer::downconvert(std::span<const cf64> rf, std::span<const cf64> lo) const
{
    if (rf.size() != lo.size()) {
        throw std::invalid_argument("quadrature_mixer: rf/lo length mismatch");
    }
    cvec out;
    out.reserve(rf.size());
    for (std::size_t i = 0; i < rf.size(); ++i) out.push_back(downconvert(rf[i], lo[i]));
    return out;
}

cvec quadrature_mixer::upconvert(std::span<const cf64> baseband, std::span<const cf64> lo) const
{
    if (baseband.size() != lo.size()) {
        throw std::invalid_argument("quadrature_mixer: baseband/lo length mismatch");
    }
    cvec out;
    out.reserve(baseband.size());
    for (std::size_t i = 0; i < baseband.size(); ++i) out.push_back(upconvert(baseband[i], lo[i]));
    return out;
}

double quadrature_mixer::image_rejection_ratio_db() const
{
    const cf64 mu = 0.5 * (1.0 + gain_alpha_ * std::polar(1.0, phase_beta_));
    const cf64 nu = 0.5 * (1.0 - gain_alpha_ * std::polar(1.0, phase_beta_));
    if (std::abs(nu) < 1e-15) return 1e9;
    return to_db(std::norm(mu) / std::norm(nu));
}

} // namespace mmtag::rf
