// Deterministic fault timeline: a seeded Poisson process of timed impairment
// events (blockage bursts, carrier dropouts, LO frequency steps, interferer
// bursts, tag energy brownouts) over a fixed horizon. The schedule is
// generated once from (config, seed) and never mutated, so any experiment
// rerun with the same seed sees bit-identical faults — the property the
// deterministic-replay tests pin down.
#pragma once

#include <cstdint>
#include <vector>

namespace mmtag::fault {

enum class fault_kind {
    blockage,        ///< human body shadow: one-way loss on the tag path
    carrier_dropout, ///< AP carrier collapses (PA glitch / regulatory duty)
    lo_step,         ///< synthesizer frequency step; persists until re-lock
    interferer,      ///< in-band CW burst at the AP antenna
    brownout,        ///< tag harvester undervoltage: modulation stops
};

[[nodiscard]] const char* fault_kind_name(fault_kind kind);

struct fault_event {
    fault_kind kind = fault_kind::blockage;
    double start_s = 0.0;
    double duration_s = 0.0;
    /// Kind-dependent severity: blockage one-way depth [dB], dropout carrier
    /// attenuation [dB], lo_step offset [Hz], interferer power relative to
    /// the tag's backscatter return [dB]. Unused for brownout.
    double magnitude = 0.0;

    [[nodiscard]] double end_s() const { return start_s + duration_s; }
    [[nodiscard]] bool overlaps(double t0, double t1) const
    {
        return start_s < t1 && end_s() > t0;
    }
};

class fault_schedule {
public:
    struct config {
        double horizon_s = 0.1;
        /// Total Poisson onset rate across all enabled kinds [events/s].
        double event_rate_hz = 100.0;
        /// Relative mix of kinds (weight 0 disables a kind).
        double blockage_weight = 4.0;
        double dropout_weight = 1.0;
        double lo_step_weight = 2.0;
        double interferer_weight = 2.0;
        double brownout_weight = 1.0;
        /// Mean event duration [s] (exponential, clamped below).
        double mean_duration_s = 2e-3;
        double min_duration_s = 0.2e-3;
        double max_duration_s = 10e-3;
        /// Magnitude draw ranges (uniform).
        double blockage_depth_db_min = 8.0;
        double blockage_depth_db_max = 25.0;
        double dropout_depth_db = 60.0;
        double lo_step_hz_min = 50e3;
        double lo_step_hz_max = 400e3;
        double interferer_db_min = 10.0;
        double interferer_db_max = 25.0;
    };

    fault_schedule(const config& cfg, std::uint64_t seed);

    /// Builds a schedule from an explicit event list (the path the multi-tag
    /// chaos plans use), after running it through normalize(). `horizon_s`
    /// bounds the timeline; events starting at or beyond it throw.
    fault_schedule(double horizon_s, std::vector<fault_event> events);

    /// Deterministic event-list cleanup, applied by the explicit constructor:
    ///   * non-finite or negative start/duration/magnitude fields throw;
    ///   * duration-bounded events (everything but lo_step) with zero
    ///     duration are dropped — a zero-length window can never overlap a
    ///     frame. lo_step events are kept regardless: the synthesizer stays
    ///     detuned until re-lock, so their duration is irrelevant;
    ///   * events sort by (start, kind, duration, magnitude);
    ///   * overlapping or touching duration-bounded events of the same kind
    ///     merge into one event spanning their union with the deepest
    ///     magnitude (matching the injector's deepest-event-wins
    ///     aggregation). lo_step events never merge — which step is latest
    ///     decides the offset, so order is semantic.
    [[nodiscard]] static std::vector<fault_event> normalize(std::vector<fault_event> events);

    [[nodiscard]] const config& parameters() const { return cfg_; }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }
    [[nodiscard]] const std::vector<fault_event>& events() const { return events_; }

    /// Events overlapping the window [t0, t1).
    [[nodiscard]] std::vector<fault_event> active(double t0, double t1) const;

    /// Number of scheduled events of one kind.
    [[nodiscard]] std::size_t count(fault_kind kind) const;

private:
    config cfg_;
    std::uint64_t seed_;
    std::vector<fault_event> events_; ///< sorted by start_s
};

} // namespace mmtag::fault
