// Numerically controlled oscillator and complex frequency shifting.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Phase-accumulating complex oscillator. Frequency is given as a normalized
/// value in cycles/sample (may be negative); phase stays wrapped so long runs
/// never lose precision.
class nco {
public:
    explicit nco(double frequency_norm = 0.0, double initial_phase = 0.0);

    [[nodiscard]] double frequency() const { return frequency_; }
    void set_frequency(double frequency_norm);

    /// Adds `delta` radians to the current phase (PLL correction hook).
    void adjust_phase(double delta);

    [[nodiscard]] double phase() const { return phase_; }

    /// Returns exp(j phase) and advances by one sample.
    [[nodiscard]] cf64 step();

    /// Generates `count` samples.
    [[nodiscard]] cvec generate(std::size_t count);

    /// Multiplies `input` by the oscillator (frequency shift), advancing state.
    [[nodiscard]] cvec mix(std::span<const cf64> input);

private:
    double frequency_;
    double phase_;
};

/// One-shot frequency shift of a buffer by `frequency_norm` cycles/sample.
[[nodiscard]] cvec frequency_shift(std::span<const cf64> input, double frequency_norm,
                                   double initial_phase = 0.0);

} // namespace mmtag::dsp
