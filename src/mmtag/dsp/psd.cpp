#include "mmtag/dsp/psd.hpp"

#include <algorithm>
#include <stdexcept>

#include "mmtag/dsp/fft.hpp"

namespace mmtag::dsp {

double psd_estimate::band_power(double f_low_hz, double f_high_hz) const
{
    if (!(f_low_hz <= f_high_hz)) throw std::invalid_argument("band_power: inverted band");
    double acc = 0.0;
    for (std::size_t i = 0; i < power.size(); ++i) {
        if (frequency_hz[i] >= f_low_hz && frequency_hz[i] <= f_high_hz) acc += power[i];
    }
    return acc;
}

double psd_estimate::total_power() const
{
    double acc = 0.0;
    for (double p : power) acc += p;
    return acc;
}

double psd_estimate::occupied_bandwidth(double fraction, double center_hz) const
{
    if (!(fraction > 0.0 && fraction <= 1.0)) {
        throw std::invalid_argument("occupied_bandwidth: fraction in (0, 1]");
    }
    const double target = fraction * total_power();
    const double bin_width = sample_rate_hz / static_cast<double>(power.size());
    // Grow a symmetric band around the center until it holds the target.
    for (double half = bin_width; half <= sample_rate_hz; half += bin_width) {
        if (band_power(center_hz - half, center_hz + half) >= target) return 2.0 * half;
    }
    return sample_rate_hz;
}

double psd_estimate::peak_frequency() const
{
    if (power.empty()) throw std::logic_error("psd_estimate: empty");
    const auto it = std::max_element(power.begin(), power.end());
    return frequency_hz[static_cast<std::size_t>(it - power.begin())];
}

psd_estimate welch_psd(std::span<const cf64> samples, const welch_config& cfg)
{
    if (!is_power_of_two(cfg.segment_length)) {
        throw std::invalid_argument("welch_psd: segment length must be a power of two");
    }
    if (!(cfg.overlap >= 0.0 && cfg.overlap < 1.0)) {
        throw std::invalid_argument("welch_psd: overlap must be in [0, 1)");
    }
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("welch_psd: fs <= 0");
    if (samples.size() < cfg.segment_length) {
        throw std::invalid_argument("welch_psd: record shorter than one segment");
    }

    const std::size_t n = cfg.segment_length;
    const auto hop = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(n) * (1.0 - cfg.overlap)));
    const rvec window = make_window(cfg.window, n);
    double window_power = 0.0;
    for (double w : window) window_power += w * w;

    const fft_plan plan(n);
    rvec accumulated(n, 0.0);
    std::size_t segments = 0;
    cvec buffer(n);
    for (std::size_t start = 0; start + n <= samples.size(); start += hop) {
        for (std::size_t i = 0; i < n; ++i) buffer[i] = samples[start + i] * window[i];
        plan.forward(buffer);
        for (std::size_t k = 0; k < n; ++k) accumulated[k] += std::norm(buffer[k]);
        ++segments;
    }
    const double scale = 1.0 / (static_cast<double>(segments) * window_power);
    for (auto& p : accumulated) p *= scale;

    psd_estimate out;
    out.sample_rate_hz = cfg.sample_rate_hz;
    out.power = fft_shift(accumulated);
    out.frequency_hz.resize(n);
    const double bin = cfg.sample_rate_hz / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
        out.frequency_hz[k] =
            (static_cast<double>(k) - static_cast<double>(n / 2)) * bin;
    }
    return out;
}

} // namespace mmtag::dsp
