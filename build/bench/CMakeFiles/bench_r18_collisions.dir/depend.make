# Empty dependencies file for bench_r18_collisions.
# This may be replaced when dependencies are built.
