// Addressable tag: the complete tag-side protocol party. Combines the
// envelope detector (command reception), the PIE command decoder, a small
// protocol state machine (idle / selected / muted), and the backscatter
// modulator. One addressable_tag is "the firmware" of one physical tag.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/ap/query_encoder.hpp"
#include "mmtag/rf/envelope_detector.hpp"
#include "mmtag/tag/command_decoder.hpp"
#include "mmtag/tag/modulator.hpp"

namespace mmtag::tag {

class addressable_tag {
public:
    struct config {
        std::uint16_t tag_id = 1;
        backscatter_modulator::config modulator{};
        rf::envelope_detector::config detector{};
        command_decoder::config decoder{};
        /// Decode-to-respond turnaround after a READ addressed to us [s].
        double turnaround_s = 2e-6;
        std::uint64_t seed = 1;
    };

    explicit addressable_tag(const config& cfg);

    [[nodiscard]] std::uint16_t tag_id() const { return cfg_.tag_id; }
    [[nodiscard]] bool selected() const { return selected_; }
    [[nodiscard]] bool muted() const { return muted_; }

    struct reaction {
        bool command_heard = false;
        ap::tag_command command{};
        bool responded = false;
        std::size_t respond_sample = 0;
        cvec gamma; ///< full-window reflection waveform (absorptive otherwise)
    };

    /// Runs the firmware over one incident RF window. The tag decodes any
    /// command present, updates its protocol state, and — when READ
    /// addresses it (directly or via a prior SELECT) — backscatters
    /// `payload` after the turnaround.
    [[nodiscard]] reaction process(std::span<const cf64> incident,
                                   std::span<const std::uint8_t> payload);

    /// Protocol state transitions, exposed for unit testing.
    void apply_command(const ap::tag_command& cmd);

private:
    [[nodiscard]] bool addressed_by(const ap::tag_command& cmd) const;

    config cfg_;
    backscatter_modulator modulator_;
    rf::envelope_detector detector_;
    command_decoder decoder_;
    bool selected_ = false;
    bool muted_ = false;
};

} // namespace mmtag::tag
