#include "mmtag/cli/commands.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <vector>

#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/core/link_budget.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/metrics.hpp"
#include "mmtag/core/network.hpp"
#include "mmtag/core/supervised_link.hpp"
#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/mac/slotted_aloha.hpp"
#include "mmtag/net/soak_harness.hpp"
#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/obs/trace.hpp"
#include "mmtag/runtime/json_io.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/scale/des_engine.hpp"
#include "mmtag/runtime/sweep_runner.hpp"
#include "mmtag/runtime/thread_pool.hpp"

namespace mmtag::cli {

namespace {

/// Bench-grade scenario (10 samples/symbol) so CLI runs finish in seconds.
core::system_config cli_scenario()
{
    return core::fast_scenario();
}

void reject_leftovers(const option_set& options)
{
    const auto leftover = options.unconsumed();
    if (!leftover.empty()) {
        throw std::invalid_argument("unknown option --" + leftover.front());
    }
}

/// --metrics[=FILE] / --trace=FILE shared by the Monte-Carlo commands.
struct obs_options {
    bool metrics = false;
    std::string metrics_path; ///< empty: embed/print only, no standalone file
    std::string trace_path;   ///< empty: tracing off
};

obs_options parse_obs_options(const option_set& options)
{
    obs_options out;
    if (options.has("metrics")) {
        out.metrics = true;
        const std::string value = options.get_string("metrics", "");
        // A bare `--metrics` parses as the flag value "true": collect and
        // embed/print, but write no standalone file.
        if (value != "true") out.metrics_path = value;
    }
    out.trace_path = options.get_string("trace", "");
    return out;
}

/// Starts a trace session scoped to the command when a path was given;
/// stops and writes on destruction.
class trace_session {
public:
    explicit trace_session(std::string path) : path_(std::move(path))
    {
        if (!path_.empty()) obs::tracer::start();
    }
    ~trace_session()
    {
        if (path_.empty()) return;
        obs::tracer::stop();
        if (obs::tracer::write(path_)) {
            std::printf("wrote %s\n", path_.c_str());
        } else {
            std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
        }
    }

    trace_session(const trace_session&) = delete;
    trace_session& operator=(const trace_session&) = delete;

private:
    std::string path_;
};

void write_text_file(const std::string& path, const std::string& text)
{
    if (!runtime::write_text_file(path, text)) return;
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int run_link(const option_set& options)
{
    const std::string preset = options.get_string("preset", "default");
    core::system_config cfg;
    if (preset == "default") cfg = cli_scenario();
    else if (preset == "warehouse") cfg = core::warehouse_scenario();
    else if (preset == "wearable") cfg = core::wearable_scenario();
    else throw std::invalid_argument("--preset must be default, warehouse, or wearable");
    cfg.distance_m = options.get_double("distance", cfg.distance_m);
    cfg.tag_incidence_rad = deg_to_rad(options.get_double("angle", 0.0));
    if (options.has("scheme")) {
        cfg.modulator.frame.scheme = parse_modulation(options.get_string("scheme", ""));
    }
    if (options.has("fec")) {
        cfg.modulator.frame.fec = parse_fec(options.get_string("fec", ""));
    }
    cfg.receiver.frame = cfg.modulator.frame;
    cfg.seed = options.get_uint("seed", 1);
    cfg.rician_k_db = options.get_double("k-factor", 100.0);
    const std::string reflector = options.get_string("reflector", "van-atta");
    if (reflector == "plate") cfg.reflector = core::reflector_kind::flat_plate;
    else if (reflector != "van-atta") {
        throw std::invalid_argument("--reflector must be van-atta or plate");
    }
    const auto frames = static_cast<std::size_t>(options.get_uint("frames", 10));
    const auto payload = static_cast<std::size_t>(options.get_uint("payload", 32));
    reject_leftovers(options);

    core::link_simulator sim(cfg);
    const auto report = sim.run_trials(frames, payload);
    std::printf("link: %.1f m, %.0f deg, %s/%s, %zu frames x %zu B\n", cfg.distance_m,
                rad_to_deg(cfg.tag_incidence_rad),
                phy::modulation_name(cfg.modulator.frame.scheme).c_str(),
                phy::fec_mode_name(cfg.modulator.frame.fec), frames, payload);
    std::printf("  snr      %.1f dB\n", report.mean_snr_db);
    std::printf("  evm      %.1f dB\n", report.mean_evm_db);
    std::printf("  ber      %s\n",
                core::format_ber(report.ber, frames * payload * 8).c_str());
    std::printf("  per      %.3f\n", report.per);
    std::printf("  goodput  %.3f Mb/s\n", report.goodput_bps / 1e6);
    std::printf("  energy   %.2f nJ/bit\n", report.tag_energy_per_bit_j * 1e9);
    return report.per < 1.0 ? 0 : 2;
}

int run_budget(const option_set& options)
{
    auto cfg = cli_scenario();
    cfg.transmitter.tx_power_dbm = options.get_double("tx-power", 27.0);
    const auto elements = static_cast<std::size_t>(options.get_uint("elements", 8));
    cfg.van_atta.element_count = elements;
    const double start = options.get_double("start", 0.5);
    const double stop = options.get_double("stop", 10.0);
    const auto points = static_cast<std::size_t>(options.get_uint("points", 8));
    reject_leftovers(options);

    const core::link_budget budget(cfg);
    std::printf("%-10s %-14s %-14s %-10s\n", "range_m", "at_tag_dBm", "at_AP_dBm",
                "SNR_dB");
    for (const auto& entry : budget.sweep(start, stop, points)) {
        std::printf("%-10.2f %-14.1f %-14.1f %-10.1f\n", entry.distance_m,
                    entry.incident_at_tag_dbm, entry.received_at_ap_dbm, entry.snr_db);
    }
    for (const auto& option : ap::rate_table()) {
        std::printf("max range %-7s %-9s: %.1f m\n",
                    phy::modulation_name(option.scheme).c_str(),
                    phy::fec_mode_name(option.fec),
                    budget.max_range_m(option.required_snr_db + 2.0));
    }
    return 0;
}

int run_network(const option_set& options)
{
    const auto tag_count = static_cast<std::size_t>(options.get_uint("tags", 20));
    const double max_range = options.get_double("max-range", 8.0);
    const auto payload = static_cast<std::size_t>(options.get_uint("payload", 256));
    const std::uint64_t seed = options.get_uint("seed", 1);
    reject_leftovers(options);
    if (tag_count == 0) throw std::invalid_argument("--tags must be >= 1");

    const auto tags = core::uniform_population(tag_count, 1.0, max_range, seed);
    const core::network net(cli_scenario(), tags);
    const auto report = net.run(seed, payload);

    std::printf("network: %zu tags within %.1f m\n", tag_count, max_range);
    std::printf("  inventory  %zu/%zu in %zu slots (%.0f%% efficiency)\n",
                report.inventory.tags_identified, report.inventory.tags_total,
                report.inventory.slots_used, 100.0 * report.inventory.efficiency());
    std::printf("  snr range  %.1f .. %.1f dB\n", report.min_snr_db, report.max_snr_db);
    std::printf("  tdma       %.3f ms cycle, %.2f Mb/s aggregate\n",
                report.tdma.cycle_time_s * 1e3, report.aggregate_goodput_bps / 1e6);
    return report.inventory.complete() ? 0 : 2;
}

int run_inventory(const option_set& options)
{
    const auto tag_count = static_cast<std::size_t>(options.get_uint("tags", 50));
    const auto seeds = static_cast<std::size_t>(options.get_uint("seeds", 10));
    const double success = options.get_double("success", 0.98);
    reject_leftovers(options);
    if (seeds == 0) throw std::invalid_argument("--seeds must be >= 1");

    mac::aloha_config cfg;
    cfg.singleton_success = success;
    const mac::aloha_inventory inventory(cfg);
    double slots = 0.0;
    double efficiency = 0.0;
    std::size_t incomplete = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
        const auto stats = inventory.run(tag_count, 100 + s);
        slots += static_cast<double>(stats.slots_used);
        efficiency += stats.efficiency();
        if (!stats.complete()) ++incomplete;
    }
    std::printf("inventory: %zu tags, %zu seeds, PHY success %.2f\n", tag_count, seeds,
                success);
    std::printf("  mean slots       %.1f\n", slots / static_cast<double>(seeds));
    std::printf("  mean efficiency  %.3f (1/e ideal %.3f)\n",
                efficiency / static_cast<double>(seeds),
                mac::aloha_inventory::theoretical_peak_efficiency(tag_count));
    std::printf("  incomplete runs  %zu\n", incomplete);
    return incomplete == 0 ? 0 : 2;
}

int run_faults(const option_set& options)
{
    const double fault_rate = options.get_double("fault-rate", 150.0);
    const double mean_duration_ms = options.get_double("mean-duration", 2.0);
    const auto frames = static_cast<std::size_t>(options.get_uint("frames", 300));
    const auto payload = static_cast<std::size_t>(options.get_uint("payload", 24));
    const double distance = options.get_double("distance", 4.0);
    const std::uint64_t seed = options.get_uint("seed", 11);
    const std::uint64_t fault_seed = options.get_uint("fault-seed", 42);
    const auto trials = static_cast<std::size_t>(options.get_uint("trials", 1));
    const auto jobs = static_cast<std::size_t>(options.get_uint("jobs", 1));
    const obs_options obs_opts = parse_obs_options(options);
    reject_leftovers(options);
    if (fault_rate < 0.0) throw std::invalid_argument("--fault-rate must be >= 0");
    if (mean_duration_ms <= 0.0) {
        throw std::invalid_argument("--mean-duration must be > 0");
    }
    if (frames == 0) throw std::invalid_argument("--frames must be >= 1");
    if (trials == 0) throw std::invalid_argument("--trials must be >= 1");

    auto cfg = cli_scenario();
    cfg.distance_m = distance;
    cfg.seed = seed;

    fault::fault_schedule::config sched_cfg;
    sched_cfg.horizon_s = 0.12;
    sched_cfg.event_rate_hz = fault_rate;
    sched_cfg.mean_duration_s = mean_duration_ms * 1e-3;
    const fault::fault_schedule schedule(sched_cfg, fault_seed);

    std::printf("faults: %.0f events/s, mean %.1f ms, %zu frames x %zu B, "
                "fault seed %llu, %zu trial%s\n",
                fault_rate, mean_duration_ms, frames, payload,
                static_cast<unsigned long long>(fault_seed), trials,
                trials == 1 ? "" : "s");
    for (const auto kind :
         {fault::fault_kind::blockage, fault::fault_kind::carrier_dropout,
          fault::fault_kind::lo_step, fault::fault_kind::interferer,
          fault::fault_kind::brownout}) {
        std::printf("  %-16s %zu scheduled\n", fault::fault_kind_name(kind),
                    schedule.count(kind));
    }

    // Task grid on the runtime pool: (trial, arm) pairs, each with its own
    // simulator and injector. Trial t perturbs the link with fault seed
    // fault_seed + t (trial 0 reproduces the single-trial output exactly),
    // and the per-arm reduction folds trials in order — bit-identical for
    // any --jobs value.
    const ap::supervisor_config sup_cfg{};
    std::vector<ap::supervised_report> sup_trials(trials);
    std::vector<ap::supervised_report> base_trials(trials);
    // One registry per task, merged in task order after the barrier, so the
    // observability aggregates are --jobs-invariant like everything else.
    std::vector<obs::metrics_registry> task_metrics(obs_opts.metrics ? 2 * trials : 0);
    const trace_session trace(obs_opts.trace_path);
    const auto start = std::chrono::steady_clock::now();
    runtime::thread_pool pool(jobs);
    pool.parallel_for(2 * trials, [&](std::size_t task) {
        const std::size_t trial = task / 2;
        const bool supervised = task % 2 == 0;
        const fault::fault_schedule trial_schedule(sched_cfg, fault_seed + trial);
        core::link_simulator link(cfg);
        fault::fault_injector faults{trial_schedule};
        fault::fault_injector* injector = fault_rate > 0.0 ? &faults : nullptr;
        obs::metrics_registry* registry =
            obs_opts.metrics ? &task_metrics[task] : nullptr;
        if (registry != nullptr) {
            link.attach_metrics(registry);
            if (injector != nullptr) injector->attach_metrics(registry);
        }
        if (supervised) {
            ap::supervisor_config task_cfg = sup_cfg;
            task_cfg.metrics = registry;
            sup_trials[trial] =
                core::run_supervised_link(link, injector, task_cfg, frames, payload);
        } else {
            base_trials[trial] =
                core::run_baseline_link(link, injector, 8, frames, payload);
        }
    });
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    ap::supervised_report sup = sup_trials.front();
    ap::supervised_report base = base_trials.front();
    for (std::size_t t = 1; t < trials; ++t) {
        sup.merge(sup_trials[t]);
        base.merge(base_trials[t]);
    }

    std::printf("  %-14s %10s %10s\n", "", "supervised", "plain-arq");
    std::printf("  %-14s %10.3f %10.3f\n", "goodput Mb/s", sup.goodput_bps / 1e6,
                base.goodput_bps / 1e6);
    std::printf("  %-14s %10.3f %10.3f\n", "delivery", sup.delivery_ratio(),
                base.delivery_ratio());
    std::printf("  %-14s %10.2f %10.2f\n", "elapsed ms", sup.elapsed_s * 1e3,
                base.elapsed_s * 1e3);
    std::printf("  supervisor: %zu outages, %zu recoveries, %zu reacquisitions, "
                "%zu probes\n",
                sup.recovery.outages, sup.recovery.recoveries,
                sup.recovery.reacquisitions, sup.recovery.probes);
    std::printf("  supervisor: detect %.2f ms mean / %.2f ms max, recover %.2f ms "
                "mean / %.2f ms max\n",
                sup.recovery.mean_detect_s() * 1e3, sup.recovery.detect_max_s * 1e3,
                sup.recovery.mean_recover_s() * 1e3, sup.recovery.recover_max_s * 1e3);
    std::printf("  runtime: %zu tasks in %.2f s wall (%zu jobs)\n", 2 * trials,
                wall_s, pool.jobs());

    if (obs_opts.metrics) {
        obs::metrics_registry merged;
        for (const auto& registry : task_metrics) merged.merge(registry);
        const std::string snapshot =
            merged.to_json_string(obs::metric_view::deterministic, 2);
        if (obs_opts.metrics_path.empty()) {
            std::printf("metrics:\n%s\n", snapshot.c_str());
        } else {
            write_text_file(obs_opts.metrics_path, snapshot);
        }
    }
    // Exit 3: the supervisor saw outages but never completed a recovery —
    // the resilience machinery itself failed, which is worse than merely
    // losing the goodput comparison (exit 2).
    if (sup.recovery.outages > 0 && sup.recovery.recoveries == 0) return 3;
    return sup.goodput_bps >= base.goodput_bps ? 0 : 2;
}

int run_soak(const option_set& options)
{
    net::soak_config cfg;
    cfg.tag_count = static_cast<std::size_t>(options.get_uint("tags", 6));
    cfg.faulted_count = static_cast<std::size_t>(options.get_uint("faulted", 2));
    cfg.rounds = static_cast<std::size_t>(options.get_uint("rounds", 36));
    cfg.payload_bytes = static_cast<std::size_t>(options.get_uint("payload", 16));
    cfg.trials = static_cast<std::size_t>(options.get_uint("trials", 2));
    cfg.seed = options.get_uint("seed", 1);
    cfg.fault_seed = options.get_uint("fault-seed", 42);
    cfg.min_range_m = options.get_double("min-range", cfg.min_range_m);
    cfg.max_range_m = options.get_double("max-range", cfg.max_range_m);
    const auto jobs = static_cast<std::size_t>(options.get_uint("jobs", 0));
    const std::string json_path = options.get_string("json", "");
    const obs_options obs_opts = parse_obs_options(options);
    reject_leftovers(options);

    std::printf("soak: %zu tags (%zu faulted), %zu rounds x %zu trials, "
                "seed %llu, fault seed %llu\n",
                cfg.tag_count, cfg.faulted_count, cfg.rounds, cfg.trials,
                static_cast<unsigned long long>(cfg.seed),
                static_cast<unsigned long long>(cfg.fault_seed));

    obs::metrics_registry metrics;
    const trace_session trace(obs_opts.trace_path);
    const auto start = std::chrono::steady_clock::now();
    runtime::thread_pool pool(jobs);
    const net::soak_report report =
        net::run_soak(cfg, pool, obs_opts.metrics ? &metrics : nullptr);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    std::printf("  %-10s %12s %12s\n", "tag", "faulted", "reference");
    for (std::size_t i = 0; i < report.delivered_per_tag.size(); ++i) {
        std::printf("  %-10zu %12llu %12llu%s\n", i,
                    static_cast<unsigned long long>(report.delivered_per_tag[i]),
                    static_cast<unsigned long long>(report.reference_per_tag[i]),
                    i < report.faulted_count ? "  (faulted)" : "");
    }
    std::printf("  sessions: %zu transitions, %zu readmissions, "
                "max readmit latency %zu rounds\n",
                report.transitions, report.readmissions, report.max_readmit_rounds);
    if (report.healthy_share_min_observed >= 0.0) {
        std::printf("  healthy-tag delivery share: %.3f (bound %.3f)\n",
                    report.healthy_share_min_observed, cfg.healthy_share_min);
    }
    for (const auto& inv : report.invariants) {
        std::printf("  invariant %-22s %s%s%s\n", inv.name.c_str(),
                    inv.passed ? "pass" : "FAIL", inv.passed ? "" : ": ",
                    inv.detail.c_str());
    }
    std::printf("  runtime: %zu tasks in %.2f s wall (%zu jobs)\n", 2 * cfg.trials,
                wall_s, pool.jobs());

    if (!json_path.empty()) {
        write_text_file(json_path, report.to_json().dump(2));
    }
    if (obs_opts.metrics) {
        const std::string snapshot =
            metrics.to_json_string(obs::metric_view::deterministic, 2);
        if (obs_opts.metrics_path.empty()) {
            std::printf("metrics:\n%s\n", snapshot.c_str());
        } else {
            write_text_file(obs_opts.metrics_path, snapshot);
        }
    }
    return report.all_passed() ? 0 : 3;
}

int run_scale(const option_set& options)
{
    scale::scale_config cfg;
    cfg.topology.tag_count = static_cast<std::size_t>(options.get_uint("tags", 1000));
    cfg.topology.ap_count = static_cast<std::size_t>(options.get_uint("aps", 4));
    cfg.topology.layout = scale::parse_layout(options.get_string("layout", "grid"));
    cfg.topology.floor_m = options.get_double("floor", cfg.topology.floor_m);
    cfg.frames = static_cast<std::size_t>(options.get_uint("frames", 50));
    cfg.payload_bytes = static_cast<std::size_t>(options.get_uint("payload", 16));
    cfg.faulted = static_cast<std::size_t>(
        options.get_uint("faulted", cfg.topology.tag_count / 10));
    cfg.seed = options.get_uint("seed", 1);
    cfg.fault_seed = options.get_uint("fault-seed", 42);
    cfg.trials = static_cast<std::size_t>(options.get_uint("trials", 1));
    cfg.scenario = cli_scenario();
    const auto jobs = static_cast<std::size_t>(options.get_uint("jobs", 0));
    const std::string json_path = options.get_string("json", "");
    const obs_options obs_opts = parse_obs_options(options);
    reject_leftovers(options);

    std::printf("scale: %zu tags, %zu APs (%s layout), %zu rounds x %zu trials, "
                "seed %llu, fault seed %llu (%zu tags faulted)\n",
                cfg.topology.tag_count, cfg.topology.ap_count,
                scale::layout_name(cfg.topology.layout), cfg.frames, cfg.trials,
                static_cast<unsigned long long>(cfg.seed),
                static_cast<unsigned long long>(cfg.fault_seed), cfg.faulted);

    obs::metrics_registry metrics;
    const trace_session trace(obs_opts.trace_path);
    const auto start = std::chrono::steady_clock::now();
    const scale::scale_result result =
        scale::run_scale(cfg, jobs, obs_opts.metrics ? &metrics : nullptr);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    std::printf("  phy table: %s (%s)\n", result.phy_table_path.c_str(),
                result.cache_hit ? "cache hit" : "regenerated");
    std::printf("  %llu events, %llu data slots, %llu probe slots over %.3f s "
                "simulated\n",
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(result.data_slots),
                static_cast<unsigned long long>(result.probe_slots),
                result.sim_time_s);
    std::printf("  delivered %llu frames (%.0f bps aggregate goodput, fairness "
                "%.3f)\n",
                static_cast<unsigned long long>(result.delivered),
                result.goodput_bps(), result.fairness_index());
    std::printf("  sessions: %llu transitions, %llu readmissions, readmit "
                "latency mean %.1f / max %llu rounds\n",
                static_cast<unsigned long long>(result.transitions),
                static_cast<unsigned long long>(result.readmissions),
                result.readmit_latency_mean_rounds,
                static_cast<unsigned long long>(result.readmit_latency_max_rounds));
    std::printf("  runtime: %zu trials in %.2f s wall (%zu jobs)\n", cfg.trials,
                wall_s, result.jobs);

    if (!json_path.empty()) {
        write_text_file(json_path, result.to_json().dump(2));
    }
    if (obs_opts.metrics) {
        const std::string snapshot =
            metrics.to_json_string(obs::metric_view::deterministic, 2);
        if (obs_opts.metrics_path.empty()) {
            std::printf("metrics:\n%s\n", snapshot.c_str());
        } else {
            write_text_file(obs_opts.metrics_path, snapshot);
        }
    }
    return 0;
}

namespace {

/// Sweep aggregate pairing the link report with the trial's observability
/// registry, so metrics ride the same pre-allocated-slot + ordered-fold path
/// as the report itself (and stay --jobs-invariant for free).
struct observed_report {
    core::link_report report;
    obs::metrics_registry metrics;

    void merge(const observed_report& other)
    {
        report.merge(other.report);
        metrics.merge(other.metrics);
    }
};

} // namespace

int run_sweep(const option_set& options)
{
    const double start_m = options.get_double("start", 1.0);
    const double stop_m = options.get_double("stop", 6.0);
    const auto points = static_cast<std::size_t>(options.get_uint("points", 6));
    const auto trials = static_cast<std::size_t>(options.get_uint("trials", 4));
    const auto frames = static_cast<std::size_t>(options.get_uint("frames", 6));
    const auto payload = static_cast<std::size_t>(options.get_uint("payload", 32));
    const std::uint64_t seed = options.get_uint("seed", 1);
    const auto jobs = static_cast<std::size_t>(options.get_uint("jobs", 0));
    const std::string json_path = options.get_string("json", "");
    const obs_options obs_opts = parse_obs_options(options);

    auto cfg = cli_scenario();
    if (options.has("scheme")) {
        cfg.modulator.frame.scheme = parse_modulation(options.get_string("scheme", ""));
    }
    if (options.has("fec")) {
        cfg.modulator.frame.fec = parse_fec(options.get_string("fec", ""));
    }
    cfg.receiver.frame = cfg.modulator.frame;
    reject_leftovers(options);
    if (points == 0) throw std::invalid_argument("--points must be >= 1");
    if (trials == 0) throw std::invalid_argument("--trials must be >= 1");
    if (frames == 0) throw std::invalid_argument("--frames must be >= 1");
    if (stop_m < start_m) throw std::invalid_argument("--stop must be >= --start");

    const auto distance_at = [&](std::size_t point) {
        if (points == 1) return start_m;
        return start_m + (stop_m - start_m) * static_cast<double>(point) /
                             static_cast<double>(points - 1);
    };

    std::printf("sweep: %.1f..%.1f m over %zu points, %zu trials x %zu frames x "
                "%zu B (%s/%s)\n",
                start_m, stop_m, points, trials, frames, payload,
                phy::modulation_name(cfg.modulator.frame.scheme).c_str(),
                phy::fec_mode_name(cfg.modulator.frame.fec));

    runtime::sweep_options sweep;
    sweep.jobs = jobs;
    sweep.base_seed = seed;
    sweep.trials_per_point = trials;
    sweep.progress = runtime::stderr_progress();
    const bool want_metrics = obs_opts.metrics;
    const trace_session trace(obs_opts.trace_path);
    const auto out = runtime::run_sweep<observed_report>(
        sweep, points, [&](std::size_t point, std::size_t, std::uint64_t trial_seed) {
            auto trial_cfg = cfg;
            trial_cfg.distance_m = distance_at(point);
            trial_cfg.seed = trial_seed;
            core::link_simulator sim(trial_cfg);
            observed_report result;
            if (want_metrics) sim.attach_metrics(&result.metrics);
            result.report = sim.run_trials(frames, payload);
            return result;
        });

    std::printf("%-10s %-10s %-12s %-10s %-8s %-12s\n", "range_m", "snr_dB", "ber",
                "ber_ci95", "per", "goodput_Mbps");
    runtime::result_writer results("SWEEP", "BER/goodput vs distance (CLI sweep)",
                                   {"distance_m"}, seed);
    obs::metrics_registry sweep_metrics;
    for (std::size_t point = 0; point < points; ++point) {
        const auto& report = out.points[point].aggregate.report;
        if (want_metrics) sweep_metrics.merge(out.points[point].aggregate.metrics);
        std::printf("%-10.2f %-10.1f %-12.2e %-10.2e %-8.3f %-12.3f\n",
                    distance_at(point), report.mean_snr_db, report.ber,
                    report.ber_confidence(), report.per, report.goodput_bps / 1e6);
        auto axis = runtime::json_value::object();
        axis.set("distance_m", runtime::json_value::number(distance_at(point)));
        results.add_point(std::move(axis), trials,
                          runtime::result_writer::metrics(report));
    }
    if (want_metrics) {
        // Deterministic view into the result document (schema /2); the
        // wall-clock timer histograms go to the run section instead.
        results.set_metrics(sweep_metrics.to_json(obs::metric_view::deterministic));
        results.set_run_profile(sweep_metrics.to_json(obs::metric_view::timing));
        if (!obs_opts.metrics_path.empty()) {
            write_text_file(
                obs_opts.metrics_path,
                sweep_metrics.to_json_string(obs::metric_view::deterministic, 2));
        }
    }

    std::printf("%s\n",
                runtime::summary_line(points, out.trials, out.wall_s, out.jobs).c_str());
    if (!json_path.empty()) {
        const auto written =
            results.write(json_path, out.wall_s, out.jobs, out.trials_per_s());
        if (!written.empty()) std::printf("wrote %s\n", written.c_str());
    }
    return 0;
}

const char* usage()
{
    return "usage: mmtag_sim <command> [--key value ...]\n"
           "\n"
           "commands:\n"
           "  link       end-to-end single-link simulation\n"
           "             --distance M --angle DEG --scheme bpsk|qpsk|8psk|16psk\n"
           "             --fec none|1/2|2/3|3/4 --frames N --payload BYTES\n"
           "             --reflector van-atta|plate --k-factor DB --seed S\n"
           "  budget     analytic link budget sweep\n"
           "             --start M --stop M --points N --tx-power DBM --elements N\n"
           "  network    inventory + TDMA over a random population\n"
           "             --tags N --max-range M --payload BYTES --seed S\n"
           "  inventory  slotted-ALOHA statistics\n"
           "             --tags N --seeds N --success P\n"
           "  faults     fault-injected link, supervisor on vs off\n"
           "             --fault-rate HZ --mean-duration MS --frames N\n"
           "             --payload BYTES --distance M --seed S --fault-seed S\n"
           "             --trials N --jobs N (0 = auto)\n"
           "             --metrics[=FILE] --trace FILE\n"
           "  soak       chaos soak: network supervisor vs multi-tag faults,\n"
           "             invariant-checked (exit 3 on any failure)\n"
           "             --tags N --faulted N --rounds N --payload BYTES\n"
           "             --trials N --seed S --fault-seed S --min-range M\n"
           "             --max-range M --jobs N (0 = auto)\n"
           "             --json PATH --metrics[=FILE] --trace FILE\n"
           "  scale      PHY-abstracted discrete-event network simulation\n"
           "             --tags N --aps N --layout grid|poisson|clustered\n"
           "             --floor M --frames N --payload BYTES --faulted N --seed S\n"
           "             --fault-seed S --trials N --jobs N (0 = auto)\n"
           "             --json PATH --metrics[=FILE] --trace FILE\n"
           "  sweep      parallel BER/goodput vs distance Monte-Carlo sweep\n"
           "             --start M --stop M --points N --trials N --frames N\n"
           "             --payload BYTES --scheme MOD --fec MODE --seed S\n"
           "             --jobs N (0 = auto) --json PATH\n"
           "             --metrics[=FILE] (observability counters/histograms;\n"
           "             embedded in --json output, schema result/2)\n"
           "             --trace FILE (Chrome trace_event JSON)\n"
           "  help       this text\n";
}

int dispatch(int argc, const char* const* argv)
{
    try {
        const auto options = option_set::parse(argc, argv);
        if (options.command() == "link") return run_link(options);
        if (options.command() == "budget") return run_budget(options);
        if (options.command() == "network") return run_network(options);
        if (options.command() == "inventory") return run_inventory(options);
        if (options.command() == "faults") return run_faults(options);
        if (options.command() == "soak") return run_soak(options);
        if (options.command() == "scale") return run_scale(options);
        if (options.command() == "sweep") return run_sweep(options);
        if (options.command() == "help") {
            std::printf("%s", usage());
            return 0;
        }
        std::fprintf(stderr, "unknown command '%s'\n%s", options.command().c_str(),
                     usage());
        return 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n%s", error.what(), usage());
        return 1;
    }
}

} // namespace mmtag::cli
