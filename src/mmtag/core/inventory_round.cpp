#include "mmtag/core/inventory_round.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace mmtag::core {

namespace {

std::vector<std::uint8_t> id_payload(std::uint32_t id)
{
    return {static_cast<std::uint8_t>(id >> 24), static_cast<std::uint8_t>(id >> 16),
            static_cast<std::uint8_t>(id >> 8), static_cast<std::uint8_t>(id)};
}

} // namespace

sampled_inventory_result run_sampled_inventory(const system_config& base,
                                               const std::vector<tag_descriptor>& tags,
                                               const sampled_inventory_config& cfg,
                                               std::uint64_t seed)
{
    if (cfg.slot_exponent > 8) {
        throw std::invalid_argument("sampled inventory: slot_exponent must be <= 8");
    }
    if (cfg.max_rounds == 0) {
        throw std::invalid_argument("sampled inventory: max_rounds must be >= 1");
    }

    sampled_inventory_result result;
    result.tags_total = tags.size();

    multitag_simulator sim(base, tags);
    const double slot_s = sim.burst_duration_s(4) + cfg.slot_guard_s;
    const std::size_t slot_count = std::size_t{1} << cfg.slot_exponent;

    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> slot_dist(0, slot_count - 1);

    std::vector<std::size_t> remaining(tags.size());
    for (std::size_t i = 0; i < tags.size(); ++i) remaining[i] = i;

    for (std::size_t round = 0; round < cfg.max_rounds && !remaining.empty(); ++round) {
        ++result.rounds;
        result.slots_used += slot_count;

        // Every remaining tag draws a slot and queues its ID burst there.
        std::vector<tag_burst> bursts;
        std::vector<std::size_t> burst_tag;     // tag index per burst
        std::vector<std::size_t> slot_of_burst; // chosen slot per burst
        std::vector<std::size_t> occupancy(slot_count, 0);
        for (std::size_t tag_index : remaining) {
            const std::size_t slot = slot_dist(rng);
            ++occupancy[slot];
            bursts.push_back({tag_index, id_payload(tags[tag_index].id),
                              static_cast<double>(slot) * slot_s});
            burst_tag.push_back(tag_index);
            slot_of_burst.push_back(slot);
        }
        for (std::size_t slot = 0; slot < slot_count; ++slot) {
            if (occupancy[slot] == 0) ++result.idle_slots;
            else if (occupancy[slot] > 1) ++result.collision_slots;
        }

        // One shared capture; collisions happen in the waveform.
        const auto outcomes = sim.run(bursts);

        std::vector<std::size_t> still_remaining;
        for (std::size_t b = 0; b < outcomes.size(); ++b) {
            const std::size_t tag_index = burst_tag[b];
            if (outcomes[b].delivered) {
                result.identified_ids.push_back(tags[tag_index].id);
            } else {
                still_remaining.push_back(tag_index);
            }
        }
        remaining.swap(still_remaining);
    }
    std::sort(result.identified_ids.begin(), result.identified_ids.end());
    return result;
}

} // namespace mmtag::core
