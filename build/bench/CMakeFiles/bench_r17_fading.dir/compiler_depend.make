# Empty compiler generated dependencies file for bench_r17_fading.
# This may be replaced when dependencies are built.
