#include "mmtag/dsp/pulse_shape.hpp"

#include <stdexcept>

namespace mmtag::dsp {

rvec root_raised_cosine(std::size_t samples_per_symbol, double beta, std::size_t span_symbols)
{
    if (samples_per_symbol < 2) {
        throw std::invalid_argument("root_raised_cosine: samples_per_symbol must be >= 2");
    }
    if (!(beta >= 0.0 && beta <= 1.0)) {
        throw std::invalid_argument("root_raised_cosine: beta must be in [0, 1]");
    }
    if (span_symbols == 0) {
        throw std::invalid_argument("root_raised_cosine: span_symbols must be >= 1");
    }
    const std::size_t half = span_symbols * samples_per_symbol;
    const std::size_t taps = 2 * half + 1;
    rvec h(taps);
    const double sps = static_cast<double>(samples_per_symbol);
    for (std::size_t n = 0; n < taps; ++n) {
        // Time in symbols relative to the pulse center.
        const double t = (static_cast<double>(n) - static_cast<double>(half)) / sps;
        double value = 0.0;
        const double four_bt = 4.0 * beta * t;
        if (std::abs(t) < 1e-9) {
            value = 1.0 + beta * (4.0 / pi - 1.0);
        } else if (beta > 0.0 && std::abs(std::abs(four_bt) - 1.0) < 1e-9) {
            const double a = (1.0 + 2.0 / pi) * std::sin(pi / (4.0 * beta));
            const double b = (1.0 - 2.0 / pi) * std::cos(pi / (4.0 * beta));
            value = beta / std::sqrt(2.0) * (a + b);
        } else {
            const double numerator =
                std::sin(pi * t * (1.0 - beta)) + four_bt * std::cos(pi * t * (1.0 + beta));
            const double denominator = pi * t * (1.0 - four_bt * four_bt);
            value = numerator / denominator;
        }
        h[n] = value;
    }
    double energy = 0.0;
    for (double tap : h) energy += tap * tap;
    const double scale = 1.0 / std::sqrt(energy);
    for (auto& tap : h) tap *= scale;
    return h;
}

rvec rectangular_pulse(std::size_t samples_per_symbol)
{
    if (samples_per_symbol == 0) {
        throw std::invalid_argument("rectangular_pulse: samples_per_symbol must be >= 1");
    }
    return rvec(samples_per_symbol, 1.0);
}

cvec shape_symbols(std::span<const cf64> symbols, std::span<const double> pulse,
                   std::size_t samples_per_symbol)
{
    if (samples_per_symbol == 0) {
        throw std::invalid_argument("shape_symbols: samples_per_symbol must be >= 1");
    }
    if (pulse.empty()) throw std::invalid_argument("shape_symbols: empty pulse");
    const std::size_t out_len = symbols.size() * samples_per_symbol + pulse.size() - 1;
    cvec out(out_len, cf64{});
    for (std::size_t s = 0; s < symbols.size(); ++s) {
        const std::size_t start = s * samples_per_symbol;
        for (std::size_t k = 0; k < pulse.size(); ++k) out[start + k] += symbols[s] * pulse[k];
    }
    return out;
}

cvec integrate_and_dump(std::span<const cf64> samples, std::size_t samples_per_symbol,
                        std::size_t offset)
{
    if (samples_per_symbol == 0) {
        throw std::invalid_argument("integrate_and_dump: samples_per_symbol must be >= 1");
    }
    cvec out;
    if (offset >= samples.size()) return out;
    const std::size_t usable = samples.size() - offset;
    out.reserve(usable / samples_per_symbol);
    for (std::size_t start = offset; start + samples_per_symbol <= samples.size();
         start += samples_per_symbol) {
        cf64 acc{};
        for (std::size_t k = 0; k < samples_per_symbol; ++k) acc += samples[start + k];
        out.push_back(acc / static_cast<double>(samples_per_symbol));
    }
    return out;
}

} // namespace mmtag::dsp
