// Self-interference cancellation. After self-coherent downconversion, TX
// leakage and static clutter are constant complex offsets (pure DC); the tag
// signal is modulated and therefore spectrally spread.
//
// The production mode is background subtraction: the AP estimates the static
// offset from the leading part of the capture window — before the tag's
// turnaround ends, the tag is absorptive and the window contains *only* the
// static environment — and subtracts it everywhere. Unlike a DC notch this
// removes none of the signal's own spectrum, and unlike a global mean it is
// not biased by the frame's symbol imbalance.
#pragma once

#include <span>

#include "mmtag/common.hpp"
#include "mmtag/dsp/dc_blocker.hpp"

namespace mmtag::ap {

enum class cancellation_mode {
    off,                 ///< pass-through (ablation baseline)
    dc_notch,            ///< streaming DC-blocking notch only
    mean_subtract,       ///< global block mean + notch (biased by frame DC)
    background_subtract, ///< static estimate from the quiet leading window
};

class self_interference_canceller {
public:
    struct config {
        cancellation_mode mode = cancellation_mode::background_subtract;
        double notch_pole = 0.999; ///< DC-blocker pole (dc_notch/mean modes)
        /// Fraction of the capture used as the quiet background window
        /// (background_subtract mode). Must lie inside the tag's guard time.
        double training_fraction = 0.05;
        /// Fraction skipped before the training window: propagation-delay
        /// turn-on transients at the capture edge would bias the estimate.
        double training_skip = 0.01;
        /// Trailing quiet-window fraction used to track slow drift of the
        /// statics across the capture (two-point linear background).
        double tail_fraction = 0.02;
    };

    self_interference_canceller();
    explicit self_interference_canceller(const config& cfg);

    [[nodiscard]] cvec process(std::span<const cf64> baseband);

    /// Residual-to-input power ratio of the last process() call [dB];
    /// strongly negative numbers mean deep cancellation.
    [[nodiscard]] double last_suppression_db() const { return last_suppression_db_; }

    /// The static offset estimated by the last background_subtract run.
    [[nodiscard]] cf64 background_estimate() const { return background_; }

    void reset();

private:
    config cfg_;
    dsp::dc_blocker notch_;
    double last_suppression_db_ = 0.0;
    cf64 background_{};
};

} // namespace mmtag::ap
