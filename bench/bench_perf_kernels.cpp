// Performance microbenchmarks (google-benchmark): throughput of the hot
// kernels — FFT, Viterbi, frame build/decode, and one full end-to-end frame
// exchange. Not a paper figure; used to keep the simulator fast enough for
// the R3-R8 sweeps.
#include <benchmark/benchmark.h>

#include "mmtag/core/link_simulator.hpp"
#include "mmtag/dsp/fft.hpp"
#include "mmtag/fec/convolutional.hpp"
#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/obs/scoped_timer.hpp"
#include "mmtag/obs/trace.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/phy/frame.hpp"

#include "bench_util.hpp"

using namespace mmtag;

namespace {

void bm_fft(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const dsp::fft_plan plan(n);
    cvec data(n, cf64{1.0, -0.5});
    for (auto _ : state) {
        plan.forward(data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(bm_fft)->Arg(1024)->Arg(4096)->Arg(16384);

void bm_viterbi(benchmark::State& state)
{
    const auto bits = phy::random_bits(static_cast<std::size_t>(state.range(0)), 5);
    const auto coded = fec::convolutional_encode(bits, fec::code_rate::half);
    for (auto _ : state) {
        auto decoded = fec::viterbi_decode(coded, fec::code_rate::half);
        benchmark::DoNotOptimize(decoded.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(bm_viterbi)->Arg(512)->Arg(4096);

void bm_frame_build(benchmark::State& state)
{
    const auto payload = phy::random_bytes(256, 7);
    const phy::frame_config cfg{};
    for (auto _ : state) {
        auto symbols = phy::build_frame(payload, cfg);
        benchmark::DoNotOptimize(symbols.data());
    }
}
BENCHMARK(bm_frame_build);

void bm_frame_decode(benchmark::State& state)
{
    const auto payload = phy::random_bytes(256, 9);
    const phy::frame_config cfg{};
    const cvec symbols = phy::build_frame(payload, cfg);
    const std::span<const cf64> frame_span{symbols.data() + cfg.preamble.total_symbols(),
                                           symbols.size() - cfg.preamble.total_symbols()};
    for (auto _ : state) {
        auto result = phy::decode_frame(frame_span, cfg, 0.05);
        benchmark::DoNotOptimize(&result);
    }
}
BENCHMARK(bm_frame_decode);

void bm_full_link_frame(benchmark::State& state)
{
    core::link_simulator sim(bench::bench_scenario());
    const auto payload = phy::random_bytes(32, 11);
    for (auto _ : state) {
        auto result = sim.run_frame(payload);
        benchmark::DoNotOptimize(&result);
    }
}
BENCHMARK(bm_full_link_frame)->Unit(benchmark::kMillisecond);

// The observability overhead contract: with no registry attached and no
// trace session, the per-frame cost is a couple of null/flag checks —
// compare against bm_full_link_frame (< 3% is the acceptance bar).
void bm_full_link_frame_with_metrics(benchmark::State& state)
{
    core::link_simulator sim(bench::bench_scenario());
    obs::metrics_registry metrics;
    sim.attach_metrics(&metrics);
    const auto payload = phy::random_bytes(32, 11);
    for (auto _ : state) {
        auto result = sim.run_frame(payload);
        benchmark::DoNotOptimize(&result);
    }
}
BENCHMARK(bm_full_link_frame_with_metrics)->Unit(benchmark::kMillisecond);

void bm_obs_counter_add(benchmark::State& state)
{
    obs::metrics_registry metrics;
    auto& counter = metrics.get_counter("bench/counter");
    for (auto _ : state) {
        counter.add();
        benchmark::DoNotOptimize(&counter);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_obs_counter_add);

void bm_obs_histogram_observe(benchmark::State& state)
{
    obs::metrics_registry metrics;
    auto& histogram = metrics.get_histogram("bench/snr_db", obs::snr_bounds_db());
    double value = -12.0;
    for (auto _ : state) {
        histogram.observe(value);
        value += 0.37;
        if (value > 45.0) value = -12.0;
        benchmark::DoNotOptimize(&histogram);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_obs_histogram_observe);

void bm_obs_scoped_timer_disabled(benchmark::State& state)
{
    // nullptr registry: the timer must skip both clock reads.
    for (auto _ : state) {
        MMTAG_SCOPED_TIMER(static_cast<obs::metrics_registry*>(nullptr), "time/bench");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_obs_scoped_timer_disabled);

void bm_obs_trace_emit_inactive(benchmark::State& state)
{
    // No session: one relaxed atomic load per emit.
    for (auto _ : state) {
        obs::trace_instant("bench.instant", "bench");
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_obs_trace_emit_inactive);

} // namespace

BENCHMARK_MAIN();
