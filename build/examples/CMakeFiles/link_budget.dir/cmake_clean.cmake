file(REMOVE_RECURSE
  "CMakeFiles/link_budget.dir/link_budget.cpp.o"
  "CMakeFiles/link_budget.dir/link_budget.cpp.o.d"
  "link_budget"
  "link_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
