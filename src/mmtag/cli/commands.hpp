// Subcommand implementations for the mmtag_sim tool. Each returns a process
// exit code and prints to stdout; errors print to stderr via the caller.
#pragma once

#include "mmtag/cli/options.hpp"

namespace mmtag::cli {

/// `link`: run the end-to-end single-link simulation.
/// Options: --distance (m), --angle (deg), --scheme, --fec, --frames,
/// --payload (bytes), --seed, --reflector (van-atta|plate), --k-factor (dB).
int run_link(const option_set& options);

/// `budget`: print the analytic link budget.
/// Options: --start, --stop, --points, --tx-power (dBm), --elements.
int run_budget(const option_set& options);

/// `network`: inventory + TDMA over a random population.
/// Options: --tags, --max-range (m), --payload (bytes), --seed.
int run_network(const option_set& options);

/// `inventory`: slotted-ALOHA statistics only.
/// Options: --tags, --seeds, --success (per-slot PHY success probability).
int run_inventory(const option_set& options);

/// `faults`: fault-injected link, supervisor on vs off. Runs on the
/// parallel Monte-Carlo runtime: both arms and every fault-seed trial fan
/// out across the thread pool with deterministic reduction. Returns 0 on
/// success, 2 when the supervised arm loses the goodput comparison, 3 when
/// outages occurred but no recovery ever completed.
/// Options: --fault-rate (events/s), --mean-duration (ms), --frames,
/// --payload (bytes), --distance (m), --seed, --fault-seed, --trials,
/// --jobs (0 = auto).
int run_faults(const option_set& options);

/// `soak`: chaos soak — network supervisor over a multi-tag population under
/// seeded fault schedules, faulted vs fault-free reference arm per trial on
/// the parallel runtime, resilience invariants checked on the trace.
/// Returns 0 when every invariant holds, 3 when any fails.
/// Options: --tags, --faulted, --rounds, --payload (bytes), --trials,
/// --seed, --fault-seed, --jobs (0 = auto), --json (path),
/// --metrics[=FILE], --trace FILE.
int run_soak(const option_set& options);

/// `scale`: PHY-abstracted discrete-event simulation of a multi-AP,
/// thousand-tag network. Loads (or calibrates and caches) the per-MCS
/// PER-vs-SINR table, builds a seeded deployment, and runs the
/// deterministic DES with per-AP supervisors and multi-tag faults.
/// Options: --tags, --aps, --layout (grid|poisson|clustered), --frames,
/// --payload (bytes), --faulted, --seed, --fault-seed, --trials,
/// --jobs (0 = auto), --json (path), --metrics[=FILE], --trace FILE.
int run_scale(const option_set& options);

/// `sweep`: BER/goodput vs distance Monte-Carlo sweep on the parallel
/// runtime; prints the per-point table plus a one-line speedup summary.
/// Options: --start, --stop, --points, --trials, --frames, --payload,
/// --scheme, --fec, --seed, --jobs (0 = auto), --json (path).
int run_sweep(const option_set& options);

/// Usage text for `help` / errors.
[[nodiscard]] const char* usage();

/// Dispatches to a subcommand; returns the exit code. Unknown commands and
/// option errors print to stderr and return nonzero.
int dispatch(int argc, const char* const* argv);

} // namespace mmtag::cli
