file(REMOVE_RECURSE
  "CMakeFiles/warehouse_inventory.dir/warehouse_inventory.cpp.o"
  "CMakeFiles/warehouse_inventory.dir/warehouse_inventory.cpp.o.d"
  "warehouse_inventory"
  "warehouse_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
