// R10 — Network throughput vs population.
// Two arms, both on the parallel Monte-Carlo runtime:
//
//  * analytic: tags scattered over range and orientation share the channel
//    via TDMA after inventory (budget-driven PHY, populations to 20). Each
//    point now averages many counter-seeded random placements instead of a
//    single layout. Expected shape: aggregate goodput stays near the
//    single-link ceiling (slotting overhead only) while per-tag goodput
//    divides by N; far/rotated tags run lower rates and drag the aggregate.
//
//  * sampled: the sample-accurate multitag_simulator runs one full slotted
//    capture per trial (every tag's reflection superposed on one AP
//    capture) and counts actually-delivered payload bits over the capture
//    airtime — the heavyweight cross-check that slotting really separates
//    tags at the waveform level, and the workload the --jobs speedup
//    summary is about.
#include <algorithm>
#include <random>

#include "bench_util.hpp"
#include "mmtag/core/multitag_simulator.hpp"
#include "mmtag/core/network.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/runtime/sweep_runner.hpp"

using namespace mmtag;

namespace {

constexpr std::size_t kAnalyticPopulations[] = {1, 2, 4, 8, 12, 16, 20};
constexpr std::size_t kAnalyticTrials = 12;
constexpr std::size_t kSampledPopulations[] = {1, 2, 4, 8};
constexpr std::size_t kSampledTrials = 4;
constexpr std::size_t kSampledPayloadBytes = 24;

/// Order-preserving mergeable aggregate for both arms.
struct throughput_aggregate {
    double aggregate_bps_sum = 0.0;
    double per_tag_bps_sum = 0.0;
    double cycle_s_sum = 0.0;
    double slots_sum = 0.0;
    double min_snr_db = 1e9;
    double max_snr_db = -1e9;
    std::size_t delivered = 0;
    std::size_t offered = 0;
    std::size_t samples = 0;

    void merge(const throughput_aggregate& other)
    {
        aggregate_bps_sum += other.aggregate_bps_sum;
        per_tag_bps_sum += other.per_tag_bps_sum;
        cycle_s_sum += other.cycle_s_sum;
        slots_sum += other.slots_sum;
        min_snr_db = std::min(min_snr_db, other.min_snr_db);
        max_snr_db = std::max(max_snr_db, other.max_snr_db);
        delivered += other.delivered;
        offered += other.offered;
        samples += other.samples;
    }

    [[nodiscard]] double mean_aggregate_bps() const
    {
        return samples > 0 ? aggregate_bps_sum / static_cast<double>(samples) : 0.0;
    }
    [[nodiscard]] double mean_per_tag_bps() const
    {
        return samples > 0 ? per_tag_bps_sum / static_cast<double>(samples) : 0.0;
    }
    [[nodiscard]] double delivery_ratio() const
    {
        return offered > 0 ? static_cast<double>(delivered) / static_cast<double>(offered)
                           : 0.0;
    }
};

/// Deterministic spread used by the sampled arm (the original R10 layout).
std::vector<core::tag_descriptor> spread_tags(std::size_t count)
{
    std::vector<core::tag_descriptor> tags;
    for (std::uint32_t i = 0; i < count; ++i) {
        const double frac =
            count == 1 ? 0.0
                       : static_cast<double>(i) / static_cast<double>(count - 1);
        tags.push_back({i, 1.5 + 4.5 * frac, deg_to_rad(-25.0 + 50.0 * frac)});
    }
    return tags;
}

throughput_aggregate analytic_trial(std::size_t tag_count, std::uint64_t seed)
{
    std::mt19937_64 rng(runtime::substream(seed, 0));
    std::uniform_real_distribution<double> range(1.5, 6.0);
    std::uniform_real_distribution<double> angle(-25.0, 25.0);
    std::vector<core::tag_descriptor> tags;
    for (std::uint32_t i = 0; i < tag_count; ++i) {
        tags.push_back({i, range(rng), deg_to_rad(angle(rng))});
    }
    const core::network net(bench::bench_scenario(), tags);
    const auto report = net.run(runtime::substream(seed, 1));

    throughput_aggregate agg;
    agg.aggregate_bps_sum = report.aggregate_goodput_bps;
    agg.per_tag_bps_sum = report.tdma.per_tag_goodput_bps;
    agg.cycle_s_sum = report.tdma.cycle_time_s;
    agg.slots_sum = static_cast<double>(report.inventory.slots_used);
    agg.min_snr_db = report.min_snr_db;
    agg.max_snr_db = report.max_snr_db;
    agg.delivered = report.inventory.tags_identified;
    agg.offered = report.inventory.tags_total;
    agg.samples = 1;
    return agg;
}

throughput_aggregate sampled_trial(std::size_t tag_count, std::uint64_t seed)
{
    auto cfg = bench::bench_scenario();
    cfg.seed = seed;
    core::multitag_simulator sim(cfg, spread_tags(tag_count));

    // Captures are bounded at 4 slots (the slot receiver's canceller
    // pre-roll is sized from the whole capture) and banded by range: a
    // 1.5 m tag returns ~24 dB more backscatter power than a 6 m one, and
    // that near-far spread inside a single capture window swamps the far
    // slot — so, like a real TDMA scheduler grouping similar-RSSI tags,
    // each capture only mixes tags within a 1.5x distance band. The clock
    // accumulates across all captures.
    constexpr std::size_t kSlotsPerCapture = 4;
    constexpr double kRangeBandRatio = 1.5;
    const auto tags = spread_tags(tag_count); // sorted by distance already
    const double slot_s = sim.burst_duration_s(kSampledPayloadBytes) + 20e-6;
    throughput_aggregate agg;
    std::size_t delivered_bits = 0;
    for (std::size_t first = 0; first < tag_count;) {
        std::size_t count = 1;
        while (first + count < tag_count && count < kSlotsPerCapture &&
               tags[first + count].distance_m <=
                   kRangeBandRatio * tags[first].distance_m) {
            ++count;
        }
        std::vector<core::tag_burst> bursts;
        for (std::size_t slot = 0; slot < count; ++slot) {
            bursts.push_back({first + slot,
                              phy::random_bytes(kSampledPayloadBytes,
                                                runtime::substream(seed, 2 + first + slot)),
                              static_cast<double>(slot) * slot_s});
        }
        first += count;
        const auto outcomes = sim.run(bursts);
        for (const auto& outcome : outcomes) {
            if (outcome.delivered) {
                ++agg.delivered;
                delivered_bits += kSampledPayloadBytes * 8;
            }
            agg.min_snr_db = std::min(agg.min_snr_db, outcome.snr_db);
            agg.max_snr_db = std::max(agg.max_snr_db, outcome.snr_db);
        }
        agg.offered += outcomes.size();
    }
    const double capture_s = sim.clock_s();
    agg.cycle_s_sum = capture_s;
    agg.aggregate_bps_sum =
        capture_s > 0.0 ? static_cast<double>(delivered_bits) / capture_s : 0.0;
    agg.per_tag_bps_sum = agg.aggregate_bps_sum / static_cast<double>(tag_count);
    agg.samples = 1;
    return agg;
}

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    bench::banner("R10", "TDMA network goodput vs number of tags", opts.csv);

    runtime::result_writer results("R10", "TDMA network goodput vs number of tags",
                                   {"section", "tags"}, opts.seed);

    // Analytic arm: populations to 20, averaged over random placements.
    runtime::sweep_options analytic;
    analytic.jobs = opts.jobs;
    analytic.base_seed = opts.seed;
    analytic.trials_per_point = kAnalyticTrials;
    analytic.progress = runtime::stderr_progress();
    const auto analytic_out = runtime::run_sweep<throughput_aggregate>(
        analytic, std::size(kAnalyticPopulations),
        [&](std::size_t point, std::size_t, std::uint64_t seed) {
            return analytic_trial(kAnalyticPopulations[point], seed);
        });

    bench::table analytic_table({"tags", "mean_slots", "cycle_ms", "per_tag_Mbps",
                                 "aggregate_Mbps", "min_snr_dB", "max_snr_dB"},
                                opts.csv);
    for (std::size_t point = 0; point < std::size(kAnalyticPopulations); ++point) {
        const auto& agg = analytic_out.points[point].aggregate;
        const double n = static_cast<double>(agg.samples);
        analytic_table.add_row(
            {std::to_string(kAnalyticPopulations[point]),
             bench::fmt("%.1f", agg.slots_sum / n),
             bench::fmt("%.3f", agg.cycle_s_sum / n * 1e3),
             bench::fmt("%.3f", agg.mean_per_tag_bps() / 1e6),
             bench::fmt("%.2f", agg.mean_aggregate_bps() / 1e6),
             bench::fmt("%.1f", agg.min_snr_db), bench::fmt("%.1f", agg.max_snr_db)});
        auto axis = runtime::json_value::object();
        axis.set("section", runtime::json_value::string("analytic"));
        axis.set("tags", runtime::json_value::unsigned_integer(kAnalyticPopulations[point]));
        auto metrics = runtime::json_value::object();
        metrics.set("aggregate_goodput_bps",
                    runtime::json_value::number(agg.mean_aggregate_bps()));
        metrics.set("per_tag_goodput_bps",
                    runtime::json_value::number(agg.mean_per_tag_bps()));
        metrics.set("mean_inventory_slots", runtime::json_value::number(agg.slots_sum / n));
        metrics.set("min_snr_db", runtime::json_value::number(agg.min_snr_db));
        metrics.set("max_snr_db", runtime::json_value::number(agg.max_snr_db));
        metrics.set("inventory_completion",
                    runtime::json_value::number(agg.delivery_ratio()));
        results.add_point(std::move(axis), kAnalyticTrials, std::move(metrics));
    }
    analytic_table.print();

    // Sampled arm: full slotted captures at the waveform level.
    runtime::sweep_options sampled;
    sampled.jobs = opts.jobs;
    sampled.base_seed = runtime::substream(opts.seed, 0x5a);
    sampled.trials_per_point = kSampledTrials;
    sampled.progress = runtime::stderr_progress();
    const auto sampled_out = runtime::run_sweep<throughput_aggregate>(
        sampled, std::size(kSampledPopulations),
        [&](std::size_t point, std::size_t, std::uint64_t seed) {
            return sampled_trial(kSampledPopulations[point], seed);
        });

    if (!opts.csv) std::printf("\nsample-accurate slotted captures:\n\n");
    bench::table sampled_table(
        {"tags", "delivery", "capture_ms", "aggregate_Mbps", "min_snr_dB"}, opts.csv);
    for (std::size_t point = 0; point < std::size(kSampledPopulations); ++point) {
        const auto& agg = sampled_out.points[point].aggregate;
        const double n = static_cast<double>(agg.samples);
        sampled_table.add_row({std::to_string(kSampledPopulations[point]),
                               bench::fmt("%.3f", agg.delivery_ratio()),
                               bench::fmt("%.3f", agg.cycle_s_sum / n * 1e3),
                               bench::fmt("%.3f", agg.mean_aggregate_bps() / 1e6),
                               bench::fmt("%.1f", agg.min_snr_db)});
        auto axis = runtime::json_value::object();
        axis.set("section", runtime::json_value::string("sampled"));
        axis.set("tags", runtime::json_value::unsigned_integer(kSampledPopulations[point]));
        auto metrics = runtime::json_value::object();
        metrics.set("aggregate_goodput_bps",
                    runtime::json_value::number(agg.mean_aggregate_bps()));
        metrics.set("delivery_ratio", runtime::json_value::number(agg.delivery_ratio()));
        metrics.set("mean_capture_s", runtime::json_value::number(agg.cycle_s_sum / n));
        metrics.set("min_snr_db", runtime::json_value::number(agg.min_snr_db));
        results.add_point(std::move(axis), kSampledTrials, std::move(metrics));
    }
    sampled_table.print();

    const double wall_s = analytic_out.wall_s + sampled_out.wall_s;
    const std::size_t trials = analytic_out.trials + sampled_out.trials;
    const auto written =
        results.write(opts.json_path, wall_s, sampled_out.jobs,
                      wall_s > 0.0 ? static_cast<double>(trials) / wall_s : 0.0);
    if (!opts.csv) {
        std::printf("\n%s\n",
                    runtime::summary_line(std::size(kAnalyticPopulations) +
                                              std::size(kSampledPopulations),
                                          trials, wall_s, sampled_out.jobs)
                        .c_str());
        if (!written.empty()) std::printf("wrote %s\n", written.c_str());
    }
    return 0;
}
