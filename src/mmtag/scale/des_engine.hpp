// Deterministic discrete-event simulator for multi-AP, thousand-tag mmtag
// networks. Each AP cell runs its own TDMA round loop (planned by an
// unmodified net::network_supervisor); every scheduled slot becomes one
// event whose packet outcome is drawn from the calibrated scale::phy_table
// at the tag's per-slot SINR — static topology SINR perturbed by the
// fault::multi_tag_plan impairments active over the slot window.
//
// Determinism contract (same as the Monte-Carlo runtime's):
//   * the event queue orders by (time, sequence number) with the sequence
//     assigned at push, so simultaneous events pop in creation order on
//     every run;
//   * each packet draw is keyed by the event's global sequence number
//     through runtime::substream — outcomes depend on *which* event, never
//     on scheduling or --jobs;
//   * trials fan out across the thread pool into pre-allocated slots and
//     fold back in trial order.
// Every event also feeds a running FNV-1a hash of its formatted log line
// (recorded verbatim only when `record_event_log` is set), so byte-identity
// of whole runs is checked cheaply across --jobs values.
//
// Impairment -> SINR mapping mirrors how core::link_simulator applies the
// same impairments to samples: blockage shadows the tag path twice (power
// x a^4), a carrier dropout scales the illuminator once (power x c^2), the
// shared interferer adds power relative to the tag's nominal return, and a
// brownout suppresses the response entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmtag/fault/multi_tag_faults.hpp"
#include "mmtag/net/tag_session.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/scale/phy_table.hpp"
#include "mmtag/scale/topology.hpp"

namespace mmtag::obs {
class metrics_registry;
}

namespace mmtag::scale {

enum class event_kind : std::uint8_t { round_begin = 0, data_slot = 1, probe_slot = 2 };

[[nodiscard]] const char* event_kind_name(event_kind kind);

struct des_event {
    double time_s = 0.0;
    std::uint64_t seq = 0; ///< assigned by event_queue::push
    event_kind kind = event_kind::round_begin;
    std::uint32_t ap = 0;
    std::uint32_t tag = 0;
    std::uint16_t mcs = 0;    ///< rate-ladder index for slot events
    double duration_s = 0.0;  ///< slot window (fault query span)
};

/// Binary-heap event queue with stable tie-breaking: events at equal times
/// pop in push order (ascending sequence number), never in heap order.
class event_queue {
public:
    /// Stamps the event with the next global sequence number and enqueues
    /// it; returns the assigned sequence.
    std::uint64_t push(des_event event);
    [[nodiscard]] des_event pop();
    [[nodiscard]] bool empty() const { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const { return heap_.size(); }
    [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

private:
    std::vector<des_event> heap_;
    std::uint64_t next_seq_ = 0;
};

struct scale_config {
    topology_config topology{};
    core::system_config scenario = core::fast_scenario();
    /// TDMA rounds each AP runs per trial.
    std::size_t frames = 200;
    std::size_t payload_bytes = 16;
    /// Data-slot budget per AP round; 0 = one per tag in the cell.
    std::size_t slot_budget = 0;
    net::session_config session{};
    /// Rate-adaptation margin for each tag's static MCS choice [dB].
    double margin_db = 2.0;
    /// Tags receiving per-tag fault timelines (ids [0, faulted)); the
    /// shared timeline applies regardless.
    std::size_t faulted = 0;
    /// Fault mix. `horizon_s`, `interferer_start_s`, and
    /// `interferer_duration_s` are overridden per trial: the engine rescales
    /// them to the nominal schedule length so the interferer transient and
    /// the recovery tail land inside the run at any tag count.
    fault::multi_tag_config faults{};
    /// Calibration parameters for the PHY table. `scenario` and
    /// `payload_bytes` inside are overridden from the fields above so the
    /// table always matches the simulated link; the grid/frames/seed fields
    /// control calibration cost (tests use a coarse grid).
    phy_table_config phy{};
    std::uint64_t seed = 1;
    std::uint64_t fault_seed = 99;
    std::size_t trials = 1;
    /// Keep the full event log text per trial (the hash is always kept).
    bool record_event_log = false;
};

/// One trial's raw outcome; merged across trials into scale_result.
struct scale_trial_result {
    std::vector<std::uint64_t> attempts_per_tag;
    std::vector<std::uint64_t> delivered_per_tag;
    std::uint64_t data_slots = 0;
    std::uint64_t probe_slots = 0;
    std::uint64_t delivered = 0;
    std::uint64_t brownout_losses = 0;
    std::uint64_t rounds = 0;
    std::uint64_t events = 0;
    double sim_time_s = 0.0; ///< latest AP round-loop end
    std::uint64_t transitions = 0;
    std::uint64_t readmissions = 0;
    std::vector<std::size_t> readmit_latencies_rounds;
    std::uint64_t event_log_hash = 0; ///< FNV-1a over every event line
    std::string event_log;            ///< only when record_event_log
};

struct scale_result {
    scale_config config;
    std::size_t jobs = 1;
    std::vector<std::uint64_t> attempts_per_tag;  ///< summed over trials
    std::vector<std::uint64_t> delivered_per_tag; ///< summed over trials
    std::uint64_t data_slots = 0;
    std::uint64_t probe_slots = 0;
    std::uint64_t delivered = 0;
    std::uint64_t brownout_losses = 0;
    std::uint64_t rounds = 0;
    std::uint64_t events = 0;
    double sim_time_s = 0.0; ///< summed across trials
    std::uint64_t transitions = 0;
    std::uint64_t readmissions = 0;
    std::uint64_t readmit_latency_count = 0;
    double readmit_latency_mean_rounds = 0.0;
    std::uint64_t readmit_latency_max_rounds = 0;
    /// Ordered fold of per-trial event-log hashes.
    std::uint64_t event_log_hash = 0;
    std::vector<std::string> event_logs; ///< per trial, when recorded
    bool cache_hit = false;              ///< phy_table came from disk
    std::string phy_table_path;

    /// Delivered payload bits per second of simulated time.
    [[nodiscard]] double goodput_bps() const;
    /// Jain's fairness index over delivered_per_tag (1 = perfectly fair).
    [[nodiscard]] double fairness_index() const;
    /// Schema "mmtag.scale.result/1"; deterministic for any --jobs.
    [[nodiscard]] runtime::json_value to_json() const;
};

/// Runs one trial sequentially against a prebuilt deployment + phy table.
/// Exposed for the determinism tests; run_scale is the normal entry point.
[[nodiscard]] scale_trial_result run_scale_trial(const scale_config& cfg,
                                                 const deployment& topo,
                                                 const phy_table& table,
                                                 std::size_t trial,
                                                 obs::metrics_registry* metrics);

/// Builds the deployment, loads or generates the phy table (disk cache
/// under `cache_dir`), runs `cfg.trials` trials on `jobs` workers, and
/// folds the results in trial order. `metrics` (optional) receives the
/// merged scale/... and net/... registries, folded deterministically.
[[nodiscard]] scale_result run_scale(const scale_config& cfg, std::size_t jobs,
                                     obs::metrics_registry* metrics = nullptr,
                                     const std::string& cache_dir = "bench/out");

} // namespace mmtag::scale
