#include <gtest/gtest.h>

#include "mmtag/dsp/estimators.hpp"
#include "mmtag/dsp/fft.hpp"
#include "mmtag/dsp/nco.hpp"
#include "mmtag/dsp/resampler.hpp"

namespace mmtag::dsp {
namespace {

std::size_t dominant_bin(std::span<const cf64> x)
{
    const rvec spectrum = power_spectrum(x);
    std::size_t best = 0;
    for (std::size_t i = 1; i < spectrum.size(); ++i) {
        if (spectrum[i] > spectrum[best]) best = i;
    }
    return best;
}

TEST(nco, generates_requested_frequency)
{
    nco osc(0.125); // exactly bin 128 of a 1024-point FFT
    const cvec tone = osc.generate(1024);
    EXPECT_EQ(dominant_bin(tone), 128u);
}

TEST(nco, unit_amplitude)
{
    nco osc(0.03, 1.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_NEAR(std::abs(osc.step()), 1.0, 1e-12);
    }
}

TEST(nco, negative_frequency_conjugates)
{
    nco pos(0.1);
    nco neg(-0.1);
    for (int i = 0; i < 50; ++i) {
        const cf64 a = pos.step();
        const cf64 b = neg.step();
        EXPECT_NEAR(std::abs(a - std::conj(b)), 0.0, 1e-12);
    }
}

TEST(nco, mix_shifts_spectrum)
{
    nco source(10.0 / 256.0);
    const cvec tone = source.generate(256);
    const cvec shifted = frequency_shift(tone, 20.0 / 256.0);
    EXPECT_EQ(dominant_bin(shifted), 30u);
}

TEST(nco, phase_adjust_applies_offset)
{
    nco osc(0.0, 0.0);
    osc.adjust_phase(pi / 2.0);
    const cf64 v = osc.step();
    EXPECT_NEAR(v.real(), 0.0, 1e-12);
    EXPECT_NEAR(v.imag(), 1.0, 1e-12);
}

TEST(decimator, preserves_in_band_tone)
{
    // Tone at 0.02 cycles/sample, decimate by 4 -> 0.08 at the slow rate.
    nco osc(0.02);
    const cvec input = osc.generate(8192);
    decimator dec(4);
    const cvec output = dec.process(input);
    ASSERT_EQ(output.size(), input.size() / 4);
    const std::span<const cf64> tail{output.data() + 1024, 1024};
    EXPECT_NEAR(rms(tail), 1.0, 0.02);
    EXPECT_EQ(dominant_bin(tail), 82u); // 0.08 * 1024 ~= 82
}

TEST(decimator, removes_aliasing_tone)
{
    // Tone at 0.4 would alias to 0.4*4 mod 1 after decimation; the
    // anti-alias filter must crush it first.
    nco osc(0.4);
    const cvec input = osc.generate(8192);
    decimator dec(4);
    const cvec output = dec.process(input);
    const std::span<const cf64> tail{output.data() + 512, 1024};
    EXPECT_LT(rms(tail), 0.01);
}

TEST(interpolator, output_rate_and_amplitude)
{
    nco osc(0.05);
    const cvec input = osc.generate(2048);
    interpolator interp(4);
    const cvec output = interp.process(input);
    ASSERT_EQ(output.size(), input.size() * 4);
    const std::span<const cf64> tail{output.data() + 2048, 4096};
    EXPECT_NEAR(rms(tail), 1.0, 0.03);
    EXPECT_EQ(dominant_bin(tail), 51u); // 0.0125 * 4096 = 51.2
}

TEST(rational_resampler, rate_ratio)
{
    rational_resampler resampler(3, 2);
    EXPECT_DOUBLE_EQ(resampler.rate(), 1.5);
    nco osc(0.04);
    const cvec input = osc.generate(4000);
    const cvec output = resampler.process(input);
    EXPECT_EQ(output.size(), input.size() * 3 / 2);
}

TEST(resampler, unit_factor_is_identity_rate)
{
    decimator dec(1);
    const cvec input{{1.0, 0.0}, {0.5, 0.5}, {0.0, -1.0}};
    const cvec out = dec.process(input);
    ASSERT_EQ(out.size(), input.size());
}

TEST(resampler, zero_factor_rejected)
{
    EXPECT_THROW(decimator(0), std::invalid_argument);
    EXPECT_THROW(interpolator(0), std::invalid_argument);
}

} // namespace
} // namespace mmtag::dsp
