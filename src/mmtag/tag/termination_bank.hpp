// The tag's termination bank: the set of loads the RF switch can connect to
// the Van Atta port. M shorted stubs whose round-trip electrical lengths step
// by 2 pi / M realize an M-PSK reflection constellation; a matched load gives
// the absorptive "quiet" state used while listening and between frames.
#pragma once

#include <cstddef>
#include <vector>

#include "mmtag/common.hpp"
#include "mmtag/phy/modulation.hpp"

namespace mmtag::tag {

class termination_bank {
public:
    struct config {
        phy::modulation scheme = phy::modulation::qpsk;
        double stub_loss_db = 0.5;            ///< one-way stub line loss
        double phase_error_rms_rad = 0.0;     ///< fabrication tolerance
        std::uint64_t phase_error_seed = 1;   ///< fixed per physical tag
    };

    explicit termination_bank(const config& cfg);

    /// Number of data states (M of the PSK constellation).
    [[nodiscard]] std::size_t state_count() const { return gammas_.size() - 1; }

    /// Total switch throws needed: M data states + 1 absorptive state.
    [[nodiscard]] std::size_t throw_count() const { return gammas_.size(); }

    /// Index of the absorptive (matched-load) state.
    [[nodiscard]] std::size_t absorb_state() const { return gammas_.size() - 1; }

    /// Reflection coefficient of every state, ordered: data phases 0..M-1
    /// (phase position p at angle 2 pi p / M) then the absorptive state.
    [[nodiscard]] const cvec& gammas() const { return gammas_; }

    /// State index whose reflected phase best realizes a desired unit symbol.
    [[nodiscard]] std::size_t state_for_symbol(cf64 symbol) const;

    /// Worst-case EVM of the realized constellation against the ideal one —
    /// how much the stub bank's imperfections cost before the channel.
    [[nodiscard]] double constellation_evm() const;

private:
    config cfg_;
    cvec gammas_;
};

} // namespace mmtag::tag
