#include "mmtag/mac/slotted_aloha.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmtag::mac {

double inventory_stats::efficiency() const
{
    if (slots_used == 0) return 0.0;
    return static_cast<double>(tags_identified) / static_cast<double>(slots_used);
}

aloha_inventory::aloha_inventory(const aloha_config& cfg) : cfg_(cfg)
{
    if (cfg.max_q > 15 || cfg.min_q > cfg.max_q || cfg.initial_q < cfg.min_q ||
        cfg.initial_q > cfg.max_q) {
        throw std::invalid_argument("aloha_inventory: inconsistent Q bounds");
    }
    if (!(cfg.singleton_success > 0.0 && cfg.singleton_success <= 1.0)) {
        throw std::invalid_argument("aloha_inventory: singleton_success must be in (0, 1]");
    }
    if (cfg.q_step <= 0.0) throw std::invalid_argument("aloha_inventory: q_step must be > 0");
}

inventory_stats aloha_inventory::run(std::size_t tag_count, std::uint64_t seed) const
{
    inventory_stats stats;
    stats.tags_total = tag_count;
    if (tag_count == 0) return stats;

    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    std::size_t remaining = tag_count;
    double q_float = static_cast<double>(cfg_.initial_q);

    for (std::size_t round = 0; round < cfg_.max_rounds && remaining > 0; ++round) {
        ++stats.rounds;
        const auto q = static_cast<unsigned>(std::lround(q_float));
        const std::size_t slot_count = std::size_t{1} << std::clamp(q, cfg_.min_q, cfg_.max_q);

        // Occupancy: each unidentified tag draws a slot uniformly.
        std::vector<std::size_t> occupancy(slot_count, 0);
        std::uniform_int_distribution<std::size_t> slot_dist(0, slot_count - 1);
        for (std::size_t t = 0; t < remaining; ++t) ++occupancy[slot_dist(rng)];

        for (std::size_t occupants : occupancy) {
            ++stats.slots_used;
            if (occupants == 0) {
                ++stats.idle_slots;
                q_float = std::max(q_float - cfg_.q_step,
                                   static_cast<double>(cfg_.min_q));
            } else if (occupants == 1) {
                ++stats.singleton_slots;
                if (uniform(rng) < cfg_.singleton_success) {
                    ++stats.tags_identified;
                    --remaining;
                }
            } else {
                ++stats.collision_slots;
                q_float = std::min(q_float + cfg_.q_step,
                                   static_cast<double>(cfg_.max_q));
            }
        }
    }
    return stats;
}

double aloha_inventory::theoretical_peak_efficiency(std::size_t tag_count)
{
    if (tag_count == 0) return 0.0;
    if (tag_count == 1) return 1.0;
    const double n = static_cast<double>(tag_count);
    return std::pow(1.0 - 1.0 / n, n - 1.0);
}

} // namespace mmtag::mac
