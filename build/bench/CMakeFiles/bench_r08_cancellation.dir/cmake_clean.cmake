file(REMOVE_RECURSE
  "CMakeFiles/bench_r08_cancellation.dir/bench_r08_cancellation.cpp.o"
  "CMakeFiles/bench_r08_cancellation.dir/bench_r08_cancellation.cpp.o.d"
  "bench_r08_cancellation"
  "bench_r08_cancellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r08_cancellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
