// R15 — Line-code trade study (extension).
// FM0/Miller subcarrier coding buys spectral distance from the DC
// self-interference at the price of more switch transitions (energy).
// Expected shape: in-band-at-DC power drops orders of magnitude from NRZ to
// Miller-4 while transitions/bit (and hence tag power) grow ~linearly with
// the subcarrier order.
#include "bench_util.hpp"
#include "mmtag/phy/line_code.hpp"
#include "mmtag/tag/energy_model.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R15", "line-code trade: DC avoidance vs switching energy", csv);

    const tag::energy_model model;
    const double bit_rate = 5e6;

    bench::table out({"code", "chips_per_bit", "dc_band_power", "transitions_per_bit",
                      "tag_power_mW", "nJ_per_bit"},
                     csv);
    for (auto code : {phy::line_code::nrz, phy::line_code::fm0, phy::line_code::miller2,
                      phy::line_code::miller4}) {
        const double transitions = phy::transitions_per_bit(code);
        // Switch toggles at transitions * bit rate; symbol clock = chip rate.
        const double power =
            model.transmit_power_w(bit_rate, transitions); // transitions per "bit symbol"
        out.add_row({phy::line_code_name(code), std::to_string(phy::chips_per_bit(code)),
                     bench::fmt("%.2e", phy::dc_power_fraction(code, 0.01)),
                     bench::fmt("%.2f", transitions), bench::fmt("%.1f", power * 1e3),
                     bench::fmt("%.2f", power / bit_rate * 1e9)});
    }
    out.print();

    if (!csv) {
        std::printf("\nDC band = +-1%% of the chip rate, random data. NRZ parks its\n"
                    "spectrum on the canceller; Miller-4 moves it 4 bit-rates away.\n");
    }
    return 0;
}
