# Empty dependencies file for mmtag_tests.
# This may be replaced when dependencies are built.
