#include <gtest/gtest.h>

#include "mmtag/mac/arq.hpp"
#include "mmtag/mac/slotted_aloha.hpp"
#include "mmtag/mac/tdma.hpp"

namespace mmtag::mac {
namespace {

class aloha_population : public ::testing::TestWithParam<std::size_t> {};

TEST_P(aloha_population, inventories_everyone)
{
    aloha_inventory inventory{aloha_config{}};
    const auto stats = inventory.run(GetParam(), 42);
    EXPECT_TRUE(stats.complete()) << "found " << stats.tags_identified << "/"
                                  << stats.tags_total;
    EXPECT_EQ(stats.slots_used,
              stats.idle_slots + stats.singleton_slots + stats.collision_slots);
}

TEST_P(aloha_population, efficiency_in_plausible_band)
{
    if (GetParam() < 8) GTEST_SKIP() << "efficiency noisy for tiny populations";
    aloha_inventory inventory{aloha_config{}};
    const auto stats = inventory.run(GetParam(), 7);
    // Framed slotted ALOHA peaks at 1/e ~= 0.368; with Q adaptation overhead
    // (initial frame sizes far from the population) practical efficiency
    // lands between 0.10 and 0.45.
    EXPECT_GT(stats.efficiency(), 0.08);
    EXPECT_LT(stats.efficiency(), 0.45);
}

INSTANTIATE_TEST_SUITE_P(populations, aloha_population,
                         ::testing::Values(1u, 2u, 5u, 10u, 25u, 50u, 100u, 200u));

TEST(aloha, deterministic_for_seed)
{
    aloha_inventory inventory{aloha_config{}};
    const auto a = inventory.run(30, 5);
    const auto b = inventory.run(30, 5);
    EXPECT_EQ(a.slots_used, b.slots_used);
    EXPECT_EQ(a.rounds, b.rounds);
}

TEST(aloha, lossy_phy_needs_more_slots)
{
    aloha_config reliable;
    reliable.singleton_success = 1.0;
    aloha_config lossy;
    lossy.singleton_success = 0.5;
    const auto a = aloha_inventory(reliable).run(50, 9);
    const auto b = aloha_inventory(lossy).run(50, 9);
    EXPECT_LT(a.slots_used, b.slots_used);
}

TEST(aloha, theoretical_peak)
{
    EXPECT_DOUBLE_EQ(aloha_inventory::theoretical_peak_efficiency(1), 1.0);
    // (1 - 1/n)^(n-1) -> 1/e for large n.
    EXPECT_NEAR(aloha_inventory::theoretical_peak_efficiency(1000), 1.0 / std::exp(1.0),
                0.001);
}

TEST(aloha, zero_tags_trivial)
{
    const auto stats = aloha_inventory(aloha_config{}).run(0, 1);
    EXPECT_TRUE(stats.complete());
    EXPECT_EQ(stats.slots_used, 0u);
}

TEST(aloha, validation)
{
    aloha_config cfg;
    cfg.min_q = 5;
    cfg.max_q = 3;
    EXPECT_THROW(aloha_inventory{cfg}, std::invalid_argument);
}

TEST(tdma, slot_duration_arithmetic)
{
    tdma_config cfg;
    cfg.query_time_s = 10e-6;
    cfg.turnaround_s = 2e-6;
    cfg.guard_time_s = 1e-6;
    cfg.frame_payload_bytes = 125; // 1000 bits
    cfg.overhead_bits = 0;
    cfg.phy_rate_bps = 1e6;
    tdma_scheduler scheduler(cfg);
    EXPECT_NEAR(scheduler.slot_duration_s(), 13e-6 + 1e-3, 1e-12);
}

TEST(tdma, cycle_covers_all_tags_without_overlap)
{
    tdma_scheduler scheduler{tdma_config{}};
    const std::vector<std::uint32_t> ids{7, 11, 13, 17};
    const auto cycle = scheduler.build_cycle(ids);
    ASSERT_EQ(cycle.size(), 4u);
    for (std::size_t i = 1; i < cycle.size(); ++i) {
        EXPECT_NEAR(cycle[i].start_s, cycle[i - 1].start_s + cycle[i - 1].duration_s, 1e-12);
    }
    EXPECT_EQ(cycle[2].tag_id, 13u);
}

TEST(tdma, per_tag_goodput_divides_by_population)
{
    tdma_scheduler scheduler{tdma_config{}};
    const auto one = scheduler.metrics(1);
    const auto ten = scheduler.metrics(10);
    EXPECT_NEAR(ten.per_tag_goodput_bps, one.per_tag_goodput_bps / 10.0, 1.0);
    EXPECT_NEAR(ten.aggregate_goodput_bps, one.aggregate_goodput_bps, 1.0);
}

TEST(tdma, utilization_below_unity)
{
    tdma_scheduler scheduler{tdma_config{}};
    const auto m = scheduler.metrics(5);
    EXPECT_GT(m.channel_utilization, 0.0);
    EXPECT_LT(m.channel_utilization, 1.0);
}

TEST(tdma, larger_payload_improves_utilization)
{
    tdma_config small;
    small.frame_payload_bytes = 32;
    tdma_config large;
    large.frame_payload_bytes = 1024;
    EXPECT_GT(tdma_scheduler(large).metrics(1).channel_utilization,
              tdma_scheduler(small).metrics(1).channel_utilization);
}

TEST(arq, perfect_link_never_retransmits)
{
    stop_and_wait_arq arq{arq_config{}};
    const auto stats = arq.run(100, 1.0, 3);
    EXPECT_EQ(stats.frames_delivered, 100u);
    EXPECT_EQ(stats.transmissions, 100u);
    EXPECT_DOUBLE_EQ(stats.transmission_efficiency(), 1.0);
}

TEST(arq, delivery_tracks_success_probability)
{
    stop_and_wait_arq arq{arq_config{}};
    const auto stats = arq.run(2000, 0.7, 5);
    // With 8 retries at p=0.7, delivery is essentially certain.
    EXPECT_GT(stats.delivery_ratio(), 0.999);
    // Mean transmissions per frame ~ 1/0.7.
    const double mean_tx =
        static_cast<double>(stats.transmissions) / static_cast<double>(stats.frames_offered);
    EXPECT_NEAR(mean_tx, 1.0 / 0.7, 0.08);
}

TEST(arq, expected_transmissions_formula)
{
    stop_and_wait_arq arq{arq_config{}};
    EXPECT_NEAR(arq.expected_transmissions(1.0), 1.0, 1e-12);
    EXPECT_NEAR(arq.expected_transmissions(0.5), 2.0, 0.05); // ~1/p with 8 retries
}

TEST(arq, gives_up_after_max_retries)
{
    arq_config cfg;
    cfg.max_retries = 2;
    stop_and_wait_arq arq(cfg);
    const auto stats = arq.run(5000, 0.1, 7);
    // Delivery probability = 1 - 0.9^2 = 0.19.
    EXPECT_NEAR(stats.delivery_ratio(), 0.19, 0.02);
}

TEST(arq, goodput_accounts_airtime)
{
    arq_config cfg;
    cfg.frame_time_s = 100e-6;
    cfg.ack_time_s = 0.0;
    stop_and_wait_arq arq(cfg);
    const auto stats = arq.run(100, 1.0, 9);
    // 1000-bit payload every 100 us -> 10 Mb/s goodput.
    EXPECT_NEAR(stats.goodput_bps(1000.0), 10e6, 1.0);
}

TEST(arq, validation)
{
    EXPECT_THROW((void)stop_and_wait_arq(arq_config{}).run(10, 1.5, 1), std::invalid_argument);
    arq_config cfg;
    cfg.max_retries = 0;
    EXPECT_THROW(stop_and_wait_arq{cfg}, std::invalid_argument);
}

} // namespace
} // namespace mmtag::mac
