#include "mmtag/channel/atmosphere.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <stdexcept>

namespace mmtag::channel {

namespace {

struct table_point {
    double frequency_ghz;
    double value;
};

double interpolate(std::span<const table_point> table, double frequency_ghz)
{
    if (frequency_ghz <= table.front().frequency_ghz) return table.front().value;
    if (frequency_ghz >= table.back().frequency_ghz) return table.back().value;
    for (std::size_t i = 1; i < table.size(); ++i) {
        if (frequency_ghz <= table[i].frequency_ghz) {
            const auto& lo = table[i - 1];
            const auto& hi = table[i];
            const double t = (frequency_ghz - lo.frequency_ghz) /
                             (hi.frequency_ghz - lo.frequency_ghz);
            // Attenuation spans decades; interpolate in log domain.
            return std::exp(std::log(lo.value) * (1.0 - t) + std::log(hi.value) * t);
        }
    }
    return table.back().value;
}

// Combined O2 + H2O specific attenuation, sea level, 7.5 g/m^3 humidity
// (ITU-R P.676 reference curves, coarse tabulation).
constexpr std::array<table_point, 14> gaseous_table{{
    {1.0, 0.006},
    {5.0, 0.008},
    {10.0, 0.012},
    {15.0, 0.030},
    {22.2, 0.190}, // water vapor line
    {24.0, 0.150},
    {28.0, 0.110},
    {38.0, 0.120},
    {50.0, 0.400},
    {57.0, 6.0},
    {60.0, 15.0}, // oxygen absorption peak
    {63.0, 7.0},
    {70.0, 0.90},
    {100.0, 0.50},
}};

// ITU-R P.838 k/alpha (horizontal polarization, coarse grid).
constexpr std::array<table_point, 7> rain_k_table{{
    {10.0, 0.0101},
    {20.0, 0.0751},
    {24.0, 0.1135},
    {30.0, 0.2403},
    {40.0, 0.4431},
    {60.0, 0.8606},
    {100.0, 1.3671},
}};
constexpr std::array<table_point, 7> rain_alpha_table{{
    {10.0, 1.2765},
    {20.0, 1.0990},
    {24.0, 1.0550},
    {30.0, 0.9485},
    {40.0, 0.8673},
    {60.0, 0.7656},
    {100.0, 0.6815},
}};

} // namespace

double gaseous_attenuation_db_per_km(double frequency_hz)
{
    if (frequency_hz <= 0.0) throw std::invalid_argument("atmosphere: frequency must be > 0");
    return interpolate(gaseous_table, frequency_hz / 1e9);
}

double rain_attenuation_db_per_km(double frequency_hz, double rain_rate_mm_per_hr)
{
    if (rain_rate_mm_per_hr < 0.0) throw std::invalid_argument("atmosphere: negative rain rate");
    if (rain_rate_mm_per_hr == 0.0) return 0.0;
    const double ghz = frequency_hz / 1e9;
    const double k = interpolate(rain_k_table, ghz);
    const double alpha = interpolate(rain_alpha_table, ghz);
    return k * std::pow(rain_rate_mm_per_hr, alpha);
}

double atmospheric_loss_db(double distance_m, double frequency_hz, double rain_rate_mm_per_hr)
{
    if (distance_m < 0.0) throw std::invalid_argument("atmosphere: negative distance");
    const double km = distance_m / 1000.0;
    return km * (gaseous_attenuation_db_per_km(frequency_hz) +
                 rain_attenuation_db_per_km(frequency_hz, rain_rate_mm_per_hr));
}

} // namespace mmtag::channel
