#include "mmtag/rf/envelope_detector.hpp"

#include <stdexcept>

namespace mmtag::rf {

envelope_detector::envelope_detector(const config& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("envelope_detector: fs <= 0");
    if (cfg.video_bandwidth_hz <= 0.0 || cfg.video_bandwidth_hz > cfg.sample_rate_hz / 2.0) {
        throw std::invalid_argument("envelope_detector: video bandwidth out of range");
    }
    if (cfg.responsivity_v_per_w <= 0.0) {
        throw std::invalid_argument("envelope_detector: responsivity must be > 0");
    }
    // Single-pole IIR matching the video bandwidth corner.
    filter_alpha_ = 1.0 - std::exp(-two_pi * cfg.video_bandwidth_hz / cfg.sample_rate_hz);
}

rvec envelope_detector::detect(std::span<const cf64> rf)
{
    const double noise_sigma_volts =
        cfg_.noise_equivalent_power_w * cfg_.responsivity_v_per_w;
    rvec out;
    out.reserve(rf.size());
    for (cf64 x : rf) {
        const double power = std::norm(x); // square-law detection
        double voltage = cfg_.responsivity_v_per_w * power;
        voltage += noise_sigma_volts * gaussian_(rng_);
        state_ += filter_alpha_ * (voltage - state_);
        out.push_back(state_);
    }
    return out;
}

std::vector<bool> envelope_detector::threshold(std::span<const double> voltage, double on_volts,
                                               double off_volts) const
{
    if (!(off_volts <= on_volts)) {
        throw std::invalid_argument("envelope_detector: off threshold must be <= on threshold");
    }
    std::vector<bool> detected;
    detected.reserve(voltage.size());
    bool on = false;
    for (double v : voltage) {
        if (!on && v >= on_volts) on = true;
        else if (on && v < off_volts) on = false;
        detected.push_back(on);
    }
    return detected;
}

} // namespace mmtag::rf
