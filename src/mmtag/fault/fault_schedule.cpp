#include "mmtag/fault/fault_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace mmtag::fault {

const char* fault_kind_name(fault_kind kind)
{
    switch (kind) {
    case fault_kind::blockage: return "blockage";
    case fault_kind::carrier_dropout: return "carrier_dropout";
    case fault_kind::lo_step: return "lo_step";
    case fault_kind::interferer: return "interferer";
    case fault_kind::brownout: return "brownout";
    }
    return "unknown";
}

fault_schedule::fault_schedule(const config& cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed)
{
    if (cfg.horizon_s <= 0.0) {
        throw std::invalid_argument("fault_schedule: horizon must be > 0");
    }
    if (cfg.event_rate_hz < 0.0) {
        throw std::invalid_argument("fault_schedule: event rate must be >= 0");
    }
    if (cfg.min_duration_s <= 0.0 || cfg.max_duration_s < cfg.min_duration_s) {
        throw std::invalid_argument("fault_schedule: invalid duration bounds");
    }
    const double weights[] = {cfg.blockage_weight, cfg.dropout_weight,
                              cfg.lo_step_weight, cfg.interferer_weight,
                              cfg.brownout_weight};
    double total_weight = 0.0;
    for (double w : weights) {
        if (w < 0.0) throw std::invalid_argument("fault_schedule: negative weight");
        total_weight += w;
    }
    if (cfg.event_rate_hz == 0.0) return;
    if (total_weight <= 0.0) {
        throw std::invalid_argument("fault_schedule: all kinds disabled");
    }

    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
    std::exponential_distribution<double> gap(cfg.event_rate_hz);
    std::exponential_distribution<double> dwell(1.0 / cfg.mean_duration_s);
    std::discrete_distribution<int> pick(std::begin(weights), std::end(weights));
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    double t = gap(rng);
    while (t < cfg.horizon_s) {
        fault_event event;
        event.kind = static_cast<fault_kind>(pick(rng));
        event.start_s = t;
        event.duration_s =
            std::clamp(dwell(rng), cfg.min_duration_s, cfg.max_duration_s);
        const double u = unit(rng);
        switch (event.kind) {
        case fault_kind::blockage:
            event.magnitude = cfg.blockage_depth_db_min +
                              u * (cfg.blockage_depth_db_max - cfg.blockage_depth_db_min);
            break;
        case fault_kind::carrier_dropout:
            event.magnitude = cfg.dropout_depth_db;
            break;
        case fault_kind::lo_step:
            event.magnitude =
                cfg.lo_step_hz_min + u * (cfg.lo_step_hz_max - cfg.lo_step_hz_min);
            break;
        case fault_kind::interferer:
            event.magnitude =
                cfg.interferer_db_min + u * (cfg.interferer_db_max - cfg.interferer_db_min);
            break;
        case fault_kind::brownout:
            event.magnitude = 0.0;
            break;
        }
        events_.push_back(event);
        t += gap(rng);
    }
}

fault_schedule::fault_schedule(double horizon_s, std::vector<fault_event> events)
    : seed_(0), events_(normalize(std::move(events)))
{
    if (horizon_s <= 0.0) {
        throw std::invalid_argument("fault_schedule: horizon must be > 0");
    }
    cfg_ = config{};
    cfg_.horizon_s = horizon_s;
    cfg_.event_rate_hz = 0.0; // nothing was generated; the list is the truth
    for (const auto& event : events_) {
        if (event.start_s >= horizon_s) {
            throw std::invalid_argument("fault_schedule: event starts beyond horizon");
        }
    }
}

std::vector<fault_event> fault_schedule::normalize(std::vector<fault_event> events)
{
    for (const auto& event : events) {
        if (!std::isfinite(event.start_s) || !std::isfinite(event.duration_s) ||
            !std::isfinite(event.magnitude)) {
            throw std::invalid_argument("fault_schedule: non-finite event field");
        }
        if (event.start_s < 0.0 || event.duration_s < 0.0) {
            throw std::invalid_argument("fault_schedule: negative event time");
        }
    }
    // Zero-duration bounded events are no-ops by construction (overlaps()
    // uses half-open windows); drop them rather than carry dead weight.
    // Zero-duration lo_steps stay: the step itself is the fault.
    std::erase_if(events, [](const fault_event& e) {
        return e.duration_s <= 0.0 && e.kind != fault_kind::lo_step;
    });
    std::sort(events.begin(), events.end(), [](const fault_event& a, const fault_event& b) {
        if (a.start_s != b.start_s) return a.start_s < b.start_s;
        if (a.kind != b.kind) return a.kind < b.kind;
        if (a.duration_s != b.duration_s) return a.duration_s < b.duration_s;
        return a.magnitude < b.magnitude;
    });
    // Merge rule for same-kind overlap (and touching intervals): union the
    // window, keep the deepest magnitude — exactly what the injector's
    // deepest-event-wins aggregation would report anyway, so merged and
    // unmerged schedules impair identically.
    std::vector<fault_event> merged;
    merged.reserve(events.size());
    for (const auto& event : events) {
        fault_event* prior = nullptr;
        if (event.kind != fault_kind::lo_step) {
            for (auto it = merged.rbegin(); it != merged.rend(); ++it) {
                if (it->kind != event.kind) continue;
                if (it->end_s() >= event.start_s) prior = &*it;
                break;
            }
        }
        if (prior != nullptr) {
            prior->duration_s = std::max(prior->end_s(), event.end_s()) - prior->start_s;
            prior->magnitude = std::max(prior->magnitude, event.magnitude);
        } else {
            merged.push_back(event);
        }
    }
    return merged;
}

std::vector<fault_event> fault_schedule::active(double t0, double t1) const
{
    std::vector<fault_event> out;
    for (const auto& event : events_) {
        if (event.start_s >= t1) break; // sorted by construction
        if (event.overlaps(t0, t1)) out.push_back(event);
    }
    return out;
}

std::size_t fault_schedule::count(fault_kind kind) const
{
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const fault_event& e) { return e.kind == kind; }));
}

} // namespace mmtag::fault
