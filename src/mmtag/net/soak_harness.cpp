#include "mmtag/net/soak_harness.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "mmtag/core/multitag_simulator.hpp"
#include "mmtag/core/network.hpp"
#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/mac/tdma.hpp"
#include "mmtag/net/network_supervisor.hpp"
#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/runtime/json_io.hpp"
#include "mmtag/runtime/thread_pool.hpp"
#include "mmtag/runtime/trial_rng.hpp"

namespace mmtag::net {

namespace {

/// The robust MCS degraded sessions and probes use: the bottom of the rate
/// ladder (BPSK, rate-1/2), matching ap::rate_table().front().
constexpr core::burst_mcs robust_mcs{phy::modulation::bpsk, phy::fec_mode::conv_half};

constexpr std::size_t probe_payload_bytes = 4;

bool schedulable_ordinal(std::uint8_t state)
{
    return state == static_cast<std::uint8_t>(session_state::active) ||
           state == static_cast<std::uint8_t>(session_state::degraded);
}

std::string format(const char* fmt, ...)
{
    char buffer[192];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof buffer, fmt, args);
    va_end(args);
    return buffer;
}

} // namespace

invariant_result check_transition_legality(const soak_trace& trace)
{
    invariant_result out{"transition_legality", true, ""};
    std::vector<std::size_t> last_round(trace.tag_count, 0);
    for (const auto& entry : trace.transitions) {
        if (entry.tag_id >= trace.tag_count) {
            return {out.name, false,
                    format("transition names unknown tag %u", entry.tag_id)};
        }
        const auto& t = entry.transition;
        if (!legal_transition(t.from, t.to)) {
            return {out.name, false,
                    format("tag %u: illegal %s -> %s at round %zu", entry.tag_id,
                           session_state_name(t.from), session_state_name(t.to),
                           t.round)};
        }
        if (t.round < last_round[entry.tag_id]) {
            return {out.name, false,
                    format("tag %u: transition log not chronological at round %zu",
                           entry.tag_id, t.round)};
        }
        last_round[entry.tag_id] = t.round;
    }
    return out;
}

invariant_result check_no_starvation(const soak_trace& trace,
                                     std::size_t window_rounds)
{
    invariant_result out{"no_starvation", true, ""};
    if (window_rounds == 0) return {out.name, false, "window must be >= 1"};
    for (std::size_t tag = 0; tag < trace.tag_count; ++tag) {
        // Rounds in a row where the session both began and ended the round
        // schedulable yet received no data slot.
        std::size_t dry = 0;
        bool prev_schedulable = true; // sessions start ACTIVE
        for (std::size_t r = 0; r < trace.rounds.size(); ++r) {
            const auto& rec = trace.rounds[r];
            const bool now_schedulable = schedulable_ordinal(rec.states[tag]);
            if (rec.scheduled[tag] > 0) {
                dry = 0;
            } else if (now_schedulable && prev_schedulable) {
                ++dry;
            } else {
                dry = 0;
            }
            if (dry >= window_rounds) {
                return {out.name, false,
                        format("tag %zu: no data slot for %zu consecutive "
                               "schedulable rounds (through round %zu)",
                               tag, dry, r)};
            }
            prev_schedulable = now_schedulable;
        }
    }
    return out;
}

invariant_result check_frame_conservation(
    const soak_trace& trace, const std::vector<std::uint64_t>& delivered_per_tag)
{
    invariant_result out{"frame_conservation", true, ""};
    if (delivered_per_tag.size() != trace.tag_count) {
        return {out.name, false, "per-tag totals sized differently than the trace"};
    }
    std::vector<std::uint64_t> sums(trace.tag_count, 0);
    for (std::size_t r = 0; r < trace.rounds.size(); ++r) {
        const auto& rec = trace.rounds[r];
        if (rec.states.size() != trace.tag_count ||
            rec.scheduled.size() != trace.tag_count ||
            rec.delivered.size() != trace.tag_count ||
            rec.probed.size() != trace.tag_count ||
            rec.probe_ok.size() != trace.tag_count) {
            return {out.name, false, format("round %zu: ragged trace record", r)};
        }
        for (std::size_t tag = 0; tag < trace.tag_count; ++tag) {
            if (rec.delivered[tag] > rec.scheduled[tag]) {
                return {out.name, false,
                        format("round %zu tag %zu: %u delivered from %u slots", r,
                               tag, rec.delivered[tag], rec.scheduled[tag])};
            }
            if (rec.probe_ok[tag] != 0 && rec.probed[tag] == 0) {
                return {out.name, false,
                        format("round %zu tag %zu: probe outcome without a probe "
                               "slot",
                               r, tag)};
            }
            sums[tag] += rec.delivered[tag];
        }
    }
    for (std::size_t tag = 0; tag < trace.tag_count; ++tag) {
        if (sums[tag] != delivered_per_tag[tag]) {
            return {out.name, false,
                    format("tag %zu: trace sums %llu delivered frames, totals "
                           "report %llu",
                           tag, static_cast<unsigned long long>(sums[tag]),
                           static_cast<unsigned long long>(delivered_per_tag[tag]))};
        }
    }
    return out;
}

invariant_result check_bounded_recovery(const soak_trace& trace,
                                        const session_config& session,
                                        double grace_factor)
{
    invariant_result out{"bounded_recovery", true, ""};
    if (!(grace_factor >= 1.0)) return {out.name, false, "grace factor must be >= 1"};
    std::size_t first_clean = 0;
    if (trace.last_fault_end_s > 0.0) {
        first_clean = trace.rounds.size();
        for (std::size_t r = 0; r < trace.rounds.size(); ++r) {
            if (trace.rounds[r].start_clock_s >= trace.last_fault_end_s) {
                first_clean = r;
                break;
            }
        }
    }
    const auto bound = static_cast<std::size_t>(
        std::ceil(grace_factor * static_cast<double>(session.max_readmit_rounds())));
    const std::size_t deadline = first_clean + bound;
    if (deadline >= trace.rounds.size()) {
        return {out.name, false,
                format("recovery deadline (round %zu) is past the soak end "
                       "(%zu rounds) — not observable, increase rounds",
                       deadline, trace.rounds.size())};
    }
    for (std::size_t r = deadline; r < trace.rounds.size(); ++r) {
        for (std::size_t tag = 0; tag < trace.tag_count; ++tag) {
            if (!schedulable_ordinal(trace.rounds[r].states[tag])) {
                return {out.name, false,
                        format("tag %zu still unscheduled at round %zu, %zu "
                               "rounds past the last fault",
                               tag, r, r - first_clean)};
            }
        }
    }
    return out;
}

invariant_result check_graceful_degradation(
    const std::vector<std::uint64_t>& faulted_delivered,
    const std::vector<std::uint64_t>& reference_delivered,
    std::size_t faulted_count, double healthy_share_min)
{
    invariant_result out{"graceful_degradation", true, ""};
    if (faulted_delivered.size() != reference_delivered.size() ||
        faulted_count > faulted_delivered.size()) {
        return {out.name, false, "mismatched per-tag delivery vectors"};
    }
    std::uint64_t faulted_sum = 0;
    std::uint64_t reference_sum = 0;
    for (std::size_t tag = faulted_count; tag < faulted_delivered.size(); ++tag) {
        faulted_sum += faulted_delivered[tag];
        reference_sum += reference_delivered[tag];
    }
    if (faulted_delivered.size() == faulted_count) {
        return out; // no healthy tags to compare
    }
    if (reference_sum == 0) {
        return {out.name, false,
                "fault-free reference delivered nothing — the scenario is "
                "broken, not degraded"};
    }
    const double share = static_cast<double>(faulted_sum) /
                         static_cast<double>(reference_sum);
    if (share + 1e-12 < healthy_share_min) {
        return {out.name, false,
                format("healthy tags kept %.3f of their fault-free delivery, "
                       "below the %.3f floor",
                       share, healthy_share_min)};
    }
    return out;
}

fault::multi_tag_config soak_fault_defaults()
{
    // Timescales sized for the soak's measured horizon (a fast_scenario
    // round is a few hundred microseconds of airtime): storms long enough to
    // quarantine (several consecutive rounds blocked), brownouts and
    // background events that degrade without quarantining, one brief shared
    // interferer hiccup.
    fault::multi_tag_config cfg;
    cfg.active_fraction = 0.45;
    cfg.storm_rate_hz = 250.0;
    cfg.storm_span = 3;
    cfg.storm_duration_s = 3.5e-3;
    cfg.storm_depth_db_min = 15.0;
    cfg.storm_depth_db_max = 30.0;
    cfg.brownout_period_s = 5e-3;
    cfg.brownout_duration_s = 1.2e-3;
    cfg.brownout_stagger_s = 2e-3;
    cfg.interferer_start_s = 2e-3;
    cfg.interferer_duration_s = 1.2e-3;
    cfg.interferer_rel_db = 12.0;
    cfg.background_rate_hz = 120.0;
    cfg.background_mean_duration_s = 0.8e-3;
    return cfg;
}

soak_trial_result run_soak_trial(const soak_config& cfg, std::size_t trial,
                                 bool faulted, obs::metrics_registry* registry)
{
    const std::size_t n = cfg.tag_count;
    const auto population = core::uniform_population(
        n, cfg.min_range_m, cfg.max_range_m, runtime::substream(cfg.seed, 17));
    auto scenario = cfg.scenario;
    const std::uint64_t tseed = runtime::trial_seed(cfg.seed, 0, trial);
    scenario.seed = tseed;

    core::multitag_simulator sim(scenario, population);
    if (registry != nullptr) sim.attach_metrics(registry);

    const double data_slot_s = sim.burst_duration_s(cfg.payload_bytes) * 1.05;
    const double robust_slot_s =
        sim.burst_duration_s(cfg.payload_bytes, robust_mcs) * 1.05;
    const double probe_slot_s =
        sim.burst_duration_s(probe_payload_bytes, robust_mcs) * 1.05;

    // Fault plan: the horizon derives from one measured round of airtime
    // (a throwaway capture on a twin simulator), so active_fraction keeps
    // its meaning for any round count or payload size.
    std::optional<fault::multi_tag_plan> plan;
    std::optional<fault::fault_injector> shared_injector;
    std::vector<fault::fault_injector> tag_injector_storage;
    if (faulted) {
        core::multitag_simulator measure(scenario, population);
        std::vector<core::tag_burst> probe_round;
        probe_round.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            probe_round.push_back(
                {i, std::vector<std::uint8_t>(cfg.payload_bytes, 0),
                 static_cast<double>(i) * data_slot_s});
        }
        (void)measure.run(probe_round);
        const double round_s = measure.clock_s();

        auto faults_cfg = cfg.faults;
        faults_cfg.horizon_s =
            std::max(round_s * static_cast<double>(cfg.rounds), 1e-6);
        plan.emplace(faults_cfg, n, cfg.faulted_count, cfg.fault_seed + trial);
        shared_injector.emplace(plan->shared());
        if (registry != nullptr) shared_injector->attach_metrics(registry);
        tag_injector_storage.reserve(n);
        for (const auto& schedule : plan->per_tag()) {
            tag_injector_storage.emplace_back(schedule);
        }
        std::vector<fault::fault_injector*> pointers;
        pointers.reserve(n);
        for (auto& injector : tag_injector_storage) pointers.push_back(&injector);
        sim.attach_fault_injector(&*shared_injector);
        sim.attach_tag_fault_injectors(std::move(pointers));
    }

    supervisor_config sup_cfg;
    sup_cfg.session = cfg.session;
    sup_cfg.slot_budget = cfg.slot_budget;
    sup_cfg.metrics = registry;
    std::vector<std::uint32_t> ids;
    ids.reserve(n);
    for (const auto& tag : population) ids.push_back(tag.id);
    network_supervisor supervisor(sup_cfg, ids);

    soak_trial_result result;
    result.trace.tag_count = n;
    result.trace.faulted_count = faulted ? cfg.faulted_count : 0;
    result.trace.rounds.reserve(cfg.rounds);
    result.delivered_per_tag.assign(n, 0);

    std::uint64_t burst_counter = 0;
    for (std::size_t round = 0; round < cfg.rounds; ++round) {
        const auto round_plan = supervisor.plan_round();
        round_record rec;
        rec.start_clock_s = sim.clock_s();
        rec.states.assign(n, 0);
        rec.scheduled.assign(n, 0);
        rec.delivered.assign(n, 0);
        rec.probed.assign(n, 0);
        rec.probe_ok.assign(n, 0);

        std::vector<bool> robust_tag(n, false);
        for (const std::uint32_t id : round_plan.robust) robust_tag[id] = true;

        struct slot_info {
            std::uint32_t tag = 0;
            bool probe = false;
        };
        std::vector<core::tag_burst> bursts;
        std::vector<slot_info> slots;
        double cursor = 0.0;
        for (const std::uint32_t id :
             mac::tdma_scheduler::interleave_shares(round_plan.shares)) {
            core::tag_burst burst;
            burst.tag_index = id;
            burst.payload = phy::random_bytes(
                cfg.payload_bytes, runtime::substream(tseed, ++burst_counter));
            burst.start_s = cursor;
            if (robust_tag[id]) burst.mcs = robust_mcs;
            cursor += robust_tag[id] ? robust_slot_s : data_slot_s;
            bursts.push_back(std::move(burst));
            slots.push_back({id, false});
            ++rec.scheduled[id];
        }
        for (const std::uint32_t id : round_plan.probes) {
            core::tag_burst burst;
            burst.tag_index = id;
            burst.payload = phy::random_bytes(
                probe_payload_bytes, runtime::substream(tseed, ++burst_counter));
            burst.start_s = cursor;
            burst.mcs = robust_mcs;
            cursor += probe_slot_s;
            bursts.push_back(std::move(burst));
            slots.push_back({id, true});
            rec.probed[id] = 1;
        }

        if (!bursts.empty()) {
            const auto outcomes = sim.run(bursts);
            for (std::size_t i = 0; i < outcomes.size(); ++i) {
                if (slots[i].probe) {
                    supervisor.record_probe(slots[i].tag, outcomes[i].delivered);
                    rec.probe_ok[slots[i].tag] = outcomes[i].delivered ? 1 : 0;
                } else {
                    const bool accepted =
                        supervisor.record_data(slots[i].tag, outcomes[i].delivered);
                    // A frame the AP discarded (tag quarantined mid-round on an
                    // earlier slot) does not count as delivered.
                    if (accepted && outcomes[i].delivered) {
                        ++rec.delivered[slots[i].tag];
                        ++result.delivered_per_tag[slots[i].tag];
                    }
                }
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            rec.states[i] =
                static_cast<std::uint8_t>(supervisor.session(ids[i]).state());
        }
        result.trace.rounds.push_back(std::move(rec));
    }

    for (std::size_t i = 0; i < n; ++i) {
        const auto& session = supervisor.session(ids[i]);
        for (const auto& t : session.transitions()) {
            result.trace.transitions.push_back({ids[i], t});
        }
        for (const std::size_t latency : session.readmit_latencies_rounds()) {
            result.trace.readmit_latencies_rounds.push_back(latency);
        }
    }
    result.trace.last_fault_end_s = faulted ? plan->last_fault_end_s() : 0.0;
    return result;
}

bool soak_report::all_passed() const
{
    if (invariants.empty()) return false;
    return std::all_of(invariants.begin(), invariants.end(),
                       [](const invariant_result& r) { return r.passed; });
}

runtime::json_value soak_report::to_json() const
{
    using runtime::json_value;
    auto doc = runtime::schema_object("mmtag.soak.result/1");
    doc.set("tags", json_value::unsigned_integer(tag_count));
    doc.set("faulted", json_value::unsigned_integer(faulted_count));
    doc.set("rounds", json_value::unsigned_integer(rounds));
    doc.set("trials", json_value::unsigned_integer(trials));
    doc.set("seed", json_value::unsigned_integer(seed));
    doc.set("fault_seed", json_value::unsigned_integer(fault_seed));
    auto delivered = json_value::array();
    for (const std::uint64_t d : delivered_per_tag) {
        delivered.push(json_value::unsigned_integer(d));
    }
    doc.set("delivered_per_tag", std::move(delivered));
    auto reference = json_value::array();
    for (const std::uint64_t d : reference_per_tag) {
        reference.push(json_value::unsigned_integer(d));
    }
    doc.set("reference_per_tag", std::move(reference));
    doc.set("transitions", json_value::unsigned_integer(transitions));
    doc.set("readmissions", json_value::unsigned_integer(readmissions));
    doc.set("max_readmit_rounds", json_value::unsigned_integer(max_readmit_rounds));
    doc.set("healthy_share_min_observed",
            healthy_share_min_observed >= 0.0
                ? json_value::number(healthy_share_min_observed)
                : json_value::null());
    auto checks = json_value::array();
    for (const auto& inv : invariants) {
        auto entry = json_value::object();
        entry.set("name", json_value::string(inv.name));
        entry.set("passed", json_value::boolean(inv.passed));
        entry.set("detail", json_value::string(inv.detail));
        checks.push(std::move(entry));
    }
    doc.set("invariants", std::move(checks));
    doc.set("passed", json_value::boolean(all_passed()));
    return doc;
}

namespace {

/// AND-fold one freshly evaluated invariant into the report slot, keeping
/// the first failure's detail (trials fold in order, so this is stable).
void fold_invariant(invariant_result& into, const invariant_result& from)
{
    if (into.passed && !from.passed) {
        into.passed = false;
        into.detail = from.detail;
    }
}

} // namespace

soak_report run_soak(const soak_config& cfg, runtime::thread_pool& pool,
                     obs::metrics_registry* metrics)
{
    if (cfg.trials == 0) throw std::invalid_argument("run_soak: trials must be >= 1");
    if (cfg.rounds == 0) throw std::invalid_argument("run_soak: rounds must be >= 1");
    if (cfg.faulted_count > cfg.tag_count) {
        throw std::invalid_argument("run_soak: faulted_count > tag_count");
    }

    struct task_output {
        soak_trial_result result;
        obs::metrics_registry registry;
    };
    // Task grid: [0, trials) = faulted arm, [trials, 2*trials) = reference.
    const std::size_t tasks = 2 * cfg.trials;
    const bool want_metrics = metrics != nullptr;
    auto outputs = runtime::ordered_parallel_results(
        pool, tasks, [&](std::size_t index) {
            task_output out;
            const bool faulted = index < cfg.trials;
            const std::size_t trial = faulted ? index : index - cfg.trials;
            out.result = run_soak_trial(cfg, trial, faulted,
                                        want_metrics ? &out.registry : nullptr);
            return out;
        });

    soak_report report;
    report.tag_count = cfg.tag_count;
    report.faulted_count = cfg.faulted_count;
    report.rounds = cfg.rounds;
    report.trials = cfg.trials;
    report.seed = cfg.seed;
    report.fault_seed = cfg.fault_seed;
    report.delivered_per_tag.assign(cfg.tag_count, 0);
    report.reference_per_tag.assign(cfg.tag_count, 0);
    report.invariants = {
        {"transition_legality", true, ""}, {"no_starvation", true, ""},
        {"frame_conservation", true, ""},  {"bounded_recovery", true, ""},
        {"graceful_degradation", true, ""},
    };

    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        const auto& faulted = outputs[trial].result;
        const auto& reference = outputs[cfg.trials + trial].result;
        for (std::size_t tag = 0; tag < cfg.tag_count; ++tag) {
            report.delivered_per_tag[tag] += faulted.delivered_per_tag[tag];
            report.reference_per_tag[tag] += reference.delivered_per_tag[tag];
        }
        report.transitions += faulted.trace.transitions.size();
        report.readmissions += faulted.trace.readmit_latencies_rounds.size();
        for (const std::size_t latency : faulted.trace.readmit_latencies_rounds) {
            report.max_readmit_rounds = std::max(report.max_readmit_rounds, latency);
        }

        // The four trace invariants audit both arms; degradation compares them.
        for (const auto* arm : {&faulted, &reference}) {
            fold_invariant(report.invariants[0],
                           check_transition_legality(arm->trace));
            fold_invariant(report.invariants[1],
                           check_no_starvation(arm->trace,
                                               cfg.starvation_window_rounds));
            fold_invariant(report.invariants[2],
                           check_frame_conservation(arm->trace,
                                                    arm->delivered_per_tag));
            fold_invariant(report.invariants[3],
                           check_bounded_recovery(arm->trace, cfg.session,
                                                  cfg.readmit_grace_factor));
        }
        fold_invariant(report.invariants[4],
                       check_graceful_degradation(
                           faulted.delivered_per_tag, reference.delivered_per_tag,
                           cfg.faulted_count, cfg.healthy_share_min));

        std::uint64_t healthy_faulted = 0;
        std::uint64_t healthy_reference = 0;
        for (std::size_t tag = cfg.faulted_count; tag < cfg.tag_count; ++tag) {
            healthy_faulted += faulted.delivered_per_tag[tag];
            healthy_reference += reference.delivered_per_tag[tag];
        }
        if (healthy_reference > 0) {
            const double share = static_cast<double>(healthy_faulted) /
                                 static_cast<double>(healthy_reference);
            report.healthy_share_min_observed =
                report.healthy_share_min_observed < 0.0
                    ? share
                    : std::min(report.healthy_share_min_observed, share);
        }
    }

    if (want_metrics) {
        for (const auto& out : outputs) metrics->merge(out.registry);
    }
    return report;
}

} // namespace mmtag::net
