# Empty dependencies file for bench_r19_blockage.
# This may be replaced when dependencies are built.
