// R23 — Scale-out network simulation: aggregate goodput, per-tag fairness,
// and re-admission latency as the tag population sweeps 100 -> 10,000 over
// four APs (extension). The calibrated phy_table + discrete-event engine
// replace the sample-accurate PHY, so ten thousand tags simulate in
// seconds. Expected shape: aggregate goodput climbs while TDMA slots remain
// available and then saturates as every AP round fills; Jain fairness stays
// near 1 until quarantine churn from the shared fault mix dominates the
// schedule at high density; re-admission latency grows with cell size
// because probe slots compete with data for round airtime.
//
// Trials fan out across the runtime thread pool inside scale::run_scale and
// fold in trial order; the emitted JSON is bit-identical for any --jobs.
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/runtime/sweep_runner.hpp"
#include "mmtag/runtime/thread_pool.hpp"
#include "mmtag/scale/des_engine.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    bench::banner("R23", "scale-out: goodput, fairness, re-admission vs tag count",
                  opts.csv);

    const std::vector<std::size_t> tag_counts{100, 300, 1000, 3000, 10000};
    const std::size_t aps = opts.extra_u64("aps", 4);
    const std::size_t frames = opts.extra_u64("frames", 30);
    const std::size_t trials = opts.extra_u64("trials", 1);
    const std::uint64_t fault_seed = opts.extra_u64("fault-seed", 42);

    std::vector<scale::scale_result> results_per_point;
    const auto start = std::chrono::steady_clock::now();
    std::size_t jobs_used = 1;
    for (const std::size_t tags : tag_counts) {
        scale::scale_config cfg;
        cfg.topology.tag_count = tags;
        cfg.topology.ap_count = aps;
        cfg.frames = frames;
        cfg.trials = trials;
        cfg.faulted = tags / 10;
        cfg.seed = opts.seed;
        cfg.fault_seed = fault_seed;
        auto result = scale::run_scale(cfg, opts.jobs);
        jobs_used = result.jobs;
        results_per_point.push_back(std::move(result));
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    runtime::result_writer results(
        "R23", "scale-out: goodput, fairness, re-admission vs tag count", {"tags"},
        opts.seed);
    bench::table out({"tags", "goodput_mbps", "fairness", "delivery", "readmissions",
                      "readmit_mean", "readmit_max"},
                     opts.csv);
    for (std::size_t i = 0; i < tag_counts.size(); ++i) {
        const auto& r = results_per_point[i];
        const double delivery =
            r.data_slots > 0 ? static_cast<double>(r.delivered) /
                                   static_cast<double>(r.data_slots)
                             : 0.0;
        out.add_row({bench::fmt("%.0f", static_cast<double>(tag_counts[i])),
                     bench::fmt("%.3f", r.goodput_bps() / 1e6),
                     bench::fmt("%.3f", r.fairness_index()),
                     bench::fmt("%.3f", delivery),
                     bench::fmt("%.0f", static_cast<double>(r.readmissions)),
                     bench::fmt("%.1f", r.readmit_latency_mean_rounds),
                     bench::fmt("%.0f", static_cast<double>(r.readmit_latency_max_rounds))});

        auto axis = runtime::json_value::object();
        axis.set("tags", runtime::json_value::unsigned_integer(tag_counts[i]));
        auto metrics = runtime::json_value::object();
        metrics.set("goodput_bps", runtime::json_value::number(r.goodput_bps()));
        metrics.set("fairness", runtime::json_value::number(r.fairness_index()));
        metrics.set("delivery_ratio", runtime::json_value::number(delivery));
        metrics.set("data_slots", runtime::json_value::unsigned_integer(r.data_slots));
        metrics.set("probe_slots", runtime::json_value::unsigned_integer(r.probe_slots));
        metrics.set("transitions", runtime::json_value::unsigned_integer(r.transitions));
        metrics.set("readmissions",
                    runtime::json_value::unsigned_integer(r.readmissions));
        metrics.set("readmit_latency_mean_rounds",
                    runtime::json_value::number(r.readmit_latency_mean_rounds));
        metrics.set("readmit_latency_max_rounds",
                    runtime::json_value::unsigned_integer(r.readmit_latency_max_rounds));
        metrics.set("sim_time_s", runtime::json_value::number(r.sim_time_s));
        char hash_hex[17];
        std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                      static_cast<unsigned long long>(r.event_log_hash));
        metrics.set("event_log_hash", runtime::json_value::string(hash_hex));
        results.add_point(std::move(axis), trials, std::move(metrics));
    }
    out.print();

    std::size_t tasks = 0;
    for (const std::size_t tags : tag_counts) tasks += trials * (1 + tags / 1000);
    const auto written =
        results.write(opts.json_path, wall_s, jobs_used,
                      wall_s > 0.0 ? static_cast<double>(tasks) / wall_s : 0.0);
    if (!opts.csv) {
        std::printf("\n%s\n",
                    runtime::summary_line(tag_counts.size(), trials * tag_counts.size(),
                                          wall_s, jobs_used)
                        .c_str());
        if (!written.empty()) std::printf("wrote %s\n", written.c_str());
    }
    return 0;
}
