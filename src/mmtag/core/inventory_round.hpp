// Sample-accurate inventory: the framed-slotted-ALOHA discovery protocol run
// over real superposed RF instead of the slot-level abstraction. Each round,
// every unidentified tag draws a slot and backscatters its ID frame there;
// collisions corrupt at the waveform level (no collision oracle), singleton
// slots decode through the full receiver. This is the ground truth the
// mac::aloha_inventory model is validated against.
#pragma once

#include <cstdint>
#include <vector>

#include "mmtag/core/multitag_simulator.hpp"

namespace mmtag::core {

struct sampled_inventory_config {
    unsigned slot_exponent = 2; ///< 2^Q slots per round
    std::size_t max_rounds = 8;
    /// Guard time appended to each slot beyond the burst airtime.
    double slot_guard_s = 20e-6;
};

struct sampled_inventory_result {
    std::size_t tags_total = 0;
    std::size_t rounds = 0;
    std::size_t slots_used = 0;
    std::size_t collision_slots = 0;
    std::size_t idle_slots = 0;
    std::vector<std::uint32_t> identified_ids;

    [[nodiscard]] bool complete() const { return identified_ids.size() == tags_total; }
};

/// Runs sampled inventory over `tags` until everyone is identified or
/// `max_rounds` elapse. A tag counts as identified when the AP decodes a
/// frame whose payload is exactly that tag's 4-byte big-endian ID.
[[nodiscard]] sampled_inventory_result run_sampled_inventory(
    const system_config& base, const std::vector<tag_descriptor>& tags,
    const sampled_inventory_config& cfg, std::uint64_t seed);

} // namespace mmtag::core
