// Tests for the extension subsystems: independent-LO receiver ablation,
// tag-path fading, and the sample-level multi-tag simulator.
#include <gtest/gtest.h>

#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/multitag_simulator.hpp"
#include "mmtag/dsp/estimators.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::core {
namespace {

// Shared 50 MS/s preset from the library.
using core::fast_scenario;

TEST(lo_mode, independent_lo_with_ideal_synthesizers_still_works)
{
    // Zero CFO *and* zero phase noise on both sides: an independent LO is
    // then indistinguishable from self-coherent operation.
    auto cfg = fast_scenario();
    cfg.transmitter.lo_linewidth_hz = 0.0;
    cfg.receiver.lo = ap::lo_mode::independent;
    cfg.receiver.independent_cfo_hz = 0.0;
    cfg.receiver.independent_linewidth_hz = 0.0;
    link_simulator sim(cfg);
    const auto report = sim.run_trials(5, 32);
    EXPECT_DOUBLE_EQ(report.per, 0.0);
}

TEST(lo_mode, independent_lo_exposes_tx_phase_noise)
{
    // With a separate RX synthesizer, the TX oscillator's random walk is no
    // longer common-mode: the "static" interference wanders during the
    // capture and cancellation degrades — even at zero CFO.
    auto cfg = fast_scenario();
    cfg.transmitter.lo_linewidth_hz = 1e3;
    cfg.receiver.lo = ap::lo_mode::independent;
    cfg.receiver.independent_cfo_hz = 0.0;
    cfg.receiver.independent_linewidth_hz = 0.0;
    link_simulator independent(cfg);
    const auto independent_report = independent.run_trials(5, 32);

    auto coherent = cfg;
    coherent.receiver.lo = ap::lo_mode::self_coherent;
    link_simulator shared(coherent);
    const auto shared_report = shared.run_trials(5, 32);

    EXPECT_DOUBLE_EQ(shared_report.per, 0.0);
    EXPECT_GT(shared_report.mean_snr_db, independent_report.mean_snr_db + 10.0);
}

TEST(lo_mode, cfo_breaks_static_cancellation)
{
    // The ablation that justifies the self-coherent architecture: with a
    // separate LO at even 10 kHz CFO the "static" interference rotates
    // through the capture and the background estimate no longer removes it.
    auto self_coherent = fast_scenario();
    link_simulator good(self_coherent);
    const auto good_report = good.run_trials(5, 32);

    auto independent = fast_scenario();
    independent.receiver.lo = ap::lo_mode::independent;
    independent.receiver.independent_cfo_hz = 10e3;
    link_simulator bad(independent);
    const auto bad_report = bad.run_trials(5, 32);

    EXPECT_DOUBLE_EQ(good_report.per, 0.0);
    EXPECT_GT(good_report.mean_snr_db, bad_report.mean_snr_db + 6.0);
}

TEST(fading, los_default_has_unit_coefficient)
{
    auto cfg = fast_scenario();
    const channel::backscatter_channel chan(make_channel_config(cfg));
    EXPECT_NEAR(std::abs(chan.fading_coefficient() - cf64{1.0, 0.0}), 0.0, 1e-12);
}

TEST(fading, redraw_changes_coefficient)
{
    auto cfg = fast_scenario();
    cfg.rician_k_db = 3.0;
    channel::backscatter_channel chan(make_channel_config(cfg));
    const cf64 first = chan.fading_coefficient();
    chan.redraw_fading(999);
    EXPECT_GT(std::abs(chan.fading_coefficient() - first), 1e-6);
}

TEST(fading, mean_power_preserved_over_draws)
{
    auto cfg = fast_scenario();
    cfg.rician_k_db = 6.0;
    channel::backscatter_channel chan(make_channel_config(cfg));
    double power = 0.0;
    constexpr int draws = 4000;
    for (int i = 0; i < draws; ++i) {
        chan.redraw_fading(static_cast<std::uint64_t>(i));
        power += std::norm(chan.fading_coefficient());
    }
    EXPECT_NEAR(power / draws, 1.0, 0.05);
}

TEST(fading, fading_swings_per_frame_snr)
{
    // LOS frames all measure the same SNR; near-Rayleigh fading (K = -10 dB)
    // must swing per-frame SNR by many dB, with deep dips (> 3 dB below the
    // LOS value) appearing with ~40% probability per frame.
    auto los = fast_scenario();
    los.distance_m = 6.0;
    link_simulator clean(los);
    dsp::running_stats los_snr;
    for (int f = 0; f < 6; ++f) {
        los_snr.add(clean.run_frame(phy::random_bytes(24, 50 + f)).rx.snr_db);
    }
    EXPECT_LT(los_snr.standard_deviation(), 1.0);

    auto faded = los;
    faded.rician_k_db = -10.0;
    link_simulator fading_sim(faded);
    dsp::running_stats faded_snr;
    std::size_t dips = 0;
    for (int f = 0; f < 16; ++f) {
        const auto result = fading_sim.run_frame(phy::random_bytes(24, 90 + f));
        faded_snr.add(result.rx.snr_db);
        if (result.rx.snr_db < los_snr.mean() - 3.0) ++dips;
    }
    EXPECT_GT(faded_snr.standard_deviation(), 2.0);
    EXPECT_GE(dips, 2u); // P(no dip in 16 Rayleigh draws) ~ 0.6^16 ~ 3e-4
}

class multitag_fixture : public ::testing::Test {
protected:
    static multitag_simulator make(std::size_t tag_count)
    {
        std::vector<tag_descriptor> tags;
        for (std::uint32_t i = 0; i < tag_count; ++i) {
            tags.push_back({i, 2.0 + 0.5 * static_cast<double>(i), 0.0});
        }
        return multitag_simulator(fast_scenario(), std::move(tags));
    }
};

TEST_F(multitag_fixture, separated_slots_both_decode)
{
    auto sim = make(2);
    const double slot = sim.burst_duration_s(24) + 20e-6;
    const std::vector<tag_burst> bursts{
        {0, phy::random_bytes(24, 1), 0.0},
        {1, phy::random_bytes(24, 2), slot},
    };
    const auto outcomes = sim.run(bursts);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].delivered);
    EXPECT_TRUE(outcomes[1].delivered);
}

TEST_F(multitag_fixture, full_overlap_of_equal_tags_collides)
{
    std::vector<tag_descriptor> tags{{0, 2.0, 0.0}, {1, 2.0, 0.0}};
    multitag_simulator sim(fast_scenario(), tags);
    const std::vector<tag_burst> bursts{
        {0, phy::random_bytes(24, 3), 0.0},
        {1, phy::random_bytes(24, 4), 0.0},
    };
    const auto outcomes = sim.run(bursts);
    // Comparable-power overlap: at most one side can survive, and for equal
    // links both should normally corrupt.
    EXPECT_FALSE(outcomes[0].delivered && outcomes[1].delivered);
}

TEST_F(multitag_fixture, capture_effect_with_power_disparity)
{
    // A 1.5 m tag is ~16 dB stronger than a 5 m tag; the strong one should
    // survive a collision (capture), the weak one cannot.
    std::vector<tag_descriptor> tags{{0, 1.5, 0.0}, {1, 5.0, 0.0}};
    multitag_simulator sim(fast_scenario(), tags);
    const std::vector<tag_burst> bursts{
        {0, phy::random_bytes(24, 5), 0.0},
        {1, phy::random_bytes(24, 6), 0.0},
    };
    const auto outcomes = sim.run(bursts);
    EXPECT_TRUE(outcomes[0].delivered);
    EXPECT_FALSE(outcomes[1].delivered);
}

TEST_F(multitag_fixture, single_tag_matches_link_simulator)
{
    auto sim = make(1);
    const auto payload = phy::random_bytes(32, 7);
    const auto outcomes = sim.run({{0, payload, 0.0}});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].delivered);
    EXPECT_GT(outcomes[0].snr_db, 25.0);
}

TEST_F(multitag_fixture, validation)
{
    auto sim = make(2);
    EXPECT_THROW((void)sim.run({{5, phy::random_bytes(8, 1), 0.0}}), std::invalid_argument);
    EXPECT_THROW(multitag_simulator(fast_scenario(), {}), std::invalid_argument);
}

} // namespace
} // namespace mmtag::core
