// Repetition code — the fallback rate for deep-fade / long-range operation
// and the simplest possible tag-side redundancy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mmtag::fec {

/// Repeats each bit `factor` times (factor >= 1).
[[nodiscard]] std::vector<std::uint8_t> repetition_encode(std::span<const std::uint8_t> bits,
                                                          std::size_t factor);

/// Majority-vote decode; `factor` must be odd so votes cannot tie, and the
/// input length must be a multiple of factor.
[[nodiscard]] std::vector<std::uint8_t> repetition_decode(std::span<const std::uint8_t> bits,
                                                          std::size_t factor);

/// Soft combining decode: sums soft values (sign => bit, positive = 0).
[[nodiscard]] std::vector<std::uint8_t> repetition_decode_soft(std::span<const double> soft_bits,
                                                               std::size_t factor);

} // namespace mmtag::fec
