#include <gtest/gtest.h>

#include "mmtag/ap/canceller.hpp"
#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/ap/transmitter.hpp"
#include "mmtag/dsp/estimators.hpp"

namespace mmtag::ap {
namespace {

TEST(transmitter, radiates_requested_power)
{
    ap_transmitter::config cfg;
    cfg.tx_power_dbm = 27.0;
    cfg.sample_rate_hz = 250e6;
    cfg.lo_linewidth_hz = 0.0;
    cfg.pa.gain_db = 30.0;
    cfg.pa.output_saturation_dbm = 33.0;
    ap_transmitter tx(cfg, 1);
    const auto query = tx.generate(1000);
    EXPECT_NEAR(watt_to_dbm(dsp::mean_power(query.rf)), 27.0, 0.1);
    EXPECT_NEAR(dsp::mean_power(query.lo), 1.0, 1e-9);
}

TEST(transmitter, rejects_power_beyond_saturation)
{
    ap_transmitter::config cfg;
    cfg.tx_power_dbm = 40.0;
    cfg.pa.output_saturation_dbm = 33.0;
    EXPECT_THROW(ap_transmitter(cfg, 1), simulation_error);
}

TEST(transmitter, lo_and_rf_phase_locked)
{
    ap_transmitter::config cfg;
    cfg.tx_power_dbm = 20.0;
    cfg.lo_linewidth_hz = 5e3; // noisy synthesizer
    ap_transmitter tx(cfg, 2);
    const auto query = tx.generate(5000);
    // rf / lo must be a constant real scalar despite phase noise.
    for (std::size_t i = 0; i < query.rf.size(); ++i) {
        const cf64 ratio = query.rf[i] / query.lo[i];
        EXPECT_NEAR(ratio.imag(), 0.0, 1e-9);
        EXPECT_NEAR(ratio.real(), std::sqrt(dbm_to_watt(20.0)), 1e-3);
    }
}

TEST(canceller, background_subtract_removes_static_interference)
{
    self_interference_canceller canceller; // default: background_subtract
    // Static leakage DC throughout; the tag starts modulating only after the
    // quiet leading window (as the turnaround guarantees in a real exchange).
    cvec baseband(4000);
    for (std::size_t i = 0; i < baseband.size(); ++i) {
        const double tag = (i < 500) ? 0.0 : ((i / 20) % 2 == 0 ? 1e-3 : -1e-3);
        baseband[i] = cf64{0.5, 0.2} + cf64{tag, 0.0};
    }
    const cvec out = canceller.process(baseband);
    EXPECT_NEAR(std::abs(canceller.background_estimate() - cf64{0.5, 0.2}), 0.0, 1e-9);
    // Residual is exactly the +-1e-3 modulation, not the 0.54 DC.
    const std::span<const cf64> tail{out.data() + 1000, 3000};
    EXPECT_NEAR(dsp::rms(tail), 1e-3, 1e-5);
    EXPECT_LT(canceller.last_suppression_db(), -45.0);
}

TEST(canceller, mean_subtract_removes_dc_with_bias)
{
    self_interference_canceller::config cfg;
    cfg.mode = cancellation_mode::mean_subtract;
    self_interference_canceller canceller(cfg);
    cvec baseband(4000);
    for (std::size_t i = 0; i < baseband.size(); ++i) {
        const double tag = (i / 20) % 2 == 0 ? 1e-3 : -1e-3;
        baseband[i] = cf64{0.5, 0.2} + cf64{tag, 0.0};
    }
    const cvec out = canceller.process(baseband);
    const std::span<const cf64> tail{out.data() + 1000, 3000};
    EXPECT_LT(dsp::rms(tail), 5e-3);
    EXPECT_GT(dsp::rms(tail), 0.5e-3);
    EXPECT_LT(canceller.last_suppression_db(), -40.0);
}

TEST(canceller, training_fraction_validated)
{
    self_interference_canceller::config cfg;
    cfg.training_fraction = 0.0;
    EXPECT_THROW(self_interference_canceller{cfg}, std::invalid_argument);
}

TEST(canceller, off_mode_passthrough)
{
    self_interference_canceller::config cfg;
    cfg.mode = cancellation_mode::off;
    self_interference_canceller canceller(cfg);
    const cvec in(100, cf64{0.3, -0.1});
    const cvec out = canceller.process(in);
    for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], in[i]);
    EXPECT_NEAR(canceller.last_suppression_db(), 0.0, 1e-9);
}

TEST(canceller, preserves_offset_tone)
{
    // A tone away from DC (the tag's modulated spectrum) must pass.
    self_interference_canceller canceller;
    cvec in(8000);
    for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = std::polar(1.0, two_pi * 0.05 * static_cast<double>(i));
    }
    const cvec out = canceller.process(in);
    const std::span<const cf64> tail{out.data() + 4000, 4000};
    EXPECT_NEAR(dsp::rms(tail), 1.0, 0.05);
}

TEST(rate_adaptation, table_is_monotone)
{
    const auto& table = rate_table();
    for (std::size_t i = 1; i < table.size(); ++i) {
        EXPECT_GT(table[i].efficiency(), table[i - 1].efficiency());
        EXPECT_GT(table[i].required_snr_db, table[i - 1].required_snr_db);
    }
}

TEST(rate_adaptation, selects_by_snr)
{
    rate_adapter adapter(2.0);
    // Very low SNR: most robust option.
    EXPECT_EQ(adapter.select(-5.0).scheme, phy::modulation::bpsk);
    // Very high SNR: densest option.
    const auto best = adapter.select(40.0);
    EXPECT_EQ(best.scheme, phy::modulation::psk16);
    EXPECT_EQ(best.fec, phy::fec_mode::uncoded);
    // Mid SNR selects something in between.
    const auto mid = adapter.select(10.0);
    EXPECT_GT(mid.efficiency(), adapter.select(-5.0).efficiency());
    EXPECT_LT(mid.efficiency(), best.efficiency());
}

TEST(rate_adaptation, margin_is_respected)
{
    rate_adapter tight(0.0);
    rate_adapter cautious(6.0);
    const double snr = 13.0;
    EXPECT_GE(tight.select(snr).efficiency(), cautious.select(snr).efficiency());
}

TEST(rate_adaptation, smoothing_filters_outliers)
{
    rate_adapter adapter(2.0);
    (void)adapter.select_smoothed(20.0);
    for (int i = 0; i < 10; ++i) (void)adapter.select_smoothed(20.0);
    // One deep outlier cannot crash the average to the bottom.
    const auto option = adapter.select_smoothed(-10.0);
    EXPECT_GT(adapter.smoothed_snr_db(), 10.0);
    EXPECT_GT(option.efficiency(), 1.0);
}

} // namespace
} // namespace mmtag::ap
