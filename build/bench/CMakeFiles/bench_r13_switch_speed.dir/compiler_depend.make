# Empty compiler generated dependencies file for bench_r13_switch_speed.
# This may be replaced when dependencies are built.
