#include "mmtag/phy/line_code.hpp"

#include <stdexcept>

#include "mmtag/dsp/fft.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::phy {

namespace {

/// Shared encoder/decoder state machine. FM0 and Miller are both defined by
/// "what do the half-bit levels look like for (state, bit)" plus a state
/// update; expressing them once keeps encode and decode consistent.
struct coder_state {
    int level = 1;       // FM0: current line level; Miller: current phase
    int previous_bit = 1; // Miller: consecutive-zero rule
};

/// Emits the two half-bit levels for one data bit and updates state.
void half_levels(line_code code, coder_state& state, unsigned bit, int halves[2])
{
    switch (code) {
    case line_code::nrz:
        halves[0] = bit ? -1 : 1;
        halves[1] = halves[0];
        return;
    case line_code::fm0:
        state.level = -state.level; // invert at every bit boundary
        halves[0] = state.level;
        if (bit == 0) state.level = -state.level; // extra mid-bit inversion
        halves[1] = state.level;
        return;
    case line_code::miller2:
    case line_code::miller4:
        // Miller baseband: 1 -> mid-bit inversion; 0 after 0 -> boundary
        // inversion; 0 after 1 -> no inversion.
        if (bit == 0 && state.previous_bit == 0) state.level = -state.level;
        halves[0] = state.level;
        if (bit == 1) state.level = -state.level;
        halves[1] = state.level;
        state.previous_bit = static_cast<int>(bit);
        return;
    }
    throw std::invalid_argument("line_code: unknown code");
}

std::size_t subcarrier_cycles(line_code code)
{
    switch (code) {
    case line_code::miller2: return 2;
    case line_code::miller4: return 4;
    default: return 0;
    }
}

/// Chip pattern for one bit given the pre-bit state (state is updated).
void bit_chips(line_code code, coder_state& state, unsigned bit, int* out)
{
    int halves[2];
    half_levels(code, state, bit, halves);
    const std::size_t n = chips_per_bit(code);
    const std::size_t cycles = subcarrier_cycles(code);
    if (cycles == 0) {
        for (std::size_t c = 0; c < n; ++c) out[c] = halves[c * 2 / n];
        return;
    }
    // Subcarrier: alternate every chip (2 * cycles chips per bit).
    for (std::size_t c = 0; c < n; ++c) {
        const int sub = (c % 2 == 0) ? 1 : -1;
        out[c] = halves[c < n / 2 ? 0 : 1] * sub;
    }
}

} // namespace

const char* line_code_name(line_code code)
{
    switch (code) {
    case line_code::nrz: return "NRZ";
    case line_code::fm0: return "FM0";
    case line_code::miller2: return "Miller-2";
    case line_code::miller4: return "Miller-4";
    }
    throw std::invalid_argument("line_code_name: unknown code");
}

std::size_t chips_per_bit(line_code code)
{
    switch (code) {
    case line_code::nrz: return 1;
    case line_code::fm0: return 2;
    case line_code::miller2: return 4;
    case line_code::miller4: return 8;
    }
    throw std::invalid_argument("chips_per_bit: unknown code");
}

std::vector<int> encode_line_code(std::span<const std::uint8_t> bits, line_code code)
{
    const std::size_t n = chips_per_bit(code);
    std::vector<int> chips(bits.size() * n);
    coder_state state;
    for (std::size_t b = 0; b < bits.size(); ++b) {
        bit_chips(code, state, bits[b] & 1u, &chips[b * n]);
    }
    return chips;
}

std::vector<std::uint8_t> decode_line_code(std::span<const double> chips, line_code code)
{
    const std::size_t n = chips_per_bit(code);
    if (chips.size() % n != 0) {
        throw std::invalid_argument("decode_line_code: length must be whole bits");
    }
    std::vector<std::uint8_t> bits;
    bits.reserve(chips.size() / n);
    coder_state state;
    const std::size_t cycles = subcarrier_cycles(code);
    std::vector<int> hypothesis(n);
    for (std::size_t b = 0; b < chips.size() / n; ++b) {
        double best_metric = -1e300;
        unsigned best_bit = 0;
        coder_state best_state{};
        for (unsigned candidate = 0; candidate <= 1; ++candidate) {
            coder_state trial = state;
            bit_chips(code, trial, candidate, hypothesis.data());
            double metric = 0.0;
            for (std::size_t c = 0; c < n; ++c) {
                metric += chips[b * n + c] * static_cast<double>(hypothesis[c]);
            }
            if (metric > best_metric) {
                best_metric = metric;
                best_bit = candidate;
                best_state = trial;
            }
        }
        bits.push_back(static_cast<std::uint8_t>(best_bit));
        state = best_state;

        // Re-anchor the level state to the *observed* second half-bit so a
        // single wrong decision cannot invert every later hypothesis.
        if (code != line_code::nrz) {
            double second_half = 0.0;
            for (std::size_t c = n / 2; c < n; ++c) {
                const double sub = (cycles == 0 || c % 2 == 0) ? 1.0 : -1.0;
                second_half += chips[b * n + c] * sub;
            }
            const double observed_level = second_half;
            // FM0's state is the level *after* the bit == second-half level;
            // Miller's phase update already happened in bit_chips, and the
            // post-bit phase equals second-half level for 0 and its negation
            // for 1 (mid-bit inversion happened before the second half)...
            // which is exactly what trial-state holds; only its sign can be
            // wrong, so copy the observed sign through the same relation.
            if (std::abs(observed_level) > 1e-9) {
                const int sign = observed_level > 0.0 ? 1 : -1;
                if (code == line_code::fm0) {
                    state.level = sign;
                } else {
                    // Miller: second-half baseband equals the post-bit phase
                    // for both bit values (1 inverts before the second half).
                    state.level = sign;
                }
            }
        }
    }
    return bits;
}

double dc_power_fraction(line_code code, double band_fraction, std::size_t probe_bits,
                         std::uint64_t seed)
{
    if (!(band_fraction > 0.0 && band_fraction < 0.5)) {
        throw std::invalid_argument("dc_power_fraction: band must be in (0, 0.5)");
    }
    const auto bits = random_bits(probe_bits, seed);
    const auto chips = encode_line_code(bits, code);
    cvec waveform(chips.size());
    for (std::size_t i = 0; i < chips.size(); ++i) {
        waveform[i] = cf64{static_cast<double>(chips[i]), 0.0};
    }
    const rvec spectrum = dsp::power_spectrum(waveform);
    const std::size_t n = spectrum.size();
    const auto band_bins = static_cast<std::size_t>(band_fraction * static_cast<double>(n));
    double in_band = spectrum[0];
    for (std::size_t k = 1; k <= band_bins; ++k) {
        in_band += spectrum[k] + spectrum[n - k];
    }
    double total = 0.0;
    for (double p : spectrum) total += p;
    return in_band / total;
}

double transitions_per_bit(line_code code, std::size_t probe_bits, std::uint64_t seed)
{
    const auto bits = random_bits(probe_bits, seed);
    const auto chips = encode_line_code(bits, code);
    std::size_t transitions = 0;
    for (std::size_t i = 1; i < chips.size(); ++i) {
        if (chips[i] != chips[i - 1]) ++transitions;
    }
    return static_cast<double>(transitions) / static_cast<double>(probe_bits);
}

} // namespace mmtag::phy
