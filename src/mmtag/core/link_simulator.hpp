// End-to-end single-link simulator: AP transmitter -> backscatter channel ->
// tag modulator -> channel -> AP receiver, sample-accurate. This is the
// harness every PHY-level experiment (R2-R8, R12-R14) drives.
#pragma once

#include <cstdint>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/core/metrics.hpp"

namespace mmtag::fault {
class fault_injector;
}

namespace mmtag::obs {
class metrics_registry;
}

namespace mmtag::core {

class link_simulator {
public:
    explicit link_simulator(const system_config& cfg);

    [[nodiscard]] const system_config& parameters() const { return cfg_; }

    /// Attaches a fault injector consulted once per frame window (nullptr
    /// detaches). The injector is not owned and must outlive the simulator.
    void attach_fault_injector(fault::fault_injector* injector) { faults_ = injector; }

    /// Attaches an observability registry fed once per frame (frame/SNR/
    /// suppression counters and histograms, scoped timers). nullptr detaches;
    /// not owned, must outlive the simulator. With no registry attached the
    /// per-frame cost is a null check.
    void attach_metrics(obs::metrics_registry* metrics) { metrics_ = metrics; }

    /// Simulated link time: the sum of all capture windows plus any idle
    /// time advanced explicitly (supervisor backoff, reacquisition).
    [[nodiscard]] double clock_s() const { return clock_s_; }
    void advance_clock(double dt_s);

    /// Switches the live (modulation, FEC) pair — the hook rate adaptation
    /// and the link supervisor's MCS fallback drive mid-session.
    void set_rate(phy::modulation scheme, phy::fec_mode fec);

    struct frame_result {
        ap::reception rx;
        bool delivered = false;
        std::size_t bit_errors = 0;
        std::size_t bits = 0;
        double tag_energy_j = 0.0;
        double airtime_s = 0.0;
        double start_s = 0.0;      ///< link clock at the start of the window
        double elapsed_s = 0.0;    ///< full capture window duration
        bool fault_active = false; ///< an injected fault overlapped the window
    };

    /// Runs one complete frame exchange.
    [[nodiscard]] frame_result run_frame(std::span<const std::uint8_t> payload);

    /// Runs `frames` exchanges with fresh random payloads of `payload_bytes`
    /// and aggregates the metrics.
    [[nodiscard]] link_report run_trials(std::size_t frames, std::size_t payload_bytes);

    /// Raw access for microbenchmarks: the receiver's view of one frame
    /// without decoding (normalized symbols after sync), or empty when sync
    /// fails.
    [[nodiscard]] cvec capture_symbols(std::span<const std::uint8_t> payload);

private:
    system_config cfg_;
    channel::backscatter_channel channel_;
    tag::backscatter_modulator modulator_;
    tag::energy_model energy_;
    ap::ap_transmitter transmitter_;
    ap::ap_receiver receiver_;
    fault::fault_injector* faults_ = nullptr;
    obs::metrics_registry* metrics_ = nullptr;
    double clock_s_ = 0.0;
    std::uint64_t trial_ = 0;
};

} // namespace mmtag::core
