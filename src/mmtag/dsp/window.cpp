#include "mmtag/dsp/window.hpp"

#include <stdexcept>

namespace mmtag::dsp {

namespace {

// Generalized cosine window: w[n] = sum_k (-1)^k a[k] cos(2 pi k n / (N-1)).
rvec cosine_window(std::span<const double> coefficients, std::size_t length)
{
    rvec window(length);
    if (length == 1) {
        window[0] = 1.0;
        return window;
    }
    for (std::size_t n = 0; n < length; ++n) {
        const double x = two_pi * static_cast<double>(n) / static_cast<double>(length - 1);
        double value = 0.0;
        double sign = 1.0;
        for (std::size_t k = 0; k < coefficients.size(); ++k) {
            value += sign * coefficients[k] * std::cos(static_cast<double>(k) * x);
            sign = -sign;
        }
        window[n] = value;
    }
    return window;
}

} // namespace

rvec make_window(window_kind kind, std::size_t length)
{
    if (length == 0) throw std::invalid_argument("make_window: length must be >= 1");
    switch (kind) {
    case window_kind::rectangular:
        return rvec(length, 1.0);
    case window_kind::hann: {
        const double a[] = {0.5, 0.5};
        return cosine_window(a, length);
    }
    case window_kind::hamming: {
        const double a[] = {0.54, 0.46};
        return cosine_window(a, length);
    }
    case window_kind::blackman: {
        const double a[] = {0.42, 0.5, 0.08};
        return cosine_window(a, length);
    }
    case window_kind::blackman_harris: {
        const double a[] = {0.35875, 0.48829, 0.14128, 0.01168};
        return cosine_window(a, length);
    }
    }
    throw std::invalid_argument("make_window: unknown window kind");
}

double coherent_gain(std::span<const double> window)
{
    double sum = 0.0;
    for (double w : window) sum += w;
    return sum;
}

double noise_bandwidth_bins(std::span<const double> window)
{
    if (window.empty()) throw std::invalid_argument("noise_bandwidth_bins: empty window");
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double w : window) {
        sum += w;
        sum_sq += w * w;
    }
    return static_cast<double>(window.size()) * sum_sq / (sum * sum);
}

} // namespace mmtag::dsp
