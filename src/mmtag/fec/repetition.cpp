#include "mmtag/fec/repetition.hpp"

#include <stdexcept>

namespace mmtag::fec {

std::vector<std::uint8_t> repetition_encode(std::span<const std::uint8_t> bits, std::size_t factor)
{
    if (factor == 0) throw std::invalid_argument("repetition_encode: factor must be >= 1");
    std::vector<std::uint8_t> out;
    out.reserve(bits.size() * factor);
    for (std::uint8_t bit : bits) {
        for (std::size_t k = 0; k < factor; ++k) out.push_back(bit & 1u);
    }
    return out;
}

std::vector<std::uint8_t> repetition_decode(std::span<const std::uint8_t> bits, std::size_t factor)
{
    if (factor == 0 || factor % 2 == 0) {
        throw std::invalid_argument("repetition_decode: factor must be odd");
    }
    if (bits.size() % factor != 0) {
        throw std::invalid_argument("repetition_decode: length must be a multiple of factor");
    }
    std::vector<std::uint8_t> out;
    out.reserve(bits.size() / factor);
    for (std::size_t i = 0; i < bits.size(); i += factor) {
        std::size_t ones = 0;
        for (std::size_t k = 0; k < factor; ++k) ones += bits[i + k] & 1u;
        out.push_back(ones * 2 > factor ? 1 : 0);
    }
    return out;
}

std::vector<std::uint8_t> repetition_decode_soft(std::span<const double> soft_bits,
                                                 std::size_t factor)
{
    if (factor == 0) throw std::invalid_argument("repetition_decode_soft: factor must be >= 1");
    if (soft_bits.size() % factor != 0) {
        throw std::invalid_argument("repetition_decode_soft: length must be a multiple of factor");
    }
    std::vector<std::uint8_t> out;
    out.reserve(soft_bits.size() / factor);
    for (std::size_t i = 0; i < soft_bits.size(); i += factor) {
        double acc = 0.0;
        for (std::size_t k = 0; k < factor; ++k) acc += soft_bits[i + k];
        out.push_back(acc < 0.0 ? 1 : 0);
    }
    return out;
}

} // namespace mmtag::fec
