#include <gtest/gtest.h>

#include "mmtag/dsp/estimators.hpp"
#include "mmtag/rf/adc.hpp"
#include "mmtag/rf/amplifier.hpp"
#include "mmtag/rf/mixer.hpp"
#include "mmtag/rf/noise.hpp"
#include "mmtag/rf/oscillator.hpp"

namespace mmtag::rf {
namespace {

TEST(noise, thermal_power_minus_174_dbm_per_hz)
{
    EXPECT_NEAR(thermal_noise_dbm(1.0), -173.98, 0.05);
    EXPECT_NEAR(thermal_noise_dbm(1e6), -113.98, 0.05);
}

TEST(noise, cascade_friis_first_stage_dominates)
{
    // LNA: 3 dB NF / 20 dB gain, then a lossy mixer (7 dB NF, -7 dB gain).
    const rvec nf{3.0, 7.0};
    const rvec gain{20.0, -7.0};
    const double total = cascade_noise_figure_db(nf, gain);
    EXPECT_GT(total, 3.0);
    EXPECT_LT(total, 3.3); // first stage gain suppresses the mixer's NF
}

TEST(noise, awgn_power_matches_request)
{
    awgn_source source(0.25, 5);
    cvec buffer(200000, cf64{});
    source.add_to(buffer);
    EXPECT_NEAR(dsp::mean_power(buffer), 0.25, 0.01);
}

TEST(noise, awgn_is_circular)
{
    awgn_source source(1.0, 6);
    double i_power = 0.0;
    double q_power = 0.0;
    double cross = 0.0;
    constexpr int n = 100000;
    for (int k = 0; k < n; ++k) {
        const cf64 s = source.sample();
        i_power += s.real() * s.real();
        q_power += s.imag() * s.imag();
        cross += s.real() * s.imag();
    }
    EXPECT_NEAR(i_power / n, 0.5, 0.02);
    EXPECT_NEAR(q_power / n, 0.5, 0.02);
    EXPECT_NEAR(cross / n, 0.0, 0.02);
}

TEST(oscillator, cfo_rotation_rate)
{
    oscillator::config cfg;
    cfg.sample_rate_hz = 1e6;
    cfg.frequency_offset_hz = 1000.0;
    oscillator lo(cfg, 7);
    // After 250 samples (250 us) the phase should advance 2 pi * 0.25.
    cf64 first = lo.step();
    cf64 last{};
    for (int i = 0; i < 250; ++i) last = lo.step();
    const double advance = std::arg(last * std::conj(first));
    EXPECT_NEAR(advance, two_pi * 1000.0 * 250e-6, 1e-6);
}

TEST(oscillator, phase_noise_grows_with_linewidth)
{
    auto phase_drift = [](double linewidth) {
        oscillator::config cfg;
        cfg.sample_rate_hz = 1e8;
        cfg.linewidth_hz = linewidth;
        oscillator lo(cfg, 11);
        dsp::running_stats drift;
        for (int trial = 0; trial < 200; ++trial) {
            const double start = lo.phase();
            for (int i = 0; i < 1000; ++i) (void)lo.step();
            drift.add(wrap_phase(lo.phase() - start));
        }
        return drift.variance();
    };
    EXPECT_GT(phase_drift(1e5), phase_drift(1e3) * 10.0);
}

TEST(oscillator, zero_linewidth_is_deterministic)
{
    oscillator::config cfg;
    cfg.sample_rate_hz = 1e6;
    cfg.frequency_offset_hz = 0.0;
    oscillator lo(cfg, 13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_NEAR(std::abs(lo.step() - cf64{1.0, 0.0}), 0.0, 1e-12);
    }
}

TEST(lna, small_signal_gain)
{
    lna::config cfg;
    cfg.gain_db = 20.0;
    cfg.noise_figure_db = 0.01; // effectively noiseless
    cfg.bandwidth_hz = 1e6;
    lna amplifier(cfg, 17);
    const cf64 out = amplifier.process(cf64{1e-3, 0.0});
    EXPECT_NEAR(std::abs(out), 1e-2, 1e-4);
}

TEST(lna, output_noise_matches_noise_figure)
{
    lna::config cfg;
    cfg.gain_db = 30.0;
    cfg.noise_figure_db = 6.0;
    cfg.bandwidth_hz = 1e9;
    lna amplifier(cfg, 19);
    cvec zeros(100000, cf64{});
    const cvec out = amplifier.process(zeros);
    const double measured = dsp::mean_power(out);
    const double expected = (from_db(6.0) - 1.0) * thermal_noise_power(1e9) * from_db(30.0);
    EXPECT_NEAR(measured / expected, 1.0, 0.05);
}

TEST(pa, linear_region_gain)
{
    power_amplifier::config cfg;
    cfg.gain_db = 30.0;
    cfg.output_saturation_dbm = 30.0;
    power_amplifier pa(cfg);
    // -20 dBm in -> +10 dBm out, 20 dB below saturation: essentially linear.
    EXPECT_NEAR(pa.output_power_dbm(-20.0), 10.0, 0.05);
}

TEST(pa, saturates_at_configured_level)
{
    power_amplifier::config cfg;
    cfg.gain_db = 30.0;
    cfg.output_saturation_dbm = 30.0;
    power_amplifier pa(cfg);
    EXPECT_LT(pa.output_power_dbm(30.0), 30.01);
    EXPECT_NEAR(pa.output_power_dbm(30.0), 30.0, 0.3);
}

TEST(pa, p1db_below_saturation)
{
    power_amplifier::config cfg;
    cfg.gain_db = 30.0;
    cfg.output_saturation_dbm = 30.0;
    cfg.smoothness = 2.0;
    power_amplifier pa(cfg);
    const double p1db_in = pa.input_p1db_dbm();
    // At the 1 dB compression input, gain must be 29 dB.
    EXPECT_NEAR(pa.output_power_dbm(p1db_in) - p1db_in, 29.0, 0.05);
    EXPECT_LT(p1db_in + 30.0, 30.0 + 0.5); // output P1dB below Psat
}

TEST(pa, preserves_phase)
{
    power_amplifier pa{power_amplifier::config{}};
    const cf64 in = std::polar(0.5, 1.1);
    const cf64 out = pa.process(in);
    EXPECT_NEAR(std::arg(out), 1.1, 1e-9);
}

TEST(mixer, ideal_downconversion_conjugates_lo)
{
    quadrature_mixer::config cfg;
    cfg.conversion_loss_db = 0.0;
    cfg.lo_leakage_dbc = -200.0;
    quadrature_mixer mixer(cfg);
    const cf64 lo = std::polar(1.0, 0.9);
    const cf64 rf = std::polar(2.0, 1.4);
    const cf64 bb = mixer.downconvert(rf, lo);
    EXPECT_NEAR(std::abs(bb), 2.0, 1e-9);
    EXPECT_NEAR(std::arg(bb), 0.5, 1e-9);
}

TEST(mixer, conversion_loss_applies)
{
    quadrature_mixer::config cfg;
    cfg.conversion_loss_db = 7.0;
    cfg.lo_leakage_dbc = -200.0;
    quadrature_mixer mixer(cfg);
    const cf64 bb = mixer.downconvert(cf64{1.0, 0.0}, cf64{1.0, 0.0});
    EXPECT_NEAR(to_db(std::norm(bb)), -7.0, 1e-6);
}

TEST(mixer, balanced_mixer_has_huge_irr)
{
    quadrature_mixer mixer{quadrature_mixer::config{}};
    EXPECT_GT(mixer.image_rejection_ratio_db(), 1e8);
}

TEST(mixer, imbalance_sets_image_rejection)
{
    quadrature_mixer::config cfg;
    cfg.iq_gain_imbalance_db = 0.5;
    cfg.iq_phase_imbalance_deg = 2.0;
    quadrature_mixer mixer(cfg);
    const double irr = mixer.image_rejection_ratio_db();
    EXPECT_GT(irr, 25.0);
    EXPECT_LT(irr, 40.0); // classic ballpark for 0.5 dB / 2 deg
}

TEST(adc, quantization_noise_tracks_bits)
{
    auto sqnr_for_bits = [](unsigned bits) {
        adc::config cfg;
        cfg.bits = bits;
        cfg.full_scale = 1.0;
        adc converter(cfg);
        double signal = 0.0;
        double noise = 0.0;
        for (int i = 0; i < 10000; ++i) {
            const cf64 x = std::polar(0.7, 0.001 * static_cast<double>(i) * 317.0);
            const cf64 y = converter.sample(x);
            signal += std::norm(x);
            noise += std::norm(y - x);
        }
        return to_db(signal / noise);
    };
    const double sqnr8 = sqnr_for_bits(8);
    const double sqnr12 = sqnr_for_bits(12);
    EXPECT_NEAR(sqnr12 - sqnr8, 24.0, 3.0); // ~6 dB per bit
}

TEST(adc, clips_beyond_full_scale)
{
    adc::config cfg;
    cfg.bits = 8;
    cfg.full_scale = 1.0;
    adc converter(cfg);
    const cf64 y = converter.sample(cf64{5.0, -5.0});
    EXPECT_LT(y.real(), 1.0);
    EXPECT_GT(y.imag(), -1.0 - 1e-9);
}

TEST(adc, ideal_sqnr_formula)
{
    adc converter({10, 1.0});
    EXPECT_NEAR(converter.ideal_sqnr_db(), 61.96, 0.01);
}

} // namespace
} // namespace mmtag::rf
