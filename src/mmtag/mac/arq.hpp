// Stop-and-wait ARQ over the backscatter uplink: the AP re-queries a tag
// until a frame passes CRC. Simple, and the right fit for a half-duplex
// query/response link where the AP controls every transmission anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>

namespace mmtag::mac {

struct arq_config {
    std::size_t max_retries = 8; ///< attempts per frame before giving up
    double frame_time_s = 300e-6;
    double ack_time_s = 20e-6;   ///< re-query / implicit ACK airtime
};

struct arq_stats {
    std::size_t frames_offered = 0;
    std::size_t frames_delivered = 0;
    std::size_t transmissions = 0;
    double airtime_s = 0.0;

    [[nodiscard]] double delivery_ratio() const;
    /// Delivered frames per transmission (1.0 = never retransmits).
    [[nodiscard]] double transmission_efficiency() const;
    /// Goodput for `payload_bits` per frame.
    [[nodiscard]] double goodput_bps(double payload_bits) const;
};

class stop_and_wait_arq {
public:
    explicit stop_and_wait_arq(const arq_config& cfg = {});

    /// Simulates `frame_count` frames over a link whose per-attempt frame
    /// success probability is `frame_success`.
    [[nodiscard]] arq_stats run(std::size_t frame_count, double frame_success,
                                std::uint64_t seed) const;

    /// Expected transmissions per delivered frame: 1/p (capped by retries).
    [[nodiscard]] double expected_transmissions(double frame_success) const;

private:
    arq_config cfg_;
};

} // namespace mmtag::mac
