// Multi-tag network façade: inventory (framed slotted ALOHA) + steady-state
// TDMA data collection over a population of tags at different ranges and
// orientations.
//
// Scaling note: per-tag PHY behaviour is driven by the analytic link budget
// (SNR -> rate selection -> PER via modulation theory), which matches the
// sample-level simulator to within fractions of a dB (verified by the
// integration tests) while letting benches sweep populations of hundreds.
// Sample-accurate single-link validation lives in link_simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/mac/slotted_aloha.hpp"
#include "mmtag/mac/tdma.hpp"

namespace mmtag::core {

struct tag_descriptor {
    std::uint32_t id = 0;
    double distance_m = 2.0;
    double incidence_rad = 0.0;
};

/// Deterministic random population: `count` tags with ids 0..count-1, ranges
/// uniform in [min_range_m, max_range_m] and incidence uniform in +/-35 deg.
/// Shared by the CLI `network` command, the network soak harness, and R22.
[[nodiscard]] std::vector<tag_descriptor> uniform_population(std::size_t count,
                                                             double min_range_m,
                                                             double max_range_m,
                                                             std::uint64_t seed);

struct tag_link_state {
    tag_descriptor tag;
    double snr_db = 0.0;
    ap::rate_option rate{};
    double frame_success = 0.0; ///< per-attempt frame delivery probability
    double goodput_bps = 0.0;   ///< per-tag goodput in steady state
};

struct network_report {
    mac::inventory_stats inventory;
    mac::tdma_metrics tdma;
    std::vector<tag_link_state> links;
    double aggregate_goodput_bps = 0.0;
    double min_snr_db = 0.0;
    double max_snr_db = 0.0;
};

class network {
public:
    network(const system_config& base, std::vector<tag_descriptor> tags);

    [[nodiscard]] const std::vector<tag_descriptor>& tags() const { return tags_; }

    /// Per-tag link state from the budget + rate adaptation.
    [[nodiscard]] std::vector<tag_link_state> evaluate_links(
        std::size_t frame_payload_bytes = 256) const;

    /// Full network run: inventory then one steady-state TDMA evaluation.
    [[nodiscard]] network_report run(std::uint64_t seed,
                                     std::size_t frame_payload_bytes = 256) const;

private:
    system_config base_;
    std::vector<tag_descriptor> tags_;
};

} // namespace mmtag::core
