// Block (row/column) interleaver to spread burst errors — switching
// transients and fading dips hit consecutive symbols, which a convolutional
// code alone handles poorly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mmtag::fec {

/// Row-in/column-out block interleaver over a rows x columns matrix.
/// Inputs whose length is not a multiple of rows*columns are zero-padded;
/// deinterleave returns the padded length (callers truncate by context).
class block_interleaver {
public:
    block_interleaver(std::size_t rows, std::size_t columns);

    [[nodiscard]] std::size_t block_size() const { return rows_ * columns_; }

    [[nodiscard]] std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> bits) const;
    [[nodiscard]] std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> bits) const;

    /// Soft-value variants for decoder front-ends.
    [[nodiscard]] std::vector<double> deinterleave_soft(std::span<const double> values) const;

private:
    std::size_t rows_;
    std::size_t columns_;
};

} // namespace mmtag::fec
