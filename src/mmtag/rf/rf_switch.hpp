// RF switch model (SPDT/SP4T class, e.g. ADRF5020-style parts). The switch
// is the tag's only fast active component: it selects which termination the
// antenna port sees. Finite rise/fall time smears symbol transitions and
// caps the achievable symbol rate; each transition costs charge, which sets
// the rate-dependent part of the tag's power draw.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mmtag/common.hpp"

namespace mmtag::rf {

class rf_switch {
public:
    struct config {
        std::size_t throw_count = 4;       ///< SPDT = 2, SP4T = 4
        double insertion_loss_db = 1.5;    ///< loss through the selected path
        double isolation_db = 40.0;        ///< leakage from unselected paths
        double rise_fall_time_s = 2e-9;    ///< 10-90% switching time
        double energy_per_transition_j = 30e-12;
        double static_power_w = 0.5e-3;    ///< driver quiescent power
    };

    explicit rf_switch(const config& cfg);

    [[nodiscard]] const config& parameters() const { return cfg_; }

    /// Highest toggle rate the switch supports (one transition per symbol):
    /// the transition must fit inside ~half a symbol.
    [[nodiscard]] double max_symbol_rate_hz() const;

    /// Converts a per-symbol port-state sequence into a per-sample complex
    /// path coefficient, given each port's reflection coefficient. Transitions
    /// follow a raised-cosine ramp lasting `rise_fall_time_s` (quantized to
    /// samples at `sample_rate_hz`). Insertion loss scales all coefficients;
    /// isolation leaks a fraction of the mean of unselected ports.
    [[nodiscard]] cvec state_waveform(std::span<const std::size_t> states,
                                      std::span<const cf64> port_coefficients,
                                      std::size_t samples_per_symbol,
                                      double sample_rate_hz) const;

    /// Number of state changes in a symbol sequence.
    [[nodiscard]] static std::size_t count_transitions(std::span<const std::size_t> states);

    /// Energy consumed by the switch for `transitions` changes over `duration_s`.
    [[nodiscard]] double energy_consumed_j(std::size_t transitions, double duration_s) const;

    /// Average power when toggling at `toggle_rate_hz` transitions/second.
    [[nodiscard]] double average_power_w(double toggle_rate_hz) const;

private:
    config cfg_;
};

} // namespace mmtag::rf
