#include "mmtag/phy/modulation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mmtag::phy {

namespace {

constexpr std::uint32_t gray_encode(std::uint32_t value)
{
    return value ^ (value >> 1);
}

std::size_t order(modulation scheme)
{
    return constellation_size(scheme);
}

} // namespace

std::size_t bits_per_symbol(modulation scheme)
{
    switch (scheme) {
    case modulation::bpsk: return 1;
    case modulation::qpsk: return 2;
    case modulation::psk8: return 3;
    case modulation::psk16: return 4;
    }
    throw std::invalid_argument("bits_per_symbol: unknown modulation");
}

std::size_t constellation_size(modulation scheme)
{
    return std::size_t{1} << bits_per_symbol(scheme);
}

std::string modulation_name(modulation scheme)
{
    switch (scheme) {
    case modulation::bpsk: return "BPSK";
    case modulation::qpsk: return "QPSK";
    case modulation::psk8: return "8-PSK";
    case modulation::psk16: return "16-PSK";
    }
    throw std::invalid_argument("modulation_name: unknown modulation");
}

cvec constellation(modulation scheme)
{
    // All schemes use phases 2 pi p / M with p = 0 on the positive real axis.
    // Keeping BPSK's {+1, -1} a subset of every even-M constellation lets the
    // tag realize preamble, header, and payload from one stub bank.
    const std::size_t m = order(scheme);
    cvec points(m);
    for (std::size_t position = 0; position < m; ++position) {
        const std::uint32_t bits = gray_encode(static_cast<std::uint32_t>(position));
        points[bits] = std::polar(1.0, two_pi * static_cast<double>(position) /
                                           static_cast<double>(m));
    }
    return points;
}

cvec map_bits(std::span<const std::uint8_t> bits, modulation scheme)
{
    const std::size_t k = bits_per_symbol(scheme);
    const cvec points = constellation(scheme);
    const std::size_t symbol_count = (bits.size() + k - 1) / k;
    cvec symbols;
    symbols.reserve(symbol_count);
    for (std::size_t s = 0; s < symbol_count; ++s) {
        std::uint32_t value = 0;
        for (std::size_t j = 0; j < k; ++j) {
            const std::size_t index = s * k + j;
            const std::uint32_t bit = index < bits.size() ? (bits[index] & 1u) : 0u;
            value = (value << 1) | bit;
        }
        symbols.push_back(points[value]);
    }
    return symbols;
}

std::vector<std::uint8_t> demap_hard(std::span<const cf64> symbols, modulation scheme)
{
    const std::size_t k = bits_per_symbol(scheme);
    const cvec points = constellation(scheme);
    std::vector<std::uint8_t> bits;
    bits.reserve(symbols.size() * k);
    for (cf64 y : symbols) {
        std::size_t best = 0;
        double best_distance = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < points.size(); ++c) {
            const double d = std::norm(y - points[c]);
            if (d < best_distance) {
                best_distance = d;
                best = c;
            }
        }
        for (std::size_t j = k; j-- > 0;) {
            bits.push_back(static_cast<std::uint8_t>((best >> j) & 1u));
        }
    }
    return bits;
}

std::vector<double> demap_soft(std::span<const cf64> symbols, modulation scheme,
                               double noise_variance)
{
    if (noise_variance <= 0.0) throw std::invalid_argument("demap_soft: noise variance <= 0");
    const std::size_t k = bits_per_symbol(scheme);
    const cvec points = constellation(scheme);
    std::vector<double> llrs;
    llrs.reserve(symbols.size() * k);
    for (cf64 y : symbols) {
        for (std::size_t j = k; j-- > 0;) {
            double best_zero = std::numeric_limits<double>::max();
            double best_one = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < points.size(); ++c) {
                const double d = std::norm(y - points[c]);
                if ((c >> j) & 1u) best_one = std::min(best_one, d);
                else best_zero = std::min(best_zero, d);
            }
            // Max-log LLR; positive means bit 0 more likely.
            llrs.push_back((best_one - best_zero) / noise_variance);
        }
    }
    return llrs;
}

double q_function(double x)
{
    return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double theoretical_ber(modulation scheme, double ebn0_db)
{
    const double ebn0 = from_db(ebn0_db);
    const std::size_t k = bits_per_symbol(scheme);
    switch (scheme) {
    case modulation::bpsk:
    case modulation::qpsk:
        // Gray-coded QPSK has the same per-bit error rate as BPSK.
        return q_function(std::sqrt(2.0 * ebn0));
    case modulation::psk8:
    case modulation::psk16: {
        const double m = static_cast<double>(constellation_size(scheme));
        const double es_n0 = static_cast<double>(k) * ebn0;
        // Union bound on symbol errors, /k for Gray-coded bit errors.
        const double ser = 2.0 * q_function(std::sqrt(2.0 * es_n0) * std::sin(pi / m));
        return ser / static_cast<double>(k);
    }
    }
    throw std::invalid_argument("theoretical_ber: unknown modulation");
}

} // namespace mmtag::phy
