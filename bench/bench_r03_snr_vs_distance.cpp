// R3 — Uplink SNR vs distance.
// Measured post-cancellation SNR at the AP across 0.5-10 m, against the
// analytic link budget. Expected shape: ~40 dB/decade roll-off (two-way
// channel) with a constant implementation gap of a few dB; the link clears
// QPSK-1/2 thresholds out to roughly the paper-class 8 m.
#include "bench_util.hpp"
#include "mmtag/core/link_budget.hpp"
#include "mmtag/core/link_simulator.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R3", "uplink SNR vs distance (measured vs analytic budget)", csv);

    bench::table out({"distance_m", "budget_snr_dB", "measured_snr_dB", "gap_dB",
                      "rx_power_dBm", "per"},
                     csv);
    for (double distance : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0}) {
        auto cfg = bench::bench_scenario();
        cfg.distance_m = distance;
        const core::link_budget budget(cfg);
        const auto entry = budget.at(distance);
        core::link_simulator sim(cfg);
        const auto report = sim.run_trials(6, 32);
        out.add_row({bench::fmt("%.1f", distance), bench::fmt("%.1f", entry.snr_db),
                     bench::fmt("%.1f", report.mean_snr_db),
                     bench::fmt("%.1f", entry.snr_db - report.mean_snr_db),
                     bench::fmt("%.1f", entry.received_at_ap_dbm),
                     bench::fmt("%.2f", report.per)});
    }
    out.print();
    return 0;
}
