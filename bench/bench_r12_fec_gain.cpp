// R12 — FEC ablation: decoded BER vs Eb/N0 for uncoded and convolutional
// rates 1/2, 2/3, 3/4 (soft-decision Viterbi) over QPSK. Expected shape: the
// waterfall curves steepen and shift left with stronger coding; R=1/2 buys
// ~5 dB at 1e-4 over uncoded.
#include <random>

#include "bench_util.hpp"
#include "mmtag/fec/convolutional.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/phy/modulation.hpp"

using namespace mmtag;

namespace {

double coded_ber(phy::fec_mode mode, double ebn0_db, std::size_t info_bits,
                 std::uint64_t seed)
{
    // Per-info-bit energy: coded bits carry Eb * R each; QPSK carries two
    // coded bits per symbol at Es = 2 R Eb.
    const double rate = phy::fec_mode_rate(mode);
    const double es_n0 = 2.0 * rate * from_db(ebn0_db);
    const double noise_sigma = std::sqrt(0.5 / es_n0);
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gaussian(0.0, noise_sigma);

    std::size_t errors = 0;
    std::size_t counted = 0;
    std::size_t block = 0;
    while (counted < info_bits) {
        const auto bits = phy::random_bits(2000, seed * 31 + block++);
        std::vector<std::uint8_t> coded;
        if (mode == phy::fec_mode::uncoded) {
            coded = bits;
        } else {
            const auto rate_enum = mode == phy::fec_mode::conv_half
                                       ? fec::code_rate::half
                                       : mode == phy::fec_mode::conv_two_thirds
                                             ? fec::code_rate::two_thirds
                                             : fec::code_rate::three_quarters;
            coded = fec::convolutional_encode(bits, rate_enum);
            cvec symbols = phy::map_bits(coded, phy::modulation::qpsk);
            for (auto& s : symbols) s += cf64{gaussian(rng), gaussian(rng)};
            const auto soft = phy::demap_soft(symbols, phy::modulation::qpsk,
                                              2.0 * noise_sigma * noise_sigma);
            std::vector<double> truncated(soft.begin(),
                                          soft.begin() +
                                              static_cast<std::ptrdiff_t>(coded.size()));
            const auto decoded = fec::viterbi_decode_soft(truncated, rate_enum);
            errors += phy::hamming_distance(decoded, bits);
            counted += bits.size();
            continue;
        }
        cvec symbols = phy::map_bits(coded, phy::modulation::qpsk);
        for (auto& s : symbols) s += cf64{gaussian(rng), gaussian(rng)};
        const auto decided = phy::demap_hard(symbols, phy::modulation::qpsk);
        errors += phy::hamming_distance(decided, bits);
        counted += bits.size();
    }
    return static_cast<double>(errors) / static_cast<double>(counted);
}

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R12", "decoded BER vs Eb/N0: uncoded vs convolutional rates", csv);

    bench::table out({"ebn0_dB", "uncoded", "conv_1_2", "conv_2_3", "conv_3_4"}, csv);
    for (double ebn0 = 1.0; ebn0 <= 9.0; ebn0 += 1.0) {
        std::vector<std::string> row{bench::fmt("%.0f", ebn0)};
        for (auto mode : {phy::fec_mode::uncoded, phy::fec_mode::conv_half,
                          phy::fec_mode::conv_two_thirds,
                          phy::fec_mode::conv_three_quarters}) {
            const std::size_t bits = ebn0 >= 6.0 ? 400'000 : 100'000;
            const double ber =
                coded_ber(mode, ebn0, bits, 7 + static_cast<unsigned>(ebn0 * 10));
            row.push_back(ber > 0.0 ? bench::fmt("%.2e", ber) : "<2.5e-06");
        }
        out.add_row(row);
    }
    out.print();
    return 0;
}
