// Two-way protocol walkthrough at the sample level.
//
// The AP addresses three tags over the PIE command channel (amplitude
// modulation decoded by each tag's envelope detector), reads each one's
// payload via backscatter, then puts one to sleep and shows it ignoring a
// later read. Every arrow in the protocol diagram is simulated RF.
//
//   $ ./two_way_protocol
#include <cstdio>

#include "mmtag/ap/query_encoder.hpp"
#include "mmtag/ap/receiver.hpp"
#include "mmtag/ap/transmitter.hpp"
#include "mmtag/channel/backscatter_channel.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/tag/addressable_tag.hpp"

using namespace mmtag;

namespace {

constexpr double fs = 50e6;

core::system_config scenario()
{
    auto cfg = core::default_scenario();
    cfg.sample_rate_hz = fs;
    cfg.symbol_rate_hz = 5e6;
    cfg.transmitter.sample_rate_hz = fs;
    cfg.receiver.sample_rate_hz = fs;
    cfg.receiver.samples_per_symbol = 10;
    cfg.receiver.lna.bandwidth_hz = fs;
    cfg.modulator.sample_rate_hz = fs;
    return cfg;
}

struct fleet {
    std::vector<tag::addressable_tag> tags;
    std::vector<channel::backscatter_channel> channels;
    std::vector<std::string> payloads;
};

/// One AP transaction: send `cmd`, listen, try to decode one response.
void transact(fleet& tags, ap::ap_transmitter& tx, ap::ap_receiver& rx,
              const ap::tag_command& cmd)
{
    ap::query_encoder::config enc_cfg;
    enc_cfg.sample_rate_hz = fs;
    enc_cfg.unit_s = 2e-6;
    const ap::query_encoder encoder(enc_cfg);

    rvec envelope = encoder.encode(cmd);
    const std::size_t command_end = envelope.size();
    envelope.insert(envelope.end(), static_cast<std::size_t>(400e-6 * fs), 1.0);
    const auto query = tx.generate_modulated(envelope);

    const char* kind_name = cmd.command == ap::tag_command::kind::select ? "SELECT"
                            : cmd.command == ap::tag_command::kind::read ? "READ"
                            : cmd.command == ap::tag_command::kind::sleep ? "SLEEP"
                                                                          : "QUERY";
    std::printf("AP  -> : %s tag %u\n", kind_name, cmd.tag_id);

    // Every tag hears the command and produces its reflection waveform.
    cvec antenna = query.rf; // start from leakage-free copy; channel adds paths
    bool first = true;
    for (std::size_t t = 0; t < tags.tags.size(); ++t) {
        const cvec at_tag = tags.channels[t].incident_at_tag(query.rf);
        const auto reaction =
            tags.tags[t].process(at_tag, phy::string_to_bytes(tags.payloads[t]));
        if (reaction.responded) {
            std::printf("        tag %u backscatters (%zu-sample reflection)\n",
                        tags.tags[t].tag_id(), reaction.gamma.size());
        }
        if (first) {
            antenna = tags.channels[t].ap_received(query.rf, reaction.gamma);
            first = false;
        } else {
            const cvec extra = tags.channels[t].tag_contribution(query.rf, reaction.gamma);
            for (std::size_t i = 0; i < antenna.size(); ++i) antenna[i] += extra[i];
        }
    }

    const std::size_t window = antenna.size() - command_end;
    const auto result = rx.receive({antenna.data() + command_end, window},
                                   {query.lo.data() + command_end, window});
    if (result.frame_found && result.crc_ok) {
        std::printf("AP <-  : \"%s\" (SNR %.1f dB)\n\n",
                    phy::bytes_to_string(result.payload).c_str(), result.snr_db);
    } else {
        std::printf("AP <-  : (silence)\n\n");
    }
}

} // namespace

int main()
{
    const auto sys = scenario();

    fleet tags;
    const double distances[] = {1.5, 2.5, 4.0};
    for (std::uint16_t i = 0; i < 3; ++i) {
        tag::addressable_tag::config cfg;
        cfg.tag_id = static_cast<std::uint16_t>(100 + i);
        cfg.modulator = sys.modulator;
        cfg.detector.sample_rate_hz = fs;
        cfg.detector.video_bandwidth_hz = 5e6;
        cfg.detector.responsivity_v_per_w = 2000.0;
        cfg.detector.noise_equivalent_power_w = 1e-10;
        cfg.decoder.sample_rate_hz = fs;
        cfg.decoder.unit_s = 2e-6;
        cfg.turnaround_s = 20e-6;
        cfg.seed = 50 + i;
        tags.tags.emplace_back(cfg);

        auto geometry = sys;
        geometry.distance_m = distances[i];
        tags.channels.emplace_back(core::make_channel_config(geometry));
        tags.payloads.push_back("telemetry from tag " + std::to_string(100 + i));
    }

    ap::ap_transmitter tx(sys.transmitter, 1);
    ap::ap_receiver rx(sys.receiver, 2);

    std::printf("three tags at 1.5 / 2.5 / 4.0 m; AP runs the select-read protocol\n\n");
    for (std::uint16_t i = 0; i < 3; ++i) {
        ap::tag_command read;
        read.command = ap::tag_command::kind::read;
        read.tag_id = static_cast<std::uint16_t>(100 + i);
        transact(tags, tx, rx, read);
    }

    std::printf("-- putting tag 101 to sleep, then reading it again --\n\n");
    ap::tag_command sleep_cmd;
    sleep_cmd.command = ap::tag_command::kind::sleep;
    sleep_cmd.tag_id = 101;
    transact(tags, tx, rx, sleep_cmd);

    ap::tag_command read_again;
    read_again.command = ap::tag_command::kind::read;
    read_again.tag_id = 101;
    transact(tags, tx, rx, read_again);
    return 0;
}
