# Empty compiler generated dependencies file for warehouse_inventory.
# This may be replaced when dependencies are built.
