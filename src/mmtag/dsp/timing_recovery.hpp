// Symbol timing recovery (Gardner detector with a proportional-integral loop)
// and a max-energy brute-force timing search for burst frames.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Gardner timing-error-detector loop. Consumes oversampled baseband (with
/// `samples_per_symbol` >= 2) and emits one symbol-rate sample per recovered
/// symbol, interpolating linearly between input samples.
class gardner_timing_recovery {
public:
    struct config {
        std::size_t samples_per_symbol = 8;
        double loop_bandwidth = 0.01; // normalized to symbol rate
        double damping = 0.7071;
    };

    explicit gardner_timing_recovery(const config& cfg);

    /// Processes a block; returns symbol-rate outputs.
    [[nodiscard]] cvec process(std::span<const cf64> samples);

    /// Current fractional timing phase in samples, for diagnostics.
    [[nodiscard]] double timing_phase() const { return mu_; }

    void reset();

private:
    [[nodiscard]] cf64 interpolate(std::span<const cf64> samples, double index) const;

    config cfg_;
    double kp_ = 0.0;
    double ki_ = 0.0;
    double mu_ = 0.0;        // fractional interval
    double integrator_ = 0.0;
    double next_index_ = 0.0;
    cf64 previous_symbol_{};
};

/// Burst-mode timing search: picks the sampling offset in [0, sps) that
/// maximizes average symbol energy after integrate-and-dump. Returns the
/// offset; cheap and robust for packetized backscatter frames.
[[nodiscard]] std::size_t best_symbol_offset(std::span<const cf64> samples,
                                             std::size_t samples_per_symbol);

} // namespace mmtag::dsp
