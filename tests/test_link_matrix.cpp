// Full-link configuration matrix: every (modulation x FEC) pair that the
// rate ladder can select must deliver frames cleanly at short range through
// the complete chain. Parameterized so a failure names its exact cell.
#include <gtest/gtest.h>

#include "mmtag/core/link_simulator.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::core {
namespace {

struct matrix_case {
    phy::modulation scheme;
    phy::fec_mode fec;
};

std::string case_name(const ::testing::TestParamInfo<matrix_case>& info)
{
    std::string name = phy::modulation_name(info.param.scheme) + "_" +
                       phy::fec_mode_name(info.param.fec);
    for (auto& c : name) {
        if (c == '-' || c == '/') c = '_';
    }
    return name;
}

class link_matrix : public ::testing::TestWithParam<matrix_case> {
protected:
    static system_config scenario(const matrix_case& param)
    {
        auto cfg = default_scenario();
        cfg.sample_rate_hz = 50e6;
        cfg.symbol_rate_hz = 5e6;
        cfg.transmitter.sample_rate_hz = cfg.sample_rate_hz;
        cfg.receiver.sample_rate_hz = cfg.sample_rate_hz;
        cfg.receiver.samples_per_symbol = 10;
        cfg.receiver.lna.bandwidth_hz = cfg.sample_rate_hz;
        cfg.modulator.sample_rate_hz = cfg.sample_rate_hz;
        cfg.modulator.frame.scheme = param.scheme;
        cfg.modulator.frame.fec = param.fec;
        cfg.receiver.frame = cfg.modulator.frame;
        return cfg;
    }
};

TEST_P(link_matrix, clean_delivery_at_short_range)
{
    link_simulator sim(scenario(GetParam()));
    const auto report = sim.run_trials(4, 40);
    EXPECT_DOUBLE_EQ(report.per, 0.0);
    EXPECT_DOUBLE_EQ(report.ber, 0.0);
}

TEST_P(link_matrix, goodput_matches_spectral_efficiency)
{
    const auto cfg = scenario(GetParam());
    link_simulator sim(cfg);
    const auto report = sim.run_trials(3, 64);
    ASSERT_DOUBLE_EQ(report.per, 0.0);
    // Goodput = payload bits / airtime; airtime includes the 143-symbol
    // preamble, header, FEC expansion and guards, so it lands below the raw
    // info rate — by up to ~3.5x for dense constellations whose 64-byte
    // payload spans few symbols relative to the fixed overhead.
    const double info_rate = phy::spectral_efficiency(cfg.modulator.frame) *
                             cfg.symbol_rate_hz;
    EXPECT_LT(report.goodput_bps, info_rate);
    EXPECT_GT(report.goodput_bps, info_rate / 3.5);
}

INSTANTIATE_TEST_SUITE_P(
    all_pairs, link_matrix,
    ::testing::Values(matrix_case{phy::modulation::bpsk, phy::fec_mode::uncoded},
                      matrix_case{phy::modulation::bpsk, phy::fec_mode::conv_half},
                      matrix_case{phy::modulation::bpsk, phy::fec_mode::conv_two_thirds},
                      matrix_case{phy::modulation::bpsk, phy::fec_mode::conv_three_quarters},
                      matrix_case{phy::modulation::qpsk, phy::fec_mode::uncoded},
                      matrix_case{phy::modulation::qpsk, phy::fec_mode::conv_half},
                      matrix_case{phy::modulation::qpsk, phy::fec_mode::conv_two_thirds},
                      matrix_case{phy::modulation::qpsk, phy::fec_mode::conv_three_quarters},
                      matrix_case{phy::modulation::psk8, phy::fec_mode::uncoded},
                      matrix_case{phy::modulation::psk8, phy::fec_mode::conv_half},
                      matrix_case{phy::modulation::psk8, phy::fec_mode::conv_two_thirds},
                      matrix_case{phy::modulation::psk8, phy::fec_mode::conv_three_quarters},
                      matrix_case{phy::modulation::psk16, phy::fec_mode::uncoded},
                      matrix_case{phy::modulation::psk16, phy::fec_mode::conv_half},
                      matrix_case{phy::modulation::psk16, phy::fec_mode::conv_two_thirds},
                      matrix_case{phy::modulation::psk16,
                                  phy::fec_mode::conv_three_quarters}),
    case_name);

} // namespace
} // namespace mmtag::core
