#include "mmtag/net/tag_session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mmtag::net {

const char* session_state_name(session_state state)
{
    switch (state) {
    case session_state::active: return "active";
    case session_state::degraded: return "degraded";
    case session_state::quarantined: return "quarantined";
    case session_state::probing: return "probing";
    }
    return "?";
}

bool legal_transition(session_state from, session_state to)
{
    switch (from) {
    case session_state::active: return to == session_state::degraded;
    case session_state::degraded:
        return to == session_state::active || to == session_state::quarantined;
    case session_state::quarantined: return to == session_state::probing;
    case session_state::probing:
        return to == session_state::active || to == session_state::quarantined;
    }
    return false;
}

tag_session::tag_session(std::uint32_t tag_id, const session_config& cfg)
    : tag_id_(tag_id), cfg_(cfg)
{
    if (cfg.degraded_streak == 0 || cfg.readmit_streak == 0) {
        throw std::invalid_argument("tag_session: streaks must be >= 1");
    }
    if (cfg.quarantine_streak <= cfg.degraded_streak) {
        throw std::invalid_argument(
            "tag_session: quarantine_streak must exceed degraded_streak");
    }
    if (cfg.probe_backoff_initial_rounds == 0 ||
        cfg.probe_backoff_cap_rounds < cfg.probe_backoff_initial_rounds) {
        throw std::invalid_argument("tag_session: invalid probe backoff bounds");
    }
    if (!(cfg.probe_backoff_factor >= 1.0) ||
        !std::isfinite(cfg.probe_backoff_factor)) {
        throw std::invalid_argument("tag_session: probe_backoff_factor must be >= 1");
    }
}

void tag_session::transition_to(session_state to, std::size_t round)
{
    if (!legal_transition(state_, to)) {
        throw std::logic_error(std::string("tag_session: illegal transition ") +
                               session_state_name(state_) + " -> " +
                               session_state_name(to));
    }
    transitions_.push_back({state_, to, round});
    state_ = to;
}

bool tag_session::probe_due(std::size_t round) const
{
    // Mid-streak (PROBING with some successes banked) the next probe is due
    // immediately; backoff only spaces out probes after a failure.
    if (state_ == session_state::probing) return true;
    return state_ == session_state::quarantined && round >= next_probe_round_;
}

void tag_session::begin_probe(std::size_t round)
{
    if (!probe_due(round)) {
        throw std::logic_error("tag_session: begin_probe before the backoff expired");
    }
    if (state_ == session_state::probing) return; // continuing a probe streak
    transition_to(session_state::probing, round);
}

void tag_session::record_probe(bool delivered, std::size_t round)
{
    if (state_ != session_state::probing) {
        throw std::logic_error("tag_session: record_probe outside PROBING");
    }
    if (delivered) {
        ++probe_success_streak_;
        if (probe_success_streak_ >= cfg_.readmit_streak) {
            transition_to(session_state::active, round);
            readmit_latencies_.push_back(round - quarantined_since_);
            fail_streak_ = 0;
            probe_success_streak_ = 0;
        }
        // Below the streak the session keeps probing next round (no state
        // change, no backoff between consecutive successful probes).
        return;
    }
    probe_success_streak_ = 0;
    // Capped exponential growth; the ceil keeps fractional factors moving.
    const double grown =
        static_cast<double>(backoff_rounds_) * cfg_.probe_backoff_factor;
    backoff_rounds_ = grown >= static_cast<double>(cfg_.probe_backoff_cap_rounds)
                          ? cfg_.probe_backoff_cap_rounds
                          : static_cast<std::size_t>(std::ceil(grown));
    transition_to(session_state::quarantined, round);
    next_probe_round_ = round + backoff_rounds_;
}

void tag_session::record_data(bool delivered, std::size_t round)
{
    if (!schedulable()) {
        throw std::logic_error("tag_session: data frame recorded for an "
                               "unscheduled session");
    }
    if (delivered) {
        fail_streak_ = 0;
        if (state_ == session_state::degraded) {
            transition_to(session_state::active, round);
        }
        return;
    }
    // Saturate: a wrap would reset the streak and re-admit a dead tag.
    if (fail_streak_ != std::numeric_limits<std::size_t>::max()) ++fail_streak_;
    if (state_ == session_state::active && fail_streak_ >= cfg_.degraded_streak) {
        transition_to(session_state::degraded, round);
    } else if (state_ == session_state::degraded &&
               fail_streak_ >= cfg_.quarantine_streak) {
        transition_to(session_state::quarantined, round);
        quarantined_since_ = round;
        probe_success_streak_ = 0;
        backoff_rounds_ = cfg_.probe_backoff_initial_rounds;
        next_probe_round_ = round + backoff_rounds_;
    }
}

} // namespace mmtag::net
