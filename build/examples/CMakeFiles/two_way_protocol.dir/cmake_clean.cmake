file(REMOVE_RECURSE
  "CMakeFiles/two_way_protocol.dir/two_way_protocol.cpp.o"
  "CMakeFiles/two_way_protocol.dir/two_way_protocol.cpp.o.d"
  "two_way_protocol"
  "two_way_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_way_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
