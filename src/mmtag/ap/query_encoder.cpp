#include "mmtag/ap/query_encoder.hpp"

#include <stdexcept>

#include "mmtag/fec/crc.hpp"

namespace mmtag::ap {

std::vector<std::uint8_t> command_bits(const tag_command& cmd)
{
    std::vector<std::uint8_t> bytes{
        static_cast<std::uint8_t>(cmd.command),
        static_cast<std::uint8_t>(cmd.tag_id >> 8),
        static_cast<std::uint8_t>(cmd.tag_id & 0xFF),
        cmd.parameter,
    };
    bytes.push_back(fec::crc8(bytes));
    std::vector<std::uint8_t> bits;
    bits.reserve(bytes.size() * 8);
    for (std::uint8_t byte : bytes) {
        for (int bit = 7; bit >= 0; --bit) {
            bits.push_back(static_cast<std::uint8_t>((byte >> bit) & 1u));
        }
    }
    return bits;
}

std::optional<tag_command> parse_command_bits(std::span<const std::uint8_t> bits)
{
    if (bits.size() != 40) return std::nullopt;
    std::vector<std::uint8_t> bytes(5, 0);
    for (std::size_t i = 0; i < 40; ++i) {
        bytes[i / 8] = static_cast<std::uint8_t>((bytes[i / 8] << 1) | (bits[i] & 1u));
    }
    if (fec::crc8(std::span<const std::uint8_t>{bytes.data(), 4}) != bytes[4]) {
        return std::nullopt;
    }
    tag_command cmd;
    switch (bytes[0]) {
    case 0x01: cmd.command = tag_command::kind::query_all; break;
    case 0x02: cmd.command = tag_command::kind::select; break;
    case 0x03: cmd.command = tag_command::kind::read; break;
    case 0x04: cmd.command = tag_command::kind::sleep; break;
    default: return std::nullopt;
    }
    cmd.tag_id = static_cast<std::uint16_t>((bytes[1] << 8) | bytes[2]);
    cmd.parameter = bytes[3];
    return cmd;
}

query_encoder::query_encoder(const config& cfg) : cfg_(cfg)
{
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("query_encoder: fs <= 0");
    if (cfg.unit_s <= 0.0) throw std::invalid_argument("query_encoder: unit <= 0");
    if (!(cfg.low_level >= 0.0 && cfg.low_level < 0.8)) {
        throw std::invalid_argument("query_encoder: low_level must be in [0, 0.8)");
    }
    unit_samples_ = static_cast<std::size_t>(std::round(cfg.unit_s * cfg.sample_rate_hz));
    if (unit_samples_ < 4) {
        throw std::invalid_argument("query_encoder: unit shorter than 4 samples");
    }
}

void query_encoder::append_level(rvec& envelope, double level, std::size_t units) const
{
    envelope.insert(envelope.end(), units * unit_samples_, level);
}

rvec query_encoder::encode(const tag_command& cmd) const
{
    const auto bits = command_bits(cmd);
    rvec envelope;
    envelope.reserve((8 + bits.size() * 3) * unit_samples_);
    // Settle + delimiter + sync: full carrier, a 3-unit dip no data symbol
    // produces, then a 1-unit high and 1-unit gap to set the timing base.
    append_level(envelope, 1.0, 2);
    append_level(envelope, cfg_.low_level, 3);
    append_level(envelope, 1.0, 1);
    append_level(envelope, cfg_.low_level, 1);
    for (std::uint8_t bit : bits) {
        append_level(envelope, 1.0, bit ? 2 : 1);
        append_level(envelope, cfg_.low_level, 1);
    }
    append_level(envelope, 1.0, 2);
    return envelope;
}

double query_encoder::command_duration_s(const tag_command& cmd) const
{
    return static_cast<double>(encode(cmd).size()) / cfg_.sample_rate_hz;
}

} // namespace mmtag::ap
