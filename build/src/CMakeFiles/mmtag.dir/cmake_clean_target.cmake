file(REMOVE_RECURSE
  "libmmtag.a"
)
