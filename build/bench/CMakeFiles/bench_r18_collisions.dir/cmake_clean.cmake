file(REMOVE_RECURSE
  "CMakeFiles/bench_r18_collisions.dir/bench_r18_collisions.cpp.o"
  "CMakeFiles/bench_r18_collisions.dir/bench_r18_collisions.cpp.o.d"
  "bench_r18_collisions"
  "bench_r18_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r18_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
