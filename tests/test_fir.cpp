#include <gtest/gtest.h>

#include "mmtag/dsp/fir.hpp"
#include "mmtag/dsp/nco.hpp"
#include "mmtag/dsp/estimators.hpp"

namespace mmtag::dsp {
namespace {

double tone_gain(const rvec& taps, double frequency_norm)
{
    // Steady-state gain: feed a long tone, measure output RMS over the tail.
    nco osc(frequency_norm);
    const cvec tone = osc.generate(4096);
    const cvec filtered = fir_apply(taps, tone);
    const std::span<const cf64> tail{filtered.data() + 2048, 2048};
    return rms(tail);
}

TEST(fir, lowpass_passes_low_and_stops_high)
{
    const rvec taps = design_lowpass(0.1, 101);
    EXPECT_NEAR(tone_gain(taps, 0.01), 1.0, 0.02);
    EXPECT_LT(tone_gain(taps, 0.3), 0.01);
}

TEST(fir, lowpass_unity_dc_gain)
{
    const rvec taps = design_lowpass(0.2, 61);
    double sum = 0.0;
    for (double t : taps) sum += t;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(fir, highpass_complement)
{
    const rvec taps = design_highpass(0.15, 101);
    EXPECT_LT(tone_gain(taps, 0.01), 0.02);
    EXPECT_NEAR(tone_gain(taps, 0.4), 1.0, 0.03);
}

TEST(fir, bandpass_selects_band)
{
    const rvec taps = design_bandpass(0.1, 0.2, 151);
    EXPECT_LT(tone_gain(taps, 0.02), 0.02);
    EXPECT_NEAR(tone_gain(taps, 0.15), 1.0, 0.05);
    EXPECT_LT(tone_gain(taps, 0.35), 0.02);
}

TEST(fir, design_argument_validation)
{
    EXPECT_THROW((void)design_lowpass(0.0, 11), std::invalid_argument);
    EXPECT_THROW((void)design_lowpass(0.6, 11), std::invalid_argument);
    EXPECT_THROW((void)design_lowpass(0.1, 10), std::invalid_argument); // even
    EXPECT_THROW((void)design_bandpass(0.3, 0.2, 11), std::invalid_argument);
}

TEST(fir, streaming_matches_batch)
{
    const rvec taps = design_lowpass(0.2, 31);
    cvec input(200);
    for (std::size_t i = 0; i < input.size(); ++i) {
        input[i] = {std::sin(0.1 * static_cast<double>(i)), std::cos(0.05 * static_cast<double>(i))};
    }
    const cvec batch = fir_apply(taps, input);

    fir_filter streaming{taps};
    cvec chunked;
    for (std::size_t start = 0; start < input.size(); start += 17) {
        const std::size_t len = std::min<std::size_t>(17, input.size() - start);
        const cvec part = streaming.process(std::span<const cf64>{input.data() + start, len});
        chunked.insert(chunked.end(), part.begin(), part.end());
    }
    ASSERT_EQ(chunked.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_NEAR(std::abs(chunked[i] - batch[i]), 0.0, 1e-12);
    }
}

TEST(fir, reset_clears_state)
{
    fir_filter filter{design_lowpass(0.2, 15)};
    (void)filter.process(cf64{5.0, -3.0});
    filter.reset();
    // After reset, an all-zero input must produce all-zero output.
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(filter.process(cf64{}), cf64{});
    }
}

TEST(fir, group_delay_is_half_length)
{
    fir_filter filter{design_lowpass(0.2, 41)};
    EXPECT_DOUBLE_EQ(filter.group_delay(), 20.0);
}

TEST(fir, empty_taps_rejected)
{
    EXPECT_THROW(fir_filter{rvec{}}, std::invalid_argument);
}

} // namespace
} // namespace mmtag::dsp
