#include "mmtag/net/network_supervisor.hpp"

#include <algorithm>
#include <stdexcept>

#include "mmtag/obs/metrics_registry.hpp"

namespace mmtag::net {

network_supervisor::network_supervisor(const supervisor_config& cfg,
                                       std::vector<std::uint32_t> tag_ids)
    : cfg_(cfg), tag_ids_(std::move(tag_ids))
{
    if (tag_ids_.empty()) {
        throw std::invalid_argument("network_supervisor: no tags");
    }
    // Sorted (tag id -> session index) side table: record_data/record_probe
    // fire once per slot per round, so the lookup must be O(log n), not a
    // scan — at thousands of tags per AP a scan turns each round quadratic.
    index_.reserve(tag_ids_.size());
    for (std::size_t i = 0; i < tag_ids_.size(); ++i) {
        index_.emplace_back(tag_ids_[i], i);
    }
    std::sort(index_.begin(), index_.end());
    for (std::size_t i = 1; i < index_.size(); ++i) {
        if (index_[i].first == index_[i - 1].first) {
            throw std::invalid_argument("network_supervisor: duplicate tag id");
        }
    }
    sessions_.reserve(tag_ids_.size());
    for (const std::uint32_t id : tag_ids_) sessions_.emplace_back(id, cfg.session);
}

std::size_t network_supervisor::session_index(std::uint32_t tag_id) const
{
    const auto it = std::lower_bound(
        index_.begin(), index_.end(),
        std::pair<std::uint32_t, std::size_t>{tag_id, 0});
    if (it == index_.end() || it->first != tag_id) {
        throw std::invalid_argument("network_supervisor: unknown tag id");
    }
    return it->second;
}

const tag_session& network_supervisor::session(std::uint32_t tag_id) const
{
    return sessions_[session_index(tag_id)];
}

tag_session& network_supervisor::session_mut(std::uint32_t tag_id)
{
    return sessions_[session_index(tag_id)];
}

std::size_t network_supervisor::healthy_count() const
{
    std::size_t count = 0;
    for (const auto& s : sessions_) {
        if (s.schedulable()) ++count;
    }
    return count;
}

std::size_t network_supervisor::current_round() const
{
    if (round_ == 0) {
        throw std::logic_error("network_supervisor: record before plan_round");
    }
    return round_ - 1;
}

// Bumps the net/... observability counters for transitions logged since
// `before` (the caller snapshots the log size around each mutation).
void network_supervisor::note_transitions(const tag_session& session,
                                          std::size_t before) const
{
    if (cfg_.metrics == nullptr) return;
    const auto& log = session.transitions();
    for (std::size_t i = before; i < log.size(); ++i) {
        cfg_.metrics->get_counter("net/transitions").add();
        const auto& t = log[i];
        if (t.to == session_state::degraded) {
            cfg_.metrics->get_counter("net/degraded").add();
        } else if (t.to == session_state::quarantined &&
                   t.from == session_state::degraded) {
            cfg_.metrics->get_counter("net/quarantined").add();
        } else if (t.to == session_state::active &&
                   t.from == session_state::probing) {
            cfg_.metrics->get_counter("net/readmitted").add();
            cfg_.metrics
                ->get_histogram("net/readmit_latency_rounds", obs::rounds_bounds())
                .observe(static_cast<double>(
                    session.readmit_latencies_rounds().back()));
        }
    }
}

round_plan network_supervisor::plan_round()
{
    const std::size_t n = sessions_.size();
    round_plan plan;
    plan.round = round_;

    // Probe grants: due quarantined sessions enter PROBING for this round.
    for (auto& s : sessions_) {
        if (!s.probe_due(round_)) continue;
        const std::size_t before = s.transitions().size();
        s.begin_probe(round_);
        note_transitions(s, before);
        plan.probes.push_back(s.tag_id());
    }

    // Budget-conserving reallocation: the same number of data slots every
    // round, dealt round-robin over schedulable sessions starting at a
    // rotating offset so any remainder (and any sub-budget regime) moves
    // across the population instead of pinning to the same tags.
    std::vector<std::size_t> eligible;
    eligible.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = (rotation_ + i) % n;
        if (sessions_[idx].schedulable()) eligible.push_back(idx);
    }
    if (!eligible.empty()) {
        const std::size_t budget = cfg_.slot_budget != 0 ? cfg_.slot_budget : n;
        const std::size_t base = budget / eligible.size();
        const std::size_t extra = budget % eligible.size();
        plan.shares.reserve(eligible.size());
        for (std::size_t j = 0; j < eligible.size(); ++j) {
            const auto& s = sessions_[eligible[j]];
            const std::size_t slots = base + (j < extra ? 1 : 0);
            if (slots == 0) continue;
            plan.shares.push_back({s.tag_id(), slots});
            if (s.state() == session_state::degraded) {
                plan.robust.push_back(s.tag_id());
            }
        }
    }

    if (cfg_.metrics != nullptr) {
        cfg_.metrics->get_counter("net/rounds").add();
        cfg_.metrics->get_counter("net/probe_slots").add(plan.probes.size());
        cfg_.metrics->get_gauge("net/healthy_tags")
            .set(static_cast<double>(healthy_count()));
    }

    ++round_;
    rotation_ = (rotation_ + 1) % n;
    return plan;
}

bool network_supervisor::record_data(std::uint32_t tag_id, bool delivered)
{
    auto& s = session_mut(tag_id);
    // A session that quarantined on an earlier outcome this round still owns
    // its remaining scheduled slots; the AP discards those outcomes.
    if (!s.schedulable()) {
        (void)current_round(); // still reject record-before-plan
        return false;
    }
    const std::size_t before = s.transitions().size();
    s.record_data(delivered, current_round());
    note_transitions(s, before);
    return true;
}

void network_supervisor::record_probe(std::uint32_t tag_id, bool delivered)
{
    auto& s = session_mut(tag_id);
    const std::size_t before = s.transitions().size();
    s.record_probe(delivered, current_round());
    note_transitions(s, before);
}

} // namespace mmtag::net
