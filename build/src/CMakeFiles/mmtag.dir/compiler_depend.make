# Empty compiler generated dependencies file for mmtag.
# This may be replaced when dependencies are built.
