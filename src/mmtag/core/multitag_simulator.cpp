#include "mmtag/core/multitag_simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::core {

multitag_simulator::multitag_simulator(const system_config& base,
                                       std::vector<tag_descriptor> tags)
    : base_([&] {
          validate(base);
          return base;
      }()),
      modulator_(base_.modulator),
      transmitter_(base_.transmitter, base_.seed * 2654435761ULL + 3)
{
    if (tags.empty()) throw std::invalid_argument("multitag_simulator: no tags");
    channels_.reserve(tags.size());
    for (const auto& tag : tags) {
        system_config cfg = base_;
        cfg.distance_m = tag.distance_m;
        cfg.tag_incidence_rad = tag.incidence_rad;
        channels_.emplace_back(make_channel_config(cfg));
    }
}

double multitag_simulator::burst_duration_s(std::size_t payload_bytes) const
{
    const auto frame = modulator_.modulate(std::vector<std::uint8_t>(payload_bytes, 0));
    return frame.duration_s;
}

std::vector<burst_outcome> multitag_simulator::run(const std::vector<tag_burst>& bursts)
{
    ++runs_;
    for (const auto& burst : bursts) {
        if (burst.tag_index >= channels_.size()) {
            throw std::invalid_argument("multitag_simulator: tag index out of range");
        }
    }

    // Modulate every burst and find the capture extent.
    const double fs = base_.sample_rate_hz;
    const std::size_t sps = modulator_.samples_per_symbol();
    std::vector<tag::modulated_frame> frames;
    std::vector<std::size_t> starts;
    frames.reserve(bursts.size());
    std::size_t latest_end = 0;
    // Lead for the canceller's quiet background window.
    const double training = base_.receiver.canceller.training_fraction +
                            base_.receiver.canceller.training_skip;
    for (const auto& burst : bursts) {
        frames.push_back(modulator_.modulate(burst.payload));
        const auto start = static_cast<std::size_t>(std::round(burst.start_s * fs));
        starts.push_back(start);
        latest_end = std::max(latest_end, start + frames.back().gamma.size());
    }
    const std::size_t margin =
        8 * sps + static_cast<std::size_t>(
                      std::ceil(4.0 * base_.receiver.canceller.tail_fraction *
                                static_cast<double>(latest_end)));
    std::size_t capture = latest_end + margin;
    const auto lead = static_cast<std::size_t>(
        std::ceil(2.0 * training * static_cast<double>(capture))) + sps;
    capture += lead;

    const auto query = transmitter_.generate(capture);

    // Environment: leakage + clutter from the first channel (shared room).
    const cvec quiet(1, cf64{});
    cvec antenna = channels_.front().ap_received(query.rf, quiet);

    // Superpose each tag's reflection, placed at its slot.
    for (std::size_t b = 0; b < bursts.size(); ++b) {
        cvec gamma(capture, cf64{});
        const std::size_t start = starts[b] + lead;
        const auto& wave = frames[b].gamma;
        for (std::size_t i = 0; i < wave.size() && start + i < capture; ++i) {
            gamma[start + i] = wave[i];
        }
        const cvec contribution =
            channels_[bursts[b].tag_index].tag_contribution(query.rf, gamma);
        for (std::size_t i = 0; i < capture; ++i) antenna[i] += contribution[i];
    }

    // Receive each burst in its own window (slot receiver): from just before
    // the burst to just after it, with a quiet pre-roll for the canceller.
    std::vector<burst_outcome> outcomes(bursts.size());
    for (std::size_t b = 0; b < bursts.size(); ++b) {
        const std::size_t start = starts[b] + lead;
        const std::size_t pre = std::min<std::size_t>(start, lead);
        const std::size_t begin = start - pre;
        const std::size_t window_tail =
            4 * sps + static_cast<std::size_t>(
                          std::ceil(2.5 * base_.receiver.canceller.tail_fraction *
                                    static_cast<double>(frames[b].gamma.size())));
        const std::size_t end =
            std::min(capture, start + frames[b].gamma.size() + window_tail);
        const std::span<const cf64> window{antenna.data() + begin, end - begin};
        const std::span<const cf64> lo{query.lo.data() + begin, end - begin};

        ap::ap_receiver receiver(base_.receiver,
                                 base_.seed * 7177 + runs_ * 131 + b);
        const auto rx = receiver.receive(window, lo);
        outcomes[b].frame_found = rx.frame_found;
        outcomes[b].snr_db = rx.snr_db;
        outcomes[b].payload = rx.payload;
        outcomes[b].delivered =
            rx.frame_found && rx.crc_ok && rx.payload == bursts[b].payload;
    }
    return outcomes;
}

} // namespace mmtag::core
