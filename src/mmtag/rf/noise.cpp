#include "mmtag/rf/noise.hpp"

#include <stdexcept>

namespace mmtag::rf {

double thermal_noise_power(double bandwidth_hz, double kelvin)
{
    if (bandwidth_hz <= 0.0) throw std::invalid_argument("thermal_noise_power: bandwidth <= 0");
    if (kelvin <= 0.0) throw std::invalid_argument("thermal_noise_power: temperature <= 0");
    return boltzmann * kelvin * bandwidth_hz;
}

double thermal_noise_dbm(double bandwidth_hz, double kelvin)
{
    return watt_to_dbm(thermal_noise_power(bandwidth_hz, kelvin));
}

double cascade_noise_figure_db(std::span<const double> stage_nf_db,
                               std::span<const double> stage_gain_db)
{
    if (stage_nf_db.empty() || stage_nf_db.size() != stage_gain_db.size()) {
        throw std::invalid_argument("cascade_noise_figure_db: stage vectors mismatch or empty");
    }
    double total_factor = from_db(stage_nf_db[0]);
    double gain_product = from_db(stage_gain_db[0]);
    for (std::size_t i = 1; i < stage_nf_db.size(); ++i) {
        total_factor += (from_db(stage_nf_db[i]) - 1.0) / gain_product;
        gain_product *= from_db(stage_gain_db[i]);
    }
    return to_db(total_factor);
}

awgn_source::awgn_source(double power_watt, std::uint64_t seed) : power_(power_watt), rng_(seed)
{
    if (power_watt < 0.0) throw std::invalid_argument("awgn_source: power must be >= 0");
}

void awgn_source::set_power(double power_watt)
{
    if (power_watt < 0.0) throw std::invalid_argument("awgn_source: power must be >= 0");
    power_ = power_watt;
}

cf64 awgn_source::sample()
{
    const double sigma = std::sqrt(power_ / 2.0);
    return {sigma * gaussian_(rng_), sigma * gaussian_(rng_)};
}

void awgn_source::add_to(std::span<cf64> buffer)
{
    for (auto& x : buffer) x += sample();
}

cvec awgn_source::apply(std::span<const cf64> input)
{
    cvec out(input.begin(), input.end());
    add_to(out);
    return out;
}

} // namespace mmtag::rf
