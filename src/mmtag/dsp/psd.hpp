// Power spectral density estimation: Welch's averaged modified periodogram,
// plus helpers for reading out band power and occupied bandwidth. Used by
// the spectrum-facing benches (line-code spectra, canceller residuals).
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/dsp/window.hpp"

namespace mmtag::dsp {

struct welch_config {
    std::size_t segment_length = 256; ///< power of two
    double overlap = 0.5;             ///< fraction in [0, 1)
    window_kind window = window_kind::hann;
    double sample_rate_hz = 1.0;      ///< scales the frequency axis
};

struct psd_estimate {
    rvec frequency_hz; ///< bin centers, DC-centered (negative..positive)
    rvec power;        ///< linear power density per bin, same length
    double sample_rate_hz = 1.0;

    [[nodiscard]] std::size_t size() const { return power.size(); }

    /// Total power in [f_low, f_high] (inclusive of overlapping bins).
    [[nodiscard]] double band_power(double f_low_hz, double f_high_hz) const;

    /// Total power across the estimate.
    [[nodiscard]] double total_power() const;

    /// Smallest symmetric-band width around `center_hz` containing
    /// `fraction` of the total power (occupied bandwidth).
    [[nodiscard]] double occupied_bandwidth(double fraction, double center_hz = 0.0) const;

    /// Frequency of the strongest bin.
    [[nodiscard]] double peak_frequency() const;
};

/// Welch PSD of a complex baseband record. The input is segmented with the
/// configured overlap, windowed, transformed, and averaged; output is
/// fftshifted so DC sits in the middle. Requires at least one full segment.
[[nodiscard]] psd_estimate welch_psd(std::span<const cf64> samples, const welch_config& cfg);

} // namespace mmtag::dsp
