file(REMOVE_RECURSE
  "CMakeFiles/bench_r04_ber_vs_distance.dir/bench_r04_ber_vs_distance.cpp.o"
  "CMakeFiles/bench_r04_ber_vs_distance.dir/bench_r04_ber_vs_distance.cpp.o.d"
  "bench_r04_ber_vs_distance"
  "bench_r04_ber_vs_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r04_ber_vs_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
