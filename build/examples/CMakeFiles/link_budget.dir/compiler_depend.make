# Empty compiler generated dependencies file for link_budget.
# This may be replaced when dependencies are built.
