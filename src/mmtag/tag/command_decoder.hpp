// Tag-side decoder for the AP's PIE command channel. Consumes the envelope
// detector's voltage stream, slices it against an adaptive threshold, times
// the high/low runs, and reassembles command bits — the entire "receiver"
// a backscatter tag can afford.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mmtag/common.hpp"
#include "mmtag/ap/query_encoder.hpp"

namespace mmtag::tag {

class command_decoder {
public:
    struct config {
        double sample_rate_hz = 250e6;
        double unit_s = 2e-6; ///< must match the AP's PIE unit
        /// Slicer threshold as a fraction between the observed low and high
        /// envelope levels.
        double threshold_fraction = 0.5;
    };

    explicit command_decoder(const config& cfg);

    struct decoded {
        ap::tag_command command;
        std::size_t end_sample = 0; ///< first sample after the command
    };

    /// Scans a detector-voltage stream for a delimiter and decodes the
    /// command that follows. Returns nullopt when no valid command is found.
    [[nodiscard]] std::optional<decoded> decode(std::span<const double> envelope) const;

    /// Slices an envelope into alternating run lengths (diagnostic).
    struct run {
        bool high = false;
        std::size_t samples = 0;
    };
    [[nodiscard]] std::vector<run> slice(std::span<const double> envelope) const;

private:
    [[nodiscard]] double units(std::size_t samples) const;

    config cfg_;
    std::size_t unit_samples_;
};

} // namespace mmtag::tag
