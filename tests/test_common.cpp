#include <gtest/gtest.h>

#include "mmtag/common.hpp"

namespace mmtag {
namespace {

TEST(common, db_round_trip)
{
    EXPECT_DOUBLE_EQ(to_db(1.0), 0.0);
    EXPECT_DOUBLE_EQ(to_db(10.0), 10.0);
    EXPECT_NEAR(from_db(to_db(0.004)), 0.004, 1e-15);
    EXPECT_NEAR(to_db(from_db(-37.2)), -37.2, 1e-12);
}

TEST(common, to_db_rejects_nonpositive)
{
    EXPECT_THROW((void)to_db(0.0), std::invalid_argument);
    EXPECT_THROW((void)to_db(-1.0), std::invalid_argument);
}

TEST(common, dbm_conversions)
{
    EXPECT_DOUBLE_EQ(watt_to_dbm(1.0), 30.0);
    EXPECT_NEAR(dbm_to_watt(0.0), 1e-3, 1e-15);
    EXPECT_NEAR(dbm_to_watt(27.0), 0.5012, 1e-3);
}

TEST(common, wavelength_at_24_ghz)
{
    EXPECT_NEAR(wavelength(24e9), 0.012491, 1e-5);
    EXPECT_THROW((void)wavelength(0.0), std::invalid_argument);
}

TEST(common, angle_conversions)
{
    EXPECT_DOUBLE_EQ(deg_to_rad(180.0), pi);
    EXPECT_DOUBLE_EQ(rad_to_deg(pi / 2.0), 90.0);
}

TEST(common, wrap_phase_range)
{
    for (double raw : {0.0, 3.0, -3.0, 7.5, -7.5, 100.0, -100.0, pi, -pi}) {
        const double wrapped = wrap_phase(raw);
        EXPECT_GT(wrapped, -pi - 1e-12);
        EXPECT_LE(wrapped, pi + 1e-12);
        // Same angle modulo 2 pi.
        EXPECT_NEAR(std::cos(wrapped), std::cos(raw), 1e-12);
        EXPECT_NEAR(std::sin(wrapped), std::sin(raw), 1e-12);
    }
}

} // namespace
} // namespace mmtag
