#include "mmtag/dsp/timing_recovery.hpp"

#include <stdexcept>

#include "mmtag/dsp/pulse_shape.hpp"

namespace mmtag::dsp {

gardner_timing_recovery::gardner_timing_recovery(const config& cfg) : cfg_(cfg)
{
    if (cfg_.samples_per_symbol < 2) {
        throw std::invalid_argument("gardner: samples_per_symbol must be >= 2");
    }
    if (!(cfg_.loop_bandwidth > 0.0 && cfg_.loop_bandwidth < 0.5)) {
        throw std::invalid_argument("gardner: loop bandwidth must be in (0, 0.5)");
    }
    // Standard 2nd-order loop gain derivation from bandwidth and damping.
    const double bn = cfg_.loop_bandwidth;
    const double zeta = cfg_.damping;
    const double theta = bn / (zeta + 1.0 / (4.0 * zeta));
    const double denom = 1.0 + 2.0 * zeta * theta + theta * theta;
    kp_ = 4.0 * zeta * theta / denom;
    ki_ = 4.0 * theta * theta / denom;
}

cf64 gardner_timing_recovery::interpolate(std::span<const cf64> samples, double index) const
{
    const auto i0 = static_cast<std::size_t>(index);
    const double frac = index - static_cast<double>(i0);
    if (i0 + 1 >= samples.size()) return samples[samples.size() - 1];
    return samples[i0] * (1.0 - frac) + samples[i0 + 1] * frac;
}

cvec gardner_timing_recovery::process(std::span<const cf64> samples)
{
    cvec symbols;
    const double sps = static_cast<double>(cfg_.samples_per_symbol);
    const double half = sps / 2.0;
    double index = next_index_;
    while (index + sps < static_cast<double>(samples.size())) {
        const cf64 mid = interpolate(samples, index + half);
        const cf64 current = interpolate(samples, index + sps);
        // Gardner TED: error = Re{ (current - previous) * conj(mid) }.
        const double error =
            (current.real() - previous_symbol_.real()) * mid.real() +
            (current.imag() - previous_symbol_.imag()) * mid.imag();
        integrator_ += ki_ * error;
        const double correction = kp_ * error + integrator_;
        mu_ = correction;
        symbols.push_back(current);
        previous_symbol_ = current;
        index += sps - correction;
    }
    next_index_ = index - static_cast<double>(samples.size());
    if (next_index_ < 0.0) next_index_ = 0.0;
    return symbols;
}

void gardner_timing_recovery::reset()
{
    mu_ = 0.0;
    integrator_ = 0.0;
    next_index_ = 0.0;
    previous_symbol_ = cf64{};
}

std::size_t best_symbol_offset(std::span<const cf64> samples, std::size_t samples_per_symbol)
{
    if (samples_per_symbol == 0) {
        throw std::invalid_argument("best_symbol_offset: samples_per_symbol must be >= 1");
    }
    std::size_t best = 0;
    double best_metric = -1.0;
    for (std::size_t offset = 0; offset < samples_per_symbol; ++offset) {
        const cvec symbols = integrate_and_dump(samples, samples_per_symbol, offset);
        double energy = 0.0;
        for (cf64 s : symbols) energy += std::norm(s);
        if (!symbols.empty()) energy /= static_cast<double>(symbols.size());
        if (energy > best_metric) {
            best_metric = energy;
            best = offset;
        }
    }
    return best;
}

} // namespace mmtag::dsp
