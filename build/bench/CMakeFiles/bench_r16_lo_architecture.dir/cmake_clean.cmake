file(REMOVE_RECURSE
  "CMakeFiles/bench_r16_lo_architecture.dir/bench_r16_lo_architecture.cpp.o"
  "CMakeFiles/bench_r16_lo_architecture.dir/bench_r16_lo_architecture.cpp.o.d"
  "bench_r16_lo_architecture"
  "bench_r16_lo_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r16_lo_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
