// Atmospheric attenuation at mmWave: piecewise oxygen/water-vapor specific
// attenuation (ITU-R P.676 shape, tabulated) and simple rain attenuation
// (ITU-R P.838 power-law coefficients at selected bands).
#pragma once

#include "mmtag/common.hpp"

namespace mmtag::channel {

/// Clear-air specific attenuation [dB/km] at `frequency_hz` (1-100 GHz),
/// standard pressure/temperature. Captures the 22 GHz water line and the
/// 60 GHz oxygen peak; interpolated from ITU-R P.676 tabulations.
[[nodiscard]] double gaseous_attenuation_db_per_km(double frequency_hz);

/// Rain specific attenuation [dB/km] for `rain_rate_mm_per_hr` at
/// `frequency_hz` via gamma = k R^alpha (ITU-R P.838 coefficients).
[[nodiscard]] double rain_attenuation_db_per_km(double frequency_hz, double rain_rate_mm_per_hr);

/// Total atmospheric loss in dB over a one-way path.
[[nodiscard]] double atmospheric_loss_db(double distance_m, double frequency_hz,
                                         double rain_rate_mm_per_hr = 0.0);

} // namespace mmtag::channel
