# Empty dependencies file for bench_r06_rate_adaptation.
# This may be replaced when dependencies are built.
