// AP -> tag command signaling. The AP amplitude-modulates its query carrier
// with pulse-interval encoding (PIE, the RFID reader downlink technique):
// bit durations carry the data, so the tag can decode with nothing but its
// envelope detector and a timer — no mmWave receiver. The carrier keeps
// running between commands so the tag stays illuminated for backscatter.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mmtag/common.hpp"

namespace mmtag::ap {

/// One MAC command, 40 bits on air: kind(8) | tag id(16) | parameter(8) |
/// CRC-8(8).
struct tag_command {
    enum class kind : std::uint8_t {
        query_all = 0x01, ///< begin inventory round; parameter = Q
        select = 0x02,    ///< address one tag for the next exchange
        read = 0x03,      ///< addressed tag backscatters its payload
        sleep = 0x04,     ///< addressed tag mutes until the next round
    };
    kind command = kind::query_all;
    std::uint16_t tag_id = 0;
    std::uint8_t parameter = 0;
};

/// Serializes a command to its 40-bit representation (with CRC-8 appended).
[[nodiscard]] std::vector<std::uint8_t> command_bits(const tag_command& cmd);

/// Parses 40 bits back into a command; nullopt on CRC failure or unknown
/// command kind.
[[nodiscard]] std::optional<tag_command> parse_command_bits(
    std::span<const std::uint8_t> bits);

class query_encoder {
public:
    struct config {
        double sample_rate_hz = 250e6;
        /// PIE base unit (tari). Data-0 occupies 1 high unit, data-1 two,
        /// each followed by a 1-unit low gap.
        double unit_s = 2e-6;
        /// Carrier amplitude during "low" as a fraction of full scale.
        /// > 0 keeps the tag illuminated (and its detector biased).
        double low_level = 0.1;
    };

    explicit query_encoder(const config& cfg);

    [[nodiscard]] const config& parameters() const { return cfg_; }
    [[nodiscard]] std::size_t unit_samples() const { return unit_samples_; }

    /// Amplitude envelope (values in [low_level, 1]) for one command:
    /// [settle high][delimiter low x3][sync high][gap][PIE bits][settle high].
    [[nodiscard]] rvec encode(const tag_command& cmd) const;

    /// Envelope duration for one command [s].
    [[nodiscard]] double command_duration_s(const tag_command& cmd) const;

private:
    void append_level(rvec& envelope, double level, std::size_t units) const;

    config cfg_;
    std::size_t unit_samples_;
};

} // namespace mmtag::ap
