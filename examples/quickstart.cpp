// Quickstart: one tag, one message, end to end.
//
// Builds the default scenario (24 GHz ISM, 27 dBm AP, 8-element Van Atta
// tag, QPSK R=1/2 at 5 Msym/s), backscatters a string from the tag to the
// AP, and prints what the receiver saw.
//
//   $ ./quickstart [distance_m]
#include <cstdio>
#include <cstdlib>

#include "mmtag/core/link_budget.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/phy/bitio.hpp"

int main(int argc, char** argv)
{
    using namespace mmtag;

    double distance = 2.0;
    if (argc > 1) distance = std::atof(argv[1]);
    if (distance <= 0.0) {
        std::fprintf(stderr, "usage: %s [distance_m > 0]\n", argv[0]);
        return 1;
    }

    auto cfg = core::default_scenario();
    cfg.distance_m = distance;

    std::printf("mmtag quickstart: tag at %.1f m, %.1f Msym/s %s/%s uplink\n", distance,
                cfg.symbol_rate_hz / 1e6, phy::modulation_name(cfg.modulator.frame.scheme).c_str(),
                phy::fec_mode_name(cfg.modulator.frame.fec));

    // What the physics says before we simulate a single sample.
    const core::link_budget budget(cfg);
    const auto entry = budget.at(distance);
    std::printf("  link budget: %.1f dBm at the tag, %.1f dBm back at the AP, "
                "predicted SNR %.1f dB\n",
                entry.incident_at_tag_dbm, entry.received_at_ap_dbm, entry.snr_db);

    // The actual exchange.
    core::link_simulator sim(cfg);
    const auto payload = phy::string_to_bytes("hello from a 21 mW tag at 24 GHz!");
    const auto result = sim.run_frame(payload);

    if (!result.rx.frame_found) {
        std::printf("  no frame detected -- out of range for this configuration.\n");
        return 2;
    }
    std::printf("  sync quality %.1f, measured SNR %.1f dB, EVM %.1f dB\n",
                result.rx.sync_quality, result.rx.snr_db, result.rx.evm_db);
    std::printf("  CRC %s, payload: \"%s\"\n", result.rx.crc_ok ? "ok" : "FAILED",
                phy::bytes_to_string(result.rx.payload).c_str());
    std::printf("  tag spent %.2f uJ (%.2f nJ/bit) on this frame\n",
                result.tag_energy_j * 1e6,
                result.tag_energy_j / static_cast<double>(result.bits) * 1e9);
    return result.rx.crc_ok ? 0 : 3;
}
