#include "mmtag/dsp/fft.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::dsp {

bool is_power_of_two(std::size_t n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

std::size_t next_power_of_two(std::size_t n)
{
    if (n <= 1) return 1;
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

fft_plan::fft_plan(std::size_t size) : size_(size)
{
    if (!is_power_of_two(size)) {
        throw std::invalid_argument("fft_plan: size must be a power of two");
    }
    bit_reverse_.resize(size_);
    std::size_t log2n = 0;
    while ((std::size_t{1} << log2n) < size_) ++log2n;
    for (std::size_t i = 0; i < size_; ++i) {
        std::size_t reversed = 0;
        for (std::size_t bit = 0; bit < log2n; ++bit) {
            if (i & (std::size_t{1} << bit)) reversed |= std::size_t{1} << (log2n - 1 - bit);
        }
        bit_reverse_[i] = reversed;
    }
    twiddles_.resize(size_ / 2);
    for (std::size_t k = 0; k < size_ / 2; ++k) {
        const double angle = -two_pi * static_cast<double>(k) / static_cast<double>(size_);
        twiddles_[k] = std::polar(1.0, angle);
    }
}

void fft_plan::forward(std::span<cf64> data) const
{
    transform(data, false);
}

void fft_plan::inverse(std::span<cf64> data) const
{
    transform(data, true);
    const double scale = 1.0 / static_cast<double>(size_);
    for (auto& x : data) x *= scale;
}

void fft_plan::transform(std::span<cf64> data, bool invert) const
{
    if (data.size() != size_) {
        throw std::invalid_argument("fft_plan: data length does not match plan size");
    }
    for (std::size_t i = 0; i < size_; ++i) {
        const std::size_t j = bit_reverse_[i];
        if (i < j) std::swap(data[i], data[j]);
    }
    for (std::size_t len = 2; len <= size_; len <<= 1) {
        const std::size_t half = len / 2;
        const std::size_t stride = size_ / len;
        for (std::size_t start = 0; start < size_; start += len) {
            for (std::size_t k = 0; k < half; ++k) {
                cf64 w = twiddles_[k * stride];
                if (invert) w = std::conj(w);
                const cf64 even = data[start + k];
                const cf64 odd = data[start + k + half] * w;
                data[start + k] = even + odd;
                data[start + k + half] = even - odd;
            }
        }
    }
}

cvec fft(std::span<const cf64> input)
{
    cvec out(input.begin(), input.end());
    fft_plan(out.size()).forward(out);
    return out;
}

cvec ifft(std::span<const cf64> input)
{
    cvec out(input.begin(), input.end());
    fft_plan(out.size()).inverse(out);
    return out;
}

cvec fft_convolve(std::span<const cf64> a, std::span<const cf64> b)
{
    if (a.empty() || b.empty()) return {};
    const std::size_t full = a.size() + b.size() - 1;
    const std::size_t padded = next_power_of_two(full);
    cvec fa(a.begin(), a.end());
    cvec fb(b.begin(), b.end());
    fa.resize(padded);
    fb.resize(padded);
    const fft_plan plan(padded);
    plan.forward(fa);
    plan.forward(fb);
    for (std::size_t i = 0; i < padded; ++i) fa[i] *= fb[i];
    plan.inverse(fa);
    fa.resize(full);
    return fa;
}

rvec power_spectrum(std::span<const cf64> input)
{
    if (input.empty()) return {};
    const std::size_t padded = next_power_of_two(input.size());
    cvec x(input.begin(), input.end());
    x.resize(padded);
    fft_plan(padded).forward(x);
    rvec spectrum(padded);
    const double scale = 1.0 / static_cast<double>(padded);
    for (std::size_t k = 0; k < padded; ++k) spectrum[k] = std::norm(x[k]) * scale;
    return spectrum;
}

rvec fft_shift(std::span<const double> spectrum)
{
    rvec shifted(spectrum.size());
    const std::size_t n = spectrum.size();
    const std::size_t half = (n + 1) / 2;
    for (std::size_t i = 0; i < n; ++i) shifted[i] = spectrum[(i + half) % n];
    return shifted;
}

} // namespace mmtag::dsp
