// R5 — BER vs Eb/N0 per modulation against theory.
// Symbol-level AWGN sweep of the exact mapper/demapper the tag and AP use.
// Expected shape: simulated points sit on the closed-form curves (exact for
// BPSK/QPSK, tight union bound for 8/16-PSK), validating the demodulator and
// calibrating every downstream BER claim.
//
// Runs on the parallel Monte-Carlo runtime: the bit budget of each
// (modulation, Eb/N0) point is split into counter-seeded chunks merged into
// one core::error_counter in trial order — bit-identical for any --jobs.
#include <cmath>
#include <random>

#include "bench_util.hpp"
#include "mmtag/core/metrics.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/phy/modulation.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/runtime/sweep_runner.hpp"

using namespace mmtag;

namespace {

struct sweep_cell {
    phy::modulation scheme;
    double ebn0_db;
    double theory;
    std::size_t bits_target;
};

/// One Monte-Carlo chunk: ~`bits` decided symbols under AWGN at the cell's
/// operating point, all randomness drawn from the chunk's counter seed.
core::error_counter simulate_chunk(const sweep_cell& cell, std::size_t bits,
                                   std::uint64_t seed)
{
    const std::size_t k = phy::bits_per_symbol(cell.scheme);
    const double es_n0 = from_db(cell.ebn0_db) * static_cast<double>(k);
    const double noise_sigma = std::sqrt(0.5 / es_n0); // unit-energy symbols
    std::mt19937_64 rng(runtime::substream(seed, 0));
    std::normal_distribution<double> gaussian(0.0, noise_sigma);

    core::error_counter errors;
    std::size_t block = 0;
    while (errors.bits() < bits) {
        const auto payload =
            phy::random_bits(3000 * k, runtime::substream(seed, 1 + block++));
        cvec symbols = phy::map_bits(payload, cell.scheme);
        for (auto& s : symbols) s += cf64{gaussian(rng), gaussian(rng)};
        const auto decided = phy::demap_hard(symbols, cell.scheme);
        errors.add_bits(payload.size(), phy::hamming_distance(decided, payload));
    }
    return errors;
}

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    bench::banner("R5", "BER vs Eb/N0 per modulation, simulated vs theory", opts.csv);

    constexpr std::size_t kChunks = 8; // trials per sweep point
    std::vector<sweep_cell> cells;
    for (auto scheme : {phy::modulation::bpsk, phy::modulation::qpsk, phy::modulation::psk8,
                        phy::modulation::psk16}) {
        for (double ebn0 = 0.0; ebn0 <= 14.0; ebn0 += 2.0) {
            const double theory = phy::theoretical_ber(scheme, ebn0);
            if (theory < 1e-7) continue; // beyond affordable sample counts
            const std::size_t bits = theory > 1e-3 ? 120'000 : 1'200'000;
            cells.push_back({scheme, ebn0, theory, bits});
        }
    }

    runtime::sweep_options sweep;
    sweep.jobs = opts.jobs;
    sweep.base_seed = opts.seed;
    sweep.trials_per_point = kChunks;
    sweep.progress = runtime::stderr_progress();

    const auto outcome = runtime::run_sweep<core::error_counter>(
        sweep, cells.size(), [&](std::size_t point, std::size_t, std::uint64_t seed) {
            return simulate_chunk(cells[point], cells[point].bits_target / kChunks, seed);
        });

    runtime::result_writer results("R5", "BER vs Eb/N0 per modulation vs theory",
                                   {"ebn0_db", "modulation"}, opts.seed);
    bench::table out({"ebn0_dB", "modulation", "simulated", "ci95", "theory"}, opts.csv);
    for (std::size_t point = 0; point < cells.size(); ++point) {
        const auto& cell = cells[point];
        const auto& errors = outcome.points[point].aggregate;
        out.add_row({bench::fmt("%.0f", cell.ebn0_db), phy::modulation_name(cell.scheme),
                     bench::fmt("%.2e", errors.ber()),
                     bench::fmt("%.1e", errors.ber_confidence()),
                     bench::fmt("%.2e", cell.theory)});
        auto axis = runtime::json_value::object();
        axis.set("ebn0_db", runtime::json_value::number(cell.ebn0_db));
        axis.set("modulation",
                 runtime::json_value::string(phy::modulation_name(cell.scheme)));
        auto metrics = runtime::result_writer::metrics(errors);
        metrics.set("theory_ber", runtime::json_value::number(cell.theory));
        results.add_point(std::move(axis), kChunks, std::move(metrics));
    }
    out.print();
    const auto written = results.write(opts.json_path, outcome.wall_s, outcome.jobs,
                                       outcome.trials_per_s());
    if (!opts.csv) {
        std::printf("\n%s\n", runtime::summary_line(cells.size(), outcome.trials,
                                                    outcome.wall_s, outcome.jobs)
                                  .c_str());
        if (!written.empty()) std::printf("wrote %s\n", written.c_str());
    }
    return 0;
}
