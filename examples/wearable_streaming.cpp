// Wearable streaming: a high-rate tag walks away from the AP.
//
// A body-worn sensor (e.g. an AR controller) streams frames while its range
// and orientation change each second. The AP tracks SNR with an exponential
// average and adapts modulation/FEC on the fly. Demonstrates sustained
// operation of the sample-level simulator plus the rate ladder — the
// "mmWave connectivity for low-power wearables" scenario that motivates
// mmWave backscatter.
//
//   $ ./wearable_streaming [steps]
#include <cstdio>
#include <cstdlib>

#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/phy/bitio.hpp"

int main(int argc, char** argv)
{
    using namespace mmtag;

    std::size_t steps = 12;
    if (argc > 1) steps = static_cast<std::size_t>(std::atoi(argv[1]));
    if (steps == 0 || steps > 1000) {
        std::fprintf(stderr, "usage: %s [steps in 1..1000]\n", argv[0]);
        return 1;
    }

    ap::rate_adapter adapter(2.0);
    double total_bits = 0.0;
    double total_airtime = 0.0;
    double total_energy = 0.0;

    std::printf("%-5s %-8s %-9s %-9s %-16s %-9s %s\n", "step", "range_m", "angle_deg",
                "snr_dB", "rate", "Mbps", "status");

    for (std::size_t step = 0; step < steps; ++step) {
        // A walking path: out to 7 m and back, with body rotation.
        const double phase = static_cast<double>(step) / static_cast<double>(steps);
        const double range = 1.5 + 5.5 * std::sin(pi * phase);
        const double angle_deg = 30.0 * std::sin(2.0 * two_pi * phase);

        auto cfg = core::default_scenario();
        cfg.distance_m = std::max(range, 0.5);
        cfg.tag_incidence_rad = deg_to_rad(angle_deg);
        cfg.seed = 100 + step;

        // Probe with the current rate, then adapt for the data burst.
        core::link_simulator probe_sim(cfg);
        const auto probe = probe_sim.run_frame(phy::random_bytes(16, step));
        const double snr = probe.rx.frame_found ? probe.rx.snr_db : -10.0;
        const auto option = adapter.select_smoothed(snr);

        cfg.modulator.frame.scheme = option.scheme;
        cfg.modulator.frame.fec = option.fec;
        cfg.receiver.frame = cfg.modulator.frame;
        core::link_simulator sim(cfg);
        const auto report = sim.run_trials(4, 96);

        total_bits += (1.0 - report.per) * 4.0 * 96.0 * 8.0;
        total_airtime += 4.0 * 96.0 * 8.0 / (option.efficiency() * cfg.symbol_rate_hz);
        total_energy += report.tag_energy_per_bit_j * 4.0 * 96.0 * 8.0;

        const std::string rate = phy::modulation_name(option.scheme) + std::string("/") +
                                 phy::fec_mode_name(option.fec);
        std::printf("%-5zu %-8.2f %-9.1f %-9.1f %-16s %-9.2f %s\n", step, range, angle_deg,
                    adapter.smoothed_snr_db(), rate.c_str(), report.goodput_bps / 1e6,
                    report.per == 0.0 ? "clean" : "losses");
    }

    std::printf("\nsession: %.1f kb delivered, mean tag energy %.2f nJ/bit\n",
                total_bits / 1e3, total_energy / std::max(total_bits, 1.0) * 1e9);
    return 0;
}
