# Empty dependencies file for bench_r04_ber_vs_distance.
# This may be replaced when dependencies are built.
