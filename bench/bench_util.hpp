// Shared plumbing for the experiment harnesses: aligned-table/CSV printing
// and the standard bench scenario (a faster-sampling variant of the default
// system so sweeps finish in seconds).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mmtag/core/config.hpp"

namespace mmtag::bench {

/// True when the binary was invoked with --csv.
inline bool csv_mode(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--csv") return true;
    }
    return false;
}

/// Simple column-aligned table with an optional CSV mode.
class table {
public:
    table(std::vector<std::string> headers, bool csv)
        : headers_(std::move(headers)), csv_(csv)
    {
    }

    void add_row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

    void print() const
    {
        if (csv_) {
            print_delimited(",");
            return;
        }
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
        for (const auto& row : rows_) {
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
                widths[c] = std::max(widths[c], row[c].size());
            }
        }
        print_row(headers_, widths);
        std::string rule;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            rule += std::string(widths[c], '-');
            if (c + 1 < widths.size()) rule += "--";
        }
        std::printf("%s\n", rule.c_str());
        for (const auto& row : rows_) print_row(row, widths);
    }

private:
    void print_delimited(const char* sep) const
    {
        auto emit = [&](const std::vector<std::string>& row) {
            for (std::size_t c = 0; c < row.size(); ++c) {
                std::printf("%s%s", row[c].c_str(), c + 1 < row.size() ? sep : "");
            }
            std::printf("\n");
        };
        emit(headers_);
        for (const auto& row : rows_) emit(row);
    }

    void print_row(const std::vector<std::string>& row,
                   const std::vector<std::size_t>& widths) const
    {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                        c + 1 < row.size() ? "  " : "");
        }
        std::printf("\n");
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    bool csv_;
};

inline std::string fmt(const char* format, double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, format, value);
    return buffer;
}

/// The bench scenario: the library's fast (50 MS/s) preset.
inline core::system_config bench_scenario()
{
    return core::fast_scenario();
}

inline void banner(const char* id, const char* title, bool csv)
{
    if (csv) return;
    std::printf("\n=== %s: %s ===\n\n", id, title);
}

} // namespace mmtag::bench
