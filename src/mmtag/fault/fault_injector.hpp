// Applies a fault_schedule to a running simulation. The simulators consult
// the injector once per frame/burst window and receive the aggregate
// impairment to apply; duration-bounded events (blockage, dropout,
// interferer, brownout) expire on their own, while an LO step detunes the
// receive chain *persistently* until the supervisor re-runs acquisition
// (clear_lo_steps) — the failure mode that turns into a goodput cliff when
// nobody is supervising the link.
#pragma once

#include <cstdint>

#include "mmtag/fault/fault_schedule.hpp"

namespace mmtag::obs {
class metrics_registry;
}

namespace mmtag::fault {

/// Aggregate impairment over one frame/burst window. Amplitude factors are
/// field (voltage) scalings; the deepest overlapping event of each kind wins.
struct impairment {
    double tag_amplitude = 1.0;     ///< one-way tag-path factor (blockage)
    double carrier_amplitude = 1.0; ///< AP carrier factor (dropout)
    double lo_offset_hz = 0.0;      ///< uncompensated RX/TX LO mismatch
    /// Interferer power relative to the tag's backscatter return [dB];
    /// <= -300 means no interferer burst overlaps the window.
    double interferer_rel_db = -300.0;
    bool tag_powered = true;        ///< false during a brownout

    [[nodiscard]] bool interferer_active() const { return interferer_rel_db > -300.0; }
    [[nodiscard]] bool any() const;
};

class fault_injector {
public:
    explicit fault_injector(fault_schedule schedule);

    [[nodiscard]] const fault_schedule& schedule() const { return schedule_; }

    /// Attaches an observability registry: each at() query that sees an
    /// impairment bumps a per-kind "fault/..." counter (and emits a
    /// fault.window trace instant when a trace session is active). Not
    /// owned; nullptr detaches.
    void attach_metrics(obs::metrics_registry* metrics) { metrics_ = metrics; }

    /// Impairment seen by a frame occupying [start_s, start_s + duration_s).
    [[nodiscard]] impairment at(double start_s, double duration_s) const;

    /// Re-lock after acquisition: forgets every LO step that started at or
    /// before `time_s`. Called by the link supervisor's session watchdog.
    void clear_lo_steps(double time_s);

    /// Uncompensated LO offset at `time_s` (latest uncleared step wins).
    [[nodiscard]] double lo_offset_hz(double time_s) const;

private:
    fault_schedule schedule_;
    obs::metrics_registry* metrics_ = nullptr; ///< observer only, never read
    double lo_cleared_until_s_ = 0.0;
};

} // namespace mmtag::fault
