#include "mmtag/runtime/result_writer.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "mmtag/core/metrics.hpp"
#include "mmtag/runtime/json_io.hpp"

namespace mmtag::runtime {

json_value json_value::boolean(bool b)
{
    json_value v;
    v.kind_ = kind::boolean;
    v.bool_ = b;
    return v;
}

json_value json_value::number(double value)
{
    json_value v;
    v.kind_ = kind::number;
    v.number_ = value;
    return v;
}

json_value json_value::integer(std::int64_t value)
{
    json_value v;
    v.kind_ = kind::integer;
    v.integer_ = value;
    return v;
}

json_value json_value::unsigned_integer(std::uint64_t value)
{
    json_value v;
    v.kind_ = kind::unsigned_integer;
    v.unsigned_ = value;
    return v;
}

json_value json_value::string(std::string value)
{
    json_value v;
    v.kind_ = kind::string;
    v.string_ = std::move(value);
    return v;
}

json_value json_value::array()
{
    json_value v;
    v.kind_ = kind::array;
    return v;
}

json_value json_value::object()
{
    json_value v;
    v.kind_ = kind::object;
    return v;
}

json_value& json_value::set(const std::string& key, json_value value)
{
    if (kind_ != kind::object) throw std::logic_error("json_value::set on non-object");
    for (auto& member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

json_value& json_value::push(json_value value)
{
    if (kind_ != kind::array) throw std::logic_error("json_value::push on non-array");
    items_.push_back(std::move(value));
    return *this;
}

std::size_t json_value::size() const
{
    if (kind_ == kind::array) return items_.size();
    if (kind_ == kind::object) return members_.size();
    return 0;
}

const json_value* json_value::find(const std::string& key) const
{
    if (kind_ != kind::object) return nullptr;
    for (const auto& member : members_) {
        if (member.first == key) return &member.second;
    }
    return nullptr;
}

const json_value& json_value::at(std::size_t index) const
{
    if (kind_ != kind::array) throw std::logic_error("json_value::at on non-array");
    if (index >= items_.size()) throw std::out_of_range("json_value::at out of range");
    return items_[index];
}

double json_value::as_number() const
{
    switch (kind_) {
    case kind::number: return number_;
    case kind::integer: return static_cast<double>(integer_);
    case kind::unsigned_integer: return static_cast<double>(unsigned_);
    default: throw std::logic_error("json_value::as_number on non-number");
    }
}

std::uint64_t json_value::as_uint() const
{
    if (kind_ == kind::unsigned_integer) return unsigned_;
    if (kind_ == kind::integer && integer_ >= 0) {
        return static_cast<std::uint64_t>(integer_);
    }
    throw std::logic_error("json_value::as_uint on non-unsigned value");
}

bool json_value::as_boolean() const
{
    if (kind_ != kind::boolean) throw std::logic_error("json_value::as_boolean on non-boolean");
    return bool_;
}

const std::string& json_value::as_string() const
{
    if (kind_ != kind::string) throw std::logic_error("json_value::as_string on non-string");
    return string_;
}

namespace {

void escape_into(std::string& out, const std::string& text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

// Shortest decimal that round-trips, so 0.1 prints as "0.1" not
// "0.10000000000000001" — and identically on every run, which the
// byte-comparison determinism test relies on.
void format_double(std::string& out, double value)
{
    if (!std::isfinite(value)) {
        out += "null";
        return;
    }
    std::array<char, 40> buffer{};
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buffer.data(), buffer.size(), "%.*g", precision, value);
        double parsed = 0.0;
        std::sscanf(buffer.data(), "%lf", &parsed);
        if (parsed == value) break;
    }
    out += buffer.data();
}

void newline_indent(std::string& out, int indent, int depth)
{
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

} // namespace

void json_value::dump_to(std::string& out, int indent, int depth) const
{
    switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::number: format_double(out, number_); break;
    case kind::integer: {
        char buffer[24];
        std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(integer_));
        out += buffer;
        break;
    }
    case kind::unsigned_integer: {
        char buffer[24];
        std::snprintf(buffer, sizeof buffer, "%llu",
                      static_cast<unsigned long long>(unsigned_));
        out += buffer;
        break;
    }
    case kind::string: escape_into(out, string_); break;
    case kind::array: {
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i != 0) out += ',';
            newline_indent(out, indent, depth + 1);
            items_[i].dump_to(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out += ']';
        break;
    }
    case kind::object: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i != 0) out += ',';
            newline_indent(out, indent, depth + 1);
            escape_into(out, members_[i].first);
            out += indent > 0 ? ": " : ":";
            members_[i].second.dump_to(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out += '}';
        break;
    }
    }
}

std::string json_value::dump(int indent) const
{
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

result_writer::result_writer(std::string id, std::string title,
                             std::vector<std::string> axes, std::uint64_t base_seed)
    : id_(std::move(id)), title_(std::move(title)), axes_(std::move(axes)),
      base_seed_(base_seed)
{
}

void result_writer::add_point(json_value axis, std::size_t trials, json_value metrics)
{
    if (!axis.is_object()) throw std::invalid_argument("result_writer: axis not an object");
    if (!metrics.is_object()) {
        throw std::invalid_argument("result_writer: metrics not an object");
    }
    auto point = json_value::object();
    point.set("axis", std::move(axis));
    point.set("trials", json_value::unsigned_integer(trials));
    point.set("metrics", std::move(metrics));
    points_.push_back(std::move(point));
}

json_value result_writer::metrics(const core::error_counter& errors)
{
    auto m = json_value::object();
    m.set("bits", json_value::unsigned_integer(errors.bits()));
    m.set("bit_errors", json_value::unsigned_integer(errors.bit_errors()));
    m.set("ber", ratio_or_null(errors.ber(), errors.bits()));
    m.set("ber_ci95", ratio_or_null(errors.ber_confidence(), errors.bits()));
    m.set("frames", json_value::unsigned_integer(errors.frames()));
    m.set("frames_delivered", json_value::unsigned_integer(errors.frames_delivered()));
    m.set("per", ratio_or_null(errors.per(), errors.frames()));
    return m;
}

json_value result_writer::metrics(const core::link_report& report)
{
    auto m = json_value::object();
    m.set("ber", ratio_or_null(report.ber, report.bits));
    m.set("ber_ci95", ratio_or_null(report.ber_confidence(), report.bits));
    m.set("per", ratio_or_null(report.per, report.frames));
    m.set("mean_snr_db", ratio_or_null(report.mean_snr_db, report.snr_samples));
    m.set("mean_evm_db", ratio_or_null(report.mean_evm_db, report.evm_samples));
    m.set("goodput_bps", ratio_or_null(report.goodput_bps, report.frames_delivered));
    m.set("tag_energy_per_bit_j", ratio_or_null(report.tag_energy_per_bit_j, report.bits));
    m.set("frames", json_value::unsigned_integer(report.frames));
    m.set("frames_delivered", json_value::unsigned_integer(report.frames_delivered));
    m.set("bits", json_value::unsigned_integer(report.bits));
    m.set("bit_errors", json_value::unsigned_integer(report.bit_errors));
    return m;
}

void result_writer::set_metrics(json_value metrics)
{
    if (!metrics.is_object()) {
        throw std::invalid_argument("result_writer: metrics snapshot not an object");
    }
    has_metrics_ = true;
    metrics_ = std::move(metrics);
}

void result_writer::set_run_profile(json_value profile)
{
    if (!profile.is_object()) {
        throw std::invalid_argument("result_writer: run profile not an object");
    }
    has_profile_ = true;
    profile_ = std::move(profile);
}

namespace {

json_value aggregates_value(const std::string& id, const std::string& title,
                            const std::vector<std::string>& axes,
                            std::uint64_t base_seed,
                            const std::vector<json_value>& points,
                            const json_value* metrics)
{
    auto doc = json_value::object();
    // Schema /2 only when an observability snapshot rides along, so existing
    // consumers of /1 output see byte-identical files when metrics are off.
    doc.set("schema", json_value::string(metrics != nullptr ? "mmtag.bench.result/2"
                                                            : "mmtag.bench.result/1"));
    doc.set("id", json_value::string(id));
    doc.set("title", json_value::string(title));
    doc.set("base_seed", json_value::unsigned_integer(base_seed));
    auto axis_list = json_value::array();
    for (const auto& axis : axes) axis_list.push(json_value::string(axis));
    doc.set("axes", std::move(axis_list));
    auto point_list = json_value::array();
    for (const auto& point : points) point_list.push(point);
    doc.set("points", std::move(point_list));
    if (metrics != nullptr) doc.set("metrics", *metrics);
    return doc;
}

} // namespace

std::string result_writer::aggregates_json() const
{
    return aggregates_value(id_, title_, axes_, base_seed_, points_,
                            has_metrics_ ? &metrics_ : nullptr)
        .dump(2);
}

std::string result_writer::document(double wall_s, std::size_t jobs,
                                    double trials_per_s) const
{
    auto doc = aggregates_value(id_, title_, axes_, base_seed_, points_,
                                has_metrics_ ? &metrics_ : nullptr);
    auto run = json_value::object();
    run.set("jobs", json_value::unsigned_integer(jobs));
    run.set("wall_s", json_value::number(wall_s));
    run.set("trials_per_s", json_value::number(trials_per_s));
    run.set("git", json_value::string(git_describe()));
    if (has_profile_) run.set("profile", profile_);
    doc.set("run", std::move(run));
    return doc.dump(2);
}

std::string result_writer::write(const std::string& path, double wall_s, std::size_t jobs,
                                 double trials_per_s) const
{
    const std::string target = path.empty() ? default_output_path(id_) : path;
    if (!write_text_file(target, document(wall_s, jobs, trials_per_s))) return {};
    return target;
}

std::string default_output_path(const std::string& id)
{
    return "bench/out/BENCH_" + id + ".json";
}

const std::string& git_describe()
{
    static const std::string described = [] {
        std::string result = "unknown";
#ifndef _WIN32
        if (FILE* pipe = popen("git describe --always --dirty --tags 2>/dev/null", "r")) {
            char buffer[128];
            if (std::fgets(buffer, sizeof buffer, pipe) != nullptr) {
                std::string line(buffer);
                while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
                    line.pop_back();
                }
                if (!line.empty()) result = line;
            }
            pclose(pipe);
        }
#endif
        return result;
    }();
    return described;
}

} // namespace mmtag::runtime
