#include "mmtag/core/supervised_link.hpp"

#include <limits>
#include <vector>

#include "mmtag/fault/fault_injector.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::core {

namespace {

/// The link's configured MCS as a rate_option (threshold looked up from the
/// ladder when present; transmission only needs the scheme/FEC pair).
ap::rate_option nominal_rate_of(const link_simulator& link)
{
    const auto& frame = link.parameters().modulator.frame;
    for (const auto& option : ap::rate_table()) {
        if (option.scheme == frame.scheme && option.fec == frame.fec) return option;
    }
    ap::rate_option option;
    option.scheme = frame.scheme;
    option.fec = frame.fec;
    return option;
}

ap::supervised_report run(link_simulator& link, fault::fault_injector* faults,
                          const ap::supervisor_config& cfg, std::size_t frames,
                          std::size_t payload_bytes)
{
    link.attach_fault_injector(faults);
    // One registry observes the whole supervised session: the supervisor
    // feeds it through cfg.metrics, so route the link and injector there
    // too. A null cfg.metrics leaves any registry the caller attached alone.
    if (cfg.metrics != nullptr) {
        link.attach_metrics(cfg.metrics);
        if (faults != nullptr) faults->attach_metrics(cfg.metrics);
    }

    std::vector<std::uint8_t> payload;
    ap::link_driver driver;
    driver.next_frame = [&](std::size_t f) {
        payload = phy::random_bytes(payload_bytes,
                                    link.parameters().seed * 1'000'003 + 500'000 + f);
    };
    driver.transmit = [&](const ap::rate_option& rate) {
        link.set_rate(rate.scheme, rate.fec);
        const auto result = link.run_frame(payload);
        return ap::attempt_result{result.delivered, result.rx.snr_db,
                                  result.elapsed_s};
    };
    // A probe is a short frame (minimal payload) at the requested robust
    // rate: a CRC pass proves the link is usable again without spending a
    // full data frame of airtime on a possibly dead channel.
    const std::vector<std::uint8_t> probe_payload =
        phy::random_bytes(4, link.parameters().seed * 1'000'003 + 499'999);
    driver.probe = [&, probe_payload](const ap::rate_option& rate) {
        link.set_rate(rate.scheme, rate.fec);
        const auto result = link.run_frame(probe_payload);
        return ap::attempt_result{result.delivered, result.rx.snr_db,
                                  result.elapsed_s};
    };
    driver.wait = [&](double wait_s) { link.advance_clock(wait_s); };
    driver.reacquire = [&] {
        link.advance_clock(cfg.reacquisition_time_s);
        if (faults != nullptr) faults->clear_lo_steps(link.clock_s());
    };
    driver.now = [&] { return link.clock_s(); };

    return ap::run_supervised(cfg, nominal_rate_of(link), driver, frames,
                              static_cast<double>(payload_bytes) * 8.0);
}

} // namespace

ap::supervised_report run_supervised_link(link_simulator& link,
                                          fault::fault_injector* faults,
                                          const ap::supervisor_config& cfg,
                                          std::size_t frames, std::size_t payload_bytes)
{
    return run(link, faults, cfg, frames, payload_bytes);
}

ap::supervised_report run_baseline_link(link_simulator& link,
                                        fault::fault_injector* faults,
                                        std::size_t max_retries, std::size_t frames,
                                        std::size_t payload_bytes)
{
    // Supervision disabled: the streak threshold is unreachable, so no
    // outage is ever declared, no backoff is inserted, the rate never
    // falls back, and the watchdog never reacquires.
    ap::supervisor_config cfg;
    cfg.arq.max_retries = max_retries;
    cfg.arq.initial_backoff_s = 0.0;
    cfg.outage_streak = std::numeric_limits<std::size_t>::max();
    cfg.rate_fallback = false;
    return run(link, faults, cfg, frames, payload_bytes);
}

} // namespace mmtag::core
