#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "mmtag/cli/commands.hpp"
#include "mmtag/cli/options.hpp"

#include "json_checker.hpp"

namespace mmtag::cli {
namespace {

option_set parse(std::initializer_list<const char*> args)
{
    std::vector<const char*> argv{"mmtag_sim"};
    argv.insert(argv.end(), args.begin(), args.end());
    return option_set::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(options, parses_subcommand_and_pairs)
{
    const auto opts = parse({"link", "--distance", "3.5", "--frames", "7"});
    EXPECT_EQ(opts.command(), "link");
    EXPECT_DOUBLE_EQ(opts.get_double("distance", 0.0), 3.5);
    EXPECT_EQ(opts.get_int("frames", 0), 7);
}

TEST(options, equals_form)
{
    const auto opts = parse({"budget", "--tx-power=30", "--points=5"});
    EXPECT_DOUBLE_EQ(opts.get_double("tx-power", 0.0), 30.0);
    EXPECT_EQ(opts.get_int("points", 0), 5);
}

TEST(options, defaults_when_absent)
{
    const auto opts = parse({"link"});
    EXPECT_DOUBLE_EQ(opts.get_double("distance", 2.0), 2.0);
    EXPECT_EQ(opts.get_string("scheme", "qpsk"), "qpsk");
    EXPECT_FALSE(opts.get_flag("csv"));
}

TEST(options, bare_flag)
{
    const auto opts = parse({"link", "--csv"});
    EXPECT_TRUE(opts.get_flag("csv"));
}

TEST(options, rejects_malformed_input)
{
    EXPECT_THROW(parse({"--no-subcommand"}), std::invalid_argument);
    EXPECT_THROW(parse({"link", "distance", "3"}), std::invalid_argument);
    EXPECT_THROW(parse({"link", "--d", "1", "--d", "2"}), std::invalid_argument);
    const char* argv[] = {"mmtag_sim"};
    EXPECT_THROW(option_set::parse(1, argv), std::invalid_argument);
}

TEST(options, rejects_bad_numbers)
{
    const auto opts = parse({"link", "--distance", "abc", "--frames", "2.5"});
    EXPECT_THROW((void)opts.get_double("distance", 0.0), std::invalid_argument);
    EXPECT_THROW((void)opts.get_int("frames", 0), std::invalid_argument);
}

TEST(options, tracks_unconsumed_keys)
{
    const auto opts = parse({"link", "--distance", "2", "--typo", "1"});
    (void)opts.get_double("distance", 0.0);
    const auto leftover = opts.unconsumed();
    ASSERT_EQ(leftover.size(), 1u);
    EXPECT_EQ(leftover.front(), "typo");
}

TEST(options, modulation_and_fec_names)
{
    EXPECT_EQ(parse_modulation("bpsk"), phy::modulation::bpsk);
    EXPECT_EQ(parse_modulation("16psk"), phy::modulation::psk16);
    EXPECT_THROW((void)parse_modulation("qam64"), std::invalid_argument);
    EXPECT_EQ(parse_fec("none"), phy::fec_mode::uncoded);
    EXPECT_EQ(parse_fec("3/4"), phy::fec_mode::conv_three_quarters);
    EXPECT_THROW((void)parse_fec("7/8"), std::invalid_argument);
}

TEST(commands, dispatch_help_and_unknown)
{
    const char* help[] = {"mmtag_sim", "help"};
    EXPECT_EQ(dispatch(2, help), 0);
    const char* unknown[] = {"mmtag_sim", "frobnicate"};
    EXPECT_EQ(dispatch(2, unknown), 1);
    const char* missing[] = {"mmtag_sim"};
    EXPECT_EQ(dispatch(1, missing), 1);
}

TEST(commands, link_runs_and_rejects_typos)
{
    const char* ok[] = {"mmtag_sim", "link", "--frames", "2", "--payload", "16"};
    EXPECT_EQ(dispatch(6, ok), 0);
    const char* typo[] = {"mmtag_sim", "link", "--distnace", "2"};
    EXPECT_EQ(dispatch(4, typo), 1);
}

TEST(commands, budget_runs)
{
    const char* argv[] = {"mmtag_sim", "budget", "--points", "3"};
    EXPECT_EQ(dispatch(4, argv), 0);
}

TEST(commands, inventory_runs)
{
    const char* argv[] = {"mmtag_sim", "inventory", "--tags", "10", "--seeds", "3"};
    EXPECT_EQ(dispatch(6, argv), 0);
}

TEST(commands, network_runs)
{
    const char* argv[] = {"mmtag_sim", "network", "--tags", "5"};
    EXPECT_EQ(dispatch(4, argv), 0);
}

TEST(commands, link_presets)
{
    const char* warehouse[] = {"mmtag_sim", "link", "--preset", "warehouse",
                               "--frames", "2"};
    EXPECT_EQ(dispatch(6, warehouse), 0);
    const char* wearable[] = {"mmtag_sim", "link", "--preset", "wearable",
                              "--frames", "2"};
    EXPECT_EQ(dispatch(6, wearable), 0);
    const char* bogus[] = {"mmtag_sim", "link", "--preset", "garage"};
    EXPECT_EQ(dispatch(4, bogus), 1);
}

TEST(commands, sweep_runs_and_rejects_typos)
{
    const char* ok[] = {"mmtag_sim", "sweep", "--points", "2", "--trials", "2",
                        "--frames", "1", "--jobs", "2"};
    EXPECT_EQ(dispatch(10, ok), 0);
    const char* typo[] = {"mmtag_sim", "sweep", "--trails", "2"};
    EXPECT_EQ(dispatch(4, typo), 1);
    const char* zero[] = {"mmtag_sim", "sweep", "--points", "0"};
    EXPECT_EQ(dispatch(4, zero), 1);
}

TEST(commands, faults_multi_trial_runs)
{
    const char* argv[] = {"mmtag_sim", "faults", "--frames", "20", "--trials", "2",
                          "--jobs", "2"};
    const int code = dispatch(8, argv);
    EXPECT_TRUE(code == 0 || code == 2) << code;
}

TEST(options, get_uint_strict_parsing)
{
    const auto good = parse({"sweep", "--trials", "250", "--jobs=0"});
    EXPECT_EQ(good.get_uint("trials", 1), 250u);
    EXPECT_EQ(good.get_uint("jobs", 4), 0u);
    EXPECT_EQ(good.get_uint("absent", 7), 7u);

    // Values stoull would silently accept as the wrong number.
    const auto bad = parse({"sweep", "--jobs=-1", "--trials=1e3", "--seed=12x",
                            "--points=+5", "--frames="});
    EXPECT_THROW((void)bad.get_uint("jobs", 0), std::invalid_argument);
    EXPECT_THROW((void)bad.get_uint("trials", 0), std::invalid_argument);
    EXPECT_THROW((void)bad.get_uint("seed", 0), std::invalid_argument);
    EXPECT_THROW((void)bad.get_uint("points", 0), std::invalid_argument);
    EXPECT_THROW((void)bad.get_uint("frames", 0), std::invalid_argument);

    const auto overflow = parse({"sweep", "--seed=99999999999999999999999999"});
    EXPECT_THROW((void)overflow.get_uint("seed", 0), std::invalid_argument);
}

TEST(commands, rejects_malformed_counts_with_exit_1)
{
    const char* neg[] = {"mmtag_sim", "sweep", "--jobs=-1"};
    EXPECT_EQ(dispatch(3, neg), 1);
    const char* sci[] = {"mmtag_sim", "sweep", "--trials=1e3"};
    EXPECT_EQ(dispatch(3, sci), 1);
    const char* junk[] = {"mmtag_sim", "faults", "--seed=12x"};
    EXPECT_EQ(dispatch(3, junk), 1);
    const char* frames[] = {"mmtag_sim", "link", "--frames=-5"};
    EXPECT_EQ(dispatch(3, frames), 1);
}

TEST(commands, sweep_emits_metrics_trace_and_v2_results)
{
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() / "mmtag_cli_obs_test";
    fs::create_directories(dir);
    const std::string metrics_arg = "--metrics=" + (dir / "metrics.json").string();
    const std::string trace_arg = "--trace=" + (dir / "trace.json").string();
    const std::string json_arg = "--json=" + (dir / "result.json").string();
    const char* argv[] = {"mmtag_sim", "sweep",  "--points",         "2",
                          "--trials",  "2",      "--frames",         "1",
                          "--jobs",    "2",      metrics_arg.c_str(), trace_arg.c_str(),
                          json_arg.c_str()};
    EXPECT_EQ(dispatch(13, argv), 0);

    auto read_file = [](const fs::path& path) {
        std::ifstream in(path);
        std::stringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    };

    const auto metrics_text = read_file(dir / "metrics.json");
    EXPECT_TRUE(testutil::json_checker(metrics_text).valid()) << metrics_text;
    EXPECT_NE(metrics_text.find("link/frames"), std::string::npos);
    // Standalone metrics files hold the deterministic view only.
    EXPECT_EQ(metrics_text.find("time/"), std::string::npos);

    const auto trace_text = read_file(dir / "trace.json");
    EXPECT_TRUE(testutil::json_checker(trace_text).valid());
    EXPECT_NE(trace_text.find("traceEvents"), std::string::npos);
    EXPECT_NE(trace_text.find("sweep.trial"), std::string::npos);
    EXPECT_NE(trace_text.find("link.frame"), std::string::npos);

    const auto result_text = read_file(dir / "result.json");
    EXPECT_TRUE(testutil::json_checker(result_text).valid());
    EXPECT_NE(result_text.find("mmtag.bench.result/2"), std::string::npos);
    EXPECT_NE(result_text.find("\"metrics\""), std::string::npos);
    EXPECT_NE(result_text.find("\"profile\""), std::string::npos);
    fs::remove_all(dir);
}

TEST(commands, sweep_without_metrics_keeps_v1_schema)
{
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() / "mmtag_cli_v1_test";
    fs::create_directories(dir);
    const std::string json_arg = "--json=" + (dir / "result.json").string();
    const char* argv[] = {"mmtag_sim", "sweep", "--points", "2", "--trials", "1",
                          "--frames", "1", json_arg.c_str()};
    EXPECT_EQ(dispatch(9, argv), 0);
    std::ifstream in(dir / "result.json");
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto text = buffer.str();
    EXPECT_NE(text.find("mmtag.bench.result/1"), std::string::npos);
    // Per-point "metrics" objects are part of /1; the sweep-wide registry
    // snapshot ("counters"/"histograms" sections) must not be.
    EXPECT_EQ(text.find("\"counters\""), std::string::npos);
    fs::remove_all(dir);
}

TEST(commands, faults_accepts_metrics_and_trace)
{
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() / "mmtag_cli_faults_obs";
    fs::create_directories(dir);
    const std::string metrics_arg = "--metrics=" + (dir / "metrics.json").string();
    const std::string trace_arg = "--trace=" + (dir / "trace.json").string();
    const char* argv[] = {"mmtag_sim", "faults", "--frames", "20", "--trials", "2",
                          "--jobs", "2", metrics_arg.c_str(), trace_arg.c_str()};
    const int code = dispatch(10, argv);
    EXPECT_TRUE(code == 0 || code == 2) << code;

    std::ifstream in(dir / "metrics.json");
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto metrics_text = buffer.str();
    EXPECT_TRUE(testutil::json_checker(metrics_text).valid()) << metrics_text;
    EXPECT_NE(metrics_text.find("link/frames"), std::string::npos);
    EXPECT_NE(metrics_text.find("supervisor/"), std::string::npos);
    EXPECT_TRUE(fs::exists(dir / "trace.json"));
    fs::remove_all(dir);
}

TEST(commands, soak_runs_and_reports_via_exit_code)
{
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() / "mmtag_cli_soak_test";
    fs::create_directories(dir);
    const std::string json_arg = "--json=" + (dir / "soak.json").string();
    const std::string metrics_arg = "--metrics=" + (dir / "metrics.json").string();
    const char* argv[] = {"mmtag_sim", "soak",     "--tags",   "4",
                          "--faulted", "1",        "--rounds", "36",
                          "--trials",  "1",        "--jobs",   "2",
                          json_arg.c_str(),        metrics_arg.c_str()};
    // 0 = every invariant held, 3 = one tripped; both mean the harness ran.
    const int code = dispatch(14, argv);
    EXPECT_TRUE(code == 0 || code == 3) << code;

    std::ifstream in(dir / "soak.json");
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto text = buffer.str();
    EXPECT_TRUE(testutil::json_checker(text).valid()) << text;
    EXPECT_NE(text.find("mmtag.soak.result/1"), std::string::npos);
    EXPECT_NE(text.find("\"invariants\""), std::string::npos);

    std::ifstream metrics_in(dir / "metrics.json");
    std::stringstream metrics_buffer;
    metrics_buffer << metrics_in.rdbuf();
    const auto metrics_text = metrics_buffer.str();
    EXPECT_TRUE(testutil::json_checker(metrics_text).valid()) << metrics_text;
    EXPECT_NE(metrics_text.find("net/rounds"), std::string::npos);
    fs::remove_all(dir);
}

TEST(commands, soak_rejects_bad_arguments_with_exit_1)
{
    const char* typo[] = {"mmtag_sim", "soak", "--tgs", "4"};
    EXPECT_EQ(dispatch(4, typo), 1);
    const char* zero[] = {"mmtag_sim", "soak", "--rounds", "0"};
    EXPECT_EQ(dispatch(4, zero), 1);
    const char* lopsided[] = {"mmtag_sim", "soak", "--tags", "2", "--faulted", "3"};
    EXPECT_EQ(dispatch(6, lopsided), 1);
}

TEST(commands, link_plate_at_angle_fails_gracefully)
{
    // A flat-plate tag rotated 30 degrees loses the link: exit code 2
    // (ran fine, delivered nothing).
    const char* argv[] = {"mmtag_sim", "link", "--reflector", "plate", "--angle", "30",
                          "--frames", "2"};
    EXPECT_EQ(dispatch(8, argv), 2);
}

} // namespace
} // namespace mmtag::cli
