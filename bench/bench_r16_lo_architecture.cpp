// R16 — LO architecture ablation (extension).
// Self-coherent downconversion (RX mixes with the TX carrier itself) versus
// a conventional independent synthesizer, with each impairment isolated.
// Expected shape: the two architectures coincide only when both synthesizers
// are ideal; *any* independent-LO impairment — its own linewidth, the TX
// linewidth it no longer cancels, or plain CFO — rotates the "static"
// interference through the capture window and defeats cancellation. The tag
// signal sits ~50 dB below the statics, so the link collapses: this is why
// backscatter readers are built self-coherent.
#include "bench_util.hpp"
#include "mmtag/core/link_simulator.hpp"

using namespace mmtag;

namespace {

struct lo_case {
    const char* label;
    ap::lo_mode mode;
    double tx_linewidth_hz;
    double rx_linewidth_hz;
    double cfo_hz;
};

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R16", "self-coherent vs independent-LO receiver", csv);

    const lo_case cases[] = {
        {"self-coherent, ideal TX", ap::lo_mode::self_coherent, 0.0, 0.0, 0.0},
        {"self-coherent, 100 Hz TX", ap::lo_mode::self_coherent, 100.0, 0.0, 0.0},
        {"self-coherent, 10 kHz TX", ap::lo_mode::self_coherent, 10e3, 0.0, 0.0},
        {"independent, all ideal", ap::lo_mode::independent, 0.0, 0.0, 0.0},
        {"independent, 100 Hz TX only", ap::lo_mode::independent, 100.0, 0.0, 0.0},
        {"independent, 100 Hz RX only", ap::lo_mode::independent, 0.0, 100.0, 0.0},
        {"independent, 100 Hz CFO", ap::lo_mode::independent, 0.0, 0.0, 100.0},
        {"independent, 1 kHz CFO", ap::lo_mode::independent, 0.0, 0.0, 1e3},
        {"independent, 10 kHz CFO", ap::lo_mode::independent, 0.0, 0.0, 10e3},
    };

    bench::table out({"configuration", "snr_dB", "per"}, csv);
    for (const auto& test_case : cases) {
        auto cfg = bench::bench_scenario();
        cfg.transmitter.lo_linewidth_hz = test_case.tx_linewidth_hz;
        cfg.receiver.lo = test_case.mode;
        cfg.receiver.independent_linewidth_hz = test_case.rx_linewidth_hz;
        cfg.receiver.independent_cfo_hz = test_case.cfo_hz;
        core::link_simulator sim(cfg);
        const auto report = sim.run_trials(4, 32);
        out.add_row({test_case.label, bench::fmt("%.1f", report.mean_snr_db),
                     bench::fmt("%.2f", report.per)});
    }
    out.print();

    if (!csv) {
        std::printf("\nNote how self-coherent operation shrugs off even a 10 kHz TX\n"
                    "linewidth (it cancels common-mode), while the independent LO is\n"
                    "broken by 100 Hz of *anything* — the statics must stay parked at\n"
                    "DC for cancellation to find them.\n");
    }
    return 0;
}
