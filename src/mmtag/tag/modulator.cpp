#include "mmtag/tag/modulator.hpp"

#include <stdexcept>

namespace mmtag::tag {

namespace {

rf::rf_switch::config adjust_switch(rf::rf_switch::config cfg, std::size_t throws)
{
    cfg.throw_count = throws;
    return cfg;
}

} // namespace

backscatter_modulator::backscatter_modulator(const config& cfg)
    : cfg_(cfg),
      bank_([&] {
          termination_bank::config bank_cfg = cfg.bank;
          bank_cfg.scheme = cfg.frame.scheme; // bank must realize the frame's constellation
          return bank_cfg;
      }()),
      switch_(adjust_switch(cfg.rf_switch, bank_.throw_count())),
      samples_per_symbol_(0)
{
    if (cfg.sample_rate_hz <= 0.0 || cfg.symbol_rate_hz <= 0.0) {
        throw std::invalid_argument("backscatter_modulator: rates must be > 0");
    }
    const double sps = cfg.sample_rate_hz / cfg.symbol_rate_hz;
    if (sps < 2.0) {
        throw std::invalid_argument("backscatter_modulator: need >= 2 samples per symbol");
    }
    if (std::abs(sps - std::round(sps)) > 1e-6) {
        throw std::invalid_argument(
            "backscatter_modulator: sample rate must be an integer multiple of symbol rate");
    }
    samples_per_symbol_ = static_cast<std::size_t>(std::round(sps));
    if (cfg.symbol_rate_hz > switch_.max_symbol_rate_hz()) {
        throw simulation_error("backscatter_modulator: symbol rate exceeds switch capability");
    }
}

double backscatter_modulator::information_rate_bps() const
{
    return cfg_.symbol_rate_hz * phy::spectral_efficiency(cfg_.frame);
}

modulated_frame backscatter_modulator::modulate(std::span<const std::uint8_t> payload) const
{
    const cvec symbols = phy::build_frame(payload, cfg_.frame);
    return modulate_symbols(symbols);
}

modulated_frame backscatter_modulator::modulate_symbols(std::span<const cf64> symbols) const
{
    std::vector<std::size_t> states;
    states.reserve(symbols.size() + 2 * cfg_.guard_symbols);
    for (std::size_t i = 0; i < cfg_.guard_symbols; ++i) states.push_back(bank_.absorb_state());
    for (cf64 symbol : symbols) states.push_back(bank_.state_for_symbol(symbol));
    for (std::size_t i = 0; i < cfg_.guard_symbols; ++i) states.push_back(bank_.absorb_state());
    modulated_frame frame = realize(states);
    frame.symbol_count = symbols.size();
    return frame;
}

modulated_frame backscatter_modulator::realize(const std::vector<std::size_t>& states) const
{
    modulated_frame frame;
    frame.states = states;
    frame.gamma = switch_.state_waveform(states, bank_.gammas(), samples_per_symbol_,
                                         cfg_.sample_rate_hz);
    frame.transitions = rf::rf_switch::count_transitions(states);
    frame.duration_s = static_cast<double>(frame.gamma.size()) / cfg_.sample_rate_hz;
    return frame;
}

} // namespace mmtag::tag
