// ADC model: full-scale clipping + uniform mid-rise quantization on I and Q.
#pragma once

#include <cstdint>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::rf {

class adc {
public:
    struct config {
        unsigned bits = 10;
        double full_scale = 1.0; ///< clip level per rail [V]
    };

    explicit adc(const config& cfg);

    [[nodiscard]] unsigned bits() const { return cfg_.bits; }
    [[nodiscard]] double full_scale() const { return cfg_.full_scale; }

    /// Theoretical SQNR for a full-scale sine: 6.02 N + 1.76 dB.
    [[nodiscard]] double ideal_sqnr_db() const;

    [[nodiscard]] cf64 sample(cf64 input) const;
    [[nodiscard]] cvec sample(std::span<const cf64> input) const;

private:
    [[nodiscard]] double quantize_rail(double value) const;

    config cfg_;
    double step_;
};

} // namespace mmtag::rf
