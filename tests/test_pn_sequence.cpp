#include <gtest/gtest.h>

#include <numeric>

#include "mmtag/dsp/pn_sequence.hpp"

namespace mmtag::dsp {
namespace {

class m_sequence_properties : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(m_sequence_properties, full_period_and_balance)
{
    const std::uint32_t degree = GetParam();
    const auto bits = m_sequence(degree);
    const std::size_t period = (std::size_t{1} << degree) - 1;
    ASSERT_EQ(bits.size(), period);
    // m-sequences have exactly 2^(n-1) ones and 2^(n-1)-1 zeros.
    const std::size_t ones = std::accumulate(bits.begin(), bits.end(), std::size_t{0});
    EXPECT_EQ(ones, (period + 1) / 2);
}

TEST_P(m_sequence_properties, two_valued_autocorrelation)
{
    const std::uint32_t degree = GetParam();
    const auto bits = m_sequence(degree);
    const std::size_t n = bits.size();
    // +-1 mapping; periodic autocorrelation must be n at lag 0, -1 elsewhere.
    std::vector<int> chips(n);
    for (std::size_t i = 0; i < n; ++i) chips[i] = bits[i] ? -1 : 1;
    for (std::size_t lag : {std::size_t{0}, std::size_t{1}, n / 3, n - 1}) {
        long long acc = 0;
        for (std::size_t i = 0; i < n; ++i) acc += chips[i] * chips[(i + lag) % n];
        if (lag == 0) EXPECT_EQ(acc, static_cast<long long>(n));
        else EXPECT_EQ(acc, -1);
    }
}

INSTANTIATE_TEST_SUITE_P(degrees, m_sequence_properties,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u));

TEST(lfsr, validation)
{
    EXPECT_THROW(lfsr(0x6, 3, 0), std::invalid_argument);       // zero seed
    EXPECT_THROW(lfsr(0x6, 0, 1), std::invalid_argument);       // zero degree
    EXPECT_THROW(lfsr(0xFF, 3, 1), std::invalid_argument);      // taps above degree
    EXPECT_THROW((void)m_sequence(2), std::invalid_argument);
    EXPECT_THROW((void)m_sequence(17), std::invalid_argument);
}

TEST(lfsr, deterministic_for_seed)
{
    lfsr a(0x60, 7, 5);
    lfsr b(0x60, 7, 5);
    EXPECT_EQ(a.generate(50), b.generate(50));
}

TEST(barker, known_codes)
{
    EXPECT_EQ(barker_code(13).size(), 13u);
    EXPECT_EQ(barker_code(7), (std::vector<int>{1, 1, 1, -1, -1, 1, -1}));
    EXPECT_THROW((void)barker_code(6), std::invalid_argument);
}

TEST(barker, sidelobes_bounded_by_one)
{
    for (std::size_t len : {5u, 7u, 11u, 13u}) {
        const auto code = barker_code(len);
        for (std::size_t lag = 1; lag < len; ++lag) {
            long long acc = 0;
            for (std::size_t i = 0; i + lag < len; ++i) acc += code[i] * code[i + lag];
            EXPECT_LE(std::abs(acc), 1) << "length " << len << " lag " << lag;
        }
    }
}

TEST(correlation, finds_embedded_sequence)
{
    const auto bits = m_sequence(6);
    const cvec needle = bits_to_bpsk(bits);
    cvec haystack(40, cf64{0.1, -0.05});
    haystack.insert(haystack.end(), needle.begin(), needle.end());
    haystack.resize(haystack.size() + 25, cf64{-0.08, 0.02});

    const rvec correlation = correlate_magnitude(haystack, needle);
    double quality = 0.0;
    const std::size_t peak = correlation_peak(correlation, &quality);
    EXPECT_EQ(peak, 40u);
    EXPECT_GT(quality, 3.0);
}

TEST(correlation, empty_inputs)
{
    EXPECT_TRUE(correlate_magnitude(cvec{}, cvec{}).empty());
    EXPECT_THROW((void)correlation_peak(rvec{}), std::invalid_argument);
}

TEST(bits_to_bpsk, mapping_convention)
{
    const std::vector<std::uint8_t> bits{0, 1};
    const cvec chips = bits_to_bpsk(bits);
    EXPECT_EQ(chips[0], (cf64{1.0, 0.0}));
    EXPECT_EQ(chips[1], (cf64{-1.0, 0.0}));
}

} // namespace
} // namespace mmtag::dsp
