// Carrier phase/frequency recovery: decision-directed PLL for M-PSK and a
// data-aided phase estimator for preamble-equipped bursts.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Decision-directed carrier recovery for M-PSK symbol streams. The phase
/// detector raises ambiguity-free error from the nearest constellation point;
/// a 2nd-order PI loop tracks both residual frequency and phase.
class psk_carrier_recovery {
public:
    struct config {
        std::size_t modulation_order = 4; // M in M-PSK
        double loop_bandwidth = 0.02;     // normalized to symbol rate
        double damping = 0.7071;
    };

    explicit psk_carrier_recovery(const config& cfg);

    /// De-rotates a block of symbol-rate samples in place of returning them.
    [[nodiscard]] cvec process(std::span<const cf64> symbols);

    [[nodiscard]] double frequency_estimate() const { return frequency_; }
    [[nodiscard]] double phase_estimate() const { return phase_; }

    void reset();

private:
    config cfg_;
    double kp_ = 0.0;
    double ki_ = 0.0;
    double phase_ = 0.0;
    double frequency_ = 0.0;
};

/// Data-aided estimate of a constant phase offset given known pilot symbols:
/// angle of sum(received * conj(pilot)).
[[nodiscard]] double estimate_phase_offset(std::span<const cf64> received,
                                           std::span<const cf64> pilots);

/// Data-aided estimate of a constant frequency offset (cycles/sample at the
/// symbol rate) from pilot phase slope via linear regression.
[[nodiscard]] double estimate_frequency_offset(std::span<const cf64> received,
                                               std::span<const cf64> pilots);

} // namespace mmtag::dsp
