// Link-quality accounting: BER/PER counters, throughput, and the aggregate
// report structure benches print.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "mmtag/common.hpp"
#include "mmtag/dsp/estimators.hpp"

namespace mmtag::core {

/// Accumulates bit- and frame-level error statistics across trials.
class error_counter {
public:
    /// Compares a received byte payload against the transmitted one;
    /// `delivered` is the CRC verdict.
    void add_frame(std::span<const std::uint8_t> sent, std::span<const std::uint8_t> received,
                   bool delivered);

    /// Records a frame that produced no decodable output at all.
    void add_lost_frame(std::size_t payload_bytes);

    /// Records raw bit observations with no frame structure (symbol-level
    /// experiments such as the R5 AWGN sweep). frames()/per() are unaffected.
    void add_bits(std::size_t bits, std::size_t bit_errors);

    /// Folds another counter's observations into this one. Exact (integer
    /// sums), hence associative — the reduction the parallel sweep runner
    /// relies on for jobs-invariant results.
    void merge(const error_counter& other);

    [[nodiscard]] std::size_t frames() const { return frames_; }
    [[nodiscard]] std::size_t frames_delivered() const { return delivered_; }
    [[nodiscard]] std::size_t bits() const { return bits_; }
    [[nodiscard]] std::size_t bit_errors() const { return bit_errors_; }

    [[nodiscard]] double ber() const;
    [[nodiscard]] double per() const;

    /// Wilson-interval half width on the BER estimate (95%).
    [[nodiscard]] double ber_confidence() const;

    void reset();

private:
    std::size_t frames_ = 0;
    std::size_t delivered_ = 0;
    std::size_t bits_ = 0;
    std::size_t bit_errors_ = 0;
};

/// Aggregate of one measurement point (one distance/rate/... cell).
///
/// Carries both the derived figures benches print and the sufficient
/// statistics (additive sums) they derive from, so independently computed
/// reports can be combined exactly: merge() adds the sums and recomputes
/// the derived figures, and run_trials fills both, making a merged report
/// agree with sequential accumulation over the same frames.
struct link_report {
    double ber = 0.0;
    double per = 0.0;
    double mean_snr_db = 0.0;
    double mean_evm_db = 0.0;
    double goodput_bps = 0.0;
    double tag_energy_per_bit_j = 0.0;
    std::size_t frames = 0;

    // Sufficient statistics. `bits` counts offered payload bits (including
    // lost frames); snr/evm sums only cover frames the receiver found.
    std::size_t frames_delivered = 0;
    std::size_t bits = 0;
    std::size_t bit_errors = 0;
    std::size_t snr_samples = 0;
    double snr_sum_db = 0.0;
    std::size_t evm_samples = 0;
    double evm_sum_db = 0.0;
    double airtime_s = 0.0;
    std::size_t delivered_bits = 0;
    double tag_energy_j = 0.0;

    /// Adds `other`'s sufficient statistics and recomputes the derived
    /// figures. Integer fields combine exactly; double sums are ordinary
    /// floating-point addition, associative to rounding.
    void merge(const link_report& other);

    /// Recomputes ber/per/means/goodput/energy-per-bit from the sums.
    void recompute();

    /// Wilson-interval half width on the BER estimate (95%).
    [[nodiscard]] double ber_confidence() const;
};

/// PER implied by an independent-bit-error channel: 1 - (1-ber)^bits.
[[nodiscard]] double per_from_ber(double ber, std::size_t frame_bits);

/// Pretty-prints a BER as "3.2e-05" or "<1/N" when zero errors were seen.
[[nodiscard]] std::string format_ber(double ber, std::size_t bits_observed);

} // namespace mmtag::core
