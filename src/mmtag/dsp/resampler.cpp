#include "mmtag/dsp/resampler.hpp"

#include <stdexcept>

namespace mmtag::dsp {

namespace {

rvec anti_alias_taps(std::size_t factor, std::size_t taps_per_phase)
{
    if (factor == 0) throw std::invalid_argument("resampler: factor must be >= 1");
    if (factor == 1) return rvec{1.0};
    std::size_t taps = factor * taps_per_phase + 1;
    if (taps % 2 == 0) ++taps;
    // Cut slightly below the Nyquist edge of the slow rate to leave room for
    // the filter transition band.
    const double cutoff = 0.45 / static_cast<double>(factor);
    return design_lowpass(cutoff, taps, window_kind::blackman);
}

} // namespace

decimator::decimator(std::size_t factor, std::size_t taps_per_phase)
    : factor_(factor), filter_(anti_alias_taps(factor, taps_per_phase))
{
}

cvec decimator::process(std::span<const cf64> input)
{
    cvec out;
    out.reserve(input.size() / factor_ + 1);
    for (cf64 x : input) {
        const cf64 filtered = filter_.process(x);
        if (phase_ == 0) out.push_back(filtered);
        phase_ = (phase_ + 1) % factor_;
    }
    return out;
}

void decimator::reset()
{
    filter_.reset();
    phase_ = 0;
}

interpolator::interpolator(std::size_t factor, std::size_t taps_per_phase)
    : factor_(factor), filter_(anti_alias_taps(factor, taps_per_phase))
{
}

cvec interpolator::process(std::span<const cf64> input)
{
    cvec out;
    out.reserve(input.size() * factor_);
    const double gain = static_cast<double>(factor_); // restore amplitude after zero stuffing
    for (cf64 x : input) {
        out.push_back(filter_.process(x * gain));
        for (std::size_t k = 1; k < factor_; ++k) out.push_back(filter_.process(cf64{}));
    }
    return out;
}

void interpolator::reset()
{
    filter_.reset();
}

rational_resampler::rational_resampler(std::size_t interpolation, std::size_t decimation,
                                       std::size_t taps_per_phase)
    : up_(interpolation, taps_per_phase), down_(decimation, taps_per_phase)
{
}

double rational_resampler::rate() const
{
    return static_cast<double>(up_.factor()) / static_cast<double>(down_.factor());
}

cvec rational_resampler::process(std::span<const cf64> input)
{
    const cvec upsampled = up_.process(input);
    return down_.process(upsampled);
}

void rational_resampler::reset()
{
    up_.reset();
    down_.reset();
}

} // namespace mmtag::dsp
