#include "mmtag/ap/transmitter.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::ap {

ap_transmitter::ap_transmitter(const config& cfg, std::uint64_t seed)
    : cfg_(cfg),
      lo_(rf::oscillator::config{cfg.sample_rate_hz, cfg.lo_frequency_offset_hz,
                                 cfg.lo_linewidth_hz, 0.0},
          seed),
      pa_(cfg.pa),
      tx_power_w_(dbm_to_watt(cfg.tx_power_dbm))
{
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("ap_transmitter: fs <= 0");
    // Solve the PA drive level so the radiated CW power matches tx_power_dbm.
    // The Rapp model is monotonic; bisect on input amplitude.
    const double target_amplitude = std::sqrt(tx_power_w_);
    double low = 0.0;
    double high = target_amplitude * 10.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (low + high);
        const double out = std::abs(pa_.process(cf64{mid, 0.0}));
        if (out < target_amplitude) low = mid;
        else high = mid;
    }
    drive_amplitude_ = 0.5 * (low + high);
    const double achieved = std::abs(pa_.process(cf64{drive_amplitude_, 0.0}));
    if (achieved < target_amplitude * 0.99) {
        throw simulation_error("ap_transmitter: requested power exceeds PA saturation");
    }
}

ap_transmitter::query ap_transmitter::generate(std::size_t count)
{
    query out;
    out.lo = lo_.generate(count);
    out.rf.reserve(count);
    for (cf64 lo_sample : out.lo) {
        out.rf.push_back(pa_.process(drive_amplitude_ * lo_sample));
    }
    return out;
}

ap_transmitter::query ap_transmitter::generate_modulated(std::span<const double> envelope)
{
    query out;
    out.lo = lo_.generate(envelope.size());
    out.rf.reserve(envelope.size());
    for (std::size_t i = 0; i < envelope.size(); ++i) {
        const double level = std::clamp(envelope[i], 0.0, 1.0);
        out.rf.push_back(pa_.process(drive_amplitude_ * level * out.lo[i]));
    }
    return out;
}

} // namespace mmtag::ap
