// Command-line option parsing for the mmtag_sim tool. Kept in the library
// (rather than the tool's main.cpp) so parsing and validation are unit
// tested like everything else.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mmtag/phy/frame.hpp"

namespace mmtag::cli {

/// Tokenized command line: one subcommand plus --key value pairs.
///
/// Accepted forms: `--key value` and `--key=value`. Unknown keys are
/// collected so commands can reject them with a precise message.
class option_set {
public:
    /// Parses argv[1..]; argv[1] must be the subcommand (no leading dashes).
    /// Throws std::invalid_argument on malformed input.
    static option_set parse(int argc, const char* const* argv);

    [[nodiscard]] const std::string& command() const { return command_; }

    [[nodiscard]] bool has(const std::string& key) const;

    /// Typed getters: return the default when absent, throw
    /// std::invalid_argument when present but unparseable/out of range.
    [[nodiscard]] double get_double(const std::string& key, double fallback) const;
    [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
    /// Strict non-negative integer: rejects a leading sign (stoull would
    /// silently wrap "-1" to 2^64-1), scientific notation ("1e3"), trailing
    /// junk, and overflow — the counts (--jobs, --trials, --seed) where a
    /// wrapped or truncated value would silently run the wrong experiment.
    [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                         std::uint64_t fallback) const;
    [[nodiscard]] std::string get_string(const std::string& key,
                                         const std::string& fallback) const;
    [[nodiscard]] bool get_flag(const std::string& key) const;

    /// Keys that were supplied but never consumed by a getter; commands call
    /// this last to reject typos.
    [[nodiscard]] std::vector<std::string> unconsumed() const;

private:
    std::string command_;
    std::map<std::string, std::string> values_;
    mutable std::map<std::string, bool> consumed_;
};

/// Parses a modulation name ("bpsk", "qpsk", "8psk", "16psk").
[[nodiscard]] phy::modulation parse_modulation(const std::string& name);

/// Parses a FEC name ("none", "1/2", "2/3", "3/4").
[[nodiscard]] phy::fec_mode parse_fec(const std::string& name);

} // namespace mmtag::cli
