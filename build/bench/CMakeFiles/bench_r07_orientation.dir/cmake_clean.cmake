file(REMOVE_RECURSE
  "CMakeFiles/bench_r07_orientation.dir/bench_r07_orientation.cpp.o"
  "CMakeFiles/bench_r07_orientation.dir/bench_r07_orientation.cpp.o.d"
  "bench_r07_orientation"
  "bench_r07_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r07_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
