# Empty dependencies file for bench_r01_van_atta_pattern.
# This may be replaced when dependencies are built.
