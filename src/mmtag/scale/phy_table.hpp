// Calibrated PHY abstraction: per-MCS PER-vs-SINR curves measured once from
// the sample-accurate core::link_simulator, then consulted in O(log n) per
// packet by the discrete-event engine. This is the standard network-scale
// technique: the expensive PHY runs offline over a (MCS x SINR) grid; the
// scale simulator only interpolates.
//
// Calibration maps each SINR grid point to the distance at which the
// analytic link budget predicts that SNR (link_budget::max_range_m), runs
// `frames_per_point` sample-accurate frames there on the Monte-Carlo
// runtime, and records the measured PER. Curves are forced monotone
// non-increasing in SINR (pool-adjacent-violators), and the loader rejects
// any persisted table that is not.
//
// Disk cache: bench/out/phy_table_<fingerprint>.json with schema
// "mmtag.phy_table/1". The fingerprint hashes every parameter the curves
// depend on (scenario RF fields, SINR grid, frames, payload, seed, and the
// rate ladder itself); load_or_generate() loads on match and regenerates
// with a loud stderr line on miss or mismatch — a stale table silently
// reused would corrupt every scale result downstream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/runtime/result_writer.hpp"

namespace mmtag::scale {

struct phy_table_config {
    core::system_config scenario = core::fast_scenario();
    /// SINR grid [dB]: inclusive start/stop swept in `sinr_step_db` steps.
    double sinr_start_db = -2.0;
    double sinr_stop_db = 26.0;
    double sinr_step_db = 2.0;
    /// Sample-accurate frames per (MCS, SINR) grid point.
    std::size_t frames_per_point = 48;
    std::size_t payload_bytes = 16;
    std::uint64_t seed = 0xca11b8;

    [[nodiscard]] std::vector<double> sinr_grid() const;
};

class phy_table {
public:
    struct curve {
        phy::modulation scheme = phy::modulation::bpsk;
        phy::fec_mode fec = phy::fec_mode::conv_half;
        std::vector<double> sinr_db; ///< ascending grid
        std::vector<double> per;     ///< monotone non-increasing
        std::vector<std::uint64_t> frames; ///< observations per point
    };

    /// Interpolated PER for rate_table()[mcs_index] at `sinr_db`, clamped to
    /// the curve ends (below the grid the first point's PER applies, above
    /// the last point's).
    [[nodiscard]] double per(std::size_t mcs_index, double sinr_db) const;

    [[nodiscard]] const std::vector<curve>& curves() const { return curves_; }
    [[nodiscard]] const std::string& fingerprint() const { return fingerprint_; }
    [[nodiscard]] const phy_table_config& parameters() const { return cfg_; }

    [[nodiscard]] runtime::json_value to_json() const;
    /// Parses a persisted table and validates it against the config the
    /// caller expects (the persisted params are a digest, not the full
    /// scenario). Throws simulation_error on schema mismatch, fingerprint
    /// or params mismatch, or non-monotone curves — the fail-loud half of
    /// the cache contract.
    [[nodiscard]] static phy_table from_json(const runtime::json_value& doc,
                                             const phy_table_config& cfg);

    /// Hash of everything the curves depend on (scenario, grid, seed, rate
    /// ladder); 16 lowercase hex digits.
    [[nodiscard]] static std::string fingerprint_of(const phy_table_config& cfg);

    /// Runs the calibration sweep on the Monte-Carlo runtime (`jobs` as in
    /// sweep_options; results are jobs-invariant).
    [[nodiscard]] static phy_table generate(const phy_table_config& cfg,
                                            std::size_t jobs);

    struct cache_result;
    /// Loads `<cache_dir>/phy_table_<fingerprint>.json` when present and
    /// valid; otherwise prints the loud "regenerating" line, generates, and
    /// persists. `cache_dir` defaults to bench/out.
    [[nodiscard]] static cache_result load_or_generate(const phy_table_config& cfg,
                                                       std::size_t jobs,
                                                       const std::string& cache_dir =
                                                           "bench/out");

private:
    phy_table_config cfg_;
    std::vector<curve> curves_;
    std::string fingerprint_;
};

struct phy_table::cache_result {
    phy_table table;
    bool cache_hit = false;
    std::string path; ///< file loaded from or written to
};

/// Forces `values` monotone non-increasing by pool-adjacent-violators
/// (least-squares isotonic fit); exposed for the calibration tests.
void enforce_non_increasing(std::vector<double>& values);

} // namespace mmtag::scale
