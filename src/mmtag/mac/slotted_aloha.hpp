// Framed slotted ALOHA inventory with Q-style frame-size adaptation — how the
// AP discovers an unknown tag population before switching to scheduled TDMA.
// Each round the AP broadcasts a query advertising 2^Q slots; every
// unidentified tag picks one uniformly and backscatters its ID there. Singleton
// slots identify a tag; collisions and idles drive Q up or down.
#pragma once

#include <cstddef>
#include <random>
#include <vector>

namespace mmtag::mac {

struct aloha_config {
    unsigned initial_q = 4;
    unsigned min_q = 0;
    unsigned max_q = 12;
    /// Q-algorithm floating-point step (EPC Gen2 uses 0.1..0.5).
    double q_step = 0.35;
    /// Probability that a singleton slot actually decodes (PHY success).
    double singleton_success = 0.98;
    std::size_t max_rounds = 64;
};

struct inventory_stats {
    std::size_t tags_total = 0;
    std::size_t tags_identified = 0;
    std::size_t rounds = 0;
    std::size_t slots_used = 0;
    std::size_t singleton_slots = 0;
    std::size_t collision_slots = 0;
    std::size_t idle_slots = 0;

    [[nodiscard]] bool complete() const { return tags_identified == tags_total; }
    /// Slot efficiency: identified tags per slot spent.
    [[nodiscard]] double efficiency() const;
};

class aloha_inventory {
public:
    explicit aloha_inventory(const aloha_config& cfg = {});

    /// Inventories `tag_count` tags; deterministic for a given seed.
    [[nodiscard]] inventory_stats run(std::size_t tag_count, std::uint64_t seed) const;

    /// Expected slot efficiency of framed slotted ALOHA at the optimum
    /// (frame size == population): n/L * (1-1/L)^(n-1) with L == n.
    [[nodiscard]] static double theoretical_peak_efficiency(std::size_t tag_count);

private:
    aloha_config cfg_;
};

} // namespace mmtag::mac
