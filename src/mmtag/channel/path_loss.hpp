// Propagation loss models: Friis free space, log-distance indoor, and the
// two-way backscatter (radar-equation) budget.
#pragma once

#include "mmtag/common.hpp"

namespace mmtag::channel {

/// Free-space path loss (power ratio, >= 1) over `distance_m` at
/// `frequency_hz`. Friis: (4 pi d / lambda)^2.
[[nodiscard]] double free_space_path_loss(double distance_m, double frequency_hz);

/// Same in dB.
[[nodiscard]] double free_space_path_loss_db(double distance_m, double frequency_hz);

/// Log-distance model with exponent `n` referenced to 1 m free-space loss;
/// indoor LOS mmWave is typically n ~= 1.8..2.2.
[[nodiscard]] double log_distance_path_loss_db(double distance_m, double frequency_hz,
                                               double exponent);

/// One-way received power [W] between isotropic-referenced antennas:
/// Prx = Ptx Gtx Grx / FSPL.
[[nodiscard]] double one_way_received_power(double tx_power_w, double tx_gain, double rx_gain,
                                            double distance_m, double frequency_hz);

/// Two-way (backscatter) received power [W]:
/// Prx = Ptx Gtx Grx Gb lambda^4 / ((4 pi)^4 d^4), where Gb is the tag's
/// monostatic backscatter gain (|Gamma|^2 folded in by the caller).
[[nodiscard]] double backscatter_received_power(double tx_power_w, double tx_gain, double rx_gain,
                                                double tag_backscatter_gain, double distance_m,
                                                double frequency_hz);

/// Distance at which backscatter_received_power equals `sensitivity_w` —
/// closed-form d = (num/den)^(1/4); the analytic range bound for R3/R4.
[[nodiscard]] double backscatter_max_range(double tx_power_w, double tx_gain, double rx_gain,
                                           double tag_backscatter_gain, double frequency_hz,
                                           double sensitivity_w);

} // namespace mmtag::channel
