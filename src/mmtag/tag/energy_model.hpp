// Tag power/energy accounting. The tag has no mmWave actives; its budget is
// the switch driver (dynamic CV^2 f — dominant while transmitting), the
// switch and envelope-detector bias, and the MCU.
#pragma once

#include <cstddef>

#include "mmtag/common.hpp"
#include "mmtag/phy/frame.hpp"
#include "mmtag/tag/modulator.hpp"

namespace mmtag::tag {

class energy_model {
public:
    struct config {
        /// Effective energy per switch transition including the driver's
        /// CV^2 swing on the control line (GaAs switches need volts of
        /// swing on tens of pF at high toggle rates).
        double energy_per_transition_j = 3.7e-9;
        double switch_static_w = 1.8e-3;   ///< bias of the switch die(s)
        double detector_bias_w = 0.3e-3;   ///< envelope detector + comparator
        double mcu_active_w = 5.76e-3;     ///< MSP430-class MCU, active
        double mcu_sleep_w = 2e-6;         ///< LPM3-class sleep
    };

    energy_model();
    explicit energy_model(const config& cfg);

    [[nodiscard]] const config& parameters() const { return cfg_; }

    /// Average power while asleep (RTC only).
    [[nodiscard]] double sleep_power_w() const;

    /// Average power while listening for a query (detector + MCU).
    [[nodiscard]] double listen_power_w() const;

    /// Average power while backscattering at `symbol_rate_hz` with
    /// `transitions_per_symbol` average switch activity.
    [[nodiscard]] double transmit_power_w(double symbol_rate_hz,
                                          double transitions_per_symbol) const;

    /// Energy for one concrete modulated frame.
    [[nodiscard]] double frame_energy_j(const modulated_frame& frame) const;

    /// Energy per information bit [J/bit] at a PHY configuration and symbol
    /// rate; random data assumed (expected transition density of an M-ary
    /// memoryless symbol stream: (M-1)/M).
    [[nodiscard]] double energy_per_bit(const phy::frame_config& frame,
                                        double symbol_rate_hz) const;

private:
    config cfg_;
};

} // namespace mmtag::tag
