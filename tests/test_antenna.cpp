#include <gtest/gtest.h>

#include <memory>

#include "mmtag/antenna/array.hpp"
#include "mmtag/antenna/element.hpp"
#include "mmtag/antenna/termination.hpp"
#include "mmtag/antenna/van_atta.hpp"

namespace mmtag::antenna {
namespace {

TEST(element, patch_peak_and_rolloff)
{
    patch_element patch(6.5, 1.3);
    EXPECT_NEAR(to_db(patch.gain(0.0)), 6.5, 1e-9);
    EXPECT_LT(patch.gain(deg_to_rad(60.0)), patch.gain(0.0));
    EXPECT_DOUBLE_EQ(patch.gain(deg_to_rad(95.0)), 0.0); // behind ground plane
}

TEST(element, patch_beamwidth_consistent_with_pattern)
{
    patch_element patch;
    const double half = patch.half_power_beamwidth() / 2.0;
    EXPECT_NEAR(patch.gain(half) / patch.peak_gain(), 0.5, 1e-6);
}

TEST(element, horn_gain_beamwidth_product)
{
    horn_element horn(20.0);
    EXPECT_NEAR(to_db(horn.peak_gain()), 20.0, 1e-9);
    const double bw = horn.half_power_beamwidth();
    EXPECT_NEAR(horn.gain(bw / 2.0) / horn.peak_gain(), 0.5, 1e-6);
    // 20 dBi symmetric beam: ~0.35 rad (20 degrees).
    EXPECT_NEAR(bw, std::sqrt(4.0 * pi / 100.0), 1e-9);
}

TEST(ula, boresight_gain_is_n_times_element)
{
    const auto iso = std::make_shared<isotropic_element>();
    uniform_linear_array array(8, 0.5, iso);
    EXPECT_NEAR(array.gain(0.0), 8.0, 1e-9);
}

TEST(ula, steering_moves_main_lobe)
{
    const auto iso = std::make_shared<isotropic_element>();
    uniform_linear_array array(16, 0.5, iso);
    const double target = deg_to_rad(25.0);
    array.steer(target);
    EXPECT_NEAR(array.gain(target), 16.0, 1e-9);
    EXPECT_LT(array.gain(0.0), 2.0); // old boresight now in a sidelobe region
}

TEST(ula, beamwidth_shrinks_with_elements)
{
    const auto iso = std::make_shared<isotropic_element>();
    uniform_linear_array small(4, 0.5, iso);
    uniform_linear_array large(32, 0.5, iso);
    EXPECT_GT(small.half_power_beamwidth(), large.half_power_beamwidth() * 4.0);
}

TEST(ula, pattern_sampling)
{
    const auto iso = std::make_shared<isotropic_element>();
    uniform_linear_array array(8, 0.5, iso);
    const rvec pattern = array.pattern(181);
    EXPECT_EQ(pattern.size(), 181u);
    EXPECT_NEAR(pattern[90], 8.0, 1e-9); // broadside sample
}

TEST(termination, canonical_loads)
{
    EXPECT_EQ(gamma_short(), (cf64{-1.0, 0.0}));
    EXPECT_EQ(gamma_open(), (cf64{1.0, 0.0}));
    EXPECT_EQ(gamma_matched(), (cf64{0.0, 0.0}));
    EXPECT_NEAR(std::abs(reflection_coefficient(cf64{50.0, 0.0})), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(reflection_coefficient(cf64{0.0, 0.0}) - cf64{-1.0, 0.0}), 0.0, 1e-12);
}

TEST(termination, passivity_for_passive_loads)
{
    for (double r : {0.0, 10.0, 50.0, 200.0, 1e6}) {
        for (double x : {-100.0, 0.0, 100.0}) {
            EXPECT_LE(std::abs(reflection_coefficient(cf64{r, x})), 1.0 + 1e-9);
        }
    }
}

TEST(termination, quarter_wave_short_becomes_open)
{
    const cf64 gamma = line_transform(gamma_short(), pi / 2.0);
    EXPECT_NEAR(std::abs(gamma - gamma_open()), 0.0, 1e-12);
}

TEST(termination, lossy_line_shrinks_gamma)
{
    const cf64 gamma = line_transform_lossy(gamma_short(), pi / 4.0, 3.0);
    EXPECT_NEAR(std::abs(gamma), std::pow(10.0, -6.0 / 20.0), 1e-9);
}

TEST(termination, absorbed_fraction)
{
    EXPECT_DOUBLE_EQ(absorbed_fraction(gamma_matched()), 1.0);
    EXPECT_DOUBLE_EQ(absorbed_fraction(gamma_short()), 0.0);
    EXPECT_NEAR(absorbed_fraction(cf64{0.5, 0.0}), 0.75, 1e-12);
}

TEST(termination, electrical_length)
{
    // Half a guided wavelength = pi radians.
    const double f = 24e9;
    const double guided = wavelength(f) / std::sqrt(4.0);
    EXPECT_NEAR(electrical_length(guided / 2.0, f, 4.0), pi, 1e-9);
}

class van_atta_retro : public ::testing::TestWithParam<std::size_t> {};

TEST_P(van_atta_retro, monostatic_gain_equals_n_squared_times_element)
{
    const std::size_t n = GetParam();
    van_atta_array::config cfg;
    cfg.element_count = n;
    cfg.line_loss_db = 0.0;
    const auto iso = std::make_shared<isotropic_element>();
    van_atta_array array(cfg, iso);
    // Retro-reflection is coherent at every angle for isotropic elements.
    for (double deg : {-50.0, -20.0, 0.0, 35.0, 55.0}) {
        EXPECT_NEAR(array.monostatic_gain(deg_to_rad(deg)),
                    static_cast<double>(n * n), 1e-6)
            << "angle " << deg;
    }
}

INSTANTIATE_TEST_SUITE_P(element_counts, van_atta_retro, ::testing::Values(2u, 4u, 8u, 16u));

TEST(van_atta, patch_elements_limit_field_of_view)
{
    van_atta_array::config cfg;
    cfg.element_count = 8;
    cfg.line_loss_db = 0.0;
    van_atta_array array(cfg, std::make_shared<patch_element>());
    const double fov = array.field_of_view(3.0);
    // Patch cos^2q roll-off: 3 dB two-way droop near +-16 degrees.
    EXPECT_GT(fov, deg_to_rad(20.0));
    EXPECT_LT(fov, deg_to_rad(60.0));
}

TEST(van_atta, gamma_scales_reflection_power)
{
    van_atta_array::config cfg;
    cfg.element_count = 4;
    cfg.line_loss_db = 0.0;
    van_atta_array array(cfg, std::make_shared<isotropic_element>());
    const double full = array.monostatic_gain(0.3, cf64{-1.0, 0.0});
    const double half_field = array.monostatic_gain(0.3, cf64{0.5, 0.0});
    EXPECT_NEAR(half_field / full, 0.25, 1e-9);
    EXPECT_NEAR(array.monostatic_gain(0.3, cf64{}), 0.0, 1e-12); // absorptive
}

TEST(van_atta, line_loss_reduces_gain)
{
    van_atta_array::config lossless;
    lossless.element_count = 8;
    lossless.line_loss_db = 0.0;
    van_atta_array a(lossless, std::make_shared<isotropic_element>());
    van_atta_array::config lossy = lossless;
    lossy.line_loss_db = 3.0;
    van_atta_array b(lossy, std::make_shared<isotropic_element>());
    // The pair line is traversed once per bounce: 3 dB field-squared loss.
    EXPECT_NEAR(to_db(a.monostatic_gain(0.0) / b.monostatic_gain(0.0)), 3.0, 1e-6);
}

TEST(van_atta, bistatic_peak_is_retro_not_specular)
{
    van_atta_array::config cfg;
    cfg.element_count = 8;
    cfg.line_loss_db = 0.0;
    van_atta_array array(cfg, std::make_shared<isotropic_element>());
    const double theta_in = deg_to_rad(30.0);
    const double retro = std::norm(array.bistatic_coupling(theta_in, theta_in, cf64{-1.0, 0.0}));
    const double specular =
        std::norm(array.bistatic_coupling(theta_in, -theta_in, cf64{-1.0, 0.0}));
    EXPECT_GT(retro, specular * 10.0);
}

TEST(van_atta, flat_plate_is_specular_not_retro)
{
    const auto iso = std::make_shared<isotropic_element>();
    flat_plate_reflector plate(8, 0.5, iso);
    const double theta = deg_to_rad(30.0);
    const double retro = plate.monostatic_gain(theta);
    const double broadside = plate.monostatic_gain(0.0);
    EXPECT_NEAR(broadside, 64.0, 1e-6); // coherent at normal incidence
    EXPECT_LT(retro, broadside / 20.0); // collapses off-normal
    // Specular bistatic lobe is strong.
    const double specular = std::norm(plate.bistatic_coupling(theta, -theta, cf64{-1.0, 0.0}));
    EXPECT_NEAR(specular, 64.0, 1e-6);
}

TEST(van_atta, pair_phase_errors_degrade_gain)
{
    van_atta_array::config clean;
    clean.element_count = 16;
    clean.line_loss_db = 0.0;
    van_atta_array a(clean, std::make_shared<isotropic_element>());
    van_atta_array::config rough = clean;
    rough.pair_phase_error_rms_rad = 0.6;
    van_atta_array b(rough, std::make_shared<isotropic_element>());
    EXPECT_LT(b.monostatic_gain(0.2), a.monostatic_gain(0.2));
}

TEST(van_atta, validation)
{
    van_atta_array::config cfg;
    cfg.element_count = 7; // odd
    EXPECT_THROW(van_atta_array(cfg, std::make_shared<isotropic_element>()),
                 std::invalid_argument);
    cfg.element_count = 8;
    EXPECT_THROW(van_atta_array(cfg, nullptr), std::invalid_argument);
}

} // namespace
} // namespace mmtag::antenna
