// Sample-accurate inventory: validates the slot-level ALOHA abstraction
// against real superposed waveforms — collisions destroy frames because the
// RF adds up, not because a model says so.
#include <gtest/gtest.h>

#include "mmtag/core/inventory_round.hpp"

namespace mmtag::core {
namespace {

// Shared 50 MS/s preset from the library.
using core::fast_scenario;

std::vector<tag_descriptor> make_tags(std::size_t count)
{
    std::vector<tag_descriptor> tags;
    for (std::uint32_t i = 0; i < count; ++i) {
        tags.push_back({1000 + i, 2.0 + 0.3 * static_cast<double>(i),
                        deg_to_rad(-10.0 + 4.0 * static_cast<double>(i))});
    }
    return tags;
}

TEST(sampled_inventory, single_tag_first_round)
{
    const auto tags = make_tags(1);
    sampled_inventory_config cfg;
    cfg.slot_exponent = 1;
    const auto result = run_sampled_inventory(fast_scenario(), tags, cfg, 1);
    EXPECT_TRUE(result.complete());
    EXPECT_EQ(result.rounds, 1u);
    EXPECT_EQ(result.identified_ids, std::vector<std::uint32_t>{1000});
}

TEST(sampled_inventory, four_tags_complete_within_budget)
{
    const auto tags = make_tags(4);
    sampled_inventory_config cfg;
    cfg.slot_exponent = 2; // 4 slots: collisions likely but resolvable
    const auto result = run_sampled_inventory(fast_scenario(), tags, cfg, 7);
    EXPECT_TRUE(result.complete()) << result.identified_ids.size() << "/4 after "
                                   << result.rounds << " rounds";
    const std::vector<std::uint32_t> expected{1000, 1001, 1002, 1003};
    EXPECT_EQ(result.identified_ids, expected);
}

TEST(sampled_inventory, collisions_happen_and_cost_rounds)
{
    // 6 tags in 2 slots: heavy collisions. The waveform-level truth should
    // show collision slots and need multiple rounds.
    const auto tags = make_tags(6);
    sampled_inventory_config cfg;
    cfg.slot_exponent = 1;
    cfg.max_rounds = 16;
    const auto result = run_sampled_inventory(fast_scenario(), tags, cfg, 3);
    EXPECT_GT(result.collision_slots, 0u);
    EXPECT_GT(result.rounds, 1u);
    // With 16 rounds of 2 slots the stragglers eventually get through.
    EXPECT_GE(result.identified_ids.size(), 5u);
}

TEST(sampled_inventory, deterministic)
{
    const auto tags = make_tags(3);
    sampled_inventory_config cfg;
    const auto a = run_sampled_inventory(fast_scenario(), tags, cfg, 11);
    const auto b = run_sampled_inventory(fast_scenario(), tags, cfg, 11);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.identified_ids, b.identified_ids);
    EXPECT_EQ(a.collision_slots, b.collision_slots);
}

TEST(sampled_inventory, slot_accounting_consistent)
{
    const auto tags = make_tags(3);
    sampled_inventory_config cfg;
    cfg.slot_exponent = 2;
    const auto result = run_sampled_inventory(fast_scenario(), tags, cfg, 13);
    EXPECT_EQ(result.slots_used, result.rounds * 4);
    EXPECT_LE(result.collision_slots + result.idle_slots, result.slots_used);
}

TEST(sampled_inventory, validation)
{
    const auto tags = make_tags(2);
    sampled_inventory_config cfg;
    cfg.slot_exponent = 9;
    EXPECT_THROW((void)run_sampled_inventory(fast_scenario(), tags, cfg, 1),
                 std::invalid_argument);
    cfg.slot_exponent = 2;
    cfg.max_rounds = 0;
    EXPECT_THROW((void)run_sampled_inventory(fast_scenario(), tags, cfg, 1),
                 std::invalid_argument);
}

} // namespace
} // namespace mmtag::core
