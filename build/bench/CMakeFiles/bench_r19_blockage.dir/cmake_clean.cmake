file(REMOVE_RECURSE
  "CMakeFiles/bench_r19_blockage.dir/bench_r19_blockage.cpp.o"
  "CMakeFiles/bench_r19_blockage.dir/bench_r19_blockage.cpp.o.d"
  "bench_r19_blockage"
  "bench_r19_blockage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r19_blockage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
