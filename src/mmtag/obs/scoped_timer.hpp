// RAII profiling hooks. MMTAG_SCOPED_TIMER(registry, "time/name") times the
// enclosing scope into a wall-time histogram of `registry`; a nullptr
// registry skips even the clock read, and building with
// -DMMTAG_OBS_ENABLED=0 compiles the macro away entirely.
//
// Timer metrics must use "time/..." names: the deterministic metric view
// (what the result writer embeds per sweep) excludes that prefix, because
// wall times are not --jobs-invariant.
#pragma once

#include <chrono>

#include "mmtag/obs/metrics_registry.hpp"

#ifndef MMTAG_OBS_ENABLED
#define MMTAG_OBS_ENABLED 1
#endif

namespace mmtag::obs {

class scoped_timer {
public:
    scoped_timer(metrics_registry* registry, const char* name)
        : registry_(registry), name_(name)
    {
        if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
    }

    ~scoped_timer()
    {
        if (registry_ == nullptr) return;
        const double elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                .count();
        registry_->get_histogram(name_, time_bounds_s()).observe(elapsed_s);
    }

    scoped_timer(const scoped_timer&) = delete;
    scoped_timer& operator=(const scoped_timer&) = delete;

private:
    metrics_registry* registry_;
    const char* name_;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace mmtag::obs

#define MMTAG_OBS_CONCAT_IMPL(a, b) a##b
#define MMTAG_OBS_CONCAT(a, b) MMTAG_OBS_CONCAT_IMPL(a, b)

#if MMTAG_OBS_ENABLED
#define MMTAG_SCOPED_TIMER(registry, name)                                       \
    ::mmtag::obs::scoped_timer MMTAG_OBS_CONCAT(mmtag_scoped_timer_, __LINE__)( \
        (registry), (name))
#else
#define MMTAG_SCOPED_TIMER(registry, name) static_cast<void>(0)
#endif
