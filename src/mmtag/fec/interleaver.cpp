#include "mmtag/fec/interleaver.hpp"

#include <stdexcept>

namespace mmtag::fec {

block_interleaver::block_interleaver(std::size_t rows, std::size_t columns)
    : rows_(rows), columns_(columns)
{
    if (rows == 0 || columns == 0) {
        throw std::invalid_argument("block_interleaver: rows and columns must be >= 1");
    }
}

std::vector<std::uint8_t> block_interleaver::interleave(std::span<const std::uint8_t> bits) const
{
    const std::size_t block = block_size();
    const std::size_t blocks = (bits.size() + block - 1) / block;
    std::vector<std::uint8_t> padded(bits.begin(), bits.end());
    padded.resize(blocks * block, 0);
    std::vector<std::uint8_t> out(padded.size());
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t base = b * block;
        std::size_t write = 0;
        for (std::size_t col = 0; col < columns_; ++col) {
            for (std::size_t row = 0; row < rows_; ++row) {
                out[base + write++] = padded[base + row * columns_ + col];
            }
        }
    }
    return out;
}

std::vector<std::uint8_t> block_interleaver::deinterleave(std::span<const std::uint8_t> bits) const
{
    const std::size_t block = block_size();
    if (bits.size() % block != 0) {
        throw std::invalid_argument("block_interleaver: length must be a multiple of block size");
    }
    std::vector<std::uint8_t> out(bits.size());
    const std::size_t blocks = bits.size() / block;
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t base = b * block;
        std::size_t read = 0;
        for (std::size_t col = 0; col < columns_; ++col) {
            for (std::size_t row = 0; row < rows_; ++row) {
                out[base + row * columns_ + col] = bits[base + read++];
            }
        }
    }
    return out;
}

std::vector<double> block_interleaver::deinterleave_soft(std::span<const double> values) const
{
    const std::size_t block = block_size();
    if (values.size() % block != 0) {
        throw std::invalid_argument("block_interleaver: length must be a multiple of block size");
    }
    std::vector<double> out(values.size());
    const std::size_t blocks = values.size() / block;
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t base = b * block;
        std::size_t read = 0;
        for (std::size_t col = 0; col < columns_; ++col) {
            for (std::size_t row = 0; row < rows_; ++row) {
                out[base + row * columns_ + col] = values[base + read++];
            }
        }
    }
    return out;
}

} // namespace mmtag::fec
