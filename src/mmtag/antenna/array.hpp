// Uniform linear array: array factor, steering, and directivity estimates.
// Used for the AP's electronically steered antenna and as the building block
// the Van Atta model is validated against.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/antenna/element.hpp"

namespace mmtag::antenna {

class uniform_linear_array {
public:
    /// `spacing_wavelengths` is the inter-element pitch in wavelengths
    /// (0.5 is the standard grating-lobe-free choice).
    uniform_linear_array(std::size_t element_count, double spacing_wavelengths,
                         std::shared_ptr<const element> radiator);

    [[nodiscard]] std::size_t element_count() const { return element_count_; }
    [[nodiscard]] double spacing_wavelengths() const { return spacing_; }

    /// Complex array factor toward `theta_rad` with the current steering.
    [[nodiscard]] cf64 array_factor(double theta_rad) const;

    /// Power gain (|AF|^2 * element gain), normalized so that boresight of an
    /// unsteered array gives N * element peak gain (coherent aperture gain).
    [[nodiscard]] double gain(double theta_rad) const;

    /// Points the main lobe at `theta_rad` via progressive phase weights.
    void steer(double theta_rad);

    [[nodiscard]] double steering_angle() const { return steering_angle_; }

    /// Approximate half-power beamwidth of the main lobe [rad].
    [[nodiscard]] double half_power_beamwidth() const;

    /// Gain pattern sampled over [-pi/2, pi/2] with `points` samples.
    [[nodiscard]] rvec pattern(std::size_t points) const;

private:
    std::size_t element_count_;
    double spacing_;
    std::shared_ptr<const element> radiator_;
    double steering_angle_ = 0.0;
};

} // namespace mmtag::antenna
