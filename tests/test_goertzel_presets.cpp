#include <gtest/gtest.h>

#include <random>

#include "mmtag/core/config.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/dsp/goertzel.hpp"
#include "mmtag/dsp/nco.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag {
namespace {

TEST(goertzel, measures_matching_tone_power)
{
    dsp::nco osc(0.125);
    const cvec tone = osc.generate(1024);
    // A unit tone at the probed bin: normalized power 1.
    EXPECT_NEAR(dsp::goertzel_power(tone, 0.125), 1.0, 1e-9);
}

TEST(goertzel, rejects_off_bin_tone)
{
    dsp::nco osc(0.125);
    const cvec tone = osc.generate(1024);
    // 20 bins away: rectangular-window sidelobe, far below the main bin.
    EXPECT_LT(dsp::goertzel_power(tone, 0.125 + 20.0 / 1024.0), 1e-3);
}

TEST(goertzel, matches_fft_bin)
{
    std::mt19937_64 rng(3);
    std::normal_distribution<double> g(0.0, 1.0);
    cvec x(256);
    for (auto& v : x) v = {g(rng), g(rng)};
    // Compare against a direct DFT at bin 37.
    const double f = 37.0 / 256.0;
    cf64 direct{};
    for (std::size_t n = 0; n < x.size(); ++n) {
        direct += x[n] * std::polar(1.0, -two_pi * f * static_cast<double>(n));
    }
    EXPECT_NEAR(dsp::goertzel_power(x, f), std::norm(direct) / (256.0 * 256.0), 1e-9);
}

TEST(goertzel, streaming_accumulation_and_reset)
{
    dsp::nco osc(0.05);
    const cvec tone = osc.generate(600);
    dsp::goertzel detector(0.05);
    detector.process(std::span<const cf64>{tone.data(), 300});
    detector.process(std::span<const cf64>{tone.data() + 300, 300});
    EXPECT_EQ(detector.samples_consumed(), 600u);
    EXPECT_NEAR(detector.power(), 1.0, 1e-9);
    detector.reset();
    EXPECT_EQ(detector.samples_consumed(), 0u);
    EXPECT_THROW((void)detector.power(), std::logic_error);
}

TEST(goertzel, detect_tone_picks_strongest_candidate)
{
    dsp::nco osc(0.2);
    cvec signal = osc.generate(2048);
    for (auto& s : signal) s *= 0.1; // -20 dBFS tone
    const std::vector<double> candidates{0.1, 0.2, 0.3};
    EXPECT_EQ(dsp::detect_tone(signal, candidates, 1e-4), 1u);
    // Threshold above the tone power: nothing qualifies.
    EXPECT_EQ(dsp::detect_tone(signal, candidates, 1.0),
              std::numeric_limits<std::size_t>::max());
}

TEST(goertzel, validation)
{
    EXPECT_THROW(dsp::goertzel(1.0), std::invalid_argument);
    EXPECT_THROW(dsp::goertzel(-0.1), std::invalid_argument);
}

TEST(presets, all_presets_validate)
{
    EXPECT_NO_THROW(core::validate(core::default_scenario()));
    EXPECT_NO_THROW(core::validate(core::fast_scenario()));
    EXPECT_NO_THROW(core::validate(core::warehouse_scenario()));
    EXPECT_NO_THROW(core::validate(core::wearable_scenario()));
}

TEST(presets, fast_scenario_matches_default_rf)
{
    const auto fast = core::fast_scenario();
    const auto full = core::default_scenario();
    EXPECT_DOUBLE_EQ(fast.transmitter.tx_power_dbm, full.transmitter.tx_power_dbm);
    EXPECT_EQ(fast.van_atta.element_count, full.van_atta.element_count);
    EXPECT_DOUBLE_EQ(fast.symbol_rate_hz, full.symbol_rate_hz);
    EXPECT_LT(fast.sample_rate_hz, full.sample_rate_hz);
}

TEST(presets, warehouse_preset_delivers)
{
    auto cfg = core::warehouse_scenario();
    cfg.distance_m = 5.0;
    core::link_simulator sim(cfg);
    const auto report = sim.run_trials(3, 32);
    EXPECT_DOUBLE_EQ(report.per, 0.0);
    // 16 elements buy +6 dB over an 8-element tag in the same clutter.
    auto small = core::warehouse_scenario();
    small.distance_m = 5.0;
    small.van_atta.element_count = 8;
    core::link_simulator small_sim(small);
    EXPECT_GT(report.mean_snr_db, small_sim.run_trials(3, 32).mean_snr_db + 3.0);
}

TEST(presets, wearable_preset_streams_at_high_rate)
{
    const auto cfg = core::wearable_scenario();
    core::link_simulator sim(cfg);
    const auto report = sim.run_trials(3, 96);
    EXPECT_DOUBLE_EQ(report.per, 0.0);
    // 12.5 Msym/s x 8-PSK x 2/3 = 25 Mb/s info rate; goodput above 10 Mb/s
    // after framing overhead.
    EXPECT_GT(report.goodput_bps, 10e6);
}

} // namespace
} // namespace mmtag
