// Shard-based thread pool for the Monte-Carlo runtime. Deliberately
// work-stealing-free: a parallel_for splits its index range into contiguous
// shards that workers claim from a single atomic cursor, so every index runs
// exactly once, on exactly one worker, with no cross-worker migration. The
// pool makes no ordering promises — determinism is the sweep runner's job
// (per-trial counter-based seeding + ordered reduction), which is why the
// pool itself can stay this simple.
//
// The calling thread participates as a worker: a pool of `jobs` executors
// spawns only jobs-1 threads, and jobs == 1 degenerates to a plain inline
// loop (no threads, no atomics on the hot path) — the reference arm of the
// determinism tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmtag::runtime {

/// Resolves a --jobs request: 0 means "auto" (hardware_concurrency, at
/// least 1); anything else is taken literally.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested);

class thread_pool {
public:
    /// `jobs` as per resolve_jobs; the pool keeps jobs-1 persistent workers.
    explicit thread_pool(std::size_t jobs = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Total executor count (persistent workers + the calling thread).
    [[nodiscard]] std::size_t jobs() const { return workers_.size() + 1; }

    /// Runs body(i) for every i in [0, count), sharded across the pool.
    /// Blocks until every index has run. The first exception thrown by any
    /// body is rethrown here (remaining shards are skipped, already-claimed
    /// ones finish). Not reentrant: one parallel_for at a time per pool —
    /// a nested call (from a worker body or another thread) throws
    /// std::logic_error instead of deadlocking. When a trace session is
    /// active, every executor drains its trace ring at batch end.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

private:
    struct batch {
        const std::function<void(std::size_t)>* body = nullptr;
        std::size_t count = 0;
        std::size_t shard_size = 1;
        std::size_t shard_count = 0;
        std::atomic<std::size_t> next_shard{0};
        std::atomic<bool> abort{false};
        std::exception_ptr error;
        std::mutex error_mutex;
        std::size_t finished_workers = 0; // guarded by pool mutex_
    };

    void worker_loop();
    void run_shards(batch& work);

    std::vector<std::thread> workers_;
    std::atomic<bool> busy_{false}; ///< reentrancy guard for parallel_for
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    batch* current_ = nullptr;
    std::uint64_t generation_ = 0;
    bool stopping_ = false;
};

/// Deterministic fan-out: runs task(i) for every i in [0, count) across the
/// pool, each result landing in its pre-allocated slot, and returns the
/// slots in index order. Results depend only on the index (no shared
/// accumulator, no scheduling sensitivity); callers fold them in order to
/// keep aggregates --jobs-invariant. The result type must be
/// default-constructible.
template <typename Task>
[[nodiscard]] auto ordered_parallel_results(thread_pool& pool, std::size_t count,
                                            Task&& task)
{
    std::vector<decltype(task(std::size_t{}))> results(count);
    pool.parallel_for(count, [&](std::size_t i) { results[i] = task(i); });
    return results;
}

} // namespace mmtag::runtime
