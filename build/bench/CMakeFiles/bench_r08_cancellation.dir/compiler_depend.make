# Empty compiler generated dependencies file for bench_r08_cancellation.
# This may be replaced when dependencies are built.
