# Empty dependencies file for bench_r14_impairments.
# This may be replaced when dependencies are built.
