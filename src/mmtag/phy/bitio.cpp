#include "mmtag/phy/bitio.hpp"

#include <random>
#include <stdexcept>

namespace mmtag::phy {

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes)
{
    std::vector<std::uint8_t> bits;
    bits.reserve(bytes.size() * 8);
    for (std::uint8_t byte : bytes) {
        for (int bit = 7; bit >= 0; --bit) {
            bits.push_back(static_cast<std::uint8_t>((byte >> bit) & 1u));
        }
    }
    return bits;
}

std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits)
{
    if (bits.size() % 8 != 0) {
        throw std::invalid_argument("bits_to_bytes: length must be a multiple of 8");
    }
    std::vector<std::uint8_t> bytes(bits.size() / 8, 0);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        bytes[i / 8] = static_cast<std::uint8_t>((bytes[i / 8] << 1) | (bits[i] & 1u));
    }
    return bytes;
}

std::vector<std::uint8_t> string_to_bytes(const std::string& text)
{
    return {text.begin(), text.end()};
}

std::string bytes_to_string(std::span<const std::uint8_t> bytes)
{
    return {bytes.begin(), bytes.end()};
}

std::size_t hamming_distance(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b)
{
    if (a.size() != b.size()) throw std::invalid_argument("hamming_distance: length mismatch");
    std::size_t distance = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if ((a[i] & 1u) != (b[i] & 1u)) ++distance;
    }
    return distance;
}

std::vector<std::uint8_t> random_bytes(std::size_t count, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    std::vector<std::uint8_t> out(count);
    for (auto& byte : out) byte = static_cast<std::uint8_t>(byte_dist(rng));
    return out;
}

std::vector<std::uint8_t> random_bits(std::size_t count, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> bit_dist(0, 1);
    std::vector<std::uint8_t> out(count);
    for (auto& bit : out) bit = static_cast<std::uint8_t>(bit_dist(rng));
    return out;
}

} // namespace mmtag::phy
