# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_r05_ber_vs_snr.
