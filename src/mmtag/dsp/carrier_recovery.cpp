#include "mmtag/dsp/carrier_recovery.hpp"

#include <stdexcept>

namespace mmtag::dsp {

psk_carrier_recovery::psk_carrier_recovery(const config& cfg) : cfg_(cfg)
{
    if (cfg_.modulation_order < 2) {
        throw std::invalid_argument("psk_carrier_recovery: modulation order must be >= 2");
    }
    if (!(cfg_.loop_bandwidth > 0.0 && cfg_.loop_bandwidth < 0.5)) {
        throw std::invalid_argument("psk_carrier_recovery: loop bandwidth must be in (0, 0.5)");
    }
    const double bn = cfg_.loop_bandwidth;
    const double zeta = cfg_.damping;
    const double theta = bn / (zeta + 1.0 / (4.0 * zeta));
    const double denom = 1.0 + 2.0 * zeta * theta + theta * theta;
    kp_ = 4.0 * zeta * theta / denom;
    ki_ = 4.0 * theta * theta / denom;
}

cvec psk_carrier_recovery::process(std::span<const cf64> symbols)
{
    cvec out;
    out.reserve(symbols.size());
    const double m = static_cast<double>(cfg_.modulation_order);
    const double sector = two_pi / m;
    for (cf64 x : symbols) {
        const cf64 rotated = x * std::polar(1.0, -phase_);
        out.push_back(rotated);
        if (std::abs(rotated) < 1e-12) continue;
        // Decision-directed error: distance to the nearest M-PSK phase.
        const double angle = std::arg(rotated);
        const double nearest = std::round(angle / sector) * sector;
        const double error = wrap_phase(angle - nearest);
        frequency_ += ki_ * error;
        phase_ = wrap_phase(phase_ + kp_ * error + frequency_);
    }
    return out;
}

void psk_carrier_recovery::reset()
{
    phase_ = 0.0;
    frequency_ = 0.0;
}

double estimate_phase_offset(std::span<const cf64> received, std::span<const cf64> pilots)
{
    if (received.size() != pilots.size() || received.empty()) {
        throw std::invalid_argument("estimate_phase_offset: size mismatch or empty input");
    }
    cf64 acc{};
    for (std::size_t i = 0; i < received.size(); ++i) acc += received[i] * std::conj(pilots[i]);
    return std::arg(acc);
}

double estimate_frequency_offset(std::span<const cf64> received, std::span<const cf64> pilots)
{
    if (received.size() != pilots.size() || received.size() < 2) {
        throw std::invalid_argument("estimate_frequency_offset: need >= 2 matched samples");
    }
    // Phase increment between consecutive de-modulated pilots; averaging the
    // one-lag autocorrelation is robust to phase wrapping.
    cf64 acc{};
    for (std::size_t i = 1; i < received.size(); ++i) {
        const cf64 current = received[i] * std::conj(pilots[i]);
        const cf64 previous = received[i - 1] * std::conj(pilots[i - 1]);
        acc += current * std::conj(previous);
    }
    return std::arg(acc) / two_pi;
}

} // namespace mmtag::dsp
