# Empty compiler generated dependencies file for mmtag_sim.
# This may be replaced when dependencies are built.
