// Envelope (power) detector — the tag's only receive element. A Schottky
// detector produces a low-rate voltage proportional to incident RF power;
// the tag uses it to detect the AP's query carrier and wake up.
#pragma once

#include <random>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::rf {

class envelope_detector {
public:
    struct config {
        double responsivity_v_per_w = 2000.0; ///< Schottky diode responsivity
        double video_bandwidth_hz = 10e6;     ///< output low-pass corner
        double sample_rate_hz = 1e9;
        double noise_equivalent_power_w = 1e-9; ///< NEP over video bandwidth
    };

    envelope_detector(const config& cfg, std::uint64_t seed);

    /// Converts incident complex RF samples into detector output voltage
    /// (square-law + single-pole video filter + detector noise).
    [[nodiscard]] rvec detect(std::span<const cf64> rf);

    /// Threshold comparator with hysteresis for carrier detection.
    [[nodiscard]] std::vector<bool> threshold(std::span<const double> voltage,
                                              double on_volts, double off_volts) const;

private:
    config cfg_;
    double filter_alpha_;
    double state_ = 0.0;
    std::mt19937_64 rng_;
    std::normal_distribution<double> gaussian_{0.0, 1.0};
};

} // namespace mmtag::rf
