// mmtag_sim: the command-line front end to the mmtag simulator.
// All logic lives in mmtag::cli (unit tested); this is just main().
#include "mmtag/cli/commands.hpp"

int main(int argc, char** argv)
{
    return mmtag::cli::dispatch(argc, argv);
}
