#include <gtest/gtest.h>

#include <random>

#include "mmtag/phy/bitio.hpp"
#include "mmtag/phy/frame.hpp"

namespace mmtag::phy {
namespace {

frame_config make_config(modulation scheme, fec_mode fec)
{
    frame_config cfg;
    cfg.scheme = scheme;
    cfg.fec = fec;
    return cfg;
}

TEST(preamble, structure)
{
    preamble_layout layout;
    const cvec p = make_preamble(layout);
    EXPECT_EQ(p.size(), layout.total_symbols());
    EXPECT_EQ(sync_word(layout).size(), 127u); // degree-7 m-sequence
    // AGC section alternates.
    for (std::size_t i = 0; i + 1 < layout.agc_symbols; ++i) {
        EXPECT_NEAR(std::abs(p[i] + p[i + 1]), 0.0, 1e-12);
    }
}

TEST(preamble, detected_at_any_offset)
{
    preamble_layout layout;
    const cvec p = make_preamble(layout);
    for (std::size_t offset : {0u, 5u, 40u}) {
        cvec stream(offset, cf64{0.01, 0.0});
        stream.insert(stream.end(), p.begin(), p.end());
        stream.resize(stream.size() + 30, cf64{0.01, 0.0});
        const auto sync = detect_preamble(stream, layout);
        ASSERT_TRUE(sync.has_value()) << "offset " << offset;
        EXPECT_EQ(sync->frame_start, offset + layout.total_symbols());
        EXPECT_NEAR(std::abs(sync->channel_gain - cf64{1.0, 0.0}), 0.0, 1e-9);
    }
}

TEST(preamble, gain_estimate_tracks_channel)
{
    preamble_layout layout;
    cvec stream = make_preamble(layout);
    const cf64 gain = std::polar(0.02, 1.2);
    for (auto& s : stream) s *= gain;
    const auto sync = detect_preamble(stream, layout);
    ASSERT_TRUE(sync.has_value());
    EXPECT_NEAR(std::abs(sync->channel_gain - gain), 0.0, 1e-9);
}

TEST(preamble, pure_noise_rejected)
{
    std::mt19937_64 rng(31);
    std::normal_distribution<double> g(0.0, 1.0);
    cvec noise(300);
    for (auto& s : noise) s = {g(rng), g(rng)};
    const auto sync = detect_preamble(noise, {}, 4.0);
    EXPECT_FALSE(sync.has_value());
}

TEST(frame, header_round_trip)
{
    const auto cfg = make_config(modulation::psk8, fec_mode::conv_three_quarters);
    const cvec symbols = build_frame(random_bytes(100, 1), cfg);
    // Header begins right after the preamble.
    const std::span<const cf64> header_span{symbols.data() + cfg.preamble.total_symbols(),
                                            header_symbol_count};
    const auto header = decode_header(header_span);
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(header->scheme, modulation::psk8);
    EXPECT_EQ(header->fec, fec_mode::conv_three_quarters);
    EXPECT_EQ(header->payload_bytes, 100u);
    EXPECT_EQ(header->version, 1);
}

TEST(frame, header_survives_single_symbol_error)
{
    const auto cfg = make_config(modulation::qpsk, fec_mode::conv_half);
    cvec symbols = build_frame(random_bytes(40, 2), cfg);
    const std::size_t header_start = cfg.preamble.total_symbols();
    symbols[header_start + 10] = -symbols[header_start + 10]; // flip one BPSK symbol
    const auto header = decode_header(
        std::span<const cf64>{symbols.data() + header_start, header_symbol_count});
    ASSERT_TRUE(header.has_value()); // Hamming corrects it
    EXPECT_EQ(header->payload_bytes, 40u);
}

TEST(frame, corrupted_header_crc_rejected)
{
    const auto cfg = make_config(modulation::qpsk, fec_mode::conv_half);
    cvec symbols = build_frame(random_bytes(40, 3), cfg);
    const std::size_t header_start = cfg.preamble.total_symbols();
    // Two errors in the same 7-bit block defeat Hamming and must be caught
    // by the header CRC.
    symbols[header_start + 0] = -symbols[header_start + 0];
    symbols[header_start + 1] = -symbols[header_start + 1];
    const auto header = decode_header(
        std::span<const cf64>{symbols.data() + header_start, header_symbol_count});
    EXPECT_FALSE(header.has_value());
}

struct frame_case {
    modulation scheme;
    fec_mode fec;
    std::size_t payload_bytes;
};

class frame_round_trip : public ::testing::TestWithParam<frame_case> {};

TEST_P(frame_round_trip, clean_decode)
{
    const auto param = GetParam();
    const auto cfg = make_config(param.scheme, param.fec);
    const auto payload = random_bytes(param.payload_bytes, 7 + param.payload_bytes);
    const cvec symbols = build_frame(payload, cfg);

    const std::span<const cf64> frame_span{symbols.data() + cfg.preamble.total_symbols(),
                                           symbols.size() - cfg.preamble.total_symbols()};
    const auto result = decode_frame(frame_span, cfg, 0.05);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->crc_ok);
    EXPECT_EQ(result->payload, payload);
    EXPECT_EQ(result->symbols_consumed,
              header_symbol_count + payload_symbol_count(payload.size(), cfg));
}

INSTANTIATE_TEST_SUITE_P(
    matrix, frame_round_trip,
    ::testing::Values(frame_case{modulation::bpsk, fec_mode::conv_half, 16},
                      frame_case{modulation::bpsk, fec_mode::uncoded, 16},
                      frame_case{modulation::qpsk, fec_mode::conv_half, 64},
                      frame_case{modulation::qpsk, fec_mode::conv_two_thirds, 64},
                      frame_case{modulation::qpsk, fec_mode::conv_three_quarters, 64},
                      frame_case{modulation::qpsk, fec_mode::uncoded, 200},
                      frame_case{modulation::psk8, fec_mode::conv_half, 128},
                      frame_case{modulation::psk16, fec_mode::conv_half, 48},
                      frame_case{modulation::qpsk, fec_mode::conv_half, 1},
                      frame_case{modulation::qpsk, fec_mode::conv_half, 1024}));

TEST(frame, coded_frame_survives_symbol_noise)
{
    const auto cfg = make_config(modulation::qpsk, fec_mode::conv_half);
    const auto payload = random_bytes(64, 11);
    cvec symbols = build_frame(payload, cfg);
    std::mt19937_64 rng(13);
    std::normal_distribution<double> g(0.0, 0.25);
    for (auto& s : symbols) s += cf64{g(rng), g(rng)};

    const std::span<const cf64> frame_span{symbols.data() + cfg.preamble.total_symbols(),
                                           symbols.size() - cfg.preamble.total_symbols()};
    const auto result = decode_frame(frame_span, cfg, 2.0 * 0.25 * 0.25);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->crc_ok);
    EXPECT_EQ(result->payload, payload);
}

TEST(frame, destroyed_payload_fails_crc_but_reports)
{
    const auto cfg = make_config(modulation::qpsk, fec_mode::uncoded);
    const auto payload = random_bytes(64, 17);
    cvec symbols = build_frame(payload, cfg);
    // Obliterate a chunk of payload symbols (after preamble+header).
    const std::size_t start = cfg.preamble.total_symbols() + header_symbol_count + 20;
    for (std::size_t i = start; i < start + 40; ++i) symbols[i] = -symbols[i];

    const std::span<const cf64> frame_span{symbols.data() + cfg.preamble.total_symbols(),
                                           symbols.size() - cfg.preamble.total_symbols()};
    const auto result = decode_frame(frame_span, cfg, 0.05);
    ASSERT_TRUE(result.has_value());
    EXPECT_FALSE(result->crc_ok);
    EXPECT_EQ(result->payload.size(), payload.size()); // corrupted bytes returned
}

TEST(frame, truncated_stream_returns_nullopt)
{
    const auto cfg = make_config(modulation::qpsk, fec_mode::conv_half);
    const auto payload = random_bytes(64, 19);
    const cvec symbols = build_frame(payload, cfg);
    const std::size_t frame_start = cfg.preamble.total_symbols();
    const std::span<const cf64> short_span{symbols.data() + frame_start, 100};
    EXPECT_FALSE(decode_frame(short_span, cfg, 0.05).has_value());
}

TEST(frame, oversize_payload_rejected)
{
    const auto cfg = make_config(modulation::qpsk, fec_mode::conv_half);
    EXPECT_THROW((void)build_frame(std::vector<std::uint8_t>(max_payload_bytes + 1, 0), cfg),
                 std::invalid_argument);
}

TEST(frame, spectral_efficiency_values)
{
    EXPECT_DOUBLE_EQ(spectral_efficiency(make_config(modulation::qpsk, fec_mode::conv_half)),
                     1.0);
    EXPECT_DOUBLE_EQ(spectral_efficiency(make_config(modulation::psk16, fec_mode::uncoded)),
                     4.0);
    EXPECT_NEAR(
        spectral_efficiency(make_config(modulation::psk8, fec_mode::conv_two_thirds)),
        2.0, 1e-12);
}

TEST(frame, receiver_adapts_to_header_not_local_config)
{
    // Build with 8-PSK R=3/4, decode with a receiver configured for QPSK —
    // the header must override.
    const auto tx_cfg = make_config(modulation::psk8, fec_mode::conv_three_quarters);
    const auto payload = random_bytes(80, 23);
    const cvec symbols = build_frame(payload, tx_cfg);
    const auto rx_cfg = make_config(modulation::qpsk, fec_mode::conv_half);
    const std::span<const cf64> frame_span{symbols.data() + tx_cfg.preamble.total_symbols(),
                                           symbols.size() - tx_cfg.preamble.total_symbols()};
    const auto result = decode_frame(frame_span, rx_cfg, 0.05);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->crc_ok);
    EXPECT_EQ(result->payload, payload);
}

} // namespace
} // namespace mmtag::phy
