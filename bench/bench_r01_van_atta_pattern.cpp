// R1 — Van Atta retro-reflection pattern.
// Reproduces the "tag reflects toward the AP at any orientation" figure:
// monostatic backscatter gain vs incidence angle for 4/8/16-element Van Atta
// arrays, against the same aperture without pairing (flat plate). Expected
// shape: Van Atta curves stay within a few dB of their peak across a wide
// field of view (element-pattern limited); the plate collapses off broadside.
#include <memory>

#include "bench_util.hpp"
#include "mmtag/antenna/element.hpp"
#include "mmtag/antenna/van_atta.hpp"

using namespace mmtag;

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R1", "Van Atta retro-reflection pattern vs incidence angle", csv);

    const auto patch = std::make_shared<antenna::patch_element>();
    auto make_array = [&](std::size_t n) {
        antenna::van_atta_array::config cfg;
        cfg.element_count = n;
        cfg.line_loss_db = 1.0;
        return antenna::van_atta_array(cfg, patch);
    };
    const antenna::van_atta_array va4 = make_array(4);
    const antenna::van_atta_array va8 = make_array(8);
    const antenna::van_atta_array va16 = make_array(16);
    const antenna::flat_plate_reflector plate(8, 0.5, patch);

    bench::table out({"angle_deg", "van_atta_4_dB", "van_atta_8_dB", "van_atta_16_dB",
                      "flat_plate_8_dB"},
                     csv);
    auto db_or_floor = [](double gain) {
        return gain > 1e-9 ? to_db(gain) : -90.0;
    };
    for (int deg = -60; deg <= 60; deg += 5) {
        const double theta = deg_to_rad(static_cast<double>(deg));
        out.add_row({std::to_string(deg),
                     bench::fmt("%.1f", db_or_floor(va4.monostatic_gain(theta))),
                     bench::fmt("%.1f", db_or_floor(va8.monostatic_gain(theta))),
                     bench::fmt("%.1f", db_or_floor(va16.monostatic_gain(theta))),
                     bench::fmt("%.1f", db_or_floor(plate.monostatic_gain(theta)))});
    }
    out.print();

    if (!csv) {
        std::printf("\n3 dB field of view: N=4: %.0f deg, N=8: %.0f deg, N=16: %.0f deg\n",
                    rad_to_deg(va4.field_of_view(3.0)), rad_to_deg(va8.field_of_view(3.0)),
                    rad_to_deg(va16.field_of_view(3.0)));
    }
    return 0;
}
