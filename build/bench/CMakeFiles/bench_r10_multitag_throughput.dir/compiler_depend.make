# Empty compiler generated dependencies file for bench_r10_multitag_throughput.
# This may be replaced when dependencies are built.
