// Counter-based per-trial seeding for the Monte-Carlo runtime.
//
// Every trial's entire random state derives from
//     trial_seed(base_seed, sweep_point, trial_index)
// so a trial's result depends only on *which* trial it is, never on which
// worker ran it or in what order — the property that makes sweep results
// bit-identical for any --jobs value. The scheme is part of the recorded
// BENCH_*.json contract: changing these constants invalidates every stored
// baseline, so treat them as frozen.
#pragma once

#include <cstdint>

namespace mmtag::runtime {

/// SplitMix64 finalizer: a bijective 64-bit avalanche mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// The per-trial seed: hash(base_seed, sweep_point, trial). Successive
/// counters land in unrelated parts of the 64-bit space, so neighbouring
/// trials (and neighbouring sweep points) get decorrelated RNG streams.
[[nodiscard]] constexpr std::uint64_t trial_seed(std::uint64_t base_seed,
                                                 std::uint64_t sweep_point,
                                                 std::uint64_t trial)
{
    return mix64(mix64(mix64(base_seed) ^ sweep_point) ^ trial);
}

/// Derives an independent substream from a trial seed (payload draw vs
/// fault schedule vs placement, ...) without risking overlap.
[[nodiscard]] constexpr std::uint64_t substream(std::uint64_t seed, std::uint64_t stream)
{
    return mix64(seed ^ (0xa0761d6478bd642fULL + stream));
}

} // namespace mmtag::runtime
