#include "mmtag/runtime/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "mmtag/obs/trace.hpp"

namespace mmtag::runtime {

std::size_t resolve_jobs(std::size_t requested)
{
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

thread_pool::thread_pool(std::size_t jobs)
{
    const std::size_t executors = resolve_jobs(jobs);
    workers_.reserve(executors - 1);
    for (std::size_t w = 0; w + 1 < executors; ++w) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
}

void thread_pool::run_shards(batch& work)
{
    for (;;) {
        const std::size_t shard = work.next_shard.fetch_add(1, std::memory_order_relaxed);
        if (shard >= work.shard_count) return;
        if (work.abort.load(std::memory_order_relaxed)) continue; // drain cheaply
        const std::size_t begin = shard * work.shard_size;
        const std::size_t end = std::min(begin + work.shard_size, work.count);
        try {
            for (std::size_t i = begin; i < end; ++i) (*work.body)(i);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(work.error_mutex);
            if (!work.error) work.error = std::current_exception();
            work.abort.store(true, std::memory_order_relaxed);
        }
    }
}

void thread_pool::worker_loop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        batch* work = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
            if (stopping_) return;
            seen_generation = generation_;
            work = current_;
        }
        run_shards(*work);
        if (obs::tracer::active()) obs::tracer::flush_current_thread();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++work->finished_workers;
        }
        done_.notify_one();
    }
}

void thread_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& body)
{
    if (count == 0) return;
    // The documented "not reentrant" contract, enforced: a nested call from
    // a worker body would wait forever for its own batch to finish, so fail
    // fast instead. The flag is cleared by the owning (outermost) call only.
    if (busy_.exchange(true, std::memory_order_acquire)) {
        throw std::logic_error(
            "thread_pool::parallel_for is not reentrant: a batch is already "
            "running on this pool");
    }
    struct busy_guard {
        std::atomic<bool>& flag;
        ~busy_guard() { flag.store(false, std::memory_order_release); }
    } guard{busy_};

    if (workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        if (obs::tracer::active()) obs::tracer::flush_current_thread();
        return;
    }

    batch work;
    work.body = &body;
    work.count = count;
    // A few shards per executor balances load without a work queue; shards
    // stay contiguous so neighbouring trials share cache.
    const std::size_t target_shards = (workers_.size() + 1) * 4;
    work.shard_size = std::max<std::size_t>(1, (count + target_shards - 1) / target_shards);
    work.shard_count = (count + work.shard_size - 1) / work.shard_size;

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        current_ = &work;
        ++generation_;
    }
    wake_.notify_all();

    run_shards(work); // the caller is an executor too
    if (obs::tracer::active()) obs::tracer::flush_current_thread();

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return work.finished_workers == workers_.size(); });
        current_ = nullptr;
    }
    if (work.error) std::rethrow_exception(work.error);
}

} // namespace mmtag::runtime
