#include "mmtag/core/baselines.hpp"

#include <cmath>
#include <stdexcept>

namespace mmtag::core {

double active_radio_model::pa_power_w() const
{
    if (!(pa_efficiency > 0.0 && pa_efficiency <= 1.0)) {
        throw std::invalid_argument("active_radio_model: efficiency outside (0, 1]");
    }
    const double output_w = std::pow(10.0, (pa_output_dbm - 30.0) / 10.0);
    return output_w / pa_efficiency;
}

double active_radio_model::total_power_w() const
{
    return pll_vco_w + mixer_w + pa_power_w() + baseband_w +
           static_cast<double>(phased_array_elements) * per_element_w;
}

double active_radio_model::energy_per_bit(double data_rate_bps) const
{
    if (data_rate_bps <= 0.0) throw std::invalid_argument("active_radio_model: rate <= 0");
    return total_power_w() / data_rate_bps;
}

double phased_array_tag_model::total_power_w() const
{
    return static_cast<double>(elements) * per_element_w + control_w;
}

std::vector<energy_reference> literature_energy_points()
{
    return {
        {"mmTag (anchor)", 2.4e-9, 10e6,
         "uplink-only mmWave backscatter; figure cited by follow-up work"},
        {"WiFi backscatter", 1e-9, 1e6, "sub-6 GHz ambient backscatter class"},
        {"802.11ad radio", 15e-9, 100e6, "active 60 GHz radio at ~1.5 W"},
        {"active mmWave IoT radio", 4e-9, 100e6, "component-budget model below"},
    };
}

} // namespace mmtag::core
