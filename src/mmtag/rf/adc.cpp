#include "mmtag/rf/adc.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::rf {

adc::adc(const config& cfg) : cfg_(cfg)
{
    if (cfg.bits < 1 || cfg.bits > 24) throw std::invalid_argument("adc: bits must be in [1, 24]");
    if (cfg.full_scale <= 0.0) throw std::invalid_argument("adc: full scale must be > 0");
    step_ = 2.0 * cfg.full_scale / static_cast<double>(1u << cfg.bits);
}

double adc::ideal_sqnr_db() const
{
    return 6.02 * static_cast<double>(cfg_.bits) + 1.76;
}

double adc::quantize_rail(double value) const
{
    const double clipped = std::clamp(value, -cfg_.full_scale, cfg_.full_scale - step_);
    // Mid-rise: code centers at (k + 0.5) * step.
    return (std::floor(clipped / step_) + 0.5) * step_;
}

cf64 adc::sample(cf64 input) const
{
    return {quantize_rail(input.real()), quantize_rail(input.imag())};
}

cvec adc::sample(std::span<const cf64> input) const
{
    cvec out;
    out.reserve(input.size());
    for (cf64 x : input) out.push_back(sample(x));
    return out;
}

} // namespace mmtag::rf
