#include "mmtag/cli/options.hpp"

#include <stdexcept>

namespace mmtag::cli {

option_set option_set::parse(int argc, const char* const* argv)
{
    option_set out;
    if (argc < 2) throw std::invalid_argument("missing subcommand");
    out.command_ = argv[1];
    if (out.command_.empty() || out.command_[0] == '-') {
        throw std::invalid_argument("first argument must be a subcommand, got '" +
                                    out.command_ + "'");
    }
    for (int i = 2; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) != 0 || token.size() <= 2) {
            throw std::invalid_argument("expected --key, got '" + token + "'");
        }
        token.erase(0, 2);
        std::string value;
        const auto equals = token.find('=');
        if (equals != std::string::npos) {
            value = token.substr(equals + 1);
            token.resize(equals);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        } else {
            value = "true"; // bare flag
        }
        if (out.values_.count(token) != 0) {
            throw std::invalid_argument("duplicate option --" + token);
        }
        out.values_[token] = value;
    }
    return out;
}

bool option_set::has(const std::string& key) const
{
    return values_.count(key) != 0;
}

double option_set::get_double(const std::string& key, double fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_[key] = true;
    try {
        std::size_t used = 0;
        const double value = std::stod(it->second, &used);
        if (used != it->second.size()) throw std::invalid_argument("trailing junk");
        return value;
    } catch (const std::exception&) {
        throw std::invalid_argument("--" + key + " expects a number, got '" + it->second +
                                    "'");
    }
}

std::int64_t option_set::get_int(const std::string& key, std::int64_t fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_[key] = true;
    try {
        std::size_t used = 0;
        const long long value = std::stoll(it->second, &used);
        if (used != it->second.size()) throw std::invalid_argument("trailing junk");
        return value;
    } catch (const std::exception&) {
        throw std::invalid_argument("--" + key + " expects an integer, got '" + it->second +
                                    "'");
    }
}

std::uint64_t option_set::get_uint(const std::string& key, std::uint64_t fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_[key] = true;
    const std::string& text = it->second;
    // std::stoull accepts "-1" (wrapping to 18446744073709551615) and
    // "1e3" parses as 1 with trailing junk — both must be hard errors here.
    const bool all_digits =
        !text.empty() && text.find_first_not_of("0123456789") == std::string::npos;
    if (all_digits) {
        try {
            std::size_t used = 0;
            const unsigned long long value = std::stoull(text, &used);
            if (used == text.size()) return value;
        } catch (const std::exception&) {
            // out of range: fall through to the uniform message
        }
    }
    throw std::invalid_argument("--" + key + " expects a non-negative integer, got '" +
                                text + "'");
}

std::string option_set::get_string(const std::string& key, const std::string& fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_[key] = true;
    return it->second;
}

bool option_set::get_flag(const std::string& key) const
{
    const auto it = values_.find(key);
    if (it == values_.end()) return false;
    consumed_[key] = true;
    if (it->second == "true" || it->second == "1" || it->second == "yes") return true;
    if (it->second == "false" || it->second == "0" || it->second == "no") return false;
    throw std::invalid_argument("--" + key + " is a flag; got '" + it->second + "'");
}

std::vector<std::string> option_set::unconsumed() const
{
    std::vector<std::string> leftover;
    for (const auto& [key, value] : values_) {
        if (consumed_.find(key) == consumed_.end()) leftover.push_back(key);
    }
    return leftover;
}

phy::modulation parse_modulation(const std::string& name)
{
    if (name == "bpsk") return phy::modulation::bpsk;
    if (name == "qpsk") return phy::modulation::qpsk;
    if (name == "8psk") return phy::modulation::psk8;
    if (name == "16psk") return phy::modulation::psk16;
    throw std::invalid_argument("unknown modulation '" + name +
                                "' (bpsk, qpsk, 8psk, 16psk)");
}

phy::fec_mode parse_fec(const std::string& name)
{
    if (name == "none") return phy::fec_mode::uncoded;
    if (name == "1/2") return phy::fec_mode::conv_half;
    if (name == "2/3") return phy::fec_mode::conv_two_thirds;
    if (name == "3/4") return phy::fec_mode::conv_three_quarters;
    throw std::invalid_argument("unknown FEC '" + name + "' (none, 1/2, 2/3, 3/4)");
}

} // namespace mmtag::cli
