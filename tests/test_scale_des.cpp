// Discrete-event engine determinism: identical seeds replay byte-identically
// across --jobs 1 vs 8 (event logs, hashes, and emitted JSON), the event
// queue breaks time ties by creation order, and the accounting invariants
// (frame conservation, event counts) hold under faults.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/scale/des_engine.hpp"
#include "mmtag/scale/topology.hpp"

namespace {

using namespace mmtag;
using scale::des_event;
using scale::event_kind;
using scale::event_queue;
using scale::scale_config;
using scale::scale_result;

/// One cache directory per test binary run: the first run_scale generates
/// the (deliberately coarse) table, every later call hits the cache.
const std::string& shared_cache_dir()
{
    static const std::string dir = [] {
        namespace fs = std::filesystem;
        const fs::path path = fs::temp_directory_path() / "mmtag_des_test_cache";
        fs::remove_all(path);
        fs::create_directories(path);
        return path.string();
    }();
    return dir;
}

scale_config small_config()
{
    scale_config cfg;
    cfg.topology.tag_count = 40;
    cfg.topology.ap_count = 2;
    cfg.frames = 8;
    cfg.faulted = 4;
    cfg.trials = 4;
    cfg.record_event_log = true;
    // Coarse calibration grid: engine behaviour, not statistics, is under
    // test, and generation happens once thanks to the shared cache dir.
    cfg.phy.frames_per_point = 8;
    return cfg;
}

TEST(ScaleDes, EventQueueBreaksTiesByCreationOrder)
{
    event_queue queue;
    // Fabricated tie: three events at the same instant, pushed after a
    // later-time event to make heap order diverge from push order.
    des_event late;
    late.time_s = 2.0;
    late.tag = 99;
    queue.push(late);
    for (std::uint32_t tag = 0; tag < 3; ++tag) {
        des_event ev;
        ev.time_s = 1.0;
        ev.tag = tag;
        ev.kind = event_kind::data_slot;
        queue.push(ev);
    }
    EXPECT_EQ(queue.size(), 4u);
    for (std::uint32_t tag = 0; tag < 3; ++tag) {
        const des_event ev = queue.pop();
        EXPECT_DOUBLE_EQ(ev.time_s, 1.0);
        EXPECT_EQ(ev.tag, tag); // creation order, not heap order
    }
    EXPECT_EQ(queue.pop().tag, 99u);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.pushed(), 4u);
}

TEST(ScaleDes, EventQueueSequenceIsMonotonic)
{
    event_queue queue;
    des_event ev;
    ev.time_s = 5.0;
    const std::uint64_t first = queue.push(ev);
    ev.time_s = 3.0;
    const std::uint64_t second = queue.push(ev);
    EXPECT_LT(first, second);
    EXPECT_EQ(queue.pop().seq, second); // earlier time pops first
    EXPECT_EQ(queue.pop().seq, first);
}

TEST(ScaleDes, JobsDoNotChangeResults)
{
    const auto cfg = small_config();
    // Warm the cache so both runs load the same table from disk.
    (void)scale::run_scale(cfg, 1, nullptr, shared_cache_dir());

    obs::metrics_registry metrics_a;
    obs::metrics_registry metrics_b;
    const scale_result a = scale::run_scale(cfg, 1, &metrics_a, shared_cache_dir());
    const scale_result b = scale::run_scale(cfg, 8, &metrics_b, shared_cache_dir());

    // Byte-identical emitted JSON is the contract the benches rely on.
    EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
    EXPECT_EQ(a.event_log_hash, b.event_log_hash);
    ASSERT_EQ(a.event_logs.size(), cfg.trials);
    ASSERT_EQ(b.event_logs.size(), cfg.trials);
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
        EXPECT_EQ(a.event_logs[trial], b.event_logs[trial]) << "trial " << trial;
        EXPECT_FALSE(a.event_logs[trial].empty());
    }
    EXPECT_EQ(metrics_a.to_json().dump(), metrics_b.to_json().dump());
}

TEST(ScaleDes, AccountingInvariantsHold)
{
    const auto cfg = small_config();
    const scale_result r = scale::run_scale(cfg, 1, nullptr, shared_cache_dir());

    std::uint64_t delivered = 0;
    ASSERT_EQ(r.delivered_per_tag.size(), cfg.topology.tag_count);
    for (std::size_t t = 0; t < r.delivered_per_tag.size(); ++t) {
        EXPECT_LE(r.delivered_per_tag[t], r.attempts_per_tag[t]);
        delivered += r.delivered_per_tag[t];
    }
    EXPECT_EQ(delivered, r.delivered);
    EXPECT_LE(r.delivered, r.data_slots);
    EXPECT_EQ(r.events, r.rounds + r.data_slots + r.probe_slots);
    EXPECT_EQ(r.rounds, cfg.frames * cfg.topology.ap_count * cfg.trials);
    EXPECT_GT(r.sim_time_s, 0.0);
    EXPECT_GT(r.delivered, 0u);
    EXPECT_GT(r.fairness_index(), 0.0);
    EXPECT_LE(r.fairness_index(), 1.0 + 1e-12);
}

TEST(ScaleDes, FaultsDriveQuarantineAndReadmission)
{
    auto cfg = small_config();
    cfg.frames = 40; // long enough for the probe backoff to re-admit
    cfg.trials = 1;
    const scale_result r = scale::run_scale(cfg, 1, nullptr, shared_cache_dir());
    EXPECT_GT(r.transitions, 0u);
    EXPECT_GT(r.readmissions, 0u);
    EXPECT_EQ(r.readmit_latency_count, r.readmissions);
    EXPECT_GE(static_cast<double>(r.readmit_latency_max_rounds),
              r.readmit_latency_mean_rounds);
}

TEST(ScaleDes, SeedChangesOutcomes)
{
    auto cfg = small_config();
    cfg.trials = 1;
    const scale_result a = scale::run_scale(cfg, 1, nullptr, shared_cache_dir());
    cfg.seed ^= 0xdecafbad;
    const scale_result b = scale::run_scale(cfg, 1, nullptr, shared_cache_dir());
    EXPECT_NE(a.event_log_hash, b.event_log_hash);
}

TEST(ScaleDes, TrialRunsAreReproducible)
{
    const auto cfg = small_config();
    const auto topo = scale::make_deployment(cfg.topology, cfg.scenario);
    auto table_cfg = cfg.phy;
    table_cfg.scenario = cfg.scenario;
    table_cfg.payload_bytes = cfg.payload_bytes;
    const auto cache =
        scale::phy_table::load_or_generate(table_cfg, 1, shared_cache_dir());
    const auto a = scale::run_scale_trial(cfg, topo, cache.table, 2, nullptr);
    const auto b = scale::run_scale_trial(cfg, topo, cache.table, 2, nullptr);
    EXPECT_EQ(a.event_log_hash, b.event_log_hash);
    EXPECT_EQ(a.event_log, b.event_log);
    EXPECT_EQ(a.delivered, b.delivered);
}

TEST(ScaleDes, RejectsZeroTrials)
{
    auto cfg = small_config();
    cfg.trials = 0;
    EXPECT_THROW((void)scale::run_scale(cfg, 1, nullptr, shared_cache_dir()),
                 std::invalid_argument);
}

} // namespace
