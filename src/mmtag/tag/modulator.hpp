// Backscatter modulator: turns a payload into the tag's per-sample reflection
// coefficient waveform by driving the RF switch across the termination bank.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/phy/frame.hpp"
#include "mmtag/rf/rf_switch.hpp"
#include "mmtag/tag/termination_bank.hpp"

namespace mmtag::tag {

/// A modulated frame, ready to be handed to the channel.
struct modulated_frame {
    cvec gamma;                    ///< per-sample reflection coefficient
    std::size_t symbol_count = 0;  ///< preamble + header + payload symbols
    std::size_t transitions = 0;   ///< switch state changes
    double duration_s = 0.0;
    std::vector<std::size_t> states; ///< per-symbol switch states (diagnostics)
};

class backscatter_modulator {
public:
    struct config {
        phy::frame_config frame{};
        termination_bank::config bank{};
        rf::rf_switch::config rf_switch{};
        double sample_rate_hz = 2e9;
        double symbol_rate_hz = 5e6;
        /// Absorptive guard symbols emitted before and after each frame.
        std::size_t guard_symbols = 8;
    };

    explicit backscatter_modulator(const config& cfg);

    [[nodiscard]] const config& parameters() const { return cfg_; }
    [[nodiscard]] std::size_t samples_per_symbol() const { return samples_per_symbol_; }
    [[nodiscard]] const termination_bank& bank() const { return bank_; }

    /// Bit rate delivered by the current configuration (information bits,
    /// counting modulation and FEC rate, excluding framing overhead).
    [[nodiscard]] double information_rate_bps() const;

    /// Modulates one payload into a reflection waveform.
    [[nodiscard]] modulated_frame modulate(std::span<const std::uint8_t> payload) const;

    /// Modulates an arbitrary symbol stream (used by MAC-layer inventory
    /// responses that bypass full framing).
    [[nodiscard]] modulated_frame modulate_symbols(std::span<const cf64> symbols) const;

private:
    [[nodiscard]] modulated_frame realize(const std::vector<std::size_t>& states) const;

    config cfg_;
    termination_bank bank_;
    rf::rf_switch switch_;
    std::size_t samples_per_symbol_;
};

} // namespace mmtag::tag
