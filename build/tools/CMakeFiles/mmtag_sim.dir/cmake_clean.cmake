file(REMOVE_RECURSE
  "CMakeFiles/mmtag_sim.dir/mmtag_sim.cpp.o"
  "CMakeFiles/mmtag_sim.dir/mmtag_sim.cpp.o.d"
  "mmtag_sim"
  "mmtag_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmtag_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
