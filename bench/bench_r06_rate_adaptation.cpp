// R6 — Throughput vs distance with rate adaptation.
// The AP measures SNR, consults the rate ladder, and the link runs at the
// selected (modulation, FEC). Expected shape: a staircase of goodput that
// steps down with distance, always outperforming any single fixed rate
// outside that rate's sweet spot.
#include "bench_util.hpp"
#include "mmtag/ap/rate_adaptation.hpp"
#include "mmtag/core/link_simulator.hpp"

using namespace mmtag;

namespace {

core::link_report run_at(core::system_config cfg, phy::modulation scheme, phy::fec_mode fec,
                         std::size_t frames)
{
    cfg.modulator.frame.scheme = scheme;
    cfg.modulator.frame.fec = fec;
    cfg.receiver.frame = cfg.modulator.frame;
    core::link_simulator sim(cfg);
    return sim.run_trials(frames, 48);
}

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R6", "goodput vs distance: rate adaptation vs fixed rates", csv);

    bench::table out({"distance_m", "snr_dB", "selected", "adaptive_Mbps",
                      "fixed_qpsk12_Mbps", "fixed_16psk_Mbps"},
                     csv);
    const ap::rate_adapter adapter(2.0);
    for (double distance : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0}) {
        auto cfg = bench::bench_scenario();
        cfg.distance_m = distance;

        // Probe SNR with the robust rate, then adapt.
        const auto probe = run_at(cfg, phy::modulation::qpsk, phy::fec_mode::conv_half, 3);
        const auto option = adapter.select(probe.mean_snr_db);
        const auto adaptive = run_at(cfg, option.scheme, option.fec, 8);
        const auto fixed_robust =
            run_at(cfg, phy::modulation::qpsk, phy::fec_mode::conv_half, 8);
        const auto fixed_fast = run_at(cfg, phy::modulation::psk16, phy::fec_mode::uncoded, 8);

        const std::string selected = phy::modulation_name(option.scheme) + std::string("/") +
                                     phy::fec_mode_name(option.fec);
        out.add_row({bench::fmt("%.0f", distance), bench::fmt("%.1f", probe.mean_snr_db),
                     selected, bench::fmt("%.2f", adaptive.goodput_bps / 1e6),
                     bench::fmt("%.2f", fixed_robust.goodput_bps / 1e6),
                     bench::fmt("%.2f", fixed_fast.goodput_bps / 1e6)});
    }
    out.print();
    return 0;
}
