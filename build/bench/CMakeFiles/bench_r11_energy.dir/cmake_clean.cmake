file(REMOVE_RECURSE
  "CMakeFiles/bench_r11_energy.dir/bench_r11_energy.cpp.o"
  "CMakeFiles/bench_r11_energy.dir/bench_r11_energy.cpp.o.d"
  "bench_r11_energy"
  "bench_r11_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r11_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
