// Biquad (second-order section) IIR filters and common designs.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Normalized biquad coefficients (a0 == 1 implied):
///   y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
struct biquad_coefficients {
    double b0 = 1.0;
    double b1 = 0.0;
    double b2 = 0.0;
    double a1 = 0.0;
    double a2 = 0.0;
};

/// RBJ-cookbook low-pass biquad. `cutoff_norm` in (0, 0.5), `q` > 0.
[[nodiscard]] biquad_coefficients design_biquad_lowpass(double cutoff_norm, double q = 0.7071);

/// RBJ-cookbook high-pass biquad.
[[nodiscard]] biquad_coefficients design_biquad_highpass(double cutoff_norm, double q = 0.7071);

/// Notch at `center_norm` with the given quality factor.
[[nodiscard]] biquad_coefficients design_biquad_notch(double center_norm, double q);

/// One biquad section with transposed direct-form-II state.
class biquad {
public:
    explicit biquad(biquad_coefficients coefficients);

    [[nodiscard]] cf64 process(cf64 input);
    void reset();

private:
    biquad_coefficients c_;
    cf64 s1_{};
    cf64 s2_{};
};

/// Cascade of biquads (e.g. a Butterworth built from sections).
class biquad_cascade {
public:
    explicit biquad_cascade(std::vector<biquad_coefficients> sections);

    [[nodiscard]] cf64 process(cf64 input);
    [[nodiscard]] cvec process(std::span<const cf64> input);
    void reset();
    [[nodiscard]] std::size_t section_count() const { return sections_.size(); }

private:
    std::vector<biquad> sections_;
};

/// Butterworth low-pass of even order `order` as a biquad cascade.
[[nodiscard]] biquad_cascade design_butterworth_lowpass(double cutoff_norm, std::size_t order);

} // namespace mmtag::dsp
