// Chaos soak harness: drives the network supervisor through seeded
// multi-tag fault schedules (fault::multi_tag_plan — correlated blockage
// storms, rolling brownouts, a persistent interferer) on the sample-accurate
// core::multitag_simulator, records a per-round trace, and checks the
// resilience invariants against it:
//
//   * transition legality — every logged session transition is a legal edge;
//   * no starved healthy tag — a session that stays schedulable through a
//     whole window of rounds received at least one data slot in it;
//   * conservation of delivered frames — per round and per tag, delivered
//     frames never exceed scheduled slots, and the per-tag totals equal the
//     trace sum;
//   * bounded recovery — once the last physical fault has ended, no session
//     is still quarantined (or probing) after
//     grace x (probe backoff cap + readmit streak) further rounds;
//   * graceful degradation — the never-faulted tags keep at least
//     healthy_share_min of the frames they deliver in a fault-free
//     reference run of the same trial.
//
// Each trial runs twice (faulted arm + fault-free reference arm) as
// independent tasks on the runtime thread pool; per-trial results land in
// pre-allocated slots and fold in trial order, so the report (and its JSON)
// is byte-identical for any --jobs value. Invariant checkers are free
// functions over plain trace data so tests can prove they fail loudly on
// fabricated bad traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mmtag/core/config.hpp"
#include "mmtag/fault/multi_tag_faults.hpp"
#include "mmtag/net/tag_session.hpp"
#include "mmtag/runtime/result_writer.hpp"

namespace mmtag::runtime {
class thread_pool;
}

namespace mmtag::obs {
class metrics_registry;
}

namespace mmtag::net {

/// Fault intensities with timescales sized for the soak's sub-millisecond
/// rounds (the generic fault::multi_tag_config defaults assume a much longer
/// horizon): storms long enough to quarantine, brownouts and background
/// events that only degrade, one brief shared interferer hiccup.
[[nodiscard]] fault::multi_tag_config soak_fault_defaults();

struct soak_config {
    std::size_t tag_count = 6;
    std::size_t faulted_count = 2;   ///< tags [0, faulted_count) take faults
    std::size_t rounds = 36;
    std::size_t payload_bytes = 16;
    std::size_t trials = 2;
    std::uint64_t seed = 1;
    std::uint64_t fault_seed = 42;
    double min_range_m = 1.5;        ///< population geometry
    double max_range_m = 3.0;
    core::system_config scenario = core::fast_scenario();
    /// Fault intensities; horizon_s is overwritten per trial from the
    /// measured round duration (horizon = round airtime x rounds), so
    /// active_fraction keeps its meaning for any round count.
    fault::multi_tag_config faults = soak_fault_defaults();
    session_config session{};
    std::size_t slot_budget = 0;     ///< 0 = one data slot per tag per round

    // Invariant bounds.
    double healthy_share_min = 0.9;
    std::size_t starvation_window_rounds = 6;
    /// Multiplies session.max_readmit_rounds() into the recovery bound
    /// (headroom for PHY-dropped probes on a healthy link).
    double readmit_grace_factor = 2.0;
};

/// One supervisor round as the trace records it (all vectors tag-indexed).
struct round_record {
    double start_clock_s = 0.0;            ///< simulator clock at round start
    std::vector<std::uint8_t> states;      ///< session_state after the round
    std::vector<std::uint16_t> scheduled;  ///< data slots granted
    std::vector<std::uint16_t> delivered;  ///< data frames delivered
    std::vector<std::uint8_t> probed;      ///< 1 = probe slot granted
    std::vector<std::uint8_t> probe_ok;    ///< 1 = that probe delivered
};

struct tagged_transition {
    std::uint32_t tag_id = 0;
    session_transition transition{};
};

/// Everything one faulted-arm trial leaves behind for the checkers.
struct soak_trace {
    std::size_t tag_count = 0;
    std::size_t faulted_count = 0;
    std::vector<round_record> rounds;
    std::vector<tagged_transition> transitions; ///< tag-major, chronological
    std::vector<std::size_t> readmit_latencies_rounds;
    double last_fault_end_s = 0.0;  ///< 0 in the reference arm
};

struct invariant_result {
    std::string name;
    bool passed = false;
    std::string detail; ///< empty when passed
};

/// Invariant checkers (free functions so tests can feed fabricated traces).
[[nodiscard]] invariant_result check_transition_legality(const soak_trace& trace);
[[nodiscard]] invariant_result check_no_starvation(const soak_trace& trace,
                                                   std::size_t window_rounds);
[[nodiscard]] invariant_result check_frame_conservation(
    const soak_trace& trace, const std::vector<std::uint64_t>& delivered_per_tag);
[[nodiscard]] invariant_result check_bounded_recovery(const soak_trace& trace,
                                                      const session_config& session,
                                                      double grace_factor);
[[nodiscard]] invariant_result check_graceful_degradation(
    const std::vector<std::uint64_t>& faulted_delivered,
    const std::vector<std::uint64_t>& reference_delivered,
    std::size_t faulted_count, double healthy_share_min);

/// One trial of one arm (exposed for the determinism tests).
struct soak_trial_result {
    soak_trace trace;
    std::vector<std::uint64_t> delivered_per_tag;
};

struct soak_report {
    std::size_t tag_count = 0;
    std::size_t faulted_count = 0;
    std::size_t rounds = 0;
    std::size_t trials = 0;
    std::uint64_t seed = 0;
    std::uint64_t fault_seed = 0;
    std::vector<std::uint64_t> delivered_per_tag;  ///< faulted arm, summed
    std::vector<std::uint64_t> reference_per_tag;  ///< reference arm, summed
    std::size_t transitions = 0;
    std::size_t readmissions = 0;
    std::size_t max_readmit_rounds = 0;
    /// Worst healthy-tag delivery share across trials (faulted / reference);
    /// negative when no trial could evaluate it.
    double healthy_share_min_observed = -1.0;
    /// Per-invariant verdicts ANDed across trials, first failure's detail.
    std::vector<invariant_result> invariants;

    [[nodiscard]] bool all_passed() const;
    /// Deterministic JSON document (schema mmtag.soak.result/1): a pure
    /// function of (config, seeds) — byte-identical for any --jobs.
    [[nodiscard]] runtime::json_value to_json() const;
};

/// Runs one arm of one trial (faulted or reference). `registry` may be
/// nullptr; when set it receives the trial's multitag/net metrics.
[[nodiscard]] soak_trial_result run_soak_trial(const soak_config& cfg,
                                               std::size_t trial, bool faulted,
                                               obs::metrics_registry* registry);

/// Runs `cfg.trials` trials, each as a faulted + reference task pair on
/// `pool`, folds them in trial order, and evaluates every invariant.
/// `metrics` (optional) receives the merged per-trial registries.
[[nodiscard]] soak_report run_soak(const soak_config& cfg,
                                   runtime::thread_pool& pool,
                                   obs::metrics_registry* metrics = nullptr);

} // namespace mmtag::net
